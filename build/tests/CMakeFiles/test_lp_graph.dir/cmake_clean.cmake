file(REMOVE_RECURSE
  "CMakeFiles/test_lp_graph.dir/graph/dijkstra_test.cpp.o"
  "CMakeFiles/test_lp_graph.dir/graph/dijkstra_test.cpp.o.d"
  "CMakeFiles/test_lp_graph.dir/lp/simplex_test.cpp.o"
  "CMakeFiles/test_lp_graph.dir/lp/simplex_test.cpp.o.d"
  "test_lp_graph"
  "test_lp_graph.pdb"
  "test_lp_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lp_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
