# Empty compiler generated dependencies file for test_lp_graph.
# This may be replaced when dependencies are built.
