file(REMOVE_RECURSE
  "CMakeFiles/test_codec.dir/codec/bitstream_fuzz_test.cpp.o"
  "CMakeFiles/test_codec.dir/codec/bitstream_fuzz_test.cpp.o.d"
  "CMakeFiles/test_codec.dir/codec/chroma_deblock_test.cpp.o"
  "CMakeFiles/test_codec.dir/codec/chroma_deblock_test.cpp.o.d"
  "CMakeFiles/test_codec.dir/codec/deblock_test.cpp.o"
  "CMakeFiles/test_codec.dir/codec/deblock_test.cpp.o.d"
  "CMakeFiles/test_codec.dir/codec/entropy_test.cpp.o"
  "CMakeFiles/test_codec.dir/codec/entropy_test.cpp.o.d"
  "CMakeFiles/test_codec.dir/codec/frame_codec_test.cpp.o"
  "CMakeFiles/test_codec.dir/codec/frame_codec_test.cpp.o.d"
  "CMakeFiles/test_codec.dir/codec/interpolate_test.cpp.o"
  "CMakeFiles/test_codec.dir/codec/interpolate_test.cpp.o.d"
  "CMakeFiles/test_codec.dir/codec/intra_test.cpp.o"
  "CMakeFiles/test_codec.dir/codec/intra_test.cpp.o.d"
  "CMakeFiles/test_codec.dir/codec/mc_test.cpp.o"
  "CMakeFiles/test_codec.dir/codec/mc_test.cpp.o.d"
  "CMakeFiles/test_codec.dir/codec/me_test.cpp.o"
  "CMakeFiles/test_codec.dir/codec/me_test.cpp.o.d"
  "CMakeFiles/test_codec.dir/codec/sad_test.cpp.o"
  "CMakeFiles/test_codec.dir/codec/sad_test.cpp.o.d"
  "CMakeFiles/test_codec.dir/codec/sme_test.cpp.o"
  "CMakeFiles/test_codec.dir/codec/sme_test.cpp.o.d"
  "CMakeFiles/test_codec.dir/codec/transform_test.cpp.o"
  "CMakeFiles/test_codec.dir/codec/transform_test.cpp.o.d"
  "test_codec"
  "test_codec.pdb"
  "test_codec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
