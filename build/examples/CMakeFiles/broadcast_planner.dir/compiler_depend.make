# Empty compiler generated dependencies file for broadcast_planner.
# This may be replaced when dependencies are built.
