file(REMOVE_RECURSE
  "CMakeFiles/broadcast_planner.dir/broadcast_planner.cpp.o"
  "CMakeFiles/broadcast_planner.dir/broadcast_planner.cpp.o.d"
  "broadcast_planner"
  "broadcast_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/broadcast_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
