# Empty dependencies file for feves_cli.
# This may be replaced when dependencies are built.
