file(REMOVE_RECURSE
  "CMakeFiles/feves_cli.dir/feves_cli.cpp.o"
  "CMakeFiles/feves_cli.dir/feves_cli.cpp.o.d"
  "feves_cli"
  "feves_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feves_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
