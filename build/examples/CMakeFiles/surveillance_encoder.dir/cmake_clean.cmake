file(REMOVE_RECURSE
  "CMakeFiles/surveillance_encoder.dir/surveillance_encoder.cpp.o"
  "CMakeFiles/surveillance_encoder.dir/surveillance_encoder.cpp.o.d"
  "surveillance_encoder"
  "surveillance_encoder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surveillance_encoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
