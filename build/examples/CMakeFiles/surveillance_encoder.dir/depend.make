# Empty dependencies file for surveillance_encoder.
# This may be replaced when dependencies are built.
