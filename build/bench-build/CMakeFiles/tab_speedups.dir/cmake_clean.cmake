file(REMOVE_RECURSE
  "../bench/tab_speedups"
  "../bench/tab_speedups.pdb"
  "CMakeFiles/tab_speedups.dir/tab_speedups.cpp.o"
  "CMakeFiles/tab_speedups.dir/tab_speedups.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_speedups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
