# Empty dependencies file for tab_speedups.
# This may be replaced when dependencies are built.
