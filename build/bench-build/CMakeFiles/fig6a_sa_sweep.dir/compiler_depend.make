# Empty compiler generated dependencies file for fig6a_sa_sweep.
# This may be replaced when dependencies are built.
