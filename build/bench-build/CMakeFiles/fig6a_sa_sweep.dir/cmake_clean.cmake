file(REMOVE_RECURSE
  "../bench/fig6a_sa_sweep"
  "../bench/fig6a_sa_sweep.pdb"
  "CMakeFiles/fig6a_sa_sweep.dir/fig6a_sa_sweep.cpp.o"
  "CMakeFiles/fig6a_sa_sweep.dir/fig6a_sa_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6a_sa_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
