
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/tab_overhead.cpp" "bench-build/CMakeFiles/tab_overhead.dir/tab_overhead.cpp.o" "gcc" "bench-build/CMakeFiles/tab_overhead.dir/tab_overhead.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/feves_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/feves_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/feves_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/feves_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/feves_video.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/feves_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/feves_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/feves_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
