file(REMOVE_RECURSE
  "../bench/tab_overhead"
  "../bench/tab_overhead.pdb"
  "CMakeFiles/tab_overhead.dir/tab_overhead.cpp.o"
  "CMakeFiles/tab_overhead.dir/tab_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
