file(REMOVE_RECURSE
  "../bench/fig6b_rf_sweep"
  "../bench/fig6b_rf_sweep.pdb"
  "CMakeFiles/fig6b_rf_sweep.dir/fig6b_rf_sweep.cpp.o"
  "CMakeFiles/fig6b_rf_sweep.dir/fig6b_rf_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6b_rf_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
