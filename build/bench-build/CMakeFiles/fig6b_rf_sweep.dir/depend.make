# Empty dependencies file for fig6b_rf_sweep.
# This may be replaced when dependencies are built.
