file(REMOVE_RECURSE
  "../bench/fig7a_adaptive_trace"
  "../bench/fig7a_adaptive_trace.pdb"
  "CMakeFiles/fig7a_adaptive_trace.dir/fig7a_adaptive_trace.cpp.o"
  "CMakeFiles/fig7a_adaptive_trace.dir/fig7a_adaptive_trace.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7a_adaptive_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
