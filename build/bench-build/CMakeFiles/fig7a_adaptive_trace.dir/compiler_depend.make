# Empty compiler generated dependencies file for fig7a_adaptive_trace.
# This may be replaced when dependencies are built.
