file(REMOVE_RECURSE
  "../bench/ext_4k_scaling"
  "../bench/ext_4k_scaling.pdb"
  "CMakeFiles/ext_4k_scaling.dir/ext_4k_scaling.cpp.o"
  "CMakeFiles/ext_4k_scaling.dir/ext_4k_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_4k_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
