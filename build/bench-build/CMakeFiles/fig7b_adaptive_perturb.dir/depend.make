# Empty dependencies file for fig7b_adaptive_perturb.
# This may be replaced when dependencies are built.
