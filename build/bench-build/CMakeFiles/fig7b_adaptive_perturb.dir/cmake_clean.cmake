file(REMOVE_RECURSE
  "../bench/fig7b_adaptive_perturb"
  "../bench/fig7b_adaptive_perturb.pdb"
  "CMakeFiles/fig7b_adaptive_perturb.dir/fig7b_adaptive_perturb.cpp.o"
  "CMakeFiles/fig7b_adaptive_perturb.dir/fig7b_adaptive_perturb.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7b_adaptive_perturb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
