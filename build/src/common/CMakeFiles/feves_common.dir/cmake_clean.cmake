file(REMOVE_RECURSE
  "CMakeFiles/feves_common.dir/thread_pool.cpp.o"
  "CMakeFiles/feves_common.dir/thread_pool.cpp.o.d"
  "libfeves_common.a"
  "libfeves_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feves_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
