# Empty dependencies file for feves_common.
# This may be replaced when dependencies are built.
