file(REMOVE_RECURSE
  "libfeves_common.a"
)
