# Empty compiler generated dependencies file for feves_platform.
# This may be replaced when dependencies are built.
