file(REMOVE_RECURSE
  "libfeves_platform.a"
)
