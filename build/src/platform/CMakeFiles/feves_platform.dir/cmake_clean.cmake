file(REMOVE_RECURSE
  "CMakeFiles/feves_platform.dir/op_graph.cpp.o"
  "CMakeFiles/feves_platform.dir/op_graph.cpp.o.d"
  "CMakeFiles/feves_platform.dir/presets.cpp.o"
  "CMakeFiles/feves_platform.dir/presets.cpp.o.d"
  "libfeves_platform.a"
  "libfeves_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feves_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
