file(REMOVE_RECURSE
  "libfeves_core.a"
)
