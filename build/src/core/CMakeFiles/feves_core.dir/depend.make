# Empty dependencies file for feves_core.
# This may be replaced when dependencies are built.
