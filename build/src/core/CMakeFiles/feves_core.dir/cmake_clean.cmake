file(REMOVE_RECURSE
  "CMakeFiles/feves_core.dir/coding_manager.cpp.o"
  "CMakeFiles/feves_core.dir/coding_manager.cpp.o.d"
  "CMakeFiles/feves_core.dir/collaborative_encoder.cpp.o"
  "CMakeFiles/feves_core.dir/collaborative_encoder.cpp.o.d"
  "CMakeFiles/feves_core.dir/data_access.cpp.o"
  "CMakeFiles/feves_core.dir/data_access.cpp.o.d"
  "CMakeFiles/feves_core.dir/framework.cpp.o"
  "CMakeFiles/feves_core.dir/framework.cpp.o.d"
  "CMakeFiles/feves_core.dir/real_backend.cpp.o"
  "CMakeFiles/feves_core.dir/real_backend.cpp.o.d"
  "libfeves_core.a"
  "libfeves_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feves_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
