# Empty dependencies file for feves_video.
# This may be replaced when dependencies are built.
