file(REMOVE_RECURSE
  "CMakeFiles/feves_video.dir/metrics.cpp.o"
  "CMakeFiles/feves_video.dir/metrics.cpp.o.d"
  "CMakeFiles/feves_video.dir/sequence.cpp.o"
  "CMakeFiles/feves_video.dir/sequence.cpp.o.d"
  "libfeves_video.a"
  "libfeves_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feves_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
