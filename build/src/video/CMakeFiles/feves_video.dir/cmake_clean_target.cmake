file(REMOVE_RECURSE
  "libfeves_video.a"
)
