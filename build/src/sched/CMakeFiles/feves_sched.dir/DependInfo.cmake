
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/load_balancer.cpp" "src/sched/CMakeFiles/feves_sched.dir/load_balancer.cpp.o" "gcc" "src/sched/CMakeFiles/feves_sched.dir/load_balancer.cpp.o.d"
  "/root/repo/src/sched/perf_char.cpp" "src/sched/CMakeFiles/feves_sched.dir/perf_char.cpp.o" "gcc" "src/sched/CMakeFiles/feves_sched.dir/perf_char.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/feves_common.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/feves_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/feves_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/feves_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
