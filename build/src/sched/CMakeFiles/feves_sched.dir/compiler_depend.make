# Empty compiler generated dependencies file for feves_sched.
# This may be replaced when dependencies are built.
