file(REMOVE_RECURSE
  "libfeves_sched.a"
)
