file(REMOVE_RECURSE
  "CMakeFiles/feves_sched.dir/load_balancer.cpp.o"
  "CMakeFiles/feves_sched.dir/load_balancer.cpp.o.d"
  "CMakeFiles/feves_sched.dir/perf_char.cpp.o"
  "CMakeFiles/feves_sched.dir/perf_char.cpp.o.d"
  "libfeves_sched.a"
  "libfeves_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feves_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
