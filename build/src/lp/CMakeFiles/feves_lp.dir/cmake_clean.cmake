file(REMOVE_RECURSE
  "CMakeFiles/feves_lp.dir/simplex.cpp.o"
  "CMakeFiles/feves_lp.dir/simplex.cpp.o.d"
  "libfeves_lp.a"
  "libfeves_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feves_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
