file(REMOVE_RECURSE
  "libfeves_lp.a"
)
