# Empty compiler generated dependencies file for feves_lp.
# This may be replaced when dependencies are built.
