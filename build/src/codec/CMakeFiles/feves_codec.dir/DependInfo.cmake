
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codec/cavlc.cpp" "src/codec/CMakeFiles/feves_codec.dir/cavlc.cpp.o" "gcc" "src/codec/CMakeFiles/feves_codec.dir/cavlc.cpp.o.d"
  "/root/repo/src/codec/deblock.cpp" "src/codec/CMakeFiles/feves_codec.dir/deblock.cpp.o" "gcc" "src/codec/CMakeFiles/feves_codec.dir/deblock.cpp.o.d"
  "/root/repo/src/codec/frame_codec.cpp" "src/codec/CMakeFiles/feves_codec.dir/frame_codec.cpp.o" "gcc" "src/codec/CMakeFiles/feves_codec.dir/frame_codec.cpp.o.d"
  "/root/repo/src/codec/interpolate.cpp" "src/codec/CMakeFiles/feves_codec.dir/interpolate.cpp.o" "gcc" "src/codec/CMakeFiles/feves_codec.dir/interpolate.cpp.o.d"
  "/root/repo/src/codec/intra.cpp" "src/codec/CMakeFiles/feves_codec.dir/intra.cpp.o" "gcc" "src/codec/CMakeFiles/feves_codec.dir/intra.cpp.o.d"
  "/root/repo/src/codec/mc.cpp" "src/codec/CMakeFiles/feves_codec.dir/mc.cpp.o" "gcc" "src/codec/CMakeFiles/feves_codec.dir/mc.cpp.o.d"
  "/root/repo/src/codec/me.cpp" "src/codec/CMakeFiles/feves_codec.dir/me.cpp.o" "gcc" "src/codec/CMakeFiles/feves_codec.dir/me.cpp.o.d"
  "/root/repo/src/codec/sad.cpp" "src/codec/CMakeFiles/feves_codec.dir/sad.cpp.o" "gcc" "src/codec/CMakeFiles/feves_codec.dir/sad.cpp.o.d"
  "/root/repo/src/codec/sad_simd.cpp" "src/codec/CMakeFiles/feves_codec.dir/sad_simd.cpp.o" "gcc" "src/codec/CMakeFiles/feves_codec.dir/sad_simd.cpp.o.d"
  "/root/repo/src/codec/sme.cpp" "src/codec/CMakeFiles/feves_codec.dir/sme.cpp.o" "gcc" "src/codec/CMakeFiles/feves_codec.dir/sme.cpp.o.d"
  "/root/repo/src/codec/transform.cpp" "src/codec/CMakeFiles/feves_codec.dir/transform.cpp.o" "gcc" "src/codec/CMakeFiles/feves_codec.dir/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/video/CMakeFiles/feves_video.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/feves_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
