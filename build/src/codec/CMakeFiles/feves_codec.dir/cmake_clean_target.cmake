file(REMOVE_RECURSE
  "libfeves_codec.a"
)
