file(REMOVE_RECURSE
  "CMakeFiles/feves_codec.dir/cavlc.cpp.o"
  "CMakeFiles/feves_codec.dir/cavlc.cpp.o.d"
  "CMakeFiles/feves_codec.dir/deblock.cpp.o"
  "CMakeFiles/feves_codec.dir/deblock.cpp.o.d"
  "CMakeFiles/feves_codec.dir/frame_codec.cpp.o"
  "CMakeFiles/feves_codec.dir/frame_codec.cpp.o.d"
  "CMakeFiles/feves_codec.dir/interpolate.cpp.o"
  "CMakeFiles/feves_codec.dir/interpolate.cpp.o.d"
  "CMakeFiles/feves_codec.dir/intra.cpp.o"
  "CMakeFiles/feves_codec.dir/intra.cpp.o.d"
  "CMakeFiles/feves_codec.dir/mc.cpp.o"
  "CMakeFiles/feves_codec.dir/mc.cpp.o.d"
  "CMakeFiles/feves_codec.dir/me.cpp.o"
  "CMakeFiles/feves_codec.dir/me.cpp.o.d"
  "CMakeFiles/feves_codec.dir/sad.cpp.o"
  "CMakeFiles/feves_codec.dir/sad.cpp.o.d"
  "CMakeFiles/feves_codec.dir/sad_simd.cpp.o"
  "CMakeFiles/feves_codec.dir/sad_simd.cpp.o.d"
  "CMakeFiles/feves_codec.dir/sme.cpp.o"
  "CMakeFiles/feves_codec.dir/sme.cpp.o.d"
  "CMakeFiles/feves_codec.dir/transform.cpp.o"
  "CMakeFiles/feves_codec.dir/transform.cpp.o.d"
  "libfeves_codec.a"
  "libfeves_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feves_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
