# Empty compiler generated dependencies file for feves_codec.
# This may be replaced when dependencies are built.
