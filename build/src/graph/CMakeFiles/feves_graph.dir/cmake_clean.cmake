file(REMOVE_RECURSE
  "CMakeFiles/feves_graph.dir/dijkstra.cpp.o"
  "CMakeFiles/feves_graph.dir/dijkstra.cpp.o.d"
  "libfeves_graph.a"
  "libfeves_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feves_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
