# Empty compiler generated dependencies file for feves_graph.
# This may be replaced when dependencies are built.
