file(REMOVE_RECURSE
  "libfeves_graph.a"
)
