// Broadcast planner: a capacity-planning tool built on the virtual-mode
// framework. Given a target fps and a fleet of candidate CPU+GPU machines,
// it sweeps encoding parameters (search area, reference frames) per machine
// and reports the highest-quality settings each platform sustains in real
// time — the decision a broadcaster faces when provisioning 1080p live
// encoding, which is exactly the workload the paper's intro motivates.
//
//   ./broadcast_planner [target_fps]
#include "core/framework.hpp"
#include "platform/presets.hpp"

#include <cstdio>
#include <cstdlib>

int main(int argc, char** argv) {
  using namespace feves;
  const double target_fps = argc > 1 ? std::atof(argv[1]) : 25.0;

  std::printf("FEVES broadcast planner — target %.0f fps @ 1080p\n\n",
              target_fps);
  std::printf("%-8s  %-34s  %-10s\n", "machine",
              "best sustained settings", "fps");

  for (const auto& name : all_config_names()) {
    // Prefer larger search areas first (better RD), then more references.
    int best_sa = 0, best_refs = 0;
    double best_fps = 0.0;
    for (int sa : {64, 32}) {
      for (int refs : {8, 6, 4, 2, 1}) {
        EncoderConfig cfg;
        cfg.width = 1920;
        cfg.height = 1088;
        cfg.search_range = sa / 2;
        cfg.num_ref_frames = refs;
        VirtualFramework fw(cfg, topology_by_name(name));
        const double fps = fw.steady_state_fps(20 + 2 * refs, 6 + refs);
        if (fps >= target_fps) {
          // Rank: SA dominates, then refs.
          if (sa > best_sa || (sa == best_sa && refs > best_refs)) {
            best_sa = sa;
            best_refs = refs;
            best_fps = fps;
          }
          break;  // more refs at this SA would only be slower
        }
      }
    }
    if (best_sa == 0) {
      std::printf("%-8s  %-34s  %-10s\n", name.c_str(),
                  "cannot sustain the target", "-");
    } else {
      char desc[64];
      std::snprintf(desc, sizeof desc, "SA %dx%d, %d reference frame%s",
                    best_sa, best_sa, best_refs, best_refs > 1 ? "s" : "");
      std::printf("%-8s  %-34s  %-10.1f\n", name.c_str(), desc, best_fps);
    }
  }

  std::printf(
      "\nReading: heterogeneous systems buy either a larger search area or\n"
      "more reference frames at the same real-time constraint — the FEVES\n"
      "pitch in one table.\n");
  return 0;
}
