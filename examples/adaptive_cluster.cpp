// Adaptive-cluster demo: the virtual framework driving a 1080p encode on a
// busy, non-dedicated workstation. Random background jobs repeatedly steal
// throughput from individual devices; the demo prints an ASCII strip chart
// of per-frame encode time together with the ME row split, making the
// paper's self-adaptation (Fig 7) visible at a glance: every disturbance
// bends the split away from the afflicted device within a frame.
//
//   ./adaptive_cluster [frames] [seed]
#include "common/rng.hpp"
#include "core/framework.hpp"
#include "platform/presets.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>

int main(int argc, char** argv) {
  using namespace feves;
  const int frames = argc > 1 ? std::atoi(argv[1]) : 60;
  const u64 seed = argc > 2 ? static_cast<u64>(std::atoll(argv[2])) : 7;

  EncoderConfig cfg;
  cfg.width = 1920;
  cfg.height = 1088;
  cfg.search_range = 16;
  cfg.num_ref_frames = 2;

  const PlatformTopology topo = make_sys_nff();

  // Random interference: 1-4 frame bursts of 1.5-3x slowdown on a random
  // device, covering ~20% of the timeline.
  PerturbationSchedule sched;
  Rng rng(seed);
  for (int f = 8; f < frames;) {
    if (rng.uniform01() < 0.12) {
      const int dev = static_cast<int>(rng.uniform_int(0, 2));
      const int len = static_cast<int>(rng.uniform_int(1, 4));
      const double slow = rng.uniform_real(1.5, 3.0);
      sched.add({dev, f, f + len, slow});
      std::printf("background job: device %d, frames %d-%d, %.1fx slower\n",
                  dev, f, f + len - 1, slow);
      f += len + 1;
    } else {
      ++f;
    }
  }

  VirtualFramework fw(cfg, topo, {}, sched);
  std::printf("\n%-6s %-46s %-8s %-18s\n", "frame", "encode time", "[ms]",
              "ME rows (N,F1,F2)");
  for (int f = 1; f <= frames; ++f) {
    const FrameStats s = fw.encode_frame();
    const int bar = static_cast<int>(s.total_ms);
    std::string strip(static_cast<std::size_t>(std::min(bar, 44)), '#');
    std::printf("%-6d %-46s %-8.1f [%d %d %d]\n", f, strip.c_str(),
                s.total_ms, s.dist.me[0], s.dist.me[1], s.dist.me[2]);
  }
  return 0;
}
