// Surveillance-style encoder: long-running real-mode encode of a mostly
// static scene with occasional motion, writing an elementary stream and a
// reconstructed YUV for inspection, and printing per-frame rate/quality
// telemetry. Demonstrates file output (decodable with the quickstart's
// decode path), multi-reference prediction on low-motion content, and the
// encoder's behaviour when content characteristics shift mid-stream.
//
//   ./surveillance_encoder [frames] [out.bin] [recon.yuv]
#include "core/collaborative_encoder.hpp"
#include "platform/presets.hpp"
#include "video/metrics.hpp"
#include "video/sequence.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>

int main(int argc, char** argv) {
  using namespace feves;
  const int frames = argc > 1 ? std::atoi(argv[1]) : 12;
  const char* out_path = argc > 2 ? argv[2] : "surveillance.bin";
  const char* yuv_path = argc > 3 ? argv[3] : "";

  EncoderConfig cfg;
  cfg.width = 320;
  cfg.height = 240;
  cfg.search_range = 8;
  cfg.num_ref_frames = 4;  // static background: older refs stay useful

  // Calm scene: slow pan, few slow objects, light sensor noise.
  SyntheticConfig scene;
  scene.width = cfg.width;
  scene.height = cfg.height;
  scene.frames = frames;
  scene.kind = SceneKind::kCalendar;
  scene.num_objects = 2;
  scene.max_object_speed = 1.0;
  scene.global_pan_speed = 0.2;
  scene.noise_stddev = 1.0;
  SyntheticSequence source(scene);

  CollaborativeEncoder encoder(cfg, make_sys_nf());
  std::vector<u8> bitstream;
  Frame420 frame(cfg.width, cfg.height);

  std::printf("surveillance encode: %dx%d, %d frames, 4 RFs\n", cfg.width,
              cfg.height, frames);
  std::printf("%-6s %-4s %-10s %-10s %-12s\n", "frame", "type", "psnr-Y",
              "ssim-Y", "stream [B]");

  std::size_t last_size = 0;
  double psnr_acc = 0.0;
  for (int f = 0; f < frames; ++f) {
    if (!source.read_frame(f, frame)) break;
    encoder.encode_frame(frame, &bitstream);
    const double psnr = plane_psnr(encoder.last_recon().y, frame.y);
    psnr_acc += psnr;
    std::printf("%-6d %-4s %-10.2f %-10.4f %-12zu\n", f, f == 0 ? "I" : "P",
                psnr, plane_ssim(encoder.last_recon().y, frame.y),
                bitstream.size() - last_size);
    last_size = bitstream.size();
    if (yuv_path[0] != '\0') append_yuv(encoder.last_recon(), yuv_path);
  }

  std::ofstream out(out_path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bitstream.data()),
            static_cast<std::streamsize>(bitstream.size()));
  std::printf("\nwrote %zu bytes to %s (avg psnr-Y %.2f dB)\n",
              bitstream.size(), out_path, psnr_acc / frames);
  if (yuv_path[0] != '\0') {
    std::printf("reconstruction appended to %s (I420 %dx%d)\n", yuv_path,
                cfg.width, cfg.height);
  }
  return 0;
}
