// Cluster demo: a three-node fleet survives a node crash mid-encode.
//
// Three loopback workers (each a whole simulated machine with its own
// device pool and LP balancer) register with a WorkerManager. Two tenants
// submit sessions; the biggest node crashes a few heartbeats in, so the
// manager declares it dead, fences its outstanding leases, and reassigns
// the work to the survivors, which resume from the last committed
// checkpoint. The real session's spliced bitstream is then compared
// byte-for-byte against a solo single-machine encode — node death moves
// work, never changes bits.
//
//   ./cluster_demo [frames_per_session]
#include "cluster/loopback_worker.hpp"
#include "cluster/worker_manager.hpp"
#include "codec/frame_codec.hpp"
#include "platform/presets.hpp"
#include "video/sequence.hpp"

#include <cstdio>
#include <cstdlib>
#include <memory>

int main(int argc, char** argv) {
  using namespace feves;
  using namespace feves::cluster;
  const int frames = argc > 1 ? std::atoi(argv[1]) : 8;

  EncoderConfig cfg;
  cfg.width = 192;
  cfg.height = 128;
  cfg.search_range = 8;
  cfg.num_ref_frames = 2;
  cfg.validate();

  SyntheticConfig scene;
  scene.width = cfg.width;
  scene.height = cfg.height;
  scene.frames = frames;
  scene.seed = 42;

  // The fleet: one big machine (CPU + accelerators) and two small ones.
  // The big node is the capability-attractive dispatch target — and the
  // one we crash, permanently, a few heartbeats into the run.
  NodeFaultSchedule crash;
  crash.add({/*node=*/0, /*beat_begin=*/4, kFaultForever,
             NodeFaultKind::kCrash});
  PlatformTopology small;
  small.devices.push_back(preset_cpu_nehalem());

  WorkerManagerOptions opts;
  opts.tick_sleep_ms = 0.5;
  WorkerManager mgr(opts);
  mgr.register_worker(
      std::make_unique<LoopbackWorker>(0, "big-node", make_sys_nf(), crash));
  mgr.register_worker(std::make_unique<LoopbackWorker>(
      1, "small-node-a", small, NodeFaultSchedule{}));
  mgr.register_worker(std::make_unique<LoopbackWorker>(
      2, "small-node-b", small, NodeFaultSchedule{}));

  std::printf("FEVES cluster: 3 nodes, big-node crashes at beat 4\n");
  std::printf("  session 0: real encode, %dx%d, %d frames\n", cfg.width,
              cfg.height, frames);
  std::printf("  session 1: virtual 640x384, %d frames\n\n", frames);

  // Tenant 0: a real encode (pixels in, bitstream out), chunked into
  // 2-frame leases so a node death loses at most one quantum.
  ClusterSessionConfig real;
  real.cfg = cfg;
  real.frames = frames;
  real.chunk_frames = 2;
  real.source = std::make_shared<SyntheticSequence>(scene);
  const int real_id = mgr.submit(real);

  // Tenant 1: a virtual (DES-modelled) session sharing the fleet.
  ClusterSessionConfig virt;
  virt.cfg.width = 640;
  virt.cfg.height = 384;
  virt.cfg.search_range = 8;
  virt.frames = frames;
  virt.chunk_frames = 2;
  const int virt_id = mgr.submit(virt);

  for (const ClusterSessionResult& r : mgr.drain()) {
    std::printf("session %d: %s, %d/%d frames committed, %llu epochs\n",
                r.id, to_string(r.reason), r.committed_frames,
                r.id == real_id ? real.frames : virt.frames,
                static_cast<unsigned long long>(r.final_epoch));
    if (r.id == real_id && r.reason == TerminalReason::kCompleted) {
      // Prove the robustness headline: the spliced bitstream equals a
      // solo encode on one machine, byte for byte.
      SyntheticSequence seq(scene);
      Frame420 frame(cfg.width, cfg.height);
      RefList refs(cfg.num_ref_frames);
      std::vector<u8> solo;
      for (int f = 0; f < frames; ++f) {
        seq.read_frame(f, frame);
        refs.push_front(encode_frame_reference(cfg, frame, refs, f, &solo));
      }
      std::printf("  spliced bitstream vs solo encode: %s (%zu bytes)\n",
                  r.bitstream == solo ? "bit-identical" : "DIVERGED",
                  r.bitstream.size());
    }
  }
  (void)virt_id;

  const obs::NodeTelemetry t = mgr.telemetry();
  std::printf("\nfleet: %d dispatches, %d completions, %d fenced replies, "
              "%d reassigned, %d steals, %d node deaths\n",
              t.dispatches, t.completions, t.fenced_replies, t.reassigns,
              t.steals, t.nodes_died);
  std::printf("%-14s %10s %12s %8s %12s\n", "node", "dispatch",
              "completions", "steals", "reassigned");
  for (const NodeCounters& nc : mgr.node_counters()) {
    std::printf("%-14s %10d %12d %8d %12d\n", nc.name.c_str(),
                nc.dispatches, nc.completions, nc.steals,
                nc.reassigned_away);
  }
  return 0;
}
