// Trace dump: run the virtual framework over a few inter-frames — with a
// transient kernel fault injected on one accelerator so the recovery path
// shows up — and export the orchestration timeline as Chrome trace-event
// JSON.
//
//   ./trace_dump [frames] [out.trace.json]
//
// Open the file in https://ui.perfetto.dev (or chrome://tracing): one
// process row per device, one thread track per execution lane (compute /
// copyH2D / copyD2H), plus a host row carrying the LP-solve and scheduling
// phases. Failed and cancelled ops are greyed/red and carry their status in
// the args pane.
#include "core/framework.hpp"
#include "obs/trace.hpp"
#include "platform/presets.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>

int main(int argc, char** argv) {
  using namespace feves;

  const int frames = argc > 1 ? std::atoi(argv[1]) : 6;
  const std::string path = argc > 2 ? argv[2] : "feves.trace.json";

  EncoderConfig cfg;
  cfg.width = 1920;
  cfg.height = 1088;
  cfg.search_range = 16;
  cfg.num_ref_frames = 2;
  const PlatformTopology topo = make_sys_nff();

  // One transient kernel fault on the second accelerator during frame 3:
  // the attempt fails, the device is quarantined and the frame is retried
  // on the survivors — all of it visible on the timeline.
  FaultSchedule faults;
  faults.add({/*device=*/2, /*frame_begin=*/3, /*frame_end=*/4,
              FaultKind::kKernelTransient});

  obs::TraceSession session;
  for (int d = 0; d < topo.num_devices(); ++d) {
    session.sink.set_device_name(d, topo.devices[d].name);
  }

  FrameworkOptions opts;
  opts.trace = &session;
  VirtualFramework fw(cfg, topo, opts, {}, faults);
  const auto stats = fw.encode(frames);

  for (const auto& s : stats) {
    std::printf(
        "frame %2d: %7.2f ms  retries %d  lp solves %d (%d pivots, "
        "%.3f ms)  misprediction %.1f%%\n",
        s.frame_number, s.total_ms, s.retries, s.telemetry.lp_solves,
        s.telemetry.lp_iterations, s.telemetry.lp_solve_ms,
        100.0 * s.telemetry.misprediction());
  }

  if (!session.sink.save(path)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf(
      "\nwrote %zu events to %s (dropped %llu)\n"
      "view it: open https://ui.perfetto.dev and drag the file in,\n"
      "or chrome://tracing -> Load. Tracks: one process per device,\n"
      "one thread per lane (compute / copyH2D / copyD2H), host row 'host'.\n",
      session.sink.size(), path.c_str(),
      static_cast<unsigned long long>(session.tracer.dropped()));
  return 0;
}
