// Quickstart: encode a short synthetic clip with the collaborative FEVES
// encoder on a simulated CPU+GPU platform, decode the bitstream back, and
// verify the round trip.
//
//   ./quickstart [width height frames]
//
// This is real mode: every pixel is actually encoded on host threads, with
// the framework distributing ME/INT/SME rows across the "devices" and
// running R* on the selected one, exactly as it would across a CPU and
// GPUs (see DESIGN.md §1 for the hardware substitution).
#include "codec/bitstream.hpp"
#include "core/collaborative_encoder.hpp"
#include "platform/presets.hpp"
#include "video/metrics.hpp"
#include "video/sequence.hpp"

#include <cstdio>
#include <cstdlib>

int main(int argc, char** argv) {
  using namespace feves;

  EncoderConfig cfg;
  cfg.width = argc > 1 ? std::atoi(argv[1]) : 352;
  cfg.height = argc > 2 ? std::atoi(argv[2]) : 288;
  const int frames = argc > 3 ? std::atoi(argv[3]) : 10;
  cfg.search_range = 8;
  cfg.num_ref_frames = 2;
  cfg.validate();

  // A CPU + one accelerator platform (the SysNF shape).
  const PlatformTopology topo = make_sys_nf();

  SyntheticConfig scene;
  scene.width = cfg.width;
  scene.height = cfg.height;
  scene.frames = frames;
  scene.kind = SceneKind::kRollingObjects;
  SyntheticSequence source(scene);

  std::printf("FEVES quickstart: %dx%d, %d frames, %d refs, SA %dx%d, %s\n",
              cfg.width, cfg.height, frames, cfg.num_ref_frames,
              cfg.search_area_size(), cfg.search_area_size(), "SysNF");

  CollaborativeEncoder encoder(cfg, topo);
  std::vector<u8> bitstream;
  Frame420 frame(cfg.width, cfg.height);
  std::vector<Frame420> recons;

  for (int f = 0; f < frames; ++f) {
    if (!source.read_frame(f, frame)) break;
    const FrameStats stats = encoder.encode_frame(frame, &bitstream);
    recons.push_back(encoder.last_recon());
    std::printf(
        "  frame %2d: %s  psnr-Y %5.2f dB  bitstream %7zu B  me split [",
        f, f == 0 ? "I" : "P", plane_psnr(encoder.last_recon().y, frame.y),
        bitstream.size());
    for (std::size_t i = 0; i < stats.dist.me.size(); ++i) {
      std::printf("%s%d", i ? " " : "", stats.dist.me[i]);
    }
    std::printf("]\n");
  }

  // Decode everything back and confirm bit-exact reconstructions.
  RefList dec_refs(cfg.num_ref_frames);
  BitReader br(bitstream);
  bool all_match = true;
  for (std::size_t f = 0; f < recons.size(); ++f) {
    auto pic = decode_frame(cfg, br, dec_refs);
    all_match = all_match && frames_bit_exact(pic->recon, recons[f]);
    dec_refs.push_front(std::move(pic));
  }
  std::printf("decode round-trip: %s (%zu frames, %zu bytes)\n",
              all_match ? "bit-exact" : "MISMATCH", recons.size(),
              bitstream.size());
  return all_match ? 0 : 1;
}
