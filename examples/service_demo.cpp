// Encode-service demo: three tenants share one simulated CPU + 3-GPU pool.
// Each session is a real encode (pixels, bitstream) of its own synthetic
// clip, submitted with a different fair-share weight and scheduling
// policy; the pool arbiter grants each frame a weighted share of whatever
// devices are free, and every session's per-frame activity lands in its
// own Chrome trace with a session dimension.
//
//   ./service_demo [frames_per_session]
//
// Writes service_session<N>.json traces (open in chrome://tracing or
// Perfetto; tracks are named "s<session> dev<k> ...").
#include "obs/trace.hpp"
#include "platform/presets.hpp"
#include "service/encode_service.hpp"
#include "video/sequence.hpp"

#include <cstdio>
#include <cstdlib>
#include <memory>

int main(int argc, char** argv) {
  using namespace feves;
  const int frames = argc > 1 ? std::atoi(argv[1]) : 8;

  // One host plus three accelerators, shared by every session.
  const PlatformTopology topo = make_pool(3);

  EncoderConfig cfg;
  cfg.width = 192;
  cfg.height = 128;
  cfg.search_range = 8;
  cfg.num_ref_frames = 2;
  cfg.validate();

  struct Tenant {
    const char* name;
    double weight;
    SchedulingPolicy policy;
  };
  const Tenant tenants[] = {
      {"newsfeed", 1.0, SchedulingPolicy::kAdaptiveLp},
      {"sports", 2.0, SchedulingPolicy::kAdaptiveLp},
      {"archive", 1.0, SchedulingPolicy::kEquidistant},
  };

  std::printf("FEVES encode service: %zu sessions on CPU_H + 3x GPU_K, "
              "%dx%d, %d frames each\n\n",
              std::size(tenants), cfg.width, cfg.height, frames);

  // Traces must outlive the service (sessions hold pointers into them).
  obs::TraceSession traces[std::size(tenants)];

  EncodeService svc(topo);
  int ids[std::size(tenants)];
  for (std::size_t t = 0; t < std::size(tenants); ++t) {
    SyntheticConfig scene;
    scene.width = cfg.width;
    scene.height = cfg.height;
    scene.frames = frames;
    scene.seed = 7 + static_cast<u64>(t);

    SessionConfig sc;
    sc.cfg = cfg;
    sc.fw.policy = tenants[t].policy;
    sc.fw.lb.probe_rows = 2;  // probe devices the grant churns in
    sc.fw.trace = &traces[t];
    sc.frames = frames;
    sc.weight = tenants[t].weight;
    sc.source = std::make_shared<SyntheticSequence>(scene);
    ids[t] = svc.submit(sc);
    if (ids[t] < 0) {
      std::printf("session %s was refused by admission control\n",
                  tenants[t].name);
      return 1;
    }
  }

  std::printf("%-10s %7s %7s %10s %12s %12s %6s\n", "session", "weight",
              "frames", "fps", "wait total", "bitstream", "util");
  for (std::size_t t = 0; t < std::size(tenants); ++t) {
    const SessionResult r = svc.wait(ids[t]);
    if (r.state != SessionResult::State::kCompleted) {
      std::printf("%-10s failed: %s\n", tenants[t].name, r.error.c_str());
      return 1;
    }
    std::printf("%-10s %7.1f %7zu %10.2f %10.1fms %10zu B %6.2f\n",
                tenants[t].name, r.share.weight, r.frames.size(),
                r.share.fps(), r.share.queue_wait_ms, r.bitstream.size(),
                r.share.grant_utilization());
    const std::string path =
        "service_session" + std::to_string(ids[t]) + ".json";
    if (traces[t].sink.save(path)) {
      std::printf("%-10s trace -> %s (%zu events)\n", "",
                  path.c_str(), traces[t].sink.size());
    }
  }

  const ServiceStats st = svc.stats();
  std::printf("\nservice: %d sessions, %ld frames, aggregate %.2f fps "
              "(virtual makespan %.1f ms)\n",
              st.admitted, st.total_frames, st.aggregate_fps, st.makespan_ms);
  return 0;
}
