// feves_cli — command-line encoder: raw I420 YUV in, FEVES elementary
// stream out, optional reconstructed YUV and per-frame statistics.
//
//   feves_cli --input in.yuv --width 352 --height 288 [options]
//   feves_cli --synthetic 30 --width 352 --height 288 [options]
//
// Options:
//   --output FILE       elementary stream (default: out.fvs)
//   --recon FILE        write reconstructed I420 (default: off)
//   --frames N          limit frame count
//   --sa N              search-area edge in pixels (default 32)
//   --refs N            reference frames (default 2)
//   --qp N              P-slice QP (default 28; I uses QP-1)
//   --system NAME       CPU_N|...|SysHK (default SysNF)
//   --policy NAME       adaptive|proportional|equidistant (default adaptive)
//   --decode-check      decode the stream afterwards and verify bit-exactness
#include "codec/bitstream.hpp"
#include "core/collaborative_encoder.hpp"
#include "platform/presets.hpp"
#include "video/metrics.hpp"
#include "video/sequence.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

namespace {

struct Args {
  std::string input;
  std::string output = "out.fvs";
  std::string recon;
  std::string system = "SysNF";
  std::string policy = "adaptive";
  int width = 352;
  int height = 288;
  int frames = -1;
  int synthetic = 0;
  int sa = 32;
  int refs = 2;
  int qp = 28;
  bool decode_check = false;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--input in.yuv | --synthetic N) --width W"
               " --height H\n"
               "          [--output out.fvs] [--recon out.yuv] [--frames N]\n"
               "          [--sa N] [--refs N] [--qp N] [--system NAME]\n"
               "          [--policy adaptive|proportional|equidistant]\n"
               "          [--decode-check]\n",
               argv0);
  std::exit(2);
}

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (flag == "--input") a.input = value();
    else if (flag == "--output") a.output = value();
    else if (flag == "--recon") a.recon = value();
    else if (flag == "--system") a.system = value();
    else if (flag == "--policy") a.policy = value();
    else if (flag == "--width") a.width = std::atoi(value());
    else if (flag == "--height") a.height = std::atoi(value());
    else if (flag == "--frames") a.frames = std::atoi(value());
    else if (flag == "--synthetic") a.synthetic = std::atoi(value());
    else if (flag == "--sa") a.sa = std::atoi(value());
    else if (flag == "--refs") a.refs = std::atoi(value());
    else if (flag == "--qp") a.qp = std::atoi(value());
    else if (flag == "--decode-check") a.decode_check = true;
    else usage(argv[0]);
  }
  if (a.input.empty() && a.synthetic <= 0) usage(argv[0]);
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace feves;
  const Args args = parse_args(argc, argv);

  EncoderConfig cfg;
  cfg.width = args.width;
  cfg.height = args.height;
  cfg.search_range = args.sa / 2;
  cfg.num_ref_frames = args.refs;
  cfg.qp_p = args.qp;
  cfg.qp_i = args.qp > 0 ? args.qp - 1 : 0;
  cfg.validate();

  std::unique_ptr<VideoSource> source;
  if (!args.input.empty()) {
    source = std::make_unique<YuvFileSequence>(args.input, cfg.width,
                                               cfg.height);
  } else {
    SyntheticConfig sc;
    sc.width = cfg.width;
    sc.height = cfg.height;
    sc.frames = args.synthetic;
    source = std::make_unique<SyntheticSequence>(sc);
  }
  int frames = source->frame_count();
  if (args.frames > 0 && args.frames < frames) frames = args.frames;
  if (frames <= 0) {
    std::fprintf(stderr, "no frames to encode\n");
    return 1;
  }

  FrameworkOptions opts;
  if (args.policy == "adaptive") opts.policy = SchedulingPolicy::kAdaptiveLp;
  else if (args.policy == "proportional")
    opts.policy = SchedulingPolicy::kProportional;
  else if (args.policy == "equidistant")
    opts.policy = SchedulingPolicy::kEquidistant;
  else usage(argv[0]);

  CollaborativeEncoder encoder(cfg, topology_by_name(args.system), opts);
  std::vector<u8> bitstream;
  std::vector<Frame420> recons;
  Frame420 frame(cfg.width, cfg.height);

  std::printf("feves_cli: %dx%d x%d frames, SA %dx%d, %d refs, QP %d, %s/%s\n",
              cfg.width, cfg.height, frames, args.sa, args.sa, args.refs,
              args.qp, args.system.c_str(), args.policy.c_str());

  double psnr_acc = 0.0;
  std::size_t last_size = 0;
  for (int f = 0; f < frames; ++f) {
    if (!source->read_frame(f, frame)) break;
    encoder.encode_frame(frame, &bitstream);
    const double psnr = plane_psnr(encoder.last_recon().y, frame.y);
    psnr_acc += psnr;
    std::printf("  frame %3d %s  psnr-Y %6.2f dB  %7zu B\n", f,
                f == 0 ? "I" : "P", psnr, bitstream.size() - last_size);
    last_size = bitstream.size();
    if (!args.recon.empty()) append_yuv(encoder.last_recon(), args.recon);
    if (args.decode_check) recons.push_back(encoder.last_recon());
  }

  std::ofstream out(args.output, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bitstream.data()),
            static_cast<std::streamsize>(bitstream.size()));
  std::printf("wrote %zu bytes to %s (avg psnr-Y %.2f dB, %.3f bpp)\n",
              bitstream.size(), args.output.c_str(), psnr_acc / frames,
              8.0 * static_cast<double>(bitstream.size()) /
                  (static_cast<double>(cfg.width) * cfg.height * frames));

  if (args.decode_check) {
    RefList dec_refs(cfg.num_ref_frames);
    BitReader br(bitstream);
    for (std::size_t f = 0; f < recons.size(); ++f) {
      auto pic = decode_frame(cfg, br, dec_refs);
      if (!frames_bit_exact(pic->recon, recons[f])) {
        std::fprintf(stderr, "decode mismatch at frame %zu\n", f);
        return 1;
      }
      dec_refs.push_front(std::move(pic));
    }
    std::printf("decode check: all %zu frames bit-exact\n", recons.size());
  }
  return 0;
}
