#!/usr/bin/env bash
# One-stop pre-merge check and the single CI entry point.
#
# Local usage (runs every stage, collects failures, reports them all):
#   tools/check.sh [address|thread|undefined] [--service]
#
# CI usage (one stage per job, exit code propagates that stage's result):
#   tools/check.sh --ci build-test    # configure + build + tier-1 ctest
#   tools/check.sh --ci sanitize      # nested sanitizer builds (ctest -L)
#   tools/check.sh --ci format        # clang-format over the source tree
#   tools/check.sh --ci bench-smoke   # cheap bench runs, JSON to bench-json/
#   tools/check.sh --ci chaos-smoke   # reduced chaos sweep (FEVES_CHAOS_ITERS)
#
# Environment: BUILD_TYPE sets CMAKE_BUILD_TYPE; CC/CXX select the
# toolchain; BENCH_JSON_DIR overrides the bench artifact directory.
set -uo pipefail

SAN="thread"
SERVICE=0
CI_STAGE=""
while [ $# -gt 0 ]; do
  case "$1" in
    address|thread|undefined) SAN="$1" ;;
    --service) SERVICE=1 ;;
    --ci)
      [ $# -ge 2 ] || { echo "--ci needs a stage" >&2; exit 2; }
      CI_STAGE="$2"; shift ;;
    *)
      echo "usage: $0 [address|thread|undefined] [--service] [--ci <stage>]" >&2
      exit 2 ;;
  esac
  shift
done

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build"
BENCH_JSON_DIR="${BENCH_JSON_DIR:-$BUILD/bench-json}"

# Every stage runs even after an earlier one fails; each failure is
# recorded and the script exits nonzero listing all of them — a red stage
# can never be masked by a later green one.
FAILED=()
run_stage() {
  local name="$1"; shift
  echo
  echo "==> $name"
  if "$@"; then
    echo "==> $name: OK"
  else
    echo "==> $name: FAILED" >&2
    FAILED+=("$name")
  fi
}

configure() {
  local args=(-B "$BUILD" -S "$ROOT")
  [ -n "${BUILD_TYPE:-}" ] && args+=(-DCMAKE_BUILD_TYPE="$BUILD_TYPE")
  [ -n "${FEVES_CMAKE_ARGS:-}" ] && args+=($FEVES_CMAKE_ARGS)
  cmake "${args[@]}"
}

stage_build() {
  configure && cmake --build "$BUILD" -j "$(nproc)"
}

stage_test() {
  ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)" -LE sanitize
}

stage_service_tests() {
  ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)" -L service
}

stage_service() {
  # Local-only extra: the throughput sweep's shape thresholds ride on real
  # thread interleaving, too jittery to gate CI on.
  stage_service_tests && "$BUILD/bench/ext_service_throughput"
}

stage_sanitize() {
  # `all` fans out to every flavour (CI); a single name runs one (local).
  local which="$1"
  if [ "$which" = all ]; then
    ctest --test-dir "$BUILD" --output-on-failure -L sanitize
  else
    ctest --test-dir "$BUILD" --output-on-failure -L sanitize \
      -R "sanitize.$which"
  fi
}

stage_format() {
  if ! command -v clang-format >/dev/null 2>&1; then
    echo "clang-format not found" >&2
    return 1
  fi
  local files
  files=$(find "$ROOT/src" "$ROOT/tests" "$ROOT/bench" "$ROOT/examples" \
            -name '*.cpp' -o -name '*.hpp')
  # shellcheck disable=SC2086
  clang-format --dry-run --Werror $files
}

stage_chaos_smoke() {
  # Reduced chaos sweep: the CI-sized slice of tools/chaos.sh (which drives
  # the full 500-schedule soak). Seed-deterministic, so a red run here names
  # the seeds to replay locally. timeout(1) bounds the one failure mode the
  # sweep can't report on its own: a wedged harness.
  local ok=0
  FEVES_CHAOS_ITERS="${FEVES_CHAOS_ITERS:-100}" \
    timeout --signal=ABRT 900 "$BUILD/tests/test_chaos" || ok=1
  # Node-level slice: whole-node crash/hang/partition/heartbeat-loss storms
  # against the cluster tier's fencing and reassignment invariants.
  FEVES_NODE_CHAOS_ITERS="${FEVES_NODE_CHAOS_ITERS:-40}" \
    timeout --signal=ABRT 900 "$BUILD/tests/test_cluster_chaos" || ok=1
  return $ok
}

stage_bench_smoke() {
  mkdir -p "$BENCH_JSON_DIR"
  local ok=0
  "$BUILD/bench/tab_overhead" --smoke \
      --json "$BENCH_JSON_DIR/tab_overhead.json" || ok=1
  "$BUILD/bench/ext_trace_overhead" --smoke \
      --json "$BENCH_JSON_DIR/ext_trace_overhead.json" || ok=1
  "$BUILD/bench/ext_pipeline_overhead" --smoke \
      --json "$BENCH_JSON_DIR/ext_pipeline_overhead.json" || ok=1
  "$BUILD/bench/micro_kernels" --smoke \
      --json "$BENCH_JSON_DIR/micro_kernels.json" || ok=1
  # Cluster axis only: the single-pool sweep's shape thresholds are too
  # interleaving-jittery for CI (see stage_service), but the per-node
  # counter consistency and all-sessions-complete checks are not.
  "$BUILD/bench/ext_service_throughput" --smoke --workers 4 \
      --json "$BENCH_JSON_DIR/ext_service_throughput.json" \
      >/dev/null || ok=1
  return $ok
}

case "$CI_STAGE" in
  "")
    # Local pre-merge sweep. Format is advisory here when the binary is
    # missing (developer boxes vary); CI always has it.
    run_stage "configure+build" stage_build
    run_stage "tier-1 tests" stage_test
    [ "$SERVICE" -eq 1 ] && run_stage "service battery" stage_service
    run_stage "sanitize ($SAN)" stage_sanitize "$SAN"
    if command -v clang-format >/dev/null 2>&1; then
      run_stage "format" stage_format
    else
      echo "(format check skipped: clang-format not installed)"
    fi
    ;;
  build-test)
    run_stage "configure+build" stage_build
    run_stage "tier-1 tests" stage_test
    run_stage "service tests" stage_service_tests
    ;;
  sanitize)
    # FEVES_SAN narrows to one flavour (CI matrix); default runs all three.
    run_stage "configure" configure
    run_stage "sanitize (${FEVES_SAN:-all})" stage_sanitize "${FEVES_SAN:-all}"
    ;;
  format)
    run_stage "format" stage_format
    ;;
  bench-smoke)
    run_stage "configure+build" stage_build
    run_stage "bench smoke" stage_bench_smoke
    ;;
  chaos-smoke)
    run_stage "configure+build" stage_build
    run_stage "chaos smoke" stage_chaos_smoke
    ;;
  *)
    echo "unknown --ci stage: $CI_STAGE" >&2
    echo "stages: build-test sanitize format bench-smoke chaos-smoke" >&2
    exit 2 ;;
esac

echo
if [ ${#FAILED[@]} -gt 0 ]; then
  echo "check.sh: FAILED stages: ${FAILED[*]}" >&2
  exit 1
fi
echo "check.sh: all green"
