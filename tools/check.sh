#!/usr/bin/env bash
# One-stop pre-merge check: configure + build, the full plain test suite,
# then one sanitizer sweep (tests/run_sanitized.sh via its ctest label).
# With --service, also re-runs the encode-service battery on its own and
# the multi-session throughput sweep (1/2/4/8 sessions, adaptive vs
# equidistant) — the bench exits nonzero if a shape check fails.
#
# Usage: tools/check.sh [address|thread|undefined] [--service]
set -euo pipefail

SAN="thread"
SERVICE=0
for arg in "$@"; do
  case "$arg" in
    address|thread|undefined) SAN="$arg" ;;
    --service) SERVICE=1 ;;
    *) echo "usage: $0 [address|thread|undefined] [--service]" >&2; exit 2 ;;
  esac
done

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build"

cmake -B "$BUILD" -S "$ROOT"
cmake --build "$BUILD" -j "$(nproc)"

# Plain suite first (everything except the nested sanitizer builds).
ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)" -LE sanitize

if [ "$SERVICE" -eq 1 ]; then
  # The service battery by label, then the throughput scaling sweep.
  ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)" -L service
  "$BUILD/bench/ext_service_throughput"
fi

# One sanitizer flavour; run all three with `ctest -L sanitize`.
ctest --test-dir "$BUILD" --output-on-failure -L sanitize -R "sanitize.$SAN"

echo "check.sh: all green ($SAN sanitizer sweep included)"
