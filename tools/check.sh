#!/usr/bin/env bash
# One-stop pre-merge check: configure + build, the full plain test suite,
# then one sanitizer sweep (tests/run_sanitized.sh via its ctest label).
#
# Usage: tools/check.sh [address|thread|undefined]   (default: thread)
set -euo pipefail

SAN="${1:-thread}"
case "$SAN" in
  address|thread|undefined) ;;
  *) echo "usage: $0 [address|thread|undefined]" >&2; exit 2 ;;
esac

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build"

cmake -B "$BUILD" -S "$ROOT"
cmake --build "$BUILD" -j "$(nproc)"

# Plain suite first (everything except the nested sanitizer builds).
ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)" -LE sanitize

# One sanitizer flavour; run all three with `ctest -L sanitize`.
ctest --test-dir "$BUILD" --output-on-failure -L sanitize -R "sanitize.$SAN"

echo "check.sh: all green ($SAN sanitizer sweep included)"
