#!/usr/bin/env bash
# Chaos sweep driver: hundreds of randomized fault-storm / abort / overload
# schedules against the EncodeService resilience invariants (no deadlock, no
# leaked lease or grant, attributed terminal states, completed real sessions
# bit-exact vs solo). The schedules are seed-deterministic: a failure report
# names the seed, and rerunning with the same iteration count replays it.
#
# Usage:
#   tools/chaos.sh                 # full sweep, 500 schedules, release build
#   tools/chaos.sh --iters 2000    # longer soak
#   tools/chaos.sh --tsan          # reduced sweep under ThreadSanitizer
#
# Environment: FEVES_CHAOS_ITERS overrides the schedule count (the flag
# wins); BUILD_TYPE sets CMAKE_BUILD_TYPE for the non-TSan build.
set -euo pipefail

ITERS=""
TSAN=0
while [ $# -gt 0 ]; do
  case "$1" in
    --iters)
      [ $# -ge 2 ] || { echo "--iters needs a count" >&2; exit 2; }
      ITERS="$2"; shift ;;
    --tsan) TSAN=1 ;;
    *)
      echo "usage: $0 [--iters N] [--tsan]" >&2
      exit 2 ;;
  esac
  shift
done

ROOT="$(cd "$(dirname "$0")/.." && pwd)"

if [ "$TSAN" -eq 1 ]; then
  # TSan multiplies runtime ~10x; a reduced sweep still covers the
  # interleaving space the sanitizer is there to probe.
  ITERS="${ITERS:-${FEVES_CHAOS_ITERS:-60}}"
  BUILD="$ROOT/build-thread"
  cmake -B "$BUILD" -S "$ROOT" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DFEVES_SANITIZE=thread \
    -DFEVES_BUILD_BENCH=OFF \
    -DFEVES_BUILD_EXAMPLES=OFF
  export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"
else
  ITERS="${ITERS:-${FEVES_CHAOS_ITERS:-500}}"
  BUILD="$ROOT/build"
  args=(-B "$BUILD" -S "$ROOT")
  [ -n "${BUILD_TYPE:-}" ] && args+=(-DCMAKE_BUILD_TYPE="$BUILD_TYPE")
  cmake "${args[@]}"
fi

cmake --build "$BUILD" -j "$(nproc)" --target test_chaos

# A deadlock anywhere in the sweep must surface as a bounded failure, not a
# wedged terminal: the harness's own per-schedule watchdogs catch session
# hangs, and this outer timeout catches a wedged harness itself.
echo "chaos.sh: running $ITERS randomized schedules"
FEVES_CHAOS_ITERS="$ITERS" timeout 3600 "$BUILD/tests/test_chaos"

echo "chaos.sh: $ITERS schedules clean"
