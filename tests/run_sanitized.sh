#!/usr/bin/env bash
# Builds the suite under a sanitizer and runs the concurrency-critical tests:
# the op-graph executors, the thread pool, and the fault-injection/recovery
# paths (whose retry loop exercises executor teardown under failure).
#
# Usage: tests/run_sanitized.sh [address|thread|undefined]   (default: thread)
set -euo pipefail

SAN="${1:-thread}"
case "$SAN" in
  address|thread|undefined) ;;
  *) echo "usage: $0 [address|thread|undefined]" >&2; exit 2 ;;
esac

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-$SAN"

cmake -B "$BUILD" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DFEVES_SANITIZE="$SAN" \
  -DFEVES_BUILD_BENCH=OFF \
  -DFEVES_BUILD_EXAMPLES=OFF
cmake --build "$BUILD" -j "$(nproc)" \
  --target test_platform test_common test_core test_service test_obs \
           test_chaos test_codec test_cluster test_cluster_chaos

export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1 print_stacktrace=1}"

# Every binary runs under a hard wall-clock bound: the failure modes these
# sweeps hunt (lost condvar wakes, leaked leases, deadlocked session loops)
# present as hangs, and timeout(1) turns a hang into a bounded nonzero exit
# instead of a CI job pinned until the runner's global kill.
run_bounded() {
  timeout --signal=ABRT "${FEVES_TEST_TIMEOUT:-900}" "$@"
}

# Executors + fault machinery, the thread pool, and the end-to-end recovery
# loops (real mode spawns one thread per lane every attempt).
run_bounded "$BUILD/tests/test_platform" --gtest_filter='*Executor*:*Fault*:*Schedule*:OpGraph.*:DevicePool.*:DeviceLease.*:*Arbiter*'
run_bounded "$BUILD/tests/test_common" --gtest_filter='ThreadPool*:LogRace*'
run_bounded "$BUILD/tests/test_core" --gtest_filter='FaultRecovery*:DeviceHealthMonitor.*'

# Kernel-registry oracle battery: the explicit SSE2/AVX2 tiers' loads and
# stores under ASan/UBSan, then again with the CPU capped at SSE2 so the
# degraded dispatch ladder (AVX2 request resolving down) is the path taken.
run_bounded "$BUILD/tests/test_codec" --gtest_filter='SimdTiers*'
FEVES_CPU_CAP=sse2 \
  run_bounded "$BUILD/tests/test_codec" --gtest_filter='SimdTiers*'

# Multi-session encode service: session churn / abort races under the
# arbiter, the resilience ladder (restart/backoff/shed races), plus the
# tracer writer-pool race regression.
run_bounded "$BUILD/tests/test_service" --gtest_filter='ServiceStress*:ArbiterGrantRaii.*:ServiceResilience.*'
run_bounded "$BUILD/tests/test_obs" --gtest_filter='Tracer.*'

# Reduced chaos sweep: randomized fault-storm/abort/overload schedules are
# exactly the interleavings the sanitizers are here to probe. tools/chaos.sh
# drives the full 500-schedule sweep; a handful suffices per sanitizer.
FEVES_CHAOS_ITERS="${FEVES_CHAOS_ITERS:-8}" \
  run_bounded "$BUILD/tests/test_chaos"

# Cluster tier: manager driver thread vs worker executor threads vs the
# completion sink is the racy triangle; the functional battery plus a
# reduced node-chaos sweep cover dispatch, fencing, and teardown orders.
run_bounded "$BUILD/tests/test_cluster"
FEVES_NODE_CHAOS_ITERS="${FEVES_NODE_CHAOS_ITERS:-4}" \
  run_bounded "$BUILD/tests/test_cluster_chaos"

echo "run_sanitized.sh: all $SAN-sanitized tests passed"
