#!/usr/bin/env bash
# Builds the suite under a sanitizer and runs the concurrency-critical tests:
# the op-graph executors, the thread pool, and the fault-injection/recovery
# paths (whose retry loop exercises executor teardown under failure).
#
# Usage: tests/run_sanitized.sh [address|thread|undefined]   (default: thread)
set -euo pipefail

SAN="${1:-thread}"
case "$SAN" in
  address|thread|undefined) ;;
  *) echo "usage: $0 [address|thread|undefined]" >&2; exit 2 ;;
esac

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-$SAN"

cmake -B "$BUILD" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DFEVES_SANITIZE="$SAN" \
  -DFEVES_BUILD_BENCH=OFF \
  -DFEVES_BUILD_EXAMPLES=OFF
cmake --build "$BUILD" -j "$(nproc)" \
  --target test_platform test_common test_core test_service test_obs

export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1 print_stacktrace=1}"

# Executors + fault machinery, the thread pool, and the end-to-end recovery
# loops (real mode spawns one thread per lane every attempt).
"$BUILD/tests/test_platform" --gtest_filter='*Executor*:*Fault*:*Schedule*:OpGraph.*:DevicePool.*:DeviceLease.*'
"$BUILD/tests/test_common" --gtest_filter='ThreadPool*:LogRace*'
"$BUILD/tests/test_core" --gtest_filter='FaultRecovery*:DeviceHealthMonitor.*'

# Multi-session encode service: session churn / abort races under the
# arbiter, plus the tracer writer-pool race regression.
"$BUILD/tests/test_service" --gtest_filter='ServiceStress*'
"$BUILD/tests/test_obs" --gtest_filter='Tracer.*'

echo "run_sanitized.sh: all $SAN-sanitized tests passed"
