#include "common/span2d.hpp"
#include "video/frame.hpp"
#include "video/plane.hpp"

#include <gtest/gtest.h>

namespace feves {
namespace {

TEST(Span2D, BasicAddressing) {
  std::vector<int> data(20, 0);
  Span2D<int> s(data.data(), 4, 5, 4);
  s(2, 3) = 42;
  EXPECT_EQ(data[2 * 4 + 3], 42);
  EXPECT_EQ(s.at(2, 3), 42);
}

TEST(Span2D, AtThrowsOutOfRange) {
  std::vector<int> data(20, 0);
  Span2D<int> s(data.data(), 4, 5, 4);
  EXPECT_THROW(s.at(5, 0), Error);
  EXPECT_THROW(s.at(0, 4), Error);
  EXPECT_THROW(s.at(-1, 0), Error);
}

TEST(Span2D, SubViewSharesStorage) {
  std::vector<int> data(100, 0);
  Span2D<int> s(data.data(), 10, 10, 10);
  auto sub = s.sub(2, 3, 4, 5);
  sub(0, 0) = 7;
  EXPECT_EQ(s(3, 2), 7);
  EXPECT_EQ(sub.width(), 4);
  EXPECT_EQ(sub.height(), 5);
}

TEST(Span2D, SubViewBoundsChecked) {
  std::vector<int> data(100, 0);
  Span2D<int> s(data.data(), 10, 10, 10);
  EXPECT_THROW(s.sub(8, 0, 4, 4), Error);
  EXPECT_THROW(s.sub(0, 8, 4, 4), Error);
}

TEST(Plane, StrideIsAlignedAndCoversBorder) {
  PlaneU8 p(33, 17, 8);
  EXPECT_GE(p.stride(), 33 + 16);
  EXPECT_EQ(p.stride() % 64, 0);
  EXPECT_EQ(p.width(), 33);
  EXPECT_EQ(p.height(), 17);
}

TEST(Plane, BorderAccessWithinLimits) {
  PlaneU8 p(16, 16, 4);
  p.at(-4, -4) = 9;
  p.at(19, 19) = 11;
  EXPECT_EQ(p.at(-4, -4), 9);
  EXPECT_EQ(p.at(19, 19), 11);
  EXPECT_THROW(p.at(-5, 0), Error);
  EXPECT_THROW(p.at(0, 20), Error);
}

TEST(Plane, ExtendBordersReplicatesEdges) {
  PlaneU8 p(4, 4, 3);
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) {
      p.at(y, x) = static_cast<u8>(10 * y + x);
    }
  }
  p.extend_borders();
  // Left/right replication.
  EXPECT_EQ(p.at(2, -1), p.at(2, 0));
  EXPECT_EQ(p.at(2, -3), p.at(2, 0));
  EXPECT_EQ(p.at(1, 5), p.at(1, 3));
  // Top/bottom replication (including corners).
  EXPECT_EQ(p.at(-2, 1), p.at(0, 1));
  EXPECT_EQ(p.at(6, 2), p.at(3, 2));
  EXPECT_EQ(p.at(-3, -3), p.at(0, 0));
  EXPECT_EQ(p.at(6, 6), p.at(3, 3));
}

TEST(Frame420, GeometryAndChromaSubsampling) {
  Frame420 f(64, 48, 16);
  EXPECT_EQ(f.y.width(), 64);
  EXPECT_EQ(f.u.width(), 32);
  EXPECT_EQ(f.v.height(), 24);
  EXPECT_EQ(f.u.border(), 8);
}

TEST(SubPelFrame, SixteenPhases) {
  SubPelFrame sf(32, 32, 8);
  for (int dy = 0; dy < 4; ++dy) {
    for (int dx = 0; dx < 4; ++dx) {
      EXPECT_EQ(sf.phase(dy, dx).width(), 32);
    }
  }
  EXPECT_THROW(sf.phase(4, 0), Error);
}

}  // namespace
}  // namespace feves
