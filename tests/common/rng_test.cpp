#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace feves {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const i64 v = rng.uniform_int(-5, 11);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 11);
  }
}

TEST(Rng, UniformIntHitsAllValuesOfSmallRange) {
  Rng rng(9);
  std::set<i64> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, GaussianMomentsRoughlyCorrect) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.gaussian(5.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

}  // namespace
}  // namespace feves
