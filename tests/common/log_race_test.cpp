// Regression for a latent global-state hazard: the log threshold used to
// be a plain static read by every FEVES_LOG call site while set_log_level
// wrote it — a data race once executor lanes and encode-service session
// threads log concurrently with a main thread adjusting verbosity. The
// threshold is atomic now; this test recreates the racing access pattern
// so TSAN (tests/run_sanitized.sh) fails if the atomic ever regresses to a
// plain static.
#include "common/log.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace feves {
namespace {

TEST(LogRace, ThresholdReadsRaceLevelChanges) {
  const LogLevel before = log_level();
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        // Filtered out at every level this test sets — the threshold read
        // is the point, not the output.
        FEVES_DEBUG("log_race", "probe " << 1);
      }
    });
  }
  for (int i = 0; i < 20000; ++i) {
    set_log_level((i & 1) != 0 ? LogLevel::kError : LogLevel::kWarn);
  }
  stop.store(true);
  for (auto& r : readers) r.join();
  set_log_level(before);
  const LogLevel after = log_level();
  EXPECT_TRUE(after == before);
}

TEST(LogRace, SetThenGetRoundTrips) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kInfo);
  EXPECT_TRUE(log_level() == LogLevel::kInfo);
  set_log_level(before);
}

}  // namespace
}  // namespace feves
