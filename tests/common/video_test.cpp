#include "codec/refpic.hpp"
#include "common/rng.hpp"
#include "video/metrics.hpp"
#include "video/sequence.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

namespace feves {
namespace {

TEST(Metrics, PsnrOfIdenticalPlanesIsInfinite) {
  PlaneU8 a(32, 32, 0), b(32, 32, 0);
  a.fill(100);
  b.fill(100);
  EXPECT_TRUE(std::isinf(plane_psnr(a, b)));
  EXPECT_DOUBLE_EQ(plane_mse(a, b), 0.0);
}

TEST(Metrics, KnownMse) {
  PlaneU8 a(16, 16, 0), b(16, 16, 0);
  a.fill(100);
  b.fill(104);  // every pixel off by 4 -> MSE 16, PSNR ~36.08 dB
  EXPECT_DOUBLE_EQ(plane_mse(a, b), 16.0);
  EXPECT_NEAR(plane_psnr(a, b), 36.08, 0.02);
}

TEST(Metrics, SsimBoundsAndIdentity) {
  PlaneU8 a(32, 32, 0);
  Rng rng(5);
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      a.at(y, x) = static_cast<u8>(rng.uniform_int(0, 255));
    }
  }
  EXPECT_NEAR(plane_ssim(a, a), 1.0, 1e-9);
  PlaneU8 b(32, 32, 0);
  b.fill(128);
  const double s = plane_ssim(a, b);
  EXPECT_LT(s, 0.5);
  EXPECT_GE(s, -1.0);
}

TEST(Metrics, BitExactDetectsSinglePixelChange) {
  Frame420 a(32, 32), b(32, 32);
  a.y.fill(7);
  b.y.fill(7);
  EXPECT_TRUE(frames_bit_exact(a, b));
  b.u.at(3, 3) = 9;
  EXPECT_FALSE(frames_bit_exact(a, b));
}

TEST(Synthetic, DeterministicAcrossInstances) {
  SyntheticConfig sc;
  sc.width = 64;
  sc.height = 48;
  sc.frames = 3;
  SyntheticSequence s1(sc), s2(sc);
  Frame420 f1(64, 48), f2(64, 48);
  for (int f = 0; f < 3; ++f) {
    ASSERT_TRUE(s1.read_frame(f, f1));
    ASSERT_TRUE(s2.read_frame(f, f2));
    EXPECT_TRUE(frames_bit_exact(f1, f2)) << "frame " << f;
  }
}

TEST(Synthetic, RandomAccessMatchesSequential) {
  SyntheticConfig sc;
  sc.width = 64;
  sc.height = 48;
  sc.frames = 5;
  SyntheticSequence seq(sc);
  Frame420 f2a(64, 48), f2b(64, 48), tmp(64, 48);
  ASSERT_TRUE(seq.read_frame(2, f2a));
  ASSERT_TRUE(seq.read_frame(4, tmp));
  ASSERT_TRUE(seq.read_frame(2, f2b));  // re-read out of order
  EXPECT_TRUE(frames_bit_exact(f2a, f2b));
}

TEST(Synthetic, FramesActuallyMove) {
  SyntheticConfig sc;
  sc.width = 64;
  sc.height = 48;
  sc.frames = 2;
  sc.noise_stddev = 0.0;
  SyntheticSequence seq(sc);
  Frame420 f0(64, 48), f1(64, 48);
  ASSERT_TRUE(seq.read_frame(0, f0));
  ASSERT_TRUE(seq.read_frame(1, f1));
  EXPECT_FALSE(frames_bit_exact(f0, f1));
  // But temporally close frames stay highly correlated (predictable).
  EXPECT_GT(plane_psnr(f0.y, f1.y), 15.0);
}

TEST(Synthetic, EndOfSequence) {
  SyntheticConfig sc;
  sc.width = 32;
  sc.height = 32;
  sc.frames = 2;
  SyntheticSequence seq(sc);
  Frame420 f(32, 32);
  EXPECT_TRUE(seq.read_frame(1, f));
  EXPECT_FALSE(seq.read_frame(2, f));
  EXPECT_FALSE(seq.read_frame(-1, f));
}

TEST(YuvFile, RoundTripThroughDisk) {
  const std::string path = "/tmp/feves_yuv_test.yuv";
  std::remove(path.c_str());
  SyntheticConfig sc;
  sc.width = 64;
  sc.height = 48;
  sc.frames = 3;
  SyntheticSequence seq(sc);
  Frame420 f(64, 48);
  std::vector<Frame420> originals;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(seq.read_frame(i, f));
    append_yuv(f, path);
    originals.push_back(f);
  }

  YuvFileSequence file(path, 64, 48);
  EXPECT_EQ(file.frame_count(), 3);
  Frame420 g(64, 48);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(file.read_frame(i, g));
    EXPECT_TRUE(frames_bit_exact(g, originals[i])) << "frame " << i;
  }
  EXPECT_FALSE(file.read_frame(3, g));
  std::remove(path.c_str());
}

TEST(YuvFile, MissingFileThrows) {
  EXPECT_THROW(YuvFileSequence("/nonexistent/foo.yuv", 64, 48), Error);
}

TEST(RefList, SlidingWindowEvictsOldest) {
  RefList refs(2);
  for (int i = 0; i < 3; ++i) {
    auto pic = std::make_unique<RefPicture>(32, 32, 8);
    pic->frame_number = i;
    refs.push_front(std::move(pic));
  }
  EXPECT_EQ(refs.size(), 2);
  EXPECT_EQ(refs.ref(0).frame_number, 2);
  EXPECT_EQ(refs.ref(1).frame_number, 1);
}

TEST(RefList, RejectsBadCapacity) {
  EXPECT_THROW(RefList(0), Error);
  EXPECT_THROW(RefList(17), Error);
}

TEST(RefBorder, CoversSearchAndInterpolation) {
  EncoderConfig cfg;
  cfg.width = 96;
  cfg.height = 64;
  cfg.search_range = 12;
  // FSBM candidate at +R-1 plus a 16-pixel block plus 6-tap margin.
  EXPECT_GE(ref_border(cfg), cfg.search_range + 16 + 3);
}

}  // namespace
}  // namespace feves
