#include "common/config.hpp"

#include <gtest/gtest.h>

namespace feves {
namespace {

TEST(EncoderConfig, DefaultsAreValid1080p) {
  // "1080p" in MB terms is 1920x1088 (H.264 codes full macroblocks and
  // crops), 120x68 MBs; the default config uses the coded size.
  EncoderConfig cfg;
  EXPECT_NO_THROW(cfg.validate());
  EXPECT_EQ(cfg.mb_width(), 120);
  EXPECT_EQ(cfg.mb_height(), 68);
}

TEST(EncoderConfig, RejectsNonMacroblockAlignedDimensions) {
  EncoderConfig cfg;
  cfg.width = 100;
  EXPECT_THROW(cfg.validate(), Error);
  cfg.width = 1920;
  cfg.height = 1000;
  EXPECT_THROW(cfg.validate(), Error);
}

TEST(EncoderConfig, RejectsOutOfRangeParameters) {
  EncoderConfig cfg;
  cfg.width = 352;
  cfg.height = 288;
  cfg.search_range = 0;
  EXPECT_THROW(cfg.validate(), Error);
  cfg.search_range = 129;
  EXPECT_THROW(cfg.validate(), Error);
  cfg.search_range = 16;
  cfg.num_ref_frames = 17;
  EXPECT_THROW(cfg.validate(), Error);
  cfg.num_ref_frames = 4;
  cfg.qp_p = 52;
  EXPECT_THROW(cfg.validate(), Error);
  cfg.qp_p = 28;
  cfg.partitions = PartitionSet{false, false, false, false,
                                false, false, false};
  EXPECT_THROW(cfg.validate(), Error);
}

TEST(EncoderConfig, SearchAreaSizeMatchesPaperConvention) {
  EncoderConfig cfg;
  cfg.search_range = 16;
  EXPECT_EQ(cfg.search_area_size(), 32);  // the paper's "32x32 SA"
  cfg.search_range = 128;
  EXPECT_EQ(cfg.search_area_size(), 256);
}

TEST(EncoderConfig, MbRowAccounting) {
  EncoderConfig cfg;
  cfg.width = 352;
  cfg.height = 288;
  EXPECT_EQ(cfg.mb_width(), 22);
  EXPECT_EQ(cfg.num_mb_rows(), 18);
  EXPECT_EQ(cfg.total_mbs(), 396);
}

}  // namespace
}  // namespace feves
