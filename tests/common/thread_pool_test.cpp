#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace feves {
namespace {

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ThreadPool, SubmitRunsTask) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  auto fut = pool.submit([&] { counter.fetch_add(1); });
  fut.wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, SubmitPropagatesResultOrdering) {
  ThreadPool pool(4);
  std::vector<std::future<void>> futs;
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    futs.push_back(pool.submit([&count] { count.fetch_add(1); }));
  }
  for (auto& f : futs) f.wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr int kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(0, kN, [&](int i) { hits[i].fetch_add(1); });
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(5, 5, [&](int) { ++calls; });
  pool.parallel_for(7, 3, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, ParallelForSingleElement) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  pool.parallel_for(41, 42, [&](int i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 41);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [](int i) {
                          if (i == 57) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ParallelForLargeSum) {
  ThreadPool pool(4);
  constexpr int kN = 10000;
  std::atomic<long long> sum{0};
  pool.parallel_for(0, kN, [&](int i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), static_cast<long long>(kN) * (kN - 1) / 2);
}

// Regression: when fn throws, parallel_for must join every in-flight worker
// BEFORE unwinding (the workers reference state on the caller's stack) and
// the pool must stay fully usable afterwards. Run under TSAN via
// tests/run_sanitized.sh.
TEST(ThreadPool, ParallelForJoinsWorkersBeforeUnwinding) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> started{0};
    try {
      pool.parallel_for(0, 256, [&](int i) {
        started.fetch_add(1, std::memory_order_relaxed);
        if (i % 17 == 3) throw std::runtime_error("boom");
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error&) {
      // If a worker were still draining here it would touch `started`
      // after this round's stack frame died; TSAN (and eventually ASAN)
      // would flag it. Surviving 50 rounds cleanly is the regression check.
    }
    std::atomic<int> after{0};
    pool.parallel_for(0, 64, [&](int i) { after.fetch_add(i); });
    EXPECT_EQ(after.load(), 64 * 63 / 2);
  }
}

// Regression: the rethrown error must be deterministic — the lowest-indexed
// throwing chunk wins, not whichever worker reaches the error lock first.
// Index `begin` is always in the first chunk handed out, so when every
// index throws, the reported error must always be fn(begin)'s.
TEST(ThreadPool, ParallelForRethrowsDeterministicFirstError) {
  ThreadPool pool(4);
  for (int round = 0; round < 100; ++round) {
    try {
      pool.parallel_for(10, 400, [](int i) {
        throw std::runtime_error(std::to_string(i));
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "10") << "round " << round;
    }
  }
}

}  // namespace
}  // namespace feves
