// Multi-session encode service: the correctness battery. The anchor
// property is bit-exactness under concurrency — whatever the arbiter
// grants frame to frame, every session's bitstream and reconstruction
// equal the single-device reference encode of its own sequence — plus the
// arbiter's fair-share policy (weighted shares, idle-share rebalancing,
// admission control, abort) and the service-level throughput criterion
// (4 concurrent sessions on the big pool beat one session by >= 2.5x).
#include "service/encode_service.hpp"

#include "codec/bitstream.hpp"
#include "obs/trace.hpp"
#include "platform/presets.hpp"
#include "video/metrics.hpp"
#include "video/sequence.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <thread>
#include <tuple>

namespace feves {
namespace {

EncoderConfig small_config(int refs = 2) {
  EncoderConfig cfg;
  cfg.width = 96;
  cfg.height = 64;
  cfg.search_range = 8;
  cfg.num_ref_frames = refs;
  return cfg;
}

/// Large virtual config: enough MB rows that the big pool saturates a
/// single session (virtual mode never touches pixels, so this is cheap).
EncoderConfig big_virtual_config() {
  EncoderConfig cfg;
  cfg.width = 1920;
  cfg.height = 1088;
  cfg.search_range = 16;
  cfg.num_ref_frames = 1;
  return cfg;
}

/// Each session gets its own scene (distinct seed): cross-session state
/// bleed cannot cancel out between identical inputs.
SyntheticConfig scene(const EncoderConfig& cfg, int frames, int session) {
  SyntheticConfig sc;
  sc.width = cfg.width;
  sc.height = cfg.height;
  sc.frames = frames;
  sc.num_objects = 3;
  sc.max_object_speed = 3.0;
  sc.seed = 99 + static_cast<u64>(session);
  return sc;
}

PlatformTopology test_topo(int accels) {
  PlatformTopology t;
  t.devices.push_back(preset_cpu_nehalem());
  for (int i = 0; i < accels; ++i) {
    auto g = preset_gpu_fermi();
    g.name = "GPU#" + std::to_string(i);
    t.devices.push_back(g);
  }
  return t;
}

std::vector<Frame420> load_frames(const SyntheticConfig& sconf, int count) {
  SyntheticSequence seq(sconf);
  std::vector<Frame420> frames;
  for (int f = 0; f < count; ++f) {
    frames.emplace_back(sconf.width, sconf.height);
    EXPECT_TRUE(seq.read_frame(f, frames.back()));
  }
  return frames;
}

std::vector<Frame420> reference_encode(const EncoderConfig& cfg,
                                       const std::vector<Frame420>& frames,
                                       std::vector<u8>* bits) {
  RefList refs(cfg.num_ref_frames);
  std::vector<Frame420> recons;
  for (std::size_t f = 0; f < frames.size(); ++f) {
    auto pic = encode_frame_reference(cfg, frames[f], refs,
                                      static_cast<int>(f), bits);
    recons.push_back(pic->recon);
    refs.push_front(std::move(pic));
  }
  return recons;
}

/// Transient faults on two accelerators: the recovery machinery runs under
/// multi-tenancy, and the output must not notice.
FaultSchedule transient_faults() {
  FaultSchedule faults;
  faults.add({/*device=*/1, /*frame_begin=*/2, /*frame_end=*/3,
              FaultKind::kKernelTransient});
  faults.add({/*device=*/2, /*frame_begin=*/3, /*frame_end=*/4,
              FaultKind::kTransferTransient});
  return faults;
}

// ---- Bit-exactness under concurrency --------------------------------------

class ServiceBitExact
    : public ::testing::TestWithParam<std::tuple<int, SchedulingPolicy, bool>> {
};

TEST_P(ServiceBitExact, EverySessionMatchesItsSoloEncode) {
  const auto [nsessions, policy, faulty] = GetParam();
  const auto cfg = small_config();
  const int kFrames = 5;
  const PlatformTopology topo = test_topo(3);

  // Solo references, one per session's distinct sequence.
  std::vector<std::vector<u8>> ref_bits(static_cast<std::size_t>(nsessions));
  std::vector<std::vector<Frame420>> ref_recons;
  for (int s = 0; s < nsessions; ++s) {
    const auto frames = load_frames(scene(cfg, kFrames, s), kFrames);
    ref_recons.push_back(
        reference_encode(cfg, frames, &ref_bits[static_cast<std::size_t>(s)]));
  }

  EncodeService svc(topo);
  std::vector<int> ids;
  for (int s = 0; s < nsessions; ++s) {
    SessionConfig sc;
    sc.cfg = cfg;
    sc.fw.policy = policy;
    sc.fw.lb.probe_rows = 2;  // exercise share-aware probe balancing
    sc.frames = kFrames;
    if (faulty) sc.faults = transient_faults();
    sc.source = std::make_shared<SyntheticSequence>(scene(cfg, kFrames, s));
    const int id = svc.submit(sc);
    ASSERT_GE(id, 0);
    ids.push_back(id);
  }

  for (int s = 0; s < nsessions; ++s) {
    SessionResult r = svc.wait(ids[static_cast<std::size_t>(s)]);
    ASSERT_EQ(r.state, SessionResult::State::kCompleted)
        << "session " << s << ": " << r.error;
    EXPECT_EQ(r.bitstream, ref_bits[static_cast<std::size_t>(s)])
        << "session " << s << " bitstream diverged from its solo encode";

    // Reconstruction check: decode the session's bitstream and compare
    // frame by frame against the reference reconstructions.
    RefList dec_refs(cfg.num_ref_frames);
    BitReader br(r.bitstream);
    for (int f = 0; f < kFrames; ++f) {
      auto pic = decode_frame(cfg, br, dec_refs);
      EXPECT_TRUE(frames_bit_exact(
          pic->recon,
          ref_recons[static_cast<std::size_t>(s)][static_cast<std::size_t>(f)]))
          << "session " << s << " frame " << f << " reconstruction diverged";
      dec_refs.push_front(std::move(pic));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SessionsPoliciesFaults, ServiceBitExact,
    ::testing::Values(
        std::tuple{1, SchedulingPolicy::kAdaptiveLp, false},
        std::tuple{2, SchedulingPolicy::kAdaptiveLp, false},
        std::tuple{4, SchedulingPolicy::kAdaptiveLp, false},
        std::tuple{8, SchedulingPolicy::kAdaptiveLp, false},
        std::tuple{4, SchedulingPolicy::kEquidistant, false},
        std::tuple{2, SchedulingPolicy::kProportional, false},
        std::tuple{4, SchedulingPolicy::kAdaptiveLp, true},
        std::tuple{8, SchedulingPolicy::kEquidistant, true}));

// ---- Throughput scaling (the acceptance criterion) ------------------------

double aggregate_fps(const PlatformTopology& topo, int nsessions, int frames) {
  EncodeService svc(topo);
  for (int s = 0; s < nsessions; ++s) {
    SessionConfig sc;
    sc.cfg = big_virtual_config();
    sc.fw.policy = SchedulingPolicy::kAdaptiveLp;
    sc.fw.lb.probe_rows = 2;
    sc.frames = frames;
    EXPECT_GE(svc.submit(sc), 0);
  }
  for (const SessionResult& r : svc.drain()) {
    EXPECT_EQ(r.state, SessionResult::State::kCompleted) << r.error;
  }
  return svc.stats().aggregate_fps;
}

TEST(ServiceThroughput, FourSessionsScaleAggregateOnBigPool) {
  // The acceptance criterion: one session cannot saturate the big pool
  // (per-accelerator broadcast, serial R*, tau syncs), so four concurrent
  // sessions on fair shares must push aggregate throughput >= 2.5x one
  // session's. Virtual mode: deterministic, no pixels.
  const PlatformTopology topo = make_pool_big();
  const double one = aggregate_fps(topo, 1, 16);
  const double four = aggregate_fps(topo, 4, 16);
  ASSERT_GT(one, 0.0);
  EXPECT_GE(four, 2.5 * one)
      << "aggregate with 4 sessions " << four << " fps vs single " << one;
}

// ---- Arbiter policy -------------------------------------------------------

std::vector<bool> all_usable(int n) {
  return std::vector<bool>(static_cast<std::size_t>(n), true);
}

TEST(PoolArbiter, FairShareSplitsPoolAmongLiveSessions) {
  PoolArbiter arb(8);
  const int a = arb.admit();
  const int b = arb.admit();
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  auto grant = arb.acquire(a, all_usable(8));
  ASSERT_TRUE(grant.has_value());
  EXPECT_EQ(grant->num_devices, 4);  // 8 devices / 2 equal-weight sessions
  arb.release(a, std::move(*grant), 10.0, 4);
  arb.retire(b);
}

TEST(PoolArbiter, IdleSharesRebalanceToSurvivors) {
  PoolArbiter arb(8);
  const int a = arb.admit();
  const int b = arb.admit();
  auto g1 = arb.acquire(a, all_usable(8));
  ASSERT_TRUE(g1.has_value());
  EXPECT_EQ(g1->num_devices, 4);
  arb.release(a, std::move(*g1), 10.0, 4);
  arb.retire(b);  // b leaves without ever encoding
  auto g2 = arb.acquire(a, all_usable(8));
  ASSERT_TRUE(g2.has_value());
  EXPECT_EQ(g2->num_devices, 8) << "retired session's share must rebalance";
  arb.release(a, std::move(*g2), 10.0, 8);
  arb.retire(a);
}

TEST(PoolArbiter, WeightedSharesAreProportional) {
  PoolArbiter arb(8);
  const int heavy = arb.admit(/*weight=*/3.0);
  const int light = arb.admit(/*weight=*/1.0);
  auto gh = arb.acquire(heavy, all_usable(8));
  ASSERT_TRUE(gh.has_value());
  EXPECT_EQ(gh->num_devices, 6);  // 8 * 3/4
  auto gl = arb.acquire(light, all_usable(8));
  ASSERT_TRUE(gl.has_value());
  EXPECT_EQ(gl->num_devices, 2);  // 8 * 1/4 (also all that is left)
  arb.release(heavy, std::move(*gh), 5.0, 6);
  arb.release(light, std::move(*gl), 5.0, 2);
  arb.retire(heavy);
  arb.retire(light);
}

TEST(PoolArbiter, AdmissionControlBoundsLiveSessions) {
  ArbiterOptions opts;
  opts.max_sessions = 2;
  PoolArbiter arb(4, opts);
  EXPECT_GE(arb.admit(), 0);
  const int b = arb.admit();
  EXPECT_GE(b, 0);
  EXPECT_EQ(arb.admit(), -1) << "third session must be refused";
  arb.retire(b);
  EXPECT_GE(arb.admit(), 0) << "slot must free up after retire";
}

TEST(PoolArbiter, AbortUnblocksParkedAcquire) {
  PoolArbiter arb(2);
  const int a = arb.admit();
  auto ga = arb.acquire(a, all_usable(2));  // only live session: whole pool
  ASSERT_TRUE(ga.has_value());
  ASSERT_EQ(ga->num_devices, 2);
  const int b = arb.admit();
  std::optional<PoolArbiter::Grant> gb;
  std::thread waiter([&] { gb = arb.acquire(b, all_usable(2)); });
  arb.abort(b);
  waiter.join();
  EXPECT_FALSE(gb.has_value());
  arb.release(a, std::move(*ga), 1.0, 2);
  arb.retire(a);
  arb.retire(b);
}

TEST(PoolArbiter, QueueWaitTracksVirtualDeviceContention) {
  // Two sessions sharing one device: the second frame's device is
  // virtually busy for the first's 10ms, so the arbiter must book that
  // wait against the session that was made to queue.
  PoolArbiter arb(1);
  const int a = arb.admit();
  const int b = arb.admit();
  auto ga = arb.acquire(a, all_usable(1));
  ASSERT_TRUE(ga.has_value());
  arb.release(a, std::move(*ga), 10.0, 1);
  auto gb = arb.acquire(b, all_usable(1));
  ASSERT_TRUE(gb.has_value());
  arb.release(b, std::move(*gb), 10.0, 1);

  const SessionStats sa = arb.session_stats(a);
  const SessionStats sb = arb.session_stats(b);
  EXPECT_DOUBLE_EQ(sa.queue_wait_ms, 0.0);
  EXPECT_DOUBLE_EQ(sb.queue_wait_ms, 10.0);
  EXPECT_DOUBLE_EQ(sb.virtual_end_ms, 20.0);
  EXPECT_DOUBLE_EQ(arb.makespan_ms(), 20.0);
  arb.retire(a);
  arb.retire(b);
}

TEST(PoolArbiter, QuarantinedDevicesStayGrantableToOthers) {
  // Session a has quarantined device 1 (its usable mask excludes it);
  // device 1 must still be granted to session b.
  PoolArbiter arb(2);
  const int a = arb.admit();
  const int b = arb.admit();
  std::vector<bool> usable_a = {true, false};
  auto ga = arb.acquire(a, usable_a);
  ASSERT_TRUE(ga.has_value());
  EXPECT_TRUE(ga->lease.covers(0));
  EXPECT_FALSE(ga->lease.covers(1));
  auto gb = arb.acquire(b, all_usable(2));
  ASSERT_TRUE(gb.has_value());
  EXPECT_TRUE(gb->lease.covers(1));
  arb.release(a, std::move(*ga), 1.0, 1);
  arb.release(b, std::move(*gb), 1.0, 1);
  arb.retire(a);
  arb.retire(b);
}

// ---- Service-level behaviour ----------------------------------------------

TEST(EncodeService, SingleSessionGetsTheWholePoolEveryFrame) {
  // Idle-share rebalancing, service level: with no competitor, every grant
  // is the full pool, so granted device-time == pool size x encode time.
  const PlatformTopology topo = test_topo(3);
  EncodeService svc(topo);
  SessionConfig sc;
  sc.cfg = small_config();
  sc.frames = 4;
  const int id = svc.submit(sc);
  ASSERT_GE(id, 0);
  SessionResult r = svc.wait(id);
  ASSERT_EQ(r.state, SessionResult::State::kCompleted) << r.error;
  EXPECT_DOUBLE_EQ(r.share.queue_wait_ms, 0.0);
  const double encode_ms = r.share.virtual_end_ms - r.share.queue_wait_ms;
  EXPECT_NEAR(r.share.granted_device_ms, 4.0 * encode_ms, 1e-6)
      << "solo session should be granted all 4 devices each frame";
}

TEST(EncodeService, RejectsBeyondMaxSessionsAndCountsIt) {
  ServiceOptions opts;
  opts.arbiter.max_sessions = 1;
  EncodeService svc(test_topo(2), opts);
  SessionConfig sc;
  sc.cfg = big_virtual_config();  // long enough to still be live below
  sc.frames = 500;
  const int first = svc.submit(sc);
  ASSERT_GE(first, 0);
  SessionConfig sc2;
  sc2.cfg = small_config();
  sc2.frames = 2;
  EXPECT_EQ(svc.submit(sc2), -1);
  svc.drain();
  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.admitted, 1);
  EXPECT_EQ(stats.rejected, 1);
  EXPECT_GE(svc.submit(sc2), 0) << "slot must free once the session retired";
  svc.drain();
}

TEST(EncodeService, AbortStopsASessionMidStream) {
  EncodeService svc(test_topo(2));
  SessionConfig sc;
  sc.cfg = big_virtual_config();
  sc.frames = 500;  // long-running: abort lands mid-stream
  const int id = svc.submit(sc);
  ASSERT_GE(id, 0);
  while (svc.arbiter().session_stats(id).frames < 3) {
    std::this_thread::yield();
  }
  svc.abort(id);
  SessionResult r = svc.wait(id);
  EXPECT_EQ(r.state, SessionResult::State::kAborted);
  EXPECT_GE(static_cast<int>(r.frames.size()), 3);
  EXPECT_LT(static_cast<int>(r.frames.size()), 500);
}

TEST(EncodeService, StatsAggregateAcrossSessions) {
  EncodeService svc(test_topo(3));
  SessionConfig sc;
  sc.cfg = small_config();
  sc.frames = 3;
  std::vector<int> ids;
  for (int s = 0; s < 3; ++s) ids.push_back(svc.submit(sc));
  auto results = svc.drain();
  ASSERT_EQ(results.size(), 3u);
  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.admitted, 3);
  EXPECT_EQ(stats.total_frames, 9);
  EXPECT_GT(stats.aggregate_fps, 0.0);
  EXPECT_GT(stats.makespan_ms, 0.0);
  EXPECT_GT(stats.mean_grant_utilization, 0.0);
  EXPECT_LE(stats.mean_grant_utilization, 1.0 + 1e-9);
  ASSERT_EQ(static_cast<int>(stats.device_busy_ms.size()),
            svc.topology().num_devices());
}

TEST(EncodeService, TraceCarriesTheSessionDimension) {
  // A traced session's events are stamped with its id, and the Chrome
  // export splits tracks per (session, device) pair.
  obs::TraceSession trace;
  EncodeService svc(test_topo(2));
  SessionConfig sc;
  sc.cfg = small_config();
  sc.frames = 2;
  sc.fw.trace = &trace;
  const int id = svc.submit(sc);
  ASSERT_GE(id, 0);
  SessionResult r = svc.wait(id);
  ASSERT_EQ(r.state, SessionResult::State::kCompleted) << r.error;

  ASSERT_GT(trace.sink.size(), 0u);
  for (const obs::TraceEvent& e : trace.sink.events()) {
    EXPECT_EQ(e.session, id);
  }
  std::ostringstream os;
  trace.sink.write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"session\":" + std::to_string(id)), std::string::npos);
  EXPECT_NE(json.find("s" + std::to_string(id) + " "), std::string::npos)
      << "process names should carry the session prefix";
}

}  // namespace
}  // namespace feves
