// Chaos harness for the encode service: hundreds of seeded, randomized
// schedules of fault storms, aborts, admission pressure, deadlines and
// restarts, each checked against the resilience invariants —
//
//   * liveness: every submitted session reaches a terminal state (a hang
//     here fails as a ctest timeout);
//   * attribution: every terminal state carries a consistent
//     TerminalReason, and failures carry an error;
//   * no leaks: after the service drains, every pool device is free and no
//     session is live or queued in the arbiter;
//   * bit-exactness: every COMPLETED real session's bitstream equals its
//     solo reference encode, no matter what storms it rode through.
//
// Iteration count comes from FEVES_CHAOS_ITERS (default keeps plain ctest
// fast; tools/chaos.sh drives the full 500, reduced under sanitizers).
#include "service/encode_service.hpp"

#include "codec/frame_codec.hpp"
#include "common/rng.hpp"
#include "platform/presets.hpp"
#include "video/sequence.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <thread>

namespace feves {
namespace {

int chaos_iters(int fallback) {
  const char* env = std::getenv("FEVES_CHAOS_ITERS");
  if (env == nullptr) return fallback;
  const int n = std::atoi(env);
  return n > 0 ? n : fallback;
}

PlatformTopology chaos_topo(int accels) {
  PlatformTopology t;
  t.devices.push_back(preset_cpu_nehalem());
  for (int i = 0; i < accels; ++i) {
    auto g = preset_gpu_fermi();
    g.name = "GPU#" + std::to_string(i);
    t.devices.push_back(g);
  }
  return t;
}

/// Virtual sessions use a mid-size config (frames slow enough for aborts
/// to land mid-stream, fast enough for hundreds of iterations).
EncoderConfig chaos_virtual_config() {
  EncoderConfig cfg;
  cfg.width = 640;
  cfg.height = 384;
  cfg.search_range = 8;
  cfg.num_ref_frames = 1;
  return cfg;
}

EncoderConfig chaos_real_config() {
  EncoderConfig cfg;
  cfg.width = 96;
  cfg.height = 64;
  cfg.search_range = 8;
  cfg.num_ref_frames = 2;
  return cfg;
}

SyntheticConfig chaos_scene(const EncoderConfig& cfg, int frames, u64 seed) {
  SyntheticConfig sc;
  sc.width = cfg.width;
  sc.height = cfg.height;
  sc.frames = frames;
  sc.num_objects = 3;
  sc.max_object_speed = 3.0;
  sc.seed = seed;
  return sc;
}

std::vector<u8> solo_reference(const EncoderConfig& cfg,
                               const SyntheticConfig& sconf, int frames) {
  SyntheticSequence seq(sconf);
  Frame420 frame(cfg.width, cfg.height);
  RefList refs(cfg.num_ref_frames);
  std::vector<u8> bits;
  for (int f = 0; f < frames; ++f) {
    EXPECT_TRUE(seq.read_frame(f, frame));
    refs.push_front(encode_frame_reference(cfg, frame, refs, f, &bits));
  }
  return bits;
}

/// One randomized fault storm: 0-3 events over random devices / windows.
/// Hangs only when the caller armed a watchdog (virtual sessions).
FaultSchedule random_storm(Rng& rng, int num_devices, bool allow_hangs) {
  FaultSchedule storm;
  const int events = static_cast<int>(rng.uniform_int(0, 3));
  for (int e = 0; e < events; ++e) {
    FaultEvent ev;
    ev.device = static_cast<int>(rng.uniform_int(0, num_devices - 1));
    ev.frame_begin = 1 + static_cast<int>(rng.uniform_int(0, 4));
    ev.frame_end = ev.frame_begin + 1 + static_cast<int>(rng.uniform_int(0, 2));
    const int kinds = allow_hangs ? 4 : 3;
    ev.kind = static_cast<FaultKind>(rng.uniform_int(0, kinds - 1));
    storm.add(ev);
  }
  return storm;
}

/// State/reason consistency: the attribution invariant.
void expect_attributed(const SessionResult& r) {
  switch (r.state) {
    case SessionResult::State::kCompleted:
      EXPECT_EQ(r.reason, TerminalReason::kCompleted);
      break;
    case SessionResult::State::kAborted:
      EXPECT_EQ(r.reason, TerminalReason::kAborted);
      break;
    case SessionResult::State::kShed:
      EXPECT_EQ(r.reason, TerminalReason::kShed);
      // A shed session never held a grant, so at most the host-side
      // bootstrap I-frame (real mode, encoded before the first acquire)
      // may have been produced.
      EXPECT_LE(r.frames.size(), 1u);
      break;
    case SessionResult::State::kFailed:
      EXPECT_TRUE(r.reason == TerminalReason::kDeadlineExceeded ||
                  r.reason == TerminalReason::kRestartsExhausted ||
                  r.reason == TerminalReason::kNoUsableDevice ||
                  r.reason == TerminalReason::kProbationChurn ||
                  r.reason == TerminalReason::kError)
          << "failed with reason " << to_string(r.reason);
      EXPECT_FALSE(r.error.empty());
      break;
  }
}

TEST(Chaos, RandomizedFaultStormsAbortsAndOverload) {
  const int iters = chaos_iters(/*fallback=*/25);
  // Real sessions are the expensive minority; their solo references are
  // cached per (scene seed, frame count) across iterations.
  std::map<std::pair<u64, int>, std::vector<u8>> ref_cache;

  for (int iter = 0; iter < iters; ++iter) {
    const u64 seed = 0xC0FFEEull + static_cast<u64>(iter);
    Rng rng(seed);
    const int accels = 2 + static_cast<int>(rng.uniform_int(0, 2));
    const PlatformTopology topo = chaos_topo(accels);

    ServiceOptions opts;
    opts.arbiter.max_sessions = 2 + static_cast<int>(rng.uniform_int(0, 3));
    opts.arbiter.admission_queue = static_cast<int>(rng.uniform_int(0, 2));
    opts.breaker.open_ms = 1.0;
    EncodeService svc(topo, opts);

    struct Submitted {
      int id = -1;
      int requested = 0;
      bool real = false;
      u64 scene_seed = 0;
      bool abort_planned = false;
    };
    std::vector<Submitted> subs;
    int refused = 0;
    const int nsessions = 3 + static_cast<int>(rng.uniform_int(0, 4));
    for (int k = 0; k < nsessions; ++k) {
      SessionConfig sc;
      Submitted sub;
      sub.real = rng.uniform01() < 0.25;
      sub.scene_seed = seed * 31 + static_cast<u64>(k);
      sub.requested = 3 + static_cast<int>(rng.uniform_int(0, 5));
      sc.frames = sub.requested;
      sc.weight = 0.5 + rng.uniform01() * 2.5;
      if (sub.real) {
        sc.cfg = chaos_real_config();
        sc.source = std::make_shared<SyntheticSequence>(
            chaos_scene(sc.cfg, sub.requested, sub.scene_seed));
        if (rng.uniform01() < 0.5) {
          sc.faults = random_storm(rng, topo.num_devices(),
                                   /*allow_hangs=*/false);
        }
      } else {
        sc.cfg = chaos_virtual_config();
        if (rng.uniform01() < 0.6) {
          sc.fw.watchdog_ms = 2.0;
          sc.faults = random_storm(rng, topo.num_devices(),
                                   /*allow_hangs=*/true);
        }
      }
      sc.resilience.max_restarts = static_cast<int>(rng.uniform_int(0, 4));
      sc.resilience.checkpoint_interval =
          static_cast<int>(rng.uniform_int(1, 3));
      if (rng.uniform01() < 0.2) {
        sc.resilience.deadline_ms = 5.0 + rng.uniform01() * 30.0;
      }
      sub.abort_planned = rng.uniform01() < 0.3;
      sub.id = svc.submit(sc);
      if (sub.id < 0) {
        ++refused;
        continue;
      }
      subs.push_back(sub);
    }

    // Fire the planned aborts while the storm is in flight.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    for (const Submitted& sub : subs) {
      if (sub.abort_planned) svc.abort(sub.id);
    }

    // Liveness: drain() returning at all is the no-deadlock check (a stuck
    // session turns into this test's ctest TIMEOUT).
    std::vector<SessionResult> results = svc.drain();
    ASSERT_EQ(results.size(), subs.size()) << "seed " << seed;

    int shed = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
      const SessionResult& r = results[i];
      const Submitted& sub = subs[i];
      EXPECT_EQ(r.id, sub.id);
      expect_attributed(r);
      EXPECT_LE(static_cast<int>(r.frames.size()), sub.requested)
          << "seed " << seed;
      shed += r.state == SessionResult::State::kShed ? 1 : 0;
      // (A planned abort may land after the session already completed —
      // both terminal states are legitimate, so no expectation on it.)
      // Bit-exactness rides through every storm: completed real sessions
      // must match their solo encode whatever recovery path they took.
      if (sub.real && r.state == SessionResult::State::kCompleted) {
        auto key = std::make_pair(sub.scene_seed, sub.requested);
        auto it = ref_cache.find(key);
        if (it == ref_cache.end()) {
          it = ref_cache
                   .emplace(key, solo_reference(
                                     chaos_real_config(),
                                     chaos_scene(chaos_real_config(),
                                                 sub.requested, sub.scene_seed),
                                     sub.requested))
                   .first;
        }
        EXPECT_EQ(r.bitstream, it->second)
            << "seed " << seed << " session " << sub.id
            << " diverged from its solo encode";
      }
    }

    // No leaked lease, grant, or session: the books must balance after
    // every storm, whatever mix of outcomes it produced.
    EXPECT_EQ(svc.arbiter().free_devices(), topo.num_devices())
        << "seed " << seed << " leaked a device lease";
    EXPECT_EQ(svc.arbiter().live_sessions(), 0) << "seed " << seed;
    EXPECT_EQ(svc.arbiter().queued_sessions(), 0) << "seed " << seed;
    const ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.admitted, static_cast<int>(subs.size()));
    EXPECT_EQ(stats.rejected, refused);
    EXPECT_EQ(stats.shed, shed);

    if ((iter + 1) % 100 == 0) {
      std::cout << "[chaos] " << (iter + 1) << "/" << iters << " schedules\n";
    }
  }
}

TEST(Chaos, AdmissionStormShedsByPriorityAndSettles) {
  // A burst of submissions against a tiny service: live slots and the
  // queue overflow immediately, so the arbiter must shed or refuse the
  // excess by weight — and still leave a balanced pool afterwards.
  const int iters = chaos_iters(/*fallback=*/25) / 5 + 1;
  for (int iter = 0; iter < iters; ++iter) {
    const u64 seed = 0xBEEFull + static_cast<u64>(iter);
    Rng rng(seed);
    const PlatformTopology topo = chaos_topo(2);
    ServiceOptions opts;
    opts.arbiter.max_sessions = 2;
    opts.arbiter.admission_queue = 2;
    EncodeService svc(topo, opts);

    std::vector<int> ids;
    int refused = 0;
    for (int k = 0; k < 12; ++k) {
      SessionConfig sc;
      sc.cfg = chaos_virtual_config();
      sc.frames = 2 + static_cast<int>(rng.uniform_int(0, 3));
      sc.weight = 0.5 + rng.uniform01() * 3.0;
      const int id = svc.submit(sc);
      if (id < 0) {
        ++refused;
      } else {
        ids.push_back(id);
      }
    }
    std::vector<SessionResult> results = svc.drain();
    ASSERT_EQ(results.size(), ids.size());
    int terminal = 0;
    for (const SessionResult& r : results) {
      expect_attributed(r);
      ++terminal;
    }
    EXPECT_EQ(terminal + refused, 12) << "seed " << seed
                                      << ": every submission must resolve";
    EXPECT_EQ(svc.arbiter().free_devices(), topo.num_devices());
    EXPECT_EQ(svc.arbiter().live_sessions(), 0);
    EXPECT_EQ(svc.arbiter().queued_sessions(), 0);
  }
}

TEST(Chaos, RestartStormKeepsRealSessionsBitExact) {
  // Focused variant of the acceptance criterion: real sessions whose fault
  // schedules force grant re-requests and restarts mid-stream must still
  // complete bit-exactly. Total device loss is excluded (those sessions
  // legitimately fail); single-device storms must always be survivable.
  const int iters = chaos_iters(/*fallback=*/25) / 5 + 1;
  const EncoderConfig cfg = chaos_real_config();
  for (int iter = 0; iter < iters; ++iter) {
    const u64 seed = 0xFACEull + static_cast<u64>(iter);
    Rng rng(seed);
    const PlatformTopology topo = chaos_topo(2);
    const int frames = 4 + static_cast<int>(rng.uniform_int(0, 3));
    const auto sconf = chaos_scene(cfg, frames, seed);
    const std::vector<u8> want = solo_reference(cfg, sconf, frames);

    EncodeService svc(topo);
    SessionConfig sc;
    sc.cfg = cfg;
    sc.frames = frames;
    sc.source = std::make_shared<SyntheticSequence>(sconf);
    // One faulty accelerator, repeatedly: kernel, transfer, then loss.
    const int victim = 1 + static_cast<int>(rng.uniform_int(0, 1));
    sc.faults.add({victim, 1, 2, FaultKind::kKernelTransient});
    sc.faults.add({victim, 2, 3, FaultKind::kTransferTransient});
    sc.faults.add({victim, 3, kFaultForever, FaultKind::kDeviceLoss});
    const int id = svc.submit(sc);
    ASSERT_GE(id, 0);
    SessionResult r = svc.wait(id);
    ASSERT_EQ(r.state, SessionResult::State::kCompleted)
        << "seed " << seed << ": " << r.error;
    EXPECT_EQ(r.bitstream, want) << "seed " << seed;
    EXPECT_EQ(svc.arbiter().free_devices(), topo.num_devices());
  }
}

}  // namespace
}  // namespace feves
