// Session-level resilience: the deterministic battery. Covers the grant
// RAII regression (a grant abandoned by an unwinding exception must free
// its devices AND wake parked waiters), the admission queue with
// priority-aware shedding, backoff/breaker/governor policy units, and the
// checkpoint/restart anchor: a session restarted from a frame-boundary
// checkpoint — in-process or across submissions via SessionConfig::resume —
// re-encodes only the frames after its last checkpoint and produces a
// bitstream bit-identical to the uninterrupted encode. The randomized
// storm counterpart lives in chaos_test.cpp.
#include "service/encode_service.hpp"

#include "codec/bitstream.hpp"
#include "platform/presets.hpp"
#include "video/sequence.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

namespace feves {
namespace {

EncoderConfig small_config(int refs = 2) {
  EncoderConfig cfg;
  cfg.width = 96;
  cfg.height = 64;
  cfg.search_range = 8;
  cfg.num_ref_frames = refs;
  return cfg;
}

EncoderConfig virtual_config() {
  EncoderConfig cfg;
  cfg.width = 1280;
  cfg.height = 720;
  cfg.search_range = 8;
  cfg.num_ref_frames = 1;
  return cfg;
}

PlatformTopology test_topo(int accels) {
  PlatformTopology t;
  t.devices.push_back(preset_cpu_nehalem());
  for (int i = 0; i < accels; ++i) {
    auto g = preset_gpu_fermi();
    g.name = "GPU#" + std::to_string(i);
    t.devices.push_back(g);
  }
  return t;
}

SyntheticConfig scene(const EncoderConfig& cfg, int frames, u64 seed) {
  SyntheticConfig sc;
  sc.width = cfg.width;
  sc.height = cfg.height;
  sc.frames = frames;
  sc.num_objects = 3;
  sc.max_object_speed = 3.0;
  sc.seed = seed;
  return sc;
}

std::vector<Frame420> load_frames(const SyntheticConfig& sconf, int count) {
  SyntheticSequence seq(sconf);
  std::vector<Frame420> frames;
  for (int f = 0; f < count; ++f) {
    frames.emplace_back(sconf.width, sconf.height);
    EXPECT_TRUE(seq.read_frame(f, frames.back()));
  }
  return frames;
}

std::vector<u8> reference_bits(const EncoderConfig& cfg,
                               const std::vector<Frame420>& frames) {
  RefList refs(cfg.num_ref_frames);
  std::vector<u8> bits;
  for (std::size_t f = 0; f < frames.size(); ++f) {
    refs.push_front(encode_frame_reference(cfg, frames[f], refs,
                                           static_cast<int>(f), &bits));
  }
  return bits;
}

std::vector<bool> all_usable(int n) {
  return std::vector<bool>(static_cast<std::size_t>(n), true);
}

// ---- Grant RAII: the leaked-grant regression -------------------------------

TEST(ArbiterGrantRaii, AbandonedGrantFreesDevicesAndWakesWaiters) {
  // Session a holds the whole pool; session b parks in acquire(). Dropping
  // a's grant WITHOUT release() — exactly what an exception unwinding a
  // session loop does — must hand the devices back and wake b. Before the
  // RAII grant, the lease destructor freed the pool but never notified the
  // arbiter's condition variable, so b hung until an unrelated event.
  PoolArbiter arb(1);  // one device: the waiter genuinely parks
  const int a = arb.admit();
  const int b = arb.admit();
  auto ga = arb.acquire(a, all_usable(1));
  ASSERT_TRUE(ga.has_value());
  ASSERT_EQ(arb.free_devices(), 0);

  std::optional<PoolArbiter::Grant> gb;
  std::thread waiter([&] { gb = arb.acquire(b, all_usable(1)); });
  ga.reset();  // abandon, not release
  waiter.join();
  ASSERT_TRUE(gb.has_value()) << "abandoned grant must wake parked waiters";
  arb.release(b, std::move(*gb), 1.0, 1);
  EXPECT_EQ(arb.free_devices(), 1) << "no device may stay reserved";
  arb.retire(a);
  arb.retire(b);
}

TEST(ArbiterGrantRaii, ThrowingMidGrantLeaksNothing) {
  PoolArbiter arb(3);
  const int a = arb.admit();
  try {
    auto g = arb.acquire(a, all_usable(3));
    ASSERT_TRUE(g.has_value());
    ASSERT_LT(arb.free_devices(), 3);
    throw std::runtime_error("frame died mid-grant");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(arb.free_devices(), 3)
      << "unwinding past a live grant must return every device";
  arb.retire(a);
}

TEST(ArbiterGrantRaii, MovedFromGrantIsInert) {
  PoolArbiter arb(2);
  const int a = arb.admit();
  auto g = arb.acquire(a, all_usable(2));
  ASSERT_TRUE(g.has_value());
  PoolArbiter::Grant g2 = std::move(*g);
  g.reset();  // moved-from grant dies first: must not double-release
  EXPECT_EQ(arb.free_devices(), 0);
  arb.release(a, std::move(g2), 1.0, 2);
  EXPECT_EQ(arb.free_devices(), 2);
  arb.retire(a);
}

// ---- Admission queue and priority shedding ---------------------------------

TEST(ArbiterAdmission, QueuedSessionIsPromotedWhenALiveSlotFrees) {
  ArbiterOptions opts;
  opts.max_sessions = 1;
  opts.admission_queue = 2;
  PoolArbiter arb(2, opts);
  const int a = arb.admit();
  const int b = arb.admit();  // queued, not refused
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  EXPECT_EQ(arb.live_sessions(), 1);
  EXPECT_EQ(arb.queued_sessions(), 1);

  std::optional<PoolArbiter::Grant> gb;
  AcquireOutcome outcome = AcquireOutcome::kGranted;
  std::thread waiter([&] { gb = arb.acquire(b, all_usable(2), &outcome); });
  // b must wait without a share while a is live...
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_FALSE(gb.has_value());
  arb.retire(a);  // ...and be promoted the moment a leaves.
  waiter.join();
  ASSERT_TRUE(gb.has_value());
  EXPECT_EQ(outcome, AcquireOutcome::kGranted);
  EXPECT_EQ(arb.queued_sessions(), 0);
  arb.release(b, std::move(*gb), 1.0, 1);
  arb.retire(b);
}

TEST(ArbiterAdmission, QueuePressureShedsTheLowestWeightSession) {
  ArbiterOptions opts;
  opts.max_sessions = 1;
  opts.admission_queue = 1;
  PoolArbiter arb(2, opts);
  const int a = arb.admit(/*weight=*/1.0);  // live
  const int b = arb.admit(/*weight=*/1.0);  // queued
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);

  AcquireOutcome outcome_b = AcquireOutcome::kGranted;
  std::optional<PoolArbiter::Grant> gb;
  std::thread waiter([&] { gb = arb.acquire(b, all_usable(2), &outcome_b); });
  // An equal-weight newcomer must NOT displace b...
  EXPECT_EQ(arb.admit(/*weight=*/1.0), -1);
  // ...but a strictly heavier one sheds it.
  const int c = arb.admit(/*weight=*/2.0);
  ASSERT_GE(c, 0);
  waiter.join();
  EXPECT_FALSE(gb.has_value());
  EXPECT_EQ(outcome_b, AcquireOutcome::kShed);
  EXPECT_EQ(arb.queued_sessions(), 1);  // c took b's queue slot
  arb.retire(a);
  arb.retire(b);
  arb.retire(c);
  EXPECT_EQ(arb.free_devices(), 2);
}

// ---- Policy units: backoff, breaker, governor ------------------------------

TEST(Backoff, ClimbsExponentiallyWithinJitterBoundsDeterministically) {
  ResilienceOptions ro;
  ro.backoff_initial_ms = 1.0;
  ro.backoff_factor = 2.0;
  ro.backoff_max_ms = 8.0;
  ro.backoff_jitter = 0.25;
  Backoff b1(ro, /*salt=*/7);
  Backoff b2(ro, /*salt=*/7);
  double expected_base = 1.0;
  for (int i = 0; i < 6; ++i) {
    const double d1 = b1.next_ms();
    EXPECT_GE(d1, expected_base * 0.75 - 1e-9);
    EXPECT_LE(d1, expected_base * 1.25 + 1e-9);
    EXPECT_DOUBLE_EQ(d1, b2.next_ms()) << "same seed must give same ladder";
    expected_base = std::min(8.0, expected_base * 2.0);
  }
  b1.reset();
  const double after_reset = b1.next_ms();
  EXPECT_LE(after_reset, 1.25 + 1e-9) << "reset must drop to the first rung";
}

TEST(CircuitBreaker, OpensAfterConsecutiveFailuresAndProbesHalfOpen) {
  CircuitBreakerOptions opts;
  opts.trip_threshold = 3;
  opts.open_ms = 2.0;
  CircuitBreaker br(opts);
  EXPECT_DOUBLE_EQ(br.wait_ms(), 0.0);
  br.record_failure();
  br.record_failure();
  EXPECT_DOUBLE_EQ(br.wait_ms(), 0.0) << "below threshold: still closed";
  br.record_failure();
  EXPECT_EQ(br.trips(), 1);
  EXPECT_GT(br.wait_ms(), 0.0) << "tripped: callers must back off";
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  EXPECT_DOUBLE_EQ(br.wait_ms(), 0.0) << "cool-down over: half-open probe";
  br.record_failure();  // probe failed
  EXPECT_EQ(br.trips(), 2);
  EXPECT_GT(br.wait_ms(), 0.0) << "failed probe re-opens";
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  EXPECT_DOUBLE_EQ(br.wait_ms(), 0.0);
  br.record_success();  // probe succeeded: closed for good
  EXPECT_DOUBLE_EQ(br.wait_ms(), 0.0);
  br.record_failure();
  EXPECT_DOUBLE_EQ(br.wait_ms(), 0.0) << "one failure after close: no trip";
  EXPECT_EQ(br.trips(), 2);
}

TEST(SessionGovernor, DeadlineBoundsRestartsAndTheLadderDegrades) {
  ResilienceOptions ro;
  ro.max_restarts = 4;
  ro.degrade_after_restarts = 1;
  ro.degraded_max_devices = 1;
  SessionGovernor gov(ro, nullptr, /*salt=*/1);
  EXPECT_FALSE(gov.deadline_exceeded()) << "deadline 0 = unbounded";
  EXPECT_TRUE(gov.can_restart());
  EXPECT_EQ(gov.max_devices_hint(), 0) << "intact: no grant cap";
  EXPECT_EQ(gov.degraded_search_range(16), 16);

  gov.begin_restart();
  EXPECT_FALSE(gov.degraded());
  gov.begin_restart();
  EXPECT_TRUE(gov.degraded()) << "past degrade_after_restarts";
  EXPECT_EQ(gov.max_devices_hint(), 1);
  EXPECT_EQ(gov.degraded_search_range(16), 8);
  EXPECT_EQ(gov.degraded_search_range(6), 4) << "floor at 4";
  gov.begin_restart();
  gov.begin_restart();
  EXPECT_FALSE(gov.can_restart()) << "max_restarts exhausted";

  ResilienceOptions tight;
  tight.deadline_ms = 1.0;
  SessionGovernor strict(tight, nullptr, /*salt=*/2);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(strict.deadline_exceeded());
  EXPECT_FALSE(strict.can_restart()) << "no budget left to restart into";
  EXPECT_DOUBLE_EQ(strict.remaining_ms(), 0.0);
}

// ---- Checkpoint / restart: the bit-exactness anchor ------------------------

TEST(Checkpoint, VirtualFrameworkRestoreResumesTheSameSchedule) {
  // Encode 3 + 3 frames; checkpoint at the 3-frame boundary, restore into
  // a FRESH framework and encode the same 3 tail frames: the DES is
  // deterministic, so the resumed schedule must equal the uninterrupted
  // one distribution-for-distribution.
  const EncoderConfig cfg = virtual_config();
  const PlatformTopology topo = test_topo(2);
  VirtualFramework fw(cfg, topo);
  for (int f = 0; f < 3; ++f) fw.encode_frame();
  const FrameworkCheckpoint cp = fw.checkpoint();
  std::vector<FrameStats> tail;
  for (int f = 0; f < 3; ++f) tail.push_back(fw.encode_frame());

  VirtualFramework resumed(cfg, topo);
  resumed.restore(cp);
  for (int f = 0; f < 3; ++f) {
    const FrameStats stats = resumed.encode_frame();
    const FrameStats& want = tail[static_cast<std::size_t>(f)];
    EXPECT_EQ(stats.frame_number, want.frame_number);
    EXPECT_EQ(stats.dist.me, want.dist.me) << "frame " << stats.frame_number;
    EXPECT_EQ(stats.dist.sme, want.dist.sme);
    EXPECT_EQ(stats.dist.rstar_device, want.dist.rstar_device);
  }
}

TEST(Checkpoint, RealEncoderRestartResumesBitExactly) {
  // The acceptance criterion, encoder level: checkpoint mid-stream, restore
  // into a FRESH encoder, continue — the concatenated bitstream must equal
  // the uninterrupted encode bit for bit.
  const EncoderConfig cfg = small_config();
  const PlatformTopology topo = test_topo(2);
  const int kFrames = 6;
  const int kCut = 3;
  const auto frames = load_frames(scene(cfg, kFrames, 41), kFrames);
  const std::vector<u8> want = reference_bits(cfg, frames);

  CollaborativeEncoder enc(cfg, topo);
  std::vector<u8> head;
  for (int f = 0; f < kCut; ++f) {
    enc.encode_frame(frames[static_cast<std::size_t>(f)], &head);
  }
  const EncoderCheckpoint cp = enc.checkpoint();
  // The original instance dies here; a new one resumes from the snapshot.
  CollaborativeEncoder resumed(cfg, topo);
  resumed.restore(cp);
  EXPECT_EQ(resumed.frames_encoded(), kCut);
  std::vector<u8> tail;
  for (int f = kCut; f < kFrames; ++f) {
    resumed.encode_frame(frames[static_cast<std::size_t>(f)], &tail);
  }
  std::vector<u8> spliced = head;
  spliced.insert(spliced.end(), tail.begin(), tail.end());
  EXPECT_EQ(spliced, want)
      << "checkpoint-restart must not perturb a single bit";
}

TEST(ServiceResilience, AbortedSessionResumesFromItsCheckpointBitExactly) {
  // Service level, across submissions: abort a real session mid-stream,
  // resubmit with SessionConfig::resume pointing at its last checkpoint.
  // The resumed session re-encodes only the frames past the checkpoint and
  // prefix + continuation reassembles the solo bitstream exactly.
  const EncoderConfig cfg = small_config();
  const PlatformTopology topo = test_topo(2);
  const int kFrames = 40;
  const auto sconf = scene(cfg, kFrames, 77);
  const std::vector<u8> want =
      reference_bits(cfg, load_frames(sconf, kFrames));

  EncodeService svc(topo);
  SessionConfig sc;
  sc.cfg = cfg;
  sc.frames = kFrames;
  sc.source = std::make_shared<SyntheticSequence>(sconf);
  const int id = svc.submit(sc);
  ASSERT_GE(id, 0);
  while (svc.arbiter().session_stats(id).frames < 2) {
    std::this_thread::yield();
  }
  svc.abort(id);
  SessionResult crashed = svc.wait(id);
  ASSERT_EQ(crashed.state, SessionResult::State::kAborted);
  ASSERT_TRUE(crashed.checkpoint.valid) << "checkpointing is on by default";
  ASSERT_GT(crashed.checkpoint.frames_recorded, 0u);
  ASSERT_LT(crashed.checkpoint.frames_recorded,
            static_cast<std::size_t>(kFrames));
  ASSERT_LE(crashed.checkpoint.bitstream_bytes, crashed.bitstream.size());
  EXPECT_GT(crashed.resilience.checkpoints_taken, 0);

  SessionConfig rc = sc;
  rc.source = std::make_shared<SyntheticSequence>(sconf);
  rc.resume = std::make_shared<SessionCheckpoint>(crashed.checkpoint);
  const int rid = svc.submit(rc);
  ASSERT_GE(rid, 0);
  SessionResult resumed = svc.wait(rid);
  ASSERT_EQ(resumed.state, SessionResult::State::kCompleted) << resumed.error;
  EXPECT_EQ(resumed.resilience.checkpoints_restored, 1);
  // Resume-at-last-good-frame: strictly fewer frames re-encoded than the
  // stream holds.
  EXPECT_EQ(resumed.frames.size(),
            static_cast<std::size_t>(kFrames) -
                crashed.checkpoint.frames_recorded);
  EXPECT_LT(resumed.frames.size(), static_cast<std::size_t>(kFrames));

  std::vector<u8> spliced(
      crashed.bitstream.begin(),
      crashed.bitstream.begin() +
          static_cast<std::ptrdiff_t>(crashed.checkpoint.bitstream_bytes));
  spliced.insert(spliced.end(), resumed.bitstream.begin(),
                 resumed.bitstream.end());
  EXPECT_EQ(spliced, want)
      << "resumed session's stream must splice bit-exactly onto the prefix";
}

TEST(ServiceResilience, VirtualResumeContinuesTheFrameCount) {
  const PlatformTopology topo = test_topo(2);
  const int kFrames = 300;
  EncodeService svc(topo);
  SessionConfig sc;
  sc.cfg = virtual_config();
  sc.frames = kFrames;
  const int id = svc.submit(sc);
  ASSERT_GE(id, 0);
  while (svc.arbiter().session_stats(id).frames < 3) {
    std::this_thread::yield();
  }
  svc.abort(id);
  SessionResult crashed = svc.wait(id);
  ASSERT_EQ(crashed.state, SessionResult::State::kAborted);
  ASSERT_TRUE(crashed.checkpoint.valid);

  ASSERT_LT(crashed.checkpoint.frames_recorded,
            static_cast<std::size_t>(kFrames));
  SessionConfig rc = sc;
  rc.resume = std::make_shared<SessionCheckpoint>(crashed.checkpoint);
  const int rid = svc.submit(rc);
  ASSERT_GE(rid, 0);
  SessionResult resumed = svc.wait(rid);
  ASSERT_EQ(resumed.state, SessionResult::State::kCompleted) << resumed.error;
  EXPECT_EQ(resumed.frames.size(),
            static_cast<std::size_t>(kFrames) -
                crashed.checkpoint.frames_recorded);
  const FrameStats& first = resumed.frames.front();
  EXPECT_EQ(first.frame_number,
            static_cast<int>(crashed.checkpoint.frames_recorded) + 1)
      << "resumed numbering must continue the stream, not restart it";
}

// ---- Terminal-state attribution --------------------------------------------

TEST(ServiceResilience, DeadlineExceededIsAttributed) {
  EncodeService svc(test_topo(2));
  SessionConfig sc;
  sc.cfg = virtual_config();
  sc.frames = 100000;  // far more than the budget allows
  sc.resilience.deadline_ms = 5.0;
  const int id = svc.submit(sc);
  ASSERT_GE(id, 0);
  SessionResult r = svc.wait(id);
  EXPECT_EQ(r.state, SessionResult::State::kFailed);
  EXPECT_EQ(r.reason, TerminalReason::kDeadlineExceeded);
  EXPECT_EQ(r.error, std::string(to_string(TerminalReason::kDeadlineExceeded)));
  EXPECT_LT(r.frames.size(), 100000u);
}

TEST(ServiceResilience, ProbationChurnIsAttributedDistinctly) {
  // The GPU fails once early and earns sticky probation (a huge clean
  // window keeps it there); from frame 3 the CPU is lost for good, so
  // every grant the session can still get draws ONLY from probation
  // hardware — and from frame 4 that hardware keeps relapsing. The retry
  // and restart budget is burned probing half-trusted devices, which is a
  // different operational problem from a drained pool: attribution must
  // come back kProbationChurn, not kRestartsExhausted/kNoUsableDevice.
  const PlatformTopology topo = test_topo(1);  // CPU + one GPU
  EncodeService svc(topo);
  SessionConfig sc;
  sc.cfg = virtual_config();
  sc.frames = 10;
  sc.fw.health.failure_threshold = 1;
  sc.fw.health.quarantine_frames = 1;
  sc.fw.health.probation_clean_frames = 99;  // probation never re-admits
  sc.faults.add({/*device=*/1, /*frame_begin=*/1, /*frame_end=*/2,
                 FaultKind::kDeviceLoss});  // one failure -> probation
  sc.faults.add({/*device=*/0, /*frame_begin=*/3, kFaultForever,
                 FaultKind::kDeviceLoss});
  sc.faults.add({/*device=*/1, /*frame_begin=*/4, kFaultForever,
                 FaultKind::kDeviceLoss});
  sc.resilience.max_restarts = 2;
  sc.resilience.checkpoint_interval = 1;
  const int id = svc.submit(sc);
  ASSERT_GE(id, 0);
  SessionResult r = svc.wait(id);
  EXPECT_EQ(r.state, SessionResult::State::kFailed);
  EXPECT_EQ(r.reason, TerminalReason::kProbationChurn);
  EXPECT_EQ(r.error, std::string(to_string(TerminalReason::kProbationChurn)));
  EXPECT_GT(r.resilience.probation_relapses, 0)
      << "telemetry must count the relapses that burned the budget";
  EXPECT_EQ(svc.arbiter().free_devices(), topo.num_devices());
}

TEST(ServiceResilience, TotalDeviceLossExhaustsRestartsWithAttribution) {
  // Permanent loss of every device from frame 3 on: rung 2 (fresh grants)
  // has nothing left to offer, so the session climbs to checkpoint-restart,
  // replays deterministically into the same wall max_restarts times, and
  // must come back attributed — not deadlocked, not kError.
  const PlatformTopology topo = test_topo(2);
  EncodeService svc(topo);
  SessionConfig sc;
  sc.cfg = virtual_config();
  sc.frames = 10;
  for (int d = 0; d < topo.num_devices(); ++d) {
    sc.faults.add({d, /*frame_begin=*/4, kFaultForever, FaultKind::kDeviceLoss});
  }
  sc.resilience.max_restarts = 2;
  // Checkpoint every OTHER frame so the wall at frame 4 sits past the last
  // checkpoint (frame 2) and each restart demonstrably replays frame 3.
  sc.resilience.checkpoint_interval = 2;
  const int id = svc.submit(sc);
  ASSERT_GE(id, 0);
  SessionResult r = svc.wait(id);
  EXPECT_EQ(r.state, SessionResult::State::kFailed);
  EXPECT_EQ(r.reason, TerminalReason::kRestartsExhausted);
  EXPECT_EQ(r.resilience.restarts, 2);
  EXPECT_GT(r.resilience.checkpoints_restored, 0);
  EXPECT_GT(r.resilience.frames_replayed, 0) << "restarts rewound to the cp";
  EXPECT_GT(r.resilience.backoff_waits, 0);
  EXPECT_EQ(svc.arbiter().free_devices(), topo.num_devices())
      << "failed session must leak no lease";
}

TEST(ServiceResilience, RestartDisabledKeepsLegacyFailFast) {
  const PlatformTopology topo = test_topo(2);
  EncodeService svc(topo);
  SessionConfig sc;
  sc.cfg = virtual_config();
  sc.frames = 10;
  for (int d = 0; d < topo.num_devices(); ++d) {
    sc.faults.add({d, /*frame_begin=*/3, kFaultForever, FaultKind::kDeviceLoss});
  }
  sc.resilience.max_restarts = 0;  // ladder off: the old throw-out path
  const int id = svc.submit(sc);
  ASSERT_GE(id, 0);
  SessionResult r = svc.wait(id);
  EXPECT_EQ(r.state, SessionResult::State::kFailed);
  EXPECT_EQ(r.reason, TerminalReason::kError);
  EXPECT_FALSE(r.error.empty());
  EXPECT_EQ(r.resilience.restarts, 0);
}

TEST(ServiceResilience, ShedSessionIsAttributedAndQueuePromotes) {
  ServiceOptions opts;
  opts.arbiter.max_sessions = 1;
  opts.arbiter.admission_queue = 1;
  EncodeService svc(test_topo(2), opts);

  SessionConfig hog;
  hog.cfg = virtual_config();
  hog.frames = 500;
  const int a = svc.submit(hog);
  ASSERT_GE(a, 0);

  SessionConfig light;
  light.cfg = virtual_config();
  light.frames = 3;
  light.weight = 1.0;
  const int b = svc.submit(light);  // queued behind the hog
  ASSERT_GE(b, 0);

  SessionConfig heavy = light;
  heavy.weight = 3.0;
  const int c = svc.submit(heavy);  // sheds b out of the queue
  ASSERT_GE(c, 0);

  SessionResult rb = svc.wait(b);
  EXPECT_EQ(rb.state, SessionResult::State::kShed);
  EXPECT_EQ(rb.reason, TerminalReason::kShed);
  EXPECT_TRUE(rb.frames.empty()) << "shed before ever holding a share";

  svc.abort(a);  // frees the live slot: c must be promoted and finish
  SessionResult ra = svc.wait(a);
  EXPECT_EQ(ra.state, SessionResult::State::kAborted);
  SessionResult rc = svc.wait(c);
  EXPECT_EQ(rc.state, SessionResult::State::kCompleted) << rc.error;
  EXPECT_EQ(rc.frames.size(), 3u);

  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.shed, 1);
  EXPECT_EQ(stats.resilience.shed_sessions, 1);
  EXPECT_EQ(svc.arbiter().free_devices(), svc.topology().num_devices());
}

TEST(ServiceResilience, HealthySessionsReportCheckpointTelemetryOnly) {
  EncodeService svc(test_topo(2));
  SessionConfig sc;
  sc.cfg = small_config();
  sc.frames = 4;
  sc.source = std::make_shared<SyntheticSequence>(scene(sc.cfg, 4, 5));
  const int id = svc.submit(sc);
  ASSERT_GE(id, 0);
  SessionResult r = svc.wait(id);
  ASSERT_EQ(r.state, SessionResult::State::kCompleted) << r.error;
  EXPECT_EQ(r.reason, TerminalReason::kCompleted);
  EXPECT_EQ(r.resilience.checkpoints_taken, 4) << "one per frame boundary";
  EXPECT_EQ(r.resilience.restarts, 0);
  EXPECT_EQ(r.resilience.frames_replayed, 0);
  EXPECT_EQ(r.degrade_level, 0);
  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.resilience.checkpoints_taken, 4);
  EXPECT_EQ(stats.resilience.breaker_trips, 0);
}

}  // namespace
}  // namespace feves
