// Concurrency stress for the encode service: randomized session churn —
// joins, finishes, and aborts landing mid-stream — with fault injection
// mixed in, sized to run under TSAN (tests/run_sanitized.sh wires the
// ServiceStress* filter into `ctest -L sanitize`). These tests assert
// liveness and accounting consistency, not throughput: every submitted
// session must come back as exactly one of completed/aborted/failed, and
// the arbiter's books must balance.
#include "service/encode_service.hpp"

#include "common/rng.hpp"
#include "platform/presets.hpp"
#include "video/sequence.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

namespace feves {
namespace {

EncoderConfig small_config() {
  EncoderConfig cfg;
  cfg.width = 96;
  cfg.height = 64;
  cfg.search_range = 8;
  cfg.num_ref_frames = 2;
  return cfg;
}

/// Mid-size virtual config: enough rows that frames take long enough for
/// aborts to land mid-stream, cheap enough for sanitizer runs.
EncoderConfig virtual_config() {
  EncoderConfig cfg;
  cfg.width = 1280;
  cfg.height = 720;
  cfg.search_range = 8;
  cfg.num_ref_frames = 1;
  return cfg;
}

PlatformTopology test_topo(int accels) {
  PlatformTopology t;
  t.devices.push_back(preset_cpu_nehalem());
  for (int i = 0; i < accels; ++i) {
    auto g = preset_gpu_fermi();
    g.name = "GPU#" + std::to_string(i);
    t.devices.push_back(g);
  }
  return t;
}

TEST(ServiceStress, RandomChurnWithFaultsAndAborts) {
  // Three waves of virtual sessions joining a shared pool; roughly a third
  // get aborted at a random point, some carry transient fault schedules.
  // Every session must resolve, and aborted ones must not run to the end.
  const PlatformTopology topo = test_topo(3);
  Rng rng(2024);
  EncodeService svc(topo);
  std::vector<int> ids;
  std::vector<int> requested;
  std::vector<bool> abort_plan;

  for (int wave = 0; wave < 3; ++wave) {
    for (int k = 0; k < 4; ++k) {
      SessionConfig sc;
      sc.cfg = virtual_config();
      sc.frames = 4 + static_cast<int>(rng.uniform_int(0, 8));
      sc.weight = rng.uniform01() < 0.5 ? 1.0 : 2.0;
      if (rng.uniform01() < 0.4) {
        sc.faults.add({/*device=*/1 + static_cast<int>(rng.uniform_int(0, 2)),
                       /*frame_begin=*/1, /*frame_end=*/2,
                       FaultKind::kKernelTransient});
      }
      const int id = svc.submit(sc);
      ASSERT_GE(id, 0);
      ids.push_back(id);
      requested.push_back(sc.frames);
      abort_plan.push_back(rng.uniform01() < 0.3);
    }
    // Stagger the waves so later sessions join a half-drained pool.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    for (std::size_t i = ids.size() - 4; i < ids.size(); ++i) {
      if (abort_plan[i]) svc.abort(ids[i]);
    }
  }

  for (std::size_t i = 0; i < ids.size(); ++i) {
    SessionResult r = svc.wait(ids[i]);
    EXPECT_TRUE(r.state == SessionResult::State::kCompleted ||
                r.state == SessionResult::State::kAborted)
        << "session " << ids[i] << ": " << r.error;
    EXPECT_LE(static_cast<int>(r.frames.size()), requested[i]);
    if (r.state == SessionResult::State::kCompleted && !abort_plan[i]) {
      EXPECT_EQ(static_cast<int>(r.frames.size()), requested[i]);
    }
    EXPECT_EQ(r.share.frames, static_cast<int>(r.frames.size()))
        << "arbiter accounting must match the session's own frame count";
  }
  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.admitted, static_cast<int>(ids.size()));
  EXPECT_LE(stats.mean_grant_utilization, 1.0 + 1e-9);
  EXPECT_EQ(svc.arbiter().live_sessions(), 0);
}

TEST(ServiceStress, ConcurrentSubmittersAndAborters) {
  // Submit/wait from four driver threads while the main thread fires
  // aborts at whatever is currently running: exercises the service's own
  // session-table locking, not just the arbiter's.
  const PlatformTopology topo = test_topo(2);
  EncodeService svc(topo);
  std::atomic<int> completed{0};
  std::atomic<int> aborted{0};
  std::vector<std::thread> drivers;
  std::mutex ids_mu;
  std::vector<int> live_ids;

  for (int t = 0; t < 4; ++t) {
    drivers.emplace_back([&, t] {
      Rng rng(static_cast<u64>(7 * t + 1));
      for (int round = 0; round < 3; ++round) {
        SessionConfig sc;
        sc.cfg = virtual_config();
        sc.frames = 3 + static_cast<int>(rng.uniform_int(0, 4));
        const int id = svc.submit(sc);
        ASSERT_GE(id, 0);
        {
          std::lock_guard lock(ids_mu);
          live_ids.push_back(id);
        }
        SessionResult r = svc.wait(id);
        ASSERT_TRUE(r.state == SessionResult::State::kCompleted ||
                    r.state == SessionResult::State::kAborted)
            << r.error;
        (r.state == SessionResult::State::kCompleted ? completed : aborted)
            .fetch_add(1);
      }
    });
  }
  Rng rng(4242);
  for (int shot = 0; shot < 6; ++shot) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::lock_guard lock(ids_mu);
    if (!live_ids.empty()) {
      const auto pick = rng.uniform_int(0, live_ids.size() - 1);
      svc.abort(live_ids[static_cast<std::size_t>(pick)]);  // may be done: ok
    }
  }
  for (auto& d : drivers) d.join();
  EXPECT_EQ(completed.load() + aborted.load(), 12);
  EXPECT_EQ(svc.arbiter().live_sessions(), 0);
}

TEST(ServiceStress, RealModeChurn) {
  // Real-backend churn: actual pixel work on executor lane threads, one
  // session aborted mid-stream. Small frames keep this sanitizer-friendly.
  const PlatformTopology topo = test_topo(2);
  const EncoderConfig cfg = small_config();
  EncodeService svc(topo);
  std::vector<int> ids;
  for (int s = 0; s < 3; ++s) {
    SyntheticConfig sconf;
    sconf.width = cfg.width;
    sconf.height = cfg.height;
    sconf.frames = 6;
    sconf.seed = 11 + static_cast<u64>(s);
    SessionConfig sc;
    sc.cfg = cfg;
    sc.frames = 6;
    sc.source = std::make_shared<SyntheticSequence>(sconf);
    const int id = svc.submit(sc);
    ASSERT_GE(id, 0);
    ids.push_back(id);
  }
  while (svc.arbiter().session_stats(ids[0]).frames < 1) {
    std::this_thread::yield();
  }
  svc.abort(ids[0]);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    SessionResult r = svc.wait(ids[i]);
    EXPECT_TRUE(r.state == SessionResult::State::kCompleted ||
                r.state == SessionResult::State::kAborted)
        << r.error;
    if (i > 0) {
      EXPECT_EQ(r.state, SessionResult::State::kCompleted) << r.error;
      EXPECT_EQ(static_cast<int>(r.frames.size()), 6);
      EXPECT_FALSE(r.bitstream.empty());
    }
  }
}

TEST(ServiceStress, DestructorAbortsUncollectedSessions) {
  // Dropping the service with sessions in flight must abort and join them
  // without deadlock or leaked leases (TSAN/ASAN verify the rest).
  const PlatformTopology topo = test_topo(2);
  auto svc = std::make_unique<EncodeService>(topo);
  SessionConfig sc;
  sc.cfg = virtual_config();
  sc.frames = 200;
  ASSERT_GE(svc->submit(sc), 0);
  ASSERT_GE(svc->submit(sc), 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  svc.reset();  // abort + join inside ~EncodeService
}

}  // namespace
}  // namespace feves
