// Functional coverage of the cluster tier: dispatch and completion through
// the WorkerManager, two-tier balance across unequal nodes, checkpointed
// resume-elsewhere, and the robustness headline — crash reassignment,
// zombie-reply fencing after hangs, false-positive deaths under heartbeat
// loss — each checked for bit-exact output against a solo encode.
#include "cluster/worker_manager.hpp"

#include "cluster/loopback_worker.hpp"
#include "codec/frame_codec.hpp"
#include "platform/presets.hpp"
#include "video/sequence.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

namespace feves::cluster {
namespace {

PlatformTopology small_node() {
  PlatformTopology t;
  t.devices.push_back(preset_cpu_nehalem());
  return t;
}

PlatformTopology big_node() { return make_sys_nf(); }

EncoderConfig real_config() {
  EncoderConfig cfg;
  cfg.width = 96;
  cfg.height = 64;
  cfg.search_range = 8;
  cfg.num_ref_frames = 2;
  return cfg;
}

EncoderConfig virtual_config() {
  EncoderConfig cfg;
  cfg.width = 640;
  cfg.height = 384;
  cfg.search_range = 8;
  return cfg;
}

SyntheticConfig scene_for(const EncoderConfig& cfg, int frames, u64 seed) {
  SyntheticConfig sc;
  sc.width = cfg.width;
  sc.height = cfg.height;
  sc.frames = frames;
  sc.num_objects = 3;
  sc.max_object_speed = 3.0;
  sc.seed = seed;
  return sc;
}

std::vector<u8> solo_reference(const EncoderConfig& cfg,
                               const SyntheticConfig& sconf, int frames) {
  SyntheticSequence seq(sconf);
  Frame420 frame(cfg.width, cfg.height);
  RefList refs(cfg.num_ref_frames);
  std::vector<u8> bits;
  for (int f = 0; f < frames; ++f) {
    EXPECT_TRUE(seq.read_frame(f, frame));
    refs.push_front(encode_frame_reference(cfg, frame, refs, f, &bits));
  }
  return bits;
}

WorkerManagerOptions fast_opts() {
  WorkerManagerOptions o;
  o.tick_sleep_ms = 0.3;
  o.rpc_retries = 2;
  o.backoff.backoff_initial_ms = 0.1;
  o.backoff.backoff_max_ms = 1.0;
  return o;
}

/// Polls a telemetry predicate until it holds or ~5s pass.
template <typename Pred>
bool eventually(const WorkerManager& mgr, Pred pred) {
  for (int i = 0; i < 500; ++i) {
    if (pred(mgr.telemetry())) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

TEST(WorkerManager, VirtualSessionCompletesOnOneNode) {
  WorkerManager mgr(fast_opts());
  mgr.register_worker(
      std::make_unique<LoopbackWorker>(0, "solo", small_node()));
  ASSERT_EQ(mgr.num_workers(), 1);

  ClusterSessionConfig cfg;
  cfg.cfg = virtual_config();
  cfg.frames = 6;
  cfg.chunk_frames = 2;
  const int id = mgr.submit(cfg);

  const ClusterSessionResult r = mgr.wait(id);
  EXPECT_EQ(r.reason, TerminalReason::kCompleted);
  EXPECT_EQ(r.committed_frames, 6);
  EXPECT_EQ(r.frames.size(), 6u);
  EXPECT_GE(r.final_epoch, 3u) << "one epoch per dispatched quantum";

  const obs::NodeTelemetry t = mgr.telemetry();
  EXPECT_GE(t.dispatches, 3);
  EXPECT_EQ(t.completions, t.dispatches);
  EXPECT_EQ(t.nodes_died, 0);
  EXPECT_EQ(t.fenced_replies, 0);
}

TEST(WorkerManager, ConcurrentSessionsSpreadAcrossNodes) {
  WorkerManager mgr(fast_opts());
  mgr.register_worker(
      std::make_unique<LoopbackWorker>(0, "a", small_node()));
  mgr.register_worker(
      std::make_unique<LoopbackWorker>(1, "b", small_node()));

  ClusterSessionConfig cfg;
  cfg.cfg = virtual_config();
  cfg.frames = 4;
  cfg.chunk_frames = 1;
  std::vector<int> ids;
  for (int k = 0; k < 4; ++k) ids.push_back(mgr.submit(cfg));
  for (int id : ids) {
    EXPECT_EQ(mgr.wait(id).reason, TerminalReason::kCompleted);
  }

  // Equal nodes, four concurrent sessions: capability/(1+outstanding)
  // cannot keep picking one node while the other idles.
  const std::vector<NodeCounters> nc = mgr.node_counters();
  ASSERT_EQ(nc.size(), 2u);
  EXPECT_GT(nc[0].dispatches, 0) << nc[0].name;
  EXPECT_GT(nc[1].dispatches, 0) << nc[1].name;
}

TEST(WorkerManager, CheckpointHandoffAcrossWorkersIsBitIdentical) {
  // The resume-elsewhere contract at worker level, with no timing in play:
  // encode [0,3) on one node, hand its checkpoint to a DIFFERENT node for
  // [3,6), splice the two bitstreams, compare against a solo encode.
  const EncoderConfig cfg = real_config();
  const int frames = 6;
  const SyntheticConfig sconf = scene_for(cfg, frames, /*seed=*/77);
  const std::vector<u8> solo = solo_reference(cfg, sconf, frames);

  auto run_shard = [&](LoopbackWorker& w, const WorkShard& shard) {
    std::mutex mu;
    std::condition_variable cv;
    bool got = false;
    ShardResult out;
    w.set_completion_sink([&](ShardResult r) {
      std::lock_guard<std::mutex> lk(mu);
      out = std::move(r);
      got = true;
      cv.notify_all();
    });
    EXPECT_EQ(w.submit(shard, 1.0), RpcStatus::kOk);
    std::unique_lock<std::mutex> lk(mu);
    cv.wait_for(lk, std::chrono::seconds(60), [&] { return got; });
    EXPECT_TRUE(got);
    return out;
  };

  LoopbackWorker w0(0, "first", big_node());
  LoopbackWorker w1(1, "second", small_node());

  WorkShard s0;
  s0.lease_id = 1;
  s0.epoch = 1;
  s0.session = 0;
  s0.frame_begin = 0;
  s0.frame_end = 3;
  s0.total_frames = frames;
  s0.cfg = cfg;
  s0.source = std::make_shared<SyntheticSequence>(sconf);
  const ShardResult r0 = run_shard(w0, s0);
  ASSERT_TRUE(r0.ok) << r0.error;
  ASSERT_EQ(r0.frames_done, 3);
  ASSERT_TRUE(r0.checkpoint.valid);

  WorkShard s1 = s0;
  s1.lease_id = 2;
  s1.epoch = 2;
  s1.frame_begin = 3;
  s1.frame_end = frames;
  s1.resume = r0.checkpoint;
  const ShardResult r1 = run_shard(w1, s1);
  ASSERT_TRUE(r1.ok) << r1.error;
  ASSERT_EQ(r1.frames_done, 3);

  std::vector<u8> spliced = r0.bitstream;
  spliced.insert(spliced.end(), r1.bitstream.begin(), r1.bitstream.end());
  EXPECT_EQ(spliced, solo)
      << "handoff across nodes must be bit-identical to a solo encode";
}

TEST(WorkerManager, CrashedNodeWorkLandsOnSurvivorBitIdentical) {
  // The bigger (attractive) node is crashed from the first beat: every
  // dispatch to it fails, the monitor declares it dead, and the survivor
  // runs the whole session — output must not care.
  NodeFaultSchedule crash;
  crash.add({/*node=*/0, /*beat_begin=*/1, kFaultForever,
             NodeFaultKind::kCrash});

  WorkerManager mgr(fast_opts());
  mgr.register_worker(
      std::make_unique<LoopbackWorker>(0, "doomed", big_node(), crash));
  mgr.register_worker(
      std::make_unique<LoopbackWorker>(1, "survivor", small_node()));

  const EncoderConfig cfg = real_config();
  const int frames = 5;
  const SyntheticConfig sconf = scene_for(cfg, frames, /*seed=*/31);

  ClusterSessionConfig sc;
  sc.cfg = cfg;
  sc.frames = frames;
  sc.chunk_frames = 2;
  sc.source = std::make_shared<SyntheticSequence>(sconf);
  const ClusterSessionResult r = mgr.wait(mgr.submit(sc));

  EXPECT_EQ(r.reason, TerminalReason::kCompleted);
  EXPECT_EQ(r.committed_frames, frames);
  EXPECT_EQ(r.bitstream, solo_reference(cfg, sconf, frames));
  EXPECT_TRUE(eventually(
      mgr, [](const obs::NodeTelemetry& t) { return t.nodes_died >= 1; }));

  const std::vector<NodeCounters> nc = mgr.node_counters();
  EXPECT_EQ(nc[0].completions, 0) << "a crashed node completes nothing";
  EXPECT_GT(nc[1].completions, 0);
}

TEST(WorkerManager, HungZombieRepliesAreFencedNotCommitted) {
  // Node 0 hangs from beat 1: submits to it land but ack late (uncertain),
  // so the manager burns those epochs and the survivor encodes everything.
  // When the hang lifts, the zombie executes its stale queue and replies —
  // every one must be fenced, and the output must still be bit-exact.
  NodeFaultSchedule hang;
  hang.add({/*node=*/0, /*beat_begin=*/1, /*beat_end=*/120,
            NodeFaultKind::kHang});

  WorkerManager mgr(fast_opts());
  mgr.register_worker(
      std::make_unique<LoopbackWorker>(0, "zombie", big_node(), hang));
  mgr.register_worker(
      std::make_unique<LoopbackWorker>(1, "survivor", small_node()));

  ClusterSessionConfig sc;
  sc.cfg = virtual_config();
  sc.frames = 6;
  sc.chunk_frames = 6;
  const ClusterSessionResult r = mgr.wait(mgr.submit(sc));

  EXPECT_EQ(r.reason, TerminalReason::kCompleted);
  EXPECT_EQ(r.frames.size(), 6u);

  // The uncertain acks left stale shards on the zombie; once it wakes it
  // finishes them and the manager drops every reply by epoch.
  EXPECT_TRUE(eventually(mgr, [](const obs::NodeTelemetry& t) {
    return t.fenced_replies >= 1;
  })) << "zombie replies must surface and be fenced";
  const obs::NodeTelemetry t = mgr.telemetry();
  EXPECT_GE(t.rpc_retries, 1) << "uncertain acks were retried with backoff";
  EXPECT_EQ(mgr.node_counters()[0].completions, 0);
}

TEST(WorkerManager, HeartbeatLossFalsePositiveDeathStaysBitExact) {
  // Node 0 keeps working but its heartbeats vanish: a FALSE-POSITIVE death.
  // The manager fences it and re-runs the work on the survivor; the healthy
  // zombie's completions arrive and must be dropped, not double-committed —
  // bit-exactness against solo proves no frame range landed twice.
  NodeFaultSchedule loss;
  loss.add({/*node=*/0, /*beat_begin=*/1, kFaultForever,
            NodeFaultKind::kHeartbeatLoss});

  WorkerManagerOptions opts = fast_opts();
  opts.tick_sleep_ms = 1.0;  // give node 0's quantum time to straddle death
  WorkerManager mgr(opts);
  mgr.register_worker(
      std::make_unique<LoopbackWorker>(0, "falsely-dead", big_node(), loss));
  mgr.register_worker(
      std::make_unique<LoopbackWorker>(1, "survivor", small_node()));

  const EncoderConfig cfg = real_config();
  const int frames = 6;
  const SyntheticConfig sconf = scene_for(cfg, frames, /*seed=*/93);

  ClusterSessionConfig sc;
  sc.cfg = cfg;
  sc.frames = frames;
  sc.chunk_frames = 6;  // one long quantum: outlives the death declaration
  sc.source = std::make_shared<SyntheticSequence>(sconf);
  const ClusterSessionResult r = mgr.wait(mgr.submit(sc));

  EXPECT_EQ(r.reason, TerminalReason::kCompleted);
  EXPECT_EQ(r.committed_frames, frames);
  EXPECT_EQ(r.bitstream, solo_reference(cfg, sconf, frames));
  EXPECT_TRUE(eventually(
      mgr, [](const obs::NodeTelemetry& t) { return t.nodes_died >= 1; }));
  EXPECT_TRUE(eventually(mgr, [](const obs::NodeTelemetry& t) {
    return t.fenced_replies >= 1;
  })) << "the healthy zombie's reply must be fenced";
}

TEST(WorkerManager, AllNodesDeadAttributesNoLiveWorker) {
  NodeFaultSchedule crash;
  crash.add({/*node=*/0, /*beat_begin=*/1, kFaultForever,
             NodeFaultKind::kCrash});

  WorkerManagerOptions opts = fast_opts();
  opts.all_dead_grace_ticks = 40;
  WorkerManager mgr(opts);
  mgr.register_worker(
      std::make_unique<LoopbackWorker>(0, "gone", small_node(), crash));

  ClusterSessionConfig sc;
  sc.cfg = virtual_config();
  sc.frames = 4;
  const ClusterSessionResult r = mgr.wait(mgr.submit(sc));

  EXPECT_EQ(r.reason, TerminalReason::kNoLiveWorker);
  EXPECT_FALSE(r.error.empty()) << "failures carry an attributed error";
  EXPECT_EQ(r.committed_frames, 0);
  EXPECT_EQ(mgr.node_state(0), NodeLiveness::kDead);
}

TEST(WorkerManager, DestructorAbortsUnfinishedSessions) {
  NodeFaultSchedule crash;
  crash.add({/*node=*/0, /*beat_begin=*/1, kFaultForever,
             NodeFaultKind::kCrash});
  auto mgr = std::make_unique<WorkerManager>(fast_opts());
  mgr->register_worker(
      std::make_unique<LoopbackWorker>(0, "gone", small_node(), crash));
  ClusterSessionConfig sc;
  sc.cfg = virtual_config();
  sc.frames = 4;
  mgr->submit(sc);
  // Destroying the manager with the only node dead must not hang and must
  // leave the session attributed, not dangling.
  mgr.reset();
  SUCCEED();
}

}  // namespace
}  // namespace feves::cluster
