// Node-level chaos: seed-deterministic storms of whole-node faults —
// crashes, hangs, partitions, heartbeat-only loss — thrown at a fleet of
// LoopbackWorkers, with one guaranteed fault-free survivor per storm.
// Invariants checked every iteration:
//
//   * liveness: every session reaches a terminal state (a wedged manager
//     fails as a ctest timeout);
//   * completion: with >= 1 fault-free survivor, every session completes
//     and commits exactly the requested frames;
//   * no double commit: the manager FEVES_CHECKs that every accepted
//     quantum starts at the committed frontier (a violation aborts the
//     test), and real sessions must splice bit-identical to a solo encode
//     no matter how many fenced zombie replies raced the commit path;
//   * attribution: telemetry counters are consistent with what the storm
//     could have caused.
//
// Iteration count comes from FEVES_NODE_CHAOS_ITERS (default keeps plain
// ctest fast; the sanitizer battery and tools/check.sh raise it).
#include "cluster/worker_manager.hpp"

#include "cluster/loopback_worker.hpp"
#include "codec/frame_codec.hpp"
#include "common/rng.hpp"
#include "platform/presets.hpp"
#include "video/sequence.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>

namespace feves::cluster {
namespace {

int chaos_iters(int fallback) {
  const char* env = std::getenv("FEVES_NODE_CHAOS_ITERS");
  if (env == nullptr) return fallback;
  const int n = std::atoi(env);
  return n > 0 ? n : fallback;
}

PlatformTopology node_topo(Rng& rng) {
  PlatformTopology t;
  t.devices.push_back(preset_cpu_nehalem());
  const int accels = static_cast<int>(rng.uniform_int(0, 2));
  for (int i = 0; i < accels; ++i) {
    auto g = preset_gpu_fermi();
    g.name = "GPU#" + std::to_string(i);
    t.devices.push_back(g);
  }
  return t;
}

EncoderConfig chaos_virtual_config() {
  EncoderConfig cfg;
  cfg.width = 640;
  cfg.height = 384;
  cfg.search_range = 8;
  return cfg;
}

EncoderConfig chaos_real_config() {
  EncoderConfig cfg;
  cfg.width = 96;
  cfg.height = 64;
  cfg.search_range = 8;
  cfg.num_ref_frames = 2;
  return cfg;
}

std::vector<u8> solo_reference(const EncoderConfig& cfg,
                               const SyntheticConfig& sconf, int frames) {
  SyntheticSequence seq(sconf);
  Frame420 frame(cfg.width, cfg.height);
  RefList refs(cfg.num_ref_frames);
  std::vector<u8> bits;
  for (int f = 0; f < frames; ++f) {
    EXPECT_TRUE(seq.read_frame(f, frame));
    refs.push_front(encode_frame_reference(cfg, frame, refs, f, &bits));
  }
  return bits;
}

/// A randomized storm for one node: 0-2 fault windows, any kind. Windows
/// are bounded so hung/partitioned nodes eventually come back as zombies
/// (the interesting case for fencing); crashes may be forever.
void add_node_storm(Rng& rng, int node, NodeFaultSchedule* sched) {
  const int events = static_cast<int>(rng.uniform_int(0, 2));
  for (int e = 0; e < events; ++e) {
    NodeFaultEvent ev;
    ev.node = node;
    ev.kind = static_cast<NodeFaultKind>(rng.uniform_int(0, 3));
    ev.beat_begin = 1 + static_cast<int>(rng.uniform_int(0, 40));
    ev.beat_end = ev.beat_begin + 2 +
                  static_cast<int>(rng.uniform_int(0, 60));
    if (ev.kind == NodeFaultKind::kCrash && rng.uniform_int(0, 3) == 0) {
      ev.beat_end = kFaultForever;  // some crashes are permanent
    }
    sched->add(ev);
  }
}

TEST(NodeChaos, StormsWithSurvivorCompleteBitExact) {
  const int iters = chaos_iters(/*fallback=*/6);
  std::map<std::pair<u64, int>, std::vector<u8>> ref_cache;

  for (int iter = 0; iter < iters; ++iter) {
    const u64 seed = 0xFEEDull + static_cast<u64>(iter) * 7919;
    Rng rng(seed);
    SCOPED_TRACE(testing::Message() << "iter=" << iter << " seed=" << seed);

    const int nnodes = 2 + static_cast<int>(rng.uniform_int(0, 2));
    // One node is guaranteed fault-free: whatever the storm does to the
    // rest, a survivor set exists, so every session MUST complete.
    const int survivor = static_cast<int>(rng.uniform_int(0, nnodes - 1));

    WorkerManagerOptions opts;
    opts.tick_sleep_ms = 0.3;
    opts.backoff.backoff_initial_ms = 0.1;
    opts.backoff.backoff_max_ms = 1.0;
    WorkerManager mgr(opts);
    for (int n = 0; n < nnodes; ++n) {
      NodeFaultSchedule storm;
      if (n != survivor) add_node_storm(rng, n, &storm);
      mgr.register_worker(std::make_unique<LoopbackWorker>(
          n, "node" + std::to_string(n), node_topo(rng), storm));
    }

    struct Submitted {
      int id = -1;
      int frames = 0;
      bool real = false;
      u64 scene_seed = 0;
      EncoderConfig cfg;
    };
    std::vector<Submitted> subs;
    const int nsessions = 1 + static_cast<int>(rng.uniform_int(0, 1));
    for (int k = 0; k < nsessions; ++k) {
      Submitted sub;
      sub.real = rng.uniform_int(0, 2) == 0;
      ClusterSessionConfig sc;
      if (sub.real) {
        sub.cfg = chaos_real_config();
        sub.frames = 3 + static_cast<int>(rng.uniform_int(0, 2));
        sub.scene_seed = 0x5EEDull + rng.uniform_int(0, 3);
        SyntheticConfig sconf;
        sconf.width = sub.cfg.width;
        sconf.height = sub.cfg.height;
        sconf.frames = sub.frames;
        sconf.num_objects = 3;
        sconf.seed = sub.scene_seed;
        sc.source = std::make_shared<SyntheticSequence>(sconf);
      } else {
        sub.cfg = chaos_virtual_config();
        sub.frames = 4 + static_cast<int>(rng.uniform_int(0, 4));
      }
      sc.cfg = sub.cfg;
      sc.frames = sub.frames;
      sc.chunk_frames = 1 + static_cast<int>(rng.uniform_int(0, 2));
      sub.id = mgr.submit(sc);
      subs.push_back(sub);
    }

    const std::vector<ClusterSessionResult> results = mgr.drain();
    ASSERT_EQ(results.size(), subs.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      const ClusterSessionResult& r = results[i];
      const Submitted& sub = subs[i];
      EXPECT_EQ(r.reason, TerminalReason::kCompleted)
          << "session " << r.id << ": " << to_string(r.reason) << " ("
          << r.error << ")";
      if (r.reason != TerminalReason::kCompleted) continue;
      EXPECT_EQ(r.committed_frames, sub.frames);
      EXPECT_EQ(r.frames.size(), static_cast<std::size_t>(sub.frames));
      if (sub.real) {
        const auto key = std::make_pair(sub.scene_seed, sub.frames);
        auto it = ref_cache.find(key);
        if (it == ref_cache.end()) {
          SyntheticConfig sconf;
          sconf.width = sub.cfg.width;
          sconf.height = sub.cfg.height;
          sconf.frames = sub.frames;
          sconf.num_objects = 3;
          sconf.seed = sub.scene_seed;
          it = ref_cache
                   .emplace(key,
                            solo_reference(sub.cfg, sconf, sub.frames))
                   .first;
        }
        EXPECT_EQ(r.bitstream, it->second)
            << "spliced bitstream diverged from solo (session " << r.id
            << ", epochs " << r.final_epoch << ")";
      }
    }

    // Counter consistency: commits never outnumber dispatches, and every
    // reassignment implies a fence.
    const obs::NodeTelemetry t = mgr.telemetry();
    EXPECT_LE(t.completions, t.dispatches);
    EXPECT_LE(t.steals, t.reassigns);
    EXPECT_GE(t.epoch_fences, t.reassigns);
    EXPECT_GE(t.heartbeats, t.heartbeat_misses);
    EXPECT_GE(t.nodes_died, t.nodes_rejoined);
  }
}

TEST(NodeChaos, PermanentTotalCrashIsAttributedNotHung) {
  // Counter-case to the survivor guarantee: when EVERY node crashes for
  // good, sessions must fail with kNoLiveWorker — attributed, not wedged.
  NodeFaultSchedule storm;
  storm.add({0, 1, kFaultForever, NodeFaultKind::kCrash});
  storm.add({1, 3, kFaultForever, NodeFaultKind::kCrash});

  WorkerManagerOptions opts;
  opts.tick_sleep_ms = 0.3;
  opts.all_dead_grace_ticks = 60;
  WorkerManager mgr(opts);
  PlatformTopology topo;
  topo.devices.push_back(preset_cpu_nehalem());
  mgr.register_worker(
      std::make_unique<LoopbackWorker>(0, "a", topo, storm));
  mgr.register_worker(
      std::make_unique<LoopbackWorker>(1, "b", topo, storm));

  ClusterSessionConfig sc;
  sc.cfg = chaos_virtual_config();
  sc.frames = 8;
  sc.chunk_frames = 1;
  const ClusterSessionResult r = mgr.wait(mgr.submit(sc));
  EXPECT_EQ(r.reason, TerminalReason::kNoLiveWorker);
  EXPECT_FALSE(r.error.empty());
  EXPECT_EQ(mgr.telemetry().nodes_died, 2);
}

}  // namespace
}  // namespace feves::cluster
