// Unit coverage of the cluster tier's pure pieces: the node-liveness state
// machine, the inter-node dispatch policy and the node fault schedule.
#include "cluster/heartbeat.hpp"

#include "cluster/rpc.hpp"
#include "platform/fault.hpp"
#include "platform/presets.hpp"
#include "sched/node_balance.hpp"

#include <gtest/gtest.h>

namespace feves::cluster {
namespace {

HeartbeatOptions fast_hb() {
  HeartbeatOptions o;
  o.suspect_misses = 2;
  o.dead_misses = 4;
  o.probation_clean_beats = 2;
  return o;
}

TEST(HeartbeatMonitor, MissLadderAliveSuspectDead) {
  HeartbeatMonitor m(2, fast_hb());
  EXPECT_EQ(m.state(0), NodeLiveness::kAlive);
  EXPECT_TRUE(m.dispatchable(0));

  EXPECT_FALSE(m.record_miss(0));
  EXPECT_EQ(m.state(0), NodeLiveness::kAlive);
  EXPECT_FALSE(m.record_miss(0));
  EXPECT_EQ(m.state(0), NodeLiveness::kSuspect);
  EXPECT_FALSE(m.dispatchable(0)) << "suspects get no new work";
  EXPECT_FALSE(m.dead(0));

  EXPECT_FALSE(m.record_miss(0));
  EXPECT_TRUE(m.record_miss(0)) << "4th miss: newly dead, exactly once";
  EXPECT_TRUE(m.dead(0));
  EXPECT_FALSE(m.record_miss(0)) << "already dead: no second death edge";

  // The other node is untouched.
  EXPECT_EQ(m.state(1), NodeLiveness::kAlive);
  EXPECT_EQ(m.num_dispatchable(), 1);
  EXPECT_EQ(m.num_dead(), 1);
}

TEST(HeartbeatMonitor, SuspectRecoversThroughProbation) {
  HeartbeatMonitor m(1, fast_hb());
  m.record_miss(0);
  m.record_miss(0);
  ASSERT_EQ(m.state(0), NodeLiveness::kSuspect);

  EXPECT_FALSE(m.record_beat(0));
  EXPECT_EQ(m.state(0), NodeLiveness::kProbation);
  EXPECT_TRUE(m.dispatchable(0)) << "probation nodes may take work";
  EXPECT_FALSE(m.record_beat(0));
  EXPECT_EQ(m.state(0), NodeLiveness::kAlive);
  EXPECT_EQ(m.incarnation(0), 0) << "never died: same incarnation";
}

TEST(HeartbeatMonitor, RejoinBumpsIncarnationAndFlappingGrowsWindow) {
  HeartbeatMonitor m(1, fast_hb());
  for (int i = 0; i < 4; ++i) m.record_miss(0);
  ASSERT_TRUE(m.dead(0));

  EXPECT_TRUE(m.record_beat(0)) << "first beat after death = rejoin";
  EXPECT_EQ(m.incarnation(0), 1);
  ASSERT_EQ(m.state(0), NodeLiveness::kProbation);

  // Relapse in probation: straight back to suspect with a longer window,
  // and the death countdown resumes from the suspect threshold.
  EXPECT_FALSE(m.record_miss(0));
  EXPECT_EQ(m.state(0), NodeLiveness::kSuspect);
  EXPECT_FALSE(m.record_miss(0));
  EXPECT_TRUE(m.record_miss(0)) << "a relapsed node dies fast";

  // Rejoining now requires the grown window: 2 -> 4 clean beats.
  EXPECT_TRUE(m.record_beat(0));
  EXPECT_EQ(m.incarnation(0), 2);
  m.record_beat(0);
  m.record_beat(0);
  EXPECT_EQ(m.state(0), NodeLiveness::kProbation) << "window grew to 4";
  m.record_beat(0);
  EXPECT_EQ(m.state(0), NodeLiveness::kAlive);
}

TEST(NodeBalance, PicksCapabilityPerOutstandingWithAffinityTieBreak) {
  std::vector<NodeScore> nodes(3);
  nodes[0] = {10.0, 0, true};
  nodes[1] = {30.0, 2, true};  // 30/3 = 10: ties node 0
  nodes[2] = {50.0, 0, false};
  EXPECT_EQ(pick_node(nodes), 0) << "first of the tied pair without affinity";
  EXPECT_EQ(pick_node(nodes, /*affinity=*/1), 1) << "affinity wins the tie";
  nodes[2].dispatchable = true;
  EXPECT_EQ(pick_node(nodes), 2);
  nodes[0].dispatchable = nodes[1].dispatchable = nodes[2].dispatchable =
      false;
  EXPECT_EQ(pick_node(nodes), -1);
}

TEST(NodeBalance, TopologyCapabilityRanksBiggerNodes) {
  PlatformTopology one;
  one.devices.push_back(preset_cpu_nehalem());
  const PlatformTopology big = make_sys_nf();
  EXPECT_GT(topology_capability(big), topology_capability(one));
}

TEST(NodeFaults, ScheduleIsPureFunctionOfBeat) {
  NodeFaultSchedule sched;
  sched.add({/*node=*/1, /*beat_begin=*/3, /*beat_end=*/5,
             NodeFaultKind::kCrash});
  sched.add({/*node=*/1, /*beat_begin=*/4, /*beat_end=*/8,
             NodeFaultKind::kPartition});

  EXPECT_FALSE(sched.at(1, 2).any());
  EXPECT_FALSE(sched.at(0, 3).any()) << "faults are per-node";
  EXPECT_TRUE(sched.at(1, 3).crashed);
  NodeFaultState both = sched.at(1, 4);
  EXPECT_TRUE(both.crashed);
  EXPECT_TRUE(both.partitioned);
  EXPECT_FALSE(sched.at(1, 5).crashed) << "beat_end is exclusive";
  EXPECT_TRUE(sched.at(1, 7).partitioned);
  EXPECT_FALSE(sched.at(1, 8).any());
}

TEST(Rpc, RetryableClassification) {
  EXPECT_FALSE(retryable(RpcStatus::kOk));
  EXPECT_TRUE(retryable(RpcStatus::kDeadlineExceeded));
  EXPECT_TRUE(retryable(RpcStatus::kUnreachable));
  EXPECT_TRUE(retryable(RpcStatus::kWorkerCrashed));
  EXPECT_FALSE(retryable(RpcStatus::kRejected));
}

}  // namespace
}  // namespace feves::cluster
