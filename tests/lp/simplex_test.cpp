#include "lp/simplex.hpp"

#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

namespace feves::lp {
namespace {

TEST(Simplex, TrivialMaximizationViaNegatedObjective) {
  // max x0 + x1 s.t. x0 <= 3, x1 <= 4  ->  min -x0 - x1.
  Problem p;
  const int x0 = p.add_variable("x0", -1.0);
  const int x1 = p.add_variable("x1", -1.0);
  p.add_constraint({{x0, 1.0}}, Relation::kLe, 3.0);
  p.add_constraint({{x1, 1.0}}, Relation::kLe, 4.0);
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.values[x0], 3.0, 1e-9);
  EXPECT_NEAR(s.values[x1], 4.0, 1e-9);
  EXPECT_NEAR(s.objective, -7.0, 1e-9);
}

TEST(Simplex, ClassicTwoVariableLp) {
  // min -3x - 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (Dantzig's example)
  Problem p;
  const int x = p.add_variable("x", -3.0);
  const int y = p.add_variable("y", -5.0);
  p.add_constraint({{x, 1.0}}, Relation::kLe, 4.0);
  p.add_constraint({{y, 2.0}}, Relation::kLe, 12.0);
  p.add_constraint({{x, 3.0}, {y, 2.0}}, Relation::kLe, 18.0);
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.values[x], 2.0, 1e-9);
  EXPECT_NEAR(s.values[y], 6.0, 1e-9);
  EXPECT_NEAR(s.objective, -36.0, 1e-9);
}

TEST(Simplex, EqualityConstraintsNeedPhaseOne) {
  // min x + 2y s.t. x + y = 10, x - y = 2  ->  x=6, y=4.
  Problem p;
  const int x = p.add_variable("x", 1.0);
  const int y = p.add_variable("y", 2.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kEq, 10.0);
  p.add_constraint({{x, 1.0}, {y, -1.0}}, Relation::kEq, 2.0);
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.values[x], 6.0, 1e-9);
  EXPECT_NEAR(s.values[y], 4.0, 1e-9);
}

TEST(Simplex, GreaterEqualConstraints) {
  // min 2x + 3y s.t. x + y >= 4, x >= 1  ->  x=4, y=0 (cost 8).
  Problem p;
  const int x = p.add_variable("x", 2.0);
  const int y = p.add_variable("y", 3.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kGe, 4.0);
  p.add_constraint({{x, 1.0}}, Relation::kGe, 1.0);
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 8.0, 1e-9);
  EXPECT_NEAR(s.values[x], 4.0, 1e-9);
}

TEST(Simplex, DetectsInfeasibility) {
  Problem p;
  const int x = p.add_variable("x", 1.0);
  p.add_constraint({{x, 1.0}}, Relation::kLe, 1.0);
  p.add_constraint({{x, 1.0}}, Relation::kGe, 2.0);
  EXPECT_EQ(solve(p).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  Problem p;
  const int x = p.add_variable("x", -1.0);  // maximize x, no upper bound
  p.add_constraint({{x, 1.0}}, Relation::kGe, 0.0);
  EXPECT_EQ(solve(p).status, SolveStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalization) {
  // min x s.t. -x <= -5  (i.e. x >= 5).
  Problem p;
  const int x = p.add_variable("x", 1.0);
  p.add_constraint({{x, -1.0}}, Relation::kLe, -5.0);
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.values[x], 5.0, 1e-9);
}

TEST(Simplex, RepeatedVariableTermsAccumulate) {
  // min x s.t. 0.5x + 0.5x >= 3  ->  x = 3.
  Problem p;
  const int x = p.add_variable("x", 1.0);
  p.add_constraint({{x, 0.5}, {x, 0.5}}, Relation::kGe, 3.0);
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.values[x], 3.0, 1e-9);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Beale's classic cycling example; Bland's rule must terminate.
  Problem p;
  const int x1 = p.add_variable("x1", -0.75);
  const int x2 = p.add_variable("x2", 150.0);
  const int x3 = p.add_variable("x3", -0.02);
  const int x4 = p.add_variable("x4", 6.0);
  p.add_constraint({{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}},
                   Relation::kLe, 0.0);
  p.add_constraint({{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}},
                   Relation::kLe, 0.0);
  p.add_constraint({{x3, 1.0}}, Relation::kLe, 1.0);
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, -0.05, 1e-9);
}

TEST(Simplex, MinimizeMakespanToyScheduling) {
  // The shape the FEVES balancer produces: distribute N rows over devices
  // with speeds k_i, minimize tau with  k_i * x_i <= tau,  sum x_i = N.
  // Optimal: x_i proportional to 1/k_i.
  Problem p;
  const double k[3] = {1.0, 2.0, 4.0};
  const int tau = p.add_variable("tau", 1.0);
  int x[3];
  for (int i = 0; i < 3; ++i) {
    x[i] = p.add_variable("x" + std::to_string(i), 0.0);
    p.add_constraint({{x[i], k[i]}, {tau, -1.0}}, Relation::kLe, 0.0);
  }
  p.add_constraint({{x[0], 1.0}, {x[1], 1.0}, {x[2], 1.0}}, Relation::kEq,
                   70.0);
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  // 1/k weights: 1, 0.5, 0.25 -> shares 40, 20, 10; tau = 40.
  EXPECT_NEAR(s.values[tau], 40.0, 1e-6);
  EXPECT_NEAR(s.values[x[0]], 40.0, 1e-6);
  EXPECT_NEAR(s.values[x[1]], 20.0, 1e-6);
  EXPECT_NEAR(s.values[x[2]], 10.0, 1e-6);
}

// Property sweep: random small LPs, compare against brute-force grid search
// over the constraint polytope vertices approximated by dense sampling.
class SimplexRandomLe : public ::testing::TestWithParam<int> {};

TEST_P(SimplexRandomLe, MatchesDenseSamplingLowerBound) {
  Rng rng(static_cast<u64>(GetParam()) * 7919 + 13);
  Problem p;
  const int n = 2;
  int v[2];
  double c[2];
  for (int i = 0; i < n; ++i) {
    c[i] = rng.uniform_real(0.2, 3.0);  // positive costs: bounded minimum
    v[i] = p.add_variable("v" + std::to_string(i), c[i]);
  }
  // Random >= constraints keep the problem feasible (x large enough works).
  double a[3][2];
  double b[3];
  for (int j = 0; j < 3; ++j) {
    for (int i = 0; i < n; ++i) a[j][i] = rng.uniform_real(0.1, 2.0);
    b[j] = rng.uniform_real(1.0, 10.0);
    p.add_constraint({{v[0], a[j][0]}, {v[1], a[j][1]}}, Relation::kGe, b[j]);
  }
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());

  // The simplex objective must not exceed any feasible sampled point, and
  // the solution itself must be feasible.
  for (int j = 0; j < 3; ++j) {
    EXPECT_GE(a[j][0] * s.values[v[0]] + a[j][1] * s.values[v[1]],
              b[j] - 1e-6);
  }
  for (double x0 = 0.0; x0 <= 20.0; x0 += 0.5) {
    for (double x1 = 0.0; x1 <= 20.0; x1 += 0.5) {
      bool feasible = true;
      for (int j = 0; j < 3; ++j) {
        if (a[j][0] * x0 + a[j][1] * x1 < b[j]) {
          feasible = false;
          break;
        }
      }
      if (feasible) {
        EXPECT_LE(s.objective, c[0] * x0 + c[1] * x1 + 1e-6);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomLps, SimplexRandomLe, ::testing::Range(0, 25));

// Regression (degenerate cycling): Beale's classic example makes textbook
// Dantzig pivoting with a naive tie-break cycle forever through degenerate
// bases. The stall-triggered Bland fallback must terminate it at the true
// optimum instead of hitting the iteration limit.
TEST(Simplex, BealeCyclingExampleTerminatesAtOptimum) {
  // min -0.75x1 + 150x2 - 0.02x3 + 6x4
  //  s.t. 0.25x1 - 60x2 - (1/25)x3 + 9x4 <= 0
  //       0.50x1 - 90x2 - (1/50)x3 + 3x4 <= 0
  //       x3 <= 1                          -> optimum -1/20 at x3 = 1.
  Problem p;
  const int x1 = p.add_variable("x1", -0.75);
  const int x2 = p.add_variable("x2", 150.0);
  const int x3 = p.add_variable("x3", -0.02);
  const int x4 = p.add_variable("x4", 6.0);
  p.add_constraint({{x1, 0.25}, {x2, -60.0}, {x3, -1.0 / 25.0}, {x4, 9.0}},
                   Relation::kLe, 0.0);
  p.add_constraint({{x1, 0.5}, {x2, -90.0}, {x3, -1.0 / 50.0}, {x4, 3.0}},
                   Relation::kLe, 0.0);
  p.add_constraint({{x3, 1.0}}, Relation::kLe, 1.0);
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, -0.05, 1e-9);
  EXPECT_NEAR(s.values[x3], 1.0, 1e-9);
  EXPECT_LE(max_violation(p, s.values), 1e-9);
}

TEST(Simplex, HighlyDegenerateLpTerminates) {
  // Many redundant constraints all active at the origin-adjacent vertex:
  // every pivot along the way is degenerate, stressing the stall counter.
  Problem p;
  const int n = 6;
  std::vector<int> v;
  for (int i = 0; i < n; ++i) {
    v.push_back(p.add_variable("x" + std::to_string(i), -1.0));
  }
  // x_i <= x_{i+1} chains with zero RHS (degenerate at x = 0), plus one
  // binding cap that gives the problem a finite optimum.
  for (int i = 0; i + 1 < n; ++i) {
    p.add_constraint({{v[i], 1.0}, {v[i + 1], -1.0}}, Relation::kLe, 0.0);
    p.add_constraint({{v[i], 2.0}, {v[i + 1], -2.0}}, Relation::kLe, 0.0);
  }
  std::vector<Term> all;
  for (int i = 0; i < n; ++i) all.push_back({v[i], 1.0});
  p.add_constraint(all, Relation::kLe, 12.0);
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, -12.0, 1e-6);
  EXPECT_LE(max_violation(p, s.values), 1e-6);
}

TEST(Simplex, SolutionReportsPivotCount) {
  Problem p;
  const int x = p.add_variable("x", -3.0);
  const int y = p.add_variable("y", -5.0);
  p.add_constraint({{x, 1.0}}, Relation::kLe, 4.0);
  p.add_constraint({{y, 2.0}}, Relation::kLe, 12.0);
  p.add_constraint({{x, 3.0}, {y, 2.0}}, Relation::kLe, 18.0);
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_GT(s.iterations, 0);
  EXPECT_FALSE(s.bland_fallback);  // no degeneracy in this LP
}

// ---- Warm-starting ---------------------------------------------------------

namespace {
Problem makespan_lp(const double k[3], double rows) {
  Problem p;
  const int tau = p.add_variable("tau", 1.0);
  std::vector<Term> sum;
  for (int i = 0; i < 3; ++i) {
    const int x = p.add_variable("x" + std::to_string(i), 0.0);
    p.add_constraint({{x, k[i]}, {tau, -1.0}}, Relation::kLe, 0.0);
    sum.push_back({x, 1.0});
  }
  p.add_constraint(sum, Relation::kEq, rows);
  return p;
}
}  // namespace

TEST(SimplexWarm, UnchangedProblemResolvesWithZeroPivots) {
  const double k[3] = {1.0, 2.0, 4.0};
  const Problem p = makespan_lp(k, 70.0);
  const Solution cold = solve(p);
  ASSERT_TRUE(cold.optimal());
  ASSERT_TRUE(cold.basis.usable());

  const Solution warm = solve(p, &cold.basis);
  ASSERT_TRUE(warm.optimal());
  EXPECT_TRUE(warm.warm_used);
  // The previous optimal basis is still optimal: pricing finds no entering
  // column and phase 2 exits without a single pivot.
  EXPECT_EQ(warm.iterations, 0);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-9);
  for (std::size_t i = 0; i < cold.values.size(); ++i) {
    EXPECT_NEAR(warm.values[i], cold.values[i], 1e-9) << "var " << i;
  }
}

TEST(SimplexWarm, PerturbedProblemMatchesColdObjective) {
  const double k0[3] = {1.0, 2.0, 4.0};
  const Problem p0 = makespan_lp(k0, 70.0);
  const Solution s0 = solve(p0);
  ASSERT_TRUE(s0.optimal());

  // EWMA-sized drift in the device speeds: the warm basis stays usable and
  // the warm re-solve must land on exactly the cold optimum of the NEW lp.
  Rng rng(991);
  Basis basis = s0.basis;
  for (int trial = 0; trial < 50; ++trial) {
    double k[3];
    for (double& v : k) v = rng.uniform_real(0.5, 5.0);
    const double rows = rng.uniform_real(30.0, 200.0);
    const Problem p = makespan_lp(k, rows);
    const Solution cold = solve(p);
    const Solution warm = solve(p, &basis);
    ASSERT_EQ(warm.status, cold.status) << "trial " << trial;
    ASSERT_TRUE(warm.optimal()) << "trial " << trial;
    EXPECT_NEAR(warm.objective, cold.objective, 1e-6) << "trial " << trial;
    EXPECT_LE(max_violation(p, warm.values), 1e-6) << "trial " << trial;
    basis = warm.basis;  // chain across the sequence, as the balancer does
  }
}

TEST(SimplexWarm, StructuralMismatchFallsBackToCold) {
  const double k[3] = {1.0, 2.0, 4.0};
  const Solution s0 = solve(makespan_lp(k, 70.0));
  ASSERT_TRUE(s0.optimal());

  // A different row/column count (device dropped out) must reject the basis
  // and cold-solve, not crash or mis-solve.
  Problem smaller;
  const int tau = smaller.add_variable("tau", 1.0);
  const int x0 = smaller.add_variable("x0", 0.0);
  smaller.add_constraint({{x0, 2.0}, {tau, -1.0}}, Relation::kLe, 0.0);
  smaller.add_constraint({{x0, 1.0}}, Relation::kEq, 40.0);
  const Solution warm = solve(smaller, &s0.basis);
  ASSERT_TRUE(warm.optimal());
  EXPECT_FALSE(warm.warm_used);
  const Solution cold = solve(smaller);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-9);
}

TEST(SimplexWarm, InfeasibleBasisForNewRhsFallsBackToCold) {
  // Basis from a kLe-slack-heavy optimum applied to a problem whose RHS
  // makes that basis infeasible (negative basic values): the factorization
  // rejects it and the cold path must still find the optimum.
  Problem p0;
  const int x = p0.add_variable("x", -1.0);
  p0.add_constraint({{x, 1.0}}, Relation::kLe, 3.0);
  const Solution s0 = solve(p0);
  ASSERT_TRUE(s0.optimal());

  Problem p1;
  const int y = p1.add_variable("x", 1.0);
  p1.add_constraint({{y, -1.0}}, Relation::kLe, -5.0);  // y >= 5
  const Solution warm = solve(p1, &s0.basis);
  ASSERT_TRUE(warm.optimal());
  EXPECT_NEAR(warm.values[y], 5.0, 1e-9);
}

TEST(SimplexWarm, WarmNeverChangesReportedStatus) {
  // Infeasible problem stays infeasible no matter what basis is offered.
  Problem p;
  const int x = p.add_variable("x", 1.0);
  p.add_constraint({{x, 1.0}}, Relation::kLe, 1.0);
  p.add_constraint({{x, 1.0}}, Relation::kGe, 2.0);
  const double k[3] = {1.0, 2.0, 4.0};
  const Solution donor = solve(makespan_lp(k, 70.0));
  ASSERT_TRUE(donor.optimal());
  EXPECT_EQ(solve(p, &donor.basis).status, SolveStatus::kInfeasible);
}

}  // namespace
}  // namespace feves::lp
