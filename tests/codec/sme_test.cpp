#include "codec/sme.hpp"

#include "codec/interpolate.hpp"
#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace feves {
namespace {

PlaneU8 smooth_plane(int w, int h, int border, u64 seed) {
  PlaneU8 p(w, h, border);
  Rng rng(seed);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const double v = 128.0 + 55.0 * std::sin(0.21 * x) +
                       45.0 * std::cos(0.17 * y) + rng.uniform_real(-2.0, 2.0);
      p.at(y, x) = static_cast<u8>(std::clamp(v, 0.0, 255.0));
    }
  }
  p.extend_borders();
  return p;
}

struct SmeFixture {
  static constexpr int kW = 48, kH = 32, kBorder = 24;
  PlaneU8 ref;
  SubPelFrame sf;

  explicit SmeFixture(u64 seed)
      : ref(smooth_plane(kW, kH, kBorder, seed)), sf(kW, kH, kBorder) {
    run_interpolation_rows(ref, 0, kH / 16, sf);
    extend_subpel_borders(sf);
  }

  /// Current frame sampled from a chosen quarter-pel phase of the SF so the
  /// SME optimum is known exactly.
  PlaneU8 cur_from_phase(int qy, int qx) const {
    PlaneU8 cur(kW, kH, kBorder);
    const PlaneU8& ph = sf.phase(qy & 3, qx & 3);
    for (int y = 0; y < kH; ++y) {
      for (int x = 0; x < kW; ++x) {
        cur.at(y, x) = ph.at(y + (qy >> 2), x + (qx >> 2));
      }
    }
    cur.extend_borders();
    return cur;
  }
};

MotionField zero_initialized_field(int mbs) {
  MotionField f(static_cast<std::size_t>(mbs));
  for (auto& mb : f) {
    for (auto& e : mb.entries) {
      e.mv = Mv{0, 0};
      e.cost = kInvalidCost;
    }
  }
  return f;
}

/// Sweep every quarter-pel displacement within the refinement radius: SME
/// starting at MV (0,0) must land exactly on the planted displacement.
class SmePhaseRecovery : public ::testing::TestWithParam<std::pair<int, int>> {
};

TEST_P(SmePhaseRecovery, FindsPlantedQuarterPelShift) {
  const auto [qy, qx] = GetParam();
  SmeFixture fx(42);
  PlaneU8 cur = fx.cur_from_phase(qy, qx);

  const int mbw = SmeFixture::kW / 16, mbh = SmeFixture::kH / 16;
  MotionField field = zero_initialized_field(mbw * mbh);
  SmeParams params;
  params.refine_range = 2;
  run_sme_rows(cur, fx.sf, mbw, 0, mbh, params, field.data());

  for (const MbMotion& mb : field) {
    const MotionEntry& e = mb.entry(PartitionMode::k16x16, 0);
    EXPECT_EQ(e.mv.x, qx);
    EXPECT_EQ(e.mv.y, qy);
    EXPECT_EQ(e.cost, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    QuarterPelShifts, SmePhaseRecovery,
    ::testing::Values(std::pair{0, 0}, std::pair{0, 1}, std::pair{1, 0},
                      std::pair{1, 1}, std::pair{0, 2}, std::pair{2, 0},
                      std::pair{2, 2}, std::pair{0, -1}, std::pair{-1, 0},
                      std::pair{-2, -2}, std::pair{-1, 2}, std::pair{2, -1}));

TEST(Sme, RefinementNeverIncreasesCost) {
  SmeFixture fx(7);
  PlaneU8 cur = smooth_plane(SmeFixture::kW, SmeFixture::kH, SmeFixture::kBorder,
                             99);  // unrelated content
  const int mbw = SmeFixture::kW / 16, mbh = SmeFixture::kH / 16;

  // Baseline: integer-pel cost at the start position.
  MotionField field = zero_initialized_field(mbw * mbh);
  SmeParams zero;
  zero.refine_range = 0;  // evaluates only the start MV
  MotionField base = field;
  run_sme_rows(cur, fx.sf, mbw, 0, mbh, zero, base.data());

  SmeParams params;
  params.refine_range = 2;
  run_sme_rows(cur, fx.sf, mbw, 0, mbh, params, field.data());

  for (std::size_t i = 0; i < field.size(); ++i) {
    for (int k = 0; k < kEntriesPerMb; ++k) {
      EXPECT_LE(field[i].entries[k].cost, base[i].entries[k].cost);
    }
  }
}

TEST(Sme, DistributedRowsMatchSingleShot) {
  SmeFixture fx(13);
  PlaneU8 cur = fx.cur_from_phase(1, -1);
  const int mbw = SmeFixture::kW / 16, mbh = SmeFixture::kH / 16;

  MotionField whole = zero_initialized_field(mbw * mbh);
  MotionField split = whole;
  SmeParams params;
  params.refine_range = 2;
  run_sme_rows(cur, fx.sf, mbw, 0, mbh, params, whole.data());
  run_sme_rows(cur, fx.sf, mbw, 0, 1, params, split.data());
  run_sme_rows(cur, fx.sf, mbw, 1, mbh, params, split.data());

  for (std::size_t i = 0; i < whole.size(); ++i) {
    for (int k = 0; k < kEntriesPerMb; ++k) {
      EXPECT_EQ(whole[i].entries[k].mv, split[i].entries[k].mv);
      EXPECT_EQ(whole[i].entries[k].cost, split[i].entries[k].cost);
    }
  }
}

TEST(Sme, RespectsBaseVectorOffset) {
  // Start vectors far from zero must be refined around themselves, not
  // around the origin.
  SmeFixture fx(21);
  PlaneU8 cur = fx.cur_from_phase(4 * 2 + 1, -(4 * 1 + 1));  // (+2.25, -1.25) px
  const int mbw = SmeFixture::kW / 16, mbh = SmeFixture::kH / 16;

  MotionField field = zero_initialized_field(mbw * mbh);
  for (auto& mb : field) {
    for (auto& e : mb.entries) e.mv = Mv{-4, 8};  // integer (-1, +2)
  }
  SmeParams params;
  params.refine_range = 2;
  run_sme_rows(cur, fx.sf, mbw, 0, mbh, params, field.data());
  // Planted optimum (9, -5) is outside ±2 of the base (-4, 8): SME must
  // still return the best candidate *within its window*, whose cost is
  // nonzero, and the MV must lie inside the window.
  for (const MbMotion& mb : field) {
    const MotionEntry& e = mb.entry(PartitionMode::k16x16, 0);
    EXPECT_LE(std::abs(e.mv.x - (-4)), 2);
    EXPECT_LE(std::abs(e.mv.y - 8), 2);
  }
}

}  // namespace
}  // namespace feves
