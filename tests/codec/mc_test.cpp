#include "codec/mc.hpp"

#include "codec/interpolate.hpp"
#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace feves {
namespace {

TEST(SeBits, ExpGolombLengths) {
  EXPECT_EQ(se_bits(0), 1);
  EXPECT_EQ(se_bits(1), 3);   // maps to 1 -> code '010'
  EXPECT_EQ(se_bits(-1), 3);  // maps to 2 -> '011'
  EXPECT_EQ(se_bits(2), 5);
  EXPECT_EQ(se_bits(-2), 5);
  EXPECT_EQ(se_bits(4), 7);
}

TEST(ModeDecision, PicksCheapestModeWithZeroLambda) {
  // One MB, one reference. Give 8x8 a decisive advantage.
  MotionField f(1);
  for (auto& e : f[0].entries) {
    e.cost = 1000;
    e.mv = Mv{0, 0};
  }
  for (int b = 0; b < 4; ++b) f[0].entry(PartitionMode::k8x8, b).cost = 10;
  std::vector<MotionField> fields{f};

  MbModeChoice choice;
  run_mode_decision_rows(fields, 1, 0, 1, /*lambda=*/0.0, &choice);
  EXPECT_EQ(choice.mode, PartitionMode::k8x8);
}

TEST(ModeDecision, LambdaPenalizesManyPartitions) {
  // 4x4 is slightly better in raw SAD, but with 16 blocks of MV overhead a
  // positive lambda must flip the decision to 16x16.
  MotionField f(1);
  for (auto& e : f[0].entries) {
    e.cost = 10000;
    e.mv = Mv{40, -36};  // non-trivial vectors: real rate cost
  }
  f[0].entry(PartitionMode::k16x16, 0).cost = 1650;
  for (int b = 0; b < 16; ++b) f[0].entry(PartitionMode::k4x4, b).cost = 100;
  std::vector<MotionField> fields{f};

  MbModeChoice zero_lambda, high_lambda;
  run_mode_decision_rows(fields, 1, 0, 1, 0.0, &zero_lambda);
  run_mode_decision_rows(fields, 1, 0, 1, 20.0, &high_lambda);
  EXPECT_EQ(zero_lambda.mode, PartitionMode::k4x4);
  EXPECT_EQ(high_lambda.mode, PartitionMode::k16x16);
}

TEST(ModeDecision, SelectsBestReferencePerBlock) {
  MotionField r0(1), r1(1);
  for (auto& e : r0[0].entries) {
    e.cost = 500;
    e.mv = Mv{4, 0};
  }
  for (auto& e : r1[0].entries) {
    e.cost = 500;
    e.mv = Mv{8, 0};
  }
  // Keep the SAD hierarchy consistent (a whole-MB SAD is at least the sum
  // of its halves) while making ref 1 decisively better for block 1 of
  // 16x8: 16x8 total = 500 + 5 < 16x16 total = 1200.
  r0[0].entry(PartitionMode::k16x16, 0).cost = 1200;
  r1[0].entry(PartitionMode::k16x16, 0).cost = 1200;
  r1[0].entry(PartitionMode::k16x8, 1).cost = 5;
  std::vector<MotionField> fields{r0, r1};

  MbModeChoice choice;
  run_mode_decision_rows(fields, 1, 0, 1, 0.0, &choice);
  EXPECT_EQ(choice.mode, PartitionMode::k16x8);
  EXPECT_EQ(choice.blocks[0].ref_idx, 0);  // tie -> lower index wins
  EXPECT_EQ(choice.blocks[1].ref_idx, 1);
}

struct McFixture {
  static constexpr int kW = 32, kH = 32, kBorder = 24;
  Frame420 ref_frame;
  SubPelFrame sf;
  Frame420 cur;

  McFixture() : ref_frame(kW, kH, kBorder), sf(kW, kH, kBorder),
                cur(kW, kH, kBorder) {
    Rng rng(5);
    for (int y = 0; y < kH; ++y) {
      for (int x = 0; x < kW; ++x) {
        ref_frame.y.at(y, x) = static_cast<u8>(rng.uniform_int(0, 255));
      }
    }
    for (int y = 0; y < kH / 2; ++y) {
      for (int x = 0; x < kW / 2; ++x) {
        ref_frame.u.at(y, x) = static_cast<u8>(rng.uniform_int(0, 255));
        ref_frame.v.at(y, x) = static_cast<u8>(rng.uniform_int(0, 255));
      }
    }
    ref_frame.extend_borders();
    run_interpolation_rows(ref_frame.y, 0, kH / 16, sf);
    extend_subpel_borders(sf);
  }
};

TEST(MotionCompensation, ZeroMvIntegerCopyGivesPredEqualRef) {
  McFixture fx;
  // cur = ref -> residual must be all zero with MV (0,0).
  for (int y = 0; y < McFixture::kH; ++y) {
    for (int x = 0; x < McFixture::kW; ++x) {
      fx.cur.y.at(y, x) = fx.ref_frame.y.at(y, x);
    }
  }
  MbModeChoice choice;
  choice.mode = PartitionMode::k16x16;
  choice.blocks[0] = {Mv{0, 0}, 0};

  u8 pred[256];
  i16 res[256];
  std::vector<const SubPelFrame*> sfs{&fx.sf};
  motion_compensate_luma_mb(fx.cur.y, sfs, choice, 0, 0, pred, res);
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(res[i], 0);
    EXPECT_EQ(pred[i],
              fx.ref_frame.y.at(i / 16, i % 16));
  }
}

TEST(MotionCompensation, IntegerMvShiftsPrediction) {
  McFixture fx;
  MbModeChoice choice;
  choice.mode = PartitionMode::k16x16;
  choice.blocks[0] = {Mv{8, -4}, 0};  // +2 px right, -1 px up

  u8 pred[256];
  i16 res[256];
  std::vector<const SubPelFrame*> sfs{&fx.sf};
  motion_compensate_luma_mb(fx.cur.y, sfs, choice, 1, 1, pred, res);
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      EXPECT_EQ(pred[y * 16 + x], fx.ref_frame.y.at(16 + y - 1, 16 + x + 2));
    }
  }
}

TEST(MotionCompensation, SubPelMvReadsCorrectPhase) {
  McFixture fx;
  MbModeChoice choice;
  choice.mode = PartitionMode::k16x16;
  choice.blocks[0] = {Mv{6, 1}, 0};  // phase (1, 2), integer (+1, 0)

  u8 pred[256];
  i16 res[256];
  std::vector<const SubPelFrame*> sfs{&fx.sf};
  motion_compensate_luma_mb(fx.cur.y, sfs, choice, 0, 0, pred, res);
  const PlaneU8& ph = fx.sf.phase(1, 2);
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      EXPECT_EQ(pred[y * 16 + x], ph.at(y, x + 1));
    }
  }
}

TEST(MotionCompensation, PerBlockVectorsApplyToTheirRegions) {
  McFixture fx;
  MbModeChoice choice;
  choice.mode = PartitionMode::k8x16;
  choice.blocks[0] = {Mv{0, 0}, 0};
  choice.blocks[1] = {Mv{4, 0}, 0};  // right half shifted by 1 px

  u8 pred[256];
  i16 res[256];
  std::vector<const SubPelFrame*> sfs{&fx.sf};
  motion_compensate_luma_mb(fx.cur.y, sfs, choice, 0, 0, pred, res);
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 8; ++x) {
      EXPECT_EQ(pred[y * 16 + x], fx.ref_frame.y.at(y, x));
    }
    for (int x = 8; x < 16; ++x) {
      EXPECT_EQ(pred[y * 16 + x], fx.ref_frame.y.at(y, x + 1));
    }
  }
}

TEST(MotionCompensation, ChromaIntegerShiftFollowsLumaHalf) {
  McFixture fx;
  MbModeChoice choice;
  choice.mode = PartitionMode::k16x16;
  choice.blocks[0] = {Mv{16, 8}, 0};  // luma +4 px, +2 px -> chroma +2, +1

  u8 pred[64];
  i16 res[64];
  std::vector<const PlaneU8*> refs_u{&fx.ref_frame.u};
  motion_compensate_chroma_mb(fx.cur.u, refs_u, choice, 0, 0, pred, res);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      EXPECT_EQ(pred[y * 8 + x], fx.ref_frame.u.at(y + 1, x + 2));
    }
  }
}

TEST(MotionCompensation, ChromaFractionalIsBilinear) {
  McFixture fx;
  MbModeChoice choice;
  choice.mode = PartitionMode::k16x16;
  choice.blocks[0] = {Mv{2, 0}, 0};  // chroma xFrac=2, yFrac=0

  u8 pred[64];
  i16 res[64];
  std::vector<const PlaneU8*> refs_u{&fx.ref_frame.u};
  motion_compensate_chroma_mb(fx.cur.u, refs_u, choice, 0, 0, pred, res);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      const int a = fx.ref_frame.u.at(y, x);
      const int b = fx.ref_frame.u.at(y, x + 1);
      EXPECT_EQ(pred[y * 8 + x], (6 * 8 * a + 2 * 8 * b + 32) >> 6);
    }
  }
}

}  // namespace
}  // namespace feves
