#include "codec/deblock.hpp"

#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

namespace feves {
namespace {

TEST(BoundaryStrength, IntraWinsEverything) {
  Block4x4Info a, b;
  a.intra = true;
  EXPECT_EQ(boundary_strength(a, b), 4);
  a.intra = false;
  b.intra = true;
  EXPECT_EQ(boundary_strength(a, b), 4);
}

TEST(BoundaryStrength, CodedCoefficientsGiveTwo) {
  Block4x4Info a, b;
  a.nonzero = true;
  EXPECT_EQ(boundary_strength(a, b), 2);
}

TEST(BoundaryStrength, MotionDiscontinuityGivesOne) {
  Block4x4Info a, b;
  a.mv = Mv{0, 0};
  b.mv = Mv{4, 0};  // one full pel apart
  EXPECT_EQ(boundary_strength(a, b), 1);
  b.mv = Mv{3, 0};  // under a full pel: smooth
  EXPECT_EQ(boundary_strength(a, b), 0);
  b.mv = Mv{0, 0};
  b.ref_idx = 1;
  EXPECT_EQ(boundary_strength(a, b), 1);
}

TEST(BoundaryStrength, IdenticalMotionGivesZero) {
  Block4x4Info a, b;
  a.mv = b.mv = Mv{7, -9};
  EXPECT_EQ(boundary_strength(a, b), 0);
}

struct DeblockFixture {
  static constexpr int kMbW = 2, kMbH = 2;
  PlaneU8 luma{kMbW * 16, kMbH * 16, 8};
  std::vector<Block4x4Info> blocks{
      static_cast<std::size_t>(kMbW * 4 * kMbH * 4)};

  /// Hard step edge across the x=16 MB boundary.
  void make_vertical_step(u8 left, u8 right) {
    for (int y = 0; y < kMbH * 16; ++y) {
      for (int x = 0; x < kMbW * 16; ++x) {
        luma.at(y, x) = x < 16 ? left : right;
      }
    }
  }
};

TEST(Deblock, SmoothsBlockingArtifactAtCodedEdge) {
  DeblockFixture fx;
  fx.make_vertical_step(100, 116);
  for (auto& b : fx.blocks) b.nonzero = true;  // bS = 2 everywhere

  DeblockParams p;
  p.qp = 32;
  run_deblock_frame(fx.luma, DeblockFixture::kMbW, DeblockFixture::kMbH,
                    fx.blocks.data(), p);
  // The step must shrink: p0/q0 moved toward each other.
  const int p0 = fx.luma.at(8, 15);
  const int q0 = fx.luma.at(8, 16);
  EXPECT_GT(p0, 100);
  EXPECT_LT(q0, 116);
}

TEST(Deblock, LeavesLargeRealEdgesAlone) {
  // |p0 - q0| >= alpha: this is real content, not a coding artifact.
  DeblockFixture fx;
  fx.make_vertical_step(30, 220);
  for (auto& b : fx.blocks) b.nonzero = true;

  DeblockParams p;
  p.qp = 32;
  run_deblock_frame(fx.luma, DeblockFixture::kMbW, DeblockFixture::kMbH,
                    fx.blocks.data(), p);
  EXPECT_EQ(fx.luma.at(8, 15), 30);
  EXPECT_EQ(fx.luma.at(8, 16), 220);
}

TEST(Deblock, NoFilteringWhenBsZero) {
  DeblockFixture fx;
  fx.make_vertical_step(100, 112);
  // Default blocks: no coeffs, same MV/ref -> bS 0 everywhere.
  DeblockParams p;
  p.qp = 32;
  run_deblock_frame(fx.luma, DeblockFixture::kMbW, DeblockFixture::kMbH,
                    fx.blocks.data(), p);
  EXPECT_EQ(fx.luma.at(8, 15), 100);
  EXPECT_EQ(fx.luma.at(8, 16), 112);
}

TEST(Deblock, LowQpDisablesFilterEntirely) {
  DeblockFixture fx;
  fx.make_vertical_step(100, 110);
  for (auto& b : fx.blocks) b.intra = true;
  DeblockParams p;
  p.qp = 10;  // alpha table is zero below 16
  run_deblock_frame(fx.luma, DeblockFixture::kMbW, DeblockFixture::kMbH,
                    fx.blocks.data(), p);
  EXPECT_EQ(fx.luma.at(8, 15), 100);
  EXPECT_EQ(fx.luma.at(8, 16), 110);
}

TEST(Deblock, StrongFilterTouchesThreeSamples) {
  DeblockFixture fx;
  // Gentle ramp either side of the boundary so ap/aq < beta holds, then a
  // modest step: the bS=4 strong filter rewrites p2..q2.
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      fx.luma.at(y, x) = x < 16 ? 100 : 108;
    }
  }
  for (auto& b : fx.blocks) b.intra = true;
  DeblockParams p;
  p.qp = 40;

  const u8 before_p2 = fx.luma.at(4, 13);
  run_deblock_frame(fx.luma, DeblockFixture::kMbW, DeblockFixture::kMbH,
                    fx.blocks.data(), p);
  EXPECT_NE(fx.luma.at(4, 13), before_p2);
  // Samples beyond p3 are never written.
  EXPECT_EQ(fx.luma.at(4, 11), 100);
}

TEST(Deblock, HorizontalEdgesFiltered) {
  DeblockFixture fx;
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      fx.luma.at(y, x) = y < 16 ? 100 : 114;
    }
  }
  for (auto& b : fx.blocks) b.nonzero = true;
  DeblockParams p;
  p.qp = 32;
  run_deblock_frame(fx.luma, DeblockFixture::kMbW, DeblockFixture::kMbH,
                    fx.blocks.data(), p);
  EXPECT_GT(fx.luma.at(15, 8), 100);
  EXPECT_LT(fx.luma.at(16, 8), 114);
}

TEST(Deblock, FrameBoundariesNeverFiltered) {
  DeblockFixture fx;
  fx.make_vertical_step(100, 116);
  for (auto& b : fx.blocks) b.intra = true;
  // Poison the border: if the filter read/wrote across the frame edge the
  // poison would leak into row/column 0 results differently.
  DeblockParams p;
  p.qp = 36;
  run_deblock_frame(fx.luma, DeblockFixture::kMbW, DeblockFixture::kMbH,
                    fx.blocks.data(), p);
  // Column 0 (left frame edge) has no left neighbour: x=0 edge skipped, so
  // the leftmost samples are untouched by any vertical-edge filter other
  // than the internal x=4 edge, which cannot modify x<1... verify x=0
  // retains its value.
  EXPECT_EQ(fx.luma.at(0, 0), 100);
}

}  // namespace
}  // namespace feves
