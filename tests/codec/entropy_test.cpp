#include "codec/bitstream.hpp"
#include "codec/cavlc.hpp"

#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstring>

namespace feves {
namespace {

TEST(Bitstream, BitRoundTrip) {
  BitWriter bw;
  bw.put_bit(1);
  bw.put_bit(0);
  bw.put_bits(0b1011, 4);
  bw.put_bits(0xDEAD, 16);
  bw.finish();
  BitReader br(bw.bytes());
  EXPECT_EQ(br.get_bit(), 1);
  EXPECT_EQ(br.get_bit(), 0);
  EXPECT_EQ(br.get_bits(4), 0b1011u);
  EXPECT_EQ(br.get_bits(16), 0xDEADu);
}

TEST(Bitstream, UeKnownCodewords) {
  // ue(0)='1', ue(1)='010', ue(2)='011', ue(3)='00100'.
  BitWriter bw;
  bw.put_ue(0);
  bw.put_ue(1);
  bw.put_ue(2);
  bw.put_ue(3);
  bw.finish();
  EXPECT_EQ(bw.bytes().size(), 2u);
  EXPECT_EQ(bw.bytes()[0], 0b10100110);  // 1 010 011 0...
  BitReader br(bw.bytes());
  EXPECT_EQ(br.get_ue(), 0u);
  EXPECT_EQ(br.get_ue(), 1u);
  EXPECT_EQ(br.get_ue(), 2u);
  EXPECT_EQ(br.get_ue(), 3u);
}

TEST(Bitstream, UeSeSweepRoundTrip) {
  BitWriter bw;
  for (u32 v = 0; v < 1000; ++v) bw.put_ue(v);
  for (i32 v = -500; v <= 500; ++v) bw.put_se(v);
  bw.put_ue(0xFFFFFF);
  bw.finish();
  BitReader br(bw.bytes());
  for (u32 v = 0; v < 1000; ++v) EXPECT_EQ(br.get_ue(), v);
  for (i32 v = -500; v <= 500; ++v) EXPECT_EQ(br.get_se(), v);
  EXPECT_EQ(br.get_ue(), 0xFFFFFFu);
}

TEST(Bitstream, ReaderThrowsPastEnd) {
  BitWriter bw;
  bw.put_bits(0xA, 4);
  bw.finish();
  BitReader br(bw.bytes());
  br.get_bits(8);
  EXPECT_THROW(br.get_bit(), Error);
}

// ---- CAVLC --------------------------------------------------------------

void roundtrip(const i16 in[16]) {
  BitWriter bw;
  const int tc = cavlc_encode_4x4(bw, in);
  bw.finish();
  BitReader br(bw.bytes());
  i16 out[16];
  const int tc2 = cavlc_decode_4x4(br, out);
  EXPECT_EQ(tc, tc2);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(in[i], out[i]) << "coeff " << i;
}

TEST(Cavlc, AllZeroBlock) {
  i16 levels[16] = {};
  BitWriter bw;
  EXPECT_EQ(cavlc_encode_4x4(bw, levels), 0);
  bw.finish();
  EXPECT_LE(bw.bytes().size(), 1u);  // a zero block costs one ue(0) = 1 bit
  roundtrip(levels);
}

TEST(Cavlc, SingleDcCoefficient) {
  i16 levels[16] = {};
  levels[0] = 5;
  roundtrip(levels);
}

TEST(Cavlc, TrailingOnesOnly) {
  i16 levels[16] = {};
  levels[0] = 1;
  levels[1] = -1;
  levels[4] = 1;  // zig-zag: positions 0,1,2
  roundtrip(levels);
}

TEST(Cavlc, MixedLevelsAndZeroRuns) {
  i16 levels[16] = {};
  levels[0] = -7;
  levels[4] = 3;
  levels[2] = 1;
  levels[10] = -1;
  roundtrip(levels);
}

TEST(Cavlc, FullBlockMaxCoefficients) {
  i16 levels[16];
  for (int i = 0; i < 16; ++i) levels[i] = static_cast<i16>((i % 2) ? -3 - i : 3 + i);
  roundtrip(levels);
}

TEST(Cavlc, LargeLevelsUseEscape) {
  i16 levels[16] = {};
  levels[0] = 3000;
  levels[1] = -2900;
  levels[5] = 2;
  roundtrip(levels);
}

TEST(Cavlc, FourTrailingOnesOnlyThreeQualify) {
  // Five ±1 coefficients: only the last three (in scan order) are T1s, the
  // rest go through level coding.
  i16 levels[16] = {};
  levels[0] = 1;
  levels[1] = -1;
  levels[4] = 1;
  levels[8] = -1;
  levels[5] = 1;
  roundtrip(levels);
}

TEST(Cavlc, HighFrequencyOnlyCoefficient) {
  i16 levels[16] = {};
  levels[15] = -2;  // last zig-zag position: total_zeros = 15
  roundtrip(levels);
}

/// Exhaustive-ish property sweep over random sparse blocks at several
/// densities — the encoder/decoder pair must be the identity.
class CavlcRandom : public ::testing::TestWithParam<int> {};

TEST_P(CavlcRandom, RoundTripRandomBlocks) {
  const int density = GetParam();  // coefficients per block
  Rng rng(static_cast<u64>(density) * 7001 + 17);
  for (int trial = 0; trial < 300; ++trial) {
    i16 levels[16] = {};
    for (int c = 0; c < density; ++c) {
      const int pos = static_cast<int>(rng.uniform_int(0, 15));
      const int mag_class = static_cast<int>(rng.uniform_int(0, 3));
      const i64 mag = mag_class == 0   ? 1
                      : mag_class == 1 ? rng.uniform_int(1, 3)
                      : mag_class == 2 ? rng.uniform_int(1, 40)
                                       : rng.uniform_int(1, 3500);
      levels[pos] = static_cast<i16>(rng.uniform_int(0, 1) ? mag : -mag);
    }
    roundtrip(levels);
  }
}

INSTANTIATE_TEST_SUITE_P(Densities, CavlcRandom,
                         ::testing::Values(1, 2, 3, 5, 8, 12, 16));

TEST(Cavlc, StreamOfManyBlocksStaysInSync) {
  // Decoding must consume exactly the bits encoding produced, block after
  // block, with no drift.
  Rng rng(4242);
  std::vector<std::array<i16, 16>> blocks(200);
  BitWriter bw;
  for (auto& blk : blocks) {
    blk.fill(0);
    const int n = static_cast<int>(rng.uniform_int(0, 6));
    for (int c = 0; c < n; ++c) {
      blk[static_cast<std::size_t>(rng.uniform_int(0, 15))] =
          static_cast<i16>(rng.uniform_int(-9, 9));
    }
    cavlc_encode_4x4(bw, blk.data());
  }
  bw.finish();
  BitReader br(bw.bytes());
  for (const auto& blk : blocks) {
    i16 out[16];
    cavlc_decode_4x4(br, out);
    EXPECT_EQ(std::memcmp(blk.data(), out, sizeof(out)), 0);
  }
}

}  // namespace
}  // namespace feves
