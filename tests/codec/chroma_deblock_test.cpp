#include "codec/deblock.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace feves {
namespace {

struct ChromaFixture {
  static constexpr int kMbW = 2, kMbH = 2;
  PlaneU8 chroma{kMbW * 8, kMbH * 8, 4};
  std::vector<Block4x4Info> blocks{
      static_cast<std::size_t>(kMbW * 4 * kMbH * 4)};

  void make_vertical_step(u8 left, u8 right) {
    for (int y = 0; y < kMbH * 8; ++y) {
      for (int x = 0; x < kMbW * 8; ++x) {
        chroma.at(y, x) = x < 8 ? left : right;
      }
    }
  }
};

TEST(ChromaDeblock, SmoothsCodedEdge) {
  ChromaFixture fx;
  fx.make_vertical_step(100, 112);
  for (auto& b : fx.blocks) b.nonzero = true;  // bS 2
  DeblockParams p;
  p.qp = 30;
  run_deblock_chroma(fx.chroma, ChromaFixture::kMbW, ChromaFixture::kMbH,
                     fx.blocks.data(), p);
  EXPECT_GT(fx.chroma.at(4, 7), 100);
  EXPECT_LT(fx.chroma.at(4, 8), 112);
}

TEST(ChromaDeblock, OnlyTwoSamplesTouched) {
  // The chroma filter must never modify p1/q1 (unlike luma's normal filter).
  ChromaFixture fx;
  fx.make_vertical_step(100, 112);
  for (auto& b : fx.blocks) b.nonzero = true;
  DeblockParams p;
  p.qp = 30;
  run_deblock_chroma(fx.chroma, ChromaFixture::kMbW, ChromaFixture::kMbH,
                     fx.blocks.data(), p);
  EXPECT_EQ(fx.chroma.at(4, 6), 100);
  EXPECT_EQ(fx.chroma.at(4, 9), 112);
}

TEST(ChromaDeblock, StrongFilterOnIntraEdges) {
  ChromaFixture fx;
  fx.make_vertical_step(100, 108);
  for (auto& b : fx.blocks) b.intra = true;  // bS 4
  DeblockParams p;
  p.qp = 36;
  const int p1 = fx.chroma.at(2, 6), q1 = fx.chroma.at(2, 9);
  run_deblock_chroma(fx.chroma, ChromaFixture::kMbW, ChromaFixture::kMbH,
                     fx.blocks.data(), p);
  // bS 4 blend: p0' = (2*100 + 100 + 108 + 2)/4 = 102, q0' = 106.
  EXPECT_EQ(fx.chroma.at(2, 7), 102);
  EXPECT_EQ(fx.chroma.at(2, 8), 106);
  EXPECT_EQ(fx.chroma.at(2, 6), p1);
  EXPECT_EQ(fx.chroma.at(2, 9), q1);
}

TEST(ChromaDeblock, NoFilterAtBsZeroOrRealEdges) {
  ChromaFixture fx;
  fx.make_vertical_step(30, 220);  // giant step: real content
  for (auto& b : fx.blocks) b.nonzero = true;
  DeblockParams p;
  p.qp = 30;
  run_deblock_chroma(fx.chroma, ChromaFixture::kMbW, ChromaFixture::kMbH,
                     fx.blocks.data(), p);
  EXPECT_EQ(fx.chroma.at(4, 7), 30);
  EXPECT_EQ(fx.chroma.at(4, 8), 220);

  fx.make_vertical_step(100, 112);
  for (auto& b : fx.blocks) {
    b.nonzero = false;
    b.intra = false;  // bS 0
  }
  run_deblock_chroma(fx.chroma, ChromaFixture::kMbW, ChromaFixture::kMbH,
                     fx.blocks.data(), p);
  EXPECT_EQ(fx.chroma.at(4, 7), 100);
  EXPECT_EQ(fx.chroma.at(4, 8), 112);
}

TEST(ChromaDeblock, HorizontalEdges) {
  ChromaFixture fx;
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      fx.chroma.at(y, x) = y < 8 ? u8{100} : u8{112};
    }
  }
  for (auto& b : fx.blocks) b.nonzero = true;
  DeblockParams p;
  p.qp = 30;
  run_deblock_chroma(fx.chroma, ChromaFixture::kMbW, ChromaFixture::kMbH,
                     fx.blocks.data(), p);
  EXPECT_GT(fx.chroma.at(7, 4), 100);
  EXPECT_LT(fx.chroma.at(8, 4), 112);
}

}  // namespace
}  // namespace feves
