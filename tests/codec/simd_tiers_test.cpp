// Kernel-registry oracle battery: every vector tier of every kernel family
// is pinned bit-for-bit against its scalar oracle on randomized inputs, and
// the registry's resolution rules (per-kernel ceilings, CPUID gating, kAuto
// selection) are checked explicitly. Every tier enum value — including
// requests the machine can't honour, which must degrade, not diverge — goes
// through each kernel, so a wrong dispatch entry can't hide behind a
// "supported tiers only" filter.
//
// run_sanitized.sh runs this suite under ASan/UBSan, once as-is and once
// with FEVES_CPU_CAP=sse2, so the AVX2 paths' loads and the degraded
// dispatch ladder both get sanitizer coverage.

#include "codec/deblock.hpp"
#include "codec/interpolate.hpp"
#include "codec/kernels.hpp"
#include "codec/mc.hpp"
#include "codec/me.hpp"
#include "codec/sad.hpp"
#include "codec/transform.hpp"
#include "common/cpu_features.hpp"
#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

namespace feves {
namespace {

/// All tier enum values. Every one must produce bit-exact results for every
/// kernel — unavailable tiers resolve down the ladder, never to different
/// arithmetic.
const SimdTier kAllTiers[] = {SimdTier::kScalar, SimdTier::kBlocked,
                              SimdTier::kSse2, SimdTier::kAvx2,
                              SimdTier::kAuto};

PlaneU8 random_plane(int w, int h, int border, u64 seed) {
  PlaneU8 p(w, h, border);
  Rng rng(seed);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      p.at(y, x) = static_cast<u8>(rng.uniform_int(0, 255));
    }
  }
  p.extend_borders();
  return p;
}

SimdTier lower(SimdTier a, SimdTier b) {
  return static_cast<int>(a) < static_cast<int>(b) ? a : b;
}

int rand_in(Rng& rng, int lo, int hi) {
  return static_cast<int>(rng.uniform_int(lo, hi));
}

TEST(SimdTiers, SadGridMatchesScalarEveryTier) {
  const auto cur = random_plane(48, 48, 8, 101);
  const auto ref = random_plane(48, 48, 8, 202);
  SimdTier scalar_resolved;
  const SadGrid16Fn oracle =
      sad_grid_16x16_kernel(SimdTier::kScalar, &scalar_resolved);
  ASSERT_EQ(scalar_resolved, SimdTier::kScalar);
  Rng rng(7);
  for (SimdTier t : kAllTiers) {
    const SadGrid16Fn fn = sad_grid_16x16_kernel(t);
    for (int trial = 0; trial < 32; ++trial) {
      // Misaligned, border-reaching candidate positions included.
      const int cx = rand_in(rng, 0, 32), cy = rand_in(rng, 0, 32);
      const int rx = rand_in(rng, -8, 40), ry = rand_in(rng, -8, 40);
      u16 want[16], got[16];
      oracle(&cur.at(cy, cx), cur.stride(), &ref.at(ry, rx), ref.stride(),
             want);
      fn(&cur.at(cy, cx), cur.stride(), &ref.at(ry, rx), ref.stride(), got);
      ASSERT_EQ(0, std::memcmp(want, got, sizeof want))
          << "tier " << tier_name(t) << " trial " << trial;
    }
  }
}

TEST(SimdTiers, SadBlockEveryWidthEveryTier) {
  const auto a = random_plane(64, 32, 4, 303);
  const auto b = random_plane(64, 32, 4, 404);
  Rng rng(9);
  for (SimdTier t : kAllTiers) {
    const SadBlockFn fn = sad_block_kernel(t);
    // Every width 1..16 — the SSE2/AVX2 paths chunk by 16 and 8 with a
    // scalar tail, so odd widths (3, 5, 7, ...) probe the tail handling.
    for (int w = 1; w <= 16; ++w) {
      for (int h : {1, 4, 7, 8, 16}) {
        const int ax = rand_in(rng, 0, 40), ay = rand_in(rng, 0, 12);
        const int bx = rand_in(rng, 0, 40), by = rand_in(rng, 0, 12);
        const u32 want = sad_block_scalar(&a.at(ay, ax), a.stride(),
                                          &b.at(by, bx), b.stride(), w, h);
        const u32 got = fn(&a.at(ay, ax), a.stride(), &b.at(by, bx),
                           b.stride(), w, h);
        ASSERT_EQ(want, got)
            << "tier " << tier_name(t) << " " << w << "x" << h;
      }
    }
  }
}

TEST(SimdTiers, InterpolationAllPhasesBitExact) {
  // Width a multiple of 16 (MB-aligned frames only, per EncoderConfig), tall
  // enough for two MB rows so the row-pass ring buffer wraps.
  const int w = 48, h = 32, border = 16;
  const auto ref = random_plane(w, h, border, 505);
  SubPelFrame want(w, h, border);
  run_interpolation_rows(ref, 0, h / 16, want, SimdTier::kScalar);
  for (SimdTier t : kAllTiers) {
    if (t == SimdTier::kScalar) continue;
    SubPelFrame got(w, h, border);
    run_interpolation_rows(ref, 0, h / 16, got, t);
    for (int dy = 0; dy < kSubPel; ++dy) {
      for (int dx = 0; dx < kSubPel; ++dx) {
        const PlaneU8& pw = want.phase(dy, dx);
        const PlaneU8& pg = got.phase(dy, dx);
        for (int y = 0; y < h; ++y) {
          ASSERT_EQ(0, std::memcmp(pw.row(y), pg.row(y), w))
              << "tier " << tier_name(t) << " phase (" << dy << "," << dx
              << ") row " << y;
        }
      }
    }
  }
}

TEST(SimdTiers, ForwardTransformMatchesScalar) {
  Rng rng(606);
  for (SimdTier t : kAllTiers) {
    const Fwd4x4Fn fn = forward_transform_4x4_kernel(t);
    for (int trial = 0; trial < 200; ++trial) {
      i16 res[16], want[16], got[16];
      for (auto& v : res) v = static_cast<i16>(rng.uniform_int(-255, 255));
      forward_transform_4x4(res, want);
      fn(res, got);
      ASSERT_EQ(0, std::memcmp(want, got, sizeof want))
          << "tier " << tier_name(t) << " trial " << trial;
    }
  }
}

TEST(SimdTiers, InverseTransformMatchesScalarOnDequantizedInputs) {
  // Inputs come through dequantize_4x4 like in the codec — the i32 range the
  // SSE2 pack truncation is proven exact for is the dequantizer's range, not
  // arbitrary i32.
  Rng rng(707);
  for (SimdTier t : kAllTiers) {
    const Inv4x4Fn fn = inverse_transform_4x4_kernel(t);
    for (int qp : {0, 12, 28, 40, 51}) {
      for (int trial = 0; trial < 50; ++trial) {
        i16 res[16], coeffs[16], levels[16];
        i32 deq[16];
        for (auto& v : res) v = static_cast<i16>(rng.uniform_int(-255, 255));
        forward_transform_4x4(res, coeffs);
        quantize_4x4(coeffs, qp, trial % 2 == 0, levels);
        dequantize_4x4(levels, qp, deq);
        i16 want[16], got[16];
        inverse_transform_4x4(deq, want);
        fn(deq, got);
        ASSERT_EQ(0, std::memcmp(want, got, sizeof want))
            << "tier " << tier_name(t) << " qp " << qp << " trial " << trial;
      }
    }
  }
}

std::vector<Block4x4Info> random_block_info(int mb_width, int mb_height,
                                            u64 seed) {
  std::vector<Block4x4Info> blocks(
      static_cast<std::size_t>(mb_width * 4 * mb_height * 4));
  Rng rng(seed);
  for (auto& b : blocks) {
    b.mv = Mv{static_cast<i16>(rng.uniform_int(-32, 32)),
              static_cast<i16>(rng.uniform_int(-32, 32))};
    b.ref_idx = static_cast<u8>(rng.uniform_int(0, 1));
    b.nonzero = rng.uniform01() < 0.4;
    b.intra = rng.uniform01() < 0.15;  // mixes bS 4 strong-filter edges in
  }
  return blocks;
}

TEST(SimdTiers, DeblockLumaMatchesScalar) {
  const int mbw = 6, mbh = 4;
  const auto pristine = random_plane(mbw * 16, mbh * 16, 8, 808);
  const auto blocks = random_block_info(mbw, mbh, 809);
  for (int qp : {10, 28, 45}) {
    DeblockParams p;
    p.qp = qp;
    p.tier = SimdTier::kScalar;
    PlaneU8 want = pristine;
    run_deblock_frame(want, mbw, mbh, blocks.data(), p);
    for (SimdTier t : kAllTiers) {
      if (t == SimdTier::kScalar) continue;
      p.tier = t;
      PlaneU8 got = pristine;
      run_deblock_frame(got, mbw, mbh, blocks.data(), p);
      for (int y = 0; y < got.height(); ++y) {
        ASSERT_EQ(0, std::memcmp(want.row(y), got.row(y), got.width()))
            << "tier " << tier_name(t) << " qp " << qp << " row " << y;
      }
    }
  }
}

TEST(SimdTiers, DeblockChromaMatchesScalar) {
  const int mbw = 6, mbh = 4;
  const auto pristine = random_plane(mbw * 8, mbh * 8, 8, 810);
  const auto blocks = random_block_info(mbw, mbh, 811);
  DeblockParams p;
  p.qp = 30;
  p.tier = SimdTier::kScalar;
  PlaneU8 want = pristine;
  run_deblock_chroma(want, mbw, mbh, blocks.data(), p);
  for (SimdTier t : kAllTiers) {
    if (t == SimdTier::kScalar) continue;
    p.tier = t;
    PlaneU8 got = pristine;
    run_deblock_chroma(got, mbw, mbh, blocks.data(), p);
    for (int y = 0; y < got.height(); ++y) {
      ASSERT_EQ(0, std::memcmp(want.row(y), got.row(y), got.width()))
          << "tier " << tier_name(t) << " row " << y;
    }
  }
}

TEST(SimdTiers, MotionCompensationMatchesScalar) {
  const int w = 64, h = 64;
  const auto ref = random_plane(w, h, 24, 909);
  const auto cur = random_plane(w, h, 24, 910);
  SubPelFrame sf(w, h, 24);
  run_interpolation_rows(ref, 0, h / 16, sf, SimdTier::kScalar);
  extend_subpel_borders(sf);
  const std::vector<const SubPelFrame*> sfs{&sf};

  Rng rng(11);
  // Every partition mode, random quarter-pel MVs (off-grid phases included).
  for (int m = 0; m < kNumPartitionModes; ++m) {
    MbModeChoice choice;
    choice.mode = static_cast<PartitionMode>(m);
    for (int b = 0; b < geometry(choice.mode).num_blocks(); ++b) {
      choice.blocks[b].mv = Mv{static_cast<i16>(rng.uniform_int(-20, 20)),
                               static_cast<i16>(rng.uniform_int(-20, 20))};
      choice.blocks[b].ref_idx = 0;
    }
    u8 want_pred[kMbSize * kMbSize], got_pred[kMbSize * kMbSize];
    i16 want_res[kMbSize * kMbSize], got_res[kMbSize * kMbSize];
    motion_compensate_luma_mb(cur, sfs, choice, 1, 2, want_pred, want_res,
                              SimdTier::kScalar);
    for (SimdTier t : kAllTiers) {
      if (t == SimdTier::kScalar) continue;
      motion_compensate_luma_mb(cur, sfs, choice, 1, 2, got_pred, got_res, t);
      ASSERT_EQ(0, std::memcmp(want_pred, got_pred, sizeof want_pred))
          << "tier " << tier_name(t) << " mode " << m;
      ASSERT_EQ(0, std::memcmp(want_res, got_res, sizeof want_res))
          << "tier " << tier_name(t) << " mode " << m;
    }
  }
}

TEST(SimdTiers, ChromaMotionCompensationMatchesScalar) {
  const int w = 32, h = 32;  // chroma planes of a 64x64 frame
  const auto cur_c = random_plane(w, h, 24, 912);
  const auto ref_c = random_plane(w, h, 24, 913);
  const std::vector<const PlaneU8*> refs_c{&ref_c};
  Rng rng(13);
  for (int m = 0; m < kNumPartitionModes; ++m) {
    MbModeChoice choice;
    choice.mode = static_cast<PartitionMode>(m);
    for (int b = 0; b < geometry(choice.mode).num_blocks(); ++b) {
      choice.blocks[b].mv = Mv{static_cast<i16>(rng.uniform_int(-20, 20)),
                               static_cast<i16>(rng.uniform_int(-20, 20))};
      choice.blocks[b].ref_idx = 0;
    }
    u8 want_pred[64], got_pred[64];
    i16 want_res[64], got_res[64];
    motion_compensate_chroma_mb(cur_c, refs_c, choice, 1, 1, want_pred,
                                want_res, SimdTier::kScalar);
    for (SimdTier t : kAllTiers) {
      if (t == SimdTier::kScalar) continue;
      motion_compensate_chroma_mb(cur_c, refs_c, choice, 1, 1, got_pred,
                                  got_res, t);
      ASSERT_EQ(0, std::memcmp(want_pred, got_pred, sizeof want_pred))
          << "tier " << tier_name(t) << " mode " << m;
      ASSERT_EQ(0, std::memcmp(want_res, got_res, sizeof want_res))
          << "tier " << tier_name(t) << " mode " << m;
    }
  }
}

TEST(SimdTiers, MeSearchRangeIsInclusive) {
  // Plant the current MB's pixels in the reference at exactly (+R, +R): the
  // SAD-0 match sits on the last candidate of the inclusive [-R, +R] range.
  // The historical exclusive loop (dx < R) misses it and settles for a
  // nonzero-cost neighbour.
  const int r = 5;
  const int w = 32, h = 32, border = r + kMbSize;
  auto cur = random_plane(w, h, border, 914);
  auto ref = random_plane(w, h, border, 915);
  for (int y = 0; y < kMbSize; ++y) {
    for (int x = 0; x < kMbSize; ++x) {
      ref.at(y + r, x + r) = cur.at(y, x);
    }
  }
  ref.extend_borders();

  MeParams params;
  params.search_range = r;
  for (SimdTier t : kAllTiers) {
    params.tier = t;
    MotionField field(static_cast<std::size_t>((w / 16) * (h / 16)));
    run_me_rows(cur, ref, w / 16, 0, h / 16, params, field.data());
    const MotionEntry& e = field[0].entry(PartitionMode::k16x16, 0);
    EXPECT_EQ(e.mv.x, 4 * r) << "tier " << tier_name(t);
    EXPECT_EQ(e.mv.y, 4 * r) << "tier " << tier_name(t);
    EXPECT_EQ(e.cost, 0u) << "tier " << tier_name(t);
  }
}

TEST(SimdTiers, ResolveRespectsCpuAndKernelCeilings) {
  // Phrased relative to cpu_features() so the suite passes unchanged under
  // FEVES_CPU_CAP (run_sanitized.sh reruns it with the cap at sse2).
  const CpuFeatures& cpu = cpu_features();
  const SimdTier cpu_ceiling = cpu.avx2    ? SimdTier::kAvx2
                               : cpu.sse2 ? SimdTier::kSse2
                                          : SimdTier::kBlocked;
  // AVX2 pays on the wide pixel kernels; the 4x4 transform, deblock and MC
  // inner loops are 128-bit shaped, so their ladder tops out at SSE2.
  EXPECT_EQ(max_tier(KernelId::kSadGrid), lower(SimdTier::kAvx2, cpu_ceiling));
  EXPECT_EQ(max_tier(KernelId::kSadBlock), lower(SimdTier::kAvx2, cpu_ceiling));
  EXPECT_EQ(max_tier(KernelId::kInterp), lower(SimdTier::kAvx2, cpu_ceiling));
  EXPECT_EQ(max_tier(KernelId::kTransform),
            lower(SimdTier::kSse2, cpu_ceiling));
  EXPECT_EQ(max_tier(KernelId::kDeblock), lower(SimdTier::kSse2, cpu_ceiling));
  EXPECT_EQ(max_tier(KernelId::kMc), lower(SimdTier::kSse2, cpu_ceiling));

  for (int k = 0; k < static_cast<int>(KernelId::kCount); ++k) {
    const KernelId id = static_cast<KernelId>(k);
    // Software tiers always pass through untouched; kAuto is the max.
    EXPECT_EQ(resolve_tier(id, SimdTier::kScalar), SimdTier::kScalar);
    EXPECT_EQ(resolve_tier(id, SimdTier::kBlocked), SimdTier::kBlocked);
    EXPECT_EQ(resolve_tier(id, SimdTier::kAuto), max_tier(id));
    // Explicit vector requests degrade to the ceiling, never above it.
    EXPECT_EQ(resolve_tier(id, SimdTier::kAvx2), max_tier(id));
    EXPECT_EQ(resolve_tier(id, SimdTier::kSse2),
              lower(SimdTier::kSse2, max_tier(id)));
  }
}

TEST(SimdTiers, KernelGettersReportResolvedTier) {
  SimdTier resolved = SimdTier::kScalar;
  sad_grid_16x16_kernel(SimdTier::kAuto, &resolved);
  EXPECT_EQ(resolved, max_tier(KernelId::kSadGrid));
  sad_block_kernel(SimdTier::kAvx2, &resolved);
  EXPECT_EQ(resolved, max_tier(KernelId::kSadBlock));
  forward_transform_4x4_kernel(SimdTier::kAvx2, &resolved);
  EXPECT_EQ(resolved, max_tier(KernelId::kTransform));
  inverse_transform_4x4_kernel(SimdTier::kBlocked, &resolved);
  EXPECT_EQ(resolved, SimdTier::kBlocked);
}

TEST(SimdTiers, TierReportCoversEveryKernelWithDistinctNames) {
  const auto report = kernel_tier_report(SimdTier::kAuto);
  ASSERT_EQ(report.size(),
            static_cast<std::size_t>(KernelId::kCount));
  std::vector<std::string> names;
  for (const auto& row : report) {
    EXPECT_EQ(row.requested, SimdTier::kAuto);
    EXPECT_EQ(row.resolved, max_tier(row.id));
    names.emplace_back(kernel_name(row.id));
    EXPECT_FALSE(names.back().empty());
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names.end(), std::adjacent_find(names.begin(), names.end()));
}

}  // namespace
}  // namespace feves
