// Failure injection on the bitstream path: a decoder fed corrupted or
// truncated data must fail with a checked Error (never crash, hang, or
// silently produce garbage geometry).
#include "codec/bitstream.hpp"
#include "codec/cavlc.hpp"
#include "codec/frame_codec.hpp"
#include "common/rng.hpp"
#include "video/sequence.hpp"

#include <gtest/gtest.h>

namespace feves {
namespace {

EncoderConfig small_config() {
  EncoderConfig cfg;
  cfg.width = 96;
  cfg.height = 64;
  cfg.search_range = 8;
  cfg.num_ref_frames = 1;
  return cfg;
}

std::vector<u8> encode_two_frames(const EncoderConfig& cfg) {
  SyntheticConfig sc;
  sc.width = cfg.width;
  sc.height = cfg.height;
  sc.frames = 2;
  SyntheticSequence seq(sc);
  RefList refs(cfg.num_ref_frames);
  std::vector<u8> bits;
  Frame420 frame(cfg.width, cfg.height);
  for (int f = 0; f < 2; ++f) {
    EXPECT_TRUE(seq.read_frame(f, frame));
    refs.push_front(encode_frame_reference(cfg, frame, refs, f, &bits));
  }
  return bits;
}

/// Decodes as far as the stream allows; returns true on full success.
bool try_decode(const EncoderConfig& cfg, const std::vector<u8>& bits) {
  RefList refs(cfg.num_ref_frames);
  BitReader br(bits);
  for (int f = 0; f < 2; ++f) {
    refs.push_front(decode_frame(cfg, br, refs));
  }
  return true;
}

TEST(BitstreamFuzz, CleanStreamDecodes) {
  const auto cfg = small_config();
  EXPECT_TRUE(try_decode(cfg, encode_two_frames(cfg)));
}

TEST(BitstreamFuzz, TruncatedStreamThrows) {
  const auto cfg = small_config();
  auto bits = encode_two_frames(cfg);
  bits.resize(bits.size() / 3);
  EXPECT_THROW(try_decode(cfg, bits), Error);
}

TEST(BitstreamFuzz, EmptyStreamThrows) {
  const auto cfg = small_config();
  std::vector<u8> empty;
  EXPECT_THROW(try_decode(cfg, empty), Error);
}

class BitstreamFuzzFlip : public ::testing::TestWithParam<int> {};

TEST_P(BitstreamFuzzFlip, RandomBitFlipsNeverCrash) {
  // Flipping bits may produce (a) a stream that still decodes — different
  // levels decode to different pixels, which is fine — or (b) a structural
  // violation, which must surface as a checked Error. Either outcome is
  // acceptable; UB/crash/hang is not.
  const auto cfg = small_config();
  const auto clean = encode_two_frames(cfg);
  Rng rng(static_cast<u64>(GetParam()) * 31337 + 1);
  for (int trial = 0; trial < 40; ++trial) {
    auto bits = clean;
    const int flips = 1 + static_cast<int>(rng.uniform_int(0, 7));
    for (int i = 0; i < flips; ++i) {
      const auto pos =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<i64>(bits.size()) - 1));
      bits[pos] ^= static_cast<u8>(1u << rng.uniform_int(0, 7));
    }
    try {
      try_decode(cfg, bits);
    } catch (const Error&) {
      // Checked rejection: acceptable.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitstreamFuzzFlip, ::testing::Range(0, 8));

TEST(BitstreamFuzz, GeometryMismatchRejected) {
  const auto cfg = small_config();
  const auto bits = encode_two_frames(cfg);
  EncoderConfig other = cfg;
  other.width = 128;  // decoder expects different MB grid
  RefList refs(other.num_ref_frames);
  BitReader br(bits);
  EXPECT_THROW(decode_frame(other, br, refs), Error);
}

TEST(BitstreamFuzz, CavlcRejectsImpossibleTokens) {
  // TotalCoeff > 16 must be caught, not index out of bounds.
  BitWriter bw;
  bw.put_ue(20);  // bogus TotalCoeff
  bw.put_bits(0, 2);
  bw.finish();
  BitReader br(bw.bytes());
  i16 levels[16];
  EXPECT_THROW(cavlc_decode_4x4(br, levels), Error);
}

TEST(BitstreamFuzz, CavlcRejectsZerosOverflow) {
  BitWriter bw;
  bw.put_ue(2);        // TotalCoeff = 2
  bw.put_bits(2, 2);   // TrailingOnes = 2
  bw.put_bit(0);       // sign +
  bw.put_bit(0);       // sign +
  bw.put_ue(15);       // total_zeros = 15 -> 2 + 15 > 16
  bw.finish();
  BitReader br(bw.bytes());
  i16 levels[16];
  EXPECT_THROW(cavlc_decode_4x4(br, levels), Error);
}

}  // namespace
}  // namespace feves
