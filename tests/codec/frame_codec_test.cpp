#include "codec/frame_codec.hpp"

#include "codec/bitstream.hpp"
#include "video/metrics.hpp"
#include "video/sequence.hpp"

#include <gtest/gtest.h>

namespace feves {
namespace {

EncoderConfig small_config() {
  EncoderConfig cfg;
  cfg.width = 96;
  cfg.height = 64;
  cfg.search_range = 8;
  cfg.num_ref_frames = 2;
  return cfg;
}

SyntheticConfig small_scene(int frames) {
  SyntheticConfig sc;
  sc.width = 96;
  sc.height = 64;
  sc.frames = frames;
  sc.num_objects = 3;
  sc.max_object_speed = 3.0;
  sc.noise_stddev = 1.0;
  sc.seed = 2024;
  return sc;
}

TEST(FrameCodec, IntraFrameReconstructionQuality) {
  const EncoderConfig cfg = small_config();
  SyntheticSequence seq(small_scene(1));
  Frame420 frame(cfg.width, cfg.height);
  ASSERT_TRUE(seq.read_frame(0, frame));

  RefList refs(cfg.num_ref_frames);
  std::vector<u8> bits;
  auto pic = encode_frame_reference(cfg, frame, refs, 0, &bits);
  ASSERT_NE(pic, nullptr);
  // QP 27 intra should land comfortably above 30 dB on synthetic content.
  EXPECT_GT(plane_psnr(pic->recon.y, frame.y), 30.0);
  EXPECT_FALSE(bits.empty());
}

TEST(FrameCodec, InterFrameBeatsIntraBudget) {
  const EncoderConfig cfg = small_config();
  SyntheticSequence seq(small_scene(3));
  Frame420 f0(cfg.width, cfg.height), f1(cfg.width, cfg.height);
  ASSERT_TRUE(seq.read_frame(0, f0));
  ASSERT_TRUE(seq.read_frame(1, f1));

  RefList refs(cfg.num_ref_frames);
  std::vector<u8> bits_i, bits_p;
  refs.push_front(encode_frame_reference(cfg, f0, refs, 0, &bits_i));
  auto p1 = encode_frame_reference(cfg, f1, refs, 1, &bits_p);

  // The P frame predicts from the I reconstruction: it must cost fewer bits
  // than the I frame while reaching reasonable quality.
  EXPECT_LT(bits_p.size(), bits_i.size());
  EXPECT_GT(plane_psnr(p1->recon.y, f1.y), 28.0);
}

TEST(FrameCodec, EncodeSeveralFramesPsnrStaysStable) {
  const EncoderConfig cfg = small_config();
  SyntheticSequence seq(small_scene(6));
  RefList refs(cfg.num_ref_frames);
  Frame420 frame(cfg.width, cfg.height);

  double min_psnr = 1e9;
  for (int f = 0; f < 6; ++f) {
    ASSERT_TRUE(seq.read_frame(f, frame));
    auto pic = encode_frame_reference(cfg, frame, refs, f, nullptr);
    min_psnr = std::min(min_psnr, plane_psnr(pic->recon.y, frame.y));
    refs.push_front(std::move(pic));
  }
  // No drift blow-up across the GOP.
  EXPECT_GT(min_psnr, 27.0);
}

TEST(FrameCodec, RowSlicedModulesMatchWholeFrameBitExactly) {
  // The core distribution-correctness property: splitting ME/INT/SME by MB
  // rows (as the load balancer does across devices) must not change a
  // single reconstructed pixel relative to the single-shot encode.
  const EncoderConfig cfg = small_config();
  SyntheticSequence seq(small_scene(2));
  Frame420 f0(cfg.width, cfg.height), f1(cfg.width, cfg.height);
  ASSERT_TRUE(seq.read_frame(0, f0));
  ASSERT_TRUE(seq.read_frame(1, f1));

  // Whole-frame reference encode of frame 1.
  RefList refs_a(cfg.num_ref_frames);
  refs_a.push_front(encode_frame_reference(cfg, f0, refs_a, 0, nullptr));
  auto whole = encode_frame_reference(cfg, f1, refs_a, 1, nullptr);

  // Sliced encode: same I frame, then hand-driven module slices.
  RefList refs_b(cfg.num_ref_frames);
  refs_b.push_front(encode_frame_reference(cfg, f0, refs_b, 0, nullptr));
  EncodeJob job;
  job.prepare(cfg, f1, {&refs_b.ref(0)}, 1);
  const int rows = cfg.num_mb_rows();
  me_rows(job, 0, 1);
  me_rows(job, 1, rows);
  int_rows(job, 2, rows);
  int_rows(job, 0, 2);
  finish_interpolation(job);
  sme_rows(job, 3, rows);
  sme_rows(job, 0, 3);
  rstar_frame(job);

  EXPECT_TRUE(frames_bit_exact(whole->recon, job.recon->recon));
}

TEST(FrameCodec, ScalarAndBlockedTiersBitExact) {
  const EncoderConfig cfg = small_config();
  SyntheticSequence seq(small_scene(2));
  Frame420 f0(cfg.width, cfg.height), f1(cfg.width, cfg.height);
  ASSERT_TRUE(seq.read_frame(0, f0));
  ASSERT_TRUE(seq.read_frame(1, f1));

  auto encode_with = [&](SimdTier tier) {
    RefList refs(cfg.num_ref_frames);
    refs.push_front(encode_frame_reference(cfg, f0, refs, 0, nullptr));
    EncodeJob job;
    job.prepare(cfg, f1, {&refs.ref(0)}, 1);
    me_rows(job, 0, cfg.num_mb_rows(), tier);
    int_rows(job, 0, cfg.num_mb_rows());
    finish_interpolation(job);
    sme_rows(job, 0, cfg.num_mb_rows());
    rstar_frame(job);
    return std::move(job.recon);
  };

  auto a = encode_with(SimdTier::kScalar);
  auto b = encode_with(SimdTier::kBlocked);
  EXPECT_TRUE(frames_bit_exact(a->recon, b->recon));
}

TEST(FrameCodec, DecoderMatchesEncoderReconstruction) {
  // Full encode -> bitstream -> independent decode; every reconstructed
  // frame must match the encoder's reconstruction bit-for-bit (otherwise
  // the prediction loops would drift apart).
  const EncoderConfig cfg = small_config();
  SyntheticSequence seq(small_scene(5));
  Frame420 frame(cfg.width, cfg.height);

  RefList enc_refs(cfg.num_ref_frames);
  std::vector<u8> bits;
  std::vector<Frame420> enc_recons;
  for (int f = 0; f < 5; ++f) {
    ASSERT_TRUE(seq.read_frame(f, frame));
    auto pic = encode_frame_reference(cfg, frame, enc_refs, f, &bits);
    enc_recons.push_back(pic->recon);  // copy for comparison
    enc_refs.push_front(std::move(pic));
  }

  RefList dec_refs(cfg.num_ref_frames);
  BitReader br(bits);
  for (int f = 0; f < 5; ++f) {
    auto pic = decode_frame(cfg, br, dec_refs);
    EXPECT_TRUE(frames_bit_exact(pic->recon, enc_recons[f]))
        << "frame " << f;
    dec_refs.push_front(std::move(pic));
  }
}

TEST(FrameCodec, MultiReferencePredictionUsesOlderFrames) {
  // Flash a frame: content at t matches t-2, not t-1. With 2 RFs the mode
  // decision must reach for ref_idx 1 somewhere.
  const EncoderConfig cfg = small_config();
  SyntheticSequence seq(small_scene(2));
  Frame420 f0(cfg.width, cfg.height), f1(cfg.width, cfg.height);
  ASSERT_TRUE(seq.read_frame(0, f0));
  ASSERT_TRUE(seq.read_frame(1, f1));

  RefList refs(cfg.num_ref_frames);
  refs.push_front(encode_frame_reference(cfg, f0, refs, 0, nullptr));
  refs.push_front(encode_frame_reference(cfg, f1, refs, 1, nullptr));

  // Encode a copy of frame 0 with both references present.
  EncodeJob job;
  job.prepare(cfg, f0, {&refs.ref(0), &refs.ref(1)}, 2);
  me_rows(job, 0, cfg.num_mb_rows());
  int_rows(job, 0, cfg.num_mb_rows());
  finish_interpolation(job);
  sme_rows(job, 0, cfg.num_mb_rows());
  rstar_frame(job);

  int ref1_blocks = 0;
  for (const MbModeChoice& c : job.choices) {
    const PartitionGeometry& g = geometry(c.mode);
    for (int b = 0; b < g.num_blocks(); ++b) {
      if (c.blocks[b].ref_idx == 1) ++ref1_blocks;
    }
  }
  EXPECT_GT(ref1_blocks, 0) << "older reference never selected";
}

TEST(FrameCodec, JobPrepareValidatesConfig) {
  EncoderConfig cfg = small_config();
  cfg.width = 100;  // not MB aligned
  Frame420 frame(96, 64);
  EncodeJob job;
  EXPECT_THROW(job.prepare(cfg, frame, {}, 0), Error);
}

}  // namespace
}  // namespace feves
