#include "codec/interpolate.hpp"

#include "common/rng.hpp"

#include <gtest/gtest.h>

namespace feves {
namespace {

PlaneU8 random_plane(int w, int h, int border, u64 seed) {
  PlaneU8 p(w, h, border);
  Rng rng(seed);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      p.at(y, x) = static_cast<u8>(rng.uniform_int(0, 255));
    }
  }
  p.extend_borders();
  return p;
}

TEST(Interpolation, IntegerPhaseIsExactCopy) {
  auto ref = random_plane(32, 32, 8, 1);
  SubPelFrame sf(32, 32, 8);
  run_interpolation_rows(ref, 0, 2, sf);
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      EXPECT_EQ(sf.phase(0, 0).at(y, x), ref.at(y, x));
    }
  }
}

TEST(Interpolation, ConstantPlaneStaysConstant) {
  PlaneU8 ref(32, 32, 8);
  ref.fill(77);
  SubPelFrame sf(32, 32, 8);
  run_interpolation_rows(ref, 0, 2, sf);
  // The 6-tap filter has unit DC gain and the averages preserve constants.
  for (int dy = 0; dy < 4; ++dy) {
    for (int dx = 0; dx < 4; ++dx) {
      for (int y = 0; y < 32; ++y) {
        for (int x = 0; x < 32; ++x) {
          EXPECT_EQ(sf.phase(dy, dx).at(y, x), 77)
              << "phase " << dy << "," << dx;
        }
      }
    }
  }
}

TEST(Interpolation, HalfPelMatchesDirectSixTap) {
  auto ref = random_plane(48, 32, 8, 3);
  SubPelFrame sf(48, 32, 8);
  run_interpolation_rows(ref, 0, 2, sf);
  // Horizontal half-pel b at (y, x+1/2).
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 48; ++x) {
      const int t = ref.at(y, x - 2) - 5 * ref.at(y, x - 1) +
                    20 * ref.at(y, x) + 20 * ref.at(y, x + 1) -
                    5 * ref.at(y, x + 2) + ref.at(y, x + 3);
      const int expect = std::clamp((t + 16) >> 5, 0, 255);
      EXPECT_EQ(sf.phase(0, 2).at(y, x), expect);
    }
  }
  // Vertical half-pel h at (y+1/2, x).
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 48; ++x) {
      const int t = ref.at(y - 2, x) - 5 * ref.at(y - 1, x) +
                    20 * ref.at(y, x) + 20 * ref.at(y + 1, x) -
                    5 * ref.at(y + 2, x) + ref.at(y + 3, x);
      const int expect = std::clamp((t + 16) >> 5, 0, 255);
      EXPECT_EQ(sf.phase(2, 0).at(y, x), expect);
    }
  }
}

TEST(Interpolation, QuarterPelsAreAveragesOfNeighbours) {
  auto ref = random_plane(32, 32, 8, 4);
  SubPelFrame sf(32, 32, 8);
  run_interpolation_rows(ref, 0, 2, sf);
  for (int y = 1; y < 31; ++y) {
    for (int x = 1; x < 31; ++x) {
      const int G = ref.at(y, x);
      const int b = sf.phase(0, 2).at(y, x);
      const int h = sf.phase(2, 0).at(y, x);
      const int j = sf.phase(2, 2).at(y, x);
      EXPECT_EQ(sf.phase(0, 1).at(y, x), (G + b + 1) >> 1);  // a
      EXPECT_EQ(sf.phase(1, 0).at(y, x), (G + h + 1) >> 1);  // d
      EXPECT_EQ(sf.phase(1, 1).at(y, x), (b + h + 1) >> 1);  // e
      EXPECT_EQ(sf.phase(1, 2).at(y, x), (b + j + 1) >> 1);  // f
      EXPECT_EQ(sf.phase(2, 1).at(y, x), (h + j + 1) >> 1);  // i
      // c uses the next integer sample to the right.
      const int H = ref.at(y, x + 1);
      EXPECT_EQ(sf.phase(0, 3).at(y, x), (H + b + 1) >> 1);
      // n uses the integer sample below.
      const int M = ref.at(y + 1, x);
      EXPECT_EQ(sf.phase(3, 0).at(y, x), (M + h + 1) >> 1);
      // g/k/p/q/r use shifted half-pel neighbours.
      const int m = sf.phase(2, 0).at(y, x + 1);
      const int s = sf.phase(0, 2).at(y + 1, x);
      EXPECT_EQ(sf.phase(1, 3).at(y, x), (b + m + 1) >> 1);  // g
      EXPECT_EQ(sf.phase(2, 3).at(y, x), (j + m + 1) >> 1);  // k
      EXPECT_EQ(sf.phase(3, 1).at(y, x), (h + s + 1) >> 1);  // p
      EXPECT_EQ(sf.phase(3, 2).at(y, x), (j + s + 1) >> 1);  // q
      EXPECT_EQ(sf.phase(3, 3).at(y, x), (m + s + 1) >> 1);  // r
    }
  }
}

TEST(Interpolation, RowSlicesMatchWholeFrame) {
  auto ref = random_plane(32, 64, 8, 5);
  SubPelFrame whole(32, 64, 8), sliced(32, 64, 8);
  run_interpolation_rows(ref, 0, 4, whole);
  run_interpolation_rows(ref, 0, 1, sliced);
  run_interpolation_rows(ref, 1, 3, sliced);
  run_interpolation_rows(ref, 3, 4, sliced);
  for (int dy = 0; dy < 4; ++dy) {
    for (int dx = 0; dx < 4; ++dx) {
      for (int y = 0; y < 64; ++y) {
        for (int x = 0; x < 32; ++x) {
          ASSERT_EQ(whole.phase(dy, dx).at(y, x), sliced.phase(dy, dx).at(y, x))
              << "phase " << dy << dx << " at " << y << "," << x;
        }
      }
    }
  }
}

TEST(Interpolation, ExtendBordersFillsAllPhases) {
  auto ref = random_plane(32, 32, 8, 6);
  SubPelFrame sf(32, 32, 8);
  run_interpolation_rows(ref, 0, 2, sf);
  extend_subpel_borders(sf);
  for (int dy = 0; dy < 4; ++dy) {
    for (int dx = 0; dx < 4; ++dx) {
      EXPECT_EQ(sf.phase(dy, dx).at(-3, -3), sf.phase(dy, dx).at(0, 0));
      EXPECT_EQ(sf.phase(dy, dx).at(34, 34), sf.phase(dy, dx).at(31, 31));
    }
  }
}

}  // namespace
}  // namespace feves
