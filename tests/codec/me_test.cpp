#include "codec/me.hpp"

#include "common/rng.hpp"
#include "video/frame.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace feves {
namespace {

/// Builds a reference plane of smooth texture and a current frame that is
/// the reference translated by (dx, dy): FSBM must recover exactly (dx,dy)
/// for every partition when the shift is within range.
void make_shifted_pair(PlaneU8& ref, PlaneU8& cur, int dx, int dy, u64 seed) {
  Rng rng(seed);
  // Smooth random texture so the optimum is unique with high probability.
  for (int y = 0; y < ref.height(); ++y) {
    for (int x = 0; x < ref.width(); ++x) {
      const double v = 128.0 + 60.0 * std::sin(0.35 * x + 0.05 * y) +
                       40.0 * std::sin(0.07 * x * 0.9 + 0.29 * y) +
                       rng.uniform_real(-4.0, 4.0);
      ref.at(y, x) = static_cast<u8>(std::clamp(v, 0.0, 255.0));
    }
  }
  ref.extend_borders();
  for (int y = 0; y < cur.height(); ++y) {
    for (int x = 0; x < cur.width(); ++x) {
      cur.at(y, x) = ref.at(y + dy, x + dx);
    }
  }
  cur.extend_borders();
}

TEST(MotionEstimation, RecoversGlobalTranslation) {
  const int w = 64, h = 48, border = 40;
  PlaneU8 ref(w, h, border), cur(w, h, border);
  make_shifted_pair(ref, cur, 3, -2, 11);

  MeParams params;
  params.search_range = 8;
  MotionField field(static_cast<std::size_t>((w / 16) * (h / 16)));
  run_me_rows(cur, ref, w / 16, 0, h / 16, params, field.data());

  for (const MbMotion& mb : field) {
    const MotionEntry& e = mb.entry(PartitionMode::k16x16, 0);
    EXPECT_EQ(e.mv.x, 3 * 4) << "quarter-pel units";
    EXPECT_EQ(e.mv.y, -2 * 4);
    EXPECT_EQ(e.cost, 0u);
  }
}

TEST(MotionEstimation, AllPartitionsFindZeroCostOnIdenticalFrames) {
  const int w = 48, h = 32, border = 40;
  PlaneU8 ref(w, h, border), cur(w, h, border);
  make_shifted_pair(ref, cur, 0, 0, 22);

  MeParams params;
  params.search_range = 4;
  MotionField field(static_cast<std::size_t>((w / 16) * (h / 16)));
  run_me_rows(cur, ref, w / 16, 0, h / 16, params, field.data());

  for (const MbMotion& mb : field) {
    for (const MotionEntry& e : mb.entries) {
      EXPECT_EQ(e.cost, 0u);
    }
  }
}

TEST(MotionEstimation, RowRangeOnlyWritesItsRows) {
  const int w = 32, h = 64, border = 24;
  PlaneU8 ref(w, h, border), cur(w, h, border);
  make_shifted_pair(ref, cur, 1, 1, 33);

  MotionField field(static_cast<std::size_t>((w / 16) * (h / 16)));
  MeParams params;
  params.search_range = 4;
  // Only rows [1, 3).
  run_me_rows(cur, ref, w / 16, 1, 3, params, field.data());

  const int mbw = w / 16;
  for (int row = 0; row < h / 16; ++row) {
    const MotionEntry& e = field[row * mbw].entry(PartitionMode::k16x16, 0);
    if (row >= 1 && row < 3) {
      EXPECT_NE(e.cost, kInvalidCost) << "row " << row;
    } else {
      EXPECT_EQ(e.cost, kInvalidCost) << "row " << row;
    }
  }
}

TEST(MotionEstimation, DistributedRowsMatchSingleShot) {
  const int w = 48, h = 64, border = 30;
  PlaneU8 ref(w, h, border), cur(w, h, border);
  make_shifted_pair(ref, cur, -2, 3, 44);

  const int mbw = w / 16, mbh = h / 16;
  MeParams params;
  params.search_range = 6;

  MotionField whole(static_cast<std::size_t>(mbw * mbh));
  run_me_rows(cur, ref, mbw, 0, mbh, params, whole.data());

  // Split into three uneven slices, as the load balancer would.
  MotionField split(static_cast<std::size_t>(mbw * mbh));
  run_me_rows(cur, ref, mbw, 0, 1, params, split.data());
  run_me_rows(cur, ref, mbw, 1, 3, params, split.data());
  run_me_rows(cur, ref, mbw, 3, mbh, params, split.data());

  for (std::size_t i = 0; i < whole.size(); ++i) {
    for (int k = 0; k < kEntriesPerMb; ++k) {
      EXPECT_EQ(whole[i].entries[k].mv, split[i].entries[k].mv);
      EXPECT_EQ(whole[i].entries[k].cost, split[i].entries[k].cost);
    }
  }
}

TEST(MotionEstimation, RejectsInsufficientBorder) {
  PlaneU8 ref(32, 32, 8), cur(32, 32, 8);
  MotionField field(4);
  MeParams params;
  params.search_range = 8;  // needs border >= 8 + 16
  EXPECT_THROW(run_me_rows(cur, ref, 2, 0, 2, params, field.data()), Error);
}

TEST(MotionEstimation, CostsAreMonotoneOverPartitionRefinement) {
  // The 16x16 SAD equals the sum of its 8x8 SADs' lower bounds: best 16x16
  // cost >= sum of best 8x8 costs (finer partitions can only do better).
  const int w = 32, h = 32, border = 30;
  PlaneU8 ref(w, h, border), cur(w, h, border);
  Rng rng(55);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      ref.at(y, x) = static_cast<u8>(rng.uniform_int(0, 255));
      cur.at(y, x) = static_cast<u8>(rng.uniform_int(0, 255));
    }
  }
  ref.extend_borders();
  cur.extend_borders();

  MeParams params;
  params.search_range = 6;
  MotionField field(4);
  run_me_rows(cur, ref, 2, 0, 2, params, field.data());

  for (const MbMotion& mb : field) {
    const u32 c16 = mb.entry(PartitionMode::k16x16, 0).cost;
    u32 c8_sum = 0;
    for (int b = 0; b < 4; ++b) c8_sum += mb.entry(PartitionMode::k8x8, b).cost;
    u32 c4_sum = 0;
    for (int b = 0; b < 16; ++b) c4_sum += mb.entry(PartitionMode::k4x4, b).cost;
    EXPECT_GE(c16, c8_sum);
    EXPECT_GE(c8_sum, c4_sum);
  }
}

}  // namespace
}  // namespace feves
