#include "codec/intra.hpp"

#include "codec/frame_codec.hpp"
#include "common/rng.hpp"
#include "video/metrics.hpp"
#include "video/sequence.hpp"

#include <gtest/gtest.h>

namespace feves {
namespace {

PlaneU8 gradient_plane(int w, int h, int dx, int dy) {
  PlaneU8 p(w, h, 8);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      p.at(y, x) = static_cast<u8>(std::clamp(60 + dx * x + dy * y, 0, 255));
    }
  }
  p.extend_borders();
  return p;
}

TEST(IntraPredict, Availability) {
  EXPECT_FALSE(intra_mode_available(IntraMode::kVertical, {false, true}));
  EXPECT_TRUE(intra_mode_available(IntraMode::kVertical, {true, false}));
  EXPECT_FALSE(intra_mode_available(IntraMode::kHorizontal, {true, false}));
  EXPECT_TRUE(intra_mode_available(IntraMode::kDc, {false, false}));
  EXPECT_FALSE(intra_mode_available(IntraMode::kPlane, {true, false}));
  EXPECT_TRUE(intra_mode_available(IntraMode::kPlane, {true, true}));
  EXPECT_EQ(intra_neighbours(0, 0).above, false);
  EXPECT_EQ(intra_neighbours(3, 1).left, true);
}

TEST(IntraPredict, VerticalCopiesAboveRow) {
  auto recon = gradient_plane(48, 48, 1, 3);
  u8 pred[256];
  intra_predict_16x16(recon, 1, 1, IntraMode::kVertical, pred);
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      EXPECT_EQ(pred[y * 16 + x], recon.at(15, 16 + x));
    }
  }
}

TEST(IntraPredict, HorizontalCopiesLeftColumn) {
  auto recon = gradient_plane(48, 48, 2, 1);
  u8 pred[256];
  intra_predict_16x16(recon, 1, 1, IntraMode::kHorizontal, pred);
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      EXPECT_EQ(pred[y * 16 + x], recon.at(16 + y, 15));
    }
  }
}

TEST(IntraPredict, DcIsNeighbourMean) {
  PlaneU8 recon(48, 48, 8);
  recon.fill(0);
  // Above row = 100, left column = 200 -> DC = 150.
  for (int x = 16; x < 32; ++x) recon.at(15, x) = 100;
  for (int y = 16; y < 32; ++y) recon.at(y, 15) = 200;
  u8 pred[256];
  intra_predict_16x16(recon, 1, 1, IntraMode::kDc, pred);
  for (int i = 0; i < 256; ++i) EXPECT_EQ(pred[i], 150);
}

TEST(IntraPredict, DcWithoutNeighboursIs128) {
  PlaneU8 recon(48, 48, 8);
  recon.fill(77);
  u8 pred[256];
  intra_predict_16x16(recon, 0, 0, IntraMode::kDc, pred);
  for (int i = 0; i < 256; ++i) EXPECT_EQ(pred[i], 128);
}

TEST(IntraPredict, PlaneReproducesLinearRamp) {
  // A true plane signal must be predicted almost exactly by Plane mode.
  auto recon = gradient_plane(64, 64, 2, 1);
  u8 pred[256];
  intra_predict_16x16(recon, 1, 1, IntraMode::kPlane, pred);
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      const int expect = 60 + 2 * (16 + x) + (16 + y);
      EXPECT_NEAR(pred[y * 16 + x], expect, 2) << y << "," << x;
    }
  }
}

TEST(IntraPredict, SelectPicksDirectionalModeOnStripes) {
  // Vertically striped content: the row above predicts the MB exactly, so
  // Vertical must win the SAD decision.
  PlaneU8 src(48, 48, 8);
  for (int y = 0; y < 48; ++y) {
    for (int x = 0; x < 48; ++x) {
      src.at(y, x) = (x % 4 < 2) ? u8{40} : u8{220};
    }
  }
  src.extend_borders();
  EXPECT_EQ(select_intra_mode(src, src, 1, 1), IntraMode::kVertical);

  // Horizontally striped content: Horizontal must win.
  PlaneU8 src2(48, 48, 8);
  for (int y = 0; y < 48; ++y) {
    for (int x = 0; x < 48; ++x) {
      src2.at(y, x) = (y % 4 < 2) ? u8{40} : u8{220};
    }
  }
  src2.extend_borders();
  EXPECT_EQ(select_intra_mode(src2, src2, 1, 1), IntraMode::kHorizontal);
}

TEST(IntraPredict, ChromaDcUsesAvailableEdges) {
  PlaneU8 recon(24, 24, 4);
  recon.fill(0);
  for (int x = 8; x < 16; ++x) recon.at(7, x) = 60;
  for (int y = 8; y < 16; ++y) recon.at(y, 7) = 100;
  u8 pred[64];
  intra_predict_chroma_dc(recon, 1, 1, pred);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(pred[i], 80);
  intra_predict_chroma_dc(recon, 0, 0, pred);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(pred[i], 128);
}

TEST(IntraFrame, DirectionalModesBeatFlatDcOnStructuredContent) {
  // Encode a gradient frame: intra prediction should leave tiny residuals,
  // giving high PSNR at modest bitrate.
  EncoderConfig cfg;
  cfg.width = 96;
  cfg.height = 64;
  cfg.search_range = 8;
  Frame420 frame(cfg.width, cfg.height);
  for (int y = 0; y < cfg.height; ++y) {
    for (int x = 0; x < cfg.width; ++x) {
      frame.y.at(y, x) = static_cast<u8>(std::clamp(30 + x + y, 0, 255));
    }
  }
  frame.extend_borders();

  RefList refs(1);
  std::vector<u8> bits;
  auto pic = encode_frame_reference(cfg, frame, refs, 0, &bits);
  EXPECT_GT(plane_psnr(pic->recon.y, frame.y), 40.0);
  // A plane-predictable frame costs little: every residual nearly zero.
  EXPECT_LT(bits.size(), 3000u);

  int plane_mbs = 0;
  // Re-run through the job API to inspect chosen modes.
  EncodeJob job;
  job.prepare(cfg, frame, {}, 0);
  intra_frame(job);
  for (const MbCoded& c : job.coded) {
    if (c.intra_mode == IntraMode::kPlane) ++plane_mbs;
  }
  EXPECT_GT(plane_mbs, job.coded.size() / 2) << "plane mode underused";
}

}  // namespace
}  // namespace feves
