#include "codec/transform.hpp"

#include "common/check.hpp"
#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

namespace feves {
namespace {

TEST(Transform, DcOnlyBlock) {
  i16 in[16], out[16];
  for (int i = 0; i < 16; ++i) in[i] = 10;
  forward_transform_4x4(in, out);
  EXPECT_EQ(out[0], 160);  // DC gain 16
  for (int i = 1; i < 16; ++i) EXPECT_EQ(out[i], 0);
}

TEST(Transform, ForwardInverseIdentityWithoutQuantization) {
  // The integer transform pair has gain 64 folded into the (x+32)>>6 of the
  // inverse — but the inverse basis differs from the forward transpose by
  // the 1/2 factors, so exact reconstruction holds when coefficients pass
  // through the dequant scaling at QP where MF*V*2^... == 64 per position.
  // Simplest exact check: a flat block survives the whole TQ/ITQ chain.
  i16 res[16], coeffs[16], levels[16];
  i32 deq[16];
  for (int i = 0; i < 16; ++i) res[i] = 42;
  forward_transform_4x4(res, coeffs);
  quantize_4x4(coeffs, 0, false, levels);
  dequantize_4x4(levels, 0, deq);
  i16 rec[16];
  inverse_transform_4x4(deq, rec);
  for (int i = 0; i < 16; ++i) EXPECT_NEAR(rec[i], 42, 1);
}

/// Round-trip distortion must be bounded by the quantizer step size.
class TqRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(TqRoundTrip, ReconstructionErrorBoundedByQp) {
  const int qp = GetParam();
  Rng rng(static_cast<u64>(qp) * 17 + 3);
  double max_err = 0.0;
  for (int trial = 0; trial < 50; ++trial) {
    i16 res[16], coeffs[16], levels[16], rec[16];
    i32 deq[16];
    for (auto& v : res) v = static_cast<i16>(rng.uniform_int(-255, 255));
    forward_transform_4x4(res, coeffs);
    quantize_4x4(coeffs, qp, false, levels);
    dequantize_4x4(levels, qp, deq);
    inverse_transform_4x4(deq, rec);
    for (int i = 0; i < 16; ++i) {
      max_err = std::max(max_err, std::abs(double(rec[i]) - res[i]));
    }
  }
  // Qstep roughly 0.625 * 2^(QP/6); reconstruction error stays within a
  // small multiple of it.
  const double qstep = 0.625 * std::pow(2.0, qp / 6.0);
  EXPECT_LE(max_err, 2.5 * qstep + 1.0) << "QP " << qp;
}

INSTANTIATE_TEST_SUITE_P(QpSweep, TqRoundTrip,
                         ::testing::Values(0, 6, 12, 18, 24, 27, 28, 32, 38,
                                           44, 51));

TEST(Quantization, HigherQpNeverIncreasesLevelMagnitude) {
  Rng rng(77);
  for (int trial = 0; trial < 100; ++trial) {
    i16 res[16], coeffs[16];
    for (auto& v : res) v = static_cast<i16>(rng.uniform_int(-255, 255));
    forward_transform_4x4(res, coeffs);
    i16 lo[16], hi[16];
    quantize_4x4(coeffs, 20, false, lo);
    quantize_4x4(coeffs, 32, false, hi);
    for (int i = 0; i < 16; ++i) {
      EXPECT_LE(std::abs(hi[i]), std::abs(lo[i]));
    }
  }
}

TEST(Quantization, ZeroInZeroOut) {
  i16 z[16] = {}, levels[16];
  quantize_4x4(z, 28, false, levels);
  EXPECT_FALSE(any_nonzero(levels));
  i32 deq[16];
  dequantize_4x4(levels, 28, deq);
  i16 rec[16];
  inverse_transform_4x4(deq, rec);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(rec[i], 0);
}

TEST(Quantization, SignSymmetry) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    i16 a[16], b[16], la[16], lb[16];
    for (int i = 0; i < 16; ++i) {
      a[i] = static_cast<i16>(rng.uniform_int(-4000, 4000));
      b[i] = static_cast<i16>(-a[i]);
    }
    quantize_4x4(a, 28, false, la);
    quantize_4x4(b, 28, false, lb);
    for (int i = 0; i < 16; ++i) EXPECT_EQ(la[i], static_cast<i16>(-lb[i]));
  }
}

TEST(Quantization, IntraDeadzoneIsWiderThanInter) {
  // f_intra = 2^qbits/3 > f_inter = 2^qbits/6: borderline coefficients
  // survive intra quantization that die in inter.
  i16 coeffs[16] = {};
  coeffs[0] = 700;  // chosen to straddle the deadzone at QP 28
  i16 li[16], lp[16];
  quantize_4x4(coeffs, 28, true, li);
  quantize_4x4(coeffs, 28, false, lp);
  EXPECT_GE(std::abs(li[0]), std::abs(lp[0]));
}

TEST(Quantization, RejectsInvalidQp) {
  i16 c[16] = {}, l[16];
  EXPECT_THROW(quantize_4x4(c, -1, false, l), Error);
  EXPECT_THROW(quantize_4x4(c, 52, false, l), Error);
  i32 d[16];
  EXPECT_THROW(dequantize_4x4(l, 52, d), Error);
}

}  // namespace
}  // namespace feves
