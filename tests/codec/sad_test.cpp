#include "codec/sad.hpp"

#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace feves {
namespace {

/// Oracle: literal per-pixel SAD of one rectangle.
u32 naive_sad(const u8* a, std::ptrdiff_t sa, const u8* b, std::ptrdiff_t sb,
              int w, int h) {
  u32 acc = 0;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const int d = static_cast<int>(a[y * sa + x]) - b[y * sb + x];
      acc += static_cast<u32>(d < 0 ? -d : d);
    }
  }
  return acc;
}

struct Buffers {
  std::vector<u8> cur, ref;
  static constexpr int kStride = 48;
  explicit Buffers(u64 seed) : cur(kStride * 32), ref(kStride * 32) {
    Rng rng(seed);
    for (auto& v : cur) v = static_cast<u8>(rng.uniform_int(0, 255));
    for (auto& v : ref) v = static_cast<u8>(rng.uniform_int(0, 255));
  }
};

TEST(SadGrid, ZeroForIdenticalBlocks) {
  Buffers b(1);
  u16 grid[16];
  sad_grid_16x16_kernel(SimdTier::kScalar)(b.cur.data(), Buffers::kStride,
                                           b.cur.data(), Buffers::kStride,
                                           grid);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(grid[i], 0);
}

TEST(SadGrid, MatchesNaivePerSubBlock) {
  Buffers b(2);
  u16 grid[16];
  sad_grid_16x16_kernel(SimdTier::kScalar)(b.cur.data(), Buffers::kStride,
                                           b.ref.data(), Buffers::kStride,
                                           grid);
  for (int by = 0; by < 4; ++by) {
    for (int bx = 0; bx < 4; ++bx) {
      const u32 expect =
          naive_sad(b.cur.data() + by * 4 * Buffers::kStride + bx * 4,
                    Buffers::kStride,
                    b.ref.data() + by * 4 * Buffers::kStride + bx * 4,
                    Buffers::kStride, 4, 4);
      EXPECT_EQ(grid[by * 4 + bx], expect);
    }
  }
}

TEST(SadGrid, MaxSaturationFits16Bits) {
  std::vector<u8> zeros(48 * 16, 0), ones(48 * 16, 255);
  u16 grid[16];
  sad_grid_16x16_kernel(SimdTier::kBlocked)(zeros.data(), 48, ones.data(), 48,
                                            grid);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(grid[i], 4080u);  // 16 * 255
}

/// Every optimized tier must agree exactly with the scalar reference.
class SadTierParity : public ::testing::TestWithParam<int> {};

TEST_P(SadTierParity, AllTiersMatchScalar) {
  Buffers b(static_cast<u64>(GetParam()) + 100);
  u16 g_scalar[16], g_other[16];
  sad_grid_16x16_kernel(SimdTier::kScalar)(b.cur.data(), Buffers::kStride,
                                           b.ref.data() + GetParam() % 7,
                                           Buffers::kStride, g_scalar);
  for (SimdTier tier :
       {SimdTier::kBlocked, SimdTier::kSimd, SimdTier::kAuto}) {
    sad_grid_16x16_kernel(tier)(b.cur.data(), Buffers::kStride,
                                b.ref.data() + GetParam() % 7,
                                Buffers::kStride, g_other);
    for (int i = 0; i < 16; ++i) {
      EXPECT_EQ(g_scalar[i], g_other[i]) << "tier " << static_cast<int>(tier);
    }
  }
}

TEST_P(SadTierParity, SimdBlockSadMatchesScalarAllShapes) {
  Buffers b(static_cast<u64>(GetParam()) + 500);
  for (int mode_i = 0; mode_i < kNumPartitionModes; ++mode_i) {
    const auto& g = kPartitionGeometry[mode_i];
    // Unaligned base pointers exercise the loadu paths.
    const u8* pa = b.cur.data() + GetParam() % 5;
    const u8* pb = b.ref.data() + GetParam() % 3;
    EXPECT_EQ(sad_block(pa, Buffers::kStride, pb, Buffers::kStride,
                        g.block_w, g.block_h),
              sad_block_scalar(pa, Buffers::kStride, pb, Buffers::kStride,
                               g.block_w, g.block_h))
        << "mode " << mode_i;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomContent, SadTierParity, ::testing::Range(0, 30));

TEST(SadBlock, MatchesNaiveOnAllPartitionShapes) {
  Buffers b(5);
  for (int mode_i = 0; mode_i < kNumPartitionModes; ++mode_i) {
    const auto& g = kPartitionGeometry[mode_i];
    const u32 got = sad_block(b.cur.data(), Buffers::kStride, b.ref.data(),
                              Buffers::kStride, g.block_w, g.block_h);
    const u32 expect = naive_sad(b.cur.data(), Buffers::kStride, b.ref.data(),
                                 Buffers::kStride, g.block_w, g.block_h);
    EXPECT_EQ(got, expect) << "mode " << mode_i;
  }
}

/// Aggregation property: for every partition mode and block, the aggregated
/// SAD must equal a directly computed SAD of that rectangle.
class AggregateProperty : public ::testing::TestWithParam<int> {};

TEST_P(AggregateProperty, AggregatedEqualsDirect) {
  Buffers b(static_cast<u64>(GetParam()) * 31 + 7);
  u16 grid[16];
  sad_grid_16x16_kernel(SimdTier::kScalar)(b.cur.data(), Buffers::kStride,
                                           b.ref.data(), Buffers::kStride,
                                           grid);
  u32 agg[kEntriesPerMb];
  aggregate_sad_grid(grid, agg);

  for (int mode_i = 0; mode_i < kNumPartitionModes; ++mode_i) {
    const auto mode = static_cast<PartitionMode>(mode_i);
    const PartitionGeometry& g = geometry(mode);
    for (int blk = 0; blk < g.num_blocks(); ++blk) {
      int x0, y0;
      block_origin(mode, blk, &x0, &y0);
      const u32 direct =
          naive_sad(b.cur.data() + y0 * Buffers::kStride + x0,
                    Buffers::kStride, b.ref.data() + y0 * Buffers::kStride + x0,
                    Buffers::kStride, g.block_w, g.block_h);
      EXPECT_EQ(agg[kModeOffset[mode_i] + blk], direct)
          << "mode " << mode_i << " block " << blk;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomContent, AggregateProperty,
                         ::testing::Range(0, 20));

TEST(Partition, ModeOffsetsCover41Entries) {
  EXPECT_EQ(kEntriesPerMb, 41);
  int total = 0;
  for (int m = 0; m < kNumPartitionModes; ++m) {
    const auto& g = kPartitionGeometry[m];
    EXPECT_EQ(kModeOffset[m + 1] - kModeOffset[m], g.num_blocks());
    total += g.num_blocks();
    EXPECT_EQ(g.block_w * g.blocks_x, 16);
    EXPECT_EQ(g.block_h * g.blocks_y, 16);
  }
  EXPECT_EQ(total, 41);
}

}  // namespace
}  // namespace feves
