// Property tests for the load balancer's LP warm-starting and convergence
// skip: across randomized characterization-perturbation sequences —
// including forced quarantine transitions mid-sequence — a warm-started
// balancer must land on the same objective as a cold-solved one, and the
// convergence detector must only reuse a distribution it is entitled to.
#include "sched/load_balancer.hpp"

#include "common/rng.hpp"
#include "platform/perf_model.hpp"
#include "platform/presets.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace feves {
namespace {

EncoderConfig hd_config() {
  EncoderConfig cfg;  // 1920x1088 -> 68 MB rows
  cfg.search_range = 16;
  cfg.num_ref_frames = 1;
  return cfg;
}

/// Seeds the characterization from the analytical cost model, as one
/// equidistant frame would.
DeviceParams model_params(const DeviceSpec& dev, const EncoderConfig& cfg,
                          int active_refs = 1) {
  DeviceParams p;
  p.k_me = me_rows_ms(dev, cfg, 1, active_refs);
  p.k_int = int_rows_ms(dev, cfg, 1);
  p.k_sme = sme_rows_ms(dev, cfg, 1, active_refs);
  p.t_rstar_ms = rstar_ms(dev, cfg);
  if (dev.is_accelerator()) {
    auto hd = [&](double bytes) {
      return (dev.link.latency_ms / 20.0) + bytes / dev.link.h2d_bytes_per_ms;
    };
    auto dh = [&](double bytes) {
      return (dev.link.latency_ms / 20.0) + bytes / dev.link.d2h_bytes_per_ms;
    };
    p.k_xfer[0][0] = hd(cf_row_bytes(cfg));
    p.k_xfer[0][1] = dh(cf_row_bytes(cfg));
    p.k_xfer[1][0] = hd(rf_row_bytes(cfg));
    p.k_xfer[1][1] = dh(rf_row_bytes(cfg));
    p.k_xfer[2][0] = hd(sf_row_bytes(cfg));
    p.k_xfer[2][1] = dh(sf_row_bytes(cfg));
    p.k_xfer[3][0] = hd(mv_row_bytes(cfg, active_refs));
    p.k_xfer[3][1] = dh(mv_row_bytes(cfg, active_refs));
  }
  return p;
}

DeviceParams perturbed(const DeviceParams& base, Rng& rng, double spread) {
  auto jitter = [&](double v) { return v * rng.uniform_real(1.0 - spread,
                                                            1.0 + spread); };
  DeviceParams p = base;
  p.k_me = jitter(p.k_me);
  p.k_int = jitter(p.k_int);
  p.k_sme = jitter(p.k_sme);
  p.t_rstar_ms = jitter(p.t_rstar_ms);
  for (int buf = 0; buf < 4; ++buf) {
    for (int dir = 0; dir < 2; ++dir) {
      if (p.k_xfer[buf][dir] > 0) p.k_xfer[buf][dir] = jitter(p.k_xfer[buf][dir]);
    }
  }
  return p;
}

class WarmStartProperty : public ::testing::TestWithParam<int> {};

TEST_P(WarmStartProperty, WarmAgreesWithColdAcrossPerturbations) {
  const EncoderConfig cfg = hd_config();
  const PlatformTopology topo = topology_by_name("SysNFF");
  const int n = topo.num_devices();

  LoadBalancerOptions warm_opts;
  warm_opts.enable_warm_start = true;
  warm_opts.convergence_epsilon = 0.0;  // compare solves, never skip
  LoadBalancerOptions cold_opts;
  cold_opts.enable_warm_start = false;
  LoadBalancer warm_lb(cfg, topo, warm_opts);
  LoadBalancer cold_lb(cfg, topo, cold_opts);

  Rng rng(static_cast<u64>(GetParam()) * 6151 + 3);
  PerfCharacterization perf(n);
  for (int i = 0; i < n; ++i) perf.seed(i, model_params(topo.devices[i], cfg));

  std::vector<bool> active(static_cast<std::size_t>(n), true);
  const std::vector<int> zeros(static_cast<std::size_t>(n), 0);
  BalanceStats warm_total;
  for (int frame = 0; frame < 60; ++frame) {
    // EWMA-sized drift every frame; a forced quarantine transition on an
    // accelerator every 17th frame (evicting its characterization, exactly
    // as the health monitor does), re-admitting it 5 frames later.
    for (int i = 0; i < n; ++i) {
      if (!active[i]) continue;
      perf.seed(i, perturbed(perf.params(i), rng, 0.08));
    }
    if (frame % 17 == 9) {
      const int victim = 1 + static_cast<int>(rng.uniform_int(0, n - 2));
      active[victim] = false;
      perf.evict(victim);
    } else if (frame % 17 == 14) {
      for (int i = 1; i < n; ++i) {
        if (!active[i]) {
          active[i] = true;
          perf.seed(i, model_params(topo.devices[i], cfg));
        }
      }
    }

    BalanceStats ws, cs;
    const Distribution dw = warm_lb.balance(perf, zeros, -1, &active, &ws);
    const Distribution dc = cold_lb.balance(perf, zeros, -1, &active, &cs);
    warm_total.lp_warm_solves += ws.lp_warm_solves;
    warm_total.lp_skipped += ws.lp_skipped;
    warm_total.lp_solves += ws.lp_solves;

    dw.check_conservation(cfg.num_mb_rows());
    dc.check_conservation(cfg.num_mb_rows());
    // Same LP, so the same optimal objective — the basis' origin must not
    // leak into the result (degenerate optima may pick different vertices,
    // hence objective agreement rather than row-for-row equality).
    ASSERT_GT(dc.tau_tot_ms, 0.0) << "frame " << frame;
    EXPECT_NEAR(dw.tau_tot_ms, dc.tau_tot_ms, 1e-6 * dc.tau_tot_ms)
        << "frame " << frame;
    EXPECT_EQ(ws.lp_skipped, 0) << "epsilon=0 must disable the skip path";
  }
  EXPECT_GT(warm_total.lp_warm_solves, 0)
      << "steady perturbations should keep the warm basis usable";
  EXPECT_LT(warm_total.lp_warm_solves, warm_total.lp_solves)
      << "quarantine transitions must force cold solves";
}

INSTANTIATE_TEST_SUITE_P(Seeds, WarmStartProperty, ::testing::Range(0, 8));

TEST(WarmStartSkip, ConvergedSequenceSkipsAndQuarantineInvalidates) {
  const EncoderConfig cfg = hd_config();
  const PlatformTopology topo = topology_by_name("SysNFF");
  const int n = topo.num_devices();

  LoadBalancerOptions opts;
  opts.enable_warm_start = true;
  opts.convergence_epsilon = 0.05;
  LoadBalancer lb(cfg, topo, opts);
  LoadBalancer cold_lb(cfg, topo);  // reference for staleness bound

  Rng rng(4242);
  PerfCharacterization perf(n);
  for (int i = 0; i < n; ++i) perf.seed(i, model_params(topo.devices[i], cfg));

  std::vector<bool> active(static_cast<std::size_t>(n), true);
  const std::vector<int> zeros(static_cast<std::size_t>(n), 0);
  BalanceStats total;
  for (int frame = 0; frame < 20; ++frame) {
    // Sub-epsilon drift: after the first solve, every frame should skip.
    for (int i = 0; i < n; ++i) {
      perf.seed(i, perturbed(perf.params(i), rng, 0.002));
    }
    BalanceStats s;
    const Distribution d = lb.balance(perf, zeros, -1, &active, &s);
    total.lp_solves += s.lp_solves;
    total.lp_skipped += s.lp_skipped;
    d.check_conservation(cfg.num_mb_rows());
    // A skipped frame reuses the cached distribution; it may be stale by at
    // most epsilon, so its objective stays close to a fresh solve's.
    const Distribution fresh = cold_lb.balance(perf, zeros, -1, &active);
    EXPECT_NEAR(d.tau_tot_ms, fresh.tau_tot_ms, 0.15 * fresh.tau_tot_ms)
        << "frame " << frame;
  }
  EXPECT_GT(total.lp_skipped, 10) << "converged sequence must skip";

  // Quarantine transition: the active mask changed, so the very next call
  // must not skip (and must still conserve over the survivors).
  active[2] = false;
  perf.evict(2);
  BalanceStats s;
  const Distribution d = lb.balance(perf, zeros, -1, &active, &s);
  EXPECT_EQ(s.lp_skipped, 0);
  EXPECT_GE(s.lp_solves, 1);
  d.check_conservation(cfg.num_mb_rows());
  EXPECT_EQ(d.me[2] + d.intp[2] + d.sme[2], 0);

  // Explicit invalidation (device-set re-grants) kills the skip path and
  // the cross-frame basis: the first ∆-iteration LP must solve cold (later
  // iterations may still chain off it within the frame).
  lb.invalidate_warm_start();
  BalanceStats s2;
  lb.balance(perf, zeros, -1, &active, &s2);
  EXPECT_EQ(s2.lp_skipped, 0);
  EXPECT_LT(s2.lp_warm_solves, s2.lp_solves);
}

}  // namespace
}  // namespace feves
