#include "sched/load_balancer.hpp"

#include "common/rng.hpp"
#include "platform/perf_model.hpp"
#include "platform/presets.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace feves {
namespace {

EncoderConfig hd_config() {
  EncoderConfig cfg;  // 1920x1088
  cfg.search_range = 16;
  cfg.num_ref_frames = 1;
  return cfg;
}

/// Seeds the characterization from the analytical cost model, as one
/// equidistant frame would.
PerfCharacterization seeded_perf(const EncoderConfig& cfg,
                                 const PlatformTopology& topo,
                                 int active_refs = 1) {
  PerfCharacterization perf(topo.num_devices());
  for (int i = 0; i < topo.num_devices(); ++i) {
    const DeviceSpec& dev = topo.devices[i];
    DeviceParams p;
    p.k_me = me_rows_ms(dev, cfg, 1, active_refs);
    p.k_int = int_rows_ms(dev, cfg, 1);
    p.k_sme = sme_rows_ms(dev, cfg, 1, active_refs);
    p.t_rstar_ms = rstar_ms(dev, cfg);
    if (dev.is_accelerator()) {
      // Amortized per-row transfer costs (latency spread over ~20 rows).
      auto hd = [&](double bytes) {
        return (dev.link.latency_ms / 20.0) + bytes / dev.link.h2d_bytes_per_ms;
      };
      auto dh = [&](double bytes) {
        return (dev.link.latency_ms / 20.0) + bytes / dev.link.d2h_bytes_per_ms;
      };
      p.k_xfer[0][0] = hd(cf_row_bytes(cfg));
      p.k_xfer[0][1] = dh(cf_row_bytes(cfg));
      p.k_xfer[1][0] = hd(rf_row_bytes(cfg));
      p.k_xfer[1][1] = dh(rf_row_bytes(cfg));
      p.k_xfer[2][0] = hd(sf_row_bytes(cfg));
      p.k_xfer[2][1] = dh(sf_row_bytes(cfg));
      p.k_xfer[3][0] = hd(mv_row_bytes(cfg, active_refs));
      p.k_xfer[3][1] = dh(mv_row_bytes(cfg, active_refs));
    }
    perf.seed(i, p);
  }
  return perf;
}

int sum(const std::vector<int>& v) {
  return std::accumulate(v.begin(), v.end(), 0);
}

TEST(RoundPreservingSum, ExactTotalsAndDeterminism) {
  EXPECT_EQ(sum(round_preserving_sum({22.7, 22.7, 22.6}, 68)), 68);
  EXPECT_EQ(round_preserving_sum({1.5, 1.5}, 3), (std::vector<int>{2, 1}));
  EXPECT_EQ(round_preserving_sum({0.0, 5.0}, 5), (std::vector<int>{0, 5}));
  EXPECT_EQ(sum(round_preserving_sum({0.2, 0.2, 0.2, 0.2, 0.2}, 1)), 1);
  EXPECT_THROW(round_preserving_sum({10.0}, 5), Error);  // over-allocation
}

TEST(RoundPreservingSum, RandomizedConservation) {
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = 1 + static_cast<int>(rng.uniform_int(0, 6));
    const int total = static_cast<int>(rng.uniform_int(n, 200));
    std::vector<double> x(n);
    double left = total;
    for (int i = 0; i < n - 1; ++i) {
      x[i] = rng.uniform_real(0.0, left / 2);
      left -= x[i];
    }
    x[n - 1] = left;
    const auto r = round_preserving_sum(x, total);
    EXPECT_EQ(sum(r), total);
    for (int v : r) EXPECT_GE(v, 0);
  }
}

TEST(IntervalOps, DifferenceFragments) {
  // SME slice [5, 15) vs ME slice [8, 12): the two Fig 5(a) fragments.
  const auto frags = interval_difference({5, 15}, {8, 12});
  ASSERT_EQ(frags.size(), 2u);
  EXPECT_EQ(frags[0].begin, 5);
  EXPECT_EQ(frags[0].end, 8);
  EXPECT_EQ(frags[1].begin, 12);
  EXPECT_EQ(frags[1].end, 15);
  // Full overlap -> nothing extra to transfer.
  EXPECT_TRUE(interval_difference({5, 10}, {0, 20}).empty());
  // Disjoint -> whole slice is extra.
  EXPECT_EQ(interval_difference_rows({0, 5}, {10, 20}), 5);
}

TEST(LoadBalancer, EquidistantSplitsEvenly) {
  const auto cfg = hd_config();
  LoadBalancer lb(cfg, make_sys_nff());
  const auto d = lb.equidistant(1);
  d.check_conservation(68);
  EXPECT_EQ(d.me, (std::vector<int>{23, 23, 22}));
  EXPECT_EQ(d.me, d.intp);
  EXPECT_EQ(d.me, d.sme);
  EXPECT_EQ(d.rstar_device, 1);
}

TEST(LoadBalancer, ProportionalFollowsSpeeds) {
  const auto cfg = hd_config();
  const auto topo = make_sys_hk();
  LoadBalancer lb(cfg, topo);
  const auto perf = seeded_perf(cfg, topo);
  const auto d = lb.proportional(perf, {0, 0});
  d.check_conservation(68);
  // GPU_K's ME throughput is several times the Haswell's: the CPU share
  // must land well under a third of the rows.
  EXPECT_LT(d.me[0], 20);
  EXPECT_GT(d.me[1], 48);
}

TEST(LoadBalancer, BalanceConservesAndBeatsEquidistant) {
  const auto cfg = hd_config();
  for (const char* name : {"SysNF", "SysNFF", "SysHK"}) {
    const auto topo = topology_by_name(name);
    LoadBalancer lb(cfg, topo);
    const auto perf = seeded_perf(cfg, topo);
    std::vector<int> zeros(topo.num_devices(), 0);
    const auto d = lb.balance(perf, zeros);
    d.check_conservation(68);
    // The LP's own makespan estimate must beat a naive equidistant bound:
    // equidistant puts ~N/n ME rows on the slowest device.
    const double slow_k = perf.params(0).k_me;  // CPU is slowest in all three
    const double equi_tau1 = (68.0 / topo.num_devices()) * slow_k;
    EXPECT_LT(d.tau_tot_ms, equi_tau1 + 60.0) << name;
    EXPECT_GT(d.tau_tot_ms, 0.0) << name;
    // CPU must get less ME work than the accelerators.
    EXPECT_LT(d.me[0], d.me[1]) << name;
  }
}

TEST(LoadBalancer, SigmaAccountingConsistent) {
  const auto cfg = hd_config();
  const auto topo = make_sys_nff();
  LoadBalancer lb(cfg, topo);
  const auto perf = seeded_perf(cfg, topo);
  std::vector<int> zeros(3, 0);
  const auto d = lb.balance(perf, zeros);
  for (int i = 0; i < 3; ++i) {
    if (!topo.devices[i].is_accelerator() || i == d.rstar_device) {
      EXPECT_EQ(d.sigma[i] + d.sigma_r[i], 0) << "device " << i;
      continue;
    }
    // l + ∆l + σ + σ^r covers the whole SF.
    EXPECT_EQ(d.intp[i] + d.delta_l[i] + d.sigma[i] + d.sigma_r[i], 68)
        << "device " << i;
  }
}

TEST(LoadBalancer, DeltaBoundsMatchIntervalGeometry) {
  const auto cfg = hd_config();
  const auto topo = make_sys_hk();
  LoadBalancer lb(cfg, topo);
  const auto perf = seeded_perf(cfg, topo);
  const auto d = lb.balance(perf, {0, 0});
  const auto me_iv = intervals_of(d.me);
  const auto s_iv = intervals_of(d.sme);
  const auto l_iv = intervals_of(d.intp);
  const int halo = sme_sf_halo_rows(cfg);
  for (int i = 0; i < 2; ++i) {
    if (!topo.devices[i].is_accelerator()) continue;
    EXPECT_EQ(d.delta_m[i], interval_difference_rows(s_iv[i], me_iv[i]));
    int dl = 0;
    for (const auto& f :
         interval_difference(halo_extend(s_iv[i], halo, 68), l_iv[i])) {
      dl += f.length();
    }
    EXPECT_EQ(d.delta_l[i], dl);
  }
}

TEST(LoadBalancer, RstarSelectionPrefersFastDeviceNetOfTransfers) {
  const auto cfg = hd_config();
  const auto topo = make_sys_hk();
  LoadBalancer lb(cfg, topo);
  auto perf = seeded_perf(cfg, topo);
  // GPU_K's R* is much faster than the CPU's: GPU-centric wins.
  EXPECT_EQ(lb.select_rstar_device(perf), 1);
  // Make the GPU's R* pathologically slow: CPU-centric takes over.
  DeviceParams slow = perf.params(1);
  slow.t_rstar_ms = 500.0;
  perf.seed(1, slow);
  EXPECT_EQ(lb.select_rstar_device(perf), 0);
}

TEST(LoadBalancer, AdaptsToSlowedDevice) {
  // Fig 7's adaptation property at the LB level: slow one device's K's and
  // its share must shrink.
  const auto cfg = hd_config();
  const auto topo = make_sys_hk();
  LoadBalancer lb(cfg, topo);
  auto perf = seeded_perf(cfg, topo);
  const auto before = lb.balance(perf, {0, 0});

  DeviceParams slowed = perf.params(1);
  slowed.k_me *= 4.0;
  slowed.k_sme *= 4.0;
  slowed.k_int *= 4.0;
  perf.seed(1, slowed);
  const auto after = lb.balance(perf, {0, 0});
  EXPECT_LT(after.me[1], before.me[1]);
  EXPECT_GT(after.me[0], before.me[0]);
}

TEST(LoadBalancer, SfDeferralAblationForcesInFrameCompletion) {
  const auto cfg = hd_config();
  const auto topo = make_sys_nff();
  LoadBalancerOptions opts;
  opts.enable_sf_deferral = false;
  LoadBalancer lb(cfg, topo, opts);
  const auto perf = seeded_perf(cfg, topo);
  const auto d = lb.balance(perf, {0, 0, 0});
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(d.sigma_r[i], 0) << "deferral disabled but device " << i
                               << " deferred rows";
  }
}

TEST(LoadBalancer, BalanceRequiresCharacterization) {
  const auto cfg = hd_config();
  LoadBalancer lb(cfg, make_sys_nf());
  PerfCharacterization perf(2);
  EXPECT_THROW(lb.balance(perf, {0, 0}), Error);
}

/// Property sweep: randomized device speeds must always yield conserved,
/// non-negative distributions whose LP estimate is feasible-looking.
class BalanceRandomized : public ::testing::TestWithParam<int> {};

TEST_P(BalanceRandomized, ConservationAndSanity) {
  Rng rng(static_cast<u64>(GetParam()) * 1299709 + 11);
  EncoderConfig cfg = hd_config();
  cfg.num_ref_frames = 1 + static_cast<int>(rng.uniform_int(0, 3));
  auto topo = make_sys_nff();
  // Randomize throughputs within a decade.
  for (auto& dev : topo.devices) {
    const double f = rng.uniform_real(0.2, 5.0);
    dev.tput.me_ops_per_ms *= f;
    dev.tput.sme_ops_per_ms *= rng.uniform_real(0.2, 5.0);
    dev.tput.int_pix_per_ms *= rng.uniform_real(0.2, 5.0);
  }
  LoadBalancer lb(cfg, topo);
  const auto perf = seeded_perf(cfg, topo, cfg.num_ref_frames);
  std::vector<int> sr(3, 0);
  sr[2] = static_cast<int>(rng.uniform_int(0, 30));
  const auto d = lb.balance(perf, sr);
  d.check_conservation(68);
  for (int i = 0; i < 3; ++i) {
    EXPECT_GE(d.me[i], 0);
    EXPECT_GE(d.sigma[i], 0);
    EXPECT_GE(d.sigma_r[i], 0);
    EXPECT_GE(d.delta_m[i], 0);
    EXPECT_GE(d.delta_l[i], 0);
  }
  EXPECT_GE(d.tau_tot_ms, d.tau2_ms - 1e-9);
  EXPECT_GE(d.tau2_ms, d.tau1_ms - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomSpeeds, BalanceRandomized,
                         ::testing::Range(0, 30));

// ---- Share-aware probe balancing (multi-session grant churn) --------------

TEST(BalanceWithProbes, UncharacterizedNewcomersGetProbeSlices) {
  // A session's grant churned in device 3, never measured by this session:
  // the LP must still balance the characterized devices while the newcomer
  // receives a small probe slice of every module so it earns parameters.
  const auto cfg = hd_config();
  auto topo = topology_by_name("SysNFF");
  auto extra = topo.devices.back();
  extra.name = "GPU_NEW";
  topo.devices.push_back(extra);

  LoadBalancerOptions opts;
  opts.probe_rows = 2;
  LoadBalancer lb(cfg, topo, opts);

  // Seed only the first three devices; device 3 stays unknown.
  const auto seeded3 = seeded_perf(cfg, topology_by_name("SysNFF"));
  PerfCharacterization perf(4);
  for (int i = 0; i < 3; ++i) perf.seed(i, seeded3.params(i));

  const std::vector<bool> active(4, true);
  std::vector<int> zeros(4, 0);
  const auto d = lb.balance_with_probes(perf, zeros, -1, &active);
  d.check_conservation(68);
  EXPECT_GT(d.me[3], 0) << "newcomer must get an ME probe";
  EXPECT_LE(d.me[3], opts.probe_rows);
  EXPECT_GT(d.intp[3], 0) << "newcomer must get an INT probe";
  EXPECT_GT(d.sme[3], 0) << "newcomer must get an SME probe";
  // The characterized devices still carry nearly everything.
  EXPECT_GT(d.me[1] + d.me[2], 40);
}

TEST(BalanceWithProbes, FullyCharacterizedFallsBackToPlainBalance) {
  const auto cfg = hd_config();
  const auto topo = topology_by_name("SysNFF");
  LoadBalancerOptions opts;
  opts.probe_rows = 2;
  LoadBalancer lb(cfg, topo, opts);
  const auto perf = seeded_perf(cfg, topo);
  std::vector<int> zeros(3, 0);
  const std::vector<bool> active(3, true);
  const auto probed = lb.balance_with_probes(perf, zeros, -1, &active);
  const auto plain = lb.balance(perf, zeros, -1, &active);
  EXPECT_EQ(probed.me, plain.me);
  EXPECT_EQ(probed.intp, plain.intp);
  EXPECT_EQ(probed.sme, plain.sme);
  EXPECT_EQ(probed.rstar_device, plain.rstar_device);
}

TEST(BalanceWithProbes, NothingCharacterizedFallsBackToEquidistant) {
  const auto cfg = hd_config();
  const auto topo = topology_by_name("SysNFF");
  LoadBalancerOptions opts;
  opts.probe_rows = 2;
  LoadBalancer lb(cfg, topo, opts);
  PerfCharacterization perf(3);  // nobody measured yet
  std::vector<int> zeros(3, 0);
  const std::vector<bool> active(3, true);
  const auto d = lb.balance_with_probes(perf, zeros, -1, &active);
  d.check_conservation(68);
  // Equidistant shape: every active device within one row of 68/3.
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(d.me[i], 68.0 / 3.0, 1.0) << "device " << i;
  }
}

}  // namespace
}  // namespace feves
