#include "sched/perf_char.hpp"

#include <gtest/gtest.h>

namespace feves {
namespace {

TEST(PerfChar, FirstObservationSetsDirectly) {
  PerfCharacterization perf(2);
  perf.observe_compute(0, ComputeModule::kMe, 10, 20.0);
  EXPECT_DOUBLE_EQ(perf.params(0).k_me, 2.0);
}

TEST(PerfChar, EwmaBlendsSubsequentObservations) {
  PerfCharacterization perf(1, /*alpha=*/0.5);
  perf.observe_compute(0, ComputeModule::kSme, 10, 10.0);  // 1.0 ms/row
  perf.observe_compute(0, ComputeModule::kSme, 10, 30.0);  // 3.0 ms/row
  EXPECT_DOUBLE_EQ(perf.params(0).k_sme, 2.0);  // 0.5*3 + 0.5*1
}

TEST(PerfChar, ZeroRowsKeepsOldEstimate) {
  PerfCharacterization perf(1);
  perf.observe_compute(0, ComputeModule::kInt, 5, 10.0);
  perf.observe_compute(0, ComputeModule::kInt, 0, 999.0);
  EXPECT_DOUBLE_EQ(perf.params(0).k_int, 2.0);
}

TEST(PerfChar, InitializedNeedsAllDevicesAllModules) {
  PerfCharacterization perf(2);
  EXPECT_FALSE(perf.initialized());
  for (int d = 0; d < 2; ++d) {
    perf.observe_compute(d, ComputeModule::kMe, 1, 1.0);
    perf.observe_compute(d, ComputeModule::kInt, 1, 1.0);
  }
  EXPECT_FALSE(perf.initialized());  // SME missing
  perf.observe_compute(0, ComputeModule::kSme, 1, 1.0);
  EXPECT_FALSE(perf.initialized());  // device 1 SME missing
  perf.observe_compute(1, ComputeModule::kSme, 1, 1.0);
  EXPECT_TRUE(perf.initialized());
}

TEST(PerfChar, TransferDirectionsIndependent) {
  PerfCharacterization perf(1);
  perf.observe_transfer(0, BufferKind::kSf, Direction::kHostToDevice, 10, 5.0);
  perf.observe_transfer(0, BufferKind::kSf, Direction::kDeviceToHost, 10, 8.0);
  EXPECT_DOUBLE_EQ(perf.params(0).k_xfer[2][0], 0.5);
  EXPECT_DOUBLE_EQ(perf.params(0).k_xfer[2][1], 0.8);
}

TEST(PerfChar, TracksDriftingDevice) {
  // The adaptation property behind Fig 7: a device that slows down must be
  // re-characterized within a few frames.
  PerfCharacterization perf(1, 0.5);
  for (int f = 0; f < 5; ++f) perf.observe_compute(0, ComputeModule::kMe, 10, 10.0);
  EXPECT_NEAR(perf.params(0).k_me, 1.0, 1e-9);
  // Device suddenly 3x slower.
  perf.observe_compute(0, ComputeModule::kMe, 10, 30.0);
  perf.observe_compute(0, ComputeModule::kMe, 10, 30.0);
  perf.observe_compute(0, ComputeModule::kMe, 10, 30.0);
  EXPECT_GT(perf.params(0).k_me, 2.5);  // converged most of the way in 3
}

TEST(PerfChar, RejectsBadIndices) {
  PerfCharacterization perf(1);
  EXPECT_THROW(perf.observe_compute(1, ComputeModule::kMe, 1, 1.0), Error);
  EXPECT_THROW(perf.params(-1), Error);
  EXPECT_THROW(PerfCharacterization(0), Error);
}

}  // namespace
}  // namespace feves
