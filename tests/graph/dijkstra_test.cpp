#include "graph/dijkstra.hpp"

#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace feves::graph {
namespace {

TEST(Dijkstra, LineGraph) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(2, 3, 3.0);
  const auto sp = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(sp.distance[3], 6.0);
  EXPECT_EQ(sp.path_to(3), (std::vector<int>{0, 1, 2, 3}));
}

TEST(Dijkstra, PrefersCheaperIndirectPath) {
  Graph g(3);
  g.add_edge(0, 2, 10.0);
  g.add_edge(0, 1, 3.0);
  g.add_edge(1, 2, 4.0);
  const auto sp = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(sp.distance[2], 7.0);
  EXPECT_EQ(sp.path_to(2), (std::vector<int>{0, 1, 2}));
}

TEST(Dijkstra, UnreachableNode) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  const auto sp = dijkstra(g, 0);
  EXPECT_EQ(sp.distance[2], kUnreachable);
  EXPECT_TRUE(sp.path_to(2).empty());
}

TEST(Dijkstra, SourceDistanceZero) {
  Graph g(2);
  g.add_edge(0, 1, 5.0);
  const auto sp = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(sp.distance[0], 0.0);
  EXPECT_EQ(sp.path_to(0), (std::vector<int>{0}));
}

TEST(Dijkstra, RejectsNegativeWeights) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 1, -1.0), Error);
}

TEST(Dijkstra, ZeroWeightEdges) {
  Graph g(3);
  g.add_edge(0, 1, 0.0);
  g.add_edge(1, 2, 0.0);
  const auto sp = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(sp.distance[2], 0.0);
}

/// Property: on random graphs, Dijkstra matches Bellman-Ford.
class DijkstraRandom : public ::testing::TestWithParam<int> {};

TEST_P(DijkstraRandom, MatchesBellmanFord) {
  Rng rng(static_cast<u64>(GetParam()) * 104729 + 7);
  const int n = 2 + static_cast<int>(rng.uniform_int(0, 10));
  Graph g(n);
  struct E {
    int from, to;
    double w;
  };
  std::vector<E> edges;
  const int m = static_cast<int>(rng.uniform_int(1, 3 * n));
  for (int i = 0; i < m; ++i) {
    E e{static_cast<int>(rng.uniform_int(0, n - 1)),
        static_cast<int>(rng.uniform_int(0, n - 1)),
        rng.uniform_real(0.0, 10.0)};
    g.add_edge(e.from, e.to, e.w);
    edges.push_back(e);
  }
  const auto sp = dijkstra(g, 0);

  std::vector<double> bf(n, kUnreachable);
  bf[0] = 0.0;
  for (int pass = 0; pass < n; ++pass) {
    for (const E& e : edges) {
      if (bf[e.from] != kUnreachable && bf[e.from] + e.w < bf[e.to]) {
        bf[e.to] = bf[e.from] + e.w;
      }
    }
  }
  for (int v = 0; v < n; ++v) {
    if (bf[v] == kUnreachable) {
      EXPECT_EQ(sp.distance[v], kUnreachable);
    } else {
      EXPECT_NEAR(sp.distance[v], bf[v], 1e-9) << "node " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, DijkstraRandom, ::testing::Range(0, 20));

}  // namespace
}  // namespace feves::graph
