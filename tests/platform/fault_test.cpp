// Fault-injection machinery: PerturbationSchedule edge cases, FaultSchedule
// determinism, and the executors' failure semantics — error capture,
// dependent cancellation, watchdog timeouts, and virtual/real status parity.
#include "platform/fault.hpp"

#include "platform/op_graph.hpp"
#include "platform/perturbation.hpp"
#include "platform/presets.hpp"

#include <gtest/gtest.h>

#include <atomic>

namespace feves {
namespace {

PlatformTopology two_device_topo() {
  PlatformTopology t = make_sys_nf();
  t.devices[1].copy_engines = CopyEngines::kSingle;
  return t;
}

Op make_op(int device, OpResource res, double ms, std::vector<int> deps = {}) {
  Op op;
  op.device = device;
  op.resource = res;
  op.virtual_ms = ms;
  op.deps = std::move(deps);
  return op;
}

// ---- PerturbationSchedule edge cases --------------------------------------

TEST(PerturbationSchedule, OverlappingWindowsMultiply) {
  PerturbationSchedule s;
  s.add({/*device=*/1, /*begin=*/5, /*end=*/10, /*slowdown=*/2.0});
  s.add({/*device=*/1, /*begin=*/8, /*end=*/12, /*slowdown=*/3.0});
  EXPECT_DOUBLE_EQ(s.factor(1, 4), 1.0);   // before both
  EXPECT_DOUBLE_EQ(s.factor(1, 5), 2.0);   // first only
  EXPECT_DOUBLE_EQ(s.factor(1, 8), 6.0);   // overlap: factors compose
  EXPECT_DOUBLE_EQ(s.factor(1, 9), 6.0);
  EXPECT_DOUBLE_EQ(s.factor(1, 10), 3.0);  // second only (end exclusive)
  EXPECT_DOUBLE_EQ(s.factor(1, 12), 1.0);  // after both
  EXPECT_DOUBLE_EQ(s.factor(0, 8), 1.0);   // other devices untouched
}

TEST(PerturbationSchedule, EmptyRangeIsInert) {
  PerturbationSchedule s;
  s.add({/*device=*/0, /*begin=*/7, /*end=*/7, /*slowdown=*/5.0});
  for (int f = 5; f < 10; ++f) EXPECT_DOUBLE_EQ(s.factor(0, f), 1.0);
  EXPECT_FALSE(s.empty());  // the event exists; it just never matches
}

TEST(PerturbationSchedule, RejectsInvalidEvents) {
  PerturbationSchedule s;
  EXPECT_THROW(s.add({0, 5, 4, 2.0}), Error);   // begin > end
  EXPECT_THROW(s.add({0, 0, 1, 0.0}), Error);   // non-positive slowdown
}

// ---- FaultSchedule --------------------------------------------------------

TEST(FaultSchedule, PlanIsDeterministic) {
  FaultSchedule s;
  s.add({/*device=*/1, /*begin=*/3, /*end=*/5, FaultKind::kKernelTransient});
  s.add({/*device=*/2, /*begin=*/4, /*end=*/kFaultForever,
         FaultKind::kDeviceLoss});
  const FaultPlan a = s.plan(4, 3);
  const FaultPlan b = s.plan(4, 3);
  ASSERT_EQ(a.dev.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(a.dev[i].kernel_error, b.dev[i].kernel_error) << i;
    EXPECT_EQ(a.dev[i].transfer_error, b.dev[i].transfer_error) << i;
    EXPECT_EQ(a.dev[i].lost, b.dev[i].lost) << i;
    EXPECT_EQ(a.dev[i].hang, b.dev[i].hang) << i;
  }
  EXPECT_TRUE(a.dev[1].kernel_error);
  EXPECT_TRUE(a.dev[2].lost);
  EXPECT_FALSE(a.dev[0].kernel_error || a.dev[0].lost);
}

TEST(FaultSchedule, WindowsAreHalfOpenAndForeverPersists) {
  FaultSchedule s;
  s.add({1, 3, 5, FaultKind::kTransferTransient});
  s.add({0, 10, kFaultForever, FaultKind::kDeviceLoss});
  EXPECT_FALSE(s.plan(2, 2).any());
  EXPECT_TRUE(s.plan(3, 2).dev[1].transfer_error);
  EXPECT_TRUE(s.plan(4, 2).dev[1].transfer_error);
  EXPECT_FALSE(s.plan(5, 2).any());  // end exclusive
  EXPECT_TRUE(s.plan(10, 2).dev[0].lost);
  EXPECT_TRUE(s.plan(1000000, 2).dev[0].lost);
}

TEST(FaultSchedule, EmptyScheduleYieldsFaultFreePlan) {
  const FaultPlan p = FaultSchedule{}.plan(7, 4);
  EXPECT_TRUE(p.dev.empty());
  EXPECT_FALSE(p.any());
  EXPECT_EQ(p.action(2, OpResource::kCompute), FaultPlan::Action::kNone);
}

TEST(FaultSchedule, ActionMapping) {
  FaultSchedule s;
  s.add({0, 0, 1, FaultKind::kKernelTransient});
  s.add({1, 0, 1, FaultKind::kTransferTransient});
  s.add({2, 0, 1, FaultKind::kDeviceLoss});
  s.add({3, 0, 1, FaultKind::kHang});
  const FaultPlan p = s.plan(0, 4);
  // Kernel faults hit only compute; transfer faults only the copy engines.
  EXPECT_EQ(p.action(0, OpResource::kCompute), FaultPlan::Action::kError);
  EXPECT_EQ(p.action(0, OpResource::kCopyH2D), FaultPlan::Action::kNone);
  EXPECT_EQ(p.action(1, OpResource::kCompute), FaultPlan::Action::kNone);
  EXPECT_EQ(p.action(1, OpResource::kCopyH2D), FaultPlan::Action::kError);
  EXPECT_EQ(p.action(1, OpResource::kCopyD2H), FaultPlan::Action::kError);
  // Device loss takes the whole device down.
  EXPECT_EQ(p.action(2, OpResource::kCompute), FaultPlan::Action::kError);
  EXPECT_EQ(p.action(2, OpResource::kCopyD2H), FaultPlan::Action::kError);
  // A hang wedges the kernel lane; DMA still errors-free.
  EXPECT_EQ(p.action(3, OpResource::kCompute), FaultPlan::Action::kHang);
  EXPECT_EQ(p.action(3, OpResource::kCopyH2D), FaultPlan::Action::kNone);
}

// ---- Executor failure semantics -------------------------------------------

ExecuteOptions fault_on(int device, FaultKind kind, double watchdog_ms = 0.0,
                        double hang_sleep_ms = 0.0) {
  FaultSchedule s;
  s.add({device, 0, kFaultForever, kind});
  ExecuteOptions opts;
  opts.faults = s.plan(0, 3);
  opts.watchdog_ms = watchdog_ms;
  if (hang_sleep_ms > 0.0) opts.hang_sleep_ms = hang_sleep_ms;
  return opts;
}

/// A diamond spanning both devices: CF upload -> kernel -> MV download on
/// device 1, plus an independent op on device 0 that must survive any
/// device-1 fault.
OpGraph diamond_graph(int* independent_id) {
  OpGraph g;
  const int up = g.add(make_op(1, OpResource::kCopyH2D, 1.0));
  const int kern = g.add(make_op(1, OpResource::kCompute, 2.0, {up}));
  g.add(make_op(1, OpResource::kCopyD2H, 1.0, {kern}));
  *independent_id = g.add(make_op(0, OpResource::kCompute, 3.0));
  return g;
}

TEST(VirtualExecutorFaults, ErrorCancelsDependentsOnly) {
  const auto topo = two_device_topo();
  int indep = -1;
  const OpGraph g = diamond_graph(&indep);
  const auto r = execute_virtual(g, topo,
                                 fault_on(1, FaultKind::kTransferTransient));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status[0], OpStatus::kFailed);     // the faulted upload
  EXPECT_EQ(r.status[1], OpStatus::kCancelled);  // kernel never runs
  EXPECT_EQ(r.status[2], OpStatus::kCancelled);  // nor the download
  EXPECT_EQ(r.status[indep], OpStatus::kOk);     // device 0 unaffected
  // Cancelled ops consume no time; the failure list has exactly the upload.
  EXPECT_DOUBLE_EQ(r.times[1].end_ms, 0.0);
  ASSERT_EQ(r.failures.size(), 1u);
  EXPECT_EQ(r.failures[0].status, OpStatus::kFailed);
  EXPECT_EQ(r.failed_devices(), std::vector<int>{1});
  // Makespan covers the surviving work.
  EXPECT_DOUBLE_EQ(r.makespan_ms, 3.0);
}

TEST(RealExecutorFaults, CancelsDependentsWithoutRunningThem) {
  const auto topo = two_device_topo();
  std::atomic<bool> dependent_ran{false};
  std::atomic<bool> independent_ran{false};
  OpGraph g;
  Op bad = make_op(1, OpResource::kCompute, 0.0);
  bad.work = [] { throw Error("boom"); };
  const int bad_id = g.add(std::move(bad));
  Op dep = make_op(1, OpResource::kCopyD2H, 0.0, {bad_id});
  dep.work = [&] { dependent_ran = true; };
  const int dep_id = g.add(std::move(dep));
  Op indep = make_op(0, OpResource::kCompute, 0.0);
  indep.work = [&] { independent_ran = true; };
  const int indep_id = g.add(std::move(indep));

  const auto r = execute_real(g, topo);
  EXPECT_EQ(r.status[bad_id], OpStatus::kFailed);
  EXPECT_EQ(r.status[dep_id], OpStatus::kCancelled);
  EXPECT_EQ(r.status[indep_id], OpStatus::kOk);
  EXPECT_FALSE(dependent_ran.load());  // poisoned inputs never touched
  EXPECT_TRUE(independent_ran.load());
}

TEST(RealExecutorFaults, InjectedFaultSkipsTheWorkEntirely) {
  const auto topo = two_device_topo();
  std::atomic<bool> ran{false};
  OpGraph g;
  Op op = make_op(1, OpResource::kCompute, 0.0);
  op.work = [&] { ran = true; };
  g.add(std::move(op));
  const auto r =
      execute_real(g, topo, fault_on(1, FaultKind::kKernelTransient));
  EXPECT_EQ(r.status[0], OpStatus::kFailed);
  EXPECT_FALSE(ran.load());
  ASSERT_EQ(r.failures.size(), 1u);
  EXPECT_EQ(r.failures[0].message, "injected fault");
}

TEST(ExecutorFaults, VirtualAndRealReportIdenticalStatuses) {
  // The parity property the degradation logic relies on: for the same graph
  // and the same fault plan, both executors settle every op in the same
  // terminal state — only the timestamps differ.
  const auto topo = two_device_topo();
  const FaultKind kinds[] = {FaultKind::kKernelTransient,
                             FaultKind::kTransferTransient,
                             FaultKind::kDeviceLoss, FaultKind::kHang};
  for (FaultKind kind : kinds) {
    int indep = -1;
    const OpGraph g = diamond_graph(&indep);
    // Hang semantics need a watchdog; real mode additionally needs the
    // injected sleep to overshoot it. Generous margins keep this stable
    // under sanitizers.
    const auto opts = fault_on(1, kind, /*watchdog_ms=*/150.0,
                               /*hang_sleep_ms=*/300.0);
    const auto rv = execute_virtual(g, topo, opts);
    const auto rr = execute_real(g, topo, opts);
    ASSERT_EQ(rv.status.size(), rr.status.size());
    for (std::size_t i = 0; i < rv.status.size(); ++i) {
      EXPECT_EQ(rv.status[i], rr.status[i])
          << "op " << i << " diverged for fault kind "
          << static_cast<int>(kind);
    }
    EXPECT_EQ(rv.failed_devices(), rr.failed_devices());
  }
}

TEST(ExecutorFaults, HangTimesOutAtWatchdogAndCancelsDependents) {
  const auto topo = two_device_topo();
  int indep = -1;
  const OpGraph g = diamond_graph(&indep);
  const auto opts = fault_on(1, FaultKind::kHang, /*watchdog_ms=*/10.0,
                             /*hang_sleep_ms=*/30.0);
  const auto r = execute_virtual(g, topo, opts);
  EXPECT_EQ(r.status[0], OpStatus::kOk);        // the upload is fine
  EXPECT_EQ(r.status[1], OpStatus::kTimedOut);  // the kernel hangs
  EXPECT_EQ(r.status[2], OpStatus::kCancelled);
  EXPECT_EQ(r.status[indep], OpStatus::kOk);
  // Virtual time: the hung op occupies its lane for exactly the watchdog.
  EXPECT_DOUBLE_EQ(r.times[1].end_ms, r.times[1].start_ms + 10.0);
}

TEST(ExecutorFaults, SlowOpTripsTheWatchdogInVirtualMode) {
  const auto topo = two_device_topo();
  OpGraph g;
  g.add(make_op(0, OpResource::kCompute, 50.0));
  ExecuteOptions opts;
  opts.watchdog_ms = 20.0;
  const auto r = execute_virtual(g, topo, opts);
  EXPECT_EQ(r.status[0], OpStatus::kTimedOut);
  EXPECT_DOUBLE_EQ(r.times[0].end_ms, 20.0);
}

TEST(ExecutorFaults, HangWithoutWatchdogIsRejected) {
  const auto topo = two_device_topo();
  OpGraph g;
  g.add(make_op(1, OpResource::kCompute, 1.0));
  const auto opts = fault_on(1, FaultKind::kHang);  // no watchdog
  EXPECT_THROW(execute_virtual(g, topo, opts), Error);
  EXPECT_THROW(execute_real(g, topo, opts), Error);
}

}  // namespace
}  // namespace feves
