#include "platform/op_graph.hpp"

#include "platform/presets.hpp"
#include "platform/perturbation.hpp"

#include <gtest/gtest.h>

#include <atomic>

namespace feves {
namespace {

PlatformTopology two_device_topo(CopyEngines engines) {
  PlatformTopology t = make_sys_nf();
  t.devices[1].copy_engines = engines;
  return t;
}

Op make_op(int device, OpResource res, double ms, std::vector<int> deps = {}) {
  Op op;
  op.device = device;
  op.resource = res;
  op.virtual_ms = ms;
  op.deps = std::move(deps);
  return op;
}

TEST(VirtualExecutor, SequentialOnOneLane) {
  auto topo = two_device_topo(CopyEngines::kSingle);
  OpGraph g;
  g.add(make_op(0, OpResource::kCompute, 5.0));
  g.add(make_op(0, OpResource::kCompute, 3.0));
  const auto r = execute_virtual(g, topo);
  EXPECT_DOUBLE_EQ(r.times[0].end_ms, 5.0);
  EXPECT_DOUBLE_EQ(r.times[1].start_ms, 5.0);
  EXPECT_DOUBLE_EQ(r.makespan_ms, 8.0);
}

TEST(VirtualExecutor, IndependentDevicesOverlap) {
  auto topo = two_device_topo(CopyEngines::kSingle);
  OpGraph g;
  g.add(make_op(0, OpResource::kCompute, 5.0));
  g.add(make_op(1, OpResource::kCompute, 7.0));
  const auto r = execute_virtual(g, topo);
  EXPECT_DOUBLE_EQ(r.times[0].start_ms, 0.0);
  EXPECT_DOUBLE_EQ(r.times[1].start_ms, 0.0);
  EXPECT_DOUBLE_EQ(r.makespan_ms, 7.0);
}

TEST(VirtualExecutor, DependenciesSerializeAcrossDevices) {
  auto topo = two_device_topo(CopyEngines::kSingle);
  OpGraph g;
  const int a = g.add(make_op(0, OpResource::kCompute, 4.0));
  g.add(make_op(1, OpResource::kCompute, 2.0, {a}));
  const auto r = execute_virtual(g, topo);
  EXPECT_DOUBLE_EQ(r.times[1].start_ms, 4.0);
  EXPECT_DOUBLE_EQ(r.makespan_ms, 6.0);
}

TEST(VirtualExecutor, ComputeOverlapsTransfer) {
  // The whole point of copy engines: a kernel and a DMA run concurrently.
  auto topo = two_device_topo(CopyEngines::kSingle);
  OpGraph g;
  g.add(make_op(1, OpResource::kCompute, 10.0));
  g.add(make_op(1, OpResource::kCopyH2D, 6.0));
  const auto r = execute_virtual(g, topo);
  EXPECT_DOUBLE_EQ(r.makespan_ms, 10.0);
}

TEST(VirtualExecutor, SingleCopyEngineSerializesBothDirections) {
  auto topo = two_device_topo(CopyEngines::kSingle);
  OpGraph g;
  g.add(make_op(1, OpResource::kCopyH2D, 6.0));
  g.add(make_op(1, OpResource::kCopyD2H, 4.0));
  const auto r = execute_virtual(g, topo);
  EXPECT_DOUBLE_EQ(r.makespan_ms, 10.0);  // serialized on one DMA unit
}

TEST(VirtualExecutor, DualCopyEngineOverlapsDirections) {
  auto topo = two_device_topo(CopyEngines::kDual);
  OpGraph g;
  g.add(make_op(1, OpResource::kCopyH2D, 6.0));
  g.add(make_op(1, OpResource::kCopyD2H, 4.0));
  const auto r = execute_virtual(g, topo);
  EXPECT_DOUBLE_EQ(r.makespan_ms, 6.0);  // paper Sec. III-A dual engines
}

TEST(VirtualExecutor, FifoHeadOfLineBlocking) {
  // CUDA-stream semantics: an op queued first on a lane blocks later ops on
  // the same lane even when the later op's deps are already met.
  auto topo = two_device_topo(CopyEngines::kSingle);
  OpGraph g;
  const int slow = g.add(make_op(0, OpResource::kCompute, 10.0));
  const int blocked =
      g.add(make_op(1, OpResource::kCopyH2D, 1.0, {slow}));  // waits
  const int behind = g.add(make_op(1, OpResource::kCopyH2D, 1.0));  // free
  const auto r = execute_virtual(g, topo);
  EXPECT_DOUBLE_EQ(r.times[blocked].start_ms, 10.0);
  EXPECT_DOUBLE_EQ(r.times[behind].start_ms, 11.0);  // stuck behind head
}

TEST(OpGraph, RejectsForwardDependencies) {
  // Lane queues execute in issue order, so a dependency on a not-yet-added
  // op (the only way to build a cross-lane deadlock) is rejected at
  // construction.
  OpGraph g;
  const int first = g.add(make_op(0, OpResource::kCompute, 1.0));
  Op bad = make_op(0, OpResource::kCompute, 1.0);
  bad.deps = {first + 5};
  EXPECT_THROW(g.add(std::move(bad)), Error);
}

TEST(RealExecutor, RunsWorkAndHonoursDeps) {
  auto topo = two_device_topo(CopyEngines::kSingle);
  std::atomic<int> stage{0};
  OpGraph g;
  Op first = make_op(0, OpResource::kCompute, 0.0);
  first.work = [&] {
    int expect = 0;
    EXPECT_TRUE(stage.compare_exchange_strong(expect, 1));
  };
  const int id0 = g.add(std::move(first));
  Op second = make_op(1, OpResource::kCompute, 0.0, {id0});
  second.work = [&] {
    int expect = 1;
    EXPECT_TRUE(stage.compare_exchange_strong(expect, 2));
  };
  g.add(std::move(second));
  const auto r = execute_real(g, topo);
  EXPECT_EQ(stage.load(), 2);
  EXPECT_GE(r.times[1].start_ms, r.times[0].end_ms);
}

TEST(RealExecutor, CapturesWorkExceptionsWithAttribution) {
  // A throwing work closure no longer tears down the frame: the executor
  // returns a partial result attributing the failure to the op's label,
  // device and resource lane.
  auto topo = two_device_topo(CopyEngines::kSingle);
  OpGraph g;
  Op op = make_op(1, OpResource::kCopyH2D, 0.0);
  op.label = "SF_in";
  op.work = [] { throw Error("dma fault"); };
  g.add(std::move(op));
  const auto r = execute_real(g, topo);
  EXPECT_FALSE(r.ok());
  ASSERT_EQ(r.failures.size(), 1u);
  EXPECT_EQ(r.status[0], OpStatus::kFailed);
  EXPECT_EQ(r.failures[0].label, "SF_in");
  EXPECT_EQ(r.failures[0].device, 1);
  EXPECT_EQ(r.failures[0].resource, OpResource::kCopyH2D);
  EXPECT_NE(r.failures[0].message.find("dma fault"), std::string::npos);
  EXPECT_EQ(r.failed_devices(), std::vector<int>{1});
  try {
    r.throw_if_failed();
    FAIL() << "throw_if_failed did not throw";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("SF_in"), std::string::npos);
    EXPECT_NE(msg.find("device 1"), std::string::npos);
    EXPECT_NE(msg.find(resource_name(OpResource::kCopyH2D)), std::string::npos);
  }
}

TEST(Presets, CalibratedRelationships) {
  // The preset family must respect the paper's quoted single-device ratios.
  const auto cn = preset_cpu_nehalem();
  const auto ch = preset_cpu_haswell();
  const auto gf = preset_gpu_fermi();
  const auto gk = preset_gpu_kepler();
  EXPECT_NEAR(ch.tput.me_ops_per_ms / cn.tput.me_ops_per_ms, 1.7, 1e-9);
  EXPECT_NEAR(gk.tput.me_ops_per_ms / gf.tput.me_ops_per_ms, 2.0, 1e-9);
  EXPECT_TRUE(gf.is_accelerator());
  EXPECT_FALSE(cn.is_accelerator());
  EXPECT_EQ(make_sys_nff().num_accelerators(), 2);
  EXPECT_EQ(make_sys_hk().cpu_index(), 0);
  EXPECT_THROW(topology_by_name("SysXYZ"), Error);
  EXPECT_EQ(all_config_names().size(), 7u);
}

TEST(Perturbation, FactorsComposeAndWindow) {
  PerturbationSchedule sched;
  sched.add({/*device=*/1, /*begin=*/10, /*end=*/12, /*slowdown=*/2.0});
  sched.add({1, 11, 13, 1.5});
  EXPECT_DOUBLE_EQ(sched.factor(1, 9), 1.0);
  EXPECT_DOUBLE_EQ(sched.factor(1, 10), 2.0);
  EXPECT_DOUBLE_EQ(sched.factor(1, 11), 3.0);  // overlap composes
  EXPECT_DOUBLE_EQ(sched.factor(1, 12), 1.5);
  EXPECT_DOUBLE_EQ(sched.factor(0, 11), 1.0);  // other device untouched
}

}  // namespace
}  // namespace feves
