// Property tests over randomized op graphs: the discrete-event executor's
// schedules must respect causality (no op before its deps), lane
// serialization (no two ops overlap on one serial resource), and bound the
// makespan between the critical path and the serial sum.
#include "platform/op_graph.hpp"

#include "common/rng.hpp"
#include "core/framework.hpp"
#include "platform/presets.hpp"
#include "service/arbiter.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace feves {
namespace {

struct RandomGraph {
  OpGraph graph;
  PlatformTopology topo;
};

RandomGraph make_random_graph(u64 seed) {
  Rng rng(seed);
  RandomGraph rg;
  rg.topo.devices.push_back(preset_cpu_nehalem());
  const int accels = 1 + static_cast<int>(rng.uniform_int(0, 2));
  for (int i = 0; i < accels; ++i) {
    auto g = preset_gpu_fermi();
    if (rng.uniform01() < 0.5) g.copy_engines = CopyEngines::kDual;
    rg.topo.devices.push_back(g);
  }

  const int n_ops = 5 + static_cast<int>(rng.uniform_int(0, 25));
  for (int i = 0; i < n_ops; ++i) {
    Op op;
    op.device = static_cast<int>(rng.uniform_int(0, rg.topo.num_devices() - 1));
    const int r = static_cast<int>(rng.uniform_int(0, 2));
    op.resource = r == 0   ? OpResource::kCompute
                  : r == 1 ? OpResource::kCopyH2D
                           : OpResource::kCopyD2H;
    if (!rg.topo.devices[op.device].is_accelerator()) {
      op.resource = OpResource::kCompute;  // host has no DMA engines
    }
    op.virtual_ms = rng.uniform_real(0.1, 5.0);
    // Backward-only deps keep the graph acyclic and lane-consistent.
    const int max_deps = std::min(i, 3);
    for (int d = 0; d < max_deps; ++d) {
      if (rng.uniform01() < 0.35) {
        op.deps.push_back(static_cast<int>(rng.uniform_int(0, i - 1)));
      }
    }
    op.label = "op" + std::to_string(i);
    rg.graph.add(std::move(op));
  }
  return rg;
}

class DesProperty : public ::testing::TestWithParam<int> {};

TEST_P(DesProperty, CausalityLaneSerializationAndBounds) {
  const RandomGraph rg = make_random_graph(static_cast<u64>(GetParam()) * 7 + 3);
  const ExecutionResult res = execute_virtual(rg.graph, rg.topo);
  const auto& ops = rg.graph.ops();

  double serial_sum = 0.0;
  for (int i = 0; i < rg.graph.size(); ++i) {
    // Duration honoured exactly.
    EXPECT_NEAR(res.times[i].end_ms - res.times[i].start_ms,
                ops[i].virtual_ms, 1e-9);
    serial_sum += ops[i].virtual_ms;
    // Causality.
    for (int d : ops[i].deps) {
      EXPECT_GE(res.times[i].start_ms, res.times[d].end_ms - 1e-9)
          << "op " << i << " started before dep " << d;
    }
  }

  // Lane serialization: no two ops on the same serial lane overlap.
  auto lane_of = [&](int i) {
    const Op& op = ops[i];
    int r = static_cast<int>(op.resource);
    if (op.resource == OpResource::kCopyD2H &&
        rg.topo.devices[op.device].copy_engines == CopyEngines::kSingle) {
      r = static_cast<int>(OpResource::kCopyH2D);
    }
    return op.device * 3 + r;
  };
  for (int i = 0; i < rg.graph.size(); ++i) {
    for (int j = i + 1; j < rg.graph.size(); ++j) {
      if (lane_of(i) != lane_of(j)) continue;
      const bool disjoint = res.times[i].end_ms <= res.times[j].start_ms + 1e-9 ||
                            res.times[j].end_ms <= res.times[i].start_ms + 1e-9;
      EXPECT_TRUE(disjoint) << "ops " << i << " and " << j
                            << " overlap on one lane";
    }
  }

  // Makespan bounds: >= critical path (longest dep chain), <= serial sum.
  std::vector<double> finish(static_cast<std::size_t>(rg.graph.size()), 0.0);
  double critical = 0.0;
  for (int i = 0; i < rg.graph.size(); ++i) {
    double ready = 0.0;
    for (int d : ops[i].deps) ready = std::max(ready, finish[d]);
    finish[i] = ready + ops[i].virtual_ms;
    critical = std::max(critical, finish[i]);
  }
  EXPECT_GE(res.makespan_ms, critical - 1e-9);
  EXPECT_LE(res.makespan_ms, serial_sum + 1e-9);
}

TEST_P(DesProperty, RealExecutorHonoursSameOrderingConstraints) {
  // Zero-work real execution must still respect causality and lane order
  // (times are wall-clock so only ordering is checked, not durations).
  const RandomGraph rg = make_random_graph(static_cast<u64>(GetParam()) * 13 + 1);
  const ExecutionResult res = execute_real(rg.graph, rg.topo);
  const auto& ops = rg.graph.ops();
  for (int i = 0; i < rg.graph.size(); ++i) {
    for (int d : ops[i].deps) {
      EXPECT_GE(res.times[i].start_ms, res.times[d].end_ms - 1e-6);
    }
  }
}

TEST_P(DesProperty, InducedDeviceSubgraphNeverFinishesLater) {
  // Pool-partition monotonicity, the DES property under the encode
  // service's virtual accounting: take any device partition, keep only one
  // group's ops (cross-group deps dropped, per-lane FIFO order kept), and
  // every surviving op ends no later than it did in the full contended
  // run. Removing competing work can only help.
  const RandomGraph rg = make_random_graph(static_cast<u64>(GetParam()) * 5 + 2);
  const ExecutionResult full = execute_virtual(rg.graph, rg.topo);
  const auto& ops = rg.graph.ops();

  Rng rng(static_cast<u64>(GetParam()) * 31 + 7);
  std::vector<int> group(static_cast<std::size_t>(rg.topo.num_devices()));
  for (auto& g : group) g = static_cast<int>(rng.uniform_int(0, 1));

  for (int which = 0; which < 2; ++which) {
    // Induced subgraph of this device group, preserving relative op order
    // (so per-lane FIFO ranks are unchanged among survivors).
    OpGraph induced;
    std::vector<int> remap(static_cast<std::size_t>(rg.graph.size()), -1);
    std::vector<int> back;
    for (int i = 0; i < rg.graph.size(); ++i) {
      if (group[static_cast<std::size_t>(ops[i].device)] != which) continue;
      Op op;
      op.device = ops[i].device;
      op.resource = ops[i].resource;
      op.virtual_ms = ops[i].virtual_ms;
      op.label = ops[i].label;
      for (int d : ops[i].deps) {
        if (remap[static_cast<std::size_t>(d)] >= 0) {
          op.deps.push_back(remap[static_cast<std::size_t>(d)]);
        }
      }
      remap[static_cast<std::size_t>(i)] = induced.size();
      back.push_back(i);
      induced.add(std::move(op));
    }
    if (induced.size() == 0) continue;
    const ExecutionResult part = execute_virtual(induced, rg.topo);
    for (int j = 0; j < induced.size(); ++j) {
      EXPECT_LE(part.times[j].end_ms,
                full.times[back[static_cast<std::size_t>(j)]].end_ms + 1e-9)
          << "op " << back[static_cast<std::size_t>(j)]
          << " finished later without the other group's load";
    }
    EXPECT_LE(part.makespan_ms, full.makespan_ms + 1e-9);
  }
}

TEST_P(DesProperty, PartitionedPoolMakespansSumAboveFullPool) {
  // The service-level version of the same property, through the framework:
  // for any partition of the pool into device groups, running the frame
  // workload once per group (the balancer confined to that group via
  // FrameGrant) costs at least as much total virtual time as one run over
  // the full pool — splitting a pool never creates throughput.
  Rng rng(static_cast<u64>(GetParam()) * 17 + 5);
  PlatformTopology topo;
  topo.devices.push_back(preset_cpu_nehalem());
  const int accels = 2 + static_cast<int>(rng.uniform_int(0, 2));
  for (int i = 0; i < accels; ++i) {
    auto g = preset_gpu_fermi();
    g.name = "GPU#" + std::to_string(i);
    topo.devices.push_back(g);
  }
  EncoderConfig cfg;
  cfg.width = 1280;
  cfg.height = 720;
  cfg.search_range = 8;
  cfg.num_ref_frames = 1;
  const int kFrames = 4;

  auto virtual_total_ms = [&](const std::vector<bool>* devices) {
    VirtualFramework fw(cfg, topo);
    double total = 0.0;
    for (int f = 0; f < kFrames; ++f) {
      FrameGrant grant;
      grant.devices = devices;
      total += fw.encode_frame(grant).total_ms;
    }
    return total;
  };

  const double full_ms = virtual_total_ms(nullptr);

  // Random 2-partition with both sides nonempty.
  const int n = topo.num_devices();
  std::vector<bool> side_a(static_cast<std::size_t>(n), false);
  do {
    for (int i = 0; i < n; ++i) {
      side_a[static_cast<std::size_t>(i)] = rng.uniform01() < 0.5;
    }
  } while (std::count(side_a.begin(), side_a.end(), true) == 0 ||
           std::count(side_a.begin(), side_a.end(), true) == n);
  std::vector<bool> side_b(static_cast<std::size_t>(n), false);
  for (int i = 0; i < n; ++i) {
    side_b[static_cast<std::size_t>(i)] = !side_a[static_cast<std::size_t>(i)];
  }

  const double sum_ms = virtual_total_ms(&side_a) + virtual_total_ms(&side_b);
  EXPECT_GE(sum_ms, full_ms - 1e-6)
      << "two pool shares outran the full pool on the same workload";
}

TEST_P(DesProperty, ArbiterAccountingSurvivesAbortRestartChurn) {
  // Fairness-accounting property over the encode service's pool arbiter:
  // any sequence of acquire / release / abandoned-grant (the exception
  // unwind path) / abort / retire / admit must keep the virtual clocks
  // monotone (per-device busy horizons, the makespan, and each session's
  // cumulative service never run backwards) and, once the churn quiesces,
  // return the free set to the whole pool with no live or queued residue.
  Rng rng(static_cast<u64>(GetParam()) * 101 + 13);
  const int ndev = 2 + static_cast<int>(rng.uniform_int(0, 3));
  ArbiterOptions opts;
  opts.max_sessions = 3;
  opts.admission_queue = 2;
  PoolArbiter arb(ndev, opts);
  const std::vector<bool> usable(static_cast<std::size_t>(ndev), true);

  // `live` holds sessions known to hold a live share (safe to acquire on
  // without blocking); `parked` holds ones admitted into the queue — they
  // may be promoted behind our back, so we never acquire on them, only
  // retire them during teardown.
  std::vector<int> live;
  std::vector<int> parked;
  auto admit_one = [&]() {
    const int before = arb.live_sessions();
    const int id = arb.admit(rng.uniform_real(0.5, 3.0));
    if (id < 0) return;  // refused: queue full and weight not higher
    if (arb.live_sessions() > before) {
      live.push_back(id);
    } else {
      parked.push_back(id);
    }
  };
  for (int i = 0; i < opts.max_sessions; ++i) admit_one();
  ASSERT_EQ(static_cast<int>(live.size()), opts.max_sessions);

  std::vector<double> busy_floor(static_cast<std::size_t>(ndev), 0.0);
  std::vector<double> vend_floor(64, 0.0);
  double makespan_floor = 0.0;
  auto check_monotone = [&](int id) {
    const auto busy = arb.device_busy_ms();
    for (int d = 0; d < ndev; ++d) {
      EXPECT_GE(busy[static_cast<std::size_t>(d)],
                busy_floor[static_cast<std::size_t>(d)] - 1e-9)
          << "device " << d << " virtual clock ran backwards";
      busy_floor[static_cast<std::size_t>(d)] =
          busy[static_cast<std::size_t>(d)];
    }
    EXPECT_GE(arb.makespan_ms(), makespan_floor - 1e-9);
    makespan_floor = arb.makespan_ms();
    const auto st = arb.session_stats(id);
    EXPECT_GE(st.virtual_end_ms, vend_floor[static_cast<std::size_t>(id)] - 1e-9)
        << "session " << id << " virtual end time ran backwards";
    vend_floor[static_cast<std::size_t>(id)] = st.virtual_end_ms;
    EXPECT_GE(st.granted_device_ms, st.used_device_ms - 1e-9)
        << "session " << id << " used more device time than it was granted";
  };

  const int steps = 40 + static_cast<int>(rng.uniform_int(0, 40));
  for (int step = 0; step < steps && !live.empty(); ++step) {
    const std::size_t pick =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<i64>(live.size()) - 1));
    const int id = live[pick];
    const double r = rng.uniform01();
    if (r < 0.10) {
      // Abort-then-restart: the aborted acquire must return immediately
      // (nullopt, attributed), never hang; the slot then retires and a
      // fresh admission takes its place.
      arb.abort(id);
      AcquireOutcome out = AcquireOutcome::kGranted;
      auto g = arb.acquire(id, usable, &out);
      EXPECT_FALSE(g.has_value());
      EXPECT_EQ(out, AcquireOutcome::kAborted);
      arb.retire(id);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      admit_one();
    } else if (r < 0.18) {
      arb.retire(id);  // promotion path: a queued session may go live
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      AcquireOutcome out = AcquireOutcome::kShutdown;
      auto g = arb.acquire(id, usable, &out);
      ASSERT_TRUE(g.has_value());
      EXPECT_EQ(out, AcquireOutcome::kGranted);
      EXPECT_GT(g->num_devices, 0);
      EXPECT_LE(g->num_devices, ndev);
      const double r2 = rng.uniform01();
      if (r2 < 0.25) {
        g.reset();  // abandoned grant: exception unwind must leak nothing
      } else {
        const int used =
            static_cast<int>(rng.uniform_int(1, g->num_devices));
        arb.release(id, std::move(*g), rng.uniform_real(0.5, 4.0), used,
                    /*completed=*/r2 < 0.85);
      }
      // Single-threaded, so every grant round-trips within the step: the
      // free set must be whole again either way the grant ended.
      EXPECT_EQ(arb.free_devices(), ndev);
    }
    check_monotone(id);
  }

  // Quiesce: retire everything (idempotent, queued or live) and verify no
  // accounting residue survives the churn.
  for (int id : live) arb.retire(id);
  for (int id : parked) arb.retire(id);
  EXPECT_EQ(arb.live_sessions(), 0);
  EXPECT_EQ(arb.queued_sessions(), 0);
  EXPECT_EQ(arb.free_devices(), ndev);
}

TEST_P(DesProperty, ArbiterSurvivesNodeBlockRevocationChurn) {
  // Node-revocation property, mirroring the cluster tier's failure view:
  // a worker node owns a contiguous block of the device pool, and node
  // death revokes that whole block from every session's usable mask at
  // once — possibly while a grant spanning it is in flight. The arbiter
  // must (a) never grant a revoked device once the mask says so, (b) hand
  // every granted device back to the free set no matter whether the grant
  // is released or abandoned mid-revocation, and (c) keep serving waiters
  // from the surviving devices — a starved acquire() here shows up as a
  // hang, which the suite's ctest TIMEOUT turns into a failure.
  Rng rng(static_cast<u64>(GetParam()) * 211 + 29);
  const int ndev = 4 + static_cast<int>(rng.uniform_int(0, 4));
  ArbiterOptions opts;
  opts.max_sessions = 3;
  PoolArbiter arb(ndev, opts);
  std::vector<bool> usable(static_cast<std::size_t>(ndev), true);

  std::vector<int> live;
  for (int i = 0; i < opts.max_sessions; ++i) {
    const int id = arb.admit(rng.uniform_real(0.5, 3.0));
    ASSERT_GE(id, 0);
    live.push_back(id);
  }

  auto expect_grant_within_usable = [&](const PoolArbiter::Grant& g) {
    const std::vector<bool>& mask = g.lease.mask();
    int granted = 0;
    for (int d = 0; d < ndev; ++d) {
      if (!mask[static_cast<std::size_t>(d)]) continue;
      EXPECT_TRUE(usable[static_cast<std::size_t>(d)])
          << "device " << d << " granted after its node block was revoked";
      ++granted;
    }
    EXPECT_EQ(granted, g.num_devices);
  };

  // The revoked block, if any: [lo, hi). Always leaves >= 1 usable device
  // so acquire() keeps its no-devices-at-all precondition.
  int block_lo = -1;
  int block_hi = -1;
  auto revoke_block = [&]() {
    const int size = 1 + static_cast<int>(rng.uniform_int(0, ndev - 2));
    block_lo = static_cast<int>(rng.uniform_int(0, ndev - size));
    block_hi = block_lo + size;
    for (int d = block_lo; d < block_hi; ++d) {
      usable[static_cast<std::size_t>(d)] = false;
    }
  };
  auto restore_block = [&]() {
    for (int d = block_lo; d < block_hi; ++d) {
      usable[static_cast<std::size_t>(d)] = true;
    }
    block_lo = block_hi = -1;
  };

  const int steps = 40 + static_cast<int>(rng.uniform_int(0, 40));
  for (int step = 0; step < steps; ++step) {
    const std::size_t pick = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<i64>(live.size()) - 1));
    const int id = live[pick];
    const double r = rng.uniform01();
    if (block_lo < 0 && r < 0.30) {
      // Mid-grant revocation: take a grant under the full mask, then kill
      // the node block while the grant is outstanding. Whichever way the
      // grant ends — clean release or the holder dying with it (RAII
      // abandon) — the revoked devices must come back to the free set;
      // they are gone from `usable`, not from the pool.
      AcquireOutcome out = AcquireOutcome::kShutdown;
      auto g = arb.acquire(id, usable, &out);
      ASSERT_TRUE(g.has_value());
      expect_grant_within_usable(*g);
      revoke_block();
      if (rng.uniform01() < 0.5) {
        g.reset();  // node died holding the grant
      } else {
        const int used = static_cast<int>(rng.uniform_int(1, g->num_devices));
        arb.release(id, std::move(*g), rng.uniform_real(0.5, 4.0), used);
      }
      EXPECT_EQ(arb.free_devices(), ndev)
          << "revocation leaked devices out of the free set";
    } else if (block_lo >= 0 && r < 0.30) {
      restore_block();  // node rejoined: its block is grantable again
    } else {
      // Survivor-side traffic: with the block revoked this must still be
      // served promptly from the remaining devices, and never touch the
      // revoked range.
      AcquireOutcome out = AcquireOutcome::kShutdown;
      auto g = arb.acquire(id, usable, &out);
      ASSERT_TRUE(g.has_value());
      EXPECT_EQ(out, AcquireOutcome::kGranted);
      EXPECT_GE(g->num_devices, 1);
      expect_grant_within_usable(*g);
      const int used = static_cast<int>(rng.uniform_int(1, g->num_devices));
      arb.release(id, std::move(*g), rng.uniform_real(0.5, 4.0), used);
      EXPECT_EQ(arb.free_devices(), ndev);
    }
  }

  // Drain: restore the block (if down), retire everything, and the free
  // set must equal the whole pool with no session residue.
  if (block_lo >= 0) restore_block();
  for (int id : live) arb.retire(id);
  EXPECT_EQ(arb.live_sessions(), 0);
  EXPECT_EQ(arb.queued_sessions(), 0);
  EXPECT_EQ(arb.free_devices(), ndev);
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, DesProperty, ::testing::Range(0, 25));

}  // namespace
}  // namespace feves
