// Device pool + lease mechanics: mutual exclusion of reservations, the
// blocking/non-blocking acquisition paths, lease RAII, and the executors'
// lease enforcement (an op graph touching a device outside the session's
// lease is refused up front — the wall between concurrent sessions).
#include "platform/pool.hpp"

#include "platform/op_graph.hpp"
#include "platform/presets.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace feves {
namespace {

std::vector<bool> mask_of(int n, std::initializer_list<int> devices) {
  std::vector<bool> m(static_cast<std::size_t>(n), false);
  for (int d : devices) m[static_cast<std::size_t>(d)] = true;
  return m;
}

TEST(DevicePool, TryReserveIsMutuallyExclusive) {
  DevicePool pool(4);
  auto first = pool.try_reserve(mask_of(4, {0, 1}));
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(pool.num_free(), 2);

  // Overlapping request: all-or-nothing refusal, even though device 2 is
  // free.
  EXPECT_FALSE(pool.try_reserve(mask_of(4, {1, 2})).has_value());
  // Disjoint request: granted.
  auto second = pool.try_reserve(mask_of(4, {2, 3}));
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(pool.num_free(), 0);

  first->release();
  EXPECT_EQ(pool.num_free(), 2);
  const auto free = pool.free_mask();
  EXPECT_TRUE(free[0] && free[1]);
  EXPECT_FALSE(free[2] || free[3]);
}

TEST(DevicePool, ReserveBlocksUntilConflictReleased) {
  DevicePool pool(2);
  auto held = pool.try_reserve(mask_of(2, {0, 1}));
  ASSERT_TRUE(held.has_value());

  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    DeviceLease lease = pool.reserve(mask_of(2, {1}));
    acquired.store(true);
    lease.release();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(acquired.load()) << "reserve must block while device 1 held";
  held->release();
  waiter.join();
  EXPECT_TRUE(acquired.load());
  EXPECT_EQ(pool.num_free(), 2);
}

TEST(DeviceLease, RaiiReleasesOnDestruction) {
  DevicePool pool(3);
  {
    auto lease = pool.try_reserve(mask_of(3, {0, 2}));
    ASSERT_TRUE(lease.has_value());
    EXPECT_TRUE(lease->active());
    EXPECT_TRUE(lease->covers(0));
    EXPECT_FALSE(lease->covers(1));
    EXPECT_EQ(lease->num_devices(), 2);
    EXPECT_EQ(pool.num_free(), 1);
  }
  EXPECT_EQ(pool.num_free(), 3);
}

TEST(DeviceLease, MoveTransfersOwnershipAndReleaseIsIdempotent) {
  DevicePool pool(2);
  auto a = pool.try_reserve(mask_of(2, {0}));
  ASSERT_TRUE(a.has_value());
  DeviceLease b = std::move(*a);
  EXPECT_FALSE(a->active());
  EXPECT_TRUE(b.active());
  EXPECT_EQ(pool.num_free(), 1);
  b.release();
  b.release();  // second release: no-op, no double-free check fired
  EXPECT_FALSE(b.active());
  EXPECT_EQ(pool.num_free(), 2);
}

// ---- Executor lease enforcement -------------------------------------------

PlatformTopology three_device_topo() {
  PlatformTopology t;
  t.devices.push_back(preset_cpu_nehalem());
  t.devices.push_back(preset_gpu_fermi());
  auto g = preset_gpu_fermi();
  g.name = "GPU#1";
  t.devices.push_back(g);
  return t;
}

OpGraph two_device_graph() {
  OpGraph g;
  Op a;
  a.device = 0;
  a.virtual_ms = 1.0;
  a.label = "host";
  g.add(std::move(a));
  Op b;
  b.device = 2;
  b.virtual_ms = 1.0;
  b.deps = {0};
  b.label = "gpu1";
  g.add(std::move(b));
  return g;
}

TEST(OpGraphLease, ExecutorsRejectOpsOutsideTheLease) {
  const PlatformTopology topo = three_device_topo();
  const OpGraph graph = two_device_graph();
  DevicePool pool(3);
  auto lease = pool.try_reserve(mask_of(3, {0, 1}));  // device 2 NOT covered
  ASSERT_TRUE(lease.has_value());

  ExecuteOptions opts;
  opts.lease = &*lease;
  EXPECT_THROW(execute_virtual(graph, topo, opts), Error);
  EXPECT_THROW(execute_real(graph, topo, opts), Error);
}

TEST(OpGraphLease, CoveringLeasePassesAndReleasedLeaseFails) {
  const PlatformTopology topo = three_device_topo();
  const OpGraph graph = two_device_graph();
  DevicePool pool(3);
  auto lease = pool.try_reserve(mask_of(3, {0, 2}));
  ASSERT_TRUE(lease.has_value());

  ExecuteOptions opts;
  opts.lease = &*lease;
  const ExecutionResult res = execute_virtual(graph, topo, opts);
  EXPECT_GT(res.makespan_ms, 0.0);

  lease->release();
  EXPECT_THROW(execute_virtual(graph, topo, opts), Error)
      << "a released lease must not authorize execution";
}

TEST(OpGraphLease, NullLeaseMeansSingleTenantFullAccess) {
  const PlatformTopology topo = three_device_topo();
  const OpGraph graph = two_device_graph();
  const ExecutionResult res = execute_virtual(graph, topo);
  EXPECT_GT(res.makespan_ms, 0.0);
}

}  // namespace
}  // namespace feves
