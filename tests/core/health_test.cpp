// DeviceHealthMonitor state machine: quarantine on consecutive failures,
// probation after the window elapses, re-admission after clean frames, and
// exponential backoff for devices that keep failing their probes.
#include "core/health.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace feves {
namespace {

HealthOptions fast_opts() {
  HealthOptions o;
  o.failure_threshold = 2;
  o.quarantine_frames = 3;
  o.probation_clean_frames = 2;
  o.quarantine_backoff = 2.0;
  o.max_quarantine_frames = 8;
  return o;
}

TEST(DeviceHealthMonitor, StartsFullyActive) {
  DeviceHealthMonitor m(3, fast_opts());
  EXPECT_EQ(m.num_schedulable(), 3);
  EXPECT_EQ(m.active_mask(), std::vector<bool>({true, true, true}));
  for (int i = 0; i < 3; ++i) EXPECT_EQ(m.state(i), DeviceHealth::kActive);
}

TEST(DeviceHealthMonitor, SuccessResetsTheFailureStreak) {
  DeviceHealthMonitor m(1, fast_opts());
  EXPECT_FALSE(m.record_failure(0));  // streak 1 < threshold 2
  m.record_success(0);                // streak cleared
  EXPECT_FALSE(m.record_failure(0));  // streak back to 1
  EXPECT_EQ(m.state(0), DeviceHealth::kActive);
  EXPECT_TRUE(m.record_failure(0));   // streak 2: quarantined
  EXPECT_EQ(m.state(0), DeviceHealth::kQuarantined);
  EXPECT_FALSE(m.schedulable(0));
}

TEST(DeviceHealthMonitor, QuarantineWindowLeadsToProbation) {
  DeviceHealthMonitor m(2, fast_opts());
  m.record_failure(1);
  EXPECT_TRUE(m.record_failure(1));
  EXPECT_EQ(m.num_schedulable(), 1);

  EXPECT_TRUE(m.end_frame().empty());  // 2 frames left
  EXPECT_TRUE(m.end_frame().empty());  // 1 frame left
  const auto promoted = m.end_frame();
  ASSERT_EQ(promoted, std::vector<int>{1});
  EXPECT_EQ(m.state(1), DeviceHealth::kProbation);
  EXPECT_TRUE(m.schedulable(1));  // probing: gets load again
}

TEST(DeviceHealthMonitor, CleanProbationFramesReadmit) {
  DeviceHealthMonitor m(1, fast_opts());
  m.record_failure(0);
  m.record_failure(0);
  for (int i = 0; i < 3; ++i) m.end_frame();
  ASSERT_EQ(m.state(0), DeviceHealth::kProbation);
  m.record_success(0);
  EXPECT_EQ(m.state(0), DeviceHealth::kProbation);  // 1 of 2 clean frames
  m.record_success(0);
  EXPECT_EQ(m.state(0), DeviceHealth::kActive);     // fully re-admitted
}

/// Drives the monitor until device 0 reaches probation, returning how many
/// end_frame ticks the quarantine lasted.
int quarantine_length(DeviceHealthMonitor& m) {
  int ticks = 0;
  while (m.state(0) == DeviceHealth::kQuarantined) {
    m.end_frame();
    ++ticks;
    EXPECT_LT(ticks, 100);
  }
  return ticks;
}

TEST(DeviceHealthMonitor, ProbationFailureRequarantinesWithBackoff) {
  DeviceHealthMonitor m(1, fast_opts());
  m.record_failure(0);
  m.record_failure(0);
  EXPECT_EQ(quarantine_length(m), 3);  // initial window

  // One failed probe suffices — no threshold in probation — and the window
  // doubles.
  EXPECT_TRUE(m.record_failure(0));
  EXPECT_EQ(m.state(0), DeviceHealth::kQuarantined);
  EXPECT_EQ(quarantine_length(m), 6);

  // Next failure hits the ceiling (2 * 6 = 12 > max 8).
  EXPECT_TRUE(m.record_failure(0));
  EXPECT_EQ(quarantine_length(m), 8);
  EXPECT_TRUE(m.record_failure(0));
  EXPECT_EQ(quarantine_length(m), 8);  // capped, not growing further
}

TEST(DeviceHealthMonitor, FullRecoveryResetsTheBackoff) {
  DeviceHealthMonitor m(1, fast_opts());
  m.record_failure(0);
  m.record_failure(0);
  quarantine_length(m);
  m.record_failure(0);              // failed probe: window now 6
  quarantine_length(m);
  m.record_success(0);
  m.record_success(0);              // re-admitted
  ASSERT_EQ(m.state(0), DeviceHealth::kActive);

  // A fresh fault starts from the initial window again.
  m.record_failure(0);
  m.record_failure(0);
  EXPECT_EQ(quarantine_length(m), 3);
}

TEST(DeviceHealthMonitor, FailuresWhileQuarantinedAreIgnored) {
  DeviceHealthMonitor m(1, fast_opts());
  m.record_failure(0);
  m.record_failure(0);
  ASSERT_EQ(m.state(0), DeviceHealth::kQuarantined);
  EXPECT_FALSE(m.record_failure(0));  // no double-quarantine
  EXPECT_EQ(quarantine_length(m), 3); // window unchanged
}

TEST(DeviceHealthMonitor, EndFrameTouchesOnlyQuarantinedDevices) {
  DeviceHealthMonitor m(3, fast_opts());
  m.record_failure(2);
  m.record_failure(2);
  for (int f = 0; f < 3; ++f) {
    for (int d : m.end_frame()) EXPECT_EQ(d, 2);
  }
  EXPECT_EQ(m.state(0), DeviceHealth::kActive);
  EXPECT_EQ(m.state(1), DeviceHealth::kActive);
  EXPECT_EQ(m.state(2), DeviceHealth::kProbation);
}

}  // namespace
}  // namespace feves
