#include "core/data_access.hpp"

#include "common/rng.hpp"
#include "platform/presets.hpp"
#include "sched/load_balancer.hpp"

#include <gtest/gtest.h>

#include <set>

namespace feves {
namespace {

EncoderConfig hd_config() {
  EncoderConfig cfg;
  cfg.search_range = 16;
  cfg.num_ref_frames = 2;
  return cfg;
}

Distribution manual_dist(std::vector<int> me, std::vector<int> l,
                         std::vector<int> s, int rstar,
                         const EncoderConfig& cfg,
                         const PlatformTopology& topo) {
  Distribution d;
  d.me = std::move(me);
  d.intp = std::move(l);
  d.sme = std::move(s);
  const int n = d.num_devices();
  d.delta_m.assign(n, 0);
  d.delta_l.assign(n, 0);
  d.sigma.assign(n, 0);
  d.sigma_r.assign(n, 0);
  d.rstar_device = rstar;
  // Make σ "everything fits" so plans complete in-frame by default.
  const auto l_iv = intervals_of(d.intp);
  const auto s_iv = intervals_of(d.sme);
  const int halo = sme_sf_halo_rows(cfg);
  const int rows = cfg.num_mb_rows();
  for (int i = 0; i < n; ++i) {
    if (!topo.devices[i].is_accelerator()) continue;
    int dl = 0;
    for (const auto& f :
         interval_difference(halo_extend(s_iv[i], halo, rows), l_iv[i])) {
      dl += f.length();
    }
    d.delta_l[i] = dl;
    d.delta_m[i] = interval_difference_rows(s_iv[i], intervals_of(d.me)[i]);
    if (i != rstar) d.sigma[i] = rows - d.intp[i] - dl;
  }
  return d;
}

std::set<int> rows_of(const std::vector<RowInterval>& frags) {
  std::set<int> out;
  for (const auto& f : frags) {
    for (int r = f.begin; r < f.end; ++r) out.insert(r);
  }
  return out;
}

TEST(SubtractAll, FragmentsAndClipping) {
  auto frags = subtract_all({0, 10}, {{3, 5}, {7, 8}});
  ASSERT_EQ(frags.size(), 3u);
  EXPECT_EQ(frags[0].begin, 0);
  EXPECT_EQ(frags[0].end, 3);
  EXPECT_EQ(frags[1].begin, 5);
  EXPECT_EQ(frags[1].end, 7);
  EXPECT_EQ(frags[2].begin, 8);
  EXPECT_EQ(frags[2].end, 10);
  EXPECT_TRUE(subtract_all({2, 6}, {{0, 10}}).empty());
  EXPECT_EQ(subtract_all({0, 4}, {}).size(), 1u);
}

TEST(DataAccess, CfCoverageForSme) {
  // The device's CF must cover its SME slice exactly: local ME slice plus
  // the ∆m fragments, no overlap, no gap.
  const auto cfg = hd_config();
  const auto topo = make_sys_hk();
  DataAccessManagement dam(cfg, topo);
  const auto d =
      manual_dist({20, 48}, {50, 18}, {40, 28}, /*rstar=*/1, cfg, topo);
  const auto plans = dam.plan_frame(d, /*rf_holder=*/0, /*num_refs=*/1);

  const auto s_iv = intervals_of(d.sme);
  const auto me_iv = intervals_of(d.me);
  const TransferPlan& p = plans[1];
  std::set<int> cf = rows_of(p.cf_sme);
  for (int r = me_iv[1].begin; r < me_iv[1].end; ++r) {
    EXPECT_TRUE(cf.insert(r).second) << "row " << r << " transferred twice";
  }
  for (int r = s_iv[1].begin; r < s_iv[1].end; ++r) {
    EXPECT_TRUE(cf.count(r)) << "SME row " << r << " has no CF";
  }
}

TEST(DataAccess, SfCoverageIncludesHalo) {
  const auto cfg = hd_config();
  const auto topo = make_sys_hk();
  DataAccessManagement dam(cfg, topo);
  const auto d = manual_dist({20, 48}, {50, 18}, {40, 28}, 1, cfg, topo);
  const auto plans = dam.plan_frame(d, 0, 1);

  const auto s_iv = intervals_of(d.sme);
  const auto l_iv = intervals_of(d.intp);
  const int halo = sme_sf_halo_rows(cfg);
  const TransferPlan& p = plans[1];

  std::set<int> sf = rows_of(p.sf_sme);
  for (int r = l_iv[1].begin; r < l_iv[1].end; ++r) {
    EXPECT_TRUE(sf.insert(r).second) << "SF row " << r << " transferred twice";
  }
  const auto need = halo_extend(s_iv[1], halo, cfg.num_mb_rows());
  for (int r = need.begin; r < need.end; ++r) {
    EXPECT_TRUE(sf.count(r)) << "needed SF row " << r << " missing";
  }
}

TEST(DataAccess, SfCompletionPartitionsRemainder) {
  const auto cfg = hd_config();
  const auto topo = make_sys_nff();
  DataAccessManagement dam(cfg, topo);
  auto d = manual_dist({8, 30, 30}, {40, 14, 14}, {20, 24, 24}, 1, cfg, topo);
  // Give device 2 a tight σ budget: force deferral.
  d.sigma[2] = 5;
  const auto plans = dam.plan_frame(d, 0, 2);
  const TransferPlan& p = plans[2];

  // On-device rows (l + ∆l) + σ + σ^r == whole frame, disjointly.
  std::set<int> all = rows_of(p.sf_sme);
  const auto l_iv = intervals_of(d.intp);
  for (int r = l_iv[2].begin; r < l_iv[2].end; ++r) {
    EXPECT_TRUE(all.insert(r).second);
  }
  for (const auto& frag : p.sf_complete) {
    for (int r = frag.begin; r < frag.end; ++r) {
      EXPECT_TRUE(all.insert(r).second) << "σ row " << r << " duplicated";
    }
  }
  for (const auto& frag : p.sf_deferred) {
    for (int r = frag.begin; r < frag.end; ++r) {
      EXPECT_TRUE(all.insert(r).second) << "σ^r row " << r << " duplicated";
    }
  }
  EXPECT_EQ(static_cast<int>(all.size()), cfg.num_mb_rows());
  EXPECT_EQ(TransferPlan::rows_of(p.sf_complete), 5);

  // The deferred fragments must surface as next frame's carry.
  EXPECT_EQ(dam.deferred_rows()[2], TransferPlan::rows_of(p.sf_deferred));
  const auto d2 = manual_dist({8, 30, 30}, {40, 14, 14}, {20, 24, 24}, 1,
                              cfg, topo);
  const auto plans2 = dam.plan_frame(d2, 1, 2);
  EXPECT_EQ(TransferPlan::rows_of(plans2[2].sf_carry),
            TransferPlan::rows_of(p.sf_deferred));
}

TEST(DataAccess, RstarDeviceReceivesEverything) {
  const auto cfg = hd_config();
  const auto topo = make_sys_hk();
  DataAccessManagement dam(cfg, topo);
  const auto d = manual_dist({20, 48}, {50, 18}, {40, 28}, 1, cfg, topo);
  const auto plans = dam.plan_frame(d, 0, 1);
  const TransferPlan& p = plans[1];

  // CF: me + ∆m + mc = all rows.
  std::set<int> cf = rows_of(p.cf_sme);
  for (int r = p.cf_me.begin; r < p.cf_me.end; ++r) EXPECT_TRUE(cf.insert(r).second);
  for (const auto& f : p.cf_mc) {
    for (int r = f.begin; r < f.end; ++r) EXPECT_TRUE(cf.insert(r).second);
  }
  EXPECT_EQ(static_cast<int>(cf.size()), cfg.num_mb_rows());

  // SF: l + ∆l + mc = all rows.
  std::set<int> sf = rows_of(p.sf_sme);
  const auto l_iv = intervals_of(d.intp);
  for (int r = l_iv[1].begin; r < l_iv[1].end; ++r) EXPECT_TRUE(sf.insert(r).second);
  for (const auto& f : p.sf_mc) {
    for (int r = f.begin; r < f.end; ++r) EXPECT_TRUE(sf.insert(r).second);
  }
  EXPECT_EQ(static_cast<int>(sf.size()), cfg.num_mb_rows());

  // MVs: its own SME slice plus mv_mc = all rows.
  std::set<int> mv;
  const auto s_iv = intervals_of(d.sme);
  for (int r = s_iv[1].begin; r < s_iv[1].end; ++r) mv.insert(r);
  for (const auto& f : p.mv_mc) {
    for (int r = f.begin; r < f.end; ++r) EXPECT_TRUE(mv.insert(r).second);
  }
  EXPECT_EQ(static_cast<int>(mv.size()), cfg.num_mb_rows());

  // The R* device defers nothing.
  EXPECT_TRUE(p.sf_deferred.empty());
}

TEST(DataAccess, CpuDeviceNeedsNoTransfers) {
  const auto cfg = hd_config();
  const auto topo = make_sys_hk();
  DataAccessManagement dam(cfg, topo);
  const auto d = manual_dist({20, 48}, {50, 18}, {40, 28}, 1, cfg, topo);
  const auto plans = dam.plan_frame(d, 0, 1);
  const TransferPlan& p = plans[0];
  EXPECT_FALSE(p.fetch_rf);
  EXPECT_TRUE(p.cf_sme.empty());
  EXPECT_TRUE(p.sf_sme.empty());
  EXPECT_TRUE(p.sf_complete.empty());
}

TEST(DataAccess, RfFetchSkippedForHolder) {
  const auto cfg = hd_config();
  const auto topo = make_sys_nff();
  DataAccessManagement dam(cfg, topo);
  const auto d = manual_dist({8, 30, 30}, {40, 14, 14}, {20, 24, 24}, 1, cfg,
                             topo);
  const auto plans = dam.plan_frame(d, /*rf_holder=*/1, 1);
  EXPECT_FALSE(plans[1].fetch_rf);
  EXPECT_TRUE(plans[2].fetch_rf);
}

/// Property sweep over random distributions: coverage + no-double-transfer
/// for every device and buffer.
class DataAccessRandom : public ::testing::TestWithParam<int> {};

TEST_P(DataAccessRandom, CoverageInvariants) {
  Rng rng(static_cast<u64>(GetParam()) * 6151 + 3);
  EncoderConfig cfg = hd_config();
  cfg.search_range = 8 << rng.uniform_int(0, 2);
  const auto topo = make_sys_nff();
  const int rows = cfg.num_mb_rows();

  auto random_split = [&] {
    std::vector<double> cuts = {0.0, rng.uniform01(), rng.uniform01(), 1.0};
    std::sort(cuts.begin(), cuts.end());
    return std::vector<int>{
        static_cast<int>(cuts[1] * rows) - 0,
        static_cast<int>(cuts[2] * rows) - static_cast<int>(cuts[1] * rows),
        rows - static_cast<int>(cuts[2] * rows)};
  };

  DataAccessManagement dam(cfg, topo);
  const auto d = manual_dist(random_split(), random_split(), random_split(),
                             1 + static_cast<int>(rng.uniform_int(0, 1)), cfg,
                             topo);
  const auto plans = dam.plan_frame(d, 0, 2);
  const auto s_iv = intervals_of(d.sme);
  const auto me_iv = intervals_of(d.me);
  const auto l_iv = intervals_of(d.intp);
  const int halo = sme_sf_halo_rows(cfg);

  for (int i = 1; i < 3; ++i) {
    const TransferPlan& p = plans[i];
    // CF coverage of the SME slice, disjoint.
    std::set<int> cf = rows_of(p.cf_sme);
    for (int r = me_iv[i].begin; r < me_iv[i].end; ++r) {
      EXPECT_TRUE(cf.insert(r).second);
    }
    for (int r = s_iv[i].begin; r < s_iv[i].end; ++r) EXPECT_TRUE(cf.count(r));

    // SF coverage of halo-extended SME slice, disjoint.
    std::set<int> sf = rows_of(p.sf_sme);
    for (int r = l_iv[i].begin; r < l_iv[i].end; ++r) {
      EXPECT_TRUE(sf.insert(r).second);
    }
    const auto need = halo_extend(s_iv[i], halo, rows);
    for (int r = need.begin; r < need.end; ++r) EXPECT_TRUE(sf.count(r));

    // Full SF accounted once across l/∆l/σ/σ^r (non-R* accelerators).
    if (i != d.rstar_device) {
      for (const auto& f : p.sf_complete) {
        for (int r = f.begin; r < f.end; ++r) EXPECT_TRUE(sf.insert(r).second);
      }
      for (const auto& f : p.sf_deferred) {
        for (int r = f.begin; r < f.end; ++r) EXPECT_TRUE(sf.insert(r).second);
      }
      EXPECT_EQ(static_cast<int>(sf.size()), rows);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDistributions, DataAccessRandom,
                         ::testing::Range(0, 40));

}  // namespace
}  // namespace feves
