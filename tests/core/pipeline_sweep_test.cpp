// Parameterized end-to-end sweep: collaborative encode + decode round trip
// across resolutions, search areas, reference counts and deblocking on/off.
// Each combination must (a) match the single-device reference bit-exactly
// and (b) decode back bit-exactly — the integration surface where module
// geometry (halos, borders, intervals) interacts with config parameters.
#include "core/collaborative_encoder.hpp"

#include "codec/bitstream.hpp"
#include "platform/presets.hpp"
#include "video/metrics.hpp"
#include "video/sequence.hpp"

#include <gtest/gtest.h>

namespace feves {
namespace {

struct SweepCase {
  int width;
  int height;
  int search_range;
  int refs;
  bool deblock;
  int accels;
};

void PrintTo(const SweepCase& c, std::ostream* os) {
  *os << c.width << "x" << c.height << "_r" << c.search_range << "_ref"
      << c.refs << (c.deblock ? "_dbl" : "_nodbl") << "_a" << c.accels;
}

class PipelineSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(PipelineSweep, CollaborativeMatchesReferenceAndDecodes) {
  const SweepCase& c = GetParam();
  EncoderConfig cfg;
  cfg.width = c.width;
  cfg.height = c.height;
  cfg.search_range = c.search_range;
  cfg.num_ref_frames = c.refs;
  cfg.enable_deblocking = c.deblock;

  SyntheticConfig sc;
  sc.width = c.width;
  sc.height = c.height;
  sc.frames = c.refs + 2;  // exercise the full window ramp-up
  sc.num_objects = 2;
  sc.seed = 4711;
  SyntheticSequence seq(sc);

  // Reference encode.
  RefList ref_refs(cfg.num_ref_frames);
  std::vector<u8> ref_bits;
  std::vector<Frame420> ref_recons;
  Frame420 frame(c.width, c.height);
  for (int f = 0; f < sc.frames; ++f) {
    ASSERT_TRUE(seq.read_frame(f, frame));
    auto pic = encode_frame_reference(cfg, frame, ref_refs, f, &ref_bits);
    ref_recons.push_back(pic->recon);
    ref_refs.push_front(std::move(pic));
  }

  // Collaborative encode on CPU + accelerators.
  PlatformTopology topo;
  topo.devices.push_back(preset_cpu_nehalem());
  for (int i = 0; i < c.accels; ++i) {
    topo.devices.push_back(preset_gpu_fermi());
    topo.devices.back().name += std::to_string(i);
  }
  CollaborativeEncoder enc(cfg, topo);
  std::vector<u8> bits;
  for (int f = 0; f < sc.frames; ++f) {
    ASSERT_TRUE(seq.read_frame(f, frame));
    enc.encode_frame(frame, &bits);
    ASSERT_TRUE(frames_bit_exact(enc.last_recon(), ref_recons[f]))
        << "frame " << f;
  }
  ASSERT_EQ(bits, ref_bits);

  // Decode round trip.
  RefList dec_refs(cfg.num_ref_frames);
  BitReader br(bits);
  for (int f = 0; f < sc.frames; ++f) {
    auto pic = decode_frame(cfg, br, dec_refs);
    ASSERT_TRUE(frames_bit_exact(pic->recon, ref_recons[f])) << "frame " << f;
    dec_refs.push_front(std::move(pic));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, PipelineSweep,
    ::testing::Values(
        // Minimal frame: 4x3 MBs, fewer rows than devices is exercised too.
        SweepCase{64, 48, 4, 1, true, 2},
        SweepCase{64, 48, 8, 2, true, 3},
        // Search range at and beyond one MB row (halo > 1 row).
        SweepCase{96, 64, 16, 1, true, 2},
        SweepCase{96, 64, 20, 2, true, 1},
        // Deblocking off (bitstream and recon change shape).
        SweepCase{96, 64, 8, 2, false, 2},
        // Tall-narrow and wide-short geometry.
        SweepCase{48, 96, 8, 1, true, 2},
        SweepCase{160, 48, 8, 3, true, 2},
        // Window larger than the encoded sequence start (ramp never fills).
        SweepCase{64, 48, 4, 4, true, 2}));

TEST(PipelineEdge, MoreDevicesThanMbRows) {
  // 3 MB rows, 1 CPU + 4 accelerators: some devices get zero rows in some
  // modules; orchestration and transfers must cope.
  EncoderConfig cfg;
  cfg.width = 64;
  cfg.height = 48;
  cfg.search_range = 4;
  cfg.num_ref_frames = 1;

  SyntheticConfig sc;
  sc.width = 64;
  sc.height = 48;
  sc.frames = 3;
  SyntheticSequence seq(sc);

  RefList ref_refs(1);
  std::vector<Frame420> ref_recons;
  Frame420 frame(64, 48);
  for (int f = 0; f < 3; ++f) {
    ASSERT_TRUE(seq.read_frame(f, frame));
    auto pic = encode_frame_reference(cfg, frame, ref_refs, f, nullptr);
    ref_recons.push_back(pic->recon);
    ref_refs.push_front(std::move(pic));
  }

  PlatformTopology topo;
  topo.devices.push_back(preset_cpu_nehalem());
  for (int i = 0; i < 4; ++i) topo.devices.push_back(preset_gpu_fermi());
  CollaborativeEncoder enc(cfg, topo);
  for (int f = 0; f < 3; ++f) {
    ASSERT_TRUE(seq.read_frame(f, frame));
    enc.encode_frame(frame, nullptr);
    ASSERT_TRUE(frames_bit_exact(enc.last_recon(), ref_recons[f]))
        << "frame " << f;
  }
}

TEST(PipelineEdge, SingleAcceleratorOnlyTopology) {
  // No CPU device at all: the lone accelerator does everything.
  EncoderConfig cfg;
  cfg.width = 64;
  cfg.height = 48;
  cfg.search_range = 4;
  cfg.num_ref_frames = 1;

  SyntheticConfig sc;
  sc.width = 64;
  sc.height = 48;
  sc.frames = 2;
  SyntheticSequence seq(sc);

  RefList ref_refs(1);
  std::vector<Frame420> ref_recons;
  Frame420 frame(64, 48);
  for (int f = 0; f < 2; ++f) {
    ASSERT_TRUE(seq.read_frame(f, frame));
    auto pic = encode_frame_reference(cfg, frame, ref_refs, f, nullptr);
    ref_recons.push_back(pic->recon);
    ref_refs.push_front(std::move(pic));
  }

  CollaborativeEncoder enc(cfg, make_single(preset_gpu_fermi()));
  for (int f = 0; f < 2; ++f) {
    ASSERT_TRUE(seq.read_frame(f, frame));
    enc.encode_frame(frame, nullptr);
    ASSERT_TRUE(frames_bit_exact(enc.last_recon(), ref_recons[f]));
  }
}

}  // namespace
}  // namespace feves
