// Fault tolerance end to end: device faults quarantine the offender, the LP
// re-balances over the survivors within the same frame, and — the anchor
// property — the real-mode reconstruction stays bit-for-bit identical to the
// single-device reference encoder no matter which devices fail when.
#include "core/collaborative_encoder.hpp"
#include "core/framework.hpp"

#include "platform/presets.hpp"
#include "video/metrics.hpp"
#include "video/sequence.hpp"

#include <gtest/gtest.h>

namespace feves {
namespace {

// ---- shared helpers (mirror collaborative_test.cpp) -----------------------

EncoderConfig small_config(int refs = 2) {
  EncoderConfig cfg;
  cfg.width = 96;
  cfg.height = 64;
  cfg.search_range = 8;
  cfg.num_ref_frames = refs;
  return cfg;
}

PlatformTopology test_topo(int accels) {
  PlatformTopology t;
  t.devices.push_back(preset_cpu_nehalem());
  for (int i = 0; i < accels; ++i) {
    auto g = preset_gpu_fermi();
    g.name = "GPU#" + std::to_string(i);
    t.devices.push_back(g);
  }
  return t;
}

std::vector<Frame420> load_frames(const EncoderConfig& cfg, int count) {
  SyntheticConfig sc;
  sc.width = cfg.width;
  sc.height = cfg.height;
  sc.frames = count;
  sc.num_objects = 3;
  sc.max_object_speed = 3.0;
  sc.seed = 99;
  SyntheticSequence seq(sc);
  std::vector<Frame420> frames;
  for (int f = 0; f < count; ++f) {
    frames.emplace_back(cfg.width, cfg.height);
    EXPECT_TRUE(seq.read_frame(f, frames.back()));
  }
  return frames;
}

std::vector<Frame420> reference_encode(const EncoderConfig& cfg,
                                       const std::vector<Frame420>& frames,
                                       std::vector<u8>* bits) {
  RefList refs(cfg.num_ref_frames);
  std::vector<Frame420> recons;
  for (std::size_t f = 0; f < frames.size(); ++f) {
    auto pic = encode_frame_reference(cfg, frames[f], refs,
                                      static_cast<int>(f), bits);
    recons.push_back(pic->recon);
    refs.push_front(std::move(pic));
  }
  return recons;
}

// ---- Real mode: bit-exactness survives every fault kind -------------------

TEST(FaultRecoveryReal, PermanentDeviceLossStaysBitExact) {
  // A 3-device topology loses GPU#1 for good at frame 2. The frame must be
  // retried on the survivors and every reconstruction must still match the
  // reference encoder — including the failed probe around frame 5.
  const auto cfg = small_config();
  const auto frames = load_frames(cfg, 8);
  FaultSchedule faults;
  faults.add({/*device=*/2, /*begin=*/2, kFaultForever,
              FaultKind::kDeviceLoss});

  std::vector<u8> ref_bits;
  const auto ref_recons = reference_encode(cfg, frames, &ref_bits);

  CollaborativeEncoder enc(cfg, test_topo(2), {}, SimdTier::kAuto, faults);
  std::vector<u8> bits;
  std::vector<FrameStats> stats;
  for (std::size_t f = 0; f < frames.size(); ++f) {
    stats.push_back(enc.encode_frame(frames[f], &bits));
    ASSERT_TRUE(frames_bit_exact(enc.last_recon(), ref_recons[f]))
        << "frame " << f;
  }
  EXPECT_EQ(bits, ref_bits);

  // Frame 2 needed retries and ended with the device quarantined; later
  // clean frames run on the two survivors without retrying.
  EXPECT_GE(stats[2].retries, 1);
  EXPECT_EQ(stats[2].devices_quarantined, 1);
  EXPECT_EQ(stats[2].dist.me[2], 0);
  EXPECT_EQ(stats[2].dist.sme[2], 0);
  EXPECT_EQ(stats[3].retries, 0);
  EXPECT_EQ(stats[3].active_devices, 2);
  EXPECT_EQ(enc.health().state(2), DeviceHealth::kQuarantined);
  EXPECT_TRUE(enc.health().schedulable(0));
  EXPECT_TRUE(enc.health().schedulable(1));
}

TEST(FaultRecoveryReal, TransientTransferFaultRecoversAndReadmits) {
  // GPU#0's copy engine fails for frames [2, 4); after quarantine and a
  // clean probation the device is fully re-admitted and carries load again.
  const auto cfg = small_config();
  const auto frames = load_frames(cfg, 10);
  FaultSchedule faults;
  faults.add({/*device=*/1, /*begin=*/2, /*end=*/4,
              FaultKind::kTransferTransient});

  std::vector<u8> ref_bits;
  const auto ref_recons = reference_encode(cfg, frames, &ref_bits);

  CollaborativeEncoder enc(cfg, test_topo(2), {}, SimdTier::kAuto, faults);
  std::vector<u8> bits;
  std::vector<FrameStats> stats;
  for (std::size_t f = 0; f < frames.size(); ++f) {
    stats.push_back(enc.encode_frame(frames[f], &bits));
    ASSERT_TRUE(frames_bit_exact(enc.last_recon(), ref_recons[f]))
        << "frame " << f;
  }
  EXPECT_EQ(bits, ref_bits);

  EXPECT_GE(stats[2].retries, 1);  // hit, quarantined, re-balanced
  int readmitted = 0;
  for (const auto& s : stats) readmitted += s.devices_readmitted;
  EXPECT_GE(readmitted, 1);
  EXPECT_EQ(enc.health().state(1), DeviceHealth::kActive);
  // Once re-admitted the device gets rows again.
  EXPECT_GT(stats.back().dist.me[1] + stats.back().dist.intp[1] +
                stats.back().dist.sme[1],
            0);
  EXPECT_EQ(stats.back().active_devices, 3);
}

TEST(FaultRecoveryReal, HangIsFencedByWatchdogAndStaysBitExact) {
  // GPU#0 wedges on frame 2: its kernel sleeps past the watchdog, the op is
  // declared dead, dependents are cancelled and the frame re-encodes on the
  // survivors — still bit-exact.
  const auto cfg = small_config();
  const auto frames = load_frames(cfg, 5);
  FaultSchedule faults;
  faults.add({/*device=*/1, /*begin=*/2, /*end=*/3, FaultKind::kHang});

  FrameworkOptions opts;
  // Generous deadline: every clean op on this tiny config finishes orders
  // of magnitude faster, even under sanitizers.
  opts.watchdog_ms = 2000.0;
  opts.hang_sleep_ms = 2500.0;
  opts.health.failure_threshold = 1;  // one timed-out attempt is enough

  std::vector<u8> ref_bits;
  const auto ref_recons = reference_encode(cfg, frames, &ref_bits);

  CollaborativeEncoder enc(cfg, test_topo(2), opts, SimdTier::kAuto, faults);
  std::vector<u8> bits;
  std::vector<FrameStats> stats;
  for (std::size_t f = 0; f < frames.size(); ++f) {
    stats.push_back(enc.encode_frame(frames[f], &bits));
    ASSERT_TRUE(frames_bit_exact(enc.last_recon(), ref_recons[f]))
        << "frame " << f;
  }
  EXPECT_EQ(bits, ref_bits);
  EXPECT_EQ(stats[2].retries, 1);
  EXPECT_EQ(stats[2].devices_quarantined, 1);
}

// ---- Virtual mode: graceful degradation and re-admission ------------------

EncoderConfig hd_config(int refs = 1) {
  EncoderConfig cfg;
  cfg.search_range = 16;
  cfg.num_ref_frames = refs;
  return cfg;
}

TEST(FaultRecoveryVirtual, DeviceLossRebalancesWithinOneFrame) {
  FaultSchedule faults;
  faults.add({/*device=*/2, /*begin=*/12, kFaultForever,
              FaultKind::kDeviceLoss});
  VirtualFramework fw(hd_config(), make_sys_nff(), {}, {}, faults);
  const auto stats = fw.encode(20);

  // Frame 12 (index 11): failed attempts, quarantine, then a clean attempt
  // whose distribution excludes the lost device entirely.
  EXPECT_GE(stats[11].retries, 1);
  EXPECT_EQ(stats[11].devices_quarantined, 1);
  EXPECT_EQ(stats[11].dist.me[2], 0);
  EXPECT_EQ(stats[11].dist.intp[2], 0);
  EXPECT_EQ(stats[11].dist.sme[2], 0);
  EXPECT_NE(stats[11].dist.rstar_device, 2);
  // The very next frame is clean: the LP has already converged on the
  // surviving pair.
  EXPECT_EQ(stats[12].retries, 0);
  EXPECT_EQ(stats[12].active_devices, 2);
  // The device cycles quarantine -> failed probe -> longer quarantine; it
  // must never make it back to full health while the loss persists.
  EXPECT_NE(fw.health().state(2), DeviceHealth::kActive);
}

TEST(FaultRecoveryVirtual, SteadyStateAfterLossMatchesReducedTopology) {
  // Degradation quality bar: after losing one of SysNFF's two GPUs, the
  // steady-state throughput (probe frames included, thanks to the backoff)
  // must come within 10% of a from-scratch run on the reduced topology.
  FaultSchedule faults;
  faults.add({/*device=*/2, /*begin=*/12, kFaultForever,
              FaultKind::kDeviceLoss});
  VirtualFramework faulted(hd_config(), make_sys_nff(), {}, {}, faults);
  const auto stats = faulted.encode(60);
  double after_ms = 0.0;
  int count = 0;
  for (int i = 39; i < 60; ++i) {
    after_ms += stats[i].total_ms;
    ++count;
  }
  const double faulted_fps = 1000.0 / (after_ms / count);

  VirtualFramework reduced(hd_config(), make_sys_nf());
  const double reduced_fps = reduced.steady_state_fps(30, 8);

  EXPECT_GT(faulted_fps, reduced_fps * 0.90);
  EXPECT_LT(faulted_fps, reduced_fps * 1.10);
}

TEST(FaultRecoveryVirtual, RecoveredDeviceIsReadmittedAndRegainsLoad) {
  // The GPU disappears for frames [12, 16) and then comes back. After the
  // quarantine window (lengthened once by the failed probe at re-admission)
  // the device must return to probation, re-characterize via an equidistant
  // frame, and end up carrying LP load again at full throughput.
  FaultSchedule faults;
  faults.add({/*device=*/2, /*begin=*/12, /*end=*/16, FaultKind::kDeviceLoss});
  VirtualFramework fw(hd_config(), make_sys_nff(), {}, {}, faults);
  const auto stats = fw.encode(40);

  EXPECT_GE(stats[11].retries, 1);  // the hit
  int first_back = -1;
  for (int i = 16; i < 40; ++i) {
    if (stats[i].dist.me[2] > 0 && stats[i].retries == 0) {
      first_back = i;
      break;
    }
  }
  ASSERT_GE(first_back, 0) << "device 2 never regained load";
  EXPECT_EQ(fw.health().state(2), DeviceHealth::kActive);
  EXPECT_EQ(stats[39].active_devices, 3);
  EXPECT_GT(stats[39].dist.me[2], 0);
  int readmitted = 0;
  for (const auto& s : stats) readmitted += s.devices_readmitted;
  EXPECT_GE(readmitted, 1);
  // Back at full-topology speed: the last frames match the pre-fault
  // steady state closely.
  EXPECT_NEAR(stats[39].total_ms, stats[10].total_ms,
              0.10 * stats[10].total_ms);
}

TEST(FaultRecoveryVirtual, HangConsumesWatchdogTimeThenDegrades) {
  FaultSchedule faults;
  faults.add({/*device=*/1, /*begin=*/12, /*end=*/13, FaultKind::kHang});
  FrameworkOptions opts;
  opts.watchdog_ms = 100.0;  // far above any simulated op duration
  VirtualFramework fw(hd_config(), make_sys_nff(), opts, {}, faults);
  const auto stats = fw.encode(14);
  // Two hung attempts (failure threshold 2) each burn a full watchdog
  // window before the survivors take over.
  EXPECT_EQ(stats[11].retries, 2);
  EXPECT_EQ(stats[11].devices_quarantined, 1);
  EXPECT_GT(stats[11].total_ms, 2 * opts.watchdog_ms);
  EXPECT_EQ(stats[12].retries, 0);
}

TEST(FaultRecoveryVirtual, LosingTheCpuStillEncodes) {
  // Even the host can drop out of the compute pool: R* moves to an
  // accelerator, the RF holder resets, and the GPUs carry the frame.
  FaultSchedule faults;
  faults.add({/*device=*/0, /*begin=*/12, kFaultForever,
              FaultKind::kDeviceLoss});
  VirtualFramework fw(hd_config(), make_sys_nff(), {}, {}, faults);
  const auto stats = fw.encode(20);
  EXPECT_GE(stats[11].retries, 1);
  EXPECT_EQ(stats[11].dist.me[0], 0);
  EXPECT_NE(stats[11].dist.rstar_device, 0);
  EXPECT_EQ(stats[12].retries, 0);
  EXPECT_EQ(stats[12].active_devices, 2);
}

TEST(FaultRecoveryVirtual, AllDevicesLostIsALoudFailure) {
  FaultSchedule faults;
  for (int d = 0; d < 3; ++d) {
    faults.add({d, /*begin=*/5, kFaultForever, FaultKind::kDeviceLoss});
  }
  VirtualFramework fw(hd_config(), make_sys_nff(), {}, {}, faults);
  fw.encode(4);  // fine until the fault window opens
  EXPECT_THROW(fw.encode_frame(), Error);
}

}  // namespace
}  // namespace feves
