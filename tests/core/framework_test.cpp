#include "core/framework.hpp"

#include "core/virtual_backend.hpp"
#include "platform/perf_model.hpp"
#include "platform/presets.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace feves {
namespace {

EncoderConfig hd_config(int search_range = 16, int refs = 1) {
  EncoderConfig cfg;
  cfg.search_range = search_range;
  cfg.num_ref_frames = refs;
  return cfg;
}

TEST(VirtualFramework, FirstFrameIsEquidistant) {
  VirtualFramework fw(hd_config(), make_sys_hk());
  const auto s = fw.encode_frame();
  EXPECT_EQ(s.frame_number, 1);
  EXPECT_EQ(s.dist.me, (std::vector<int>{34, 34}));
  EXPECT_EQ(s.dist.me, s.dist.sme);
}

TEST(VirtualFramework, BalancedFramesBeatEquidistant) {
  // The headline adaptive property (Fig 7): frame 2 onward must be faster
  // than the equidistant frame 1 on a heterogeneous system.
  for (const char* name : {"SysNF", "SysNFF", "SysHK"}) {
    VirtualFramework fw(hd_config(), topology_by_name(name));
    const auto stats = fw.encode(6);
    EXPECT_LT(stats[2].total_ms, stats[0].total_ms * 0.95) << name;
    // And the balanced steady state is stable.
    EXPECT_NEAR(stats[4].total_ms, stats[5].total_ms,
                0.05 * stats[4].total_ms)
        << name;
  }
}

TEST(VirtualFramework, SingleDeviceMatchesCostModelSum) {
  // For one device there is nothing to balance: τtot equals the serial sum
  // of the module costs plus the CF upload.
  const auto cfg = hd_config();
  VirtualFramework fw(cfg, topology_by_name("GPU_F"));
  const auto s = fw.encode(3).back();
  const DeviceSpec dev = preset_gpu_fermi();
  const double expect = me_rows_ms(dev, cfg, 68, 1) +
                        int_rows_ms(dev, cfg, 68) +
                        sme_rows_ms(dev, cfg, 68, 1) + rstar_ms(dev, cfg) +
                        dev.link.h2d_ms(68 * cf_row_bytes(cfg));
  EXPECT_NEAR(s.total_ms, expect, 0.02 * expect);
}

TEST(VirtualFramework, RealTimeReachabilityMatchesPaper) {
  // Fig 6(a) at 32x32 SA / 1 RF: both GPUs and all three CPU+GPU systems
  // reach >= 25 fps; neither CPU does.
  auto fps_of = [](const char* name) {
    VirtualFramework fw(hd_config(), topology_by_name(name));
    return fw.steady_state_fps(16, 6);
  };
  EXPECT_LT(fps_of("CPU_N"), 25.0);
  EXPECT_LT(fps_of("CPU_H"), 25.0);
  EXPECT_GT(fps_of("GPU_F"), 25.0);
  EXPECT_GT(fps_of("GPU_K"), 25.0);
  EXPECT_GT(fps_of("SysNF"), 25.0);
  EXPECT_GT(fps_of("SysNFF"), 25.0);
  EXPECT_GT(fps_of("SysHK"), 25.0);
}

TEST(VirtualFramework, CombinedSystemsOutperformTheirParts) {
  const auto cfg = hd_config();
  auto fps_of = [&](const char* name) {
    VirtualFramework fw(cfg, topology_by_name(name));
    return fw.steady_state_fps(16, 6);
  };
  const double gpu_f = fps_of("GPU_F");
  const double gpu_k = fps_of("GPU_K");
  const double cpu_n = fps_of("CPU_N");
  EXPECT_GT(fps_of("SysNF"), gpu_f * 1.05);
  EXPECT_GT(fps_of("SysNFF"), gpu_f * 1.5);
  EXPECT_GT(fps_of("SysNFF"), cpu_n * 4.0);
  EXPECT_GT(fps_of("SysHK"), gpu_k * 1.05);
}

TEST(VirtualFramework, SaGrowthQuadruplesMeLoad) {
  // Fig 6(a)'s x-axis behaviour: doubling the SA edge roughly quadruples
  // ME time, so fps falls steeply between successive SA sizes.
  auto fps_at = [](int range) {
    VirtualFramework fw(hd_config(range), topology_by_name("CPU_N"));
    return fw.steady_state_fps(8, 4);
  };
  const double f32 = fps_at(16);
  const double f64 = fps_at(32);
  EXPECT_GT(f32 / f64, 2.5);
  EXPECT_LT(f32 / f64, 4.5);
}

TEST(VirtualFramework, RefRampUpSlopesThenStabilizes) {
  // Fig 7(b): with R reference frames, the window fills over the first R
  // inter-frames — encode time rises, then flattens.
  VirtualFramework fw(hd_config(16, 5), make_sys_hk());
  const auto stats = fw.encode(12);
  EXPECT_EQ(stats[0].active_refs, 1);
  EXPECT_EQ(stats[3].active_refs, 4);
  EXPECT_EQ(stats[5].active_refs, 5);
  // More references => more ME/SME work => slower frames during ramp-up.
  EXPECT_GT(stats[5].total_ms, stats[1].total_ms);
  // Flat after the window fills and balancing settles.
  EXPECT_NEAR(stats[10].total_ms, stats[11].total_ms,
              0.05 * stats[10].total_ms);
}

TEST(VirtualFramework, RecoversFromPerturbationWithinFrames) {
  // Fig 7's self-adaptation: a sudden slowdown on the GPU must raise the
  // frame time, and the redistribution must claw most of it back within a
  // frame or two.
  PerturbationSchedule sched;
  sched.add({/*device=*/1, /*begin=*/20, /*end=*/26, /*slowdown=*/2.0});
  VirtualFramework fw(hd_config(), make_sys_hk(), {}, sched);
  const auto stats = fw.encode(40);

  const double baseline = stats[15].total_ms;
  EXPECT_GT(stats[19].total_ms, baseline * 1.4);  // hit on first slow frame
  // Re-balanced while still perturbed: better than the unbalanced hit.
  EXPECT_LT(stats[23].total_ms, stats[19].total_ms);
  // Full recovery after the perturbation ends (frame index 26+).
  EXPECT_NEAR(stats[30].total_ms, baseline, 0.08 * baseline);
}

TEST(VirtualFramework, PoliciesRankAsExpected) {
  // Adaptive LP <= proportional <= equidistant in steady-state frame time.
  auto fps_with = [](SchedulingPolicy policy) {
    FrameworkOptions opts;
    opts.policy = policy;
    VirtualFramework fw(hd_config(), make_sys_hk(), opts);
    return fw.steady_state_fps(16, 6);
  };
  const double lp = fps_with(SchedulingPolicy::kAdaptiveLp);
  const double prop = fps_with(SchedulingPolicy::kProportional);
  const double equi = fps_with(SchedulingPolicy::kEquidistant);
  EXPECT_GE(lp, prop * 0.98);  // LP at least matches proportional
  EXPECT_GT(prop, equi);       // both beat the static split
  EXPECT_GT(lp, equi * 1.3);
}

TEST(VirtualFramework, SchedulingOverheadUnderTwoMilliseconds) {
  // The paper's Sec. IV claim: "scheduling overheads take, on average,
  // less than 2 ms per inter-frame".
  VirtualFramework fw(hd_config(16, 4), make_sys_nff());
  const auto stats = fw.encode(20);
  double total = 0.0;
  for (const auto& s : stats) total += s.scheduling_ms;
  EXPECT_LT(total / stats.size(), 2.0);
}

TEST(VirtualFramework, DualCopyEngineNoSlowerThanSingle) {
  auto topo_single = make_sys_hk();
  auto topo_dual = make_sys_hk();
  topo_dual.devices[1] = preset_gpu_kepler_dual();
  VirtualFramework a(hd_config(16, 4), topo_single);
  VirtualFramework b(hd_config(16, 4), topo_dual);
  EXPECT_GE(b.steady_state_fps(14, 6), a.steady_state_fps(14, 6) * 0.999);
}

// Regression (measurement poisoning): ops that did not complete cleanly
// must not fold into the characterization. A hung device's kernels report
// watchdog-truncated spans and its dependents report zero-length spans;
// folding either corrupts the K parameters every later LP consumes.
TEST(AttributeFrameTimes, NonOkOpsDoNotPoisonTheCharacterization) {
  const EncoderConfig cfg = hd_config();
  const PlatformTopology topo = make_sys_nff();  // CPU + 2 accelerators
  const int n = topo.num_devices();
  LoadBalancer balancer(cfg, topo);
  DataAccessManagement dam(cfg, topo, /*enable_reuse=*/true);
  const Distribution dist = balancer.equidistant(/*rstar_device=*/0);
  const auto plans = dam.plan_frame(dist, /*rf_holder=*/-1, /*refs=*/1);
  VirtualBackend backend(cfg, topo, /*active_refs=*/1,
                         std::vector<double>(static_cast<std::size_t>(n), 1.0));
  FrameOpIds ids;
  const OpGraph graph = build_frame_graph(topo, dist, plans, backend, &ids);

  // A clean execution seeds the characterization.
  PerfCharacterization perf(n, /*alpha=*/1.0);
  const ExecutionResult clean = execute_virtual(graph, topo, ExecuteOptions{});
  ASSERT_TRUE(clean.ok());
  attribute_frame_times(cfg, topo, dist, ids, clean, &perf);
  const DeviceParams before = perf.params(2);
  ASSERT_TRUE(before.compute_known());

  // Same graph, device 2 hung: its kernels time out at the watchdog
  // deadline, everything downstream of them is cancelled.
  FaultSchedule faults;
  faults.add({/*device=*/2, /*frame_begin=*/0, kFaultForever,
              FaultKind::kHang});
  ExecuteOptions fault_opts;
  fault_opts.faults = faults.plan(/*frame=*/1, n);
  fault_opts.watchdog_ms = 1.0;
  const ExecutionResult faulted = execute_virtual(graph, topo, fault_opts);
  ASSERT_FALSE(faulted.ok());

  attribute_frame_times(cfg, topo, dist, ids, faulted, &perf);
  const DeviceParams& after = perf.params(2);
  EXPECT_DOUBLE_EQ(after.k_me, before.k_me);
  EXPECT_DOUBLE_EQ(after.k_int, before.k_int);
  EXPECT_DOUBLE_EQ(after.k_sme, before.k_sme);
  EXPECT_DOUBLE_EQ(after.t_rstar_ms, before.t_rstar_ms);
  for (int b = 0; b < 4; ++b) {
    for (int d = 0; d < 2; ++d) {
      EXPECT_DOUBLE_EQ(after.k_xfer[b][d], before.k_xfer[b][d])
          << "buffer " << b << " dir " << d;
    }
  }
}

}  // namespace
}  // namespace feves
