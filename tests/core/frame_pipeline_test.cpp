// The two-slot frame pipeline: frame n+1's schedule is solved and its
// mirror buffers prestaged while frame n executes. Scheduling with slightly
// stale parameters only moves WHERE work runs, never WHAT is computed, so
// the output must be bit-identical with the pipeline on or off — including
// under fault injection — while the steady state reports overlap.
#include "core/collaborative_encoder.hpp"
#include "core/framework.hpp"

#include "platform/presets.hpp"
#include "video/metrics.hpp"
#include "video/sequence.hpp"

#include <gtest/gtest.h>

namespace feves {
namespace {

EncoderConfig small_config(int refs = 2) {
  EncoderConfig cfg;
  cfg.width = 96;
  cfg.height = 64;
  cfg.search_range = 8;
  cfg.num_ref_frames = refs;
  return cfg;
}

PlatformTopology test_topo(int accels) {
  PlatformTopology t;
  t.devices.push_back(preset_cpu_nehalem());
  for (int i = 0; i < accels; ++i) {
    auto g = preset_gpu_fermi();
    g.name = "GPU#" + std::to_string(i);
    t.devices.push_back(g);
  }
  return t;
}

std::vector<Frame420> load_frames(const EncoderConfig& cfg, int count) {
  SyntheticConfig sc;
  sc.width = cfg.width;
  sc.height = cfg.height;
  sc.frames = count;
  sc.num_objects = 3;
  sc.max_object_speed = 3.0;
  sc.seed = 99;
  SyntheticSequence seq(sc);
  std::vector<Frame420> frames;
  for (int f = 0; f < count; ++f) {
    frames.emplace_back(cfg.width, cfg.height);
    EXPECT_TRUE(seq.read_frame(f, frames.back()));
  }
  return frames;
}

struct EncodeRun {
  std::vector<u8> bits;
  obs::SchedTelemetry total;
};

EncodeRun run_real(const EncoderConfig& cfg, const PlatformTopology& topo,
                   const std::vector<Frame420>& frames, FrameworkOptions opts,
                   FaultSchedule faults = {}) {
  CollaborativeEncoder enc(cfg, topo, opts, SimdTier::kAuto,
                           std::move(faults));
  EncodeRun run;
  for (const Frame420& f : frames) {
    const FrameStats s = enc.encode_frame(f, &run.bits);
    run.total.pipeline_hits += s.telemetry.pipeline_hits;
    run.total.pipeline_misses += s.telemetry.pipeline_misses;
    run.total.lp_warm_solves += s.telemetry.lp_warm_solves;
    run.total.lp_skipped += s.telemetry.lp_skipped;
    run.total.lp_solves += s.telemetry.lp_solves;
    run.total.sched_critical_ms += s.telemetry.sched_critical_ms;
    run.total.sched_overlapped_ms += s.telemetry.sched_overlapped_ms;
  }
  return run;
}

TEST(FramePipeline, RealModeOnOffBitstreamsIdentical) {
  const EncoderConfig cfg = small_config();
  const PlatformTopology topo = test_topo(2);
  const auto frames = load_frames(cfg, 8);

  FrameworkOptions on;
  ASSERT_TRUE(on.enable_pipeline) << "pipeline must default on";
  // Host-thread timing on a 96x64 frame is unboundedly noisy on a loaded
  // CI box, so disable the drift gate to make slot consumption
  // deterministic here (bit-exactness never depends on it; the drift
  // gating itself is exercised by the deterministic virtual-mode tests).
  on.lb.convergence_epsilon = 1e9;
  FrameworkOptions off;
  off.enable_pipeline = false;
  off.lb.enable_warm_start = false;

  const EncodeRun with = run_real(cfg, topo, frames, on);
  const EncodeRun without = run_real(cfg, topo, frames, off);
  EXPECT_EQ(with.bits, without.bits);
  EXPECT_GT(with.total.pipeline_hits, 0)
      << "steady state should consume speculated schedules";
  EXPECT_GT(with.total.sched_overlapped_ms, 0.0);
  EXPECT_EQ(without.total.pipeline_hits, 0);
  EXPECT_DOUBLE_EQ(without.total.sched_overlapped_ms, 0.0);
}

TEST(FramePipeline, BitExactUnderFaultInjection) {
  // A device loss mid-stream invalidates the speculated slot (the active
  // mask changed): the pipeline must re-solve synchronously and keep the
  // stream identical to the unpipelined encoder under the same faults.
  const EncoderConfig cfg = small_config();
  const PlatformTopology topo = test_topo(2);
  const auto frames = load_frames(cfg, 8);

  FaultSchedule faults;
  faults.add({/*device=*/2, /*begin=*/3, kFaultForever,
              FaultKind::kDeviceLoss});

  FrameworkOptions off;
  off.enable_pipeline = false;
  off.lb.enable_warm_start = false;

  const EncodeRun with = run_real(cfg, topo, frames, {}, faults);
  const EncodeRun without = run_real(cfg, topo, frames, off, faults);
  EXPECT_EQ(with.bits, without.bits);
  EXPECT_GT(with.total.pipeline_misses, 0)
      << "the quarantine transition must discard a speculated slot";
}

TEST(FramePipeline, VirtualModeOverlapAccounting) {
  const EncoderConfig cfg = []() {
    EncoderConfig c;
    c.search_range = 16;
    c.num_ref_frames = 1;
    return c;
  }();
  VirtualFramework fw(cfg, topology_by_name("SysNFF"), FrameworkOptions{});
  const auto stats = fw.encode(12);

  obs::SchedTelemetry total;
  for (const FrameStats& s : stats) {
    total.pipeline_hits += s.telemetry.pipeline_hits;
    total.pipeline_misses += s.telemetry.pipeline_misses;
    total.lp_warm_solves += s.telemetry.lp_warm_solves;
    total.lp_skipped += s.telemetry.lp_skipped;
    total.sched_critical_ms += s.telemetry.sched_critical_ms;
    total.sched_overlapped_ms += s.telemetry.sched_overlapped_ms;
    const double r = s.telemetry.pipeline_overlap_ratio();
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
  }
  // Virtual mode re-characterizes exactly, so the steady state converges:
  // slots get consumed and the LP is warm-started or skipped outright.
  EXPECT_GT(total.pipeline_hits, 0);
  EXPECT_GT(total.lp_warm_solves + total.lp_skipped, 0);
  EXPECT_GT(total.sched_overlapped_ms, 0.0);
}

TEST(FramePipeline, DisabledPipelineNeverOverlaps) {
  EncoderConfig cfg;
  cfg.search_range = 16;
  cfg.num_ref_frames = 1;
  FrameworkOptions opts;
  opts.enable_pipeline = false;
  VirtualFramework fw(cfg, topology_by_name("SysNFF"), opts);
  const auto stats = fw.encode(8);
  for (const FrameStats& s : stats) {
    EXPECT_EQ(s.telemetry.pipeline_hits, 0);
    EXPECT_DOUBLE_EQ(s.telemetry.sched_overlapped_ms, 0.0);
    EXPECT_DOUBLE_EQ(s.telemetry.pipeline_overlap_ratio(), 0.0);
  }
}

}  // namespace
}  // namespace feves
