#include "core/collaborative_encoder.hpp"

#include "codec/bitstream.hpp"
#include "platform/presets.hpp"
#include "video/metrics.hpp"
#include "video/sequence.hpp"

#include <gtest/gtest.h>

namespace feves {
namespace {

EncoderConfig small_config(int refs = 2) {
  EncoderConfig cfg;
  cfg.width = 96;
  cfg.height = 64;
  cfg.search_range = 8;
  cfg.num_ref_frames = refs;
  return cfg;
}

SyntheticConfig scene(const EncoderConfig& cfg, int frames) {
  SyntheticConfig sc;
  sc.width = cfg.width;
  sc.height = cfg.height;
  sc.frames = frames;
  sc.num_objects = 3;
  sc.max_object_speed = 3.0;
  sc.seed = 99;
  return sc;
}

/// Shrinks a preset system so the real executor runs quickly while keeping
/// the CPU + accelerators structure (speeds are irrelevant to correctness).
PlatformTopology test_topo(int accels) {
  PlatformTopology t;
  t.devices.push_back(preset_cpu_nehalem());
  for (int i = 0; i < accels; ++i) {
    auto g = preset_gpu_fermi();
    g.name = "GPU#" + std::to_string(i);
    t.devices.push_back(g);
  }
  return t;
}

std::vector<Frame420> load_frames(const EncoderConfig& cfg, int count) {
  SyntheticSequence seq(scene(cfg, count));
  std::vector<Frame420> frames;
  for (int f = 0; f < count; ++f) {
    frames.emplace_back(cfg.width, cfg.height);
    EXPECT_TRUE(seq.read_frame(f, frames.back()));
  }
  return frames;
}

/// Encodes with the single-device reference encoder, returning the per-
/// frame reconstructions and the bitstream.
std::vector<Frame420> reference_encode(const EncoderConfig& cfg,
                                       const std::vector<Frame420>& frames,
                                       std::vector<u8>* bits) {
  RefList refs(cfg.num_ref_frames);
  std::vector<Frame420> recons;
  for (std::size_t f = 0; f < frames.size(); ++f) {
    auto pic = encode_frame_reference(cfg, frames[f], refs,
                                      static_cast<int>(f), bits);
    recons.push_back(pic->recon);
    refs.push_front(std::move(pic));
  }
  return recons;
}

class CollaborativeBitExact
    : public ::testing::TestWithParam<std::tuple<int, SchedulingPolicy>> {};

TEST_P(CollaborativeBitExact, MatchesReferenceEncoder) {
  // THE correctness property of the framework: no matter how many devices
  // or which scheduling policy, the collaborative reconstruction and
  // bitstream equal the single-device reference bit-for-bit.
  const auto [num_accels, policy] = GetParam();
  const auto cfg = small_config();
  const auto frames = load_frames(cfg, 5);

  std::vector<u8> ref_bits;
  const auto ref_recons = reference_encode(cfg, frames, &ref_bits);

  FrameworkOptions opts;
  opts.policy = policy;
  CollaborativeEncoder enc(cfg, test_topo(num_accels), opts);
  std::vector<u8> bits;
  for (std::size_t f = 0; f < frames.size(); ++f) {
    enc.encode_frame(frames[f], &bits);
    ASSERT_TRUE(frames_bit_exact(enc.last_recon(), ref_recons[f]))
        << "frame " << f << " diverged with " << num_accels
        << " accelerator(s)";
  }
  EXPECT_EQ(bits, ref_bits);
}

INSTANTIATE_TEST_SUITE_P(
    TopologiesAndPolicies, CollaborativeBitExact,
    ::testing::Values(
        std::tuple{1, SchedulingPolicy::kAdaptiveLp},
        std::tuple{2, SchedulingPolicy::kAdaptiveLp},
        std::tuple{3, SchedulingPolicy::kAdaptiveLp},
        std::tuple{1, SchedulingPolicy::kEquidistant},
        std::tuple{2, SchedulingPolicy::kEquidistant},
        std::tuple{2, SchedulingPolicy::kProportional}));

TEST(Collaborative, MultiRefBitExactAcrossWindowRampUp) {
  const auto cfg = small_config(/*refs=*/3);
  const auto frames = load_frames(cfg, 6);
  std::vector<u8> ref_bits;
  const auto ref_recons = reference_encode(cfg, frames, &ref_bits);

  CollaborativeEncoder enc(cfg, test_topo(2));
  std::vector<u8> bits;
  for (std::size_t f = 0; f < frames.size(); ++f) {
    enc.encode_frame(frames[f], &bits);
    ASSERT_TRUE(frames_bit_exact(enc.last_recon(), ref_recons[f]))
        << "frame " << f;
  }
  EXPECT_EQ(bits, ref_bits);
}

TEST(Collaborative, CpuCentricRstarBitExact) {
  // Pin the R* block to the host (paper Sec. III-B's CPU-centric variant):
  // the orchestration changes — no MC prefetch transfers, accelerators all
  // follow the GPUi pattern — but the output must not.
  const auto cfg = small_config();
  const auto frames = load_frames(cfg, 4);
  std::vector<u8> ref_bits;
  const auto ref_recons = reference_encode(cfg, frames, &ref_bits);

  FrameworkOptions opts;
  opts.force_rstar_device = 0;  // the CPU
  CollaborativeEncoder enc(cfg, test_topo(2), opts);
  std::vector<u8> bits;
  for (std::size_t f = 0; f < frames.size(); ++f) {
    const auto stats = enc.encode_frame(frames[f], &bits);
    if (f > 0) EXPECT_EQ(stats.dist.rstar_device, 0);
    ASSERT_TRUE(frames_bit_exact(enc.last_recon(), ref_recons[f]));
  }
  EXPECT_EQ(bits, ref_bits);
}

TEST(Collaborative, GpuCentricPinnedToSecondAcceleratorBitExact) {
  // R* pinned to the *second* accelerator: the RF-holder bookkeeping and
  // the GPU1-vs-GPUi role split must still produce identical output.
  const auto cfg = small_config();
  const auto frames = load_frames(cfg, 4);
  std::vector<u8> ref_bits;
  const auto ref_recons = reference_encode(cfg, frames, &ref_bits);

  FrameworkOptions opts;
  opts.force_rstar_device = 2;
  CollaborativeEncoder enc(cfg, test_topo(2), opts);
  std::vector<u8> bits;
  for (std::size_t f = 0; f < frames.size(); ++f) {
    const auto stats = enc.encode_frame(frames[f], &bits);
    if (f > 0) EXPECT_EQ(stats.dist.rstar_device, 2);
    ASSERT_TRUE(frames_bit_exact(enc.last_recon(), ref_recons[f]));
  }
  EXPECT_EQ(bits, ref_bits);
}

TEST(Collaborative, DecoderReadsCollaborativeBitstream) {
  // End-to-end: collaborative encode -> bitstream -> standalone decode;
  // decoder reconstructions must match the encoder's.
  const auto cfg = small_config();
  const auto frames = load_frames(cfg, 4);

  CollaborativeEncoder enc(cfg, test_topo(2));
  std::vector<u8> bits;
  std::vector<Frame420> recons;
  for (const auto& frame : frames) {
    enc.encode_frame(frame, &bits);
    recons.push_back(enc.last_recon());
  }

  RefList dec_refs(cfg.num_ref_frames);
  BitReader br(bits);
  for (std::size_t f = 0; f < frames.size(); ++f) {
    auto pic = decode_frame(cfg, br, dec_refs);
    EXPECT_TRUE(frames_bit_exact(pic->recon, recons[f])) << "frame " << f;
    dec_refs.push_front(std::move(pic));
  }
}

TEST(Collaborative, QualityIsReasonable) {
  const auto cfg = small_config();
  const auto frames = load_frames(cfg, 4);
  CollaborativeEncoder enc(cfg, test_topo(1));
  for (const auto& frame : frames) {
    enc.encode_frame(frame, nullptr);
    EXPECT_GT(plane_psnr(enc.last_recon().y, frame.y), 27.0);
  }
}

TEST(Collaborative, StatsTrackTauOrdering) {
  const auto cfg = small_config();
  const auto frames = load_frames(cfg, 3);
  CollaborativeEncoder enc(cfg, test_topo(2));
  enc.encode_frame(frames[0], nullptr);  // I frame
  for (int f = 1; f < 3; ++f) {
    const auto s = enc.encode_frame(frames[f], nullptr);
    EXPECT_GT(s.tau1_ms, 0.0);
    EXPECT_GE(s.tau2_ms, s.tau1_ms);
    EXPECT_GE(s.total_ms, s.tau2_ms);
    s.dist.check_conservation(cfg.num_mb_rows());
  }
}

}  // namespace
}  // namespace feves
