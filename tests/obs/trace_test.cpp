// Observability layer: ring/tracer mechanics, Chrome trace-event export,
// and the full round trip — encode frames with a fault injected, export the
// trace, parse it back, and check the timeline invariants the executors
// guarantee (serial lanes never overlap, failed ops carry their status,
// frames tile the global timeline in order).
#include "obs/trace.hpp"

#include "core/framework.hpp"
#include "obs/telemetry.hpp"
#include "platform/presets.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace feves {
namespace {

EncoderConfig small_config(int refs = 2) {
  EncoderConfig cfg;
  cfg.width = 96;
  cfg.height = 64;
  cfg.search_range = 8;
  cfg.num_ref_frames = refs;
  return cfg;
}

// Enough MB rows (45) that the LP's continuous split is not dominated by
// integer-row quantization — needed when asserting prediction accuracy.
// Virtual mode never touches pixels, so the resolution costs nothing.
EncoderConfig hd_ish_config(int refs = 2) {
  EncoderConfig cfg;
  cfg.width = 1280;
  cfg.height = 720;
  cfg.search_range = 8;
  cfg.num_ref_frames = refs;
  return cfg;
}

PlatformTopology test_topo(int accels) {
  PlatformTopology t;
  t.devices.push_back(preset_cpu_nehalem());
  for (int i = 0; i < accels; ++i) {
    auto g = preset_gpu_fermi();
    g.name = "GPU#" + std::to_string(i);
    t.devices.push_back(g);
  }
  return t;
}

// ---- TraceEvent / EventRing / Tracer mechanics ----------------------------

TEST(TraceEvent, NameIsTruncatedAndTerminated) {
  obs::TraceEvent e;
  e.set_name("a_very_long_op_label_well_past_the_fixed_capacity");
  EXPECT_EQ(std::string(e.name).size(), obs::TraceEvent::kNameCapacity);
  e.set_name(nullptr);
  EXPECT_STREQ(e.name, "");
}

TEST(EventRing, DrainsInFifoOrderAndCountsOverflow) {
  obs::EventRing ring(4);
  obs::TraceEvent e;
  for (int i = 0; i < 6; ++i) {
    e.frame = i;
    const bool pushed = ring.try_push(e);
    EXPECT_EQ(pushed, i < 4);
  }
  EXPECT_EQ(ring.dropped(), 2u);
  std::vector<obs::TraceEvent> out;
  ring.drain(&out);
  ASSERT_EQ(out.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i].frame, i);
  out.clear();
  ring.drain(&out);  // drained rings are empty
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(ring.try_push(e));  // ...and reusable
}

TEST(Tracer, DisabledTracerEmitsNothing) {
  obs::Tracer tracer(/*enabled=*/false);
  {
    obs::WriterLease lease(&tracer);
    ASSERT_TRUE(lease.active());
    lease.emit(obs::TraceEvent{});
  }
  std::vector<obs::TraceEvent> out;
  tracer.drain(&out);
  EXPECT_TRUE(out.empty());

  tracer.set_enabled(true);
  {
    obs::WriterLease lease(&tracer);
    lease.emit(obs::TraceEvent{});
  }
  tracer.drain(&out);
  EXPECT_EQ(out.size(), 1u);
}

TEST(Tracer, NullTracerLeaseIsInertAndWritersArePooled) {
  obs::WriterLease none(nullptr);
  EXPECT_FALSE(none.active());
  none.emit(obs::TraceEvent{});  // must not crash

  obs::Tracer tracer;
  obs::TraceWriter* first = nullptr;
  {
    obs::WriterLease lease(&tracer);
    first = tracer.acquire_writer();  // second concurrent lease
    tracer.release_writer(first);
  }
  // Both writers returned to the pool; a fresh lease reuses one of them.
  obs::TraceWriter* again = tracer.acquire_writer();
  EXPECT_TRUE(again == first || again != nullptr);
  tracer.release_writer(again);
}

TEST(Tracer, DroppedRacesWriterPoolGrowth) {
  // Regression for a latent hazard: dropped() used to iterate writers_
  // without the pool mutex while acquire_writer could push_back (and
  // reallocate) the same vector from another thread — a use-after-free
  // under concurrent sessions polling drop counters. dropped() locks now;
  // this recreates the racing pattern for TSAN/ASAN.
  obs::Tracer tracer;
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        obs::TraceWriter* w = tracer.acquire_writer();  // may grow the pool
        w->emit(obs::TraceEvent{});
        tracer.release_writer(w);
      }
    });
  }
  std::uint64_t last = 0;
  for (int i = 0; i < 20000; ++i) last = tracer.dropped();
  stop.store(true);
  for (auto& w : workers) w.join();
  EXPECT_GE(tracer.dropped(), last);
}

TEST(TraceSession, SessionDimensionStampsFoldedEvents) {
  obs::TraceSession session;
  session.set_session(3);
  session.add_host_event(1, "sched", obs::EventKind::kSched, 1.0);
  {
    obs::WriterLease lease(&session.tracer);
    obs::TraceEvent e;
    e.device = 0;
    lease.emit(e);
  }
  session.fold_execution();
  ASSERT_EQ(session.sink.size(), 2u);
  for (const auto& e : session.sink.events()) {
    EXPECT_EQ(e.session, 3);
  }
}

TEST(TraceSession, HostEventsSerializeOnTheHostLane) {
  obs::TraceSession session;
  session.add_host_event(1, "lp_solve", obs::EventKind::kLpSolve, 2.0);
  session.add_host_event(1, "sched", obs::EventKind::kSched, 1.0);
  EXPECT_DOUBLE_EQ(session.origin_ms(), 3.0);
  ASSERT_EQ(session.sink.size(), 2u);
  const auto& ev = session.sink.events();
  EXPECT_EQ(ev[0].device, -1);
  EXPECT_EQ(ev[0].lane, obs::kLaneHost);
  EXPECT_DOUBLE_EQ(ev[0].t_start_ms, 0.0);
  EXPECT_DOUBLE_EQ(ev[0].t_end_ms, 2.0);
  EXPECT_DOUBLE_EQ(ev[1].t_start_ms, 2.0);
  EXPECT_DOUBLE_EQ(ev[1].t_end_ms, 3.0);
}

// ---- minimal Chrome trace JSON parser (format under test is ours) ---------

/// Splits the top-level objects of the first JSON array in `json`, honoring
/// strings and escapes, so the test re-parses what the sink wrote rather
/// than trusting line layout.
std::vector<std::string> split_objects(const std::string& json) {
  std::vector<std::string> out;
  const std::size_t start = json.find('[');
  if (start == std::string::npos) return out;
  int depth = 0;
  bool in_str = false, esc = false;
  std::size_t obj_begin = 0;
  for (std::size_t i = start + 1; i < json.size(); ++i) {
    const char c = json[i];
    if (in_str) {
      if (esc) {
        esc = false;
      } else if (c == '\\') {
        esc = true;
      } else if (c == '"') {
        in_str = false;
      }
      continue;
    }
    if (c == '"') {
      in_str = true;
    } else if (c == '{') {
      if (depth == 0) obj_begin = i;
      ++depth;
    } else if (c == '}') {
      --depth;
      if (depth == 0) out.push_back(json.substr(obj_begin, i - obj_begin + 1));
    } else if (c == ']' && depth == 0) {
      break;
    }
  }
  return out;
}

std::string str_field(const std::string& obj, const std::string& key) {
  const std::string pat = "\"" + key + "\":\"";
  std::size_t p = obj.find(pat);
  if (p == std::string::npos) return {};
  p += pat.size();
  std::string out;
  for (; p < obj.size(); ++p) {
    if (obj[p] == '\\' && p + 1 < obj.size()) {
      out += obj[++p];
      continue;
    }
    if (obj[p] == '"') break;
    out += obj[p];
  }
  return out;
}

double num_field(const std::string& obj, const std::string& key,
                 double def = -1.0) {
  const std::string pat = "\"" + key + "\":";
  const std::size_t p = obj.find(pat);
  if (p == std::string::npos) return def;
  return std::strtod(obj.c_str() + p + pat.size(), nullptr);
}

struct ParsedEvent {
  std::string name, ph, kind, status;
  int pid = -1, tid = -1, frame = -1;
  double ts = 0.0, dur = 0.0;
};

std::vector<ParsedEvent> parse_trace(const std::string& json,
                                     std::vector<std::string>* metadata) {
  std::vector<ParsedEvent> events;
  for (const std::string& obj : split_objects(json)) {
    ParsedEvent e;
    e.ph = str_field(obj, "ph");
    if (e.ph == "M") {
      if (metadata != nullptr) metadata->push_back(obj);
      continue;
    }
    e.name = str_field(obj, "name");
    e.kind = str_field(obj, "kind");
    e.status = str_field(obj, "status");
    e.pid = static_cast<int>(num_field(obj, "pid"));
    e.tid = static_cast<int>(num_field(obj, "tid"));
    e.frame = static_cast<int>(num_field(obj, "frame"));
    e.ts = num_field(obj, "ts");
    e.dur = num_field(obj, "dur");
    events.push_back(e);
  }
  return events;
}

// ---- the round trip -------------------------------------------------------

TEST(TraceRoundTrip, FaultedEncodeExportsConsistentChromeTrace) {
  const EncoderConfig cfg = small_config();
  const PlatformTopology topo = test_topo(2);
  // GPU#1's kernels fault on frame 2: two failed attempts (streak reaches
  // the quarantine threshold), then a clean attempt on the survivors.
  FaultSchedule faults;
  faults.add({/*device=*/2, /*frame_begin=*/2, /*frame_end=*/3,
              FaultKind::kKernelTransient});

  obs::TraceSession session;
  FrameworkOptions opts;
  opts.trace = &session;
  VirtualFramework fw(cfg, topo, opts, {}, faults);
  for (int f = 0; f < 3; ++f) fw.encode_frame();
  EXPECT_EQ(session.tracer.dropped(), 0u);
  for (int i = 0; i < topo.num_devices(); ++i) {
    session.sink.set_device_name(i, topo.devices[i].name);
  }

  const std::string path =
      testing::TempDir() + "/feves_roundtrip.trace.json";
  ASSERT_TRUE(session.sink.save(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();

  std::vector<std::string> metadata;
  const std::vector<ParsedEvent> events = parse_trace(json, &metadata);
  ASSERT_FALSE(events.empty());

  // Track naming covers the host (pid 0) and all three devices.
  auto named = [&](const std::string& what, const std::string& value) {
    for (const std::string& m : metadata) {
      if (str_field(m, "name") == what && m.find(value) != std::string::npos) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(named("process_name", "host"));
  EXPECT_TRUE(named("process_name", "dev0"));
  EXPECT_TRUE(named("process_name", "GPU#1"));
  EXPECT_TRUE(named("thread_name", "compute"));
  EXPECT_TRUE(named("thread_name", "copyH2D"));

  int failed = 0, cancelled = 0, lp_solves = 0;
  std::map<int, std::pair<double, double>> frame_span;  // frame -> [min, max]
  std::map<std::pair<int, int>, std::vector<ParsedEvent>> lanes;
  for (const ParsedEvent& e : events) {
    ASSERT_EQ(e.ph, "X") << e.name;
    ASSERT_GE(e.frame, 1);
    ASSERT_LE(e.frame, 3);
    ASSERT_GE(e.dur, 0.0) << e.name;
    failed += e.status == "failed" ? 1 : 0;
    cancelled += e.status == "cancelled" ? 1 : 0;
    lp_solves += e.kind == "lp_solve" ? 1 : 0;
    auto it = frame_span.find(e.frame);
    if (it == frame_span.end()) {
      frame_span[e.frame] = {e.ts, e.ts + e.dur};
    } else {
      it->second.first = std::min(it->second.first, e.ts);
      it->second.second = std::max(it->second.second, e.ts + e.dur);
    }
    lanes[{e.pid, e.tid}].push_back(e);
  }

  // The injected fault shows up as failed ops on GPU#1 (pid 3) and
  // cancelled dependents; the LP solves show on the host track.
  EXPECT_GE(failed, 1);
  EXPECT_GE(cancelled, 1);
  EXPECT_GE(lp_solves, 1);
  for (const ParsedEvent& e : events) {
    if (e.status == "failed") EXPECT_EQ(e.pid, 3) << e.name;
    if (e.kind == "lp_solve" || e.kind == "sched") EXPECT_EQ(e.pid, 0);
  }

  // Lanes are serial resources: within one (pid, tid) track, events that
  // occupied the lane must not overlap (the executors' FIFO-per-lane
  // invariant). Zero-duration events — failed and cancelled ops — consume
  // no lane time and are exempt.
  for (auto& [key, lane] : lanes) {
    std::sort(lane.begin(), lane.end(),
              [](const ParsedEvent& a, const ParsedEvent& b) {
                return a.ts < b.ts;
              });
    double busy_until = -1.0;
    std::string prev_name;
    for (const ParsedEvent& e : lane) {
      if (e.dur <= 0.0) continue;
      EXPECT_GE(e.ts, busy_until - 1e-3)
          << "overlap on pid " << key.first << " tid " << key.second
          << " between '" << prev_name << "' and '" << e.name << "'";
      busy_until = e.ts + e.dur;
      prev_name = e.name;
    }
  }

  // Frames tile the global timeline in order (the session rebases each
  // attempt past everything already recorded).
  ASSERT_EQ(frame_span.size(), 3u);
  EXPECT_GE(frame_span[2].first, frame_span[1].second - 1e-3);
  EXPECT_GE(frame_span[3].first, frame_span[2].second - 1e-3);
}

TEST(TraceRoundTrip, DisabledSessionCollectsNothing) {
  const EncoderConfig cfg = small_config();
  obs::TraceSession session(/*enabled=*/false);
  FrameworkOptions opts;
  opts.trace = &session;
  VirtualFramework fw(cfg, test_topo(2), opts);
  for (int f = 0; f < 2; ++f) fw.encode_frame();
  // Host events and op events are both suppressed while disabled.
  EXPECT_EQ(session.sink.size(), 0u);
  EXPECT_EQ(session.tracer.dropped(), 0u);
}

// ---- scheduler telemetry through FrameStats -------------------------------

TEST(SchedTelemetry, LpEffortAndPredictionErrorAreExposed) {
  const EncoderConfig cfg = hd_ish_config();
  VirtualFramework fw(cfg, test_topo(2), FrameworkOptions{});
  const std::vector<FrameStats> stats = fw.encode(6);

  // Frame 1 is the equidistant initialization: no LP runs.
  EXPECT_EQ(stats[0].telemetry.lp_solves, 0);
  EXPECT_DOUBLE_EQ(stats[0].telemetry.predicted_tau_tot_ms, 0.0);

  for (std::size_t f = 1; f < stats.size(); ++f) {
    const obs::SchedTelemetry& t = stats[f].telemetry;
    // Once the warm cache converges, a frame may skip the LP entirely and
    // reuse the cached distribution — but it always reports one or the
    // other.
    EXPECT_GE(t.lp_solves + t.lp_skipped, 1) << "frame " << f;
    if (t.lp_solves > 0) {
      EXPECT_GT(t.lp_solve_ms, 0.0) << "frame " << f;
      EXPECT_GE(t.delta_iterations, 1) << "frame " << f;
    }
    EXPECT_GT(t.predicted_tau_tot_ms, 0.0) << "frame " << f;
    EXPECT_GT(t.measured_tau_tot_ms, 0.0) << "frame " << f;
    ASSERT_EQ(static_cast<int>(t.dev.size()), 3) << "frame " << f;
  }

  // Virtual mode re-characterizes exactly, so once the reference window has
  // filled (refs = 2) the LP's predictions track the DES measurements
  // closely — the convergence Algorithm 1 promises, now as a metric.
  const obs::SchedTelemetry& last = stats.back().telemetry;
  EXPECT_LT(last.misprediction(), 0.1);
  EXPECT_LT(last.worst_module_error(), 0.05);
  EXPECT_GT(last.measured_tau1_ms, 0.0);
  EXPECT_GE(last.measured_tau2_ms, last.measured_tau1_ms);
}

}  // namespace
}  // namespace feves
