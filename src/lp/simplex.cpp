#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace feves::lp {

namespace {

constexpr double kEps = 1e-9;

/// Consecutive degenerate pivots (min-ratio ≈ 0, objective unchanged)
/// tolerated under Dantzig's rule before switching to Bland's rule. Cycles
/// are made entirely of degenerate pivots, so a long streak is the signal;
/// the first non-degenerate pivot switches back.
constexpr int kStallThreshold = 12;

/// Dense simplex tableau. Column layout: [decision | slack/surplus |
/// artificial], final column is the RHS. One row per constraint plus the
/// objective row kept separately as reduced costs.
struct Tableau {
  int rows = 0;
  int cols = 0;  // variables only; RHS stored separately
  std::vector<std::vector<double>> a;
  std::vector<double> rhs;
  std::vector<double> cost;     // current objective row (reduced costs)
  double cost_rhs = 0.0;        // negative of current objective value
  std::vector<int> basis;       // basis variable per row
  std::vector<bool> blocked;    // columns barred from entering (phase-2
                                // artificials: clamping their reduced cost
                                // once is NOT enough — later pivots can turn
                                // it negative again and re-admit them)

  void pivot(int prow, int pcol) {
    const double pv = a[prow][pcol];
    FEVES_CHECK(std::abs(pv) > kEps);
    const double inv = 1.0 / pv;
    for (int j = 0; j < cols; ++j) a[prow][j] *= inv;
    rhs[prow] *= inv;
    a[prow][pcol] = 1.0;  // avoid drift
    for (int i = 0; i < rows; ++i) {
      if (i == prow) continue;
      const double f = a[i][pcol];
      if (std::abs(f) < kEps) {
        a[i][pcol] = 0.0;
        continue;
      }
      for (int j = 0; j < cols; ++j) a[i][j] -= f * a[prow][j];
      a[i][pcol] = 0.0;
      rhs[i] -= f * rhs[prow];
    }
    const double f = cost[pcol];
    if (std::abs(f) > 0.0) {
      for (int j = 0; j < cols; ++j) cost[j] -= f * a[prow][j];
      cost[pcol] = 0.0;
      cost_rhs -= f * rhs[prow];
    }
    basis[prow] = pcol;
  }

  int iterations = 0;          // pivots across all iterate() calls
  bool bland_fallback = false;  // stall fallback engaged at least once

  /// Runs simplex iterations until optimal/unbounded/limit. Dantzig's rule
  /// (most negative reduced cost) by default; after kStallThreshold
  /// consecutive degenerate pivots, falls back to Bland's rule, which is
  /// guaranteed to escape any cycle. The first pivot that actually moves
  /// the solution switches back to Dantzig.
  SolveStatus iterate(int max_iters) {
    int degenerate_streak = 0;
    for (int iter = 0; iter < max_iters; ++iter) {
      const bool bland = degenerate_streak >= kStallThreshold;
      if (bland) bland_fallback = true;

      // Entering column.
      int pcol = -1;
      double most_negative = -kEps;
      for (int j = 0; j < cols; ++j) {
        if (!blocked.empty() && blocked[j]) continue;
        if (cost[j] >= -kEps) continue;
        if (bland) {  // lowest eligible index
          pcol = j;
          break;
        }
        if (cost[j] < most_negative) {  // most negative, ties by lowest index
          most_negative = cost[j];
          pcol = j;
        }
      }
      if (pcol < 0) return SolveStatus::kOptimal;

      // Leaving row: exact minimum ratio first, then break ties among the
      // rows achieving it by lowest basis variable index (Bland). Two
      // passes so the tie tolerance never compounds: a one-pass
      // `ratio < best + eps` update can creep the accepted ratio upward
      // across rows and pick a row strictly above the true minimum.
      double min_ratio = std::numeric_limits<double>::infinity();
      for (int i = 0; i < rows; ++i) {
        if (a[i][pcol] > kEps) {
          min_ratio = std::min(min_ratio, rhs[i] / a[i][pcol]);
        }
      }
      if (min_ratio == std::numeric_limits<double>::infinity()) {
        return SolveStatus::kUnbounded;
      }
      int prow = -1;
      for (int i = 0; i < rows; ++i) {
        if (a[i][pcol] > kEps && rhs[i] / a[i][pcol] <= min_ratio + kEps &&
            (prow < 0 || basis[i] < basis[prow])) {
          prow = i;
        }
      }
      pivot(prow, pcol);
      ++iterations;
      if (min_ratio <= kEps) {
        ++degenerate_streak;
      } else {
        degenerate_streak = 0;
      }
    }
    return SolveStatus::kIterationLimit;
  }
};

/// Auxiliary-column bookkeeping produced while building a tableau.
struct BuildInfo {
  int num_slack = 0;
  std::vector<int> artificial_cols;
};

/// Builds the canonical tableau for `p`: rows normalized to non-negative
/// RHS, column layout [decision | slack/surplus | artificial], artificial
/// variables seeded as the initial basis of kGe/kEq rows.
Tableau build_tableau(const Problem& p, BuildInfo* info) {
  const int n = p.num_variables();
  const int m = p.num_constraints();

  // Count auxiliary columns.
  int num_slack = 0;
  int num_artificial = 0;
  for (const auto& c : p.constraints()) {
    const bool rhs_neg = c.rhs < 0.0;
    const Relation rel =
        !rhs_neg ? c.rel
                 : (c.rel == Relation::kLe
                        ? Relation::kGe
                        : (c.rel == Relation::kGe ? Relation::kLe : Relation::kEq));
    if (rel != Relation::kEq) ++num_slack;
    if (rel != Relation::kLe) ++num_artificial;
  }

  Tableau t;
  t.rows = m;
  t.cols = n + num_slack + num_artificial;
  t.a.assign(m, std::vector<double>(t.cols, 0.0));
  t.rhs.assign(m, 0.0);
  t.basis.assign(m, -1);

  int next_slack = n;
  int next_art = n + num_slack;
  info->num_slack = num_slack;
  info->artificial_cols.clear();

  for (int i = 0; i < m; ++i) {
    const Constraint& c = p.constraints()[i];
    const double sign = c.rhs < 0.0 ? -1.0 : 1.0;
    Relation rel = c.rel;
    if (sign < 0.0) {
      rel = rel == Relation::kLe ? Relation::kGe
            : rel == Relation::kGe ? Relation::kLe
                                   : Relation::kEq;
    }
    for (const Term& term : c.terms) t.a[i][term.var] += sign * term.coeff;
    t.rhs[i] = sign * c.rhs;

    if (rel == Relation::kLe) {
      t.a[i][next_slack] = 1.0;
      t.basis[i] = next_slack++;
    } else if (rel == Relation::kGe) {
      t.a[i][next_slack++] = -1.0;
      t.a[i][next_art] = 1.0;
      t.basis[i] = next_art;
      info->artificial_cols.push_back(next_art++);
    } else {
      t.a[i][next_art] = 1.0;
      t.basis[i] = next_art;
      info->artificial_cols.push_back(next_art++);
    }
    // The slack index advanced only for kLe above; for kGe we advanced
    // inline. (kEq uses no slack.)
  }
  return t;
}

/// Tolerance for accepting a warm basis: pivots smaller than this are
/// treated as singular, RHS entries below -this as infeasible. Looser than
/// kEps on purpose — a marginal warm basis is not worth numerical risk when
/// the cold path is cheap and always available.
constexpr double kWarmEps = 1e-7;

/// Factorizes `t` onto `warm` with one Gauss-Jordan pivot per basis column,
/// picking the largest remaining pivot row for each column (the basis is a
/// set — its row assignment is free, and a fixed order can hit spurious
/// zero pivots on a perfectly usable basis). Returns false on any
/// rejection: structural mismatch, an artificial or repeated column in the
/// basis, a singular basis, or a basis infeasible for the new RHS. On
/// rejection the tableau may be partially pivoted — the caller must rebuild
/// it for the cold path.
bool factorize_warm(Tableau& t, const Basis& warm, int n, int num_slack) {
  if (static_cast<int>(warm.cols.size()) != t.rows) return false;
  if (warm.num_cols != t.cols) return false;
  std::vector<bool> used(static_cast<std::size_t>(t.cols), false);
  for (int c : warm.cols) {
    if (c < 0 || c >= n + num_slack) return false;
    if (used[c]) return false;
    used[c] = true;
  }
  t.cost.assign(static_cast<std::size_t>(t.cols), 0.0);
  t.cost_rhs = 0.0;
  std::vector<bool> row_done(static_cast<std::size_t>(t.rows), false);
  for (int c : warm.cols) {
    int best = -1;
    double best_abs = kWarmEps;
    for (int i = 0; i < t.rows; ++i) {
      if (row_done[i]) continue;
      if (std::abs(t.a[i][c]) > best_abs) {
        best_abs = std::abs(t.a[i][c]);
        best = i;
      }
    }
    if (best < 0) return false;
    t.pivot(best, c);
    row_done[best] = true;
  }
  for (double& r : t.rhs) {
    if (r < -kWarmEps) return false;
    if (r < 0.0) r = 0.0;
  }
  return true;
}

/// Prices the original objective onto the current basis, bars artificial
/// columns from re-entering, runs phase-2 iterations and extracts the
/// solution (including the final basis). Shared by the warm and cold paths.
Solution run_phase2(Tableau& t, const Problem& p,
                    const std::vector<int>& artificial_cols, bool warm_used) {
  const int n = p.num_variables();
  const int max_iters = 200 * (t.cols + t.rows + 8);

  t.cost.assign(static_cast<std::size_t>(t.cols), 0.0);
  t.cost_rhs = 0.0;
  for (int j = 0; j < n; ++j) t.cost[j] = p.objective()[j];
  for (int i = 0; i < t.rows; ++i) {
    const double cb = t.basis[i] < n ? p.objective()[t.basis[i]] : 0.0;
    if (cb != 0.0) {
      for (int j = 0; j < t.cols; ++j) t.cost[j] -= cb * t.a[i][j];
      t.cost_rhs -= cb * t.rhs[i];
    }
  }
  if (!artificial_cols.empty()) {
    t.blocked.assign(static_cast<std::size_t>(t.cols), false);
    for (int col : artificial_cols) t.blocked[col] = true;
  }

  Solution sol;
  sol.status = t.iterate(max_iters);
  sol.iterations = t.iterations;
  sol.bland_fallback = t.bland_fallback;
  sol.warm_used = warm_used;
  if (sol.status != SolveStatus::kOptimal) return sol;

  sol.values.assign(static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < t.rows; ++i) {
    if (t.basis[i] < n) sol.values[t.basis[i]] = t.rhs[i];
  }
  sol.objective = 0.0;
  for (int j = 0; j < n; ++j) sol.objective += p.objective()[j] * sol.values[j];
  sol.basis.cols = t.basis;
  sol.basis.num_cols = t.cols;
  return sol;
}

}  // namespace

int Problem::add_variable(std::string name, double objective_coeff) {
  objective_.push_back(objective_coeff);
  if (name.empty()) name = "x" + std::to_string(objective_.size() - 1);
  names_.push_back(std::move(name));
  return static_cast<int>(objective_.size()) - 1;
}

void Problem::set_objective(int var, double coeff) {
  FEVES_CHECK(var >= 0 && var < num_variables());
  objective_[var] = coeff;
}

int Problem::add_constraint(std::vector<Term> terms, Relation rel, double rhs) {
  for (const Term& t : terms) {
    FEVES_CHECK_MSG(t.var >= 0 && t.var < num_variables(),
                    "constraint references unknown variable " << t.var);
    FEVES_CHECK_MSG(std::isfinite(t.coeff), "non-finite coefficient");
  }
  FEVES_CHECK_MSG(std::isfinite(rhs), "non-finite rhs");
  constraints_.push_back({std::move(terms), rel, rhs});
  return static_cast<int>(constraints_.size()) - 1;
}

Solution solve(const Problem& p, const Basis* warm) {
  const int n = p.num_variables();
  const int m = p.num_constraints();

  // Warm attempt: factorize onto the previous basis and go straight to
  // phase 2. Any rejection falls through to the cold path on a freshly
  // built tableau (the failed factorization corrupts its own copy only).
  if (warm != nullptr && warm->usable()) {
    BuildInfo info;
    Tableau t = build_tableau(p, &info);
    if (factorize_warm(t, *warm, n, info.num_slack)) {
      Solution sol = run_phase2(t, p, info.artificial_cols, /*warm_used=*/true);
      if (sol.status == SolveStatus::kOptimal) return sol;
    }
  }

  BuildInfo info;
  Tableau t = build_tableau(p, &info);
  const int max_iters = 200 * (t.cols + t.rows + 8);

  // Phase 1: minimize the sum of artificial variables.
  if (!info.artificial_cols.empty()) {
    t.cost.assign(t.cols, 0.0);
    t.cost_rhs = 0.0;
    for (int col : info.artificial_cols) t.cost[col] = 1.0;
    // Price out the artificial basis.
    for (int i = 0; i < m; ++i) {
      if (t.cost[t.basis[i]] != 0.0) {
        for (int j = 0; j < t.cols; ++j) t.cost[j] -= t.a[i][j];
        t.cost_rhs -= t.rhs[i];
      }
    }
    const SolveStatus s1 = t.iterate(max_iters);
    if (s1 == SolveStatus::kIterationLimit) {
      Solution sol;
      sol.status = SolveStatus::kIterationLimit;
      sol.iterations = t.iterations;
      sol.bland_fallback = t.bland_fallback;
      return sol;
    }
    const double phase1_obj = -t.cost_rhs;
    if (phase1_obj > 1e-6) {
      Solution sol;
      sol.status = SolveStatus::kInfeasible;
      sol.iterations = t.iterations;
      sol.bland_fallback = t.bland_fallback;
      return sol;
    }
    // Drive remaining artificial variables out of the basis where possible.
    for (int i = 0; i < m; ++i) {
      if (t.basis[i] >= n + info.num_slack) {
        int pcol = -1;
        for (int j = 0; j < n + info.num_slack; ++j) {
          if (std::abs(t.a[i][j]) > kEps) {
            pcol = j;
            break;
          }
        }
        if (pcol >= 0) t.pivot(i, pcol);
        // A degenerate all-zero row stays basic in the artificial at value 0;
        // harmless for phase 2 because the column is forbidden below.
      }
    }
  }

  return run_phase2(t, p, info.artificial_cols, /*warm_used=*/false);
}

double max_violation(const Problem& p, const std::vector<double>& values) {
  FEVES_CHECK(static_cast<int>(values.size()) == p.num_variables());
  double worst = 0.0;
  for (double v : values) worst = std::max(worst, -v);
  for (const Constraint& c : p.constraints()) {
    double lhs = 0.0;
    for (const Term& t : c.terms) lhs += t.coeff * values[t.var];
    switch (c.rel) {
      case Relation::kLe:
        worst = std::max(worst, lhs - c.rhs);
        break;
      case Relation::kGe:
        worst = std::max(worst, c.rhs - lhs);
        break;
      case Relation::kEq:
        worst = std::max(worst, std::abs(lhs - c.rhs));
        break;
    }
  }
  return worst;
}

std::string to_string(const Problem& p) {
  std::string out = "min";
  for (int j = 0; j < p.num_variables(); ++j) {
    if (p.objective()[j] != 0.0) {
      out += " + " + std::to_string(p.objective()[j]) + "*" +
             p.variable_name(j);
    }
  }
  out += "\n";
  for (const Constraint& c : p.constraints()) {
    for (const Term& t : c.terms) {
      out += " + " + std::to_string(t.coeff) + "*" + p.variable_name(t.var);
    }
    out += c.rel == Relation::kLe ? " <= " : c.rel == Relation::kGe ? " >= " : " == ";
    out += std::to_string(c.rhs) + "\n";
  }
  return out;
}

}  // namespace feves::lp
