#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace feves::lp {

namespace {

constexpr double kEps = 1e-9;

/// Consecutive degenerate pivots (min-ratio ≈ 0, objective unchanged)
/// tolerated under Dantzig's rule before switching to Bland's rule. Cycles
/// are made entirely of degenerate pivots, so a long streak is the signal;
/// the first non-degenerate pivot switches back.
constexpr int kStallThreshold = 12;

/// Dense simplex tableau. Column layout: [decision | slack/surplus |
/// artificial], final column is the RHS. One row per constraint plus the
/// objective row kept separately as reduced costs.
struct Tableau {
  int rows = 0;
  int cols = 0;  // variables only; RHS stored separately
  std::vector<std::vector<double>> a;
  std::vector<double> rhs;
  std::vector<double> cost;     // current objective row (reduced costs)
  double cost_rhs = 0.0;        // negative of current objective value
  std::vector<int> basis;       // basis variable per row
  std::vector<bool> blocked;    // columns barred from entering (phase-2
                                // artificials: clamping their reduced cost
                                // once is NOT enough — later pivots can turn
                                // it negative again and re-admit them)

  void pivot(int prow, int pcol) {
    const double pv = a[prow][pcol];
    FEVES_CHECK(std::abs(pv) > kEps);
    const double inv = 1.0 / pv;
    for (int j = 0; j < cols; ++j) a[prow][j] *= inv;
    rhs[prow] *= inv;
    a[prow][pcol] = 1.0;  // avoid drift
    for (int i = 0; i < rows; ++i) {
      if (i == prow) continue;
      const double f = a[i][pcol];
      if (std::abs(f) < kEps) {
        a[i][pcol] = 0.0;
        continue;
      }
      for (int j = 0; j < cols; ++j) a[i][j] -= f * a[prow][j];
      a[i][pcol] = 0.0;
      rhs[i] -= f * rhs[prow];
    }
    const double f = cost[pcol];
    if (std::abs(f) > 0.0) {
      for (int j = 0; j < cols; ++j) cost[j] -= f * a[prow][j];
      cost[pcol] = 0.0;
      cost_rhs -= f * rhs[prow];
    }
    basis[prow] = pcol;
  }

  int iterations = 0;          // pivots across all iterate() calls
  bool bland_fallback = false;  // stall fallback engaged at least once

  /// Runs simplex iterations until optimal/unbounded/limit. Dantzig's rule
  /// (most negative reduced cost) by default; after kStallThreshold
  /// consecutive degenerate pivots, falls back to Bland's rule, which is
  /// guaranteed to escape any cycle. The first pivot that actually moves
  /// the solution switches back to Dantzig.
  SolveStatus iterate(int max_iters) {
    int degenerate_streak = 0;
    for (int iter = 0; iter < max_iters; ++iter) {
      const bool bland = degenerate_streak >= kStallThreshold;
      if (bland) bland_fallback = true;

      // Entering column.
      int pcol = -1;
      double most_negative = -kEps;
      for (int j = 0; j < cols; ++j) {
        if (!blocked.empty() && blocked[j]) continue;
        if (cost[j] >= -kEps) continue;
        if (bland) {  // lowest eligible index
          pcol = j;
          break;
        }
        if (cost[j] < most_negative) {  // most negative, ties by lowest index
          most_negative = cost[j];
          pcol = j;
        }
      }
      if (pcol < 0) return SolveStatus::kOptimal;

      // Leaving row: exact minimum ratio first, then break ties among the
      // rows achieving it by lowest basis variable index (Bland). Two
      // passes so the tie tolerance never compounds: a one-pass
      // `ratio < best + eps` update can creep the accepted ratio upward
      // across rows and pick a row strictly above the true minimum.
      double min_ratio = std::numeric_limits<double>::infinity();
      for (int i = 0; i < rows; ++i) {
        if (a[i][pcol] > kEps) {
          min_ratio = std::min(min_ratio, rhs[i] / a[i][pcol]);
        }
      }
      if (min_ratio == std::numeric_limits<double>::infinity()) {
        return SolveStatus::kUnbounded;
      }
      int prow = -1;
      for (int i = 0; i < rows; ++i) {
        if (a[i][pcol] > kEps && rhs[i] / a[i][pcol] <= min_ratio + kEps &&
            (prow < 0 || basis[i] < basis[prow])) {
          prow = i;
        }
      }
      pivot(prow, pcol);
      ++iterations;
      if (min_ratio <= kEps) {
        ++degenerate_streak;
      } else {
        degenerate_streak = 0;
      }
    }
    return SolveStatus::kIterationLimit;
  }
};

}  // namespace

int Problem::add_variable(std::string name, double objective_coeff) {
  objective_.push_back(objective_coeff);
  if (name.empty()) name = "x" + std::to_string(objective_.size() - 1);
  names_.push_back(std::move(name));
  return static_cast<int>(objective_.size()) - 1;
}

void Problem::set_objective(int var, double coeff) {
  FEVES_CHECK(var >= 0 && var < num_variables());
  objective_[var] = coeff;
}

int Problem::add_constraint(std::vector<Term> terms, Relation rel, double rhs) {
  for (const Term& t : terms) {
    FEVES_CHECK_MSG(t.var >= 0 && t.var < num_variables(),
                    "constraint references unknown variable " << t.var);
    FEVES_CHECK_MSG(std::isfinite(t.coeff), "non-finite coefficient");
  }
  FEVES_CHECK_MSG(std::isfinite(rhs), "non-finite rhs");
  constraints_.push_back({std::move(terms), rel, rhs});
  return static_cast<int>(constraints_.size()) - 1;
}

Solution solve(const Problem& p) {
  const int n = p.num_variables();
  const int m = p.num_constraints();

  // Count auxiliary columns.
  int num_slack = 0;
  int num_artificial = 0;
  for (const auto& c : p.constraints()) {
    const bool rhs_neg = c.rhs < 0.0;
    const Relation rel =
        !rhs_neg ? c.rel
                 : (c.rel == Relation::kLe
                        ? Relation::kGe
                        : (c.rel == Relation::kGe ? Relation::kLe : Relation::kEq));
    if (rel != Relation::kEq) ++num_slack;
    if (rel != Relation::kLe) ++num_artificial;
  }

  Tableau t;
  t.rows = m;
  t.cols = n + num_slack + num_artificial;
  t.a.assign(m, std::vector<double>(t.cols, 0.0));
  t.rhs.assign(m, 0.0);
  t.basis.assign(m, -1);

  int next_slack = n;
  int next_art = n + num_slack;
  std::vector<int> artificial_cols;

  for (int i = 0; i < m; ++i) {
    const Constraint& c = p.constraints()[i];
    const double sign = c.rhs < 0.0 ? -1.0 : 1.0;
    Relation rel = c.rel;
    if (sign < 0.0) {
      rel = rel == Relation::kLe ? Relation::kGe
            : rel == Relation::kGe ? Relation::kLe
                                   : Relation::kEq;
    }
    for (const Term& term : c.terms) t.a[i][term.var] += sign * term.coeff;
    t.rhs[i] = sign * c.rhs;

    if (rel == Relation::kLe) {
      t.a[i][next_slack] = 1.0;
      t.basis[i] = next_slack++;
    } else if (rel == Relation::kGe) {
      t.a[i][next_slack++] = -1.0;
      t.a[i][next_art] = 1.0;
      t.basis[i] = next_art;
      artificial_cols.push_back(next_art++);
    } else {
      t.a[i][next_art] = 1.0;
      t.basis[i] = next_art;
      artificial_cols.push_back(next_art++);
    }
    // The slack index advanced only for kLe above; for kGe we advanced
    // inline. (kEq uses no slack.)
  }

  const int max_iters = 200 * (t.cols + t.rows + 8);

  // Phase 1: minimize the sum of artificial variables.
  if (!artificial_cols.empty()) {
    t.cost.assign(t.cols, 0.0);
    t.cost_rhs = 0.0;
    for (int col : artificial_cols) t.cost[col] = 1.0;
    // Price out the artificial basis.
    for (int i = 0; i < m; ++i) {
      if (t.cost[t.basis[i]] != 0.0) {
        for (int j = 0; j < t.cols; ++j) t.cost[j] -= t.a[i][j];
        t.cost_rhs -= t.rhs[i];
      }
    }
    const SolveStatus s1 = t.iterate(max_iters);
    if (s1 == SolveStatus::kIterationLimit) {
      return {SolveStatus::kIterationLimit, 0.0, {}, t.iterations,
              t.bland_fallback};
    }
    const double phase1_obj = -t.cost_rhs;
    if (phase1_obj > 1e-6) {
      return {SolveStatus::kInfeasible, 0.0, {}, t.iterations,
              t.bland_fallback};
    }
    // Drive remaining artificial variables out of the basis where possible.
    for (int i = 0; i < m; ++i) {
      if (t.basis[i] >= n + num_slack) {
        int pcol = -1;
        for (int j = 0; j < n + num_slack; ++j) {
          if (std::abs(t.a[i][j]) > kEps) {
            pcol = j;
            break;
          }
        }
        if (pcol >= 0) t.pivot(i, pcol);
        // A degenerate all-zero row stays basic in the artificial at value 0;
        // harmless for phase 2 because the column is forbidden below.
      }
    }
  }

  // Phase 2: original objective, artificial columns forbidden.
  t.cost.assign(t.cols, 0.0);
  t.cost_rhs = 0.0;
  for (int j = 0; j < n; ++j) t.cost[j] = p.objective()[j];
  for (int i = 0; i < m; ++i) {
    const double cb = t.basis[i] < n ? p.objective()[t.basis[i]] : 0.0;
    if (cb != 0.0) {
      for (int j = 0; j < t.cols; ++j) t.cost[j] -= cb * t.a[i][j];
      t.cost_rhs -= cb * t.rhs[i];
    }
  }
  // Artificial columns are permanently barred from entering in phase 2.
  if (!artificial_cols.empty()) {
    t.blocked.assign(static_cast<std::size_t>(t.cols), false);
    for (int col : artificial_cols) t.blocked[col] = true;
  }

  const SolveStatus s2 = t.iterate(max_iters);
  if (s2 != SolveStatus::kOptimal) {
    return {s2, 0.0, {}, t.iterations, t.bland_fallback};
  }

  Solution sol;
  sol.status = SolveStatus::kOptimal;
  sol.iterations = t.iterations;
  sol.bland_fallback = t.bland_fallback;
  sol.values.assign(n, 0.0);
  for (int i = 0; i < m; ++i) {
    if (t.basis[i] < n) sol.values[t.basis[i]] = t.rhs[i];
  }
  sol.objective = 0.0;
  for (int j = 0; j < n; ++j) sol.objective += p.objective()[j] * sol.values[j];
  return sol;
}

double max_violation(const Problem& p, const std::vector<double>& values) {
  FEVES_CHECK(static_cast<int>(values.size()) == p.num_variables());
  double worst = 0.0;
  for (double v : values) worst = std::max(worst, -v);
  for (const Constraint& c : p.constraints()) {
    double lhs = 0.0;
    for (const Term& t : c.terms) lhs += t.coeff * values[t.var];
    switch (c.rel) {
      case Relation::kLe:
        worst = std::max(worst, lhs - c.rhs);
        break;
      case Relation::kGe:
        worst = std::max(worst, c.rhs - lhs);
        break;
      case Relation::kEq:
        worst = std::max(worst, std::abs(lhs - c.rhs));
        break;
    }
  }
  return worst;
}

std::string to_string(const Problem& p) {
  std::string out = "min";
  for (int j = 0; j < p.num_variables(); ++j) {
    if (p.objective()[j] != 0.0) {
      out += " + " + std::to_string(p.objective()[j]) + "*" +
             p.variable_name(j);
    }
  }
  out += "\n";
  for (const Constraint& c : p.constraints()) {
    for (const Term& t : c.terms) {
      out += " + " + std::to_string(t.coeff) + "*" + p.variable_name(t.var);
    }
    out += c.rel == Relation::kLe ? " <= " : c.rel == Relation::kGe ? " >= " : " == ";
    out += std::to_string(c.rhs) + "\n";
  }
  return out;
}

}  // namespace feves::lp
