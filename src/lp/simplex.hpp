// Dense two-phase simplex solver for the linear programs produced by the
// FEVES load balancer (Algorithm 2 of the paper). Built from scratch: the
// problems are tiny (tens of variables/constraints: three distribution
// vectors over a handful of devices, plus the synchronization-point times),
// so a dense tableau is both simple and fast — the paper reports the whole
// scheduling step under 2 ms, and this solver is well inside that. Pivoting
// uses Dantzig's rule (most negative reduced cost) and drops to Bland's
// anti-cycling rule after a run of consecutive degenerate pivots, so
// degenerate LPs terminate without paying Bland's slow convergence on the
// common path.
//
// Canonical form handled:   minimize  c'x
//                           subject to  a_i'x {<=,=,>=} b_i,   x >= 0.
#pragma once

#include "common/check.hpp"

#include <string>
#include <vector>

namespace feves::lp {

enum class Relation { kLe, kEq, kGe };

enum class SolveStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

struct Term {
  int var;
  double coeff;
};

struct Constraint {
  std::vector<Term> terms;
  Relation rel = Relation::kLe;
  double rhs = 0.0;
};

class Problem {
 public:
  /// Adds a non-negative decision variable; returns its index.
  int add_variable(std::string name = {}, double objective_coeff = 0.0);

  /// Sets (replaces) the objective coefficient of `var`.
  void set_objective(int var, double coeff);

  /// Adds `sum(terms) rel rhs`; terms may repeat a variable (coefficients
  /// are accumulated). Returns the constraint index.
  int add_constraint(std::vector<Term> terms, Relation rel, double rhs);

  int num_variables() const { return static_cast<int>(objective_.size()); }
  int num_constraints() const { return static_cast<int>(constraints_.size()); }
  const std::string& variable_name(int v) const { return names_[v]; }
  const std::vector<Constraint>& constraints() const { return constraints_; }
  const std::vector<double>& objective() const { return objective_; }

 private:
  std::vector<double> objective_;
  std::vector<std::string> names_;
  std::vector<Constraint> constraints_;
};

/// Final basis of an optimal solve: the basic tableau column per constraint
/// row. Feeding it back as `warm` to the next solve of a structurally
/// similar problem (same variable/constraint layout, perturbed
/// coefficients) skips phase 1 entirely and usually starts phase 2 at or
/// next to the optimum — the FEVES frame loop re-solves a near-identical LP
/// every frame, so this is where the per-frame solver cost goes.
struct Basis {
  std::vector<int> cols;  ///< basic column per constraint row
  int num_cols = 0;       ///< tableau width the basis was produced under

  bool usable() const { return !cols.empty(); }
};

struct Solution {
  SolveStatus status = SolveStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;  ///< one entry per decision variable
  int iterations = 0;          ///< pivot count across both phases
  bool bland_fallback = false;  ///< anti-cycling fallback engaged at least once
  bool warm_used = false;  ///< warm basis accepted (phase 1 skipped)
  Basis basis;             ///< final basis, for warm-starting the next solve

  bool optimal() const { return status == SolveStatus::kOptimal; }
};

/// Solves `p` (minimization). Deterministic: same problem, same answer.
/// A non-null `warm` basis is attempted first: the tableau is factorized
/// onto it by Gauss-Jordan pivots and phase 2 runs directly. Any rejection
/// — structural mismatch, singular pivot order, a basis infeasible for the
/// new right-hand side, or a non-optimal phase-2 outcome — falls back to
/// the ordinary two-phase cold solve, so a warm call can never return a
/// different status than a cold one would. `iterations` counts only simplex
/// pivots (not the warm factorization), so a warm re-solve of an unchanged
/// problem reports 0.
Solution solve(const Problem& p, const Basis* warm = nullptr);

/// Maximum constraint violation of `values` (0 when feasible). Negative
/// variable values count as violations too.
double max_violation(const Problem& p, const std::vector<double>& values);

/// Human-readable dump of the problem (debugging aid).
std::string to_string(const Problem& p);

}  // namespace feves::lp
