// SSE2 tier of the SAD kernel library (the paper's SSE4.2/AVX/AVX2
// Parallel Modules variants, Sec. III-B1). The preprocessor guard below is
// only about whether this TU *can be compiled* for the target; whether the
// tier *runs* is decided at runtime by the kernel registry's CPUID
// resolution (codec/kernels.hpp) — on non-x86 targets the stubs forward to
// the scalar tier and the registry never selects them.
#include "codec/sad.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#define FEVES_CAN_SSE2 1
#include <emmintrin.h>
#endif

namespace feves {

#if FEVES_CAN_SSE2

namespace {

/// |a - b| per byte without a dedicated instruction: saturating subtract
/// both ways and OR (one side is always zero).
inline __m128i absdiff_u8(__m128i a, __m128i b) {
  return _mm_or_si128(_mm_subs_epu8(a, b), _mm_subs_epu8(b, a));
}

inline u32 hsum_sad(__m128i acc) {
  return static_cast<u32>(_mm_cvtsi128_si64(acc)) +
         static_cast<u32>(_mm_cvtsi128_si64(_mm_unpackhi_epi64(acc, acc)));
}

}  // namespace

void sad_grid_simd(const u8* cur, std::ptrdiff_t cur_stride, const u8* ref,
                   std::ptrdiff_t ref_stride, u16 out[16]) {
  const __m128i zero = _mm_setzero_si128();
  const __m128i ones16 = _mm_set1_epi16(1);

  for (int by = 0; by < 4; ++by) {
    // Per-column 16-bit accumulators over the 4 rows of this sub-block
    // band (max 4 * 255 = 1020 per column: no overflow).
    __m128i acc_lo = zero;  // columns 0..7
    __m128i acc_hi = zero;  // columns 8..15
    for (int y = 0; y < 4; ++y) {
      const __m128i c = _mm_loadu_si128(reinterpret_cast<const __m128i*>(
          cur + (by * 4 + y) * cur_stride));
      const __m128i r = _mm_loadu_si128(reinterpret_cast<const __m128i*>(
          ref + (by * 4 + y) * ref_stride));
      const __m128i d = absdiff_u8(c, r);
      acc_lo = _mm_add_epi16(acc_lo, _mm_unpacklo_epi8(d, zero));
      acc_hi = _mm_add_epi16(acc_hi, _mm_unpackhi_epi8(d, zero));
    }
    // Horizontal reduce groups of 4 columns: madd pairs columns, leaving
    // [c0+c1, c2+c3, c4+c5, c6+c7] as 32-bit lanes.
    alignas(16) u32 pairs_lo[4], pairs_hi[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(pairs_lo),
                    _mm_madd_epi16(acc_lo, ones16));
    _mm_store_si128(reinterpret_cast<__m128i*>(pairs_hi),
                    _mm_madd_epi16(acc_hi, ones16));
    out[by * 4 + 0] = static_cast<u16>(pairs_lo[0] + pairs_lo[1]);
    out[by * 4 + 1] = static_cast<u16>(pairs_lo[2] + pairs_lo[3]);
    out[by * 4 + 2] = static_cast<u16>(pairs_hi[0] + pairs_hi[1]);
    out[by * 4 + 3] = static_cast<u16>(pairs_hi[2] + pairs_hi[3]);
  }
}

u32 sad_block_simd(const u8* a, std::ptrdiff_t stride_a, const u8* b,
                   std::ptrdiff_t stride_b, int width, int height) {
  // Vector chunks cover any width: 16-wide PSADBW spans, then an 8-wide
  // span, then a scalar tail — so every partition shape SME probes (and
  // any odd width a future caller brings) is handled by one entry point.
  u32 total = 0;
  int x = 0;
  for (; x + 16 <= width; x += 16) {
    __m128i acc = _mm_setzero_si128();
    for (int y = 0; y < height; ++y) {
      const __m128i va = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(a + y * stride_a + x));
      const __m128i vb = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(b + y * stride_b + x));
      acc = _mm_add_epi64(acc, _mm_sad_epu8(va, vb));
    }
    total += hsum_sad(acc);
  }
  if (x + 8 <= width) {
    __m128i acc = _mm_setzero_si128();
    for (int y = 0; y < height; ++y) {
      const __m128i va = _mm_loadl_epi64(
          reinterpret_cast<const __m128i*>(a + y * stride_a + x));
      const __m128i vb = _mm_loadl_epi64(
          reinterpret_cast<const __m128i*>(b + y * stride_b + x));
      acc = _mm_add_epi64(acc, _mm_sad_epu8(va, vb));
    }
    total += static_cast<u32>(_mm_cvtsi128_si64(acc));
    x += 8;
  }
  if (x < width) {
    total += sad_block_scalar(a + x, stride_a, b + x, stride_b, width - x,
                              height);
  }
  return total;
}

#else  // !FEVES_CAN_SSE2: link-satisfying stubs, never selected at runtime.

void sad_grid_simd(const u8* cur, std::ptrdiff_t cur_stride, const u8* ref,
                   std::ptrdiff_t ref_stride, u16 out[16]) {
  sad_grid_16x16_kernel(SimdTier::kBlocked)(cur, cur_stride, ref, ref_stride,
                                            out);
}

u32 sad_block_simd(const u8* a, std::ptrdiff_t stride_a, const u8* b,
                   std::ptrdiff_t stride_b, int width, int height) {
  return sad_block_scalar(a, stride_a, b, stride_b, width, height);
}

#endif

}  // namespace feves
