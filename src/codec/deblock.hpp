// In-loop deblocking filter (the paper's DBL module, the tail of R*).
// Standard H.264 luma edge filtering: boundary strength from intra/coded/
// motion discontinuity, alpha/beta thresholds indexed by QP, tc0-clipped
// normal filter for bS in {1,2,3} and the strong filter for bS 4.
//
// The paper points out DBL's cross-MB data dependencies are why the whole
// R* block is mapped to a single device (Sec. III-B); accordingly this API
// is whole-frame, executed wherever the Dijkstra selector placed R*.
#pragma once

#include "codec/kernels.hpp"
#include "codec/mv.hpp"
#include "video/plane.hpp"

namespace feves {

/// Per-4x4-block side information the boundary-strength rule needs.
struct Block4x4Info {
  Mv mv;
  u8 ref_idx = 0;
  bool nonzero = false;  ///< block has quantized coefficients
  bool intra = false;    ///< block belongs to an intra-coded MB
};

struct DeblockParams {
  int qp = 28;
  int alpha_offset = 0;  ///< slice_alpha_c0_offset (VCEG default 0)
  int beta_offset = 0;   ///< slice_beta_offset
  /// Kernel tier (registry id kDeblock, ceiling kSse2). Horizontal MB edges
  /// vectorize 16 columns wide; vertical edges are scalar in every tier.
  SimdTier tier = SimdTier::kAuto;
};

/// Boundary strength of the edge between 4x4 blocks `a` (left/above) and
/// `b` (right/below). Exposed for unit testing.
int boundary_strength(const Block4x4Info& a, const Block4x4Info& b);

/// Filters the full luma plane in MB raster order (vertical edges of each
/// MB first, then horizontal — H.264 8.7). `blocks` holds one Block4x4Info
/// per 4x4 block, raster order over the (4*mb_width) x (4*mb_height) grid.
void run_deblock_frame(PlaneU8& luma, int mb_width, int mb_height,
                       const Block4x4Info* blocks, const DeblockParams& p);

/// Chroma variant (H.264 8.7.2.4): only p1/p0/q0/q1 participate, tc is
/// tc0 + 1, and the strong (bS 4) filter is the 2-tap blend. `p.qp` must be
/// the CHROMA quantization parameter. Boundary strengths come from the
/// co-located luma 4x4 blocks; edges are filtered every 4 chroma samples.
void run_deblock_chroma(PlaneU8& chroma, int mb_width, int mb_height,
                        const Block4x4Info* blocks, const DeblockParams& p);

}  // namespace feves
