// AVX2 tier of the kernel library: SAD (grid + rectangular) and the
// interpolation row passes. Built without -mavx2 — every function carries a
// target("avx2") attribute, so the TU compiles into any x86-64 binary and
// the kernel registry only selects these entry points after CPUID confirms
// AVX2 (codec/kernels.hpp). On toolchains/targets where the attribute is
// unavailable the stubs at the bottom forward to the SSE2 tier; they always
// link and are never the resolved tier.
//
// Exactness mirrors the SSE2 tier (ranges in codec/interp_rows.hpp); VPSADBW
// and VPAVGB are exact by definition.
#include "codec/interp_rows.hpp"
#include "codec/sad.hpp"

#include <algorithm>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define FEVES_CAN_AVX2 1
#include <immintrin.h>
#define FEVES_AVX2_FN __attribute__((target("avx2")))
#endif

namespace feves {

// SSE2 siblings (sad_simd.cpp / interpolate_simd.cpp) used for tails and as
// the forwarding targets of the no-AVX2 stubs.
void sad_grid_simd(const u8* cur, std::ptrdiff_t cur_stride, const u8* ref,
                   std::ptrdiff_t ref_stride, u16 out[16]);
u32 sad_block_simd(const u8* a, std::ptrdiff_t stride_a, const u8* b,
                   std::ptrdiff_t stride_b, int width, int height);

#if FEVES_CAN_AVX2

namespace {

FEVES_AVX2_FN inline __m256i loadu256(const void* p) {
  return _mm256_loadu_si256(static_cast<const __m256i*>(p));
}

FEVES_AVX2_FN inline void storeu256(void* p, __m256i v) {
  _mm256_storeu_si256(static_cast<__m256i*>(p), v);
}

FEVES_AVX2_FN inline __m128i loadu128(const void* p) {
  return _mm_loadu_si128(static_cast<const __m128i*>(p));
}

/// Two 128-bit rows packed into one 256-bit register (lane0 = `lo` row).
FEVES_AVX2_FN inline __m256i pack_rows(__m128i lo, __m128i hi) {
  return _mm256_inserti128_si256(_mm256_castsi128_si256(lo), hi, 1);
}

FEVES_AVX2_FN inline __m256i absdiff_u8_256(__m256i a, __m256i b) {
  return _mm256_or_si256(_mm256_subs_epu8(a, b), _mm256_subs_epu8(b, a));
}

FEVES_AVX2_FN inline u32 hsum_sad_256(__m256i acc) {
  const __m128i s = _mm_add_epi64(_mm256_castsi256_si128(acc),
                                  _mm256_extracti128_si256(acc, 1));
  return static_cast<u32>(_mm_cvtsi128_si64(s)) +
         static_cast<u32>(_mm_cvtsi128_si64(_mm_unpackhi_epi64(s, s)));
}

}  // namespace

FEVES_AVX2_FN void sad_grid_avx2(const u8* cur, std::ptrdiff_t cur_stride,
                                 const u8* ref, std::ptrdiff_t ref_stride,
                                 u16 out[16]) {
  const __m256i zero = _mm256_setzero_si256();
  const __m128i ones16 = _mm_set1_epi16(1);

  for (int by = 0; by < 4; ++by) {
    // Two pixel rows per iteration, one in each 128-bit lane; lane-wise
    // per-column 16-bit accumulators (max 4 * 255 per column).
    __m256i acc_lo = zero;  // columns 0..7 of both lane rows
    __m256i acc_hi = zero;  // columns 8..15
    for (int y = 0; y < 4; y += 2) {
      const u8* c0 = cur + (by * 4 + y) * cur_stride;
      const u8* r0 = ref + (by * 4 + y) * ref_stride;
      const __m256i c = pack_rows(loadu128(c0), loadu128(c0 + cur_stride));
      const __m256i r = pack_rows(loadu128(r0), loadu128(r0 + ref_stride));
      const __m256i d = absdiff_u8_256(c, r);
      acc_lo = _mm256_add_epi16(acc_lo, _mm256_unpacklo_epi8(d, zero));
      acc_hi = _mm256_add_epi16(acc_hi, _mm256_unpackhi_epi8(d, zero));
    }
    // Fold the two lane rows together, then reduce groups of 4 columns
    // exactly like the SSE2 tier.
    const __m128i col_lo = _mm_add_epi16(_mm256_castsi256_si128(acc_lo),
                                         _mm256_extracti128_si256(acc_lo, 1));
    const __m128i col_hi = _mm_add_epi16(_mm256_castsi256_si128(acc_hi),
                                         _mm256_extracti128_si256(acc_hi, 1));
    alignas(16) u32 pairs_lo[4], pairs_hi[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(pairs_lo),
                    _mm_madd_epi16(col_lo, ones16));
    _mm_store_si128(reinterpret_cast<__m128i*>(pairs_hi),
                    _mm_madd_epi16(col_hi, ones16));
    out[by * 4 + 0] = static_cast<u16>(pairs_lo[0] + pairs_lo[1]);
    out[by * 4 + 1] = static_cast<u16>(pairs_lo[2] + pairs_lo[3]);
    out[by * 4 + 2] = static_cast<u16>(pairs_hi[0] + pairs_hi[1]);
    out[by * 4 + 3] = static_cast<u16>(pairs_hi[2] + pairs_hi[3]);
  }
}

FEVES_AVX2_FN u32 sad_block_avx2(const u8* a, std::ptrdiff_t stride_a,
                                 const u8* b, std::ptrdiff_t stride_b,
                                 int width, int height) {
  u32 total = 0;
  int x = 0;
  for (; x + 32 <= width; x += 32) {
    __m256i acc = _mm256_setzero_si256();
    for (int y = 0; y < height; ++y) {
      acc = _mm256_add_epi64(
          acc, _mm256_sad_epu8(loadu256(a + y * stride_a + x),
                               loadu256(b + y * stride_b + x)));
    }
    total += hsum_sad_256(acc);
  }
  if (x + 16 <= width) {
    // 16-wide span, two rows per VPSADBW via the two lanes.
    __m256i acc = _mm256_setzero_si256();
    int y = 0;
    for (; y + 2 <= height; y += 2) {
      const __m256i va = pack_rows(loadu128(a + y * stride_a + x),
                                   loadu128(a + (y + 1) * stride_a + x));
      const __m256i vb = pack_rows(loadu128(b + y * stride_b + x),
                                   loadu128(b + (y + 1) * stride_b + x));
      acc = _mm256_add_epi64(acc, _mm256_sad_epu8(va, vb));
    }
    total += hsum_sad_256(acc);
    for (; y < height; ++y) {
      __m128i s = _mm_sad_epu8(loadu128(a + y * stride_a + x),
                               loadu128(b + y * stride_b + x));
      total += static_cast<u32>(_mm_cvtsi128_si64(s)) +
               static_cast<u32>(_mm_cvtsi128_si64(_mm_unpackhi_epi64(s, s)));
    }
    x += 16;
  }
  if (x < width) {
    total += sad_block_simd(a + x, stride_a, b + x, stride_b, width - x,
                            height);
  }
  return total;
}

namespace interp {

namespace {

FEVES_AVX2_FN inline u8 clip255(int v) {
  return static_cast<u8>(std::clamp(v, 0, 255));
}

/// Un-normalized 6-tap over 16 i16 lanes (same shift decomposition as SSE2).
FEVES_AVX2_FN inline __m256i tap6_epi16_256(__m256i a, __m256i b, __m256i c,
                                            __m256i d, __m256i e, __m256i f) {
  const __m256i cd = _mm256_add_epi16(c, d);
  const __m256i be = _mm256_add_epi16(b, e);
  __m256i t = _mm256_add_epi16(a, f);
  t = _mm256_add_epi16(
      t, _mm256_add_epi16(_mm256_slli_epi16(cd, 4), _mm256_slli_epi16(cd, 2)));
  return _mm256_sub_epi16(t, _mm256_add_epi16(_mm256_slli_epi16(be, 2), be));
}

/// 16 bytes of u8 widened to 16 in-order i16 lanes.
FEVES_AVX2_FN inline __m256i widen16(const u8* p) {
  return _mm256_cvtepu8_epi16(loadu128(p));
}

/// Saturating u8 pack of 16 in-order i16 lanes back to 16 in-order bytes.
FEVES_AVX2_FN inline __m128i pack16(__m256i v) {
  const __m256i p = _mm256_packus_epi16(v, v);
  return _mm256_castsi256_si128(_mm256_permute4x64_epi64(p, 0xD8));
}

FEVES_AVX2_FN void htap_row_avx2(const u8* row, i16* out, int n) {
  int x = 0;
  for (; x + 16 <= n; x += 16) {
    storeu256(out + x,
              tap6_epi16_256(widen16(row + x - 2), widen16(row + x - 1),
                             widen16(row + x), widen16(row + x + 1),
                             widen16(row + x + 2), widen16(row + x + 3)));
  }
  for (; x < n; ++x) {
    out[x] = static_cast<i16>(row[x - 2] - 5 * row[x - 1] + 20 * row[x] +
                              20 * row[x + 1] - 5 * row[x + 2] + row[x + 3]);
  }
}

FEVES_AVX2_FN void half_row_avx2(const i16* in, u8* out, int n) {
  const __m256i k16 = _mm256_set1_epi16(16);
  int x = 0;
  for (; x + 16 <= n; x += 16) {
    const __m256i v =
        _mm256_srai_epi16(_mm256_add_epi16(loadu256(in + x), k16), 5);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + x), pack16(v));
  }
  for (; x < n; ++x) out[x] = clip255((in[x] + 16) >> 5);
}

FEVES_AVX2_FN void vtap_half_row_avx2(const u8* const rows[6], u8* out,
                                      int n) {
  const __m256i k16 = _mm256_set1_epi16(16);
  int x = 0;
  for (; x + 16 <= n; x += 16) {
    const __m256i t = tap6_epi16_256(
        widen16(rows[0] + x), widen16(rows[1] + x), widen16(rows[2] + x),
        widen16(rows[3] + x), widen16(rows[4] + x), widen16(rows[5] + x));
    const __m256i v = _mm256_srai_epi16(_mm256_add_epi16(t, k16), 5);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + x), pack16(v));
  }
  for (; x < n; ++x) {
    const int v = rows[0][x] - 5 * rows[1][x] + 20 * rows[2][x] +
                  20 * rows[3][x] - 5 * rows[4][x] + rows[5][x];
    out[x] = clip255((v + 16) >> 5);
  }
}

FEVES_AVX2_FN void jrow_avx2(const i16* const h[6], u8* out, int n) {
  const __m256i c1 = _mm256_set1_epi16(1);
  const __m256i c5 = _mm256_set1_epi16(-5);
  const __m256i c20 = _mm256_set1_epi16(20);
  const __m256i k512 = _mm256_set1_epi32(512);
  int x = 0;
  for (; x + 16 <= n; x += 16) {
    const __m256i a = loadu256(h[0] + x);
    const __m256i b = loadu256(h[1] + x);
    const __m256i c = loadu256(h[2] + x);
    const __m256i d = loadu256(h[3] + x);
    const __m256i e = loadu256(h[4] + x);
    const __m256i f = loadu256(h[5] + x);
    // PMADDWD pairs of symmetric taps; unpack/pack are lane-local on AVX2,
    // so composing unpacklo/hi + packs keeps lanes in order.
    __m256i lo = _mm256_add_epi32(
        _mm256_add_epi32(
            _mm256_madd_epi16(_mm256_unpacklo_epi16(a, f), c1),
            _mm256_madd_epi16(_mm256_unpacklo_epi16(b, e), c5)),
        _mm256_madd_epi16(_mm256_unpacklo_epi16(c, d), c20));
    __m256i hi = _mm256_add_epi32(
        _mm256_add_epi32(
            _mm256_madd_epi16(_mm256_unpackhi_epi16(a, f), c1),
            _mm256_madd_epi16(_mm256_unpackhi_epi16(b, e), c5)),
        _mm256_madd_epi16(_mm256_unpackhi_epi16(c, d), c20));
    lo = _mm256_srai_epi32(_mm256_add_epi32(lo, k512), 10);
    hi = _mm256_srai_epi32(_mm256_add_epi32(hi, k512), 10);
    const __m256i v = _mm256_packs_epi32(lo, hi);  // lossless: [-544, 544]
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + x), pack16(v));
  }
  for (; x < n; ++x) {
    const int jj = h[0][x] - 5 * h[1][x] + 20 * h[2][x] + 20 * h[3][x] -
                   5 * h[4][x] + h[5][x];
    out[x] = clip255((jj + 512) >> 10);
  }
}

FEVES_AVX2_FN void avg_row_avx2(const u8* a, const u8* b, u8* out, int n) {
  int x = 0;
  for (; x + 32 <= n; x += 32) {
    storeu256(out + x, _mm256_avg_epu8(loadu256(a + x), loadu256(b + x)));
  }
  for (; x < n; ++x) out[x] = static_cast<u8>((a[x] + b[x] + 1) >> 1);
}

}  // namespace

const RowKernels& rows_avx2() {
  static const RowKernels k = {&htap_row_avx2, &half_row_avx2,
                               &vtap_half_row_avx2, &jrow_avx2, &avg_row_avx2};
  return k;
}

}  // namespace interp

#else  // !FEVES_CAN_AVX2: link-satisfying forwards, never selected at runtime.

void sad_grid_avx2(const u8* cur, std::ptrdiff_t cur_stride, const u8* ref,
                   std::ptrdiff_t ref_stride, u16 out[16]) {
  sad_grid_simd(cur, cur_stride, ref, ref_stride, out);
}

u32 sad_block_avx2(const u8* a, std::ptrdiff_t stride_a, const u8* b,
                   std::ptrdiff_t stride_b, int width, int height) {
  return sad_block_simd(a, stride_a, b, stride_b, width, height);
}

namespace interp {
const RowKernels& rows_avx2() { return rows_sse2(); }
}  // namespace interp

#endif

}  // namespace feves
