// SSE2 tier of the interpolation row kernels. Compilable-on-x86 guard only;
// runtime tier selection happens in the kernel registry (codec/kernels.hpp).
// All arithmetic is exact per the range analysis in codec/interp_rows.hpp:
// taps fit i16 (20*v and 5*v built from shifts), the saturating u8 packs
// coincide with clip255 on the reachable ranges, and PAVGB is exactly
// (a+b+1)>>1.
#include "codec/interp_rows.hpp"

#include <algorithm>

#if defined(__x86_64__) || defined(_M_X64)
#define FEVES_CAN_SSE2 1
#include <emmintrin.h>
#endif

namespace feves::interp {

#if FEVES_CAN_SSE2

namespace {

inline __m128i loadu(const void* p) {
  return _mm_loadu_si128(static_cast<const __m128i*>(p));
}

inline void storeu(void* p, __m128i v) {
  _mm_storeu_si128(static_cast<__m128i*>(p), v);
}

inline u8 clip255(int v) { return static_cast<u8>(std::clamp(v, 0, 255)); }

/// Un-normalized 6-tap over i16 lanes: a - 5b + 20c + 20d - 5e + f,
/// with 20v = (v<<4)+(v<<2) and 5v = (v<<2)+v. All partials fit i16.
inline __m128i tap6_epi16(__m128i a, __m128i b, __m128i c, __m128i d,
                          __m128i e, __m128i f) {
  const __m128i cd = _mm_add_epi16(c, d);
  const __m128i be = _mm_add_epi16(b, e);
  __m128i t = _mm_add_epi16(a, f);
  t = _mm_add_epi16(
      t, _mm_add_epi16(_mm_slli_epi16(cd, 4), _mm_slli_epi16(cd, 2)));
  return _mm_sub_epi16(t, _mm_add_epi16(_mm_slli_epi16(be, 2), be));
}

void htap_row_sse2(const u8* row, i16* out, int n) {
  const __m128i zero = _mm_setzero_si128();
  int x = 0;
  for (; x + 16 <= n; x += 16) {
    const __m128i a8 = loadu(row + x - 2);
    const __m128i b8 = loadu(row + x - 1);
    const __m128i c8 = loadu(row + x);
    const __m128i d8 = loadu(row + x + 1);
    const __m128i e8 = loadu(row + x + 2);
    const __m128i f8 = loadu(row + x + 3);
    storeu(out + x,
           tap6_epi16(_mm_unpacklo_epi8(a8, zero), _mm_unpacklo_epi8(b8, zero),
                      _mm_unpacklo_epi8(c8, zero), _mm_unpacklo_epi8(d8, zero),
                      _mm_unpacklo_epi8(e8, zero),
                      _mm_unpacklo_epi8(f8, zero)));
    storeu(out + x + 8,
           tap6_epi16(_mm_unpackhi_epi8(a8, zero), _mm_unpackhi_epi8(b8, zero),
                      _mm_unpackhi_epi8(c8, zero), _mm_unpackhi_epi8(d8, zero),
                      _mm_unpackhi_epi8(e8, zero),
                      _mm_unpackhi_epi8(f8, zero)));
  }
  for (; x < n; ++x) {
    out[x] = static_cast<i16>(row[x - 2] - 5 * row[x - 1] + 20 * row[x] +
                              20 * row[x + 1] - 5 * row[x + 2] + row[x + 3]);
  }
}

void half_row_sse2(const i16* in, u8* out, int n) {
  const __m128i k16 = _mm_set1_epi16(16);
  int x = 0;
  for (; x + 16 <= n; x += 16) {
    const __m128i lo = _mm_srai_epi16(_mm_add_epi16(loadu(in + x), k16), 5);
    const __m128i hi = _mm_srai_epi16(_mm_add_epi16(loadu(in + x + 8), k16), 5);
    storeu(out + x, _mm_packus_epi16(lo, hi));
  }
  for (; x < n; ++x) out[x] = clip255((in[x] + 16) >> 5);
}

void vtap_half_row_sse2(const u8* const rows[6], u8* out, int n) {
  const __m128i zero = _mm_setzero_si128();
  const __m128i k16 = _mm_set1_epi16(16);
  int x = 0;
  for (; x + 16 <= n; x += 16) {
    const __m128i a8 = loadu(rows[0] + x);
    const __m128i b8 = loadu(rows[1] + x);
    const __m128i c8 = loadu(rows[2] + x);
    const __m128i d8 = loadu(rows[3] + x);
    const __m128i e8 = loadu(rows[4] + x);
    const __m128i f8 = loadu(rows[5] + x);
    const __m128i lo = _mm_srai_epi16(
        _mm_add_epi16(
            tap6_epi16(_mm_unpacklo_epi8(a8, zero),
                       _mm_unpacklo_epi8(b8, zero),
                       _mm_unpacklo_epi8(c8, zero),
                       _mm_unpacklo_epi8(d8, zero),
                       _mm_unpacklo_epi8(e8, zero),
                       _mm_unpacklo_epi8(f8, zero)),
            k16),
        5);
    const __m128i hi = _mm_srai_epi16(
        _mm_add_epi16(
            tap6_epi16(_mm_unpackhi_epi8(a8, zero),
                       _mm_unpackhi_epi8(b8, zero),
                       _mm_unpackhi_epi8(c8, zero),
                       _mm_unpackhi_epi8(d8, zero),
                       _mm_unpackhi_epi8(e8, zero),
                       _mm_unpackhi_epi8(f8, zero)),
            k16),
        5);
    storeu(out + x, _mm_packus_epi16(lo, hi));
  }
  for (; x < n; ++x) {
    const int v = rows[0][x] - 5 * rows[1][x] + 20 * rows[2][x] +
                  20 * rows[3][x] - 5 * rows[4][x] + rows[5][x];
    out[x] = clip255((v + 16) >> 5);
  }
}

/// Eight (jj + 512) >> 10 values as i16 lanes. Pairs symmetric taps through
/// PMADDWD so the wide accumulation happens in i32: (1,1), (-5,-5), (20,20).
/// The final i32->i16 saturating pack is lossless ([-544, 544]).
inline __m128i jj8(const i16* const h[6], int x, __m128i c1, __m128i c5,
                   __m128i c20, __m128i k512) {
  const __m128i a = loadu(h[0] + x);
  const __m128i b = loadu(h[1] + x);
  const __m128i c = loadu(h[2] + x);
  const __m128i d = loadu(h[3] + x);
  const __m128i e = loadu(h[4] + x);
  const __m128i f = loadu(h[5] + x);
  __m128i lo = _mm_add_epi32(
      _mm_add_epi32(_mm_madd_epi16(_mm_unpacklo_epi16(a, f), c1),
                    _mm_madd_epi16(_mm_unpacklo_epi16(b, e), c5)),
      _mm_madd_epi16(_mm_unpacklo_epi16(c, d), c20));
  __m128i hi = _mm_add_epi32(
      _mm_add_epi32(_mm_madd_epi16(_mm_unpackhi_epi16(a, f), c1),
                    _mm_madd_epi16(_mm_unpackhi_epi16(b, e), c5)),
      _mm_madd_epi16(_mm_unpackhi_epi16(c, d), c20));
  lo = _mm_srai_epi32(_mm_add_epi32(lo, k512), 10);
  hi = _mm_srai_epi32(_mm_add_epi32(hi, k512), 10);
  return _mm_packs_epi32(lo, hi);
}

void jrow_sse2(const i16* const h[6], u8* out, int n) {
  const __m128i c1 = _mm_set1_epi16(1);
  const __m128i c5 = _mm_set1_epi16(-5);
  const __m128i c20 = _mm_set1_epi16(20);
  const __m128i k512 = _mm_set1_epi32(512);
  int x = 0;
  for (; x + 16 <= n; x += 16) {
    const __m128i lo = jj8(h, x, c1, c5, c20, k512);
    const __m128i hi = jj8(h, x + 8, c1, c5, c20, k512);
    storeu(out + x, _mm_packus_epi16(lo, hi));
  }
  for (; x < n; ++x) {
    const int jj = h[0][x] - 5 * h[1][x] + 20 * h[2][x] + 20 * h[3][x] -
                   5 * h[4][x] + h[5][x];
    out[x] = clip255((jj + 512) >> 10);
  }
}

void avg_row_sse2(const u8* a, const u8* b, u8* out, int n) {
  int x = 0;
  for (; x + 16 <= n; x += 16) {
    storeu(out + x, _mm_avg_epu8(loadu(a + x), loadu(b + x)));
  }
  for (; x < n; ++x) out[x] = static_cast<u8>((a[x] + b[x] + 1) >> 1);
}

}  // namespace

const RowKernels& rows_sse2() {
  static const RowKernels k = {&htap_row_sse2, &half_row_sse2,
                               &vtap_half_row_sse2, &jrow_sse2, &avg_row_sse2};
  return k;
}

#else  // !FEVES_CAN_SSE2: link-satisfying forward, never selected at runtime.

const RowKernels& rows_sse2() { return rows_blocked(); }

#endif

}  // namespace feves::interp
