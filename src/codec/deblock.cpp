#include "codec/deblock.hpp"

#include "codec/deblock_edge.hpp"
#include "common/check.hpp"

#include <algorithm>

namespace feves {

namespace {

constexpr u8 kAlpha[52] = {
    0,  0,  0,  0,  0,  0,  0,  0,  0,  0,  0,   0,   0,   0,   0,   0,   4,
    4,  5,  6,  7,  8,  9,  10, 12, 13, 15, 17,  20,  22,  25,  28,  32,  36,
    40, 45, 50, 56, 63, 71, 80, 90, 101, 113, 127, 144, 162, 182, 203, 226,
    255, 255};

constexpr u8 kBeta[52] = {
    0,  0,  0,  0,  0,  0,  0,  0,  0,  0,  0,  0,  0,  0,  0,  0,  2,  2,
    2,  3,  3,  3,  3,  4,  4,  4,  6,  6,  7,  7,  8,  8,  9,  9,  10, 10,
    11, 11, 12, 12, 13, 13, 14, 14, 15, 15, 16, 16, 17, 17, 18, 18};

/// tc0 clipping table (H.264 Table 8-17), indexed [indexA][bS-1].
constexpr u8 kTc0[52][3] = {
    {0, 0, 0},  {0, 0, 0},  {0, 0, 0},  {0, 0, 0},  {0, 0, 0},  {0, 0, 0},
    {0, 0, 0},  {0, 0, 0},  {0, 0, 0},  {0, 0, 0},  {0, 0, 0},  {0, 0, 0},
    {0, 0, 0},  {0, 0, 0},  {0, 0, 0},  {0, 0, 0},  {0, 0, 0},  {0, 0, 1},
    {0, 0, 1},  {0, 0, 1},  {0, 0, 1},  {0, 1, 1},  {0, 1, 1},  {1, 1, 1},
    {1, 1, 1},  {1, 1, 1},  {1, 1, 1},  {1, 1, 2},  {1, 1, 2},  {1, 1, 2},
    {1, 1, 2},  {1, 2, 3},  {1, 2, 3},  {2, 2, 3},  {2, 2, 4},  {2, 3, 4},
    {2, 3, 4},  {3, 3, 5},  {3, 4, 6},  {3, 4, 6},  {4, 5, 7},  {4, 5, 8},
    {4, 6, 9},  {5, 7, 10}, {6, 8, 11}, {6, 8, 13}, {7, 10, 14}, {8, 11, 16},
    {9, 12, 18}, {10, 13, 20}, {11, 15, 23}, {13, 17, 25}};

/// The table only covers bS 1..3: bS 4 takes the strong-filter path where
/// tc0 is never consulted, and the vector lane setup asks for bS 0 lanes
/// (masked off in the filter) — return 0 instead of reading past the row.
int tc0_of(int index_a, int bs) {
  return bs >= 1 && bs < 4 ? kTc0[index_a][bs - 1] : 0;
}

inline u8 clip255(int v) { return static_cast<u8>(std::clamp(v, 0, 255)); }

}  // namespace

namespace detail {

/// Filters one line of samples across an edge. `p` points at p0 and the
/// pN samples live at p[-step*N]; qN at p[step*N]... precisely: caller
/// passes pointers so that p_n = pp[-n*step] is p_n and qq[n*step] is q_n.
void filter_line(u8* q0ptr, std::ptrdiff_t step, int bs, int alpha, int beta,
                 int tc0) {
  u8* q = q0ptr;
  const int p0 = q[-1 * step];
  const int p1 = q[-2 * step];
  const int p2 = q[-3 * step];
  const int p3 = q[-4 * step];
  const int q0 = q[0];
  const int q1 = q[1 * step];
  const int q2 = q[2 * step];
  const int q3 = q[3 * step];

  if (std::abs(p0 - q0) >= alpha || std::abs(p1 - p0) >= beta ||
      std::abs(q1 - q0) >= beta) {
    return;
  }
  const bool ap = std::abs(p2 - p0) < beta;
  const bool aq = std::abs(q2 - q0) < beta;

  if (bs < 4) {
    const int tc = tc0 + (ap ? 1 : 0) + (aq ? 1 : 0);
    const int delta =
        std::clamp(((q0 - p0) * 4 + (p1 - q1) + 4) >> 3, -tc, tc);
    q[-1 * step] = clip255(p0 + delta);
    q[0] = clip255(q0 - delta);
    if (ap) {
      q[-2 * step] = static_cast<u8>(
          p1 + std::clamp((p2 + ((p0 + q0 + 1) >> 1) - 2 * p1) >> 1, -tc0,
                          tc0));
    }
    if (aq) {
      q[1 * step] = static_cast<u8>(
          q1 + std::clamp((q2 + ((p0 + q0 + 1) >> 1) - 2 * q1) >> 1, -tc0,
                          tc0));
    }
  } else {
    const bool strong = std::abs(p0 - q0) < (alpha >> 2) + 2;
    if (strong && ap) {
      q[-1 * step] =
          static_cast<u8>((p2 + 2 * p1 + 2 * p0 + 2 * q0 + q1 + 4) >> 3);
      q[-2 * step] = static_cast<u8>((p2 + p1 + p0 + q0 + 2) >> 2);
      q[-3 * step] =
          static_cast<u8>((2 * p3 + 3 * p2 + p1 + p0 + q0 + 4) >> 3);
    } else {
      q[-1 * step] = static_cast<u8>((2 * p1 + p0 + q1 + 2) >> 2);
    }
    if (strong && aq) {
      q[0] = static_cast<u8>((q2 + 2 * q1 + 2 * q0 + 2 * p0 + p1 + 4) >> 3);
      q[1 * step] = static_cast<u8>((q2 + q1 + q0 + p0 + 2) >> 2);
      q[2 * step] =
          static_cast<u8>((2 * q3 + 3 * q2 + q1 + q0 + p0 + 4) >> 3);
    } else {
      q[0] = static_cast<u8>((2 * q1 + q0 + p1 + 2) >> 2);
    }
  }
}

/// Chroma line filter: two samples per side.
void filter_chroma_line(u8* q0ptr, std::ptrdiff_t step, int bs, int alpha,
                        int beta, int tc0) {
  u8* q = q0ptr;
  const int p0 = q[-1 * step];
  const int p1 = q[-2 * step];
  const int q0 = q[0];
  const int q1 = q[1 * step];
  if (std::abs(p0 - q0) >= alpha || std::abs(p1 - p0) >= beta ||
      std::abs(q1 - q0) >= beta) {
    return;
  }
  if (bs < 4) {
    const int tc = tc0 + 1;
    const int delta =
        std::clamp(((q0 - p0) * 4 + (p1 - q1) + 4) >> 3, -tc, tc);
    q[-1 * step] = clip255(p0 + delta);
    q[0] = clip255(q0 - delta);
  } else {
    q[-1 * step] = static_cast<u8>((2 * p1 + p0 + q1 + 2) >> 2);
    q[0] = static_cast<u8>((2 * q1 + q0 + p1 + 2) >> 2);
  }
}

}  // namespace detail

int boundary_strength(const Block4x4Info& a, const Block4x4Info& b) {
  if (a.intra || b.intra) return 4;
  if (a.nonzero || b.nonzero) return 2;
  if (a.ref_idx != b.ref_idx) return 1;
  if (std::abs(a.mv.x - b.mv.x) >= 4 || std::abs(a.mv.y - b.mv.y) >= 4)
    return 1;
  return 0;
}

void run_deblock_frame(PlaneU8& luma, int mb_width, int mb_height,
                       const Block4x4Info* blocks, const DeblockParams& p) {
  FEVES_CHECK(luma.width() == mb_width * kMbSize);
  FEVES_CHECK(luma.height() == mb_height * kMbSize);
  const int index_a = std::clamp(p.qp + p.alpha_offset, 0, 51);
  const int index_b = std::clamp(p.qp + p.beta_offset, 0, 51);
  const int alpha = kAlpha[index_a];
  const int beta = kBeta[index_b];
  if (alpha == 0 || beta == 0) return;  // QP too low: filter disabled

  const SimdTier tier = resolve_tier(KernelId::kDeblock, p.tier);
  const bool vec = tier == SimdTier::kSse2 || tier == SimdTier::kAvx2;
  const int bw = mb_width * 4;  // 4x4 block grid width

  for (int mb_y = 0; mb_y < mb_height; ++mb_y) {
    for (int mb_x = 0; mb_x < mb_width; ++mb_x) {
      // Vertical edges (filtering horizontally across columns
      // x = 16*mb_x + {0,4,8,12}); the x=0 edge needs a left neighbour MB.
      // The taps run along the row itself, so these stay scalar.
      for (int e = 0; e < 4; ++e) {
        if (e == 0 && mb_x == 0) continue;
        const int px = mb_x * kMbSize + e * 4;
        for (int line = 0; line < kMbSize; ++line) {
          const int py = mb_y * kMbSize + line;
          const int bx = px / 4;
          const int by = py / 4;
          const int bs =
              boundary_strength(blocks[by * bw + (bx - 1)], blocks[by * bw + bx]);
          if (bs == 0) continue;
          detail::filter_line(luma.row(py) + px, 1, bs, alpha, beta,
                              tc0_of(index_a, bs));
        }
      }
      // Horizontal edges (filtering vertically across rows
      // y = 16*mb_y + {0,4,8,12}); the y=0 edge needs an above neighbour.
      // The 16 columns are independent line filters: one vector edge call.
      for (int e = 0; e < 4; ++e) {
        if (e == 0 && mb_y == 0) continue;
        const int py = mb_y * kMbSize + e * 4;
        const int by = py / 4;
        if (vec) {
          alignas(16) i16 bs_lanes[16];
          alignas(16) i16 tc0_lanes[16];
          bool any = false;
          for (int seg = 0; seg < 4; ++seg) {
            const int bx = mb_x * 4 + seg;
            const int bs = boundary_strength(blocks[(by - 1) * bw + bx],
                                             blocks[by * bw + bx]);
            const i16 t = static_cast<i16>(tc0_of(index_a, bs));
            for (int k = 0; k < 4; ++k) {
              bs_lanes[seg * 4 + k] = static_cast<i16>(bs);
              tc0_lanes[seg * 4 + k] = t;
            }
            any = any || bs != 0;
          }
          if (!any) continue;
          detail::filter_hedge_luma_simd(luma.row(py) + mb_x * kMbSize,
                                         luma.stride(), bs_lanes, tc0_lanes,
                                         alpha, beta);
          continue;
        }
        for (int line = 0; line < kMbSize; ++line) {
          const int px = mb_x * kMbSize + line;
          const int bx = px / 4;
          const int bs = boundary_strength(blocks[(by - 1) * bw + bx],
                                           blocks[by * bw + bx]);
          if (bs == 0) continue;
          detail::filter_line(luma.row(py) + px, luma.stride(), bs, alpha,
                              beta, tc0_of(index_a, bs));
        }
      }
    }
  }
}

void run_deblock_chroma(PlaneU8& chroma, int mb_width, int mb_height,
                        const Block4x4Info* blocks, const DeblockParams& p) {
  constexpr int kCMb = kMbSize / 2;
  FEVES_CHECK(chroma.width() == mb_width * kCMb);
  FEVES_CHECK(chroma.height() == mb_height * kCMb);
  const int index_a = std::clamp(p.qp + p.alpha_offset, 0, 51);
  const int index_b = std::clamp(p.qp + p.beta_offset, 0, 51);
  const int alpha = kAlpha[index_a];
  const int beta = kBeta[index_b];
  if (alpha == 0 || beta == 0) return;

  const SimdTier tier = resolve_tier(KernelId::kDeblock, p.tier);
  const bool vec = tier == SimdTier::kSse2 || tier == SimdTier::kAvx2;
  const int bw = mb_width * 4;  // luma 4x4 block grid width

  for (int mb_y = 0; mb_y < mb_height; ++mb_y) {
    for (int mb_x = 0; mb_x < mb_width; ++mb_x) {
      // Vertical chroma edges at x = 8*mb_x + {0, 4}.
      for (int e = 0; e < 2; ++e) {
        if (e == 0 && mb_x == 0) continue;
        const int cx = mb_x * kCMb + e * 4;
        for (int line = 0; line < kCMb; ++line) {
          const int cy = mb_y * kCMb + line;
          // Co-located luma 4x4 blocks: chroma sample (cx, cy) maps to
          // luma pixel (2cx, 2cy) -> block (cx/2, cy/2).
          const int lbx = cx / 2;
          const int lby = cy / 2;
          const int bs = boundary_strength(blocks[lby * bw + (lbx - 1)],
                                           blocks[lby * bw + lbx]);
          if (bs == 0) continue;
          detail::filter_chroma_line(chroma.row(cy) + cx, 1, bs, alpha, beta,
                                     tc0_of(index_a, bs));
        }
      }
      // Horizontal chroma edges at y = 8*mb_y + {0, 4}; the bs segments are
      // 2 chroma columns wide (one co-located luma 4x4 block each).
      for (int e = 0; e < 2; ++e) {
        if (e == 0 && mb_y == 0) continue;
        const int cy = mb_y * kCMb + e * 4;
        const int lby = cy / 2;
        if (vec) {
          alignas(16) i16 bs_lanes[8];
          alignas(16) i16 tc0_lanes[8];
          bool any = false;
          for (int seg = 0; seg < 4; ++seg) {
            const int lbx = mb_x * 4 + seg;
            const int bs = boundary_strength(blocks[(lby - 1) * bw + lbx],
                                             blocks[lby * bw + lbx]);
            const i16 t = static_cast<i16>(tc0_of(index_a, bs));
            bs_lanes[seg * 2 + 0] = static_cast<i16>(bs);
            bs_lanes[seg * 2 + 1] = static_cast<i16>(bs);
            tc0_lanes[seg * 2 + 0] = t;
            tc0_lanes[seg * 2 + 1] = t;
            any = any || bs != 0;
          }
          if (!any) continue;
          detail::filter_hedge_chroma_simd(chroma.row(cy) + mb_x * kCMb,
                                           chroma.stride(), bs_lanes,
                                           tc0_lanes, alpha, beta);
          continue;
        }
        for (int line = 0; line < kCMb; ++line) {
          const int cx = mb_x * kCMb + line;
          const int lbx = cx / 2;
          const int bs = boundary_strength(blocks[(lby - 1) * bw + lbx],
                                           blocks[lby * bw + lbx]);
          if (bs == 0) continue;
          detail::filter_chroma_line(chroma.row(cy) + cx, chroma.stride(), bs,
                                     alpha, beta, tc0_of(index_a, bs));
        }
      }
    }
  }
}

}  // namespace feves
