// Codec-wide kernel registry: one SimdTier ladder shared by every
// vectorized kernel (SAD, interpolation, transform, deblocking, MC), with
// the tier picked at runtime from CPUID rather than compile-time macros —
// the paper's per-microarchitecture Parallel Modules library (Sec. III-B1)
// shipped as one binary. `resolve_tier` is the single authority on what a
// tier request actually gets: it consults the CPU features, each kernel's
// own ceiling (AVX2 only where it pays), and logs a degrade once, so a
// silent fallback can never masquerade as the requested tier.
#pragma once

#include <vector>

namespace feves {

/// Kernel tiers, in increasing order of expected throughput.
enum class SimdTier {
  kScalar,   ///< straightforward reference implementation (the oracle)
  kBlocked,  ///< unrolled / auto-vectorizable implementation
  kSse2,     ///< explicit x86-64 SSE2 intrinsics
  kAvx2,     ///< explicit AVX2 intrinsics (runtime-gated)
  kAuto,     ///< best tier available on this machine
  kSimd = kSse2,  ///< legacy alias from the SAD-only dispatch table
};

/// The vectorized kernel families the registry dispatches.
enum class KernelId {
  kSadGrid,    ///< 16x16 -> 16 4x4 SADs (FSBM inner loop)
  kSadBlock,   ///< rectangular SAD (SME partition probes)
  kInterp,     ///< 6-tap half-pel + bilinear quarter-pel (INT)
  kTransform,  ///< 4x4 forward/inverse core transform (TQ / TQ^-1)
  kDeblock,    ///< in-loop deblocking inner loops (DBL)
  kMc,         ///< motion-compensated prediction + residual (MC)
  kCount,
};

const char* kernel_name(KernelId id);
const char* tier_name(SimdTier tier);

/// Resolves what `requested` actually runs as for kernel `id` on this
/// machine: kAuto picks the best available tier; an explicit tier degrades
/// down the ladder (kAvx2 -> kSse2 -> kBlocked) when the CPU lacks the ISA
/// or the kernel has no profitable implementation at that width. A degrade
/// of an explicit request is logged once per (kernel, tier) pair.
SimdTier resolve_tier(KernelId id, SimdTier requested);

/// Best tier kernel `id` can run on this machine (== resolve of kAuto).
SimdTier max_tier(KernelId id);

/// True when the explicit-intrinsics tiers can run on this machine
/// (runtime CPUID; kept for source compatibility with the SAD-only API).
bool simd_tier_available();

/// One row of the per-kernel tier report surfaced into SchedTelemetry and
/// the trace: what the caller asked for and what the registry resolved.
struct KernelTierChoice {
  KernelId id;
  SimdTier requested;
  SimdTier resolved;
};

/// Resolves `requested` for every kernel family (what an encoder configured
/// with this tier actually executes on this machine).
std::vector<KernelTierChoice> kernel_tier_report(SimdTier requested);

}  // namespace feves
