// Intra_16x16 luma prediction (H.264 8.3.3): Vertical, Horizontal, DC and
// Plane modes predicted from the *reconstructed* neighbours, plus the DC
// chroma predictor. The I frame bootstraps the first reference of the
// inter loop (paper Fig 1's intra path); mode selection is minimum-SAD
// against the source macroblock.
#pragma once

#include "common/types.hpp"
#include "video/plane.hpp"

namespace feves {

enum class IntraMode : u8 {
  kVertical = 0,   ///< copy the row above
  kHorizontal = 1, ///< copy the column to the left
  kDc = 2,         ///< mean of available neighbours (128 when none)
  kPlane = 3,      ///< first-order plane fit through the edge samples
};

inline constexpr int kNumIntraModes = 4;

/// Neighbour availability of a macroblock in decoding order.
struct IntraNeighbours {
  bool above = false;
  bool left = false;
};

inline IntraNeighbours intra_neighbours(int mb_x, int mb_y) {
  return {mb_y > 0, mb_x > 0};
}

/// True if `mode` is legal given the available neighbours (DC always is).
bool intra_mode_available(IntraMode mode, IntraNeighbours n);

/// Fills `pred` (16x16 row-major) from the reconstructed plane. `mode`
/// must be available. Reads only rows/columns already reconstructed.
void intra_predict_16x16(const PlaneU8& recon, int mb_x, int mb_y,
                         IntraMode mode, u8 pred[256]);

/// Picks the available mode with minimum SAD against the source MB.
IntraMode select_intra_mode(const PlaneU8& source, const PlaneU8& recon,
                            int mb_x, int mb_y);

/// 8x8 chroma DC prediction from reconstructed neighbours (mean of the
/// available edges; 128 with none) — the one chroma intra mode used here.
void intra_predict_chroma_dc(const PlaneU8& recon_c, int mb_x, int mb_y,
                             u8 pred[64]);

}  // namespace feves
