// Full-Search Block-Matching motion estimation (the paper's FSBM ME module).
// For every macroblock in the assigned MB-row range, every integer-pel
// candidate in the search area of ONE reference frame is evaluated; the 16
// 4x4 SADs per candidate are aggregated into all 41 partition blocks so one
// pixel pass prices all 7 partition modes simultaneously.
//
// The row-range API is the unit of cross-device distribution: the FEVES
// load balancer hands each device a contiguous range of MB rows (the m_i
// distribution vector of Algorithm 2).
#pragma once

#include "codec/partition.hpp"
#include "codec/sad.hpp"
#include "video/plane.hpp"

#include <vector>

namespace feves {

/// Frame-wide motion field against one reference frame; one MbMotion per
/// macroblock in raster order.
using MotionField = std::vector<MbMotion>;

struct MeParams {
  /// Candidates in [-R, +R] both axes, inclusive: (2R+1) x (2R+1) per MB.
  int search_range = 16;
  SimdTier tier = SimdTier::kAuto;
};

/// Runs FSBM over MB rows [row_begin, row_end) of `cur` against `ref`.
/// `ref` must carry a border of at least search_range + 16 pixels.
/// Results are written into `field[mb_y * mb_width + mb_x]` with costs in
/// pure SAD (the paper's distortion metric) and MVs in quarter-pel units
/// (multiples of 4 at this stage).
void run_me_rows(const PlaneU8& cur, const PlaneU8& ref, int mb_width,
                 int row_begin, int row_end, const MeParams& params,
                 MbMotion* field);

}  // namespace feves
