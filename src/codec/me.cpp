#include "codec/me.hpp"

#include "common/check.hpp"

namespace feves {

void run_me_rows(const PlaneU8& cur, const PlaneU8& ref, int mb_width,
                 int row_begin, int row_end, const MeParams& params,
                 MbMotion* field) {
  FEVES_CHECK(cur.width() == ref.width() && cur.height() == ref.height());
  FEVES_CHECK(mb_width * kMbSize == cur.width());
  FEVES_CHECK(row_begin >= 0 && row_begin <= row_end);
  FEVES_CHECK(row_end * kMbSize <= cur.height());
  const int r = params.search_range;
  FEVES_CHECK_MSG(ref.border() >= r + kMbSize,
                  "reference border " << ref.border()
                                      << " too small for search range " << r);

  const SadGrid16Fn kernel = sad_grid_16x16_kernel(params.tier);
  const std::ptrdiff_t cs = cur.stride();
  const std::ptrdiff_t rs = ref.stride();

  for (int mb_y = row_begin; mb_y < row_end; ++mb_y) {
    for (int mb_x = 0; mb_x < mb_width; ++mb_x) {
      const u8* cur_mb = cur.row(mb_y * kMbSize) + mb_x * kMbSize;
      MbMotion& out = field[mb_y * mb_width + mb_x];

      u32 best_cost[kEntriesPerMb];
      Mv best_mv[kEntriesPerMb];
      for (int k = 0; k < kEntriesPerMb; ++k) best_cost[k] = kInvalidCost;

      u16 grid[16];
      u32 agg[kEntriesPerMb];
      // Deterministic raster candidate order: ties keep the first (lowest
      // dy, then dx) candidate, so the result is independent of how rows
      // were distributed across devices. The range is inclusive on both
      // ends — (2R+1)^2 candidates — so the search area is symmetric and
      // matches the microbench's items accounting.
      for (int dy = -r; dy <= r; ++dy) {
        const u8* ref_row = ref.row(mb_y * kMbSize + dy) + mb_x * kMbSize;
        for (int dx = -r; dx <= r; ++dx) {
          kernel(cur_mb, cs, ref_row + dx, rs, grid);
          aggregate_sad_grid(grid, agg);
          const Mv mv{static_cast<i16>(dx * kSubPel),
                      static_cast<i16>(dy * kSubPel)};
          for (int k = 0; k < kEntriesPerMb; ++k) {
            if (agg[k] < best_cost[k]) {
              best_cost[k] = agg[k];
              best_mv[k] = mv;
            }
          }
        }
      }

      for (int k = 0; k < kEntriesPerMb; ++k) {
        out.entries[k].cost = best_cost[k];
        out.entries[k].mv = best_mv[k];
      }
    }
  }
}

}  // namespace feves
