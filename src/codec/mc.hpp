// Motion compensation and macroblock mode decision (the MC stage of the
// paper's R* block). Selects the best partitioning mode per MB from the
// SME-refined costs across all reference frames, builds the quarter-pel
// luma prediction from the SF (eighth-pel bilinear chroma from the RF), and
// produces the prediction residual that TQ consumes.
#pragma once

#include "common/config.hpp"
#include "codec/kernels.hpp"
#include "codec/me.hpp"
#include "video/frame.hpp"

#include <array>
#include <vector>

namespace feves {

/// Final inter-coding decision for one macroblock.
struct MbModeChoice {
  PartitionMode mode = PartitionMode::k16x16;
  /// One entry per partition block of `mode` (up to 16 used).
  struct BlockChoice {
    Mv mv;
    u8 ref_idx = 0;
  };
  std::array<BlockChoice, 16> blocks;
  u32 cost = kInvalidCost;  ///< distortion + lambda * rate of the winner
};

/// Estimated Exp-Golomb bit count of signed value `v` (se(v) code length).
int se_bits(int v);

/// Picks the best (mode, per-block reference) combination for MB rows
/// [row_begin, row_end). `fields[r]` is the SME-refined motion field
/// against reference r. lambda weights the MV/ref rate estimate; lambda=0
/// reproduces the paper's pure minimum-distortion selection.
void run_mode_decision_rows(const std::vector<MotionField>& fields,
                            int mb_width, int row_begin, int row_end,
                            double lambda, MbModeChoice* choices);

/// Builds the luma prediction + residual for one macroblock.
/// `sfs[r]` is the sub-pel frame of reference r. Outputs `pred` (16x16) and
/// `residual` (16x16, i16), both row-major. `tier` dispatches the per-block
/// copy/subtract kernel (registry id kMc, ceiling kSse2 — partitions are at
/// most 16 wide).
void motion_compensate_luma_mb(const PlaneU8& cur,
                               const std::vector<const SubPelFrame*>& sfs,
                               const MbModeChoice& choice, int mb_x, int mb_y,
                               u8 pred[kMbSize * kMbSize],
                               i16 residual[kMbSize * kMbSize],
                               SimdTier tier = SimdTier::kAuto);

/// Chroma prediction + residual for one 8x8 chroma block of a macroblock
/// (H.264 eighth-pel bilinear weighting derived from the luma quarter-pel
/// MV). `cur_c`/`ref_c` are the chroma planes of the current / reference
/// frame; outputs are 8x8 row-major.
void motion_compensate_chroma_mb(const PlaneU8& cur_c,
                                 const std::vector<const PlaneU8*>& refs_c,
                                 const MbModeChoice& choice, int mb_x,
                                 int mb_y, u8 pred[64], i16 residual[64],
                                 SimdTier tier = SimdTier::kAuto);

}  // namespace feves
