// Sub-pixel interpolation (the paper's INT module). Builds the SF structure
// — 16 quarter-pel phase planes per reference frame — from a reconstructed
// RF using the H.264 6-tap half-pel filter (1,-5,20,20,-5,1)/32 and linear
// (bilinear average) quarter-pel samples (paper Sec. II).
//
// Like ME/SME, the API is row-ranged: the l_i distribution vector of
// Algorithm 2 assigns each device a span of MB rows to interpolate.
//
// Tiers: kScalar is the literal per-pixel oracle; kBlocked restructures the
// work into row passes over a 6-row ring of horizontal-tap intermediates
// (each htap is computed once instead of six times); kSse2/kAvx2 run the
// same row passes with explicit intrinsics. All tiers are bit-exact.
#pragma once

#include "codec/kernels.hpp"
#include "video/frame.hpp"

namespace feves {

/// Interpolates MB rows [mb_row_begin, mb_row_end) of `ref` into `sf`.
/// `ref` must have extended borders (>= 4 px margin for the 6-tap taps,
/// which every frame border in this codebase satisfies). Only interior SF
/// pixels are written; call `extend_subpel_borders` once the whole frame
/// has been assembled.
void run_interpolation_rows(const PlaneU8& ref, int mb_row_begin,
                            int mb_row_end, SubPelFrame& sf,
                            SimdTier tier = SimdTier::kAuto);

/// Replicates edge pixels into the borders of all 16 phase planes. Must run
/// after the full SF has been gathered (host-side in collaborative mode).
void extend_subpel_borders(SubPelFrame& sf);

}  // namespace feves
