// Whole-frame encode/decode built from the inter-loop modules. This is both
// (a) the single-device reference encoder — the unit of truth that every
// collaborative CPU+GPU schedule must match bit-exactly — and (b) the
// library of row-ranged module entry points the FEVES framework distributes
// across devices (ME/INT/SME by MB rows, R* whole-frame on one device).
#pragma once

#include "codec/deblock.hpp"
#include "codec/intra.hpp"
#include "codec/mc.hpp"
#include "codec/me.hpp"
#include "codec/refpic.hpp"
#include "codec/sme.hpp"
#include "common/config.hpp"

#include <memory>
#include <vector>

namespace feves {

/// Quantized residual of one macroblock, ready for entropy coding and
/// carrying the non-zero flags deblocking needs.
struct MbCoded {
  std::array<std::array<i16, 16>, 16> luma_levels;  ///< 16 4x4 blocks
  std::array<std::array<i16, 16>, 4> cb_levels;     ///< 4 4x4 chroma blocks
  std::array<std::array<i16, 16>, 4> cr_levels;
  std::array<bool, 16> luma_nonzero = {};
  bool intra = false;
  IntraMode intra_mode = IntraMode::kDc;  ///< valid when intra
};

/// All per-frame working state for encoding one inter- (or intra-) frame.
/// The framework owns one of these per frame and hands slices of it to
/// devices; the reference encoder drives it single-threaded.
struct EncodeJob {
  const EncoderConfig* cfg = nullptr;
  const Frame420* cur = nullptr;

  /// Borrowed references, newest first. INT fills refs[0]->sf.
  std::vector<RefPicture*> refs;

  /// One SME/ME motion field per reference frame.
  std::vector<MotionField> fields;

  std::vector<MbModeChoice> choices;  ///< per MB, set by R* (mode decision)
  std::vector<MbCoded> coded;         ///< per MB, set by R* (TQ)
  std::vector<Block4x4Info> dbl_info; ///< per 4x4 block, set by R*

  /// Reconstruction under construction (becomes the next RF).
  std::unique_ptr<RefPicture> recon;

  int frame_number = 0;
  bool is_intra = false;

  /// Sizes fields/choices/coded/recon for `cfg` x `refs`. Reusing one
  /// EncodeJob across frames keeps every vector's capacity, so steady-state
  /// frames allocate nothing here except `recon` — and even that is elided
  /// when `recycled` (typically the picture RefList::push_front evicted)
  /// has matching geometry: it is scrubbed and adopted instead of a fresh
  /// RefPicture being heap-allocated per frame.
  void prepare(const EncoderConfig& config, const Frame420& current,
               std::vector<RefPicture*> references, int frame_no,
               std::unique_ptr<RefPicture> recycled = nullptr);
};

// ---- Row-ranged inter-loop modules (the distribution units) -------------

/// ME over MB rows [row_begin,row_end) against every reference.
void me_rows(EncodeJob& job, int row_begin, int row_end,
             SimdTier tier = SimdTier::kAuto);

/// INT over MB rows of the newest reference's SF. `tier` selects the
/// interpolation kernel tier (registry id kInterp).
void int_rows(EncodeJob& job, int row_begin, int row_end,
              SimdTier tier = SimdTier::kAuto);

/// SME over MB rows against every reference. All SFs must be complete with
/// extended borders (call finish_interpolation first).
void sme_rows(EncodeJob& job, int row_begin, int row_end);

/// Marks refs[0]->sf complete: extends its borders. Host-side step after
/// all INT row slices are gathered (Fig 4's SF(RF)→SME completion).
void finish_interpolation(EncodeJob& job);

// ---- R* block (single device, whole frame) ------------------------------

/// Mode decision + MC + TQ + TQ^-1 + reconstruction + DBL. `tier` feeds the
/// MC and deblocking kernels (transform kernels resolve kAuto once per
/// process — they are 4x4-fixed and gain nothing from per-call selection).
void rstar_frame(EncodeJob& job, SimdTier tier = SimdTier::kAuto);

/// Intra path for the leading I frame: per-MB Intra_16x16 mode decision
/// (V/H/DC/Plane from reconstructed neighbours), TQ, reconstruction, DBL.
void intra_frame(EncodeJob& job);

// ---- Entropy / bitstream -------------------------------------------------

class BitWriter;
class BitReader;

/// Serializes the frame (header, per-MB modes/MVs/levels) after R*.
void write_frame_bitstream(const EncodeJob& job, BitWriter& bw);

/// Full reference encoder: runs every module single-device. Returns the
/// reconstructed picture (push into a RefList) and appends the bitstream.
std::unique_ptr<RefPicture> encode_frame_reference(
    const EncoderConfig& cfg, const Frame420& cur, RefList& refs,
    int frame_number, std::vector<u8>* bitstream_out);

/// Standalone decoder: parses one frame written by write_frame_bitstream
/// and reconstructs it against its own reference list (running its own
/// interpolation), returning the new reference picture. Used by round-trip
/// tests: decoder reconstruction must equal encoder reconstruction exactly.
std::unique_ptr<RefPicture> decode_frame(const EncoderConfig& cfg,
                                         BitReader& br, RefList& refs);

}  // namespace feves
