#include "codec/frame_codec.hpp"

#include "codec/bitstream.hpp"
#include "codec/cavlc.hpp"
#include "codec/interpolate.hpp"
#include "codec/transform.hpp"

#include <algorithm>

namespace feves {

namespace {

constexpr int kCMb = kMbSize / 2;  // chroma MB edge in 4:2:0

/// Luma-to-chroma QP mapping (H.264 Table 8-15, offset 0).
constexpr int kChromaQp[52] = {
    0,  1,  2,  3,  4,  5,  6,  7,  8,  9,  10, 11, 12, 13, 14, 15, 16, 17,
    18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 29, 30, 31, 32, 32, 33,
    34, 34, 35, 35, 36, 36, 37, 37, 37, 38, 38, 38, 39, 39, 39, 39};

inline u8 clip255(int v) { return static_cast<u8>(std::clamp(v, 0, 255)); }

/// Extracts a 4x4 sub-block of a row-major WxW array into `out`.
template <int W>
void take4x4(const i16* src, int bx, int by, i16 out[16]) {
  for (int y = 0; y < 4; ++y) {
    const i16* r = src + (by * 4 + y) * W + bx * 4;
    for (int x = 0; x < 4; ++x) out[y * 4 + x] = r[x];
  }
}

/// Transform + quantize one 4x4, returning levels and whether any survive.
/// The kernel is resolved once per process (kAuto against the host CPU):
/// the 4x4 geometry is fixed, so there is nothing per-call to re-decide.
bool tq_4x4(const i16 res[16], int qp, bool intra, i16 levels[16]) {
  static const Fwd4x4Fn kFwd = forward_transform_4x4_kernel(SimdTier::kAuto);
  i16 coeffs[16];
  kFwd(res, coeffs);
  quantize_4x4(coeffs, qp, intra, levels);
  return any_nonzero(levels);
}

/// Dequantize + inverse-transform one 4x4 of levels into a residual block.
void itq_4x4(const i16 levels[16], int qp, i16 res[16]) {
  static const Inv4x4Fn kInv = inverse_transform_4x4_kernel(SimdTier::kAuto);
  i32 coeffs[16];
  dequantize_4x4(levels, qp, coeffs);
  kInv(coeffs, res);
}

/// Reconstructs one plane-block: recon = clip(pred + inverse(levels)).
/// `pred` is row-major W wide; writes into `plane` at (px0, py0).
template <int W>
void reconstruct_blocks(PlaneU8& plane, int px0, int py0, const u8* pred,
                        const std::array<std::array<i16, 16>, (W / 4) * (W / 4)>&
                            levels,
                        int qp) {
  for (int by = 0; by < W / 4; ++by) {
    for (int bx = 0; bx < W / 4; ++bx) {
      i16 res[16];
      itq_4x4(levels[by * (W / 4) + bx].data(), qp, res);
      for (int y = 0; y < 4; ++y) {
        u8* out = plane.row(py0 + by * 4 + y) + px0 + bx * 4;
        const u8* p = pred + (by * 4 + y) * W + bx * 4;
        for (int x = 0; x < 4; ++x) {
          out[x] = clip255(p[x] + res[y * 4 + x]);
        }
      }
    }
  }
}

/// Quantizes a full 16x16 luma residual into 16 4x4 level blocks.
void tq_luma_mb(const i16 residual[kMbSize * kMbSize], int qp, bool intra,
                MbCoded& coded) {
  for (int by = 0; by < 4; ++by) {
    for (int bx = 0; bx < 4; ++bx) {
      i16 res[16];
      take4x4<kMbSize>(residual, bx, by, res);
      const bool nz =
          tq_4x4(res, qp, intra, coded.luma_levels[by * 4 + bx].data());
      coded.luma_nonzero[by * 4 + bx] = nz;
    }
  }
}

/// Quantizes an 8x8 chroma residual into 4 4x4 level blocks.
void tq_chroma_mb(const i16 residual[kCMb * kCMb], int qp, bool intra,
                  std::array<std::array<i16, 16>, 4>& levels) {
  for (int by = 0; by < 2; ++by) {
    for (int bx = 0; bx < 2; ++bx) {
      i16 res[16];
      take4x4<kCMb>(residual, bx, by, res);
      tq_4x4(res, qp, intra, levels[by * 2 + bx].data());
    }
  }
}

/// Fills the per-4x4 deblocking info of one MB from its final choice.
void fill_dbl_info(EncodeJob& job, int mb_x, int mb_y) {
  const int mbw = job.cfg->mb_width();
  const int bw = mbw * 4;
  const MbModeChoice& choice = job.choices[mb_y * mbw + mb_x];
  const MbCoded& coded = job.coded[mb_y * mbw + mb_x];
  const PartitionGeometry& g = geometry(choice.mode);
  Block4x4Info* info = job.dbl_info.data();

  for (int by = 0; by < 4; ++by) {
    for (int bx = 0; bx < 4; ++bx) {
      Block4x4Info& b = info[(mb_y * 4 + by) * bw + (mb_x * 4 + bx)];
      b.intra = coded.intra;
      b.nonzero = coded.luma_nonzero[by * 4 + bx];
      if (coded.intra) {
        b.mv = Mv{};
        b.ref_idx = 0;
      } else {
        const int blk = (by * 4 / g.block_h) * g.blocks_x + (bx * 4 / g.block_w);
        b.mv = choice.blocks[blk].mv;
        b.ref_idx = choice.blocks[blk].ref_idx;
      }
    }
  }
}

/// Shared by encoder and decoder: given final choices + coded levels,
/// rebuild the MC prediction and reconstruct one MB into job.recon. The
/// per-reference view vectors are built once per frame by the caller —
/// constructing them here put three heap allocations on every macroblock
/// of every frame (~24k allocations per 1080p frame).
void reconstruct_inter_mb(EncodeJob& job, int mb_x, int mb_y,
                          const std::vector<const SubPelFrame*>& sfs,
                          const std::vector<const PlaneU8*>& refs_u,
                          const std::vector<const PlaneU8*>& refs_v,
                          SimdTier tier) {
  const int mbw = job.cfg->mb_width();
  const MbModeChoice& choice = job.choices[mb_y * mbw + mb_x];
  const MbCoded& coded = job.coded[mb_y * mbw + mb_x];
  const int qp = job.cfg->qp_p;
  const int qpc = kChromaQp[qp];

  u8 pred_y[kMbSize * kMbSize];
  i16 res_y[kMbSize * kMbSize];
  motion_compensate_luma_mb(job.cur->y, sfs, choice, mb_x, mb_y, pred_y,
                            res_y, tier);

  u8 pred_u[kCMb * kCMb], pred_v[kCMb * kCMb];
  i16 res_u[kCMb * kCMb], res_v[kCMb * kCMb];
  motion_compensate_chroma_mb(job.cur->u, refs_u, choice, mb_x, mb_y, pred_u,
                              res_u, tier);
  motion_compensate_chroma_mb(job.cur->v, refs_v, choice, mb_x, mb_y, pred_v,
                              res_v, tier);

  reconstruct_blocks<kMbSize>(job.recon->recon.y, mb_x * kMbSize,
                              mb_y * kMbSize, pred_y, coded.luma_levels, qp);
  reconstruct_blocks<kCMb>(job.recon->recon.u, mb_x * kCMb, mb_y * kCMb,
                           pred_u, coded.cb_levels, qpc);
  reconstruct_blocks<kCMb>(job.recon->recon.v, mb_x * kCMb, mb_y * kCMb,
                           pred_v, coded.cr_levels, qpc);
}

/// Deblocks the finished reconstruction (luma + chroma) and finalizes the
/// picture.
void finish_reconstruction(EncodeJob& job,
                           SimdTier tier = SimdTier::kAuto) {
  if (job.cfg->enable_deblocking) {
    DeblockParams dp;
    dp.qp = job.is_intra ? job.cfg->qp_i : job.cfg->qp_p;
    dp.tier = tier;
    run_deblock_frame(job.recon->recon.y, job.cfg->mb_width(),
                      job.cfg->mb_height(), job.dbl_info.data(), dp);
    DeblockParams dc = dp;
    dc.qp = kChromaQp[dp.qp];
    run_deblock_chroma(job.recon->recon.u, job.cfg->mb_width(),
                       job.cfg->mb_height(), job.dbl_info.data(), dc);
    run_deblock_chroma(job.recon->recon.v, job.cfg->mb_width(),
                       job.cfg->mb_height(), job.dbl_info.data(), dc);
  }
  job.recon->recon.extend_borders();
  job.recon->frame_number = job.frame_number;
}

}  // namespace

void EncodeJob::prepare(const EncoderConfig& config, const Frame420& current,
                        std::vector<RefPicture*> references, int frame_no,
                        std::unique_ptr<RefPicture> recycled) {
  config.validate();
  cfg = &config;
  cur = &current;
  refs = std::move(references);
  frame_number = frame_no;
  is_intra = refs.empty();

  const int mbs = config.total_mbs();
  // assign() (not re-construction) everywhere: on a reused EncodeJob the
  // vectors keep their capacity, so steady-state frames touch the heap only
  // when the geometry grows.
  fields.resize(refs.size());
  for (MotionField& f : fields) {
    f.assign(static_cast<std::size_t>(mbs), MbMotion{});
  }
  choices.assign(static_cast<std::size_t>(mbs), MbModeChoice{});
  coded.assign(static_cast<std::size_t>(mbs), MbCoded{});
  dbl_info.assign(static_cast<std::size_t>(mbs) * 16, Block4x4Info{});

  const int border = ref_border(config);
  if (recycled != nullptr && recycled->recon.y.width() == config.width &&
      recycled->recon.y.height() == config.height &&
      recycled->recon.y.border() == border) {
    // Adopt the evicted picture's planes: every pixel of recon is written
    // by reconstruction and every pixel of sf by INT before anyone reads
    // them, so a scrub of the metadata suffices.
    recycled->sf_ready = false;
    recycled->frame_number = -1;
    recon = std::move(recycled);
  } else {
    recon = std::make_unique<RefPicture>(config.width, config.height, border);
  }
}

void me_rows(EncodeJob& job, int row_begin, int row_end, SimdTier tier) {
  MeParams params;
  params.search_range = job.cfg->search_range;
  params.tier = tier;
  for (std::size_t r = 0; r < job.refs.size(); ++r) {
    run_me_rows(job.cur->y, job.refs[r]->recon.y, job.cfg->mb_width(),
                row_begin, row_end, params, job.fields[r].data());
  }
}

void int_rows(EncodeJob& job, int row_begin, int row_end, SimdTier tier) {
  FEVES_CHECK(!job.refs.empty());
  run_interpolation_rows(job.refs[0]->recon.y, row_begin, row_end,
                         job.refs[0]->sf, tier);
}

void finish_interpolation(EncodeJob& job) {
  FEVES_CHECK(!job.refs.empty());
  extend_subpel_borders(job.refs[0]->sf);
  job.refs[0]->sf_ready = true;
}

void sme_rows(EncodeJob& job, int row_begin, int row_end) {
  SmeParams params;
  params.refine_range = job.cfg->subpel_refine_range;
  for (std::size_t r = 0; r < job.refs.size(); ++r) {
    FEVES_CHECK_MSG(job.refs[r]->sf_ready,
                    "SME before SF of ref " << r << " is complete");
    run_sme_rows(job.cur->y, job.refs[r]->sf, job.cfg->mb_width(), row_begin,
                 row_end, params, job.fields[r].data());
  }
}

void rstar_frame(EncodeJob& job, SimdTier tier) {
  const int mbw = job.cfg->mb_width();
  const int mbh = job.cfg->mb_height();
  const int qp = job.cfg->qp_p;
  const int qpc = kChromaQp[qp];

  run_mode_decision_rows(job.fields, mbw, 0, mbh, job.cfg->lambda_mode,
                         job.choices.data());

  std::vector<const SubPelFrame*> sfs;
  std::vector<const PlaneU8*> refs_u, refs_v;
  sfs.reserve(job.refs.size());
  refs_u.reserve(job.refs.size());
  refs_v.reserve(job.refs.size());
  for (const RefPicture* r : job.refs) {
    sfs.push_back(&r->sf);
    refs_u.push_back(&r->recon.u);
    refs_v.push_back(&r->recon.v);
  }

  for (int mb_y = 0; mb_y < mbh; ++mb_y) {
    for (int mb_x = 0; mb_x < mbw; ++mb_x) {
      const MbModeChoice& choice = job.choices[mb_y * mbw + mb_x];
      MbCoded& coded = job.coded[mb_y * mbw + mb_x];
      coded.intra = false;

      u8 pred_y[kMbSize * kMbSize];
      i16 res_y[kMbSize * kMbSize];
      motion_compensate_luma_mb(job.cur->y, sfs, choice, mb_x, mb_y, pred_y,
                                res_y, tier);
      tq_luma_mb(res_y, qp, /*intra=*/false, coded);

      u8 pred_u[kCMb * kCMb], pred_v[kCMb * kCMb];
      i16 res_u[kCMb * kCMb], res_v[kCMb * kCMb];
      motion_compensate_chroma_mb(job.cur->u, refs_u, choice, mb_x, mb_y,
                                  pred_u, res_u, tier);
      motion_compensate_chroma_mb(job.cur->v, refs_v, choice, mb_x, mb_y,
                                  pred_v, res_v, tier);
      tq_chroma_mb(res_u, qpc, false, coded.cb_levels);
      tq_chroma_mb(res_v, qpc, false, coded.cr_levels);

      reconstruct_inter_mb(job, mb_x, mb_y, sfs, refs_u, refs_v, tier);
      fill_dbl_info(job, mb_x, mb_y);
    }
  }
  finish_reconstruction(job, tier);
}

void intra_frame(EncodeJob& job) {
  const int mbw = job.cfg->mb_width();
  const int mbh = job.cfg->mb_height();
  const int qp = job.cfg->qp_i;
  const int qpc = kChromaQp[qp];
  job.is_intra = true;

  // Sequential raster order: each MB predicts from already reconstructed
  // neighbours — the intra dependency that keeps this path on one device.
  u8 pred_y[kMbSize * kMbSize];
  u8 pred_u[kCMb * kCMb], pred_v[kCMb * kCMb];

  for (int mb_y = 0; mb_y < mbh; ++mb_y) {
    for (int mb_x = 0; mb_x < mbw; ++mb_x) {
      MbCoded& coded = job.coded[mb_y * mbw + mb_x];
      coded.intra = true;
      coded.intra_mode =
          select_intra_mode(job.cur->y, job.recon->recon.y, mb_x, mb_y);
      intra_predict_16x16(job.recon->recon.y, mb_x, mb_y, coded.intra_mode,
                          pred_y);
      intra_predict_chroma_dc(job.recon->recon.u, mb_x, mb_y, pred_u);
      intra_predict_chroma_dc(job.recon->recon.v, mb_x, mb_y, pred_v);

      i16 res_y[kMbSize * kMbSize];
      for (int y = 0; y < kMbSize; ++y) {
        const u8* src = job.cur->y.row(mb_y * kMbSize + y) + mb_x * kMbSize;
        for (int x = 0; x < kMbSize; ++x) {
          res_y[y * kMbSize + x] =
              static_cast<i16>(src[x] - pred_y[y * kMbSize + x]);
        }
      }
      tq_luma_mb(res_y, qp, true, coded);

      i16 res_u[kCMb * kCMb], res_v[kCMb * kCMb];
      for (int y = 0; y < kCMb; ++y) {
        const u8* su = job.cur->u.row(mb_y * kCMb + y) + mb_x * kCMb;
        const u8* sv = job.cur->v.row(mb_y * kCMb + y) + mb_x * kCMb;
        for (int x = 0; x < kCMb; ++x) {
          res_u[y * kCMb + x] = static_cast<i16>(su[x] - pred_u[y * kCMb + x]);
          res_v[y * kCMb + x] = static_cast<i16>(sv[x] - pred_v[y * kCMb + x]);
        }
      }
      tq_chroma_mb(res_u, qpc, true, coded.cb_levels);
      tq_chroma_mb(res_v, qpc, true, coded.cr_levels);

      reconstruct_blocks<kMbSize>(job.recon->recon.y, mb_x * kMbSize,
                                  mb_y * kMbSize, pred_y, coded.luma_levels,
                                  qp);
      reconstruct_blocks<kCMb>(job.recon->recon.u, mb_x * kCMb, mb_y * kCMb,
                               pred_u, coded.cb_levels, qpc);
      reconstruct_blocks<kCMb>(job.recon->recon.v, mb_x * kCMb, mb_y * kCMb,
                               pred_v, coded.cr_levels, qpc);
      fill_dbl_info(job, mb_x, mb_y);
    }
  }
  finish_reconstruction(job);
}

void write_frame_bitstream(const EncodeJob& job, BitWriter& bw) {
  const int mbw = job.cfg->mb_width();
  const int mbh = job.cfg->mb_height();

  bw.put_ue(static_cast<u32>(job.frame_number));
  bw.put_bit(job.is_intra ? 1 : 0);
  bw.put_ue(static_cast<u32>(job.is_intra ? job.cfg->qp_i : job.cfg->qp_p));
  bw.put_ue(static_cast<u32>(mbw));
  bw.put_ue(static_cast<u32>(mbh));
  bw.put_ue(static_cast<u32>(job.refs.size()));

  for (int mb = 0; mb < mbw * mbh; ++mb) {
    const MbCoded& coded = job.coded[mb];
    if (job.is_intra) {
      bw.put_ue(static_cast<u32>(coded.intra_mode));
    } else {
      const MbModeChoice& choice = job.choices[mb];
      bw.put_ue(static_cast<u32>(choice.mode));
      const PartitionGeometry& g = geometry(choice.mode);
      for (int b = 0; b < g.num_blocks(); ++b) {
        bw.put_ue(choice.blocks[b].ref_idx);
        bw.put_se(choice.blocks[b].mv.x);
        bw.put_se(choice.blocks[b].mv.y);
      }
    }
    for (int b = 0; b < 16; ++b) cavlc_encode_4x4(bw, coded.luma_levels[b].data());
    for (int b = 0; b < 4; ++b) cavlc_encode_4x4(bw, coded.cb_levels[b].data());
    for (int b = 0; b < 4; ++b) cavlc_encode_4x4(bw, coded.cr_levels[b].data());
  }
  bw.finish();
}

std::unique_ptr<RefPicture> encode_frame_reference(
    const EncoderConfig& cfg, const Frame420& cur, RefList& refs,
    int frame_number, std::vector<u8>* bitstream_out) {
  EncodeJob job;
  std::vector<RefPicture*> borrowed;
  for (int i = 0; i < refs.size(); ++i) borrowed.push_back(&refs.ref(i));
  job.prepare(cfg, cur, std::move(borrowed), frame_number);

  if (job.is_intra) {
    intra_frame(job);
  } else {
    const int rows = cfg.num_mb_rows();
    me_rows(job, 0, rows);
    int_rows(job, 0, rows);
    finish_interpolation(job);
    sme_rows(job, 0, rows);
    rstar_frame(job);
  }

  if (bitstream_out != nullptr) {
    BitWriter bw;
    write_frame_bitstream(job, bw);
    const auto& bytes = bw.bytes();
    bitstream_out->insert(bitstream_out->end(), bytes.begin(), bytes.end());
  }
  return std::move(job.recon);
}

std::unique_ptr<RefPicture> decode_frame(const EncoderConfig& cfg,
                                         BitReader& br, RefList& refs) {
  EncodeJob job;  // reused as decoder-side working state
  // Header.
  const int frame_number = static_cast<int>(br.get_ue());
  const bool is_intra = br.get_bit() != 0;
  const int qp = static_cast<int>(br.get_ue());
  const int mbw = static_cast<int>(br.get_ue());
  const int mbh = static_cast<int>(br.get_ue());
  const int num_refs = static_cast<int>(br.get_ue());
  FEVES_CHECK_MSG(mbw == cfg.mb_width() && mbh == cfg.mb_height(),
                  "bitstream geometry mismatch");
  FEVES_CHECK(num_refs <= refs.size());
  FEVES_CHECK(qp == (is_intra ? cfg.qp_i : cfg.qp_p));

  // The decoder interpolates its own newest reference, mirroring the
  // encoder's INT module.
  Frame420 dummy_cur(cfg.width, cfg.height, 16);
  std::vector<RefPicture*> borrowed;
  for (int i = 0; i < num_refs; ++i) borrowed.push_back(&refs.ref(i));
  job.prepare(cfg, dummy_cur, std::move(borrowed), frame_number);
  job.is_intra = is_intra;

  if (!is_intra && !job.refs[0]->sf_ready) {
    int_rows(job, 0, cfg.num_mb_rows());
    finish_interpolation(job);
  }

  const int qpc = kChromaQp[qp];
  u8 intra_pred_y[kMbSize * kMbSize];
  u8 intra_pred_u[kCMb * kCMb], intra_pred_v[kCMb * kCMb];

  std::vector<const SubPelFrame*> sfs;
  std::vector<const PlaneU8*> refs_u, refs_v;
  for (const RefPicture* r : job.refs) {
    sfs.push_back(&r->sf);
    refs_u.push_back(&r->recon.u);
    refs_v.push_back(&r->recon.v);
  }

  for (int mb_y = 0; mb_y < mbh; ++mb_y) {
    for (int mb_x = 0; mb_x < mbw; ++mb_x) {
      const int mb = mb_y * mbw + mb_x;
      MbCoded& coded = job.coded[mb];
      coded.intra = is_intra;
      if (is_intra) {
        coded.intra_mode = static_cast<IntraMode>(br.get_ue());
        FEVES_CHECK(static_cast<int>(coded.intra_mode) < kNumIntraModes);
      } else {
        MbModeChoice& choice = job.choices[mb];
        choice.mode = static_cast<PartitionMode>(br.get_ue());
        FEVES_CHECK(static_cast<int>(choice.mode) < kNumPartitionModes);
        const PartitionGeometry& g = geometry(choice.mode);
        for (int b = 0; b < g.num_blocks(); ++b) {
          choice.blocks[b].ref_idx = static_cast<u8>(br.get_ue());
          FEVES_CHECK(choice.blocks[b].ref_idx < num_refs);
          choice.blocks[b].mv.x = static_cast<i16>(br.get_se());
          choice.blocks[b].mv.y = static_cast<i16>(br.get_se());
        }
      }
      for (int b = 0; b < 16; ++b) {
        const int nz = cavlc_decode_4x4(br, job.coded[mb].luma_levels[b].data());
        coded.luma_nonzero[b] = nz > 0;
      }
      for (int b = 0; b < 4; ++b) cavlc_decode_4x4(br, coded.cb_levels[b].data());
      for (int b = 0; b < 4; ++b) cavlc_decode_4x4(br, coded.cr_levels[b].data());

      if (is_intra) {
        intra_predict_16x16(job.recon->recon.y, mb_x, mb_y, coded.intra_mode,
                            intra_pred_y);
        intra_predict_chroma_dc(job.recon->recon.u, mb_x, mb_y, intra_pred_u);
        intra_predict_chroma_dc(job.recon->recon.v, mb_x, mb_y, intra_pred_v);
        reconstruct_blocks<kMbSize>(job.recon->recon.y, mb_x * kMbSize,
                                    mb_y * kMbSize, intra_pred_y,
                                    coded.luma_levels, qp);
        reconstruct_blocks<kCMb>(job.recon->recon.u, mb_x * kCMb, mb_y * kCMb,
                                 intra_pred_u, coded.cb_levels, qpc);
        reconstruct_blocks<kCMb>(job.recon->recon.v, mb_x * kCMb, mb_y * kCMb,
                                 intra_pred_v, coded.cr_levels, qpc);
      } else {
        // Inter: MC needs the current frame only for residual computation,
        // which the decoder doesn't do — pass the reconstruction plane as a
        // stand-in current frame (the residual output is discarded).
        const MbModeChoice& choice = job.choices[mb];
        u8 pred_y[kMbSize * kMbSize];
        i16 scratch_y[kMbSize * kMbSize];
        motion_compensate_luma_mb(job.recon->recon.y, sfs, choice, mb_x, mb_y,
                                  pred_y, scratch_y);
        u8 pred_u[kCMb * kCMb], pred_v[kCMb * kCMb];
        i16 scratch_c[kCMb * kCMb];
        motion_compensate_chroma_mb(job.recon->recon.u, refs_u, choice, mb_x,
                                    mb_y, pred_u, scratch_c);
        motion_compensate_chroma_mb(job.recon->recon.v, refs_v, choice, mb_x,
                                    mb_y, pred_v, scratch_c);
        reconstruct_blocks<kMbSize>(job.recon->recon.y, mb_x * kMbSize,
                                    mb_y * kMbSize, pred_y, coded.luma_levels,
                                    qp);
        reconstruct_blocks<kCMb>(job.recon->recon.u, mb_x * kCMb, mb_y * kCMb,
                                 pred_u, coded.cb_levels, qpc);
        reconstruct_blocks<kCMb>(job.recon->recon.v, mb_x * kCMb, mb_y * kCMb,
                                 pred_v, coded.cr_levels, qpc);
      }
      fill_dbl_info(job, mb_x, mb_y);
    }
  }
  finish_reconstruction(job);

  // Consume frame padding: the writer byte-aligned after the stop bit.
  while (br.bit_position() % 8 != 0) br.get_bit();
  return std::move(job.recon);
}

}  // namespace feves
