#include "codec/mc.hpp"

#include "common/check.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace feves {

namespace {

/// Exp-Golomb code length of unsigned value k: 2*floor(log2(k+1)) + 1.
int ue_bits(u32 k) {
  int bits = 0;
  u32 v = k + 1;
  while (v > 1) {
    v >>= 1;
    ++bits;
  }
  return 2 * bits + 1;
}

}  // namespace

int se_bits(int v) {
  const u32 mapped = v <= 0 ? static_cast<u32>(-2 * v) : static_cast<u32>(2 * v - 1);
  return ue_bits(mapped);
}

void run_mode_decision_rows(const std::vector<MotionField>& fields,
                            int mb_width, int row_begin, int row_end,
                            double lambda, MbModeChoice* choices) {
  FEVES_CHECK(!fields.empty());
  const int num_refs = static_cast<int>(fields.size());

  for (int mb_y = row_begin; mb_y < row_end; ++mb_y) {
    for (int mb_x = 0; mb_x < mb_width; ++mb_x) {
      const int mb_idx = mb_y * mb_width + mb_x;
      MbModeChoice& out = choices[mb_idx];
      double best_total = std::numeric_limits<double>::infinity();

      for (int mode_i = 0; mode_i < kNumPartitionModes; ++mode_i) {
        const auto mode = static_cast<PartitionMode>(mode_i);
        const PartitionGeometry& g = geometry(mode);
        double total = 0.0;
        std::array<MbModeChoice::BlockChoice, 16> blk{};

        for (int b = 0; b < g.num_blocks(); ++b) {
          double best_block = std::numeric_limits<double>::infinity();
          for (int r = 0; r < num_refs; ++r) {
            const MotionEntry& e = fields[r][mb_idx].entry(mode, b);
            FEVES_CHECK(e.cost != kInvalidCost);
            const double rate =
                lambda * (se_bits(e.mv.x) + se_bits(e.mv.y) +
                          ue_bits(static_cast<u32>(r)));
            const double c = static_cast<double>(e.cost) + rate;
            if (c < best_block) {
              best_block = c;
              blk[b].mv = e.mv;
              blk[b].ref_idx = static_cast<u8>(r);
            }
          }
          total += best_block;
        }
        // Small per-mode header-rate bias: more blocks cost more MV/ref
        // syntax. Keeps the selection from degenerating to always-4x4 when
        // lambda == 0 would otherwise tie everything.
        total += lambda * 2.0 * g.num_blocks();

        if (total < best_total) {
          best_total = total;
          out.mode = mode;
          out.blocks = blk;
          out.cost = static_cast<u32>(std::lround(std::min(
              best_total, static_cast<double>(kInvalidCost - 1))));
        }
      }
    }
  }
}

namespace detail {
// Implemented in mc_simd.cpp (scalar forwards off x86; never the resolved
// tier there). pred/res are kMbSize-stride MB-local tiles (prstride
// parameterized so the chroma 8x8 tile reuses the luma kernel shape).
void mc_luma_block_simd(const u8* src, std::ptrdiff_t sstride, const u8* orig,
                        std::ptrdiff_t ostride, u8* pred, i16* res,
                        std::ptrdiff_t prstride, int w, int h);
void mc_chroma_block_simd(const u8* ref0, std::ptrdiff_t ref_stride,
                          const u8* orig, std::ptrdiff_t ostride, u8* pred,
                          i16* res, std::ptrdiff_t prstride, int w, int h,
                          int xf, int yf);
}  // namespace detail

void motion_compensate_luma_mb(const PlaneU8& cur,
                               const std::vector<const SubPelFrame*>& sfs,
                               const MbModeChoice& choice, int mb_x, int mb_y,
                               u8 pred[kMbSize * kMbSize],
                               i16 residual[kMbSize * kMbSize],
                               SimdTier tier) {
  const SimdTier got = resolve_tier(KernelId::kMc, tier);
  const bool vec = got == SimdTier::kSse2 || got == SimdTier::kAvx2;
  const PartitionGeometry& g = geometry(choice.mode);
  for (int b = 0; b < g.num_blocks(); ++b) {
    int bx0, by0;
    block_origin(choice.mode, b, &bx0, &by0);
    const MbModeChoice::BlockChoice& bc = choice.blocks[b];
    FEVES_CHECK(bc.ref_idx < sfs.size());
    const SubPelFrame& sf = *sfs[bc.ref_idx];

    const int px0 = mb_x * kMbSize + bx0;
    const int py0 = mb_y * kMbSize + by0;
    const int iy = bc.mv.y >> 2;
    const int ix = bc.mv.x >> 2;
    const PlaneU8& phase = sf.phase(bc.mv.y & 3, bc.mv.x & 3);

    if (vec) {
      detail::mc_luma_block_simd(phase.row(py0 + iy) + px0 + ix,
                                 phase.stride(), cur.row(py0) + px0,
                                 cur.stride(), pred + by0 * kMbSize + bx0,
                                 residual + by0 * kMbSize + bx0, kMbSize,
                                 g.block_w, g.block_h);
      continue;
    }
    for (int y = 0; y < g.block_h; ++y) {
      const u8* src = phase.row(py0 + iy + y) + px0 + ix;
      const u8* orig = cur.row(py0 + y) + px0;
      u8* p = pred + (by0 + y) * kMbSize + bx0;
      i16* res = residual + (by0 + y) * kMbSize + bx0;
      for (int x = 0; x < g.block_w; ++x) {
        p[x] = src[x];
        res[x] = static_cast<i16>(static_cast<int>(orig[x]) - src[x]);
      }
    }
  }
}

void motion_compensate_chroma_mb(const PlaneU8& cur_c,
                                 const std::vector<const PlaneU8*>& refs_c,
                                 const MbModeChoice& choice, int mb_x,
                                 int mb_y, u8 pred[64], i16 residual[64],
                                 SimdTier tier) {
  constexpr int kCMb = kMbSize / 2;  // 8x8 chroma block per MB in 4:2:0
  const SimdTier got = resolve_tier(KernelId::kMc, tier);
  const bool vec = got == SimdTier::kSse2 || got == SimdTier::kAvx2;
  const PartitionGeometry& g = geometry(choice.mode);

  for (int b = 0; b < g.num_blocks(); ++b) {
    int bx0, by0;
    block_origin(choice.mode, b, &bx0, &by0);
    const MbModeChoice::BlockChoice& bc = choice.blocks[b];
    FEVES_CHECK(bc.ref_idx < refs_c.size());
    const PlaneU8& ref = *refs_c[bc.ref_idx];

    // Chroma geometry: half the luma block in each dimension. The luma
    // quarter-pel MV is an eighth-pel chroma MV (H.264 8.4.2.2.2).
    const int cw = g.block_w / 2;
    const int ch = g.block_h / 2;
    const int cx0 = mb_x * kCMb + bx0 / 2;
    const int cy0 = mb_y * kCMb + by0 / 2;
    const int ix = bc.mv.x >> 3;
    const int iy = bc.mv.y >> 3;
    const int xf = bc.mv.x & 7;
    const int yf = bc.mv.y & 7;

    if (vec) {
      detail::mc_chroma_block_simd(ref.row(cy0 + iy) + cx0 + ix, ref.stride(),
                                   cur_c.row(cy0) + cx0, cur_c.stride(),
                                   pred + (by0 / 2) * kCMb + bx0 / 2,
                                   residual + (by0 / 2) * kCMb + bx0 / 2,
                                   kCMb, cw, ch, xf, yf);
      continue;
    }
    for (int y = 0; y < ch; ++y) {
      const u8* r0 = ref.row(cy0 + iy + y) + cx0 + ix;
      const u8* r1 = ref.row(cy0 + iy + y + 1) + cx0 + ix;
      const u8* orig = cur_c.row(cy0 + y) + cx0;
      u8* p = pred + (by0 / 2 + y) * kCMb + bx0 / 2;
      i16* res = residual + (by0 / 2 + y) * kCMb + bx0 / 2;
      for (int x = 0; x < cw; ++x) {
        const int v = (8 - xf) * (8 - yf) * r0[x] + xf * (8 - yf) * r0[x + 1] +
                      (8 - xf) * yf * r1[x] + xf * yf * r1[x + 1];
        const u8 pv = static_cast<u8>((v + 32) >> 6);
        p[x] = pv;
        res[x] = static_cast<i16>(static_cast<int>(orig[x]) - pv);
      }
    }
  }
}

}  // namespace feves
