// Macroblock partition geometry for the 7 H.264 inter partition modes
// (16x16, 16x8, 8x16, 8x8, 8x4, 4x8, 4x4 — paper Sec. II). A macroblock's
// motion field stores one MotionEntry per partition block of EVERY mode,
// 41 blocks total, so that the mode decision in MC can compare all modes
// after SME refinement.
#pragma once

#include "common/check.hpp"
#include "common/types.hpp"
#include "codec/mv.hpp"

#include <array>

namespace feves {

enum class PartitionMode : u8 {
  k16x16 = 0,
  k16x8 = 1,
  k8x16 = 2,
  k8x8 = 3,
  k8x4 = 4,
  k4x8 = 5,
  k4x4 = 6,
};

struct PartitionGeometry {
  int block_w;
  int block_h;
  int blocks_x;  ///< blocks per MB horizontally
  int blocks_y;  ///< blocks per MB vertically
  int num_blocks() const { return blocks_x * blocks_y; }
};

inline constexpr std::array<PartitionGeometry, kNumPartitionModes>
    kPartitionGeometry = {{
        {16, 16, 1, 1},  // 16x16
        {16, 8, 1, 2},   // 16x8
        {8, 16, 2, 1},   // 8x16
        {8, 8, 2, 2},    // 8x8
        {8, 4, 2, 4},    // 8x4
        {4, 8, 4, 2},    // 4x8
        {4, 4, 4, 4},    // 4x4
    }};

inline const PartitionGeometry& geometry(PartitionMode mode) {
  return kPartitionGeometry[static_cast<int>(mode)];
}

/// First index of `mode`'s blocks in the flat 41-entry per-MB array.
inline constexpr std::array<int, kNumPartitionModes + 1> kModeOffset = {
    0, 1, 3, 5, 9, 17, 25, 41};

/// Total motion entries per macroblock across all partition modes.
inline constexpr int kEntriesPerMb = kModeOffset[kNumPartitionModes];

/// Pixel offset of block `b` of `mode` inside its macroblock.
inline void block_origin(PartitionMode mode, int b, int* x0, int* y0) {
  const PartitionGeometry& g = geometry(mode);
  FEVES_CHECK(b >= 0 && b < g.num_blocks());
  *x0 = (b % g.blocks_x) * g.block_w;
  *y0 = (b / g.blocks_x) * g.block_h;
}

/// Motion entries of all 41 partition blocks of one macroblock against ONE
/// reference frame.
struct MbMotion {
  std::array<MotionEntry, kEntriesPerMb> entries;

  MotionEntry& entry(PartitionMode mode, int block) {
    const int idx = kModeOffset[static_cast<int>(mode)] + block;
    FEVES_CHECK(idx < kModeOffset[static_cast<int>(mode) + 1]);
    return entries[idx];
  }
  const MotionEntry& entry(PartitionMode mode, int block) const {
    const int idx = kModeOffset[static_cast<int>(mode)] + block;
    FEVES_CHECK(idx < kModeOffset[static_cast<int>(mode) + 1]);
    return entries[idx];
  }
};

}  // namespace feves
