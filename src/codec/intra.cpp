#include "codec/intra.hpp"

#include "codec/sad.hpp"
#include "common/check.hpp"

#include <algorithm>
#include <limits>

namespace feves {

namespace {

inline u8 clip255(int v) { return static_cast<u8>(std::clamp(v, 0, 255)); }

}  // namespace

bool intra_mode_available(IntraMode mode, IntraNeighbours n) {
  switch (mode) {
    case IntraMode::kVertical:
      return n.above;
    case IntraMode::kHorizontal:
      return n.left;
    case IntraMode::kDc:
      return true;
    case IntraMode::kPlane:
      return n.above && n.left;
  }
  return false;
}

void intra_predict_16x16(const PlaneU8& recon, int mb_x, int mb_y,
                         IntraMode mode, u8 pred[256]) {
  const int x0 = mb_x * kMbSize;
  const int y0 = mb_y * kMbSize;
  const IntraNeighbours n = intra_neighbours(mb_x, mb_y);
  FEVES_CHECK_MSG(intra_mode_available(mode, n),
                  "intra mode " << static_cast<int>(mode)
                                << " without its neighbours");

  switch (mode) {
    case IntraMode::kVertical: {
      const u8* above = recon.row(y0 - 1) + x0;
      for (int y = 0; y < kMbSize; ++y) {
        for (int x = 0; x < kMbSize; ++x) pred[y * kMbSize + x] = above[x];
      }
      break;
    }
    case IntraMode::kHorizontal: {
      for (int y = 0; y < kMbSize; ++y) {
        const u8 leftpix = recon.row(y0 + y)[x0 - 1];
        for (int x = 0; x < kMbSize; ++x) pred[y * kMbSize + x] = leftpix;
      }
      break;
    }
    case IntraMode::kDc: {
      int sum = 0, count = 0;
      if (n.above) {
        const u8* above = recon.row(y0 - 1) + x0;
        for (int x = 0; x < kMbSize; ++x) sum += above[x];
        count += kMbSize;
      }
      if (n.left) {
        for (int y = 0; y < kMbSize; ++y) sum += recon.row(y0 + y)[x0 - 1];
        count += kMbSize;
      }
      const u8 dc = count > 0
                        ? static_cast<u8>((sum + count / 2) / count)
                        : u8{128};
      for (int i = 0; i < kMbSize * kMbSize; ++i) pred[i] = dc;
      break;
    }
    case IntraMode::kPlane: {
      // H.264 8.3.3.4 with the above-right samples clamped into the frame
      // (the standard requires them available; edge MBs fall back to the
      // rightmost reconstructed sample via the plane border extension —
      // interior reconstruction rows always extend to x0+15).
      const u8* above = recon.row(y0 - 1);
      int h = 0, v = 0;
      for (int i = 1; i <= 8; ++i) {
        h += i * (above[x0 + 7 + i] - above[x0 + 7 - i]);
        v += i * (recon.row(y0 + 7 + i)[x0 - 1] - recon.row(y0 + 7 - i)[x0 - 1]);
      }
      const int a = 16 * (above[x0 + 15] + recon.row(y0 + 15)[x0 - 1]);
      const int b = (5 * h + 32) >> 6;
      const int c = (5 * v + 32) >> 6;
      for (int y = 0; y < kMbSize; ++y) {
        for (int x = 0; x < kMbSize; ++x) {
          pred[y * kMbSize + x] =
              clip255((a + b * (x - 7) + c * (y - 7) + 16) >> 5);
        }
      }
      break;
    }
  }
}

IntraMode select_intra_mode(const PlaneU8& source, const PlaneU8& recon,
                            int mb_x, int mb_y) {
  const IntraNeighbours n = intra_neighbours(mb_x, mb_y);
  const u8* src = source.row(mb_y * kMbSize) + mb_x * kMbSize;
  IntraMode best = IntraMode::kDc;
  u32 best_cost = std::numeric_limits<u32>::max();
  u8 pred[256];
  for (int m = 0; m < kNumIntraModes; ++m) {
    const auto mode = static_cast<IntraMode>(m);
    if (!intra_mode_available(mode, n)) continue;
    intra_predict_16x16(recon, mb_x, mb_y, mode, pred);
    const u32 cost =
        sad_block(src, source.stride(), pred, kMbSize, kMbSize, kMbSize);
    if (cost < best_cost) {
      best_cost = cost;
      best = mode;
    }
  }
  return best;
}

void intra_predict_chroma_dc(const PlaneU8& recon_c, int mb_x, int mb_y,
                             u8 pred[64]) {
  constexpr int kC = kMbSize / 2;
  const int x0 = mb_x * kC;
  const int y0 = mb_y * kC;
  const IntraNeighbours n = intra_neighbours(mb_x, mb_y);
  int sum = 0, count = 0;
  if (n.above) {
    const u8* above = recon_c.row(y0 - 1) + x0;
    for (int x = 0; x < kC; ++x) sum += above[x];
    count += kC;
  }
  if (n.left) {
    for (int y = 0; y < kC; ++y) sum += recon_c.row(y0 + y)[x0 - 1];
    count += kC;
  }
  const u8 dc =
      count > 0 ? static_cast<u8>((sum + count / 2) / count) : u8{128};
  for (int i = 0; i < kC * kC; ++i) pred[i] = dc;
}

}  // namespace feves
