// SSE2 tier of the motion-compensation block kernels: prediction copy +
// i16 residual for luma, eighth-pel bilinear blend for chroma. Compilable-
// on-x86 guard only; runtime selection is the registry's.
//
// Exactness: the luma path is a copy and a widening subtract. The chroma
// blend v = w00*r0[x] + w01*r0[x+1] + w10*r1[x] + w11*r1[x+1] has weights
// summing to 64, so v <= 64*255 = 16320 and every product <= 64*255 — all
// within i16, making PMULLW exact; (v+32)>>6 lands in [0,255] so the final
// pack never saturates.
#include "common/types.hpp"

#include <cstddef>

#if defined(__x86_64__) || defined(_M_X64)
#define FEVES_CAN_SSE2 1
#include <emmintrin.h>
#endif

namespace feves::detail {

#if FEVES_CAN_SSE2

namespace {

inline __m128i loadu(const void* p) {
  return _mm_loadu_si128(static_cast<const __m128i*>(p));
}

inline void storeu(void* p, __m128i v) {
  _mm_storeu_si128(static_cast<__m128i*>(p), v);
}

}  // namespace

void mc_luma_block_simd(const u8* src, std::ptrdiff_t sstride, const u8* orig,
                        std::ptrdiff_t ostride, u8* pred, i16* res,
                        std::ptrdiff_t prstride, int w, int h) {
  const __m128i zero = _mm_setzero_si128();
  if (w == 16) {
    for (int y = 0; y < h; ++y) {
      const __m128i s = loadu(src + y * sstride);
      const __m128i o = loadu(orig + y * ostride);
      storeu(pred + y * prstride, s);
      i16* r = res + y * prstride;
      storeu(r, _mm_sub_epi16(_mm_unpacklo_epi8(o, zero),
                              _mm_unpacklo_epi8(s, zero)));
      storeu(r + 8, _mm_sub_epi16(_mm_unpackhi_epi8(o, zero),
                                  _mm_unpackhi_epi8(s, zero)));
    }
    return;
  }
  if (w == 8) {
    for (int y = 0; y < h; ++y) {
      const __m128i s =
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(src + y * sstride));
      const __m128i o = _mm_loadl_epi64(
          reinterpret_cast<const __m128i*>(orig + y * ostride));
      _mm_storel_epi64(reinterpret_cast<__m128i*>(pred + y * prstride), s);
      storeu(res + y * prstride,
             _mm_sub_epi16(_mm_unpacklo_epi8(o, zero),
                           _mm_unpacklo_epi8(s, zero)));
    }
    return;
  }
  for (int y = 0; y < h; ++y) {  // w == 4 partitions (and any odd caller)
    const u8* s = src + y * sstride;
    const u8* o = orig + y * ostride;
    u8* p = pred + y * prstride;
    i16* r = res + y * prstride;
    for (int x = 0; x < w; ++x) {
      p[x] = s[x];
      r[x] = static_cast<i16>(static_cast<int>(o[x]) - s[x]);
    }
  }
}

void mc_chroma_block_simd(const u8* ref0, std::ptrdiff_t ref_stride,
                          const u8* orig, std::ptrdiff_t ostride, u8* pred,
                          i16* res, std::ptrdiff_t prstride, int w, int h,
                          int xf, int yf) {
  const int w00 = (8 - xf) * (8 - yf);
  const int w01 = xf * (8 - yf);
  const int w10 = (8 - xf) * yf;
  const int w11 = xf * yf;
  if (w == 8) {
    const __m128i zero = _mm_setzero_si128();
    const __m128i v00 = _mm_set1_epi16(static_cast<short>(w00));
    const __m128i v01 = _mm_set1_epi16(static_cast<short>(w01));
    const __m128i v10 = _mm_set1_epi16(static_cast<short>(w10));
    const __m128i v11 = _mm_set1_epi16(static_cast<short>(w11));
    const __m128i k32 = _mm_set1_epi16(32);
    for (int y = 0; y < h; ++y) {
      const u8* r0 = ref0 + y * ref_stride;
      const u8* r1 = r0 + ref_stride;
      const __m128i a = _mm_unpacklo_epi8(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(r0)), zero);
      const __m128i b = _mm_unpacklo_epi8(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(r0 + 1)), zero);
      const __m128i c = _mm_unpacklo_epi8(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(r1)), zero);
      const __m128i d = _mm_unpacklo_epi8(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(r1 + 1)), zero);
      __m128i v = _mm_add_epi16(
          _mm_add_epi16(_mm_mullo_epi16(a, v00), _mm_mullo_epi16(b, v01)),
          _mm_add_epi16(_mm_mullo_epi16(c, v10), _mm_mullo_epi16(d, v11)));
      const __m128i pv = _mm_srli_epi16(_mm_add_epi16(v, k32), 6);
      const __m128i o = _mm_unpacklo_epi8(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(orig + y * ostride)),
          zero);
      _mm_storel_epi64(reinterpret_cast<__m128i*>(pred + y * prstride),
                       _mm_packus_epi16(pv, pv));
      storeu(res + y * prstride, _mm_sub_epi16(o, pv));
    }
    return;
  }
  for (int y = 0; y < h; ++y) {  // 4- and 2-wide chroma partitions
    const u8* r0 = ref0 + y * ref_stride;
    const u8* r1 = r0 + ref_stride;
    const u8* o = orig + y * ostride;
    u8* p = pred + y * prstride;
    i16* r = res + y * prstride;
    for (int x = 0; x < w; ++x) {
      const int v =
          w00 * r0[x] + w01 * r0[x + 1] + w10 * r1[x] + w11 * r1[x + 1];
      const u8 pv = static_cast<u8>((v + 32) >> 6);
      p[x] = pv;
      r[x] = static_cast<i16>(static_cast<int>(o[x]) - pv);
    }
  }
}

#else  // !FEVES_CAN_SSE2: scalar forwards, never the resolved tier there.

void mc_luma_block_simd(const u8* src, std::ptrdiff_t sstride, const u8* orig,
                        std::ptrdiff_t ostride, u8* pred, i16* res,
                        std::ptrdiff_t prstride, int w, int h) {
  for (int y = 0; y < h; ++y) {
    const u8* s = src + y * sstride;
    const u8* o = orig + y * ostride;
    u8* p = pred + y * prstride;
    i16* r = res + y * prstride;
    for (int x = 0; x < w; ++x) {
      p[x] = s[x];
      r[x] = static_cast<i16>(static_cast<int>(o[x]) - s[x]);
    }
  }
}

void mc_chroma_block_simd(const u8* ref0, std::ptrdiff_t ref_stride,
                          const u8* orig, std::ptrdiff_t ostride, u8* pred,
                          i16* res, std::ptrdiff_t prstride, int w, int h,
                          int xf, int yf) {
  const int w00 = (8 - xf) * (8 - yf);
  const int w01 = xf * (8 - yf);
  const int w10 = (8 - xf) * yf;
  const int w11 = xf * yf;
  for (int y = 0; y < h; ++y) {
    const u8* r0 = ref0 + y * ref_stride;
    const u8* r1 = r0 + ref_stride;
    const u8* o = orig + y * ostride;
    u8* p = pred + y * prstride;
    i16* r = res + y * prstride;
    for (int x = 0; x < w; ++x) {
      const int v =
          w00 * r0[x] + w01 * r0[x + 1] + w10 * r1[x] + w11 * r1[x + 1];
      const u8 pv = static_cast<u8>((v + 32) >> 6);
      p[x] = pv;
      r[x] = static_cast<i16>(static_cast<int>(o[x]) - pv);
    }
  }
}

#endif

}  // namespace feves::detail
