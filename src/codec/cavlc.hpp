// CAVLC-structured residual entropy coding. Follows the H.264 CAVLC data
// flow exactly — zig-zag scan, (TotalCoeff, TrailingOnes) token, trailing-
// one signs, reverse-order level coding with the standard's adaptive
// level_prefix/level_suffix suffixLength state machine, total_zeros and
// run_before — but assigns Exp-Golomb codewords to the token/zeros/run
// symbols instead of the standard's hand-tuned VLC tables (a documented
// substitution: entropy coding sits outside the paper's measured
// inter-loop; structure and adaptivity are preserved, absolute rate is
// within a few percent).
#pragma once

#include "codec/bitstream.hpp"
#include "common/types.hpp"

namespace feves {

/// Zig-zag scan order for 4x4 blocks (H.264 Table 8-13, frame coding).
inline constexpr int kZigZag4x4[16] = {0, 1,  4,  8,  5, 2,  3,  6,
                                       9, 12, 13, 10, 7, 11, 14, 15};

/// Encodes one 4x4 block of quantized levels (row-major). Returns the
/// number of non-zero coefficients (the block's TotalCoeff, which callers
/// keep as the nC context/nonzero flag for neighbours and deblocking).
int cavlc_encode_4x4(BitWriter& bw, const i16 levels[16]);

/// Decodes one 4x4 block written by cavlc_encode_4x4 into row-major
/// `levels`. Returns TotalCoeff.
int cavlc_decode_4x4(BitReader& br, i16 levels[16]);

}  // namespace feves
