// Motion vectors and per-macroblock motion records.
//
// All motion vectors are expressed in QUARTER-PEL units throughout the
// encoder. Integer-pel full-search ME produces multiples of 4; the SME
// module refines them to arbitrary quarter-pel positions (paper, Sec. II).
#pragma once

#include "common/types.hpp"

#include <limits>

namespace feves {

struct Mv {
  i16 x = 0;  ///< horizontal displacement, quarter-pel units
  i16 y = 0;  ///< vertical displacement, quarter-pel units

  friend bool operator==(const Mv&, const Mv&) = default;
};

/// Squared... no: L1 length used for MV-rate estimation (|x| + |y|).
inline int mv_l1(const Mv& mv) {
  return (mv.x < 0 ? -mv.x : mv.x) + (mv.y < 0 ? -mv.y : mv.y);
}

/// Cost sentinel meaning "no candidate evaluated yet".
inline constexpr u32 kInvalidCost = std::numeric_limits<u32>::max();

/// One motion candidate: vector + distortion of the best match so far.
struct MotionEntry {
  Mv mv;
  u32 cost = kInvalidCost;
};

}  // namespace feves
