// Internal interface between the deblocking driver (deblock.cpp) and its
// SSE2 edge kernels (deblock_simd.cpp). Not installed API.
//
// Only HORIZONTAL edges vectorize: there the filter taps run down a column
// (step = stride) and the 16 columns of an MB edge are mutually independent
// scalar filters, so 16 lanes map exactly onto the scalar loop. Vertical
// edges tap along the row itself and stay scalar in every tier.
#pragma once

#include "common/types.hpp"

#include <cstddef>

namespace feves::detail {

/// Scalar line filters (definitions in deblock.cpp) — the oracle the SIMD
/// edge kernels and their tests pin against, and the body of the
/// link-satisfying stubs on targets without SSE2.
void filter_line(u8* q0ptr, std::ptrdiff_t step, int bs, int alpha, int beta,
                 int tc0);
void filter_chroma_line(u8* q0ptr, std::ptrdiff_t step, int bs, int alpha,
                        int beta, int tc0);

/// Filters one horizontal luma MB edge: 16 columns, sample q0 of column k at
/// q0row[k], taps at +/- n*stride. Per-column bs/tc0 arrive pre-expanded to
/// i16 lanes (constant within each 4-column segment); lanes with bs == 0 are
/// left untouched. Bit-exact with 16 filter_line calls.
void filter_hedge_luma_simd(u8* q0row, std::ptrdiff_t stride,
                            const i16 bs_lanes[16], const i16 tc0_lanes[16],
                            int alpha, int beta);

/// Chroma variant: 8 columns, only p1..q1 read and p0/q0 written.
void filter_hedge_chroma_simd(u8* q0row, std::ptrdiff_t stride,
                              const i16 bs_lanes[8], const i16 tc0_lanes[8],
                              int alpha, int beta);

}  // namespace feves::detail
