// Internal row-kernel table of the interpolator's vector tiers. Each tier
// provides the same five row passes; run_interpolation_rows assembles the
// 16 phase planes from them. Not installed API — shared between
// interpolate.cpp, interpolate_simd.cpp (SSE2) and kernels_avx2.cpp.
//
// Value ranges (why the narrow arithmetic below is exact):
//   htap/vtap un-normalized 6-tap of u8: [-2550, 10710] — fits i16.
//   (htap + 16) >> 5: [-80, 335] — u8-saturating pack == clip255.
//   j's double 6-tap jj: [-556920, 556920] — needs i32; (jj+512)>>10 is
//   [-544, 544], so an i32->i16 saturating pack is lossless and the final
//   u8 pack == clip255.
#pragma once

#include "common/types.hpp"

namespace feves::interp {

struct RowKernels {
  /// out[x] = un-normalized horizontal 6-tap at (row, x + 1/2), x in [0,n).
  /// Reads row[x-2 .. x+3]; SIMD variants may read up to row[n+13], which
  /// the caller's >= 4 border plus the plane's 64-byte-aligned padded
  /// stride always covers.
  void (*htap_row)(const u8* row, i16* out, int n);
  /// out[x] = clip255((in[x] + 16) >> 5).
  void (*half_row)(const i16* in, u8* out, int n);
  /// out[x] = clip255((v + 16) >> 5), v = vertical 6-tap over rows[0..5]
  /// (source rows y-2 .. y+3) at column x.
  void (*vtap_half_row)(const u8* const rows[6], u8* out, int n);
  /// out[x] = clip255((jj + 512) >> 10), jj = vertical 6-tap over the
  /// un-normalized htap rows h[0..5] (H.264 centre half-pel j).
  void (*jrow)(const i16* const h[6], u8* out, int n);
  /// out[x] = (a[x] + b[x] + 1) >> 1 (quarter-pel bilinear average).
  void (*avg_row)(const u8* a, const u8* b, u8* out, int n);
};

/// Plain-C tier (kBlocked): simple loops the auto-vectorizer handles.
const RowKernels& rows_blocked();
/// Explicit SSE2 tier (forwards to rows_blocked off x86; never selected
/// there — the registry resolves tiers against runtime CPU features).
const RowKernels& rows_sse2();
/// Explicit AVX2 tier (runtime-gated; forwarding stub when not compilable).
const RowKernels& rows_avx2();

}  // namespace feves::interp
