#include "codec/interpolate.hpp"

#include "codec/interp_rows.hpp"
#include "common/aligned.hpp"
#include "common/check.hpp"

#include <algorithm>
#include <cstring>

namespace feves {

namespace {

inline u8 clip255(int v) { return static_cast<u8>(std::clamp(v, 0, 255)); }

/// Un-normalized horizontal 6-tap at half-pel position (y, x + 1/2).
inline int htap(const PlaneU8& p, int y, int x) {
  const u8* r = p.row(y);
  return r[x - 2] - 5 * r[x - 1] + 20 * r[x] + 20 * r[x + 1] - 5 * r[x + 2] +
         r[x + 3];
}

/// Un-normalized vertical 6-tap at half-pel position (y + 1/2, x).
inline int vtap(const PlaneU8& p, int y, int x) {
  return p.row(y - 2)[x] - 5 * p.row(y - 1)[x] + 20 * p.row(y)[x] +
         20 * p.row(y + 1)[x] - 5 * p.row(y + 2)[x] + p.row(y + 3)[x];
}

inline u8 half(int unnormalized) { return clip255((unnormalized + 16) >> 5); }

inline u8 avg(u8 a, u8 b) { return static_cast<u8>((a + b + 1) >> 1); }

/// Scalar oracle: the literal per-pixel H.264 definitions. Every other tier
/// is pinned bit-for-bit against this in tests/codec/simd_tiers_test.
void run_rows_scalar(const PlaneU8& ref, int y_begin, int y_end,
                     SubPelFrame& sf) {
  const int width = ref.width();

  // Phase planes, named after the standard's sample letters:
  //   (0,0)=G  (0,1)=a  (0,2)=b  (0,3)=c
  //   (1,0)=d  (1,1)=e  (1,2)=f  (1,3)=g
  //   (2,0)=h  (2,1)=i  (2,2)=j  (2,3)=k
  //   (3,0)=n  (3,1)=p  (3,2)=q  (3,3)=r
  PlaneU8& pG = sf.phase(0, 0);
  PlaneU8& pa = sf.phase(0, 1);
  PlaneU8& pb = sf.phase(0, 2);
  PlaneU8& pc = sf.phase(0, 3);
  PlaneU8& pd = sf.phase(1, 0);
  PlaneU8& pe = sf.phase(1, 1);
  PlaneU8& pf = sf.phase(1, 2);
  PlaneU8& pg = sf.phase(1, 3);
  PlaneU8& ph = sf.phase(2, 0);
  PlaneU8& pi = sf.phase(2, 1);
  PlaneU8& pj = sf.phase(2, 2);
  PlaneU8& pk = sf.phase(2, 3);
  PlaneU8& pn = sf.phase(3, 0);
  PlaneU8& pp = sf.phase(3, 1);
  PlaneU8& pq = sf.phase(3, 2);
  PlaneU8& pr = sf.phase(3, 3);

  for (int y = y_begin; y < y_end; ++y) {
    const u8* src = ref.row(y);
    u8* rG = pG.row(y);
    u8* ra = pa.row(y);
    u8* rb = pb.row(y);
    u8* rc = pc.row(y);
    u8* rd = pd.row(y);
    u8* re = pe.row(y);
    u8* rf = pf.row(y);
    u8* rg = pg.row(y);
    u8* rh = ph.row(y);
    u8* ri = pi.row(y);
    u8* rj = pj.row(y);
    u8* rk = pk.row(y);
    u8* rn = pn.row(y);
    u8* rp = pp.row(y);
    u8* rq = pq.row(y);
    u8* rr = pr.row(y);

    for (int x = 0; x < width; ++x) {
      const u8 G = src[x];
      const u8 H = src[x + 1];         // next integer sample (border-safe)
      const u8 M = ref.row(y + 1)[x];  // integer sample below

      const int hh_c = htap(ref, y, x);
      const u8 b = half(hh_c);
      const u8 s = half(htap(ref, y + 1, x));  // b one row below
      const u8 h = half(vtap(ref, y, x));
      const u8 m = half(vtap(ref, y, x + 1));  // h one column right

      // Centre half-pel j: vertical 6-tap over un-normalized horizontal
      // intermediates, double-precision shift (H.264 semantics).
      const int jj = htap(ref, y - 2, x) - 5 * htap(ref, y - 1, x) +
                     20 * hh_c + 20 * htap(ref, y + 1, x) -
                     5 * htap(ref, y + 2, x) + htap(ref, y + 3, x);
      const u8 j = clip255((jj + 512) >> 10);

      rG[x] = G;
      ra[x] = avg(G, b);
      rb[x] = b;
      rc[x] = avg(H, b);
      rd[x] = avg(G, h);
      re[x] = avg(b, h);
      rf[x] = avg(b, j);
      rg[x] = avg(b, m);
      rh[x] = h;
      ri[x] = avg(h, j);
      rj[x] = j;
      rk[x] = avg(j, m);
      rn[x] = avg(M, h);
      rp[x] = avg(h, s);
      rq[x] = avg(j, s);
      rr[x] = avg(m, s);
    }
  }
}

/// Row-based engine shared by the blocked/SSE2/AVX2 tiers. The per-pixel
/// oracle recomputes each horizontal tap up to six times (for b, s and the
/// six j terms); here a 6-row ring of un-normalized htap rows computes each
/// exactly once, and every phase plane becomes one contiguous row pass:
///
///   b = half(htap ring row y)          s = half(htap ring row y+1)
///   h,m = vertical-tap row (width+1 samples; m is the row shifted by one)
///   j = double-tap over the six ring rows
///   12 quarter-pel phases = pairwise averages of the rows above.
///
/// Bit-exactness holds per construction: each row pass evaluates the same
/// integer expression as the oracle (ranges in codec/interp_rows.hpp).
void run_rows_engine(const PlaneU8& ref, int y_begin, int y_end,
                     SubPelFrame& sf, const interp::RowKernels& k) {
  const int width = ref.width();
  if (width == 0 || y_begin >= y_end) return;

  // Scratch: the htap ring (i16), the h/m line (width+1 samples) and the s
  // line. One allocation per call — calls are per frame-slice, not per MB.
  const int hpitch = round_up(width, static_cast<int>(kBufferAlign) / 2);
  const int bpitch = round_up(width + 1, static_cast<int>(kBufferAlign));
  AlignedVector<i16> ring(static_cast<std::size_t>(6) * hpitch);
  AlignedVector<u8> hline(static_cast<std::size_t>(bpitch));
  AlignedVector<u8> srow(static_cast<std::size_t>(bpitch));

  // Ring slot of the htap row of source row r (r may start at -2).
  const auto hrow = [&](int r) {
    return ring.data() + static_cast<std::ptrdiff_t>(((r % 6) + 6) % 6) * hpitch;
  };
  for (int r = y_begin - 2; r <= y_begin + 3; ++r) {
    k.htap_row(ref.row(r), hrow(r), width);
  }

  PlaneU8& pG = sf.phase(0, 0);
  PlaneU8& pa = sf.phase(0, 1);
  PlaneU8& pb = sf.phase(0, 2);
  PlaneU8& pc = sf.phase(0, 3);
  PlaneU8& pd = sf.phase(1, 0);
  PlaneU8& pe = sf.phase(1, 1);
  PlaneU8& pf = sf.phase(1, 2);
  PlaneU8& pg = sf.phase(1, 3);
  PlaneU8& ph = sf.phase(2, 0);
  PlaneU8& pi = sf.phase(2, 1);
  PlaneU8& pj = sf.phase(2, 2);
  PlaneU8& pk = sf.phase(2, 3);
  PlaneU8& pn = sf.phase(3, 0);
  PlaneU8& pp = sf.phase(3, 1);
  PlaneU8& pq = sf.phase(3, 2);
  PlaneU8& pr = sf.phase(3, 3);

  for (int y = y_begin; y < y_end; ++y) {
    if (y != y_begin) k.htap_row(ref.row(y + 3), hrow(y + 3), width);

    const u8* src = ref.row(y);
    const u8* below = ref.row(y + 1);
    u8* rb = pb.row(y);
    u8* rh = ph.row(y);
    u8* rj = pj.row(y);

    k.half_row(hrow(y), rb, width);                 // b
    k.half_row(hrow(y + 1), srow.data(), width);    // s (b one row below —
                                                    // scratch: row y+1 may
                                                    // belong to another slice)
    const u8* vrows[6] = {ref.row(y - 2), ref.row(y - 1), src,
                          below,          ref.row(y + 2), ref.row(y + 3)};
    k.vtap_half_row(vrows, hline.data(), width + 1);  // h, and m at x+1
    const i16* jrows[6] = {hrow(y - 2), hrow(y - 1), hrow(y),
                           hrow(y + 1), hrow(y + 2), hrow(y + 3)};
    k.jrow(jrows, rj, width);                       // j

    std::memcpy(pG.row(y), src, static_cast<std::size_t>(width));
    std::memcpy(rh, hline.data(), static_cast<std::size_t>(width));
    k.avg_row(src, rb, pa.row(y), width);                      // a = (G,b)
    k.avg_row(src + 1, rb, pc.row(y), width);                  // c = (H,b)
    k.avg_row(src, hline.data(), pd.row(y), width);            // d = (G,h)
    k.avg_row(rb, hline.data(), pe.row(y), width);             // e = (b,h)
    k.avg_row(rb, rj, pf.row(y), width);                       // f = (b,j)
    k.avg_row(rb, hline.data() + 1, pg.row(y), width);         // g = (b,m)
    k.avg_row(hline.data(), rj, pi.row(y), width);             // i = (h,j)
    k.avg_row(rj, hline.data() + 1, pk.row(y), width);         // k = (j,m)
    k.avg_row(below, hline.data(), pn.row(y), width);          // n = (M,h)
    k.avg_row(hline.data(), srow.data(), pp.row(y), width);    // p = (h,s)
    k.avg_row(rj, srow.data(), pq.row(y), width);              // q = (j,s)
    k.avg_row(hline.data() + 1, srow.data(), pr.row(y), width);  // r = (m,s)
  }
}

}  // namespace

namespace interp {

namespace {

void htap_row_c(const u8* row, i16* out, int n) {
  for (int x = 0; x < n; ++x) {
    out[x] = static_cast<i16>(row[x - 2] - 5 * row[x - 1] + 20 * row[x] +
                              20 * row[x + 1] - 5 * row[x + 2] + row[x + 3]);
  }
}

void half_row_c(const i16* in, u8* out, int n) {
  for (int x = 0; x < n; ++x) out[x] = clip255((in[x] + 16) >> 5);
}

void vtap_half_row_c(const u8* const rows[6], u8* out, int n) {
  const u8* r0 = rows[0];
  const u8* r1 = rows[1];
  const u8* r2 = rows[2];
  const u8* r3 = rows[3];
  const u8* r4 = rows[4];
  const u8* r5 = rows[5];
  for (int x = 0; x < n; ++x) {
    const int v = r0[x] - 5 * r1[x] + 20 * r2[x] + 20 * r3[x] - 5 * r4[x] +
                  r5[x];
    out[x] = clip255((v + 16) >> 5);
  }
}

void jrow_c(const i16* const h[6], u8* out, int n) {
  const i16* h0 = h[0];
  const i16* h1 = h[1];
  const i16* h2 = h[2];
  const i16* h3 = h[3];
  const i16* h4 = h[4];
  const i16* h5 = h[5];
  for (int x = 0; x < n; ++x) {
    const int jj = h0[x] - 5 * h1[x] + 20 * h2[x] + 20 * h3[x] - 5 * h4[x] +
                   h5[x];
    out[x] = clip255((jj + 512) >> 10);
  }
}

void avg_row_c(const u8* a, const u8* b, u8* out, int n) {
  for (int x = 0; x < n; ++x) out[x] = static_cast<u8>((a[x] + b[x] + 1) >> 1);
}

}  // namespace

const RowKernels& rows_blocked() {
  static const RowKernels k = {&htap_row_c, &half_row_c, &vtap_half_row_c,
                               &jrow_c, &avg_row_c};
  return k;
}

}  // namespace interp

void run_interpolation_rows(const PlaneU8& ref, int mb_row_begin,
                            int mb_row_end, SubPelFrame& sf, SimdTier tier) {
  FEVES_CHECK(sf.width() == ref.width() && sf.height() == ref.height());
  FEVES_CHECK(ref.border() >= 4);
  FEVES_CHECK(mb_row_begin >= 0 && mb_row_begin <= mb_row_end);
  FEVES_CHECK(mb_row_end * kMbSize <= ref.height());

  const int y_begin = mb_row_begin * kMbSize;
  const int y_end = mb_row_end * kMbSize;

  switch (resolve_tier(KernelId::kInterp, tier)) {
    case SimdTier::kScalar:
      run_rows_scalar(ref, y_begin, y_end, sf);
      break;
    case SimdTier::kBlocked:
      run_rows_engine(ref, y_begin, y_end, sf, interp::rows_blocked());
      break;
    case SimdTier::kSse2:
      run_rows_engine(ref, y_begin, y_end, sf, interp::rows_sse2());
      break;
    case SimdTier::kAvx2:
      run_rows_engine(ref, y_begin, y_end, sf, interp::rows_avx2());
      break;
    case SimdTier::kAuto:
      break;  // resolve_tier never returns kAuto
  }
}

void extend_subpel_borders(SubPelFrame& sf) {
  for (auto& plane : sf.phases) plane.extend_borders();
}

}  // namespace feves
