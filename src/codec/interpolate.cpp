#include "codec/interpolate.hpp"

#include "common/check.hpp"

#include <algorithm>

namespace feves {

namespace {

inline u8 clip255(int v) { return static_cast<u8>(std::clamp(v, 0, 255)); }

/// Un-normalized horizontal 6-tap at half-pel position (y, x + 1/2).
inline int htap(const PlaneU8& p, int y, int x) {
  const u8* r = p.row(y);
  return r[x - 2] - 5 * r[x - 1] + 20 * r[x] + 20 * r[x + 1] - 5 * r[x + 2] +
         r[x + 3];
}

/// Un-normalized vertical 6-tap at half-pel position (y + 1/2, x).
inline int vtap(const PlaneU8& p, int y, int x) {
  return p.row(y - 2)[x] - 5 * p.row(y - 1)[x] + 20 * p.row(y)[x] +
         20 * p.row(y + 1)[x] - 5 * p.row(y + 2)[x] + p.row(y + 3)[x];
}

inline u8 half(int unnormalized) { return clip255((unnormalized + 16) >> 5); }

inline u8 avg(u8 a, u8 b) { return static_cast<u8>((a + b + 1) >> 1); }

}  // namespace

void run_interpolation_rows(const PlaneU8& ref, int mb_row_begin,
                            int mb_row_end, SubPelFrame& sf) {
  FEVES_CHECK(sf.width() == ref.width() && sf.height() == ref.height());
  FEVES_CHECK(ref.border() >= 4);
  FEVES_CHECK(mb_row_begin >= 0 && mb_row_begin <= mb_row_end);
  FEVES_CHECK(mb_row_end * kMbSize <= ref.height());

  const int y_begin = mb_row_begin * kMbSize;
  const int y_end = mb_row_end * kMbSize;
  const int width = ref.width();

  // Phase planes, named after the standard's sample letters:
  //   (0,0)=G  (0,1)=a  (0,2)=b  (0,3)=c
  //   (1,0)=d  (1,1)=e  (1,2)=f  (1,3)=g
  //   (2,0)=h  (2,1)=i  (2,2)=j  (2,3)=k
  //   (3,0)=n  (3,1)=p  (3,2)=q  (3,3)=r
  PlaneU8& pG = sf.phase(0, 0);
  PlaneU8& pa = sf.phase(0, 1);
  PlaneU8& pb = sf.phase(0, 2);
  PlaneU8& pc = sf.phase(0, 3);
  PlaneU8& pd = sf.phase(1, 0);
  PlaneU8& pe = sf.phase(1, 1);
  PlaneU8& pf = sf.phase(1, 2);
  PlaneU8& pg = sf.phase(1, 3);
  PlaneU8& ph = sf.phase(2, 0);
  PlaneU8& pi = sf.phase(2, 1);
  PlaneU8& pj = sf.phase(2, 2);
  PlaneU8& pk = sf.phase(2, 3);
  PlaneU8& pn = sf.phase(3, 0);
  PlaneU8& pp = sf.phase(3, 1);
  PlaneU8& pq = sf.phase(3, 2);
  PlaneU8& pr = sf.phase(3, 3);

  for (int y = y_begin; y < y_end; ++y) {
    const u8* src = ref.row(y);
    u8* rG = pG.row(y);
    u8* ra = pa.row(y);
    u8* rb = pb.row(y);
    u8* rc = pc.row(y);
    u8* rd = pd.row(y);
    u8* re = pe.row(y);
    u8* rf = pf.row(y);
    u8* rg = pg.row(y);
    u8* rh = ph.row(y);
    u8* ri = pi.row(y);
    u8* rj = pj.row(y);
    u8* rk = pk.row(y);
    u8* rn = pn.row(y);
    u8* rp = pp.row(y);
    u8* rq = pq.row(y);
    u8* rr = pr.row(y);

    for (int x = 0; x < width; ++x) {
      const u8 G = src[x];
      const u8 H = src[x + 1];       // next integer sample (border-safe)
      const u8 M = ref.row(y + 1)[x];  // integer sample below

      const int hh_c = htap(ref, y, x);
      const u8 b = half(hh_c);
      const u8 s = half(htap(ref, y + 1, x));  // b one row below
      const u8 h = half(vtap(ref, y, x));
      const u8 m = half(vtap(ref, y, x + 1));  // h one column right

      // Centre half-pel j: vertical 6-tap over un-normalized horizontal
      // intermediates, double-precision shift (H.264 semantics).
      const int jj = htap(ref, y - 2, x) - 5 * htap(ref, y - 1, x) +
                     20 * hh_c + 20 * htap(ref, y + 1, x) -
                     5 * htap(ref, y + 2, x) + htap(ref, y + 3, x);
      const u8 j = clip255((jj + 512) >> 10);

      rG[x] = G;
      ra[x] = avg(G, b);
      rb[x] = b;
      rc[x] = avg(H, b);
      rd[x] = avg(G, h);
      re[x] = avg(b, h);
      rf[x] = avg(b, j);
      rg[x] = avg(b, m);
      rh[x] = h;
      ri[x] = avg(h, j);
      rj[x] = j;
      rk[x] = avg(j, m);
      rn[x] = avg(M, h);
      rp[x] = avg(h, s);
      rq[x] = avg(j, s);
      rr[x] = avg(m, s);
    }
  }
}

void extend_subpel_borders(SubPelFrame& sf) {
  for (auto& plane : sf.phases) plane.extend_borders();
}

}  // namespace feves
