// H.264 4x4 integer core transform, quantization and their inverses
// (the paper's TQ and TQ^-1 modules). Exact integer arithmetic per the
// standard: forward Cf butterfly, MF/V scaling tables indexed by QP%6 with
// position classes, qbits = 15 + QP/6, inverse butterfly with (x+32)>>6.
#pragma once

#include "codec/kernels.hpp"
#include "common/types.hpp"

namespace feves {

/// Forward core transform of a 4x4 residual block (row-major).
/// Input range [-255, 255]; output magnitudes bounded by 255*36 < 2^15.
/// This is the scalar oracle; tier-dispatched variants come from
/// `forward_transform_4x4_kernel`.
void forward_transform_4x4(const i16 in[16], i16 out[16]);

/// Tier-dispatched forward/inverse transform kernels (registry id
/// kTransform — capped at SSE2: the 4x4 butterflies are 128-bit shaped, a
/// 256-bit variant would spend its cycles in cross-lane shuffles). kScalar
/// and kBlocked both resolve to the scalar oracle.
using Fwd4x4Fn = void (*)(const i16 in[16], i16 out[16]);
using Inv4x4Fn = void (*)(const i32 in[16], i16 out[16]);
Fwd4x4Fn forward_transform_4x4_kernel(SimdTier tier,
                                      SimdTier* resolved = nullptr);
Inv4x4Fn inverse_transform_4x4_kernel(SimdTier tier,
                                      SimdTier* resolved = nullptr);

/// Quantizes transform coefficients. `intra` selects the deadzone constant
/// (f = 2^qbits/3 intra, 2^qbits/6 inter, JM convention).
void quantize_4x4(const i16 coeffs[16], int qp, bool intra, i16 levels[16]);

/// Rescales quantized levels; 32-bit output because V << (QP/6) can exceed
/// 16-bit range at high QP.
void dequantize_4x4(const i16 levels[16], int qp, i32 coeffs[16]);

/// Inverse core transform including the final (x + 32) >> 6 rounding.
void inverse_transform_4x4(const i32 in[16], i16 out[16]);

/// True if any of the 16 levels is non-zero (feeds CAVLC and the deblocking
/// boundary-strength decision).
bool any_nonzero(const i16 levels[16]);

}  // namespace feves
