// Reference picture management: a reconstructed frame plus its lazily
// interpolated SF, and the sliding window of up to 16 references the
// inter-loop reads (paper Sec. II: ME probes all RFs, INT interpolates the
// newest one, producing exactly one new RF and one new SF per inter-frame).
#pragma once

#include "common/config.hpp"
#include "video/frame.hpp"

#include <deque>
#include <memory>

namespace feves {

/// Border large enough for any FSBM candidate (range + MB) plus the SME
/// quarter-pel overshoot and the 6-tap interpolation margin.
inline int ref_border(const EncoderConfig& cfg) {
  return cfg.search_range + kMbSize + 8;
}

struct RefPicture {
  RefPicture(int width, int height, int border)
      : recon(width, height, border), sf(width, height, border) {}

  Frame420 recon;   ///< deblocked reconstruction (valid at creation)
  SubPelFrame sf;   ///< quarter-pel planes (filled by INT next frame)
  bool sf_ready = false;
  int frame_number = -1;
};

/// Sliding window, newest reference first (refs[0] = previous frame).
class RefList {
 public:
  explicit RefList(int capacity) : capacity_(capacity) {
    FEVES_CHECK(capacity >= 1 && capacity <= 16);
  }

  int size() const { return static_cast<int>(refs_.size()); }
  bool empty() const { return refs_.empty(); }
  int capacity() const { return capacity_; }

  RefPicture& ref(int i) { return *refs_[i]; }
  const RefPicture& ref(int i) const { return *refs_[i]; }

  /// Pushes a freshly reconstructed picture as refs[0]; evicts the oldest
  /// when the window is full. Takes ownership. Returns the evicted picture
  /// (nullptr while the window is still filling) so steady-state callers
  /// can recycle its ~tens-of-MB allocation into the next frame's recon
  /// instead of round-tripping the heap every frame.
  std::unique_ptr<RefPicture> push_front(std::unique_ptr<RefPicture> pic) {
    refs_.push_front(std::move(pic));
    std::unique_ptr<RefPicture> evicted;
    if (static_cast<int>(refs_.size()) > capacity_) {
      evicted = std::move(refs_.back());
      refs_.pop_back();
    }
    return evicted;
  }

  void clear() { refs_.clear(); }

 private:
  int capacity_;
  std::deque<std::unique_ptr<RefPicture>> refs_;
};

}  // namespace feves
