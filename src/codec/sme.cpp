#include "codec/sme.hpp"

#include "common/check.hpp"
#include "codec/sad.hpp"

namespace feves {

namespace {

/// Pointer to the SF sample at quarter-pel position (qy, qx) anchored at
/// integer pixel (y0, x0): the integer part selects the row/column of the
/// phase plane, the fractional part selects the plane.
inline const u8* subpel_ptr(const SubPelFrame& sf, int y0, int x0, int qy,
                            int qx, std::ptrdiff_t* stride) {
  const int iy = qy >> 2;  // arithmetic shift: floor for negatives
  const int ix = qx >> 2;
  const int py = qy & 3;
  const int px = qx & 3;
  const PlaneU8& plane = sf.phase(py, px);
  *stride = plane.stride();
  return plane.row(y0 + iy) + (x0 + ix);
}

}  // namespace

void run_sme_rows(const PlaneU8& cur, const SubPelFrame& sf, int mb_width,
                  int row_begin, int row_end, const SmeParams& params,
                  MbMotion* field) {
  FEVES_CHECK(cur.width() == sf.width() && cur.height() == sf.height());
  FEVES_CHECK(mb_width * kMbSize == cur.width());
  FEVES_CHECK(row_begin >= 0 && row_begin <= row_end);
  FEVES_CHECK(row_end * kMbSize <= cur.height());
  const int r = params.refine_range;
  FEVES_CHECK(r >= 0 && r <= 3);

  for (int mb_y = row_begin; mb_y < row_end; ++mb_y) {
    for (int mb_x = 0; mb_x < mb_width; ++mb_x) {
      MbMotion& mb = field[mb_y * mb_width + mb_x];
      for (int mode_i = 0; mode_i < kNumPartitionModes; ++mode_i) {
        const auto mode = static_cast<PartitionMode>(mode_i);
        const PartitionGeometry& g = geometry(mode);
        for (int b = 0; b < g.num_blocks(); ++b) {
          int bx0, by0;
          block_origin(mode, b, &bx0, &by0);
          const int px0 = mb_x * kMbSize + bx0;
          const int py0 = mb_y * kMbSize + by0;
          const u8* cur_blk = cur.row(py0) + px0;

          MotionEntry& entry = mb.entry(mode, b);
          const Mv base = entry.mv;
          u32 best_cost = kInvalidCost;
          Mv best_mv = base;

          for (int dqy = -r; dqy <= r; ++dqy) {
            for (int dqx = -r; dqx <= r; ++dqx) {
              const int qx = base.x + dqx;
              const int qy = base.y + dqy;
              std::ptrdiff_t stride;
              const u8* ref_blk = subpel_ptr(sf, py0, px0, qy, qx, &stride);
              const u32 cost = sad_block(cur_blk, cur.stride(), ref_blk,
                                         stride, g.block_w, g.block_h);
              if (cost < best_cost) {
                best_cost = cost;
                best_mv = Mv{static_cast<i16>(qx), static_cast<i16>(qy)};
              }
            }
          }
          entry.mv = best_mv;
          entry.cost = best_cost;
        }
      }
    }
  }
}

}  // namespace feves
