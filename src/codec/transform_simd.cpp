// SSE2 tier of the 4x4 transform pair. One 4x4 block per call: load, two
// transpose+butterfly passes in registers, store. Compilable-on-x86 guard
// only; runtime selection is the registry's (codec/kernels.hpp).
//
// Exactness: the forward path stays in i16 (intermediates bounded by
// |2d + c| <= 7650 after both passes, see transform.hpp range note); the
// inverse works in i32 like the oracle and the final narrowing uses a
// sign-extend-of-low-16 sequence, matching the oracle's static_cast<i16>
// TRUNCATION — a plain saturating pack would differ on the extreme inputs
// the tier tests probe.
#include "codec/transform.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#define FEVES_CAN_SSE2 1
#include <emmintrin.h>
#endif

namespace feves {

#if FEVES_CAN_SSE2

namespace {

/// Transposes a 4x4 i16 tile held in the low 4 lanes of r0..r3.
inline void transpose4x4_lo_epi16(__m128i& r0, __m128i& r1, __m128i& r2,
                                  __m128i& r3) {
  const __m128i t01 = _mm_unpacklo_epi16(r0, r1);
  const __m128i t23 = _mm_unpacklo_epi16(r2, r3);
  const __m128i lo = _mm_unpacklo_epi32(t01, t23);
  const __m128i hi = _mm_unpackhi_epi32(t01, t23);
  r0 = lo;
  r1 = _mm_srli_si128(lo, 8);
  r2 = hi;
  r3 = _mm_srli_si128(hi, 8);
}

inline void transpose4x4_epi32(__m128i& r0, __m128i& r1, __m128i& r2,
                               __m128i& r3) {
  const __m128i t0 = _mm_unpacklo_epi32(r0, r1);
  const __m128i t1 = _mm_unpacklo_epi32(r2, r3);
  const __m128i t2 = _mm_unpackhi_epi32(r0, r1);
  const __m128i t3 = _mm_unpackhi_epi32(r2, r3);
  r0 = _mm_unpacklo_epi64(t0, t1);
  r1 = _mm_unpackhi_epi64(t0, t1);
  r2 = _mm_unpacklo_epi64(t2, t3);
  r3 = _mm_unpackhi_epi64(t2, t3);
}

/// Cf butterfly on i16 lanes: (s0..s3) -> (a+b, 2d+c, a-b, d-2c).
inline void fwd_butterfly_epi16(__m128i s0, __m128i s1, __m128i s2, __m128i s3,
                                __m128i& o0, __m128i& o1, __m128i& o2,
                                __m128i& o3) {
  const __m128i a = _mm_add_epi16(s0, s3);
  const __m128i b = _mm_add_epi16(s1, s2);
  const __m128i c = _mm_sub_epi16(s1, s2);
  const __m128i d = _mm_sub_epi16(s0, s3);
  o0 = _mm_add_epi16(a, b);
  o1 = _mm_add_epi16(_mm_slli_epi16(d, 1), c);
  o2 = _mm_sub_epi16(a, b);
  o3 = _mm_sub_epi16(d, _mm_slli_epi16(c, 1));
}

/// Inverse butterfly on i32 lanes: (s0..s3) -> (e0+e3, e1+e2, e1-e2, e0-e3).
inline void inv_butterfly_epi32(__m128i s0, __m128i s1, __m128i s2, __m128i s3,
                                __m128i& o0, __m128i& o1, __m128i& o2,
                                __m128i& o3) {
  const __m128i e0 = _mm_add_epi32(s0, s2);
  const __m128i e1 = _mm_sub_epi32(s0, s2);
  const __m128i e2 = _mm_sub_epi32(_mm_srai_epi32(s1, 1), s3);
  const __m128i e3 = _mm_add_epi32(s1, _mm_srai_epi32(s3, 1));
  o0 = _mm_add_epi32(e0, e3);
  o1 = _mm_add_epi32(e1, e2);
  o2 = _mm_sub_epi32(e1, e2);
  o3 = _mm_sub_epi32(e0, e3);
}

/// Truncating i32 -> i16 (keeps the low 16 bits, sign irrelevant after the
/// sign-extension round-trip), packing two vectors into 8 lanes.
inline __m128i trunc_pack_epi32(__m128i a, __m128i b) {
  a = _mm_srai_epi32(_mm_slli_epi32(a, 16), 16);
  b = _mm_srai_epi32(_mm_slli_epi32(b, 16), 16);
  return _mm_packs_epi32(a, b);  // lossless: inputs are in i16 range now
}

}  // namespace

void forward_transform_4x4_sse2(const i16 in[16], i16 out[16]) {
  __m128i r0 = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(in));
  __m128i r1 = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(in + 4));
  __m128i r2 = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(in + 8));
  __m128i r3 = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(in + 12));

  // Row pass: transpose so lane = row, vector = s0..s3.
  transpose4x4_lo_epi16(r0, r1, r2, r3);
  __m128i c0, c1, c2, c3;
  fwd_butterfly_epi16(r0, r1, r2, r3, c0, c1, c2, c3);
  // c0..c3 are tmp columns (lane = row); transpose back to tmp rows.
  transpose4x4_lo_epi16(c0, c1, c2, c3);
  __m128i f0, f1, f2, f3;
  fwd_butterfly_epi16(c0, c1, c2, c3, f0, f1, f2, f3);

  _mm_storeu_si128(reinterpret_cast<__m128i*>(out),
                   _mm_unpacklo_epi64(f0, f1));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 8),
                   _mm_unpacklo_epi64(f2, f3));
}

void inverse_transform_4x4_sse2(const i32 in[16], i16 out[16]) {
  __m128i r0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in));
  __m128i r1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 4));
  __m128i r2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 8));
  __m128i r3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 12));

  transpose4x4_epi32(r0, r1, r2, r3);
  __m128i c0, c1, c2, c3;
  inv_butterfly_epi32(r0, r1, r2, r3, c0, c1, c2, c3);
  transpose4x4_epi32(c0, c1, c2, c3);
  __m128i f0, f1, f2, f3;
  inv_butterfly_epi32(c0, c1, c2, c3, f0, f1, f2, f3);

  const __m128i k32 = _mm_set1_epi32(32);
  f0 = _mm_srai_epi32(_mm_add_epi32(f0, k32), 6);
  f1 = _mm_srai_epi32(_mm_add_epi32(f1, k32), 6);
  f2 = _mm_srai_epi32(_mm_add_epi32(f2, k32), 6);
  f3 = _mm_srai_epi32(_mm_add_epi32(f3, k32), 6);

  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), trunc_pack_epi32(f0, f1));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 8),
                   trunc_pack_epi32(f2, f3));
}

#else  // !FEVES_CAN_SSE2: link-satisfying forwards, never selected at runtime.

void forward_transform_4x4_sse2(const i16 in[16], i16 out[16]) {
  forward_transform_4x4(in, out);
}

void inverse_transform_4x4_sse2(const i32 in[16], i16 out[16]) {
  inverse_transform_4x4(in, out);
}

#endif

}  // namespace feves
