#include "codec/cavlc.hpp"

#include <algorithm>
#include <cstdlib>

namespace feves {

namespace {

/// Escape suffix width. The standard uses 12 bits; we widen to 16 so that
/// low-QP levels (up to ~3700 after quantization) always fit — the encoder
/// and decoder only need to agree with each other.
constexpr int kEscapeBits = 16;

void write_level(BitWriter& bw, int level_code, int suffix_length) {
  if (suffix_length == 0) {
    if (level_code < 14) {
      bw.put_bits(1, level_code + 1);  // level_code zeros then a 1
    } else if (level_code < 30) {
      bw.put_bits(1, 15);  // 14 zeros + 1
      bw.put_bits(static_cast<u32>(level_code - 14), 4);
    } else {
      bw.put_bits(1, 16);  // 15 zeros + 1
      bw.put_bits(static_cast<u32>(level_code - 30), kEscapeBits);
    }
  } else {
    const int prefix = level_code >> suffix_length;
    if (prefix < 15) {
      bw.put_bits(1, prefix + 1);
      bw.put_bits(static_cast<u32>(level_code) &
                      ((1u << suffix_length) - 1),
                  suffix_length);
    } else {
      bw.put_bits(1, 16);
      bw.put_bits(static_cast<u32>(level_code - (15 << suffix_length)),
                  kEscapeBits);
    }
  }
}

int read_level(BitReader& br, int suffix_length) {
  int prefix = 0;
  while (br.get_bit() == 0) ++prefix;
  if (suffix_length == 0) {
    if (prefix < 14) return prefix;
    if (prefix == 14) return 14 + static_cast<int>(br.get_bits(4));
    return 30 + static_cast<int>(br.get_bits(kEscapeBits));
  }
  if (prefix < 15) {
    return (prefix << suffix_length) +
           static_cast<int>(br.get_bits(suffix_length));
  }
  return (15 << suffix_length) + static_cast<int>(br.get_bits(kEscapeBits));
}

}  // namespace

int cavlc_encode_4x4(BitWriter& bw, const i16 levels[16]) {
  i16 scan[16];
  for (int i = 0; i < 16; ++i) scan[i] = levels[kZigZag4x4[i]];

  int last = -1;
  int total_coeff = 0;
  for (int i = 0; i < 16; ++i) {
    if (scan[i] != 0) {
      last = i;
      ++total_coeff;
    }
  }

  int trailing_ones = 0;
  {
    int i = last;
    while (i >= 0 && trailing_ones < 3) {
      if (scan[i] == 0) {
        --i;
        continue;
      }
      if (scan[i] == 1 || scan[i] == -1) {
        ++trailing_ones;
        --i;
      } else {
        break;
      }
    }
  }

  // Token: TotalCoeff then TrailingOnes (fixed 2 bits when present).
  bw.put_ue(static_cast<u32>(total_coeff));
  if (total_coeff == 0) return 0;
  bw.put_bits(static_cast<u32>(trailing_ones), 2);

  // Trailing-one sign flags, highest scan position first.
  int emitted_t1 = 0;
  for (int i = last; i >= 0 && emitted_t1 < trailing_ones; --i) {
    if (scan[i] == 0) continue;
    bw.put_bit(scan[i] < 0 ? 1 : 0);
    ++emitted_t1;
  }

  // Remaining levels, reverse scan order, adaptive suffixLength.
  int suffix_length = (total_coeff > 10 && trailing_ones < 3) ? 1 : 0;
  bool first = true;
  int skipped_t1 = 0;
  for (int i = last; i >= 0; --i) {
    if (scan[i] == 0) continue;
    if (skipped_t1 < trailing_ones) {
      ++skipped_t1;
      continue;
    }
    const int level = scan[i];
    int level_code = level > 0 ? 2 * level - 2 : -2 * level - 1;
    if (first && trailing_ones < 3) {
      // The first non-T1 level is known to have |level| >= 2 when three
      // trailing ones were not found; shift the code range down.
      level_code -= 2;
    }
    write_level(bw, level_code, suffix_length);
    if (suffix_length == 0) suffix_length = 1;
    if (std::abs(level) > (3 << (suffix_length - 1)) && suffix_length < 6) {
      ++suffix_length;
    }
    first = false;
  }

  // total_zeros: zeros interleaved below the highest coefficient.
  const int total_zeros = last + 1 - total_coeff;
  if (total_coeff < 16) bw.put_ue(static_cast<u32>(total_zeros));

  // run_before for every coefficient except the lowest, reverse order.
  int zeros_left = total_zeros;
  int coeffs_done = 0;
  for (int i = last; i >= 0 && coeffs_done < total_coeff - 1; --i) {
    if (scan[i] == 0) continue;
    // Count zeros immediately below scan position i down to the next coeff.
    int run = 0;
    for (int j = i - 1; j >= 0 && scan[j] == 0; --j) ++run;
    if (zeros_left > 0) bw.put_ue(static_cast<u32>(run));
    zeros_left -= run;
    ++coeffs_done;
  }
  return total_coeff;
}

int cavlc_decode_4x4(BitReader& br, i16 levels[16]) {
  i16 scan[16] = {};
  const int total_coeff = static_cast<int>(br.get_ue());
  FEVES_CHECK_MSG(total_coeff <= 16, "corrupt CAVLC: TotalCoeff > 16");
  if (total_coeff == 0) {
    for (int i = 0; i < 16; ++i) levels[i] = 0;
    return 0;
  }
  const int trailing_ones = static_cast<int>(br.get_bits(2));
  FEVES_CHECK_MSG(trailing_ones <= std::min(3, total_coeff),
                  "corrupt CAVLC: TrailingOnes " << trailing_ones);

  // Levels in reverse scan order (index 0 = highest scan position).
  i16 rev[16] = {};
  for (int k = 0; k < trailing_ones; ++k) {
    rev[k] = br.get_bit() != 0 ? i16{-1} : i16{1};
  }
  int suffix_length = (total_coeff > 10 && trailing_ones < 3) ? 1 : 0;
  bool first = true;
  for (int k = trailing_ones; k < total_coeff; ++k) {
    int level_code = read_level(br, suffix_length);
    if (first && trailing_ones < 3) level_code += 2;
    const int level = (level_code % 2 == 0) ? (level_code + 2) / 2
                                            : -(level_code + 1) / 2;
    rev[k] = static_cast<i16>(level);
    if (suffix_length == 0) suffix_length = 1;
    if (std::abs(level) > (3 << (suffix_length - 1)) && suffix_length < 6) {
      ++suffix_length;
    }
    first = false;
  }

  const int total_zeros =
      total_coeff < 16 ? static_cast<int>(br.get_ue()) : 0;
  FEVES_CHECK_MSG(total_coeff + total_zeros <= 16,
                  "corrupt CAVLC: zeros overflow");

  // Place coefficients from the top of the scan downwards.
  int idx = total_coeff + total_zeros - 1;
  int zeros_left = total_zeros;
  for (int k = 0; k < total_coeff; ++k) {
    FEVES_CHECK_MSG(idx >= 0, "corrupt CAVLC: scan underflow");
    scan[idx] = rev[k];
    if (k < total_coeff - 1) {
      int run = 0;
      if (zeros_left > 0) {
        run = static_cast<int>(br.get_ue());
        FEVES_CHECK_MSG(run <= zeros_left, "corrupt CAVLC: run_before");
      }
      zeros_left -= run;
      idx -= 1 + run;
    }
  }

  for (int i = 0; i < 16; ++i) levels[kZigZag4x4[i]] = scan[i];
  return total_coeff;
}

}  // namespace feves
