#include "codec/kernels.hpp"

#include "common/cpu_features.hpp"
#include "common/log.hpp"

#include <atomic>

namespace feves {

namespace {

/// Per-kernel ceiling on the explicit-intrinsics ladder. AVX2 pays on the
/// wide streaming kernels (SAD over 16-byte rows, interpolation row taps);
/// the 4x4 transform, the masked deblocking filters and the <=16-wide MC
/// rows are 128-bit shaped, so their best tier is SSE2.
SimdTier kernel_ceiling(KernelId id) {
  switch (id) {
    case KernelId::kSadGrid:
    case KernelId::kSadBlock:
    case KernelId::kInterp:
      return SimdTier::kAvx2;
    case KernelId::kTransform:
    case KernelId::kDeblock:
    case KernelId::kMc:
      return SimdTier::kSse2;
    case KernelId::kCount:
      break;
  }
  return SimdTier::kScalar;
}

/// Best tier the CPU itself supports.
SimdTier cpu_ceiling() {
  const CpuFeatures& f = cpu_features();
  if (f.avx2) return SimdTier::kAvx2;
  if (f.sse2) return SimdTier::kSse2;
  return SimdTier::kBlocked;
}

SimdTier min_tier(SimdTier a, SimdTier b) {
  return static_cast<int>(a) < static_cast<int>(b) ? a : b;
}

/// Logs an explicit-request degrade once per (kernel, requested) pair — a
/// caller that pinned kAvx2 and silently ran kBlocked is exactly the bug
/// this registry exists to make visible.
void note_degrade(KernelId id, SimdTier requested, SimdTier resolved) {
  static std::atomic<bool> logged[static_cast<int>(KernelId::kCount)]
                                 [static_cast<int>(SimdTier::kAuto)];
  std::atomic<bool>& flag =
      logged[static_cast<int>(id)][static_cast<int>(requested)];
  if (!flag.exchange(true, std::memory_order_relaxed)) {
    FEVES_WARN("kernels", kernel_name(id) << ": requested tier "
                                          << tier_name(requested)
                                          << " unavailable, running "
                                          << tier_name(resolved));
  }
}

}  // namespace

const char* kernel_name(KernelId id) {
  switch (id) {
    case KernelId::kSadGrid:
      return "sad_grid";
    case KernelId::kSadBlock:
      return "sad_block";
    case KernelId::kInterp:
      return "interp";
    case KernelId::kTransform:
      return "transform";
    case KernelId::kDeblock:
      return "deblock";
    case KernelId::kMc:
      return "mc";
    case KernelId::kCount:
      break;
  }
  return "?";
}

const char* tier_name(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return "scalar";
    case SimdTier::kBlocked:
      return "blocked";
    case SimdTier::kSse2:
      return "sse2";
    case SimdTier::kAvx2:
      return "avx2";
    case SimdTier::kAuto:
      return "auto";
  }
  return "?";
}

SimdTier max_tier(KernelId id) {
  return min_tier(kernel_ceiling(id), cpu_ceiling());
}

SimdTier resolve_tier(KernelId id, SimdTier requested) {
  if (requested == SimdTier::kAuto) return max_tier(id);
  if (requested == SimdTier::kScalar || requested == SimdTier::kBlocked) {
    return requested;
  }
  const SimdTier resolved = min_tier(requested, max_tier(id));
  if (resolved != requested) note_degrade(id, requested, resolved);
  return resolved;
}

bool simd_tier_available() { return cpu_features().sse2; }

std::vector<KernelTierChoice> kernel_tier_report(SimdTier requested) {
  std::vector<KernelTierChoice> report;
  report.reserve(static_cast<std::size_t>(KernelId::kCount));
  for (int k = 0; k < static_cast<int>(KernelId::kCount); ++k) {
    const KernelId id = static_cast<KernelId>(k);
    report.push_back({id, requested, resolve_tier(id, requested)});
  }
  return report;
}

}  // namespace feves
