// Sub-pixel motion estimation (the paper's SME module). Refines the
// integer-pel MV of every partition block (all 41 per MB) to quarter-pel
// precision by probing the SF phase planes around the ME result, using the
// MVs from ME as the initial search point (the inter-module data dependency
// the paper's τ1 synchronization protects).
#pragma once

#include "codec/me.hpp"
#include "video/frame.hpp"

namespace feves {

struct SmeParams {
  /// Quarter-pel probe radius around the ME vector (candidates are all
  /// (dqx,dqy) in [-r, r]^2, so r=2 covers the half-pel ring plus the
  /// nearest quarter-pel ring).
  int refine_range = 2;
};

/// Refines MB rows [row_begin, row_end) of `field` in place. `sf` must be
/// fully assembled with extended borders (collaborative mode gathers the
/// interpolated pieces first — the SF(RF)→SME transfers of Fig 4).
void run_sme_rows(const PlaneU8& cur, const SubPelFrame& sf, int mb_width,
                  int row_begin, int row_end, const SmeParams& params,
                  MbMotion* field);

}  // namespace feves
