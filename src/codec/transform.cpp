#include "codec/transform.hpp"

#include "common/check.hpp"

namespace feves {

namespace {

/// Position class of coefficient (i,j): 0 for both-even, 1 for both-odd,
/// 2 otherwise — the three distinct entries of the H.264 scaling matrices.
inline int pos_class(int i, int j) {
  const bool ei = (i & 1) == 0;
  const bool ej = (j & 1) == 0;
  return ei && ej ? 0 : (!ei && !ej ? 1 : 2);
}

/// Quantization multipliers MF[QP%6][class].
constexpr i32 kMF[6][3] = {
    {13107, 5243, 8066}, {11916, 4660, 7490}, {10082, 4194, 6554},
    {9362, 3647, 5825},  {8192, 3355, 5243},  {7282, 2893, 4559},
};

/// Dequantization scales V[QP%6][class].
constexpr i32 kV[6][3] = {
    {10, 16, 13}, {11, 18, 14}, {13, 20, 16},
    {14, 23, 18}, {16, 25, 20}, {18, 29, 23},
};

}  // namespace

void forward_transform_4x4(const i16 in[16], i16 out[16]) {
  i32 tmp[16];
  // Rows: Cf * X
  for (int i = 0; i < 4; ++i) {
    const i32 s0 = in[i * 4 + 0];
    const i32 s1 = in[i * 4 + 1];
    const i32 s2 = in[i * 4 + 2];
    const i32 s3 = in[i * 4 + 3];
    const i32 a = s0 + s3;
    const i32 b = s1 + s2;
    const i32 c = s1 - s2;
    const i32 d = s0 - s3;
    tmp[i * 4 + 0] = a + b;
    tmp[i * 4 + 1] = 2 * d + c;
    tmp[i * 4 + 2] = a - b;
    tmp[i * 4 + 3] = d - 2 * c;
  }
  // Columns: (Cf * X) * Cf^T
  for (int j = 0; j < 4; ++j) {
    const i32 s0 = tmp[0 * 4 + j];
    const i32 s1 = tmp[1 * 4 + j];
    const i32 s2 = tmp[2 * 4 + j];
    const i32 s3 = tmp[3 * 4 + j];
    const i32 a = s0 + s3;
    const i32 b = s1 + s2;
    const i32 c = s1 - s2;
    const i32 d = s0 - s3;
    out[0 * 4 + j] = static_cast<i16>(a + b);
    out[1 * 4 + j] = static_cast<i16>(2 * d + c);
    out[2 * 4 + j] = static_cast<i16>(a - b);
    out[3 * 4 + j] = static_cast<i16>(d - 2 * c);
  }
}

// Implemented in transform_simd.cpp; forwarding stubs on non-x86 targets
// (always link, never the resolved tier there).
void forward_transform_4x4_sse2(const i16 in[16], i16 out[16]);
void inverse_transform_4x4_sse2(const i32 in[16], i16 out[16]);

Fwd4x4Fn forward_transform_4x4_kernel(SimdTier tier, SimdTier* resolved) {
  const SimdTier got = resolve_tier(KernelId::kTransform, tier);
  if (resolved != nullptr) *resolved = got;
  switch (got) {
    case SimdTier::kSse2:
    case SimdTier::kAvx2:  // ceiling is kSse2; unreachable, but total
      return &forward_transform_4x4_sse2;
    default:
      return &forward_transform_4x4;
  }
}

Inv4x4Fn inverse_transform_4x4_kernel(SimdTier tier, SimdTier* resolved) {
  const SimdTier got = resolve_tier(KernelId::kTransform, tier);
  if (resolved != nullptr) *resolved = got;
  switch (got) {
    case SimdTier::kSse2:
    case SimdTier::kAvx2:
      return &inverse_transform_4x4_sse2;
    default:
      return &inverse_transform_4x4;
  }
}

void quantize_4x4(const i16 coeffs[16], int qp, bool intra, i16 levels[16]) {
  FEVES_CHECK(qp >= 0 && qp <= 51);
  const int qbits = 15 + qp / 6;
  const i32 f = intra ? (i32{1} << qbits) / 3 : (i32{1} << qbits) / 6;
  const int rem = qp % 6;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      const i32 w = coeffs[i * 4 + j];
      const i32 mf = kMF[rem][pos_class(i, j)];
      const i32 mag =
          static_cast<i32>((static_cast<i64>(w < 0 ? -w : w) * mf + f) >> qbits);
      levels[i * 4 + j] = static_cast<i16>(w < 0 ? -mag : mag);
    }
  }
}

void dequantize_4x4(const i16 levels[16], int qp, i32 coeffs[16]) {
  FEVES_CHECK(qp >= 0 && qp <= 51);
  const int shift = qp / 6;
  const int rem = qp % 6;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      const i32 v = kV[rem][pos_class(i, j)];
      coeffs[i * 4 + j] = (levels[i * 4 + j] * v) << shift;
    }
  }
}

void inverse_transform_4x4(const i32 in[16], i16 out[16]) {
  i32 tmp[16];
  // Rows.
  for (int i = 0; i < 4; ++i) {
    const i32 s0 = in[i * 4 + 0];
    const i32 s1 = in[i * 4 + 1];
    const i32 s2 = in[i * 4 + 2];
    const i32 s3 = in[i * 4 + 3];
    const i32 e0 = s0 + s2;
    const i32 e1 = s0 - s2;
    const i32 e2 = (s1 >> 1) - s3;
    const i32 e3 = s1 + (s3 >> 1);
    tmp[i * 4 + 0] = e0 + e3;
    tmp[i * 4 + 1] = e1 + e2;
    tmp[i * 4 + 2] = e1 - e2;
    tmp[i * 4 + 3] = e0 - e3;
  }
  // Columns, with final rounding.
  for (int j = 0; j < 4; ++j) {
    const i32 s0 = tmp[0 * 4 + j];
    const i32 s1 = tmp[1 * 4 + j];
    const i32 s2 = tmp[2 * 4 + j];
    const i32 s3 = tmp[3 * 4 + j];
    const i32 e0 = s0 + s2;
    const i32 e1 = s0 - s2;
    const i32 e2 = (s1 >> 1) - s3;
    const i32 e3 = s1 + (s3 >> 1);
    out[0 * 4 + j] = static_cast<i16>((e0 + e3 + 32) >> 6);
    out[1 * 4 + j] = static_cast<i16>((e1 + e2 + 32) >> 6);
    out[2 * 4 + j] = static_cast<i16>((e1 - e2 + 32) >> 6);
    out[3 * 4 + j] = static_cast<i16>((e0 - e3 + 32) >> 6);
  }
}

bool any_nonzero(const i16 levels[16]) {
  for (int i = 0; i < 16; ++i) {
    if (levels[i] != 0) return true;
  }
  return false;
}

}  // namespace feves
