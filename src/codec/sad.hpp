// Sum-of-absolute-differences kernels — the inner loop of full-search
// block-matching ME. Mirrors the paper's multi-tier Parallel Modules library
// (Sec. III-B1: per-microarchitecture SSE4.2/AVX/AVX2 variants) with a
// runtime-dispatched kernel table: a scalar reference tier, a blocked tier
// written so the compiler's auto-vectorizer emits SIMD, and explicit
// SSE2/AVX2 tiers selected through the kernel registry's CPUID resolution
// (codec/kernels.hpp). Tests pin the tiers against each other.
#pragma once

#include "common/types.hpp"
#include "codec/kernels.hpp"
#include "codec/partition.hpp"

#include <cstddef>

namespace feves {

/// Computes the 16 SADs of the 4x4 sub-blocks of one 16x16 macroblock
/// against a candidate at the same geometry. `out[by*4+bx]` is the SAD of
/// sub-block (bx,by). Strides are in elements.
using SadGrid16Fn = void (*)(const u8* cur, std::ptrdiff_t cur_stride,
                             const u8* ref, std::ptrdiff_t ref_stride,
                             u16 out[16]);

/// Returns the grid kernel for `tier` (kAuto picks the fastest available).
/// When `resolved` is non-null it receives what the request resolved to —
/// the tier a caller actually got, never silently degraded (satellite of
/// the registry: `resolve_tier` also logs explicit-request degrades once).
SadGrid16Fn sad_grid_16x16_kernel(SimdTier tier,
                                  SimdTier* resolved = nullptr);

/// Generic rectangular SAD, tier-dispatched like the grid kernel. Handles
/// every width (16/8-wide vector chunks plus a scalar tail), so all SME
/// partition shapes (4..16 wide) are covered by one entry point.
using SadBlockFn = u32 (*)(const u8* a, std::ptrdiff_t stride_a, const u8* b,
                           std::ptrdiff_t stride_b, int width, int height);
SadBlockFn sad_block_kernel(SimdTier tier, SimdTier* resolved = nullptr);

/// Convenience wrapper: the kAuto-resolved rectangular SAD (used by SME).
u32 sad_block(const u8* a, std::ptrdiff_t stride_a, const u8* b,
              std::ptrdiff_t stride_b, int width, int height);

/// Reference scalar rectangular SAD (the oracle the tests pin against).
u32 sad_block_scalar(const u8* a, std::ptrdiff_t stride_a, const u8* b,
                     std::ptrdiff_t stride_b, int width, int height);

/// Aggregates the 16 4x4 SADs of a macroblock into the SAD of every
/// partition block of every mode — 41 values laid out per kModeOffset.
/// This is the classic FSBM trick: one pass over the pixels serves all 7
/// partition modes (paper Sec. II).
void aggregate_sad_grid(const u16 grid[16], u32 out[kEntriesPerMb]);

}  // namespace feves
