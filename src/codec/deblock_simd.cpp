// SSE2 tier of the deblocking edge kernels (see deblock_edge.hpp for the
// vectorization contract). The scalar filter's branches become per-lane
// masks; all arithmetic fits i16:
//   delta numerator (q0-p0)*4 + (p1-q1) + 4 in [-1271, 1279],
//   strong-filter sums <= 8*255 + 4 = 2044,
// and every stored sample is provably in [0, 255] except p0'/q0' of the
// normal path, whose saturating u8 pack coincides with the scalar clip255.
#include "codec/deblock_edge.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#define FEVES_CAN_SSE2 1
#include <emmintrin.h>
#endif

namespace feves::detail {

#if FEVES_CAN_SSE2

namespace {

inline __m128i loadu(const void* p) {
  return _mm_loadu_si128(static_cast<const __m128i*>(p));
}

inline void storeu(void* p, __m128i v) {
  _mm_storeu_si128(static_cast<__m128i*>(p), v);
}

/// |a - b| for lanes holding u8-range values.
inline __m128i absd16(__m128i a, __m128i b) {
  return _mm_max_epi16(_mm_sub_epi16(a, b), _mm_sub_epi16(b, a));
}

/// mask ? a : b, mask lanes all-ones or all-zeros.
inline __m128i sel(__m128i mask, __m128i a, __m128i b) {
  return _mm_or_si128(_mm_and_si128(mask, a), _mm_andnot_si128(mask, b));
}

inline __m128i clamp16(__m128i v, __m128i lo, __m128i hi) {
  return _mm_max_epi16(_mm_min_epi16(v, hi), lo);
}

struct HedgeHalf {
  __m128i p2, p1, p0, q0, q1, q2;
};

/// Eight columns of the luma horizontal-edge filter in i16 lanes. Mirrors
/// filter_line exactly; lanes that scalar would not write resolve to their
/// original sample through the masks.
inline HedgeHalf hedge_luma_half(__m128i p3, __m128i p2, __m128i p1,
                                 __m128i p0, __m128i q0, __m128i q1,
                                 __m128i q2, __m128i q3, __m128i bs,
                                 __m128i tc0, __m128i valpha, __m128i vbeta,
                                 __m128i vthr) {
  const __m128i zero = _mm_setzero_si128();
  const __m128i one = _mm_set1_epi16(1);
  const __m128i two = _mm_set1_epi16(2);
  const __m128i four = _mm_set1_epi16(4);

  const __m128i d_pq = absd16(p0, q0);
  const __m128i filt = _mm_and_si128(
      _mm_cmplt_epi16(d_pq, valpha),
      _mm_and_si128(_mm_cmplt_epi16(absd16(p1, p0), vbeta),
                    _mm_cmplt_epi16(absd16(q1, q0), vbeta)));
  const __m128i active = _mm_andnot_si128(_mm_cmpeq_epi16(bs, zero), filt);
  const __m128i ap = _mm_cmplt_epi16(absd16(p2, p0), vbeta);
  const __m128i aq = _mm_cmplt_epi16(absd16(q2, q0), vbeta);
  const __m128i is4 = _mm_cmpeq_epi16(bs, four);

  // Normal path (bS < 4). Mask lanes are 0/-1, so tc0 - (ap + aq) adds one
  // per satisfied side condition.
  const __m128i tc = _mm_sub_epi16(tc0, _mm_add_epi16(ap, aq));
  const __m128i num = _mm_add_epi16(
      _mm_slli_epi16(_mm_sub_epi16(q0, p0), 2),
      _mm_add_epi16(_mm_sub_epi16(p1, q1), four));
  const __m128i delta =
      clamp16(_mm_srai_epi16(num, 3), _mm_sub_epi16(zero, tc), tc);
  const __m128i p0n = _mm_add_epi16(p0, delta);
  const __m128i q0n = _mm_sub_epi16(q0, delta);
  const __m128i avgpq =
      _mm_srai_epi16(_mm_add_epi16(_mm_add_epi16(p0, q0), one), 1);
  const __m128i ntc0 = _mm_sub_epi16(zero, tc0);
  const __m128i dp1 = clamp16(
      _mm_srai_epi16(_mm_sub_epi16(_mm_add_epi16(p2, avgpq),
                                   _mm_slli_epi16(p1, 1)),
                     1),
      ntc0, tc0);
  const __m128i p1n = _mm_add_epi16(p1, dp1);
  const __m128i dq1 = clamp16(
      _mm_srai_epi16(_mm_sub_epi16(_mm_add_epi16(q2, avgpq),
                                   _mm_slli_epi16(q1, 1)),
                     1),
      ntc0, tc0);
  const __m128i q1n = _mm_add_epi16(q1, dq1);

  // Strong path (bS == 4).
  const __m128i strong = _mm_cmplt_epi16(d_pq, vthr);
  const __m128i sp = _mm_and_si128(strong, ap);
  const __m128i sq = _mm_and_si128(strong, aq);
  const __m128i p0q0 = _mm_add_epi16(p0, q0);
  const __m128i p0s = _mm_srai_epi16(
      _mm_add_epi16(_mm_slli_epi16(_mm_add_epi16(p1, p0q0), 1),
                    _mm_add_epi16(p2, _mm_add_epi16(q1, four))),
      3);
  const __m128i p1s = _mm_srai_epi16(
      _mm_add_epi16(_mm_add_epi16(p2, p1), _mm_add_epi16(p0q0, two)), 2);
  const __m128i p2s = _mm_srai_epi16(
      _mm_add_epi16(
          _mm_add_epi16(_mm_slli_epi16(p3, 1),
                        _mm_add_epi16(_mm_slli_epi16(p2, 1), p2)),
          _mm_add_epi16(_mm_add_epi16(p1, p0q0), four)),
      3);
  const __m128i p0w = _mm_srai_epi16(
      _mm_add_epi16(_mm_slli_epi16(p1, 1),
                    _mm_add_epi16(p0, _mm_add_epi16(q1, two))),
      2);
  const __m128i q0s = _mm_srai_epi16(
      _mm_add_epi16(_mm_slli_epi16(_mm_add_epi16(q1, p0q0), 1),
                    _mm_add_epi16(q2, _mm_add_epi16(p1, four))),
      3);
  const __m128i q1s = _mm_srai_epi16(
      _mm_add_epi16(_mm_add_epi16(q2, q1), _mm_add_epi16(p0q0, two)), 2);
  const __m128i q2s = _mm_srai_epi16(
      _mm_add_epi16(
          _mm_add_epi16(_mm_slli_epi16(q3, 1),
                        _mm_add_epi16(_mm_slli_epi16(q2, 1), q2)),
          _mm_add_epi16(_mm_add_epi16(q1, p0q0), four)),
      3);
  const __m128i q0w = _mm_srai_epi16(
      _mm_add_epi16(_mm_slli_epi16(q1, 1),
                    _mm_add_epi16(q0, _mm_add_epi16(p1, two))),
      2);

  HedgeHalf out;
  out.p0 = sel(active, sel(is4, sel(sp, p0s, p0w), p0n), p0);
  out.q0 = sel(active, sel(is4, sel(sq, q0s, q0w), q0n), q0);
  const __m128i p1w = _mm_and_si128(
      active, sel(is4, sp, ap));
  out.p1 = sel(p1w, sel(is4, p1s, p1n), p1);
  const __m128i q1w = _mm_and_si128(
      active, sel(is4, sq, aq));
  out.q1 = sel(q1w, sel(is4, q1s, q1n), q1);
  out.p2 = sel(_mm_and_si128(active, _mm_and_si128(is4, sp)), p2s, p2);
  out.q2 = sel(_mm_and_si128(active, _mm_and_si128(is4, sq)), q2s, q2);
  return out;
}

}  // namespace

void filter_hedge_luma_simd(u8* q0row, std::ptrdiff_t stride,
                            const i16 bs_lanes[16], const i16 tc0_lanes[16],
                            int alpha, int beta) {
  const __m128i zero = _mm_setzero_si128();
  const __m128i raw_p3 = loadu(q0row - 4 * stride);
  const __m128i raw_p2 = loadu(q0row - 3 * stride);
  const __m128i raw_p1 = loadu(q0row - 2 * stride);
  const __m128i raw_p0 = loadu(q0row - 1 * stride);
  const __m128i raw_q0 = loadu(q0row);
  const __m128i raw_q1 = loadu(q0row + 1 * stride);
  const __m128i raw_q2 = loadu(q0row + 2 * stride);
  const __m128i raw_q3 = loadu(q0row + 3 * stride);
  const __m128i valpha = _mm_set1_epi16(static_cast<short>(alpha));
  const __m128i vbeta = _mm_set1_epi16(static_cast<short>(beta));
  const __m128i vthr = _mm_set1_epi16(static_cast<short>((alpha >> 2) + 2));

  const HedgeHalf lo = hedge_luma_half(
      _mm_unpacklo_epi8(raw_p3, zero), _mm_unpacklo_epi8(raw_p2, zero),
      _mm_unpacklo_epi8(raw_p1, zero), _mm_unpacklo_epi8(raw_p0, zero),
      _mm_unpacklo_epi8(raw_q0, zero), _mm_unpacklo_epi8(raw_q1, zero),
      _mm_unpacklo_epi8(raw_q2, zero), _mm_unpacklo_epi8(raw_q3, zero),
      loadu(bs_lanes), loadu(tc0_lanes), valpha, vbeta, vthr);
  const HedgeHalf hi = hedge_luma_half(
      _mm_unpackhi_epi8(raw_p3, zero), _mm_unpackhi_epi8(raw_p2, zero),
      _mm_unpackhi_epi8(raw_p1, zero), _mm_unpackhi_epi8(raw_p0, zero),
      _mm_unpackhi_epi8(raw_q0, zero), _mm_unpackhi_epi8(raw_q1, zero),
      _mm_unpackhi_epi8(raw_q2, zero), _mm_unpackhi_epi8(raw_q3, zero),
      loadu(bs_lanes + 8), loadu(tc0_lanes + 8), valpha, vbeta, vthr);

  storeu(q0row - 3 * stride, _mm_packus_epi16(lo.p2, hi.p2));
  storeu(q0row - 2 * stride, _mm_packus_epi16(lo.p1, hi.p1));
  storeu(q0row - 1 * stride, _mm_packus_epi16(lo.p0, hi.p0));
  storeu(q0row, _mm_packus_epi16(lo.q0, hi.q0));
  storeu(q0row + 1 * stride, _mm_packus_epi16(lo.q1, hi.q1));
  storeu(q0row + 2 * stride, _mm_packus_epi16(lo.q2, hi.q2));
}

void filter_hedge_chroma_simd(u8* q0row, std::ptrdiff_t stride,
                              const i16 bs_lanes[8], const i16 tc0_lanes[8],
                              int alpha, int beta) {
  const __m128i zero = _mm_setzero_si128();
  const __m128i one = _mm_set1_epi16(1);
  const __m128i two = _mm_set1_epi16(2);
  const __m128i four = _mm_set1_epi16(4);
  const __m128i p1 = _mm_unpacklo_epi8(
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(q0row - 2 * stride)),
      zero);
  const __m128i p0 = _mm_unpacklo_epi8(
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(q0row - 1 * stride)),
      zero);
  const __m128i q0 = _mm_unpacklo_epi8(
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(q0row)), zero);
  const __m128i q1 = _mm_unpacklo_epi8(
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(q0row + 1 * stride)),
      zero);
  const __m128i bs = loadu(bs_lanes);
  const __m128i tc0 = loadu(tc0_lanes);
  const __m128i valpha = _mm_set1_epi16(static_cast<short>(alpha));
  const __m128i vbeta = _mm_set1_epi16(static_cast<short>(beta));

  const __m128i filt = _mm_and_si128(
      _mm_cmplt_epi16(absd16(p0, q0), valpha),
      _mm_and_si128(_mm_cmplt_epi16(absd16(p1, p0), vbeta),
                    _mm_cmplt_epi16(absd16(q1, q0), vbeta)));
  const __m128i active = _mm_andnot_si128(_mm_cmpeq_epi16(bs, zero), filt);
  const __m128i is4 = _mm_cmpeq_epi16(bs, four);

  const __m128i tc = _mm_add_epi16(tc0, one);
  const __m128i num = _mm_add_epi16(
      _mm_slli_epi16(_mm_sub_epi16(q0, p0), 2),
      _mm_add_epi16(_mm_sub_epi16(p1, q1), four));
  const __m128i delta =
      clamp16(_mm_srai_epi16(num, 3), _mm_sub_epi16(zero, tc), tc);
  const __m128i p0n = _mm_add_epi16(p0, delta);
  const __m128i q0n = _mm_sub_epi16(q0, delta);

  const __m128i p0c = _mm_srai_epi16(
      _mm_add_epi16(_mm_slli_epi16(p1, 1),
                    _mm_add_epi16(p0, _mm_add_epi16(q1, two))),
      2);
  const __m128i q0c = _mm_srai_epi16(
      _mm_add_epi16(_mm_slli_epi16(q1, 1),
                    _mm_add_epi16(q0, _mm_add_epi16(p1, two))),
      2);

  const __m128i p0o = sel(active, sel(is4, p0c, p0n), p0);
  const __m128i q0o = sel(active, sel(is4, q0c, q0n), q0);
  _mm_storel_epi64(reinterpret_cast<__m128i*>(q0row - 1 * stride),
                   _mm_packus_epi16(p0o, p0o));
  _mm_storel_epi64(reinterpret_cast<__m128i*>(q0row),
                   _mm_packus_epi16(q0o, q0o));
}

#else  // !FEVES_CAN_SSE2: scalar forwards, never the resolved tier there.

void filter_hedge_luma_simd(u8* q0row, std::ptrdiff_t stride,
                            const i16 bs_lanes[16], const i16 tc0_lanes[16],
                            int alpha, int beta) {
  for (int k = 0; k < 16; ++k) {
    if (bs_lanes[k] == 0) continue;
    filter_line(q0row + k, stride, bs_lanes[k], alpha, beta, tc0_lanes[k]);
  }
}

void filter_hedge_chroma_simd(u8* q0row, std::ptrdiff_t stride,
                              const i16 bs_lanes[8], const i16 tc0_lanes[8],
                              int alpha, int beta) {
  for (int k = 0; k < 8; ++k) {
    if (bs_lanes[k] == 0) continue;
    filter_chroma_line(q0row + k, stride, bs_lanes[k], alpha, beta,
                       tc0_lanes[k]);
  }
}

#endif

}  // namespace feves::detail
