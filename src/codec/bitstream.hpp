// Bit-exact bitstream writer/reader with Exp-Golomb codes (ue(v)/se(v)),
// the substrate for the entropy-coding stage of Fig 1. MSB-first bit order,
// byte-aligned RBSP-style trailing.
#pragma once

#include "common/check.hpp"
#include "common/types.hpp"

#include <vector>

namespace feves {

class BitWriter {
 public:
  void put_bit(int bit) {
    acc_ = (acc_ << 1) | static_cast<u8>(bit & 1);
    if (++nbits_ == 8) flush_byte();
  }

  void put_bits(u32 value, int count) {
    FEVES_CHECK(count >= 0 && count <= 32);
    for (int i = count - 1; i >= 0; --i) put_bit(static_cast<int>(value >> i));
  }

  /// Exp-Golomb unsigned: ue(v).
  void put_ue(u32 v) {
    const u64 code = static_cast<u64>(v) + 1;
    int len = 0;
    for (u64 t = code; t > 1; t >>= 1) ++len;
    for (int i = 0; i < len; ++i) put_bit(0);
    for (int i = len; i >= 0; --i) put_bit(static_cast<int>(code >> i) & 1);
  }

  /// Exp-Golomb signed: se(v) with the standard mapping.
  void put_se(i32 v) {
    const u32 mapped =
        v <= 0 ? static_cast<u32>(-2 * static_cast<i64>(v))
               : static_cast<u32>(2 * static_cast<i64>(v) - 1);
    put_ue(mapped);
  }

  /// Pads to a byte boundary with a stop bit followed by zeros.
  void finish() {
    if (nbits_ == 0) return;
    put_bit(1);
    while (nbits_ != 0) put_bit(0);
  }

  std::size_t bit_count() const { return bytes_.size() * 8 + nbits_; }
  const std::vector<u8>& bytes() const { return bytes_; }
  std::vector<u8> take() { return std::move(bytes_); }

 private:
  void flush_byte() {
    bytes_.push_back(acc_);
    acc_ = 0;
    nbits_ = 0;
  }

  std::vector<u8> bytes_;
  u8 acc_ = 0;
  int nbits_ = 0;
};

class BitReader {
 public:
  explicit BitReader(const std::vector<u8>& bytes) : bytes_(bytes) {}

  int get_bit() {
    FEVES_CHECK_MSG(pos_ < bytes_.size() * 8, "bitstream exhausted");
    const u8 byte = bytes_[pos_ / 8];
    const int bit = (byte >> (7 - pos_ % 8)) & 1;
    ++pos_;
    return bit;
  }

  u32 get_bits(int count) {
    FEVES_CHECK(count >= 0 && count <= 32);
    u32 v = 0;
    for (int i = 0; i < count; ++i) v = (v << 1) | static_cast<u32>(get_bit());
    return v;
  }

  u32 get_ue() {
    int zeros = 0;
    while (get_bit() == 0) {
      ++zeros;
      FEVES_CHECK_MSG(zeros <= 32, "malformed Exp-Golomb code");
    }
    u64 code = 1;
    for (int i = 0; i < zeros; ++i) code = (code << 1) | static_cast<u64>(get_bit());
    return static_cast<u32>(code - 1);
  }

  i32 get_se() {
    const u32 mapped = get_ue();
    const i64 v = (mapped + 1) / 2;
    return static_cast<i32>((mapped & 1) != 0 ? v : -v);
  }

  std::size_t bit_position() const { return pos_; }
  bool exhausted() const { return pos_ >= bytes_.size() * 8; }

 private:
  const std::vector<u8>& bytes_;
  std::size_t pos_ = 0;
};

}  // namespace feves
