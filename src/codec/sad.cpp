#include "codec/sad.hpp"

#include <cstdlib>

namespace feves {

namespace {

inline int abs_diff(u8 a, u8 b) {
  return a > b ? a - b : b - a;
}

/// Reference tier: literal triple loop per 4x4 sub-block.
void sad_grid_scalar(const u8* cur, std::ptrdiff_t cur_stride, const u8* ref,
                     std::ptrdiff_t ref_stride, u16 out[16]) {
  for (int by = 0; by < 4; ++by) {
    for (int bx = 0; bx < 4; ++bx) {
      u32 acc = 0;
      for (int y = 0; y < 4; ++y) {
        const u8* c = cur + (by * 4 + y) * cur_stride + bx * 4;
        const u8* r = ref + (by * 4 + y) * ref_stride + bx * 4;
        for (int x = 0; x < 4; ++x) acc += static_cast<u32>(abs_diff(c[x], r[x]));
      }
      out[by * 4 + bx] = static_cast<u16>(acc);
    }
  }
}

/// Blocked tier: walks each 16-wide pixel row once and accumulates into the
/// four horizontally adjacent sub-block bins. The fixed-trip-count inner
/// loop over 16 contiguous bytes auto-vectorizes (PSADBW-class codegen with
/// -march=native); memory is touched strictly row-linearly.
void sad_grid_blocked(const u8* cur, std::ptrdiff_t cur_stride, const u8* ref,
                      std::ptrdiff_t ref_stride, u16 out[16]) {
  for (int by = 0; by < 4; ++by) {
    u32 acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
    for (int y = 0; y < 4; ++y) {
      const u8* c = cur + (by * 4 + y) * cur_stride;
      const u8* r = ref + (by * 4 + y) * ref_stride;
      u16 d[16];
      for (int x = 0; x < 16; ++x) {
        d[x] = static_cast<u16>(abs_diff(c[x], r[x]));
      }
      acc0 += static_cast<u32>(d[0]) + d[1] + d[2] + d[3];
      acc1 += static_cast<u32>(d[4]) + d[5] + d[6] + d[7];
      acc2 += static_cast<u32>(d[8]) + d[9] + d[10] + d[11];
      acc3 += static_cast<u32>(d[12]) + d[13] + d[14] + d[15];
    }
    out[by * 4 + 0] = static_cast<u16>(acc0);
    out[by * 4 + 1] = static_cast<u16>(acc1);
    out[by * 4 + 2] = static_cast<u16>(acc2);
    out[by * 4 + 3] = static_cast<u16>(acc3);
  }
}

}  // namespace

// Implemented in sad_simd.cpp (SSE2) and kernels_avx2.cpp (AVX2); both TUs
// provide forwarding stubs on targets where the ISA cannot be compiled, so
// these symbols always link — the registry's runtime resolution guarantees
// a stub is never the selected tier.
void sad_grid_simd(const u8* cur, std::ptrdiff_t cur_stride, const u8* ref,
                   std::ptrdiff_t ref_stride, u16 out[16]);
u32 sad_block_simd(const u8* a, std::ptrdiff_t stride_a, const u8* b,
                   std::ptrdiff_t stride_b, int width, int height);
void sad_grid_avx2(const u8* cur, std::ptrdiff_t cur_stride, const u8* ref,
                   std::ptrdiff_t ref_stride, u16 out[16]);
u32 sad_block_avx2(const u8* a, std::ptrdiff_t stride_a, const u8* b,
                   std::ptrdiff_t stride_b, int width, int height);

SadGrid16Fn sad_grid_16x16_kernel(SimdTier tier, SimdTier* resolved) {
  const SimdTier got = resolve_tier(KernelId::kSadGrid, tier);
  if (resolved != nullptr) *resolved = got;
  switch (got) {
    case SimdTier::kScalar:
      return &sad_grid_scalar;
    case SimdTier::kBlocked:
      return &sad_grid_blocked;
    case SimdTier::kSse2:
      return &sad_grid_simd;
    case SimdTier::kAvx2:
      return &sad_grid_avx2;
    case SimdTier::kAuto:
      break;  // resolve_tier never returns kAuto
  }
  return &sad_grid_scalar;
}

u32 sad_block_scalar(const u8* a, std::ptrdiff_t stride_a, const u8* b,
                     std::ptrdiff_t stride_b, int width, int height) {
  u32 acc = 0;
  for (int y = 0; y < height; ++y) {
    const u8* ra = a + y * stride_a;
    const u8* rb = b + y * stride_b;
    u32 row_acc = 0;
    for (int x = 0; x < width; ++x) {
      row_acc += static_cast<u32>(abs_diff(ra[x], rb[x]));
    }
    acc += row_acc;
  }
  return acc;
}

SadBlockFn sad_block_kernel(SimdTier tier, SimdTier* resolved) {
  const SimdTier got = resolve_tier(KernelId::kSadBlock, tier);
  if (resolved != nullptr) *resolved = got;
  switch (got) {
    case SimdTier::kScalar:
    case SimdTier::kBlocked:  // no distinct blocked shape for arbitrary rects
      return &sad_block_scalar;
    case SimdTier::kSse2:
      return &sad_block_simd;
    case SimdTier::kAvx2:
      return &sad_block_avx2;
    case SimdTier::kAuto:
      break;
  }
  return &sad_block_scalar;
}

u32 sad_block(const u8* a, std::ptrdiff_t stride_a, const u8* b,
              std::ptrdiff_t stride_b, int width, int height) {
  static const SadBlockFn kFn = sad_block_kernel(SimdTier::kAuto);
  return kFn(a, stride_a, b, stride_b, width, height);
}

void aggregate_sad_grid(const u16 grid[16], u32 out[kEntriesPerMb]) {
  // 4x4 blocks (mode 6): the grid verbatim, raster order.
  constexpr int off4x4 = kModeOffset[static_cast<int>(PartitionMode::k4x4)];
  for (int i = 0; i < 16; ++i) out[off4x4 + i] = grid[i];

  // 8x4 blocks (mode 4): two horizontally adjacent 4x4s; 2 cols x 4 rows.
  constexpr int off8x4 = kModeOffset[static_cast<int>(PartitionMode::k8x4)];
  for (int by = 0; by < 4; ++by) {
    for (int bx = 0; bx < 2; ++bx) {
      out[off8x4 + by * 2 + bx] =
          static_cast<u32>(grid[by * 4 + bx * 2]) + grid[by * 4 + bx * 2 + 1];
    }
  }

  // 4x8 blocks (mode 5): two vertically adjacent 4x4s; 4 cols x 2 rows.
  constexpr int off4x8 = kModeOffset[static_cast<int>(PartitionMode::k4x8)];
  for (int by = 0; by < 2; ++by) {
    for (int bx = 0; bx < 4; ++bx) {
      out[off4x8 + by * 4 + bx] =
          static_cast<u32>(grid[(by * 2) * 4 + bx]) + grid[(by * 2 + 1) * 4 + bx];
    }
  }

  // 8x8 blocks (mode 3): sum of a 2x2 patch of 4x4s; 2 cols x 2 rows.
  constexpr int off8x8 = kModeOffset[static_cast<int>(PartitionMode::k8x8)];
  u32 q[4];
  for (int by = 0; by < 2; ++by) {
    for (int bx = 0; bx < 2; ++bx) {
      q[by * 2 + bx] = out[off8x4 + (by * 2) * 2 + bx] +
                       out[off8x4 + (by * 2 + 1) * 2 + bx];
      out[off8x8 + by * 2 + bx] = q[by * 2 + bx];
    }
  }

  // 16x8 (mode 1): left+right 8x8 of each half; 1 col x 2 rows.
  constexpr int off16x8 = kModeOffset[static_cast<int>(PartitionMode::k16x8)];
  out[off16x8 + 0] = q[0] + q[1];
  out[off16x8 + 1] = q[2] + q[3];

  // 8x16 (mode 2): top+bottom 8x8 of each column; 2 cols x 1 row.
  constexpr int off8x16 = kModeOffset[static_cast<int>(PartitionMode::k8x16)];
  out[off8x16 + 0] = q[0] + q[2];
  out[off8x16 + 1] = q[1] + q[3];

  // 16x16 (mode 0): everything.
  out[kModeOffset[static_cast<int>(PartitionMode::k16x16)]] =
      out[off16x8 + 0] + out[off16x8 + 1];
}

}  // namespace feves
