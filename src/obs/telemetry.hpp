// Per-frame scheduler telemetry: what the load balancer PREDICTED (the LP's
// τ values and the per-module times implied by the K parameters it consumed)
// versus what the executor MEASURED. The misprediction error is the quantity
// Algorithm 1's on-the-fly re-characterization exists to keep small — making
// it observable turns "the LP converged" from an assumption into a metric.
#pragma once

#include <cmath>
#include <vector>

namespace feves::obs {

/// Predicted-vs-measured pair for one module on one device (milliseconds).
/// predicted = rows × the K parameter the LP consumed; measured = the op's
/// span in the successful attempt. 0 where the module was not assigned.
struct ModuleTimes {
  double predicted_ms = 0.0;
  double measured_ms = 0.0;

  /// |error| relative to the measurement (0 when either side is unknown).
  double error() const {
    if (predicted_ms <= 0.0 || measured_ms <= 0.0) return 0.0;
    return std::abs(measured_ms - predicted_ms) / measured_ms;
  }
};

struct DeviceTelemetry {
  ModuleTimes me, interp, sme;
};

/// Session-resilience counters. Scoped by the holder: embedded in a
/// FrameStats they describe one frame's recovery activity (the restarts and
/// backoff that preceded it, the checkpoint taken after it); in a
/// SessionResult the whole session; in ServiceStats the whole service —
/// including the service-only counters (shed sessions, breaker trips).
struct ResilienceTelemetry {
  int checkpoints_taken = 0;
  int checkpoints_restored = 0;
  int restarts = 0;          ///< checkpoint-restarts performed
  int frames_replayed = 0;   ///< frames re-encoded because of restarts
  int backoff_waits = 0;     ///< backoff / breaker sleeps taken
  double backoff_wait_ms = 0.0;
  double checkpoint_ms = 0.0;  ///< wall time spent snapshotting state
  int shed_sessions = 0;       ///< sessions shed by admission control
  int breaker_trips = 0;       ///< pool-exhaustion circuit-breaker opens
  int degraded_sessions = 0;   ///< sessions that stepped down the ladder
  int probation_relapses = 0;  ///< retries burned on all-probation grants
                               ///< that failed again (churn attribution)

  void merge(const ResilienceTelemetry& o) {
    checkpoints_taken += o.checkpoints_taken;
    checkpoints_restored += o.checkpoints_restored;
    restarts += o.restarts;
    frames_replayed += o.frames_replayed;
    backoff_waits += o.backoff_waits;
    backoff_wait_ms += o.backoff_wait_ms;
    checkpoint_ms += o.checkpoint_ms;
    shed_sessions += o.shed_sessions;
    breaker_trips += o.breaker_trips;
    degraded_sessions += o.degraded_sessions;
    probation_relapses += o.probation_relapses;
  }
};

/// Cluster-tier counters: the WorkerManager's view of node liveness and
/// work movement. Scoped by the holder — per session in a
/// ClusterSessionResult (only the work-movement counters are meaningful
/// there), whole-manager in WorkerManager::telemetry() (which adds the
/// node-liveness counters; heartbeats are manager-wide, not per session).
struct NodeTelemetry {
  // Work movement.
  int dispatches = 0;      ///< shard submissions acknowledged by a worker
  int completions = 0;     ///< shard results committed (epoch matched)
  int fenced_replies = 0;  ///< stale-epoch results dropped (zombie nodes,
                           ///< healed partitions, false-positive deaths)
  int lease_expiries = 0;  ///< leases that timed out before completing
  int reassigns = 0;       ///< shards re-dispatched after a fence
  int steals = 0;          ///< reassigns that landed on a different node
  int epoch_fences = 0;    ///< outstanding-lease invalidations (epoch bumps
                           ///< beyond the one every dispatch performs)
  int rpc_retries = 0;     ///< deadline/unreachable RPC attempts retried
  // Node liveness (manager-wide).
  int heartbeats = 0;        ///< heartbeat RPCs attempted
  int heartbeat_misses = 0;  ///< heartbeats that timed out / went unreachable
  int nodes_suspected = 0;   ///< alive/probation -> suspect transitions
  int nodes_died = 0;        ///< suspect -> dead declarations
  int nodes_rejoined = 0;    ///< dead nodes re-admitted (new incarnation)

  void merge(const NodeTelemetry& o) {
    dispatches += o.dispatches;
    completions += o.completions;
    fenced_replies += o.fenced_replies;
    lease_expiries += o.lease_expiries;
    reassigns += o.reassigns;
    steals += o.steals;
    epoch_fences += o.epoch_fences;
    rpc_retries += o.rpc_retries;
    heartbeats += o.heartbeats;
    heartbeat_misses += o.heartbeat_misses;
    nodes_suspected += o.nodes_suspected;
    nodes_died += o.nodes_died;
    nodes_rejoined += o.nodes_rejoined;
  }
};

/// Resolved kernel tier of one kernel family: what the session requested
/// and what the codec's kernel registry resolved it to on this machine
/// (CPUID + per-kernel ceiling). Names point at the registry's static
/// strings, so the struct stays trivially copyable.
struct KernelTierInfo {
  const char* kernel = "";
  const char* requested = "";
  const char* resolved = "";
};

/// Everything measured about one frame's scheduling decision.
struct SchedTelemetry {
  // LP solver effort (summed over the ∆ fix-point and any retry attempts).
  int lp_solves = 0;          ///< lp::solve calls
  int lp_iterations = 0;      ///< simplex pivots across those solves
  int lp_fallbacks = 0;       ///< anti-cycling Bland's-rule activations
  double lp_solve_ms = 0.0;   ///< wall time inside lp::solve
  int delta_iterations = 0;   ///< MS/LS_BOUNDS fix-point rounds
  int lp_warm_solves = 0;     ///< solves that accepted the previous basis
  int lp_skipped = 0;         ///< solves skipped by the convergence detector
                              ///< (cached distribution reused)

  // Frame pipeline: how this frame's schedule reached the critical path.
  int pipeline_hits = 0;    ///< schedule consumed from the two-slot pipeline
  int pipeline_misses = 0;  ///< precomputed schedule discarded (drift,
                            ///< device-set change, retry) and re-solved
  double sched_critical_ms = 0.0;    ///< scheduling time ON the critical
                                     ///< path (consume/validate, or the full
                                     ///< synchronous solve on a miss)
  double sched_overlapped_ms = 0.0;  ///< scheduling time hidden in the
                                     ///< previous frame's execution shadow

  /// Fraction of this frame's scheduling work that ran off the critical
  /// path (0 when nothing was overlapped).
  double pipeline_overlap_ratio() const {
    const double total = sched_critical_ms + sched_overlapped_ms;
    return total > 0.0 ? sched_overlapped_ms / total : 0.0;
  }

  /// Solves the scheduler actually paid for at full price.
  int lp_cold_solves() const { return lp_solves - lp_warm_solves; }

  // The LP's synchronization-point predictions (0 under non-LP policies)
  // against the successful attempt's measurements.
  double predicted_tau1_ms = 0.0, measured_tau1_ms = 0.0;
  double predicted_tau2_ms = 0.0, measured_tau2_ms = 0.0;
  double predicted_tau_tot_ms = 0.0, measured_tau_tot_ms = 0.0;

  std::vector<DeviceTelemetry> dev;  ///< per-device module breakdown

  /// Per-kernel SIMD tier the frame's host-side kernels ran at (real mode;
  /// empty in the virtual framework, which executes no pixel kernels).
  std::vector<KernelTierInfo> kernel_tiers;

  /// Relative τtot misprediction — the headline number feeding FrameStats.
  double misprediction() const {
    if (predicted_tau_tot_ms <= 0.0 || measured_tau_tot_ms <= 0.0) return 0.0;
    return std::abs(measured_tau_tot_ms - predicted_tau_tot_ms) /
           measured_tau_tot_ms;
  }

  /// Worst per-module relative error over every device (prediction quality
  /// of the K parameters themselves, before LP slack absorbs anything).
  double worst_module_error() const {
    double worst = 0.0;
    for (const DeviceTelemetry& d : dev) {
      worst = std::max({worst, d.me.error(), d.interp.error(), d.sme.error()});
    }
    return worst;
  }
};

}  // namespace feves::obs
