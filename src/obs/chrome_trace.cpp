// Chrome trace-event JSON export (the "JSON Array Format" both
// chrome://tracing and Perfetto load). Every event becomes a complete ("X")
// slice; metadata events name the tracks so the UI shows one process per
// device and one thread per resource lane.
#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>

namespace feves::obs {

namespace {

/// Minimal JSON string escaping (labels are ASCII op names, but stay safe).
void write_escaped(std::ostream& os, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << ' ';
    } else {
      os << c;
    }
  }
}

/// pid 0 is the host/orchestrator; devices map to pid = device + 1. Events
/// carrying a session id (multi-tenant encode-service runs) get a disjoint
/// pid block per session so one merged export shows every session's view of
/// the shared devices side by side.
constexpr int kSessionPidStride = 100;
int pid_of(const TraceEvent& e) {
  const int base = e.device + 1;
  return e.session < 0 ? base : (e.session + 1) * kSessionPidStride + base;
}

/// Microsecond timestamps at fixed nanosecond resolution. The default
/// ostream 6-significant-digit float formatting loses absolute precision as
/// the timeline grows, which shows up as phantom sub-ns lane overlaps in
/// round-trip consumers.
void write_us(std::ostream& os, double us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", us);
  os << buf;
}

const char* lane_name(int lane) {
  switch (lane) {
    case kLaneCompute:
      return "compute";
    case kLaneCopyH2D:
      return "copyH2D";
    case kLaneCopyD2H:
      return "copyD2H";
    case kLaneHost:
      return "host";
    case kLanePipeline:
      return "pipeline";
    case kLaneResilience:
      return "resilience";
    case kLaneCluster:
      return "cluster";
  }
  return "lane?";
}

void write_metadata(std::ostream& os, int pid, int tid, const char* what,
                    const std::string& name, bool* first) {
  if (!*first) os << ",\n";
  *first = false;
  os << "  {\"name\":\"" << what << "\",\"ph\":\"M\",\"pid\":" << pid;
  if (tid >= 0) os << ",\"tid\":" << tid;
  os << ",\"args\":{\"name\":\"";
  write_escaped(os, name.c_str());
  os << "\"}}";
}

}  // namespace

void TraceSink::set_device_name(int device, std::string name) {
  FEVES_CHECK(device >= 0);
  if (device >= static_cast<int>(device_names_.size())) {
    device_names_.resize(static_cast<std::size_t>(device) + 1);
  }
  device_names_[device] = std::move(name);
}

void TraceSink::write_chrome_trace(std::ostream& os) const {
  os << "{\"traceEvents\":[\n";
  bool first = true;

  // Track naming: which (pid, tid) pairs actually carry events.
  std::vector<std::pair<int, int>> tracks;
  for (const TraceEvent& e : events_) {
    const std::pair<int, int> key{pid_of(e), e.lane};
    bool seen = false;
    for (const auto& t : tracks) seen |= t == key;
    if (!seen) tracks.push_back(key);
  }
  std::vector<int> named_pids;
  for (const auto& [pid, tid] : tracks) {
    bool seen = false;
    for (int p : named_pids) seen |= p == pid;
    if (!seen) {
      named_pids.push_back(pid);
      const int session = pid >= kSessionPidStride ? pid / kSessionPidStride - 1 : -1;
      const int device = pid % kSessionPidStride - 1;
      std::string pname = "host";
      if (device >= 0) {
        pname = "dev" + std::to_string(device);
        if (device < static_cast<int>(device_names_.size()) &&
            !device_names_[device].empty()) {
          pname += " " + device_names_[device];
        }
      }
      if (session >= 0) pname = "s" + std::to_string(session) + " " + pname;
      write_metadata(os, pid, -1, "process_name", pname, &first);
      // Sorting by pid keeps the host track on top and devices in order.
      if (!first) os << ",\n";
      os << "  {\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":" << pid
         << ",\"args\":{\"sort_index\":" << pid << "}}";
    }
    write_metadata(os, pid, tid, "thread_name", lane_name(tid), &first);
  }

  for (const TraceEvent& e : events_) {
    if (!first) os << ",\n";
    first = false;
    // Chrome trace timestamps are in microseconds.
    const double ts_us = e.t_start_ms * 1000.0;
    const double dur_us = std::max(0.0, e.duration_ms()) * 1000.0;
    os << "  {\"name\":\"";
    write_escaped(os, e.name);
    os << "\",\"ph\":\"X\",\"pid\":" << pid_of(e) << ",\"tid\":" << e.lane
       << ",\"ts\":";
    write_us(os, ts_us);
    os << ",\"dur\":";
    write_us(os, dur_us);
    if (e.status != EventStatus::kOk) {
      // Highlight non-ok ops in the viewer (cname is a Chrome legacy hint;
      // Perfetto keeps it in args).
      os << ",\"cname\":\""
         << (e.status == EventStatus::kCancelled ? "grey" : "terrible")
         << "\"";
    }
    os << ",\"args\":{\"frame\":" << e.frame << ",\"session\":" << e.session
       << ",\"rows\":" << e.rows << ",\"bytes\":" << e.bytes << ",\"kind\":\""
       << to_string(e.kind) << "\",\"status\":\"" << to_string(e.status)
       << "\"}}";
  }
  os << "\n]}\n";
}

bool TraceSink::save(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  write_chrome_trace(os);
  return static_cast<bool>(os);
}

}  // namespace feves::obs
