// Orchestration tracing: every op the executors run (kernels, DMA
// transfers), every LP solve and every scheduling phase can emit a
// TraceEvent into a per-producer lock-free ring buffer. A TraceSink
// collects completed frames and serializes them to Chrome trace-event JSON
// (chrome://tracing / Perfetto), one track per device×lane, so the
// compute/PCIe overlap of the paper's Figs. 4-5 is visually checkable.
//
// Cost contract: tracing is compiled in but runtime-gated. With no tracer
// attached the hot path pays one pointer test; with a tracer attached but
// disabled, one relaxed atomic load and a branch. Enabled emission is one
// bounded copy into an SPSC ring — never a lock, never an allocation.
#pragma once

#include "common/check.hpp"

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

namespace feves::obs {

enum class EventKind : unsigned char {
  kKernel,    ///< compute op (ME/INT/SME/R*)
  kTransfer,  ///< DMA transfer on a copy engine
  kLpSolve,   ///< one lp::solve call inside the load balancer
  kSched,     ///< host-side scheduling/planning phase
  kMark,      ///< frame boundary / annotation
};

/// Terminal state of a traced op — mirrors OpStatus (obs sits below the
/// platform layer in the link order, so it cannot include op_graph.hpp).
enum class EventStatus : unsigned char { kOk, kFailed, kTimedOut, kCancelled };

const char* to_string(EventKind kind);
const char* to_string(EventStatus status);

/// Serial execution lanes per device, matching the executors' FIFO queues.
/// Single-copy-engine devices fold D2H into the H2D lane (one DMA unit).
inline constexpr int kLaneCompute = 0;
inline constexpr int kLaneCopyH2D = 1;
inline constexpr int kLaneCopyD2H = 2;
inline constexpr int kLaneHost = 3;  ///< orchestration (LP, planning, marks)
inline constexpr int kLanePipeline = 4;  ///< scheduling overlapped with the
                                         ///< previous frame's execution
inline constexpr int kLaneResilience = 5;  ///< checkpoint / restart / backoff
                                           ///< activity of the encode service
inline constexpr int kLaneCluster = 6;  ///< cluster tier: dispatch / fence /
                                        ///< reassign / node-death marks

/// One traced interval. Fixed-size (no heap) so ring emission is a memcpy.
struct TraceEvent {
  static constexpr int kNameCapacity = 23;

  char name[kNameCapacity + 1] = {};  ///< NUL-terminated, truncated label
  double t_start_ms = 0.0;
  double t_end_ms = 0.0;
  double bytes = 0.0;  ///< transfer payload (0 for kernels/host events)
  int frame = 0;       ///< inter-frame number the event belongs to
  int device = -1;     ///< owning device; -1 = host orchestration
  int lane = kLaneHost;
  int rows = 0;        ///< MB rows the op covers (0 when not row-shaped)
  int session = -1;    ///< encode-service session id; -1 = standalone run
  EventKind kind = EventKind::kMark;
  EventStatus status = EventStatus::kOk;

  void set_name(const char* s) {
    std::strncpy(name, s == nullptr ? "" : s, kNameCapacity);
    name[kNameCapacity] = '\0';
  }
  double duration_ms() const { return t_end_ms - t_start_ms; }
};

/// Single-producer/single-consumer bounded ring. The producer is the one
/// thread holding the Writer; the consumer is Tracer::drain. Overflow drops
/// the newest event and counts it — emission never blocks an executor lane.
class EventRing {
 public:
  explicit EventRing(std::size_t capacity_pow2);

  bool try_push(const TraceEvent& e);        // producer side
  void drain(std::vector<TraceEvent>* out);  // consumer side
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<TraceEvent> slots_;
  std::size_t mask_;
  std::atomic<std::uint64_t> head_{0};  // next write (producer-owned)
  std::atomic<std::uint64_t> tail_{0};  // next read (consumer-owned)
  std::atomic<std::uint64_t> dropped_{0};
};

class Tracer;

/// Hot-path emission handle: one per producing thread, leased from the
/// Tracer (mutex on acquire/release only — once per lane worker per frame).
class TraceWriter {
 public:
  /// One relaxed load + branch when tracing is disabled; one ring push
  /// (bounded copy, no locks) when enabled.
  void emit(const TraceEvent& e);

 private:
  friend class Tracer;
  explicit TraceWriter(Tracer* owner, std::size_t capacity);
  Tracer* owner_;
  EventRing ring_;
};

/// RAII lease of a TraceWriter. Null-safe: a lease from a null tracer is a
/// no-op shell, so executors can write `lease.emit(e)` unconditionally
/// after one `if (tracer)`-style gate.
class WriterLease {
 public:
  WriterLease() = default;
  explicit WriterLease(Tracer* tracer);
  ~WriterLease() { release(); }
  WriterLease(WriterLease&& o) noexcept
      : tracer_(o.tracer_), writer_(o.writer_) {
    o.tracer_ = nullptr;
    o.writer_ = nullptr;
  }
  WriterLease& operator=(WriterLease&& o) noexcept;
  WriterLease(const WriterLease&) = delete;
  WriterLease& operator=(const WriterLease&) = delete;

  void emit(const TraceEvent& e) {
    if (writer_ != nullptr) writer_->emit(e);
  }
  bool active() const { return writer_ != nullptr; }

 private:
  void release();
  Tracer* tracer_ = nullptr;
  TraceWriter* writer_ = nullptr;
};

/// Owns the per-producer rings and the runtime gate. Writers are pooled:
/// releasing returns the ring to the free list (its undrained events stay
/// until the next drain), so a frame's worth of lane workers reuses a
/// handful of rings instead of growing one per thread ever spawned.
class Tracer {
 public:
  explicit Tracer(bool enabled = true, std::size_t ring_capacity = 4096);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Leases a writer (cold path; takes a mutex). Prefer WriterLease.
  TraceWriter* acquire_writer();
  void release_writer(TraceWriter* w);

  /// Consumes every ring's pending events into `out` (appending). Must not
  /// race leased writers' emissions on the SAME ring; the frameworks call
  /// it after the executor joined its lane workers.
  void drain(std::vector<TraceEvent>* out);

  /// Events discarded because a ring was full.
  std::uint64_t dropped() const;

 private:
  std::atomic<bool> enabled_;
  std::size_t ring_capacity_;
  mutable std::mutex pool_mutex_;  // guards writers_ / free_ (incl. dropped())
  std::vector<std::unique_ptr<TraceWriter>> writers_;  // all ever created
  std::vector<TraceWriter*> free_;                     // currently unleased
};

/// Frame-oriented event store with Chrome trace-event JSON export. One
/// track per device×lane: pid = device + 1 (pid 0 is the host), tid = lane.
class TraceSink {
 public:
  void add_event(const TraceEvent& e) { events_.push_back(e); }
  void add_events(const std::vector<TraceEvent>& es) {
    events_.insert(events_.end(), es.begin(), es.end());
  }
  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }

  /// Track naming in the exported JSON ("dev0 CPU_N" etc.).
  void set_device_name(int device, std::string name);

  /// Serializes everything collected so far as Chrome trace-event JSON.
  void write_chrome_trace(std::ostream& os) const;

  /// write_chrome_trace to `path`; returns false when the file won't open.
  bool save(const std::string& path) const;

 private:
  std::vector<TraceEvent> events_;
  std::vector<std::string> device_names_;
};

/// Everything a framework needs to trace one encode run: the tracer the
/// executors emit into, the sink that accumulates frames, and the timeline
/// origin that rebases each execution's local t=0 clock so consecutive
/// frames (and retried attempts) tile one global timeline instead of
/// overlapping at zero.
class TraceSession {
 public:
  explicit TraceSession(bool enabled = true) : tracer(enabled) {}

  Tracer tracer;
  TraceSink sink;

  double origin_ms() const { return origin_ms_; }

  /// Session dimension for multi-tenant runs: when >= 0, every event folded
  /// into the sink is stamped with this id, and the Chrome export gives each
  /// (session, device) pair its own process track. Set once, before the
  /// framework using this session starts encoding.
  void set_session(int id) { session_ = id; }
  int session() const { return session_; }

  /// Records a host-side orchestration interval of `dur_ms`. On the default
  /// kLaneHost lane the event starts at the current origin and advances the
  /// origin past it (host phases serialize). On kLanePipeline the event is
  /// placed ENDING at the current origin — it models work that ran in the
  /// shadow of the execution that just folded — and the origin does not
  /// move, so overlapped scheduling never inflates the timeline.
  void add_host_event(int frame, const char* name, EventKind kind,
                      double dur_ms, int lane = kLaneHost);

  /// Drains the tracer (event times relative to the finished execution's
  /// t=0), rebases them at the current origin, hands them to the sink and
  /// advances the origin to the rebased span's end.
  void fold_execution();

 private:
  double origin_ms_ = 0.0;
  int session_ = -1;
  std::vector<TraceEvent> buf_;
};

}  // namespace feves::obs
