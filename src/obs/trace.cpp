#include "obs/trace.hpp"

#include <algorithm>

namespace feves::obs {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kKernel:
      return "kernel";
    case EventKind::kTransfer:
      return "transfer";
    case EventKind::kLpSolve:
      return "lp_solve";
    case EventKind::kSched:
      return "sched";
    case EventKind::kMark:
      return "mark";
  }
  return "?";
}

const char* to_string(EventStatus status) {
  switch (status) {
    case EventStatus::kOk:
      return "ok";
    case EventStatus::kFailed:
      return "failed";
    case EventStatus::kTimedOut:
      return "timed-out";
    case EventStatus::kCancelled:
      return "cancelled";
  }
  return "?";
}

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

EventRing::EventRing(std::size_t capacity_pow2)
    : slots_(round_up_pow2(std::max<std::size_t>(2, capacity_pow2))),
      mask_(slots_.size() - 1) {}

bool EventRing::try_push(const TraceEvent& e) {
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  const std::uint64_t tail = tail_.load(std::memory_order_acquire);
  if (head - tail >= slots_.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  slots_[head & mask_] = e;
  head_.store(head + 1, std::memory_order_release);
  return true;
}

void EventRing::drain(std::vector<TraceEvent>* out) {
  std::uint64_t tail = tail_.load(std::memory_order_relaxed);
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  for (; tail < head; ++tail) out->push_back(slots_[tail & mask_]);
  tail_.store(tail, std::memory_order_release);
}

TraceWriter::TraceWriter(Tracer* owner, std::size_t capacity)
    : owner_(owner), ring_(capacity) {}

void TraceWriter::emit(const TraceEvent& e) {
  if (!owner_->enabled()) return;
  ring_.try_push(e);
}

WriterLease::WriterLease(Tracer* tracer) : tracer_(tracer) {
  if (tracer_ != nullptr) writer_ = tracer_->acquire_writer();
}

WriterLease& WriterLease::operator=(WriterLease&& o) noexcept {
  if (this != &o) {
    release();
    tracer_ = o.tracer_;
    writer_ = o.writer_;
    o.tracer_ = nullptr;
    o.writer_ = nullptr;
  }
  return *this;
}

void WriterLease::release() {
  if (tracer_ != nullptr && writer_ != nullptr) {
    tracer_->release_writer(writer_);
  }
  tracer_ = nullptr;
  writer_ = nullptr;
}

Tracer::Tracer(bool enabled, std::size_t ring_capacity)
    : enabled_(enabled), ring_capacity_(ring_capacity) {}

TraceWriter* Tracer::acquire_writer() {
  std::lock_guard lock(pool_mutex_);
  if (!free_.empty()) {
    TraceWriter* w = free_.back();
    free_.pop_back();
    return w;
  }
  writers_.push_back(
      std::unique_ptr<TraceWriter>(new TraceWriter(this, ring_capacity_)));
  return writers_.back().get();
}

void Tracer::release_writer(TraceWriter* w) {
  FEVES_CHECK(w != nullptr);
  std::lock_guard lock(pool_mutex_);
  free_.push_back(w);
}

void Tracer::drain(std::vector<TraceEvent>* out) {
  FEVES_CHECK(out != nullptr);
  std::lock_guard lock(pool_mutex_);
  for (const auto& w : writers_) w->ring_.drain(out);
}

std::uint64_t Tracer::dropped() const {
  // pool_mutex_ also guards writers_ here: acquire_writer may push_back
  // (reallocating the vector) concurrently with a stats poll, so an
  // unlocked iteration is a use-after-free waiting to happen.
  std::lock_guard lock(pool_mutex_);
  std::uint64_t total = 0;
  for (const auto& w : writers_) total += w->ring_.dropped();
  return total;
}

void TraceSession::add_host_event(int frame, const char* name, EventKind kind,
                                  double dur_ms, int lane) {
  if (!tracer.enabled()) return;
  TraceEvent e;
  e.set_name(name);
  e.kind = kind;
  e.frame = frame;
  e.device = -1;
  e.lane = lane;
  e.session = session_;
  if (lane == kLanePipeline) {
    // Overlapped scheduling: backdated into the execution span that just
    // folded, origin untouched.
    e.t_end_ms = origin_ms_;
    e.t_start_ms = std::max(0.0, origin_ms_ - std::max(0.0, dur_ms));
    sink.add_event(e);
    return;
  }
  e.t_start_ms = origin_ms_;
  e.t_end_ms = origin_ms_ + std::max(0.0, dur_ms);
  sink.add_event(e);
  origin_ms_ = e.t_end_ms;
}

void TraceSession::fold_execution() {
  if (!tracer.enabled()) {
    // Still drain: events emitted before a mid-run disable must not leak
    // into a later frame's fold.
    buf_.clear();
    tracer.drain(&buf_);
    return;
  }
  buf_.clear();
  tracer.drain(&buf_);
  double span_end = origin_ms_;
  for (TraceEvent& e : buf_) {
    e.t_start_ms += origin_ms_;
    e.t_end_ms += origin_ms_;
    e.session = session_;
    span_end = std::max(span_end, e.t_end_ms);
  }
  sink.add_events(buf_);
  origin_ms_ = span_end;
}

}  // namespace feves::obs
