// Operation graph: the unit of orchestration the Video Coding Manager emits
// per frame (Fig 4 of the paper). Each op is a kernel or a DMA transfer,
// bound to a device resource (compute queue or copy engine) with explicit
// dependencies. Ops issued to the same resource execute FIFO in issue order
// — the same semantics as CUDA streams, and the mechanism by which single-
// vs dual-copy-engine concurrency (Sec. III-A) is expressed.
//
// The same graph runs on two executors:
//   * execute_virtual — discrete-event simulation over the calibrated cost
//     model (figure benches; no pixels touched);
//   * execute_real    — host threads running the actual kernel closures with
//     wall-clock measurement (correctness tests, examples).
#pragma once

#include "common/check.hpp"
#include "obs/trace.hpp"
#include "platform/device.hpp"

#include <functional>
#include <string>
#include <vector>

namespace feves {

enum class OpResource {
  kCompute,  ///< the device's kernel queue
  kCopyH2D,  ///< host-to-device engine
  kCopyD2H,  ///< device-to-host engine (same engine as H2D when single-copy)
};

struct Op {
  std::string label;
  int device = 0;
  OpResource resource = OpResource::kCompute;
  double virtual_ms = 0.0;           ///< modelled duration (virtual mode)
  std::function<void()> work;        ///< real-mode payload (may be empty)
  std::vector<int> deps;             ///< op ids that must finish first
  int rows = 0;      ///< MB rows the op covers (trace/attribution metadata)
  double bytes = 0.0;  ///< transfer payload bytes (0 for kernels)
};

class OpGraph {
 public:
  /// Adds an op; `op.deps` must reference previously added ops.
  int add(Op op) {
    for (int d : op.deps) {
      FEVES_CHECK_MSG(d >= 0 && d < static_cast<int>(ops_.size()),
                      "op '" << op.label << "' depends on unknown op " << d);
    }
    FEVES_CHECK(op.virtual_ms >= 0.0);
    ops_.push_back(std::move(op));
    return static_cast<int>(ops_.size()) - 1;
  }

  const std::vector<Op>& ops() const { return ops_; }
  int size() const { return static_cast<int>(ops_.size()); }
  bool empty() const { return ops_.empty(); }

 private:
  std::vector<Op> ops_;
};

struct OpTimes {
  double start_ms = 0.0;
  double end_ms = 0.0;
};

/// Terminal state of one op after execution.
enum class OpStatus {
  kOk = 0,     ///< ran to completion
  kFailed,     ///< its work threw, or a fault was injected
  kTimedOut,   ///< exceeded the per-op watchdog deadline (or injected hang)
  kCancelled,  ///< never ran: a (transitive) dependency did not complete
};

const char* to_string(OpStatus status);
const char* resource_name(OpResource res);

/// One failed or timed-out op, with enough attribution to pick the device
/// to quarantine and to produce an actionable error message.
struct OpFailure {
  int op = -1;
  std::string label;
  int device = 0;
  OpResource resource = OpResource::kCompute;
  OpStatus status = OpStatus::kFailed;
  std::string message;  ///< exception text / injected-fault description
};

struct ExecutionResult {
  std::vector<OpTimes> times;    ///< per op id ({0,0} for cancelled ops)
  std::vector<OpStatus> status;  ///< per op id
  std::vector<OpFailure> failures;  ///< kFailed/kTimedOut ops, by op id
  double makespan_ms = 0.0;  ///< max end time over attempted ops (tau_tot)

  bool ok() const {
    for (OpStatus s : status) {
      if (s != OpStatus::kOk) return false;
    }
    return true;
  }

  /// Devices owning at least one kFailed/kTimedOut op (cancellations are
  /// collateral, not evidence against their device). Sorted, unique.
  std::vector<int> failed_devices() const;

  /// Throws Error summarizing every failure with op label, device and
  /// resource lane. No-op when ok().
  void throw_if_failed() const;
};

/// Per-device fault actions for one frame (built by FaultSchedule::plan).
/// Default-constructed: no faults.
struct FaultPlan {
  struct DeviceFaults {
    bool kernel_error = false;
    bool transfer_error = false;
    bool lost = false;
    bool hang = false;
  };
  std::vector<DeviceFaults> dev;  ///< empty = fault-free

  enum class Action { kNone, kError, kHang };

  Action action(int device, OpResource res) const {
    if (device < 0 || device >= static_cast<int>(dev.size())) {
      return Action::kNone;
    }
    const DeviceFaults& f = dev[device];
    if (f.lost) return Action::kError;
    if (res == OpResource::kCompute) {
      if (f.hang) return Action::kHang;
      if (f.kernel_error) return Action::kError;
    } else if (f.transfer_error) {
      return Action::kError;
    }
    return Action::kNone;
  }

  bool any() const {
    for (const DeviceFaults& f : dev) {
      if (f.kernel_error || f.transfer_error || f.lost || f.hang) return true;
    }
    return false;
  }
};

struct ExecuteOptions {
  FaultPlan faults;  ///< injected faults for this execution
  /// Per-op deadline; 0 disables. Virtual mode: an op modelled (or hung)
  /// past the deadline is marked kTimedOut at start + watchdog. Real mode:
  /// the check is post-hoc — an op whose wall time exceeds the deadline is
  /// marked kTimedOut and its results are treated as unusable (dependents
  /// cancelled), matching a system that already moved on when the op
  /// finally returned. Injecting kHang requires watchdog_ms > 0.
  double watchdog_ms = 0.0;
  /// Real mode: how long an injected hang sleeps before the executor
  /// declares it timed out. Must exceed watchdog_ms.
  double hang_sleep_ms = 20.0;
  /// When non-null, every op's terminal state is emitted as a TraceEvent
  /// (per-lane lock-free rings; see obs/trace.hpp). Null — the default —
  /// costs one pointer test per execution; non-null but disabled costs one
  /// relaxed load + branch per op.
  obs::Tracer* tracer = nullptr;
  /// Frame number stamped into emitted trace events.
  int trace_frame = 0;
  /// Pool reservation guard (multi-session encode service): when non-null,
  /// every op in the graph must run on a device the lease covers — an op
  /// outside it means a scheduler handed work to another tenant's device,
  /// and both executors refuse the whole graph up front (FEVES_CHECK)
  /// rather than run it.
  const class DeviceLease* lease = nullptr;
};

/// Discrete-event execution against the devices' cost/link models. Fully
/// deterministic. Throws on a graph whose FIFO queues deadlock. Failed or
/// timed-out ops cancel their transitive dependents; independent ops still
/// execute, and the partial result is returned (never thrown).
ExecutionResult execute_virtual(const OpGraph& graph,
                                const PlatformTopology& topo,
                                const ExecuteOptions& opts = {});

/// Threaded execution running each op's `work` closure, measuring wall
/// time. Resource FIFO order and dependencies are honoured exactly as in
/// virtual mode, and fault/cancellation semantics mirror execute_virtual:
/// the same injected fault yields the same per-op statuses in both modes.
ExecutionResult execute_real(const OpGraph& graph,
                             const PlatformTopology& topo,
                             const ExecuteOptions& opts = {});

}  // namespace feves
