// Operation graph: the unit of orchestration the Video Coding Manager emits
// per frame (Fig 4 of the paper). Each op is a kernel or a DMA transfer,
// bound to a device resource (compute queue or copy engine) with explicit
// dependencies. Ops issued to the same resource execute FIFO in issue order
// — the same semantics as CUDA streams, and the mechanism by which single-
// vs dual-copy-engine concurrency (Sec. III-A) is expressed.
//
// The same graph runs on two executors:
//   * execute_virtual — discrete-event simulation over the calibrated cost
//     model (figure benches; no pixels touched);
//   * execute_real    — host threads running the actual kernel closures with
//     wall-clock measurement (correctness tests, examples).
#pragma once

#include "common/check.hpp"
#include "platform/device.hpp"

#include <functional>
#include <string>
#include <vector>

namespace feves {

enum class OpResource {
  kCompute,  ///< the device's kernel queue
  kCopyH2D,  ///< host-to-device engine
  kCopyD2H,  ///< device-to-host engine (same engine as H2D when single-copy)
};

struct Op {
  std::string label;
  int device = 0;
  OpResource resource = OpResource::kCompute;
  double virtual_ms = 0.0;           ///< modelled duration (virtual mode)
  std::function<void()> work;        ///< real-mode payload (may be empty)
  std::vector<int> deps;             ///< op ids that must finish first
};

class OpGraph {
 public:
  /// Adds an op; `op.deps` must reference previously added ops.
  int add(Op op) {
    for (int d : op.deps) {
      FEVES_CHECK_MSG(d >= 0 && d < static_cast<int>(ops_.size()),
                      "op '" << op.label << "' depends on unknown op " << d);
    }
    FEVES_CHECK(op.virtual_ms >= 0.0);
    ops_.push_back(std::move(op));
    return static_cast<int>(ops_.size()) - 1;
  }

  const std::vector<Op>& ops() const { return ops_; }
  int size() const { return static_cast<int>(ops_.size()); }
  bool empty() const { return ops_.empty(); }

 private:
  std::vector<Op> ops_;
};

struct OpTimes {
  double start_ms = 0.0;
  double end_ms = 0.0;
};

struct ExecutionResult {
  std::vector<OpTimes> times;  ///< per op id
  double makespan_ms = 0.0;    ///< max end time (the frame's tau_tot)
};

/// Discrete-event execution against the devices' cost/link models. Fully
/// deterministic. Throws on a graph whose FIFO queues deadlock.
ExecutionResult execute_virtual(const OpGraph& graph,
                                const PlatformTopology& topo);

/// Threaded execution running each op's `work` closure, measuring wall
/// time. Resource FIFO order and dependencies are honoured exactly as in
/// virtual mode.
ExecutionResult execute_real(const OpGraph& graph,
                             const PlatformTopology& topo);

}  // namespace feves
