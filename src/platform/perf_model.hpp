// Analytical cost model for virtual-mode execution and buffer-size
// accounting for the transfer model. Work volumes follow directly from the
// algorithm definitions (Sec. II):
//   ME   — every MB probes (2R)^2 candidates x 256 pixels, per reference;
//   INT  — 16 quarter-pel output samples per reference pixel, newest RF only;
//   SME  — every partition block probes (2r+1)^2 quarter-pel candidates;
//          all 7 modes together cover the MB 7 times (7*256 px), per ref;
//   R*   — a constant number of passes over the frame (MC+TQ+TQ^-1+DBL).
#pragma once

#include "common/config.hpp"
#include "platform/device.hpp"

namespace feves {

// ---- Work volumes (device-independent) -----------------------------------

/// Effective work multiplier for searching `refs` reference frames. The
/// marginal reference costs less than the first: the current-MB pixels are
/// loaded once and stay register/cache resident while candidates from every
/// reference stream through (calibrated to the paper's Fig 6(b) decline,
/// where fps falls distinctly slower than 1/refs).
inline double multi_ref_factor(int refs) {
  constexpr double kMarginalRefCost = 0.55;
  return 1.0 + kMarginalRefCost * (refs - 1);
}

/// ME candidate-pixel comparisons in one MB row.
inline double me_row_ops(const EncoderConfig& cfg, int active_refs) {
  const double candidates =
      static_cast<double>(cfg.search_area_size()) * cfg.search_area_size();
  return static_cast<double>(cfg.mb_width()) * candidates * 256.0 *
         multi_ref_factor(active_refs);
}

/// Interpolated output samples in one MB row of the SF (16 phases).
inline double int_row_pixels(const EncoderConfig& cfg) {
  return static_cast<double>(cfg.width) * kMbSize * 16.0;
}

/// SME candidate-pixel comparisons in one MB row.
inline double sme_row_ops(const EncoderConfig& cfg, int active_refs) {
  const int probes = (2 * cfg.subpel_refine_range + 1) *
                     (2 * cfg.subpel_refine_range + 1);
  return static_cast<double>(cfg.mb_width()) * probes *
         (kNumPartitionModes * 256.0) * multi_ref_factor(active_refs);
}

/// R* processed pixels for the whole frame (luma + chroma ~ 1.5x).
inline double rstar_frame_pixels(const EncoderConfig& cfg) {
  return static_cast<double>(cfg.width) * cfg.height * 1.5;
}

// ---- Buffer volumes (bytes per MB row) ------------------------------------

/// Current-frame luma bytes per MB row (ME/SME read luma only on device).
inline double cf_row_bytes(const EncoderConfig& cfg) {
  return static_cast<double>(cfg.width) * kMbSize;
}

/// Reconstructed reference bytes per MB row (luma + 4:2:0 chroma).
inline double rf_row_bytes(const EncoderConfig& cfg) {
  return static_cast<double>(cfg.width) * kMbSize * 1.5;
}

/// Sub-pel frame bytes per MB row: 16 phase planes of luma.
inline double sf_row_bytes(const EncoderConfig& cfg) {
  return static_cast<double>(cfg.width) * kMbSize * 16.0;
}

/// Motion-vector payload per MB row: one (mv + cost) record per partition
/// block of every mode — 41 per MB (see codec/partition.hpp) — per
/// reference frame.
inline double mv_row_bytes(const EncoderConfig& cfg, int active_refs) {
  constexpr double kMotionEntriesPerMb = 41.0;
  return static_cast<double>(cfg.mb_width()) * kMotionEntriesPerMb * 8.0 *
         active_refs;
}

// ---- Virtual-mode durations ------------------------------------------------

inline double me_rows_ms(const DeviceSpec& dev, const EncoderConfig& cfg,
                         int rows, int active_refs) {
  if (rows <= 0) return 0.0;
  const double cands = static_cast<double>(cfg.search_area_size()) *
                       cfg.search_area_size();
  const double occupancy =
      dev.tput.me_occupancy_cands > 0.0
          ? cands / (cands + dev.tput.me_occupancy_cands)
          : 1.0;
  return dev.tput.kernel_launch_ms +
         rows * me_row_ops(cfg, active_refs) /
             (dev.tput.me_ops_per_ms * occupancy);
}

inline double int_rows_ms(const DeviceSpec& dev, const EncoderConfig& cfg,
                          int rows) {
  if (rows <= 0) return 0.0;
  return dev.tput.kernel_launch_ms +
         rows * int_row_pixels(cfg) / dev.tput.int_pix_per_ms;
}

inline double sme_rows_ms(const DeviceSpec& dev, const EncoderConfig& cfg,
                          int rows, int active_refs) {
  if (rows <= 0) return 0.0;
  return dev.tput.kernel_launch_ms +
         rows * sme_row_ops(cfg, active_refs) / dev.tput.sme_ops_per_ms;
}

inline double rstar_ms(const DeviceSpec& dev, const EncoderConfig& cfg) {
  return dev.tput.kernel_launch_ms +
         rstar_frame_pixels(cfg) / dev.tput.rstar_pix_per_ms;
}

}  // namespace feves
