// Deterministic stand-in for the uncontrolled performance events of Fig 7
// ("a sudden change in the system performance occurred, e.g. other processes
// started running"): on chosen frames, a device's effective compute
// throughput drops by a slowdown factor. The Performance Characterization
// sees only the resulting longer measured times and must recover within a
// frame, exactly as the paper demonstrates.
#pragma once

#include "common/check.hpp"

#include <vector>

namespace feves {

struct Perturbation {
  int device = 0;
  int frame_begin = 0;  ///< first affected frame (inclusive)
  int frame_end = 0;    ///< last affected frame (exclusive)
  double slowdown = 1.0;  ///< duration multiplier, > 1 slows the device
};

class PerturbationSchedule {
 public:
  PerturbationSchedule() = default;

  void add(const Perturbation& p) {
    FEVES_CHECK(p.slowdown > 0.0);
    FEVES_CHECK(p.frame_begin <= p.frame_end);
    events_.push_back(p);
  }

  /// Combined compute-duration multiplier for `device` on `frame`.
  double factor(int device, int frame) const {
    double f = 1.0;
    for (const Perturbation& p : events_) {
      if (p.device == device && frame >= p.frame_begin && frame < p.frame_end) {
        f *= p.slowdown;
      }
    }
    return f;
  }

  bool empty() const { return events_.empty(); }

 private:
  std::vector<Perturbation> events_;
};

}  // namespace feves
