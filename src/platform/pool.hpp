// Device-pool reservation: the mechanism under the encode service's fair-
// share policy. A `DevicePool` tracks which devices of one topology are
// currently reserved; `DeviceLease` is the RAII grant a session holds while
// one of its frames executes. The executors accept a lease through
// `ExecuteOptions` and refuse any op graph that touches a device outside it
// — so a scheduling bug in a tenant can never run work on another tenant's
// devices, it fails loudly instead.
//
// The pool is mechanism only: it has no notion of fairness, weights or
// admission. That policy lives in src/service/arbiter.hpp, which owns a
// DevicePool and decides *which* free devices each session is offered.
#pragma once

#include "common/check.hpp"

#include <condition_variable>
#include <mutex>
#include <optional>
#include <vector>

namespace feves {

class DevicePool;

/// RAII reservation of a device subset. Move-only; releases on destruction.
/// A default-constructed lease is inactive (covers nothing, releases
/// nothing) so it can be a cheap member/return-value placeholder.
class DeviceLease {
 public:
  DeviceLease() = default;
  ~DeviceLease() { release(); }
  DeviceLease(DeviceLease&& o) noexcept
      : pool_(o.pool_), mask_(std::move(o.mask_)) {
    o.pool_ = nullptr;
    o.mask_.clear();
  }
  DeviceLease& operator=(DeviceLease&& o) noexcept;
  DeviceLease(const DeviceLease&) = delete;
  DeviceLease& operator=(const DeviceLease&) = delete;

  /// Returns the reserved devices to the pool (idempotent).
  void release();

  bool active() const { return pool_ != nullptr; }
  const std::vector<bool>& mask() const { return mask_; }
  bool covers(int device) const {
    return device >= 0 && device < static_cast<int>(mask_.size()) &&
           mask_[static_cast<std::size_t>(device)];
  }
  int num_devices() const {
    int n = 0;
    for (bool b : mask_) n += b ? 1 : 0;
    return n;
  }

 private:
  friend class DevicePool;
  DeviceLease(DevicePool* pool, std::vector<bool> mask)
      : pool_(pool), mask_(std::move(mask)) {}
  DevicePool* pool_ = nullptr;
  std::vector<bool> mask_;
};

/// Thread-safe reservation ledger over `num_devices` devices. Reservations
/// are all-or-nothing: a request either takes every device in its mask or
/// none of them (no partial grants, no ordering hazards between two waiters
/// each holding half of the other's request).
class DevicePool {
 public:
  explicit DevicePool(int num_devices);

  // Leases point back at this pool; moving it would strand them.
  DevicePool(const DevicePool&) = delete;
  DevicePool& operator=(const DevicePool&) = delete;

  int num_devices() const { return static_cast<int>(reserved_.size()); }

  /// Blocks until every device in `mask` is free, then reserves them.
  DeviceLease reserve(const std::vector<bool>& mask);

  /// Non-blocking reserve: empty optional when any device in `mask` is
  /// already held.
  std::optional<DeviceLease> try_reserve(const std::vector<bool>& mask);

  /// Snapshot of the currently unreserved devices.
  std::vector<bool> free_mask() const;
  int num_free() const;

 private:
  friend class DeviceLease;
  void release(const std::vector<bool>& mask);
  bool all_free_locked(const std::vector<bool>& mask) const;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<bool> reserved_;
};

}  // namespace feves
