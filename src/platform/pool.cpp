#include "platform/pool.hpp"

namespace feves {

DeviceLease& DeviceLease::operator=(DeviceLease&& o) noexcept {
  if (this != &o) {
    release();
    pool_ = o.pool_;
    mask_ = std::move(o.mask_);
    o.pool_ = nullptr;
    o.mask_.clear();
  }
  return *this;
}

void DeviceLease::release() {
  if (pool_ != nullptr) pool_->release(mask_);
  pool_ = nullptr;
  mask_.clear();
}

DevicePool::DevicePool(int num_devices)
    : reserved_(static_cast<std::size_t>(num_devices), false) {
  FEVES_CHECK(num_devices >= 1);
}

bool DevicePool::all_free_locked(const std::vector<bool>& mask) const {
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i] && reserved_[i]) return false;
  }
  return true;
}

DeviceLease DevicePool::reserve(const std::vector<bool>& mask) {
  FEVES_CHECK(static_cast<int>(mask.size()) == num_devices());
  std::unique_lock lock(mu_);
  cv_.wait(lock, [&] { return all_free_locked(mask); });
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i]) reserved_[i] = true;
  }
  return DeviceLease(this, mask);
}

std::optional<DeviceLease> DevicePool::try_reserve(
    const std::vector<bool>& mask) {
  FEVES_CHECK(static_cast<int>(mask.size()) == num_devices());
  std::lock_guard lock(mu_);
  if (!all_free_locked(mask)) return std::nullopt;
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i]) reserved_[i] = true;
  }
  return DeviceLease(this, mask);
}

void DevicePool::release(const std::vector<bool>& mask) {
  {
    std::lock_guard lock(mu_);
    for (std::size_t i = 0; i < mask.size(); ++i) {
      if (!mask[i]) continue;
      FEVES_CHECK_MSG(reserved_[i], "double release of device " << i);
      reserved_[i] = false;
    }
  }
  cv_.notify_all();
}

std::vector<bool> DevicePool::free_mask() const {
  std::lock_guard lock(mu_);
  std::vector<bool> free(reserved_.size());
  for (std::size_t i = 0; i < reserved_.size(); ++i) free[i] = !reserved_[i];
  return free;
}

int DevicePool::num_free() const {
  std::lock_guard lock(mu_);
  int n = 0;
  for (bool r : reserved_) n += r ? 0 : 1;
  return n;
}

}  // namespace feves
