#include "platform/op_graph.hpp"

#include "common/timer.hpp"
#include "platform/pool.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <sstream>
#include <thread>

namespace feves {

namespace {

/// Maps (device, resource) to a serial execution lane. Single-copy-engine
/// devices fold H2D and D2H into one lane (the hardware has one DMA unit);
/// dual-copy devices get independent lanes per direction.
int lane_of(const PlatformTopology& topo, int device, OpResource res) {
  FEVES_CHECK(device >= 0 && device < topo.num_devices());
  const int base = device * 3;
  switch (res) {
    case OpResource::kCompute:
      return base + 0;
    case OpResource::kCopyH2D:
      return base + 1;
    case OpResource::kCopyD2H:
      return topo.devices[device].copy_engines == CopyEngines::kDual
                 ? base + 2
                 : base + 1;
  }
  return base;
}

/// Builds per-lane FIFO queues in op insertion order.
std::vector<std::vector<int>> build_lanes(const OpGraph& graph,
                                          const PlatformTopology& topo) {
  std::vector<std::vector<int>> lanes(
      static_cast<std::size_t>(topo.num_devices()) * 3);
  for (int i = 0; i < graph.size(); ++i) {
    const Op& op = graph.ops()[i];
    lanes[lane_of(topo, op.device, op.resource)].push_back(i);
  }
  return lanes;
}

/// Hangs are only meaningful with a watchdog to end them; fail loudly when
/// a schedule injects one into an executor that could never detect it.
/// Lease guard shared by both executors: the whole graph is vetted before
/// anything runs, so a grant violation can never leave a frame half-executed.
void validate_lease(const OpGraph& graph, const ExecuteOptions& opts) {
  if (opts.lease == nullptr) return;
  FEVES_CHECK_MSG(opts.lease->active(), "execution under an inactive lease");
  for (const Op& op : graph.ops()) {
    FEVES_CHECK_MSG(opts.lease->covers(op.device),
                    "op '" << op.label << "' targets device " << op.device
                           << " outside the session's device lease");
  }
}

void validate_fault_options(const ExecuteOptions& opts, bool real_mode) {
  bool any_hang = false;
  for (const auto& d : opts.faults.dev) any_hang |= d.hang;
  if (!any_hang) return;
  FEVES_CHECK_MSG(opts.watchdog_ms > 0.0,
                  "hang fault injected but the watchdog is disabled");
  if (real_mode) {
    FEVES_CHECK_MSG(opts.hang_sleep_ms > opts.watchdog_ms,
                    "injected hang must sleep past the watchdog deadline");
  }
}

/// Builds the ordered failure list from per-op terminal states.
void collect_failures(const OpGraph& graph,
                      const std::vector<std::string>& messages,
                      ExecutionResult* result) {
  for (int i = 0; i < graph.size(); ++i) {
    const OpStatus s = result->status[i];
    if (s != OpStatus::kFailed && s != OpStatus::kTimedOut) continue;
    const Op& op = graph.ops()[i];
    result->failures.push_back(
        {i, op.label, op.device, op.resource, s, messages[i]});
  }
}

void finish_makespan(ExecutionResult* result) {
  for (std::size_t i = 0; i < result->times.size(); ++i) {
    if (result->status[i] == OpStatus::kCancelled) continue;
    result->makespan_ms = std::max(result->makespan_ms, result->times[i].end_ms);
  }
}

obs::EventStatus event_status(OpStatus s) {
  switch (s) {
    case OpStatus::kOk:
      return obs::EventStatus::kOk;
    case OpStatus::kFailed:
      return obs::EventStatus::kFailed;
    case OpStatus::kTimedOut:
      return obs::EventStatus::kTimedOut;
    case OpStatus::kCancelled:
      return obs::EventStatus::kCancelled;
  }
  return obs::EventStatus::kFailed;
}

/// Trace lane within the device (0..2) — the same folding as lane_of, so
/// single-copy-engine devices show D2H traffic on their one copy track.
int trace_lane(const PlatformTopology& topo, int device, OpResource res) {
  return lane_of(topo, device, res) - device * 3;
}

obs::TraceEvent op_event(const PlatformTopology& topo,
                         const ExecuteOptions& opts, const Op& op,
                         const OpTimes& t, OpStatus s) {
  obs::TraceEvent e;
  e.set_name(op.label.c_str());
  e.kind = op.resource == OpResource::kCompute ? obs::EventKind::kKernel
                                               : obs::EventKind::kTransfer;
  e.frame = opts.trace_frame;
  e.device = op.device;
  e.lane = trace_lane(topo, op.device, op.resource);
  e.rows = op.rows;
  e.bytes = op.bytes;
  e.t_start_ms = t.start_ms;
  e.t_end_ms = t.end_ms;
  e.status = event_status(s);
  return e;
}

}  // namespace

const char* to_string(OpStatus status) {
  switch (status) {
    case OpStatus::kOk:
      return "ok";
    case OpStatus::kFailed:
      return "failed";
    case OpStatus::kTimedOut:
      return "timed-out";
    case OpStatus::kCancelled:
      return "cancelled";
  }
  return "?";
}

const char* resource_name(OpResource res) {
  switch (res) {
    case OpResource::kCompute:
      return "compute";
    case OpResource::kCopyH2D:
      return "copyH2D";
    case OpResource::kCopyD2H:
      return "copyD2H";
  }
  return "?";
}

std::vector<int> ExecutionResult::failed_devices() const {
  std::vector<int> out;
  for (const OpFailure& f : failures) out.push_back(f.device);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void ExecutionResult::throw_if_failed() const {
  if (failures.empty()) return;
  std::ostringstream os;
  os << failures.size() << " op(s) failed:";
  for (const OpFailure& f : failures) {
    os << " [op '" << f.label << "' on device " << f.device << " ("
       << resource_name(f.resource) << " lane): " << to_string(f.status);
    if (!f.message.empty()) os << " — " << f.message;
    os << ']';
  }
  throw Error(os.str());
}

ExecutionResult execute_virtual(const OpGraph& graph,
                                const PlatformTopology& topo,
                                const ExecuteOptions& opts) {
  topo.validate();
  validate_fault_options(opts, /*real_mode=*/false);
  validate_lease(graph, opts);
  ExecutionResult result;
  result.times.assign(graph.size(), OpTimes{});
  result.status.assign(graph.size(), OpStatus::kOk);
  if (graph.empty()) return result;

  auto lanes = build_lanes(graph, topo);
  std::vector<std::size_t> head(lanes.size(), 0);
  std::vector<double> lane_free(lanes.size(), 0.0);
  std::vector<bool> settled(graph.size(), false);
  std::vector<std::string> messages(graph.size());
  obs::WriterLease trace(opts.tracer);

  int remaining = graph.size();
  while (remaining > 0) {
    bool progressed = false;
    for (std::size_t lane = 0; lane < lanes.size(); ++lane) {
      while (head[lane] < lanes[lane].size()) {
        const int id = lanes[lane][head[lane]];
        const Op& op = graph.ops()[id];
        double ready = lane_free[lane];
        bool deps_settled = true;
        bool deps_ok = true;
        for (int d : op.deps) {
          if (!settled[d]) {
            deps_settled = false;
            break;
          }
          deps_ok &= result.status[d] == OpStatus::kOk;
          ready = std::max(ready, result.times[d].end_ms);
        }
        if (!deps_settled) break;  // FIFO: later ops in this lane must wait

        if (!deps_ok) {
          // A dependency did not complete: never run, consume no lane time.
          result.status[id] = OpStatus::kCancelled;
          result.times[id] = OpTimes{};
        } else {
          const FaultPlan::Action action =
              opts.faults.action(op.device, op.resource);
          if (action == FaultPlan::Action::kError) {
            result.status[id] = OpStatus::kFailed;
            result.times[id] = {ready, ready};
            messages[id] = "injected fault";
            lane_free[lane] = ready;
          } else if (action == FaultPlan::Action::kHang) {
            // Modelled as an op that never completes; the watchdog ends it.
            result.status[id] = OpStatus::kTimedOut;
            result.times[id] = {ready, ready + opts.watchdog_ms};
            messages[id] = "injected hang; watchdog fired";
            lane_free[lane] = result.times[id].end_ms;
          } else if (opts.watchdog_ms > 0.0 && op.virtual_ms > opts.watchdog_ms) {
            result.status[id] = OpStatus::kTimedOut;
            result.times[id] = {ready, ready + opts.watchdog_ms};
            messages[id] = "exceeded watchdog deadline";
            lane_free[lane] = result.times[id].end_ms;
          } else {
            result.times[id] = {ready, ready + op.virtual_ms};
            lane_free[lane] = result.times[id].end_ms;
          }
        }
        trace.emit(op_event(topo, opts, op, result.times[id],
                            result.status[id]));
        settled[id] = true;
        ++head[lane];
        --remaining;
        progressed = true;
      }
    }
    FEVES_CHECK_MSG(progressed,
                    "op graph deadlocked: circular dependency across lanes");
  }

  collect_failures(graph, messages, &result);
  finish_makespan(&result);
  return result;
}

ExecutionResult execute_real(const OpGraph& graph,
                             const PlatformTopology& topo,
                             const ExecuteOptions& opts) {
  topo.validate();
  validate_fault_options(opts, /*real_mode=*/true);
  validate_lease(graph, opts);
  ExecutionResult result;
  result.times.assign(graph.size(), OpTimes{});
  result.status.assign(graph.size(), OpStatus::kOk);
  if (graph.empty()) return result;

  auto lanes = build_lanes(graph, topo);
  std::vector<bool> settled(graph.size(), false);
  std::vector<std::string> messages(graph.size());
  std::mutex mutex;
  std::condition_variable cv;

  Timer clock;
  auto lane_worker = [&](const std::vector<int>& queue) {
    // One trace writer per lane worker: emission stays single-producer on
    // its ring even though every lane runs concurrently.
    obs::WriterLease trace(opts.tracer);
    for (int id : queue) {
      const Op& op = graph.ops()[id];
      bool deps_ok = true;
      {
        std::unique_lock lock(mutex);
        cv.wait(lock, [&] {
          for (int d : op.deps) {
            if (!settled[d]) return false;
          }
          return true;
        });
        for (int d : op.deps) {
          deps_ok &= result.status[d] == OpStatus::kOk;
        }
        if (!deps_ok) {
          // A dependency did not complete: cancel instead of running on
          // poisoned inputs, and keep draining this lane.
          result.status[id] = OpStatus::kCancelled;
          settled[id] = true;
          cv.notify_all();
          trace.emit(
              op_event(topo, opts, op, OpTimes{}, OpStatus::kCancelled));
          continue;
        }
      }

      const FaultPlan::Action action =
          opts.faults.action(op.device, op.resource);
      const double t0 = clock.elapsed_ms();
      OpStatus status = OpStatus::kOk;
      std::string message;
      if (action == FaultPlan::Action::kError) {
        status = OpStatus::kFailed;
        message = "injected fault";
      } else if (action == FaultPlan::Action::kHang) {
        // The hung op holds its lane past the watchdog deadline, then the
        // executor declares it dead; its (never produced) outputs stay
        // unusable, so dependents are cancelled.
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(opts.hang_sleep_ms));
        status = OpStatus::kTimedOut;
        message = "injected hang exceeded watchdog deadline";
      } else {
        if (op.work) {
          try {
            op.work();
          } catch (const std::exception& e) {
            status = OpStatus::kFailed;
            message = e.what();
          } catch (...) {
            status = OpStatus::kFailed;
            message = "unknown exception";
          }
        }
      }
      const double t1 = clock.elapsed_ms();
      if (status == OpStatus::kOk && opts.watchdog_ms > 0.0 &&
          t1 - t0 > opts.watchdog_ms) {
        status = OpStatus::kTimedOut;
        message = "exceeded watchdog deadline";
      }
      {
        std::lock_guard lock(mutex);
        result.times[id] = {t0, t1};
        result.status[id] = status;
        messages[id] = std::move(message);
        settled[id] = true;
      }
      cv.notify_all();
      trace.emit(op_event(topo, opts, op, OpTimes{t0, t1}, status));
    }
  };

  std::vector<std::thread> workers;
  for (const auto& queue : lanes) {
    if (!queue.empty()) workers.emplace_back(lane_worker, std::cref(queue));
  }
  for (auto& w : workers) w.join();

  collect_failures(graph, messages, &result);
  finish_makespan(&result);
  return result;
}

}  // namespace feves
