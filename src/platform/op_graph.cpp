#include "platform/op_graph.hpp"

#include "common/timer.hpp"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace feves {

namespace {

/// Maps (device, resource) to a serial execution lane. Single-copy-engine
/// devices fold H2D and D2H into one lane (the hardware has one DMA unit);
/// dual-copy devices get independent lanes per direction.
int lane_of(const PlatformTopology& topo, int device, OpResource res) {
  FEVES_CHECK(device >= 0 && device < topo.num_devices());
  const int base = device * 3;
  switch (res) {
    case OpResource::kCompute:
      return base + 0;
    case OpResource::kCopyH2D:
      return base + 1;
    case OpResource::kCopyD2H:
      return topo.devices[device].copy_engines == CopyEngines::kDual
                 ? base + 2
                 : base + 1;
  }
  return base;
}

/// Builds per-lane FIFO queues in op insertion order.
std::vector<std::vector<int>> build_lanes(const OpGraph& graph,
                                          const PlatformTopology& topo) {
  std::vector<std::vector<int>> lanes(
      static_cast<std::size_t>(topo.num_devices()) * 3);
  for (int i = 0; i < graph.size(); ++i) {
    const Op& op = graph.ops()[i];
    lanes[lane_of(topo, op.device, op.resource)].push_back(i);
  }
  return lanes;
}

}  // namespace

ExecutionResult execute_virtual(const OpGraph& graph,
                                const PlatformTopology& topo) {
  topo.validate();
  ExecutionResult result;
  result.times.assign(graph.size(), OpTimes{});
  if (graph.empty()) return result;

  auto lanes = build_lanes(graph, topo);
  std::vector<std::size_t> head(lanes.size(), 0);
  std::vector<double> lane_free(lanes.size(), 0.0);
  std::vector<bool> done(graph.size(), false);

  int remaining = graph.size();
  while (remaining > 0) {
    bool progressed = false;
    for (std::size_t lane = 0; lane < lanes.size(); ++lane) {
      while (head[lane] < lanes[lane].size()) {
        const int id = lanes[lane][head[lane]];
        const Op& op = graph.ops()[id];
        double ready = lane_free[lane];
        bool deps_done = true;
        for (int d : op.deps) {
          if (!done[d]) {
            deps_done = false;
            break;
          }
          ready = std::max(ready, result.times[d].end_ms);
        }
        if (!deps_done) break;  // FIFO: later ops in this lane must wait
        result.times[id].start_ms = ready;
        result.times[id].end_ms = ready + op.virtual_ms;
        lane_free[lane] = result.times[id].end_ms;
        done[id] = true;
        ++head[lane];
        --remaining;
        progressed = true;
      }
    }
    FEVES_CHECK_MSG(progressed,
                    "op graph deadlocked: circular dependency across lanes");
  }

  for (const OpTimes& t : result.times) {
    result.makespan_ms = std::max(result.makespan_ms, t.end_ms);
  }
  return result;
}

ExecutionResult execute_real(const OpGraph& graph,
                             const PlatformTopology& topo) {
  topo.validate();
  ExecutionResult result;
  result.times.assign(graph.size(), OpTimes{});
  if (graph.empty()) return result;

  auto lanes = build_lanes(graph, topo);
  std::vector<bool> done(graph.size(), false);
  std::mutex mutex;
  std::condition_variable cv;
  std::exception_ptr first_error;
  bool aborted = false;

  Timer clock;
  auto lane_worker = [&](const std::vector<int>& queue) {
    for (int id : queue) {
      const Op& op = graph.ops()[id];
      {
        std::unique_lock lock(mutex);
        cv.wait(lock, [&] {
          if (aborted) return true;
          for (int d : op.deps) {
            if (!done[d]) return false;
          }
          return true;
        });
        if (aborted) return;
      }
      const double t0 = clock.elapsed_ms();
      if (op.work) {
        try {
          op.work();
        } catch (...) {
          std::lock_guard lock(mutex);
          if (!first_error) first_error = std::current_exception();
          aborted = true;
          cv.notify_all();
          return;
        }
      }
      const double t1 = clock.elapsed_ms();
      {
        std::lock_guard lock(mutex);
        result.times[id] = {t0, t1};
        done[id] = true;
      }
      cv.notify_all();
    }
  };

  std::vector<std::thread> workers;
  for (const auto& queue : lanes) {
    if (!queue.empty()) workers.emplace_back(lane_worker, std::cref(queue));
  }
  for (auto& w : workers) w.join();
  if (first_error) std::rethrow_exception(first_error);

  for (const OpTimes& t : result.times) {
    result.makespan_ms = std::max(result.makespan_ms, t.end_ms);
  }
  return result;
}

}  // namespace feves
