// Deterministic device-fault injection — the robustness counterpart of
// PerturbationSchedule. Where a perturbation only stretches durations, a
// fault makes ops FAIL: a kernel raising an error, a DMA transfer failing,
// a device dropping off the bus entirely, or a kernel hanging past the
// executor's watchdog deadline. The same schedule drives both executors so
// virtual-mode degradation benches and real-mode bit-exactness tests see
// identical per-op outcomes, and repeated runs are exactly reproducible.
#pragma once

#include "common/check.hpp"
#include "platform/op_graph.hpp"

#include <limits>
#include <vector>

namespace feves {

/// Frame window end meaning "never recovers" (permanent device loss).
inline constexpr int kFaultForever = std::numeric_limits<int>::max();

enum class FaultKind {
  kKernelTransient,    ///< compute ops on the device error in the window
  kTransferTransient,  ///< copy-engine ops on the device error in the window
  kDeviceLoss,         ///< every op on the device errors in the window
  kHang,               ///< compute ops never complete; the watchdog fires
};

struct FaultEvent {
  int device = 0;
  int frame_begin = 0;           ///< first affected frame (inclusive)
  int frame_end = kFaultForever; ///< last affected frame (exclusive)
  FaultKind kind = FaultKind::kKernelTransient;
};

class FaultSchedule {
 public:
  FaultSchedule() = default;

  void add(const FaultEvent& e) {
    FEVES_CHECK(e.device >= 0);
    FEVES_CHECK(e.frame_begin <= e.frame_end);
    events_.push_back(e);
  }

  bool empty() const { return events_.empty(); }

  /// Snapshot of the faults active on `frame`, in the per-device form the
  /// executors consume. Pure function of (schedule, frame): repeated calls
  /// and repeated runs produce identical plans.
  FaultPlan plan(int frame, int num_devices) const {
    FaultPlan p;
    if (events_.empty()) return p;
    p.dev.assign(static_cast<std::size_t>(num_devices),
                 FaultPlan::DeviceFaults{});
    for (const FaultEvent& e : events_) {
      if (e.device >= num_devices) continue;
      if (frame < e.frame_begin || frame >= e.frame_end) continue;
      auto& d = p.dev[e.device];
      switch (e.kind) {
        case FaultKind::kKernelTransient:
          d.kernel_error = true;
          break;
        case FaultKind::kTransferTransient:
          d.transfer_error = true;
          break;
        case FaultKind::kDeviceLoss:
          d.lost = true;
          break;
        case FaultKind::kHang:
          d.hang = true;
          break;
      }
    }
    return p;
  }

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace feves
