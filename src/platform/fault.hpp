// Deterministic device-fault injection — the robustness counterpart of
// PerturbationSchedule. Where a perturbation only stretches durations, a
// fault makes ops FAIL: a kernel raising an error, a DMA transfer failing,
// a device dropping off the bus entirely, or a kernel hanging past the
// executor's watchdog deadline. The same schedule drives both executors so
// virtual-mode degradation benches and real-mode bit-exactness tests see
// identical per-op outcomes, and repeated runs are exactly reproducible.
#pragma once

#include "common/check.hpp"
#include "platform/op_graph.hpp"

#include <limits>
#include <vector>

namespace feves {

/// Frame window end meaning "never recovers" (permanent device loss).
inline constexpr int kFaultForever = std::numeric_limits<int>::max();

enum class FaultKind {
  kKernelTransient,    ///< compute ops on the device error in the window
  kTransferTransient,  ///< copy-engine ops on the device error in the window
  kDeviceLoss,         ///< every op on the device errors in the window
  kHang,               ///< compute ops never complete; the watchdog fires
};

struct FaultEvent {
  int device = 0;
  int frame_begin = 0;           ///< first affected frame (inclusive)
  int frame_end = kFaultForever; ///< last affected frame (exclusive)
  FaultKind kind = FaultKind::kKernelTransient;
};

class FaultSchedule {
 public:
  FaultSchedule() = default;

  void add(const FaultEvent& e) {
    FEVES_CHECK(e.device >= 0);
    FEVES_CHECK(e.frame_begin <= e.frame_end);
    events_.push_back(e);
  }

  bool empty() const { return events_.empty(); }

  /// Snapshot of the faults active on `frame`, in the per-device form the
  /// executors consume. Pure function of (schedule, frame): repeated calls
  /// and repeated runs produce identical plans.
  FaultPlan plan(int frame, int num_devices) const {
    FaultPlan p;
    if (events_.empty()) return p;
    p.dev.assign(static_cast<std::size_t>(num_devices),
                 FaultPlan::DeviceFaults{});
    for (const FaultEvent& e : events_) {
      if (e.device >= num_devices) continue;
      if (frame < e.frame_begin || frame >= e.frame_end) continue;
      auto& d = p.dev[e.device];
      switch (e.kind) {
        case FaultKind::kKernelTransient:
          d.kernel_error = true;
          break;
        case FaultKind::kTransferTransient:
          d.transfer_error = true;
          break;
        case FaultKind::kDeviceLoss:
          d.lost = true;
          break;
        case FaultKind::kHang:
          d.hang = true;
          break;
      }
    }
    return p;
  }

 private:
  std::vector<FaultEvent> events_;
};

// ---------------------------------------------------------------------------
// Node-level faults (the cluster tier's failure unit). Where a FaultEvent
// makes one device's ops fail, a NodeFaultEvent takes out a whole worker
// node: its RPCs, its heartbeats, or the node itself. Windows are measured
// in the node's own heartbeat clock — the loopback transport counts every
// heartbeat *attempt* (delivered or not), and the manager beats every node
// every tick, so window edges line up with manager ticks and a partition
// heals deterministically once enough beats have been attempted.

enum class NodeFaultKind {
  kCrash,          ///< node dies: queue and in-flight work lost, RPCs fail;
                   ///< a bounded window models an operator restart
  kHang,           ///< RPCs are received but never answered in time, and the
                   ///< node's executor stalls — work resumes after the
                   ///< window as a zombie (late replies must be fenced)
  kPartition,      ///< no RPC or heartbeat crosses; work continues and its
                   ///< replies buffer node-side until the partition heals
  kHeartbeatLoss,  ///< only heartbeats are lost: work RPCs and completions
                   ///< still flow, so a false-positive death declaration
                   ///< exercises epoch fencing against a healthy node
};

const char* to_string(NodeFaultKind kind);

struct NodeFaultEvent {
  int node = 0;
  int beat_begin = 0;            ///< first affected heartbeat (inclusive)
  int beat_end = kFaultForever;  ///< last affected heartbeat (exclusive)
  NodeFaultKind kind = NodeFaultKind::kCrash;
};

/// What is wrong with one node at one heartbeat instant.
struct NodeFaultState {
  bool crashed = false;
  bool hang = false;
  bool partitioned = false;
  bool heartbeat_loss = false;

  bool any() const { return crashed || hang || partitioned || heartbeat_loss; }
};

/// Deterministic node-fault schedule: the cluster-tier mirror of
/// FaultSchedule. Pure function of (schedule, beat) so chaos runs replay
/// exactly from their seed.
class NodeFaultSchedule {
 public:
  NodeFaultSchedule() = default;

  void add(const NodeFaultEvent& e) {
    FEVES_CHECK(e.node >= 0);
    FEVES_CHECK(e.beat_begin <= e.beat_end);
    events_.push_back(e);
  }

  bool empty() const { return events_.empty(); }

  NodeFaultState at(int node, int beat) const {
    NodeFaultState s;
    for (const NodeFaultEvent& e : events_) {
      if (e.node != node) continue;
      if (beat < e.beat_begin || beat >= e.beat_end) continue;
      switch (e.kind) {
        case NodeFaultKind::kCrash: s.crashed = true; break;
        case NodeFaultKind::kHang: s.hang = true; break;
        case NodeFaultKind::kPartition: s.partitioned = true; break;
        case NodeFaultKind::kHeartbeatLoss: s.heartbeat_loss = true; break;
      }
    }
    return s;
  }

 private:
  std::vector<NodeFaultEvent> events_;
};

inline const char* to_string(NodeFaultKind kind) {
  switch (kind) {
    case NodeFaultKind::kCrash: return "crash";
    case NodeFaultKind::kHang: return "hang";
    case NodeFaultKind::kPartition: return "partition";
    case NodeFaultKind::kHeartbeatLoss: return "heartbeat-loss";
  }
  return "?";
}

}  // namespace feves
