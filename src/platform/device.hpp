// Heterogeneous platform description (Fig 3 of the paper): a host multicore
// CPU plus a set of accelerators behind asymmetric interconnect links, each
// with one or two copy engines that bound how much communication can overlap
// with kernel execution.
//
// Hardware substitution (see DESIGN.md §1): real CUDA devices are replaced
// by device *descriptions* whose per-module throughputs and link bandwidths
// are calibrated to the paper's testbed. The scheduler only ever consumed
// measured times per MB row — it does so here too, fed either by the
// discrete-event executor (virtual mode) or by host threads running the
// actual kernels (real mode).
#pragma once

#include "common/check.hpp"
#include "common/config.hpp"
#include "common/types.hpp"

#include <string>
#include <vector>

namespace feves {

enum class DeviceKind {
  kCpu,          ///< the host multicore (no transfers needed)
  kAccelerator,  ///< GPU-like device behind an interconnect link
};

/// Number of DMA engines: single overlaps kernels with transfers in one
/// direction at a time; dual also overlaps H2D with D2H (paper Sec. III-A).
enum class CopyEngines { kSingle = 1, kDual = 2 };

/// Virtual-mode per-module processing rates. Units are "work units per
/// millisecond" where the work unit is module-specific (see the cost
/// functions in perf_model.hpp). Calibrated per device preset.
struct ThroughputModel {
  double me_ops_per_ms = 1.0;     ///< ME candidate-pixel comparisons / ms
  double int_pix_per_ms = 1.0;    ///< interpolated output samples / ms
  double sme_ops_per_ms = 1.0;    ///< SME candidate-pixel comparisons / ms
  double rstar_pix_per_ms = 1.0;  ///< R* processed pixels / ms
  double kernel_launch_ms = 0.0;  ///< fixed overhead per kernel invocation

  /// GPU occupancy knee for the ME kernel, in search candidates per MB:
  /// effective throughput = me_ops_per_ms * cands / (cands + knee). Small
  /// search areas under-occupy wide devices, so ME cost grows sub-
  /// quadratically with the SA edge (the paper's Fig 6(a) GPU curves fall
  /// by ~3x, not 4x, per SA step). 0 disables the effect (CPUs).
  double me_occupancy_cands = 0.0;
};

/// Interconnect link model for accelerators: latency plus direction-specific
/// bandwidth (PCIe is asymmetric in practice; Algorithm 2 carries separate
/// K^{*hd} and K^{*dh} parameters for exactly this reason).
struct LinkModel {
  double latency_ms = 0.0;
  double h2d_bytes_per_ms = 1.0;
  double d2h_bytes_per_ms = 1.0;

  double h2d_ms(double bytes) const {
    return latency_ms + bytes / h2d_bytes_per_ms;
  }
  double d2h_ms(double bytes) const {
    return latency_ms + bytes / d2h_bytes_per_ms;
  }
};

struct DeviceSpec {
  std::string name;
  DeviceKind kind = DeviceKind::kCpu;
  int parallel_units = 1;  ///< CPU cores / a coarse SM-count stand-in
  CopyEngines copy_engines = CopyEngines::kSingle;
  ThroughputModel tput;
  LinkModel link;  ///< meaningful only for accelerators

  bool is_accelerator() const { return kind == DeviceKind::kAccelerator; }
};

/// The machine: device 0..n-1. By convention the CPU (if present) comes
/// first; any device may host the R* modules (GPU-centric vs CPU-centric
/// operation, paper Sec. III-B).
struct PlatformTopology {
  std::vector<DeviceSpec> devices;

  int num_devices() const { return static_cast<int>(devices.size()); }
  int num_accelerators() const {
    int n = 0;
    for (const auto& d : devices) n += d.is_accelerator() ? 1 : 0;
    return n;
  }
  int cpu_index() const {
    for (int i = 0; i < num_devices(); ++i) {
      if (!devices[i].is_accelerator()) return i;
    }
    return -1;
  }
  void validate() const {
    FEVES_CHECK_MSG(!devices.empty(), "topology has no devices");
    for (const auto& d : devices) {
      FEVES_CHECK_MSG(d.parallel_units >= 1, "device with no parallel units");
      if (d.is_accelerator()) {
        FEVES_CHECK_MSG(d.link.h2d_bytes_per_ms > 0 &&
                            d.link.d2h_bytes_per_ms > 0,
                        "accelerator " << d.name << " has no link bandwidth");
      }
    }
  }
};

}  // namespace feves
