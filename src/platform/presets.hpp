// Device presets calibrated to the paper's testbed (Sec. IV): Intel Nehalem
// i7 950 (CPU_N), Intel Haswell i7 4770K (CPU_H), NVIDIA Fermi GTX 580
// (GPU_F) and Kepler GTX 780 Ti (GPU_K), and the three evaluated systems
// SysNF, SysNFF and SysHK.
//
// Calibration targets only SINGLE-DEVICE behaviour quoted in Fig 6:
//   * CPU_H ~ 1.7x CPU_N, GPU_K ~ 2x GPU_F;
//   * both GPUs clear 25 fps at 32x32 SA / 1 RF, CPUs do not;
//   * module shares per [4]: ME+INT+SME ~ 90% of inter-loop time.
// Combined-system numbers (SysHK ~ 1.3x GPU_K, SysNFF up to 2.2x GPU_F and
// 5x CPU_N) are NOT calibrated — they must emerge from the load balancer,
// which is the point of the reproduction.
#pragma once

#include "platform/device.hpp"

#include <vector>

namespace feves {

DeviceSpec preset_cpu_nehalem();   ///< CPU_N: quad-core i7 950
DeviceSpec preset_cpu_haswell();   ///< CPU_H: quad-core i7 4770K
DeviceSpec preset_gpu_fermi();     ///< GPU_F: GTX 580, single copy engine
DeviceSpec preset_gpu_kepler();    ///< GPU_K: GTX 780 Ti, single copy engine
DeviceSpec preset_gpu_kepler_dual();  ///< GPU_K variant with dual copy engines

PlatformTopology make_sys_nf();   ///< CPU_N + GPU_F
PlatformTopology make_sys_nff();  ///< CPU_N + 2x GPU_F
PlatformTopology make_sys_hk();   ///< CPU_H + GPU_K

/// Serving pool for the multi-session encode service: CPU_H plus
/// `num_gpus` GPU_K cards (think a dense 8+-GPU encode box). A single
/// session saturates well before it can use this many devices (the
/// per-accelerator whole-frame RF broadcast and the serial R* block bound
/// its scaling), which is exactly what makes sharding the pool across
/// sessions pay — the regime bench/ext_service_throughput measures.
PlatformTopology make_pool(int num_gpus);
PlatformTopology make_pool_big();  ///< make_pool(23): the "big" preset

/// Single-device topologies (baseline columns of Fig 6).
PlatformTopology make_single(const DeviceSpec& dev);

/// Looks up a named preset system: "CPU_N", "CPU_H", "GPU_F", "GPU_K",
/// "SysNF", "SysNFF", "SysHK", "PoolBig". Throws on unknown names.
PlatformTopology topology_by_name(const std::string& name);

/// Names of all seven configurations in the order Fig 6 plots them.
const std::vector<std::string>& all_config_names();

}  // namespace feves
