#include "platform/presets.hpp"

namespace feves {

namespace {

/// Scales every throughput of `t` by `f` (used for the 1.7x / 2x families).
ThroughputModel scaled(const ThroughputModel& t, double f) {
  ThroughputModel out = t;
  out.me_ops_per_ms *= f;
  out.int_pix_per_ms *= f;
  out.sme_ops_per_ms *= f;
  out.rstar_pix_per_ms *= f;
  return out;
}

/// Baseline: Nehalem quad-core at 1080p/32x32/1RF lands near 9 fps with the
/// paper's module shares (ME ~75 ms, SME ~20 ms, INT ~6 ms, R* ~9 ms).
const ThroughputModel kNehalemTput = {
    /*me_ops_per_ms=*/2.85e7,
    /*int_pix_per_ms=*/5.6e6,
    /*sme_ops_per_ms=*/1.83e7,
    /*rstar_pix_per_ms=*/3.5e5,
    /*kernel_launch_ms=*/0.02,
};

/// Fermi GTX 580: ~26 fps at the same settings (clears real-time, Fig 6a).
/// The ME rate is the saturated (large-SA) throughput; with the occupancy
/// knee of 500 candidates, the effective rate at a 32x32 SA (1024
/// candidates) is 0.672x of it — calibrated so the 32x32 fps matches the
/// paper while larger SAs scale sub-quadratically like its GPU curves.
const ThroughputModel kFermiTput = {
    /*me_ops_per_ms=*/1.22e8,
    /*int_pix_per_ms=*/1.5e7,
    /*sme_ops_per_ms=*/5.6e7,
    /*rstar_pix_per_ms=*/8.9e5,
    /*kernel_launch_ms=*/0.05,
    /*me_occupancy_cands=*/500.0,
};

}  // namespace

DeviceSpec preset_cpu_nehalem() {
  DeviceSpec d;
  d.name = "CPU_N";
  d.kind = DeviceKind::kCpu;
  d.parallel_units = 4;
  d.tput = kNehalemTput;
  return d;
}

DeviceSpec preset_cpu_haswell() {
  DeviceSpec d;
  d.name = "CPU_H";
  d.kind = DeviceKind::kCpu;
  d.parallel_units = 4;
  // "encoding on multi-core CPU_H is about 1.7 times faster than on CPU_N"
  // (Sec. IV) — wider AVX2 units at similar core count.
  d.tput = scaled(kNehalemTput, 1.7);
  return d;
}

DeviceSpec preset_gpu_fermi() {
  DeviceSpec d;
  d.name = "GPU_F";
  d.kind = DeviceKind::kAccelerator;
  d.parallel_units = 16;  // SM count stand-in
  d.copy_engines = CopyEngines::kSingle;
  d.tput = kFermiTput;
  // PCIe 2.0 x16: ~6 GB/s effective, slightly asymmetric.
  d.link = {/*latency_ms=*/0.02, /*h2d=*/6.0e6, /*d2h=*/6.4e6};
  return d;
}

DeviceSpec preset_gpu_kepler() {
  DeviceSpec d;
  d.name = "GPU_K";
  d.kind = DeviceKind::kAccelerator;
  d.parallel_units = 15;
  d.copy_engines = CopyEngines::kSingle;
  // "GPU_K outperforms GPU_F for almost 2 times" (Sec. IV).
  d.tput = scaled(kFermiTput, 2.0);
  d.tput.kernel_launch_ms = 0.03;
  // PCIe 3.0 x16: ~11-12 GB/s effective.
  d.link = {/*latency_ms=*/0.015, /*h2d=*/1.1e7, /*d2h=*/1.2e7};
  return d;
}

DeviceSpec preset_gpu_kepler_dual() {
  DeviceSpec d = preset_gpu_kepler();
  d.name = "GPU_K_dual";
  d.copy_engines = CopyEngines::kDual;
  return d;
}

PlatformTopology make_sys_nf() {
  PlatformTopology t;
  t.devices = {preset_cpu_nehalem(), preset_gpu_fermi()};
  return t;
}

PlatformTopology make_sys_nff() {
  PlatformTopology t;
  DeviceSpec f2 = preset_gpu_fermi();
  f2.name = "GPU_F#2";
  t.devices = {preset_cpu_nehalem(), preset_gpu_fermi(), f2};
  return t;
}

PlatformTopology make_sys_hk() {
  PlatformTopology t;
  t.devices = {preset_cpu_haswell(), preset_gpu_kepler()};
  return t;
}

PlatformTopology make_pool(int num_gpus) {
  FEVES_CHECK(num_gpus >= 1);
  PlatformTopology t;
  t.devices.push_back(preset_cpu_haswell());
  for (int g = 0; g < num_gpus; ++g) {
    DeviceSpec k = preset_gpu_kepler();
    if (g > 0) k.name = "GPU_K#" + std::to_string(g + 1);
    t.devices.push_back(k);
  }
  return t;
}

PlatformTopology make_pool_big() { return make_pool(23); }

PlatformTopology make_single(const DeviceSpec& dev) {
  PlatformTopology t;
  t.devices = {dev};
  return t;
}

PlatformTopology topology_by_name(const std::string& name) {
  if (name == "CPU_N") return make_single(preset_cpu_nehalem());
  if (name == "CPU_H") return make_single(preset_cpu_haswell());
  if (name == "GPU_F") return make_single(preset_gpu_fermi());
  if (name == "GPU_K") return make_single(preset_gpu_kepler());
  if (name == "SysNF") return make_sys_nf();
  if (name == "SysNFF") return make_sys_nff();
  if (name == "SysHK") return make_sys_hk();
  if (name == "PoolBig") return make_pool_big();
  FEVES_CHECK_MSG(false, "unknown topology preset: " << name);
  return {};
}

const std::vector<std::string>& all_config_names() {
  static const std::vector<std::string> names = {
      "CPU_N", "CPU_H", "GPU_F", "GPU_K", "SysNF", "SysNFF", "SysHK"};
  return names;
}

}  // namespace feves
