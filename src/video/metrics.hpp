// Objective quality metrics used by tests and examples to validate that the
// collaborative encoder reconstructs frames at the quality the single-device
// reference achieves (they must in fact be bit-exact; PSNR/SSIM quantify the
// encode quality itself against the source).
#pragma once

#include "video/frame.hpp"

namespace feves {

/// Mean squared error over the interior of two equally sized planes.
double plane_mse(const PlaneU8& a, const PlaneU8& b);

/// Peak signal-to-noise ratio in dB; returns +inf for identical planes.
double plane_psnr(const PlaneU8& a, const PlaneU8& b);

/// Luma PSNR of two frames.
double frame_psnr_y(const Frame420& a, const Frame420& b);

/// Structural similarity (global, 8x8 windows, standard constants).
double plane_ssim(const PlaneU8& a, const PlaneU8& b);

/// True if every pixel of every plane matches.
bool frames_bit_exact(const Frame420& a, const Frame420& b);

}  // namespace feves
