// Video sources. `SyntheticSequence` procedurally generates deterministic
// scenes (textured background with global pan, translating objects, sensor
// noise) that stand in for the paper's 1080p test clips; `YuvFileSequence`
// reads raw planar I420 footage. Both implement `VideoSource`.
#pragma once

#include "common/rng.hpp"
#include "video/frame.hpp"

#include <memory>
#include <string>
#include <vector>

namespace feves {

/// Abstract pull-based source of frames in display order.
class VideoSource {
 public:
  virtual ~VideoSource() = default;

  virtual int width() const = 0;
  virtual int height() const = 0;
  /// Total frames available; < 0 means unbounded.
  virtual int frame_count() const = 0;

  /// Fills `out` (already sized width x height) with frame `index`.
  /// Returns false when `index` is past the end of the source.
  virtual bool read_frame(int index, Frame420& out) = 0;
};

/// Scene style for the synthetic generator.
enum class SceneKind {
  /// Slow global pan over a textured background with a few moving objects —
  /// stands in for "Toys and Calendar" (mostly smooth, small motion).
  kCalendar,
  /// Fast, independently moving objects with larger displacements — stands
  /// in for "Rolling Tomatoes".
  kRollingObjects,
  /// Pure noise; worst case for prediction, exercises high-residual paths.
  kNoise,
};

struct SyntheticConfig {
  int width = 352;
  int height = 288;
  int frames = 30;
  SceneKind kind = SceneKind::kRollingObjects;
  u64 seed = 1234;
  int num_objects = 6;
  double max_object_speed = 6.0;  ///< pixels per frame
  double global_pan_speed = 1.0;  ///< pixels per frame
  double noise_stddev = 1.5;      ///< additive Gaussian sensor noise
};

class SyntheticSequence final : public VideoSource {
 public:
  explicit SyntheticSequence(const SyntheticConfig& cfg);

  int width() const override { return cfg_.width; }
  int height() const override { return cfg_.height; }
  int frame_count() const override { return cfg_.frames; }
  bool read_frame(int index, Frame420& out) override;

 private:
  struct Object {
    double x, y;       // position of the centre at frame 0
    double vx, vy;     // velocity, pixels/frame
    int w, h;          // size
    u8 luma;           // base brightness
    u8 cb, cr;         // chroma
    int texture_seed;  // per-object texture pattern
  };

  SyntheticConfig cfg_;
  std::vector<Object> objects_;
};

/// Raw planar I420 (YUV 4:2:0) file reader.
class YuvFileSequence final : public VideoSource {
 public:
  YuvFileSequence(std::string path, int width, int height);

  int width() const override { return width_; }
  int height() const override { return height_; }
  int frame_count() const override { return frame_count_; }
  bool read_frame(int index, Frame420& out) override;

 private:
  std::string path_;
  int width_;
  int height_;
  int frame_count_;
};

/// Writes a frame to an open raw I420 stream (appends Y, U, V planes).
void append_yuv(const Frame420& frame, const std::string& path);

}  // namespace feves
