#include "video/sequence.hpp"

#include "common/check.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

namespace feves {

namespace {

u8 clamp_u8(double v) {
  return static_cast<u8>(std::clamp(v, 0.0, 255.0));
}

/// Cheap value-noise texture: smooth, band-limited pattern so motion
/// estimation has real gradients to lock onto (pure random noise would make
/// every SAD candidate equally bad and hide ME bugs).
double texture(int x, int y, int seed) {
  u64 s = static_cast<u64>(seed) * 0x9E3779B97F4A7C15ull;
  const double a = std::sin((x + static_cast<double>(s % 97)) * 0.093) *
                   std::cos((y + static_cast<double>(s % 131)) * 0.081);
  const double b = std::sin((x * 0.031 + y * 0.047) +
                            static_cast<double>(s % 17));
  return 24.0 * a + 14.0 * b;
}

}  // namespace

SyntheticSequence::SyntheticSequence(const SyntheticConfig& cfg) : cfg_(cfg) {
  FEVES_CHECK(cfg.width > 0 && cfg.width % 2 == 0);
  FEVES_CHECK(cfg.height > 0 && cfg.height % 2 == 0);
  Rng rng(cfg.seed);
  const double speed = cfg.kind == SceneKind::kCalendar
                           ? std::min(cfg.max_object_speed, 2.0)
                           : cfg.max_object_speed;
  objects_.reserve(cfg.num_objects);
  for (int i = 0; i < cfg.num_objects; ++i) {
    Object o;
    o.x = rng.uniform_real(0.0, static_cast<double>(cfg.width));
    o.y = rng.uniform_real(0.0, static_cast<double>(cfg.height));
    o.vx = rng.uniform_real(-speed, speed);
    o.vy = rng.uniform_real(-speed, speed);
    o.w = static_cast<int>(rng.uniform_int(24, std::max(25, cfg.width / 5)));
    o.h = static_cast<int>(rng.uniform_int(24, std::max(25, cfg.height / 5)));
    o.luma = static_cast<u8>(rng.uniform_int(60, 220));
    o.cb = static_cast<u8>(rng.uniform_int(64, 192));
    o.cr = static_cast<u8>(rng.uniform_int(64, 192));
    o.texture_seed = static_cast<int>(rng.uniform_int(1, 1 << 20));
    objects_.push_back(o);
  }
}

bool SyntheticSequence::read_frame(int index, Frame420& out) {
  if (index < 0 || (cfg_.frames >= 0 && index >= cfg_.frames)) return false;
  FEVES_CHECK(out.width() == cfg_.width && out.height() == cfg_.height);

  const double t = static_cast<double>(index);
  const double pan_x =
      cfg_.kind == SceneKind::kCalendar ? cfg_.global_pan_speed * t : 0.3 * t;
  const double pan_y = cfg_.kind == SceneKind::kCalendar ? 0.4 * t : 0.0;

  auto yv = out.y.view();
  // Background: panned texture.
  for (int y = 0; y < cfg_.height; ++y) {
    u8* row = yv.row(y);
    for (int x = 0; x < cfg_.width; ++x) {
      const int sx = x + static_cast<int>(std::lround(pan_x));
      const int sy = y + static_cast<int>(std::lround(pan_y));
      row[x] = clamp_u8(128.0 + texture(sx, sy, 7));
    }
  }
  auto uv = out.u.view();
  auto vv = out.v.view();
  for (int y = 0; y < cfg_.height / 2; ++y) {
    u8* ru = uv.row(y);
    u8* rv = vv.row(y);
    for (int x = 0; x < cfg_.width / 2; ++x) {
      ru[x] = clamp_u8(118.0 + 0.25 * texture(x * 2, y * 2, 11));
      rv[x] = clamp_u8(138.0 + 0.25 * texture(x * 2, y * 2, 13));
    }
  }

  if (cfg_.kind != SceneKind::kNoise) {
    // Foreground objects translate with wrap-around so content never leaves.
    for (const Object& o : objects_) {
      const double cx =
          std::fmod(o.x + o.vx * t + 4.0 * cfg_.width, cfg_.width);
      const double cy =
          std::fmod(o.y + o.vy * t + 4.0 * cfg_.height, cfg_.height);
      const int x0 = static_cast<int>(std::lround(cx)) - o.w / 2;
      const int y0 = static_cast<int>(std::lround(cy)) - o.h / 2;
      for (int dy = 0; dy < o.h; ++dy) {
        const int y = y0 + dy;
        if (y < 0 || y >= cfg_.height) continue;
        u8* row = yv.row(y);
        for (int dx = 0; dx < o.w; ++dx) {
          const int x = x0 + dx;
          if (x < 0 || x >= cfg_.width) continue;
          row[x] = clamp_u8(o.luma + texture(dx, dy, o.texture_seed));
          if ((y & 1) == 0 && (x & 1) == 0) {
            uv.row(y / 2)[x / 2] = o.cb;
            vv.row(y / 2)[x / 2] = o.cr;
          }
        }
      }
    }
  }

  if (cfg_.noise_stddev > 0.0 || cfg_.kind == SceneKind::kNoise) {
    const double sd =
        cfg_.kind == SceneKind::kNoise ? 40.0 : cfg_.noise_stddev;
    Rng noise(cfg_.seed ^ (0xABCDull + static_cast<u64>(index) * 0x9E37ull));
    for (int y = 0; y < cfg_.height; ++y) {
      u8* row = yv.row(y);
      for (int x = 0; x < cfg_.width; ++x) {
        row[x] = clamp_u8(row[x] + noise.gaussian(0.0, sd));
      }
    }
  }

  out.extend_borders();
  return true;
}

YuvFileSequence::YuvFileSequence(std::string path, int width, int height)
    : path_(std::move(path)), width_(width), height_(height) {
  FEVES_CHECK(width > 0 && width % 2 == 0 && height > 0 && height % 2 == 0);
  std::ifstream in(path_, std::ios::binary | std::ios::ate);
  FEVES_CHECK_MSG(in.good(), "cannot open YUV file " << path_);
  const auto bytes = static_cast<u64>(in.tellg());
  const u64 frame_bytes =
      static_cast<u64>(width) * height * 3 / 2;  // I420: 1.5 bytes/pixel
  frame_count_ = static_cast<int>(bytes / frame_bytes);
}

bool YuvFileSequence::read_frame(int index, Frame420& out) {
  if (index < 0 || index >= frame_count_) return false;
  FEVES_CHECK(out.width() == width_ && out.height() == height_);
  std::ifstream in(path_, std::ios::binary);
  FEVES_CHECK_MSG(in.good(), "cannot open YUV file " << path_);
  const u64 frame_bytes = static_cast<u64>(width_) * height_ * 3 / 2;
  in.seekg(static_cast<std::streamoff>(frame_bytes * static_cast<u64>(index)));

  auto read_plane = [&in](PlaneU8& p) {
    for (int y = 0; y < p.height(); ++y) {
      in.read(reinterpret_cast<char*>(p.row(y)), p.width());
    }
  };
  read_plane(out.y);
  read_plane(out.u);
  read_plane(out.v);
  FEVES_CHECK_MSG(in.good(), "short read from " << path_);
  out.extend_borders();
  return true;
}

void append_yuv(const Frame420& frame, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  FEVES_CHECK_MSG(out.good(), "cannot open " << path << " for append");
  auto write_plane = [&out](const PlaneU8& p) {
    for (int y = 0; y < p.height(); ++y) {
      out.write(reinterpret_cast<const char*>(p.row(y)), p.width());
    }
  };
  write_plane(frame.y);
  write_plane(frame.u);
  write_plane(frame.v);
}

}  // namespace feves
