#include "video/metrics.hpp"

#include "common/check.hpp"

#include <cmath>
#include <cstring>
#include <limits>

namespace feves {

double plane_mse(const PlaneU8& a, const PlaneU8& b) {
  FEVES_CHECK(a.width() == b.width() && a.height() == b.height());
  if (a.width() == 0 || a.height() == 0) return 0.0;
  u64 acc = 0;
  for (int y = 0; y < a.height(); ++y) {
    const u8* ra = a.row(y);
    const u8* rb = b.row(y);
    for (int x = 0; x < a.width(); ++x) {
      const int d = static_cast<int>(ra[x]) - static_cast<int>(rb[x]);
      acc += static_cast<u64>(d * d);
    }
  }
  return static_cast<double>(acc) /
         (static_cast<double>(a.width()) * a.height());
}

double plane_psnr(const PlaneU8& a, const PlaneU8& b) {
  const double mse = plane_mse(a, b);
  if (mse == 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

double frame_psnr_y(const Frame420& a, const Frame420& b) {
  return plane_psnr(a.y, b.y);
}

double plane_ssim(const PlaneU8& a, const PlaneU8& b) {
  FEVES_CHECK(a.width() == b.width() && a.height() == b.height());
  constexpr int kWin = 8;
  constexpr double c1 = 6.5025;   // (0.01 * 255)^2
  constexpr double c2 = 58.5225;  // (0.03 * 255)^2
  double total = 0.0;
  int windows = 0;
  for (int y0 = 0; y0 + kWin <= a.height(); y0 += kWin) {
    for (int x0 = 0; x0 + kWin <= a.width(); x0 += kWin) {
      double sa = 0, sb = 0, saa = 0, sbb = 0, sab = 0;
      for (int y = y0; y < y0 + kWin; ++y) {
        const u8* ra = a.row(y);
        const u8* rb = b.row(y);
        for (int x = x0; x < x0 + kWin; ++x) {
          const double pa = ra[x];
          const double pb = rb[x];
          sa += pa;
          sb += pb;
          saa += pa * pa;
          sbb += pb * pb;
          sab += pa * pb;
        }
      }
      const double n = kWin * kWin;
      const double mu_a = sa / n;
      const double mu_b = sb / n;
      const double var_a = saa / n - mu_a * mu_a;
      const double var_b = sbb / n - mu_b * mu_b;
      const double cov = sab / n - mu_a * mu_b;
      const double s = ((2 * mu_a * mu_b + c1) * (2 * cov + c2)) /
                       ((mu_a * mu_a + mu_b * mu_b + c1) * (var_a + var_b + c2));
      total += s;
      ++windows;
    }
  }
  return windows > 0 ? total / windows : 1.0;
}

bool frames_bit_exact(const Frame420& a, const Frame420& b) {
  if (!a.same_geometry(b) && (a.width() != b.width() || a.height() != b.height()))
    return false;
  auto planes_equal = [](const PlaneU8& pa, const PlaneU8& pb) {
    if (pa.width() != pb.width() || pa.height() != pb.height()) return false;
    for (int y = 0; y < pa.height(); ++y) {
      if (std::memcmp(pa.row(y), pb.row(y),
                      static_cast<std::size_t>(pa.width())) != 0)
        return false;
    }
    return true;
  };
  return planes_equal(a.y, b.y) && planes_equal(a.u, b.u) &&
         planes_equal(a.v, b.v);
}

}  // namespace feves
