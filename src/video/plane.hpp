// Pixel plane with an owned, aligned allocation and a replicated border.
// The border serves two consumers: full-search ME probing candidates that
// extend past the frame edge, and the 6-tap interpolation filter that reads
// up to 3 samples beyond either side.
#pragma once

#include "common/aligned.hpp"
#include "common/check.hpp"
#include "common/span2d.hpp"
#include "common/types.hpp"

#include <algorithm>
#include <cstring>

namespace feves {

template <typename T>
class Plane {
 public:
  Plane() = default;

  Plane(int width, int height, int border = 0)
      : width_(width), height_(height), border_(border) {
    FEVES_CHECK(width >= 0 && height >= 0 && border >= 0);
    stride_ = round_up(width + 2 * border, static_cast<int>(kBufferAlign));
    data_.assign(static_cast<std::size_t>(stride_) * (height + 2 * border),
                 T{});
  }

  int width() const { return width_; }
  int height() const { return height_; }
  int border() const { return border_; }
  std::ptrdiff_t stride() const { return stride_; }

  /// Pointer to pixel (0,0) of the interior (border excluded).
  T* origin() {
    return data_.data() + static_cast<std::ptrdiff_t>(border_) * stride_ +
           border_;
  }
  const T* origin() const {
    return data_.data() + static_cast<std::ptrdiff_t>(border_) * stride_ +
           border_;
  }

  /// Interior view; (y,x) addressing with y in [0,height).
  Span2D<T> view() { return {origin(), width_, height_, stride_}; }
  Span2D<const T> view() const { return {origin(), width_, height_, stride_}; }

  /// Row pointer that may legally be offset into the border by up to
  /// border() pixels in either direction.
  T* row(int y) { return origin() + static_cast<std::ptrdiff_t>(y) * stride_; }
  const T* row(int y) const {
    return origin() + static_cast<std::ptrdiff_t>(y) * stride_;
  }

  T& at(int y, int x) {
    FEVES_CHECK(y >= -border_ && y < height_ + border_);
    FEVES_CHECK(x >= -border_ && x < width_ + border_);
    return row(y)[x];
  }
  const T& at(int y, int x) const {
    FEVES_CHECK(y >= -border_ && y < height_ + border_);
    FEVES_CHECK(x >= -border_ && x < width_ + border_);
    return row(y)[x];
  }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  /// Replicates left/right edge pixels into the horizontal border for pixel
  /// rows [y0, y1) only — used by device mirrors whose planes fill
  /// incrementally as row slices arrive.
  void extend_horizontal_borders(int y0, int y1) {
    if (border_ == 0 || width_ == 0) return;
    FEVES_CHECK(y0 >= 0 && y1 <= height_);
    for (int y = y0; y < y1; ++y) {
      T* r = row(y);
      std::fill(r - border_, r, r[0]);
      std::fill(r + width_, r + width_ + border_, r[width_ - 1]);
    }
  }

  /// Replicates the first/last rows (with their horizontal borders) into the
  /// vertical border. Callers whose access pattern can only reach one edge
  /// may skip the other — reading an edge row that a concurrent transfer is
  /// still filling is a data race, so only touch rows the caller owns.
  void extend_vertical_borders(bool top = true, bool bottom = true) {
    if (border_ == 0 || width_ == 0 || height_ == 0) return;
    const std::size_t full = static_cast<std::size_t>(width_ + 2 * border_);
    for (int b = 1; b <= border_; ++b) {
      if (top) {
        std::memcpy(row(-b) - border_, row(0) - border_, full * sizeof(T));
      }
      if (bottom) {
        std::memcpy(row(height_ - 1 + b) - border_, row(height_ - 1) - border_,
                    full * sizeof(T));
      }
    }
  }

  /// Replicates edge pixels into the border (H.264 unrestricted-MV padding).
  void extend_borders() {
    if (border_ == 0 || width_ == 0 || height_ == 0) return;
    for (int y = 0; y < height_; ++y) {
      T* r = row(y);
      std::fill(r - border_, r, r[0]);
      std::fill(r + width_, r + width_ + border_, r[width_ - 1]);
    }
    const std::size_t full = static_cast<std::size_t>(width_ + 2 * border_);
    for (int b = 1; b <= border_; ++b) {
      std::memcpy(row(-b) - border_, row(0) - border_, full * sizeof(T));
      std::memcpy(row(height_ - 1 + b) - border_, row(height_ - 1) - border_,
                  full * sizeof(T));
    }
  }

  bool same_geometry(const Plane& o) const {
    return width_ == o.width_ && height_ == o.height_ && border_ == o.border_;
  }

 private:
  int width_ = 0;
  int height_ = 0;
  int border_ = 0;
  std::ptrdiff_t stride_ = 0;
  AlignedVector<T> data_;
};

using PlaneU8 = Plane<u8>;
using PlaneI16 = Plane<i16>;

}  // namespace feves
