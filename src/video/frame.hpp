// YUV 4:2:0 frame built from three bordered planes, plus the derived frame
// structures the inter-loop operates on (reference frames and the sub-pixel
// interpolated SF).
#pragma once

#include "common/config.hpp"
#include "video/plane.hpp"

#include <array>

namespace feves {

/// Border applied to every frame plane. Large enough for the maximum search
/// range (128) plus the 6-tap interpolation margin.
inline constexpr int kFrameBorder = 136;

struct Frame420 {
  Frame420() = default;
  Frame420(int width, int height, int border = kFrameBorder)
      : y(width, height, border),
        u(width / 2, height / 2, border / 2),
        v(width / 2, height / 2, border / 2) {
    FEVES_CHECK(width % 2 == 0 && height % 2 == 0);
  }

  PlaneU8 y, u, v;

  int width() const { return y.width(); }
  int height() const { return y.height(); }

  void extend_borders() {
    y.extend_borders();
    u.extend_borders();
    v.extend_borders();
  }

  bool same_geometry(const Frame420& o) const {
    return y.same_geometry(o.y) && u.same_geometry(o.u) && v.same_geometry(o.v);
  }
};

/// Sub-pixel interpolated frame: one plane per quarter-pel phase (dy,dx),
/// 16 phases total, each the size of the reference frame — the paper's
/// "SF structure, which size is as large as 16 RFs" (Sec. II). Phase (0,0)
/// is the integer-pel reference itself.
struct SubPelFrame {
  SubPelFrame() = default;
  SubPelFrame(int width, int height, int border = kFrameBorder) {
    for (auto& p : phases) p = PlaneU8(width, height, border);
  }

  /// Index layout: phase(dy,dx) with dy,dx in [0,4) quarter-pel offsets.
  PlaneU8& phase(int dy, int dx) {
    FEVES_CHECK(dy >= 0 && dy < kSubPel && dx >= 0 && dx < kSubPel);
    return phases[dy * kSubPel + dx];
  }
  const PlaneU8& phase(int dy, int dx) const {
    FEVES_CHECK(dy >= 0 && dy < kSubPel && dx >= 0 && dx < kSubPel);
    return phases[dy * kSubPel + dx];
  }

  int width() const { return phases[0].width(); }
  int height() const { return phases[0].height(); }

  std::array<PlaneU8, kSubPel * kSubPel> phases;
};

}  // namespace feves
