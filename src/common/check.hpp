// Invariant checking. FEVES_CHECK is active in every build type: the
// framework schedules work across devices from runtime-measured parameters,
// so silent out-of-range distributions must fail loudly, not corrupt frames.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace feves {

/// Exception thrown on any broken precondition or invariant inside FEVES.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "FEVES_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace feves

#define FEVES_CHECK(expr)                                              \
  do {                                                                 \
    if (!(expr)) ::feves::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define FEVES_CHECK_MSG(expr, msg)                                     \
  do {                                                                 \
    if (!(expr)) {                                                     \
      std::ostringstream feves_os_;                                    \
      feves_os_ << msg;                                                \
      ::feves::detail::check_failed(#expr, __FILE__, __LINE__, feves_os_.str()); \
    }                                                                  \
  } while (0)
