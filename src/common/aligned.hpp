// Cache-line / SIMD-width aligned storage for pixel planes and SAD grids.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

namespace feves {

/// Alignment used for all pixel buffers: wide enough for AVX2 loads and a
/// full x86 cache line, which also avoids false sharing between the MB rows
/// that different worker threads write.
inline constexpr std::size_t kBufferAlign = 64;

/// Minimal allocator propagating 64-byte alignment to std::vector storage.
template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    void* p = ::operator new(n * sizeof(T), std::align_val_t(kBufferAlign));
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(kBufferAlign));
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept { return true; }
  template <typename U>
  bool operator!=(const AlignedAllocator<U>&) const noexcept { return false; }
};

template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace feves
