#include "common/cpu_features.hpp"

#include <cstdlib>
#include <cstring>

namespace feves {

namespace {

CpuFeatures detect() {
  CpuFeatures f;
#if defined(__x86_64__) || defined(_M_X64)
#if defined(__GNUC__) || defined(__clang__)
  f.sse2 = true;  // architectural baseline of x86-64
  f.avx2 = __builtin_cpu_supports("avx2") != 0;
#else
  f.sse2 = true;
#endif
#endif
  // Optional cap for testing the fallback ladder on capable hardware.
  if (const char* cap = std::getenv("FEVES_CPU_CAP")) {
    if (std::strcmp(cap, "scalar") == 0) {
      f.sse2 = false;
      f.avx2 = false;
    } else if (std::strcmp(cap, "sse2") == 0) {
      f.avx2 = false;
    }
    // "avx2" (or anything else) leaves the detected set untouched.
  }
  return f;
}

}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures f = detect();
  return f;
}

}  // namespace feves
