// Non-owning strided 2-D view used to hand sub-rectangles of pixel planes to
// kernels without copying. The stride is in elements, not bytes.
#pragma once

#include "common/check.hpp"

#include <cstddef>

namespace feves {

template <typename T>
class Span2D {
 public:
  Span2D() = default;
  Span2D(T* data, int width, int height, std::ptrdiff_t stride)
      : data_(data), width_(width), height_(height), stride_(stride) {
    FEVES_CHECK(width >= 0 && height >= 0);
    FEVES_CHECK(stride >= width);
  }

  T* row(int y) const { return data_ + static_cast<std::ptrdiff_t>(y) * stride_; }
  T& at(int y, int x) const {
    FEVES_CHECK(y >= 0 && y < height_ && x >= 0 && x < width_);
    return row(y)[x];
  }
  T& operator()(int y, int x) const { return row(y)[x]; }

  int width() const { return width_; }
  int height() const { return height_; }
  std::ptrdiff_t stride() const { return stride_; }
  T* data() const { return data_; }
  bool empty() const { return width_ == 0 || height_ == 0; }

  /// View of the rectangle [x0, x0+w) x [y0, y0+h); must lie inside *this.
  Span2D sub(int x0, int y0, int w, int h) const {
    FEVES_CHECK(x0 >= 0 && y0 >= 0 && w >= 0 && h >= 0);
    FEVES_CHECK(x0 + w <= width_ && y0 + h <= height_);
    return Span2D(row(y0) + x0, w, h, stride_);
  }

  /// Implicit const view conversion (Span2D<T> -> Span2D<const T>).
  operator Span2D<const T>() const { return {data_, width_, height_, stride_}; }

 private:
  T* data_ = nullptr;
  int width_ = 0;
  int height_ = 0;
  std::ptrdiff_t stride_ = 0;
};

}  // namespace feves
