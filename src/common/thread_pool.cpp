#include "common/thread_pool.hpp"

#include "common/check.hpp"
#include "common/types.hpp"

#include <atomic>
#include <algorithm>
#include <exception>

namespace feves {

ThreadPool::ThreadPool(unsigned num_threads) {
  const unsigned n = std::max(1u, num_threads);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  auto task = std::make_shared<std::packaged_task<void()>>(std::move(fn));
  std::future<void> fut = task->get_future();
  {
    std::lock_guard lock(mutex_);
    FEVES_CHECK_MSG(!stop_, "submit() on a stopped ThreadPool");
    tasks_.emplace([task] { (*task)(); });
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(int begin, int end,
                              const std::function<void(int)>& fn) {
  if (begin >= end) return;
  const int total = end - begin;
  const int parts = std::min<int>(total, static_cast<int>(size()) + 1);
  const int chunk = ceil_div(total, parts);

  std::atomic<int> next{begin};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  int first_error_chunk = end;  // chunk start of the stored error
  std::mutex error_mutex;

  auto drain = [&] {
    for (;;) {
      const int lo = next.fetch_add(chunk);
      if (lo >= end || failed.load(std::memory_order_relaxed)) break;
      const int hi = std::min(end, lo + chunk);
      try {
        for (int i = lo; i < hi; ++i) fn(i);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        // Deterministic winner: the lowest-indexed chunk that threw,
        // not whichever worker reaches this lock first.
        if (lo < first_error_chunk) {
          first_error_chunk = lo;
          first_error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
        break;
      }
    }
  };

  // Every helper that was submitted MUST be waited for before this frame
  // unwinds — the drains reference `next`/`fn`/`error_mutex` on this stack.
  // That includes the path where submit() itself throws partway through.
  std::vector<std::future<void>> futs;
  futs.reserve(parts - 1);
  std::exception_ptr submit_error;
  try {
    for (int p = 1; p < parts; ++p) futs.push_back(submit(drain));
  } catch (...) {
    submit_error = std::current_exception();
    failed.store(true, std::memory_order_relaxed);  // stop in-flight drains
  }
  if (!submit_error) drain();  // The caller participates instead of idling.
  for (auto& f : futs) f.wait();

  if (first_error) std::rethrow_exception(first_error);
  if (submit_error) std::rethrow_exception(submit_error);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace feves
