// Wall-clock timing helpers. All framework time accounting is in
// double-precision milliseconds, matching the paper's per-frame charts.
#pragma once

#include <chrono>

namespace feves {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Milliseconds elapsed since construction or the last reset().
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace feves
