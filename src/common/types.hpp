// Fundamental fixed-width types and H.264 geometry constants shared by every
// FEVES module.
#pragma once

#include <cstddef>
#include <cstdint>

namespace feves {

using u8 = std::uint8_t;
using i8 = std::int8_t;
using u16 = std::uint16_t;
using i16 = std::int16_t;
using u32 = std::uint32_t;
using i32 = std::int32_t;
using u64 = std::uint64_t;
using i64 = std::int64_t;

/// Luma macroblock edge length in pixels (H.264/AVC, Sec. II of the paper).
inline constexpr int kMbSize = 16;

/// Sub-pixel resolution of the interpolated frame: quarter-pel in each
/// dimension, i.e. the SF structure is "as large as 16 RFs" (paper, Sec. II).
inline constexpr int kSubPel = 4;

/// Number of MB-partition shapes allowed by the standard (16x16 ... 4x4).
inline constexpr int kNumPartitionModes = 7;

/// Rounds `v` up to the next multiple of `m` (m > 0).
constexpr int round_up(int v, int m) { return ((v + m - 1) / m) * m; }

/// Integer ceiling division for non-negative operands.
constexpr int ceil_div(int a, int b) { return (a + b - 1) / b; }

}  // namespace feves
