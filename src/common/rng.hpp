// Deterministic pseudo-random generation (splitmix64 + xoshiro256**).
// Every stochastic element in the repository — synthetic video content,
// property-test sweeps, perturbation schedules — draws from this so that
// tests and benchmark figures are reproducible bit-for-bit across runs.
#pragma once

#include "common/types.hpp"

#include <limits>

namespace feves {

/// splitmix64: used to expand a user seed into xoshiro state.
constexpr u64 splitmix64(u64& state) {
  state += 0x9E3779B97F4A7C15ull;
  u64 z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna — fast, high-quality, tiny state.
class Rng {
 public:
  explicit Rng(u64 seed = 0x5EED5EED5EED5EEDull) {
    u64 s = seed;
    for (auto& word : state_) word = splitmix64(s);
  }

  u64 next() {
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  i64 uniform_int(i64 lo, i64 hi) {
    const u64 span = static_cast<u64>(hi - lo) + 1;
    return lo + static_cast<i64>(next() % span);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

  /// Approximately normal via sum of uniforms (Irwin–Hall, 12 terms).
  double gaussian(double mean, double stddev) {
    double acc = 0.0;
    for (int i = 0; i < 12; ++i) acc += uniform01();
    return mean + stddev * (acc - 6.0);
  }

 private:
  static constexpr u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }
  u64 state_[4] = {};
};

}  // namespace feves
