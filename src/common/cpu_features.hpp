// Runtime CPU feature detection for the kernel library's tier dispatch.
// One binary carries every vector tier; the machine it lands on picks the
// best one at startup (paper Sec. III-B1's per-microarchitecture Parallel
// Modules, selected by CPUID instead of compile-time -m flags).
#pragma once

namespace feves {

struct CpuFeatures {
  bool sse2 = false;
  bool avx2 = false;
};

/// Detected features of the executing CPU, probed once and cached.
/// The FEVES_CPU_CAP environment variable ("scalar", "sse2", "avx2") caps
/// the reported features below what the hardware offers — the tests use it
/// to exercise the degraded dispatch paths on machines that have everything.
const CpuFeatures& cpu_features();

}  // namespace feves
