// Fixed-size worker pool used by the real execution backend. Each CPU device
// (and each simulated accelerator running in real mode) owns one pool, which
// mirrors the paper's per-device OpenMP teams.
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace feves {

class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 is clamped to 1.
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues a task for asynchronous execution.
  std::future<void> submit(std::function<void()> fn);

  /// Runs fn(i) for i in [begin, end) across the pool and the calling
  /// thread; returns when every index has been processed. Indices are
  /// chunked contiguously so MB rows processed by one worker stay adjacent
  /// in memory (same locality the paper's row-sliced kernels rely on).
  /// If fn throws, remaining chunks are abandoned, every in-flight worker
  /// is joined before unwinding, and the error from the lowest-indexed
  /// throwing chunk is rethrown (deterministic across runs).
  void parallel_for(int begin, int end, const std::function<void(int)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace feves
