// Encoder-wide configuration. Field defaults follow the paper's evaluation
// setup (Sec. IV): IPPP structure, FSBM motion estimation, QP 27/28 for
// I/P slices per the VCEG common conditions, and up to 16 reference frames.
#pragma once

#include "common/check.hpp"
#include "common/types.hpp"

namespace feves {

/// Which MB partition shapes the mode decision may choose from.
struct PartitionSet {
  bool p16x16 = true;
  bool p16x8 = true;
  bool p8x16 = true;
  bool p8x8 = true;
  bool p8x4 = true;
  bool p4x8 = true;
  bool p4x4 = true;

  int count() const {
    return int(p16x16) + int(p16x8) + int(p8x16) + int(p8x8) + int(p8x4) +
           int(p4x8) + int(p4x4);
  }
};

struct EncoderConfig {
  int width = 1920;   ///< Luma width in pixels; must be a multiple of 16.
  int height = 1088;  ///< Coded luma height (1080p codes 68 MB rows = 1088
                      ///< pixels and crops; must be a multiple of 16).

  /// Full-search range: candidates span [-search_range, +search_range],
  /// inclusive, in both dimensions — (2R+1)^2 candidates per MB. The
  /// paper's "SA size" of 32x32 corresponds to search_range = 16.
  int search_range = 16;

  int num_ref_frames = 1;  ///< RFs kept for ME (paper sweeps 1..8).

  int qp_i = 27;  ///< Quantization parameter for I slices (VCEG rec.).
  int qp_p = 28;  ///< Quantization parameter for P slices.

  /// Lagrangian weight on motion-vector rate in the mode decision. 0 gives
  /// pure minimum-SAD selection (the paper's distortion-only criterion).
  double lambda_mode = 4.0;

  /// Quarter-pel refinement radius for the SME module, in quarter-pel steps.
  int subpel_refine_range = 2;

  PartitionSet partitions;

  bool enable_deblocking = true;

  int mb_width() const { return width / kMbSize; }
  int mb_height() const { return height / kMbSize; }
  int total_mbs() const { return mb_width() * mb_height(); }
  /// The framework's unit of load distribution: one MB row (paper, Sec. III).
  int num_mb_rows() const { return mb_height(); }
  /// Search-area edge length in pixels, as quoted in the paper's figures.
  int search_area_size() const { return 2 * search_range; }

  void validate() const {
    FEVES_CHECK_MSG(width > 0 && width % kMbSize == 0,
                    "width must be a positive multiple of 16, got " << width);
    FEVES_CHECK_MSG(height > 0 && height % kMbSize == 0,
                    "height must be a positive multiple of 16, got " << height);
    FEVES_CHECK_MSG(search_range >= 1 && search_range <= 128,
                    "search_range out of [1,128]: " << search_range);
    FEVES_CHECK_MSG(num_ref_frames >= 1 && num_ref_frames <= 16,
                    "num_ref_frames out of [1,16]: " << num_ref_frames);
    FEVES_CHECK_MSG(qp_i >= 0 && qp_i <= 51, "qp_i out of [0,51]: " << qp_i);
    FEVES_CHECK_MSG(qp_p >= 0 && qp_p <= 51, "qp_p out of [0,51]: " << qp_p);
    FEVES_CHECK_MSG(partitions.count() > 0, "no partition mode enabled");
    FEVES_CHECK_MSG(subpel_refine_range >= 0 && subpel_refine_range <= 3,
                    "subpel_refine_range out of [0,3]");
  }
};

}  // namespace feves
