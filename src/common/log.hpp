// Minimal leveled logging to stderr. The framework logs scheduling decisions
// at kDebug so figure benches can run silent while integration debugging can
// trace every distribution vector.
#pragma once

#include <atomic>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string_view>

namespace feves {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

namespace detail {
// Atomic: the threshold is read on every FEVES_LOG call from executor lane
// workers and encode-service session threads while set_log_level may run
// concurrently on another thread (a plain static here is a data race).
inline std::atomic<LogLevel>& log_threshold() {
  static std::atomic<LogLevel> level{LogLevel::kWarn};
  return level;
}
inline std::mutex& log_mutex() {
  static std::mutex m;
  return m;
}
}  // namespace detail

inline void set_log_level(LogLevel level) {
  detail::log_threshold().store(level, std::memory_order_relaxed);
}
inline LogLevel log_level() {
  return detail::log_threshold().load(std::memory_order_relaxed);
}

inline void log_line(LogLevel level, std::string_view tag,
                     const std::string& msg) {
  if (level < log_level()) return;
  static constexpr std::string_view names[] = {"DEBUG", "INFO", "WARN",
                                               "ERROR"};
  std::lock_guard lock(detail::log_mutex());
  std::cerr << "[feves:" << names[static_cast<int>(level)] << "] " << tag
            << ": " << msg << '\n';
}

}  // namespace feves

#define FEVES_LOG(level, tag, expr)                                   \
  do {                                                                \
    if ((level) >= ::feves::log_level()) {                            \
      std::ostringstream feves_log_os_;                               \
      feves_log_os_ << expr;                                          \
      ::feves::log_line((level), (tag), feves_log_os_.str());         \
    }                                                                 \
  } while (0)

#define FEVES_DEBUG(tag, expr) FEVES_LOG(::feves::LogLevel::kDebug, tag, expr)
#define FEVES_INFO(tag, expr) FEVES_LOG(::feves::LogLevel::kInfo, tag, expr)
#define FEVES_WARN(tag, expr) FEVES_LOG(::feves::LogLevel::kWarn, tag, expr)
