// Distribution vectors — the load balancer's output (Algorithm 2): how many
// MB rows of ME (m), INT (l) and SME (s) each device processes, the extra
// shared-buffer transfers (∆m, ∆l from MS_BOUNDS/LS_BOUNDS), the SF
// completion split (σ now / σ^r deferred to the next frame), and the device
// hosting the R* block.
#pragma once

#include "common/check.hpp"
#include "common/config.hpp"

#include <numeric>
#include <vector>

namespace feves {

/// Half-open MB-row interval [begin, end).
struct RowInterval {
  int begin = 0;
  int end = 0;
  int length() const { return end - begin; }
  bool empty() const { return end <= begin; }
};

/// Rows in `a` not covered by `b` (both intervals over the same axis).
/// Returns up to two fragments (above and below b), mirroring Fig 5's two
/// extra CF/SF transfers.
inline std::vector<RowInterval> interval_difference(RowInterval a,
                                                    RowInterval b) {
  std::vector<RowInterval> out;
  if (a.empty()) return out;
  if (b.empty() || b.end <= a.begin || b.begin >= a.end) {
    out.push_back(a);
    return out;
  }
  if (a.begin < b.begin) out.push_back({a.begin, b.begin});
  if (b.end < a.end) out.push_back({b.end, a.end});
  return out;
}

inline int interval_difference_rows(RowInterval a, RowInterval b) {
  int rows = 0;
  for (const RowInterval& f : interval_difference(a, b)) rows += f.length();
  return rows;
}

/// Converts a per-device row-count vector into contiguous intervals in
/// device-index order (the offsets of Fig 5: device i's slice starts where
/// device i-1's ends).
inline std::vector<RowInterval> intervals_of(const std::vector<int>& rows) {
  std::vector<RowInterval> out;
  out.reserve(rows.size());
  int at = 0;
  for (int r : rows) {
    FEVES_CHECK(r >= 0);
    out.push_back({at, at + r});
    at += r;
  }
  return out;
}

/// MB rows of vertical halo SME needs around its slice in the SF: sub-pel
/// refinement around an FSBM vector reads up to search_range + 1 pixel rows
/// past the slice boundary (Fig 5's LS_BOUNDS accounts for it).
inline int sme_sf_halo_rows(const EncoderConfig& cfg) {
  return ceil_div(cfg.search_range + 2, kMbSize);
}

/// Clips and extends `iv` by `halo` rows on both sides within [0, n).
inline RowInterval halo_extend(RowInterval iv, int halo, int n) {
  if (iv.empty()) return iv;
  return {iv.begin - halo < 0 ? 0 : iv.begin - halo,
          iv.end + halo > n ? n : iv.end + halo};
}

struct Distribution {
  std::vector<int> me;    ///< m_i: ME rows per device
  std::vector<int> intp;  ///< l_i: INT rows per device
  std::vector<int> sme;   ///< s_i: SME rows per device

  std::vector<int> delta_m;  ///< ∆m_i: extra CF/MV rows for SME (eq. 16)
  std::vector<int> delta_l;  ///< ∆l_i: extra SF rows for SME (eq. 17)
  std::vector<int> sigma;    ///< σ_i: SF completion rows sent this frame
  std::vector<int> sigma_r;  ///< σ^r_i: SF rows deferred to the next frame

  int rstar_device = 0;

  // LP estimates of the synchronization points (Fig 4), for reporting.
  double tau1_ms = 0.0;
  double tau2_ms = 0.0;
  double tau_tot_ms = 0.0;

  int num_devices() const { return static_cast<int>(me.size()); }

  /// Conservation invariant (eq. 1): every module's rows sum to N.
  void check_conservation(int total_rows) const {
    auto sum = [](const std::vector<int>& v) {
      return std::accumulate(v.begin(), v.end(), 0);
    };
    FEVES_CHECK_MSG(sum(me) == total_rows,
                    "ME distribution sums to " << sum(me) << " != "
                                               << total_rows);
    FEVES_CHECK_MSG(sum(intp) == total_rows,
                    "INT distribution sums to " << sum(intp) << " != "
                                                << total_rows);
    FEVES_CHECK_MSG(sum(sme) == total_rows,
                    "SME distribution sums to " << sum(sme) << " != "
                                                << total_rows);
  }
};

/// Rounds a non-negative fractional allocation to integers preserving the
/// exact total (largest-remainder / Hamilton method; deterministic ties by
/// lower index). Exposed for testing.
std::vector<int> round_preserving_sum(const std::vector<double>& x, int total);

}  // namespace feves
