// Inter-node dispatch policy: the top tier of the cluster's two-tier
// balance. The WorkerManager scores each worker node by measured capability
// over outstanding load and dispatches the next work quantum to the best
// dispatchable node; *within* the node, the existing Algorithm-2 LP then
// splits the frame across that node's private devices. Kept header-only and
// side-effect free so the policy is unit-testable without any cluster
// machinery.
#pragma once

#include "platform/device.hpp"

#include <vector>

namespace feves {

/// One node's standing in the dispatch decision.
struct NodeScore {
  double capability = 0.0;  ///< throughput proxy (static estimate until the
                            ///< manager has measured shard rates to EWMA in)
  int outstanding = 0;      ///< shards currently leased to the node
  bool dispatchable = false;  ///< heartbeat state alive or probation
};

/// Static capability estimate of a node from its topology alone: the sum of
/// per-device module throughputs (the same units the virtual cost model
/// consumes). Deliberately coarse — it only has to rank nodes until the
/// manager's measured per-shard rates take over.
inline double topology_capability(const PlatformTopology& topo) {
  double cap = 0.0;
  for (const DeviceSpec& d : topo.devices) {
    cap += d.tput.me_ops_per_ms + d.tput.int_pix_per_ms +
           d.tput.sme_ops_per_ms;
  }
  return cap;
}

/// Picks the node for the next work quantum: the dispatchable node with the
/// highest capability per queued shard, i.e. capability / (1 + outstanding)
/// — measured node capability feeding a least-loaded tie-break. `affinity`
/// (the node that ran the session's previous quantum, -1 for none) wins
/// exact ties so a healthy placement sticks and worker-side framework
/// caches stay warm. Returns -1 when no node is dispatchable.
inline int pick_node(const std::vector<NodeScore>& nodes, int affinity = -1) {
  int best = -1;
  double best_score = -1.0;
  for (int i = 0; i < static_cast<int>(nodes.size()); ++i) {
    const NodeScore& n = nodes[static_cast<std::size_t>(i)];
    if (!n.dispatchable) continue;
    const double score = n.capability / (1.0 + n.outstanding);
    if (score > best_score || (score == best_score && i == affinity)) {
      best = i;
      best_score = score;
    }
  }
  return best;
}

}  // namespace feves
