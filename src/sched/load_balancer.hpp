// Load Balancing for CPU+GPU inter-loop video encoding — the paper's
// Algorithm 2. Distributes MB rows of ME/INT/SME over all devices and maps
// the R* block to one device, minimizing the total inter-frame time τtot
// under communication-aware constraints, via linear programming over the
// measured Performance Characterization.
//
// Formulation notes (vs. the paper's listing):
//  * The MIN of eq. (14) is linearized exactly: σ_i and σ_i^r become LP
//    variables with σ_i + σ_i^r + l_i = N − ∆l_i, σ_i·K^{sfhd} ≤ τtot − τ2,
//    and a tiny objective weight ε·Σσ_i^r that pushes deferral to the
//    minimum the slack allows.
//  * MS_BOUNDS (16) / LS_BOUNDS (17) make the problem nonlinear; like the
//    paper we iterate: solve the LP with ∆ fixed → recompute the bounds
//    from the new integer distributions → re-solve until the ∆ vectors
//    stabilize (a handful of iterations).
//  * Kernels on one device serialize (Fig 4 shows ME and INT back to back
//    on each device's kernel lane), so the per-device compute constraint is
//    the combined m_i·K^m + l_i·K^l ≤ τ1 — this matches both the CPU
//    constraint (2) and the discrete-event executor's semantics.
#pragma once

#include "common/config.hpp"
#include "lp/simplex.hpp"
#include "platform/device.hpp"
#include "sched/distribution.hpp"
#include "sched/perf_char.hpp"

namespace feves {

/// Telemetry from one balance() call: LP solver effort, fed into the
/// observability layer's SchedTelemetry (obs/telemetry.hpp).
struct BalanceStats {
  int lp_solves = 0;         ///< LP solves across the ∆ fix-point
  int lp_iterations = 0;     ///< simplex pivots summed over all solves
  int lp_fallbacks = 0;      ///< solves where Bland's anti-cycling engaged
  double lp_solve_ms = 0.0;  ///< wall time spent inside lp::solve
  int delta_iterations = 0;  ///< ∆ fix-point iterations run
  int lp_warm_solves = 0;    ///< solves that accepted a warm basis
  int lp_skipped = 0;        ///< balance() calls answered from the
                             ///< converged-distribution cache (no solve)
};

struct LoadBalancerOptions {
  /// σ/σ^r SF-completion deferral (Fig 5). Disabling it forces the full SF
  /// remainder to transfer within the current frame — the ablation knob.
  bool enable_sf_deferral = true;
  /// Fix-point iterations over MS_BOUNDS/LS_BOUNDS.
  int max_delta_iterations = 4;
  /// Objective weight on deferred SF rows (must stay << 1/N so it never
  /// trades against τtot).
  double sigma_epsilon = 1e-5;
  /// Share-aware balancing for frameworks running over a churning device
  /// grant (the encode service): when > 0 and the active set mixes
  /// characterized and never-measured devices, balance_with_probes() keeps
  /// the LP over the characterized subset and carves this many rows per
  /// module for each unknown device — one probe frame characterizes it —
  /// instead of collapsing the whole frame to an equidistant re-init.
  /// 0 (the default) keeps the single-tenant behaviour.
  int probe_rows = 0;
  /// Warm-start consecutive LP solves from the previous solve's final basis
  /// (and chain the basis across the ∆ fix-point within one call). Purely
  /// an acceleration: a rejected basis falls back to the cold two-phase
  /// solve, so results never depend on it.
  bool enable_warm_start = true;
  /// Convergence detector: when the active set, R* device and deferred-SF
  /// state match the cached solve and every active device's K parameters
  /// drifted less than this (relative), balance() returns the cached
  /// Distribution without solving. 0 disables the skip (every call solves);
  /// it also gates the frame pipeline's consume-time validation
  /// (FrameworkOptions::enable_pipeline).
  double convergence_epsilon = 0.01;
};

class LoadBalancer {
 public:
  LoadBalancer(const EncoderConfig& cfg, const PlatformTopology& topo,
               LoadBalancerOptions opts = {});

  /// Every entry point takes an optional active-device mask (nullptr = all
  /// active): quarantined devices get zero rows in every module, are
  /// excluded from the LP and from R* candidacy, and the remaining load is
  /// re-balanced over the survivors — the graceful-degradation hook.

  /// Equidistant split of every module across the active devices
  /// (Algorithm 1, line 3 — the initialization frame, and the related-work
  /// multi-GPU baseline).
  Distribution equidistant(int rstar_device,
                           const std::vector<bool>* active = nullptr) const;

  /// Per-module speed-proportional split (the synchronous per-module
  /// balancing of the authors' earlier work [9], used as a baseline).
  /// `force_rstar` >= 0 pins the R* device instead of selecting it.
  Distribution proportional(const PerfCharacterization& perf,
                            const std::vector<int>& sigma_r_prev,
                            int force_rstar = -1,
                            const std::vector<bool>* active = nullptr) const;

  /// Algorithm 2: LP-based distribution. `sigma_r_prev` carries the SF rows
  /// deferred from the previous frame (σ^{r-1}); pass zeros for the first
  /// balanced frame. Requires perf.initialized(active). `force_rstar` >= 0
  /// pins the R* device (CPU-centric vs GPU-centric operation, Sec. III-B).
  /// `stats`, when non-null, receives LP solver telemetry for this call.
  /// Non-const: maintains the warm-start cache (previous basis, converged
  /// distribution and the characterization snapshot it was solved under) —
  /// see LoadBalancerOptions::enable_warm_start / convergence_epsilon. The
  /// cache is bypassed and refreshed whenever the active set, the R* device
  /// or the deferred-SF state changes, so quarantine transitions and grant
  /// churn always re-solve from the current platform state.
  Distribution balance(const PerfCharacterization& perf,
                       const std::vector<int>& sigma_r_prev,
                       int force_rstar = -1,
                       const std::vector<bool>* active = nullptr,
                       BalanceStats* stats = nullptr);

  /// Share-aware balance for a partially characterized active set (see
  /// LoadBalancerOptions::probe_rows): LP-balances over the characterized
  /// active devices, then reassigns `probe_rows` rows of every module from
  /// the most-loaded characterized devices to each uncharacterized active
  /// device so it earns a measurement. Falls back to balance() when every
  /// active device is characterized and to equidistant() when none is.
  Distribution balance_with_probes(const PerfCharacterization& perf,
                                   const std::vector<int>& sigma_r_prev,
                                   int force_rstar,
                                   const std::vector<bool>* active,
                                   BalanceStats* stats = nullptr);

  /// Drops the warm-start cache (basis + converged distribution). For
  /// callers that know the cached state no longer describes the platform
  /// beyond what the built-in validation detects.
  void invalidate_warm_start() { warm_ = WarmState{}; }

  /// R* device selection: cheapest transfer-in + compute + transfer-out
  /// path, found with Dijkstra over the device graph (Sec. III-B, [9]).
  int select_rstar_device(const PerfCharacterization& perf,
                          const std::vector<bool>* active = nullptr) const;

  const PlatformTopology& topology() const { return topo_; }

 private:
  bool device_active(const std::vector<bool>* active, int i) const {
    return active == nullptr || (*active)[i];
  }
  int count_active(const std::vector<bool>* active) const;

  /// Recomputes ∆m/∆l/σ/σ^r from the integer distributions.
  void finalize_bounds(Distribution* dist, const PerfCharacterization& perf,
                       const std::vector<bool>* active) const;

  /// Everything the previous balance() left behind: the final LP basis for
  /// warm-starting the next solve, the converged distribution the
  /// convergence detector can reuse, and the inputs that solve was keyed on
  /// (validation: any mismatch forces a cold path).
  struct WarmState {
    bool valid = false;
    lp::Basis basis;
    Distribution dist;
    std::vector<bool> active;
    std::vector<int> sigma_r_prev;
    std::vector<DeviceParams> params;
    int rstar = -1;
  };

  EncoderConfig cfg_;
  PlatformTopology topo_;
  LoadBalancerOptions opts_;
  WarmState warm_;
};

}  // namespace feves
