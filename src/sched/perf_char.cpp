#include "sched/perf_char.hpp"

namespace feves {

void PerfCharacterization::observe_compute(int device, ComputeModule module,
                                           int rows, double ms) {
  FEVES_CHECK(device >= 0 && device < num_devices());
  if (rows <= 0) return;  // nothing assigned: keep the old estimate
  FEVES_CHECK(ms >= 0.0);
  const double per_row = ms / rows;
  DeviceParams& p = params_[device];
  switch (module) {
    case ComputeModule::kMe:
      fold(&p.k_me, per_row);
      break;
    case ComputeModule::kInt:
      fold(&p.k_int, per_row);
      break;
    case ComputeModule::kSme:
      fold(&p.k_sme, per_row);
      break;
  }
}

void PerfCharacterization::observe_transfer(int device, BufferKind buffer,
                                            Direction dir, int rows,
                                            double ms) {
  FEVES_CHECK(device >= 0 && device < num_devices());
  if (rows <= 0) return;
  FEVES_CHECK(ms >= 0.0);
  DeviceParams& p = params_[device];
  fold(&p.k_xfer[static_cast<int>(buffer)][static_cast<int>(dir)], ms / rows);
}

void PerfCharacterization::observe_rstar(int device, double ms) {
  FEVES_CHECK(device >= 0 && device < num_devices());
  FEVES_CHECK(ms >= 0.0);
  fold(&params_[device].t_rstar_ms, ms);
}

}  // namespace feves
