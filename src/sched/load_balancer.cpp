#include "sched/load_balancer.hpp"

#include "graph/dijkstra.hpp"
#include "lp/simplex.hpp"
#include "common/log.hpp"
#include "common/timer.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace feves {

namespace {

double kx(const DeviceParams& p, BufferKind b, Direction d) {
  return p.k_xfer[static_cast<int>(b)][static_cast<int>(d)];
}

}  // namespace

std::vector<int> round_preserving_sum(const std::vector<double>& x,
                                      int total) {
  const int n = static_cast<int>(x.size());
  std::vector<int> out(n, 0);
  std::vector<std::pair<double, int>> remainder(n);
  int assigned = 0;
  for (int i = 0; i < n; ++i) {
    FEVES_CHECK_MSG(x[i] >= -1e-9, "negative allocation " << x[i]);
    const double v = std::max(0.0, x[i]);
    out[i] = static_cast<int>(v);
    assigned += out[i];
    remainder[i] = {v - out[i], i};
  }
  FEVES_CHECK_MSG(assigned <= total,
                  "allocation " << assigned << " exceeds total " << total);
  // Hand out the leftover rows to the largest fractional parts; ties break
  // to the lower device index for determinism.
  std::sort(remainder.begin(), remainder.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  for (int k = 0; k < total - assigned; ++k) {
    out[remainder[k % n].second] += 1;
  }
  return out;
}

LoadBalancer::LoadBalancer(const EncoderConfig& cfg,
                           const PlatformTopology& topo,
                           LoadBalancerOptions opts)
    : cfg_(cfg), topo_(topo), opts_(opts) {
  cfg_.validate();
  topo_.validate();
}

int LoadBalancer::count_active(const std::vector<bool>* active) const {
  if (active == nullptr) return topo_.num_devices();
  FEVES_CHECK(static_cast<int>(active->size()) == topo_.num_devices());
  int n = 0;
  for (bool a : *active) n += a ? 1 : 0;
  FEVES_CHECK_MSG(n >= 1, "no active devices left to balance over");
  return n;
}

Distribution LoadBalancer::equidistant(int rstar_device,
                                       const std::vector<bool>* active) const {
  const int n = topo_.num_devices();
  const int rows = cfg_.num_mb_rows();
  const int n_active = count_active(active);
  Distribution d;
  d.rstar_device = rstar_device;
  FEVES_CHECK_MSG(device_active(active, rstar_device),
                  "R* device " << rstar_device << " is not active");
  std::vector<double> equal(n, 0.0);
  for (int i = 0; i < n; ++i) {
    if (device_active(active, i)) {
      equal[i] = static_cast<double>(rows) / n_active;
    }
  }
  d.me = round_preserving_sum(equal, rows);
  d.intp = d.me;
  d.sme = d.me;
  d.delta_m.assign(n, 0);
  d.delta_l.assign(n, 0);
  d.sigma.assign(n, 0);
  d.sigma_r.assign(n, 0);
  // Equidistant mode transfers the full SF completion within the frame.
  for (int i = 0; i < n; ++i) {
    if (!device_active(active, i)) continue;
    if (topo_.devices[i].is_accelerator() && i != rstar_device) {
      d.sigma[i] = rows - d.intp[i];
    }
  }
  // ∆ bounds still apply: identical slices make them zero by construction,
  // but rounding can shift interval edges by a row.
  auto me_iv = intervals_of(d.me);
  auto l_iv = intervals_of(d.intp);
  auto s_iv = intervals_of(d.sme);
  for (int i = 0; i < n; ++i) {
    if (!device_active(active, i)) continue;
    if (!topo_.devices[i].is_accelerator()) continue;
    d.delta_m[i] = interval_difference_rows(s_iv[i], me_iv[i]);
    d.delta_l[i] = interval_difference_rows(s_iv[i], l_iv[i]);
  }
  d.check_conservation(rows);
  return d;
}

int LoadBalancer::select_rstar_device(const PerfCharacterization& perf,
                                      const std::vector<bool>* active) const {
  const int n = topo_.num_devices();
  count_active(active);  // validates mask size and non-emptiness
  // Before characterization, default to the first active accelerator
  // (GPU-centric, the paper's common case), falling back to the first
  // active device.
  bool any_rstar = false;
  for (int i = 0; i < n; ++i) {
    if (device_active(active, i) && perf.params(i).t_rstar_ms > 0) {
      any_rstar = true;
    }
  }
  if (!any_rstar) {
    for (int i = 0; i < n; ++i) {
      if (device_active(active, i) && topo_.devices[i].is_accelerator()) {
        return i;
      }
    }
    for (int i = 0; i < n; ++i) {
      if (device_active(active, i)) return i;
    }
    return 0;
  }

  // A device that is active and compute-characterized but carries no R*
  // measurement (its parameters were evicted during quarantine) must not be
  // locked out of R* hosting forever: estimate its R* time from a measured
  // device's, scaled by relative ME speed. If the estimate wins the shortest
  // path the device hosts R* once and earns a real measurement, so an
  // optimistic guess self-corrects after a single frame.
  auto estimate_rstar = [&](const DeviceParams& p) {
    double best = 0.0;
    for (int j = 0; j < n; ++j) {
      if (!device_active(active, j)) continue;
      const DeviceParams& q = perf.params(j);
      if (q.t_rstar_ms <= 0 || q.k_me <= 0 || p.k_me <= 0) continue;
      const double est = q.t_rstar_ms * p.k_me / q.k_me;
      if (best == 0.0 || est < best) best = est;
    }
    return best;
  };

  // Graph: source(0) -> device node (1+i) -> sink (1+n). The in-edge
  // carries the data staging cost (missing SF/CF/MV for MC on an
  // accelerator), the out-edge carries R* compute plus shipping the
  // reconstructed RF home.
  const int rows = cfg_.num_mb_rows();
  graph::Graph g(n + 2);
  const int sink = n + 1;
  for (int i = 0; i < n; ++i) {
    if (!device_active(active, i)) continue;  // quarantined: not a candidate
    const DeviceParams& p = perf.params(i);
    double t_rstar = p.t_rstar_ms;
    if (t_rstar <= 0) t_rstar = estimate_rstar(p);
    if (t_rstar <= 0) continue;  // no measurement and no basis to estimate
    double stage_in = 0.0;
    double ship_out = 0.0;
    if (topo_.devices[i].is_accelerator()) {
      // Rough staging volume: the MC inputs it would not already hold.
      stage_in = rows * 0.5 *
                 (kx(p, BufferKind::kCf, Direction::kHostToDevice) +
                  kx(p, BufferKind::kSf, Direction::kHostToDevice));
      ship_out = rows * kx(p, BufferKind::kRf, Direction::kDeviceToHost);
    }
    g.add_edge(0, 1 + i, stage_in);
    g.add_edge(1 + i, sink, t_rstar + ship_out);
  }
  const auto sp = graph::dijkstra(g, 0);
  if (sp.distance[sink] == graph::kUnreachable) {
    for (int i = 0; i < n; ++i) {
      if (device_active(active, i) && topo_.devices[i].is_accelerator()) {
        return i;
      }
    }
    for (int i = 0; i < n; ++i) {
      if (device_active(active, i)) return i;
    }
  }
  const auto path = sp.path_to(sink);
  FEVES_CHECK(path.size() == 3);
  return path[1] - 1;
}

Distribution LoadBalancer::proportional(const PerfCharacterization& perf,
                                        const std::vector<int>& sigma_r_prev,
                                        int force_rstar,
                                        const std::vector<bool>* active) const {
  FEVES_CHECK(perf.initialized(active));
  const int n = topo_.num_devices();
  const int rows = cfg_.num_mb_rows();
  count_active(active);

  auto split_by = [&](auto speed_of) {
    std::vector<double> share(n);
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
      const double k = device_active(active, i) ? speed_of(perf.params(i)) : 0;
      share[i] = k > 0 ? 1.0 / k : 0.0;
      total += share[i];
    }
    FEVES_CHECK_MSG(total > 0, "no active device has a known speed");
    for (double& s : share) s = s / total * rows;
    return round_preserving_sum(share, rows);
  };

  Distribution d;
  d.rstar_device =
      force_rstar >= 0 ? force_rstar : select_rstar_device(perf, active);
  FEVES_CHECK(d.rstar_device < n);
  FEVES_CHECK_MSG(device_active(active, d.rstar_device),
                  "R* device " << d.rstar_device << " is not active");
  d.me = split_by([](const DeviceParams& p) { return p.k_me; });
  d.intp = split_by([](const DeviceParams& p) { return p.k_int; });
  d.sme = split_by([](const DeviceParams& p) { return p.k_sme; });
  d.delta_m.assign(n, 0);
  d.delta_l.assign(n, 0);
  d.sigma.assign(n, 0);
  d.sigma_r.assign(n, 0);
  (void)sigma_r_prev;
  finalize_bounds(&d, perf, active);
  d.check_conservation(rows);
  return d;
}

Distribution LoadBalancer::balance(const PerfCharacterization& perf,
                                   const std::vector<int>& sigma_r_prev,
                                   int force_rstar,
                                   const std::vector<bool>* active,
                                   BalanceStats* stats) {
  FEVES_CHECK_MSG(perf.initialized(active),
                  "balance() before performance characterization");
  const int n = topo_.num_devices();
  const int rows = cfg_.num_mb_rows();
  FEVES_CHECK(static_cast<int>(sigma_r_prev.size()) == n);
  count_active(active);

  const int rstar =
      force_rstar >= 0 ? force_rstar : select_rstar_device(perf, active);
  FEVES_CHECK(rstar < n);
  FEVES_CHECK_MSG(device_active(active, rstar),
                  "R* device " << rstar << " is not active");

  std::vector<bool> act(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) act[i] = device_active(active, i);

  // The cache only speaks for this exact scheduling situation: any change
  // in the schedulable set (quarantine, probation return, grant churn), the
  // R* placement or the deferred-SF state is a different LP — cold path.
  const bool cache_matches = warm_.valid && warm_.rstar == rstar &&
                             warm_.active == act &&
                             warm_.sigma_r_prev == sigma_r_prev;

  // Convergence detector: under epsilon drift the cached distribution is
  // still (near-)optimal — return it without solving. A mispredict spike or
  // an eviction zeroes/steps the parameters past any sane epsilon, so the
  // fault path always re-solves.
  if (opts_.enable_warm_start && opts_.convergence_epsilon > 0.0 &&
      cache_matches) {
    double drift = 0.0;
    for (int i = 0; i < n; ++i) {
      if (!act[i]) continue;
      drift = std::max(drift, relative_drift(warm_.params[i], perf.params(i)));
    }
    if (drift < opts_.convergence_epsilon) {
      if (stats != nullptr) stats->lp_skipped += 1;
      return warm_.dist;
    }
  }

  // Basis chained across the ∆ fix-point (and, via the cache, across
  // frames): each solve warm-starts from the previous optimum.
  lp::Basis chain;
  if (opts_.enable_warm_start && cache_matches) chain = warm_.basis;
  bool last_solve_optimal = false;

  // Warm start for the ∆ fix-point: proportional distribution.
  Distribution current = proportional(perf, sigma_r_prev, rstar, active);
  current.rstar_device = rstar;
  finalize_bounds(&current, perf, active);

  for (int iter = 0; iter < opts_.max_delta_iterations; ++iter) {
    lp::Problem lp;
    const int v_tau1 = lp.add_variable("tau1");
    const int v_tau2 = lp.add_variable("tau2");
    const int v_tautot = lp.add_variable("tautot", 1.0);
    std::vector<int> v_m(n), v_l(n), v_s(n), v_sig(n, -1), v_sigr(n, -1);
    for (int i = 0; i < n; ++i) {
      v_m[i] = lp.add_variable("m" + std::to_string(i));
      v_l[i] = lp.add_variable("l" + std::to_string(i));
      v_s[i] = lp.add_variable("s" + std::to_string(i));
    }

    // (1) conservation.
    {
      std::vector<lp::Term> tm, tl, ts;
      for (int i = 0; i < n; ++i) {
        tm.push_back({v_m[i], 1.0});
        tl.push_back({v_l[i], 1.0});
        ts.push_back({v_s[i], 1.0});
      }
      lp.add_constraint(tm, lp::Relation::kEq, rows);
      lp.add_constraint(tl, lp::Relation::kEq, rows);
      lp.add_constraint(ts, lp::Relation::kEq, rows);
    }
    // τ1 ≤ τ2 ≤ τtot ordering.
    lp.add_constraint({{v_tau1, 1.0}, {v_tau2, -1.0}}, lp::Relation::kLe, 0.0);
    lp.add_constraint({{v_tau2, 1.0}, {v_tautot, -1.0}}, lp::Relation::kLe,
                      0.0);

    const double N = rows;
    for (int i = 0; i < n; ++i) {
      if (!device_active(active, i)) {
        // Quarantined: pinned to zero rows in every module, no resource
        // constraints — the LP re-balances the whole frame over survivors.
        lp.add_constraint({{v_m[i], 1.0}}, lp::Relation::kEq, 0.0);
        lp.add_constraint({{v_l[i], 1.0}}, lp::Relation::kEq, 0.0);
        lp.add_constraint({{v_s[i], 1.0}}, lp::Relation::kEq, 0.0);
        continue;
      }
      const DeviceParams& p = perf.params(i);
      const DeviceSpec& dev = topo_.devices[i];
      const double dm = current.delta_m[i];
      const double dl = current.delta_l[i];

      // Combined kernel budget in τ1 (paper eq. 2 for CPUs; Fig 4 lanes for
      // accelerators).
      lp.add_constraint({{v_m[i], p.k_me}, {v_l[i], p.k_int}, {v_tau1, -1.0}},
                        lp::Relation::kLe, 0.0);
      // SME kernel between τ1 and τ2 (eq. 3 / eq. 13 compute part).
      lp.add_constraint({{v_s[i], p.k_sme}, {v_tau1, 1.0}, {v_tau2, -1.0}},
                        lp::Relation::kLe, 0.0);

      if (!dev.is_accelerator()) {
        if (i == rstar) {
          // CPU-centric: R* runs on the host after τ2 (needs no transfers).
          lp.add_constraint({{v_tau2, 1.0}, {v_tautot, -1.0}},
                            lp::Relation::kLe, -p.t_rstar_ms);
        }
        continue;
      }

      const double cf_hd = kx(p, BufferKind::kCf, Direction::kHostToDevice);
      const double rf_hd = kx(p, BufferKind::kRf, Direction::kHostToDevice);
      const double rf_dh = kx(p, BufferKind::kRf, Direction::kDeviceToHost);
      const double sf_hd = kx(p, BufferKind::kSf, Direction::kHostToDevice);
      const double sf_dh = kx(p, BufferKind::kSf, Direction::kDeviceToHost);
      const double mv_hd = kx(p, BufferKind::kMv, Direction::kHostToDevice);
      const double mv_dh = kx(p, BufferKind::kMv, Direction::kDeviceToHost);

      if (i == rstar) {
        // --- Selected accelerator (GPU1), eqs. (4)-(9) ---
        // Chain: CF in -> ME -> MV out.
        lp.add_constraint({{v_m[i], cf_hd + p.k_me + mv_dh}, {v_tau1, -1.0}},
                          lp::Relation::kLe, 0.0);
        // Chain: CF in -> ME -> INT -> SF out.
        lp.add_constraint({{v_m[i], cf_hd + p.k_me},
                           {v_l[i], p.k_int + sf_dh},
                           {v_tau1, -1.0}},
                          lp::Relation::kLe, 0.0);
        // Copy-engine budget in τ1: CF in, ∆m CF in, SF out, MV out.
        lp.add_constraint({{v_m[i], cf_hd + mv_dh},
                           {v_l[i], sf_dh},
                           {v_tau1, -1.0}},
                          lp::Relation::kLe, -dm * cf_hd);
        // (7): SME with its missing inputs.
        lp.add_constraint({{v_s[i], p.k_sme}, {v_tau1, 1.0}, {v_tau2, -1.0}},
                          lp::Relation::kLe, -(dl * sf_hd + dm * mv_hd));
        // (8): τ1→τ2 copy-engine budget incl. the MC prefetch of the
        // remaining CF and SF: (N-m-∆m)cf + (N-l-∆l)sf.
        lp.add_constraint({{v_m[i], -cf_hd},
                           {v_l[i], -sf_hd},
                           {v_tau1, 1.0},
                           {v_tau2, -1.0}},
                          lp::Relation::kLe,
                          -(dl * sf_hd + dm * mv_hd) - (N - dm) * cf_hd -
                              (N - dl) * sf_hd);
        // (9): missing SME MVs in, R*, RF back.
        lp.add_constraint({{v_s[i], -mv_hd}, {v_tau2, 1.0}, {v_tautot, -1.0}},
                          lp::Relation::kLe,
                          -(N * mv_hd + p.t_rstar_ms + N * rf_dh));
      } else {
        // --- Other accelerators (GPUi), eqs. (10)-(15) ---
        const double sr_prev = sigma_r_prev[i];
        // (10): RF in -> CF in -> ME -> MV out.
        lp.add_constraint({{v_m[i], cf_hd + p.k_me + mv_dh}, {v_tau1, -1.0}},
                          lp::Relation::kLe, -N * rf_hd);
        // (11): RF in, kernels, SF out.
        lp.add_constraint({{v_m[i], cf_hd + p.k_me},
                           {v_l[i], p.k_int + sf_dh},
                           {v_tau1, -1.0}},
                          lp::Relation::kLe, -N * rf_hd);
        // (12): copy-engine budget in τ1 incl. deferred SF remainder σ^{r-1}.
        lp.add_constraint({{v_m[i], cf_hd + mv_dh},
                           {v_l[i], sf_dh},
                           {v_tau1, -1.0}},
                          lp::Relation::kLe,
                          -(N * rf_hd + dm * cf_hd + sr_prev * sf_hd));
        // (13): SME with inputs and MV return.
        lp.add_constraint({{v_s[i], p.k_sme + mv_dh},
                           {v_tau1, 1.0},
                           {v_tau2, -1.0}},
                          lp::Relation::kLe, -(dl * sf_hd + dm * mv_hd));

        // (14)-(15) linearized: σ + σ^r + l = N − ∆l; σ·K^{sfhd} ≤ τtot−τ2.
        v_sig[i] = lp.add_variable("sig" + std::to_string(i));
        v_sigr[i] = lp.add_variable("sigr" + std::to_string(i),
                                    opts_.sigma_epsilon);
        lp.add_constraint(
            {{v_sig[i], 1.0}, {v_sigr[i], 1.0}, {v_l[i], 1.0}},
            lp::Relation::kEq, N - dl);
        lp.add_constraint(
            {{v_sig[i], sf_hd}, {v_tau2, 1.0}, {v_tautot, -1.0}},
            lp::Relation::kLe, 0.0);
        if (!opts_.enable_sf_deferral) {
          lp.add_constraint({{v_sigr[i], 1.0}}, lp::Relation::kEq, 0.0);
        }
      }
    }

    Timer lp_timer;
    const lp::Basis* warm =
        (opts_.enable_warm_start && chain.usable()) ? &chain : nullptr;
    const lp::Solution sol = lp::solve(lp, warm);
    if (stats != nullptr) {
      stats->lp_solves += 1;
      stats->lp_iterations += sol.iterations;
      stats->lp_fallbacks += sol.bland_fallback ? 1 : 0;
      stats->lp_warm_solves += sol.warm_used ? 1 : 0;
      stats->lp_solve_ms += lp_timer.elapsed_ms();
      stats->delta_iterations = iter + 1;
    }
    if (!sol.optimal()) {
      FEVES_WARN("load_balancer",
                 "LP not optimal (status " << static_cast<int>(sol.status)
                                           << "); keeping previous split");
      last_solve_optimal = false;
      break;
    }
    chain = sol.basis;
    last_solve_optimal = true;

    Distribution next;
    next.rstar_device = rstar;
    std::vector<double> fm(n), fl(n), fs(n);
    for (int i = 0; i < n; ++i) {
      fm[i] = sol.values[v_m[i]];
      fl[i] = sol.values[v_l[i]];
      fs[i] = sol.values[v_s[i]];
    }
    next.me = round_preserving_sum(fm, rows);
    next.intp = round_preserving_sum(fl, rows);
    next.sme = round_preserving_sum(fs, rows);
    next.delta_m.assign(n, 0);
    next.delta_l.assign(n, 0);
    next.sigma.assign(n, 0);
    next.sigma_r.assign(n, 0);
    next.tau1_ms = sol.values[v_tau1];
    next.tau2_ms = sol.values[v_tau2];
    next.tau_tot_ms = sol.values[v_tautot];
    finalize_bounds(&next, perf, active);

    const bool converged = next.delta_m == current.delta_m &&
                           next.delta_l == current.delta_l &&
                           next.me == current.me && next.sme == current.sme;
    current = std::move(next);
    if (converged) break;
  }

  current.check_conservation(rows);

  if (opts_.enable_warm_start && last_solve_optimal) {
    warm_.valid = true;
    warm_.basis = chain;
    warm_.dist = current;
    warm_.active = std::move(act);
    warm_.sigma_r_prev = sigma_r_prev;
    warm_.rstar = rstar;
    warm_.params.assign(static_cast<std::size_t>(n), DeviceParams{});
    for (int i = 0; i < n; ++i) warm_.params[i] = perf.params(i);
  } else if (!last_solve_optimal) {
    // A failed solve means the cached state no longer describes a solvable
    // situation; do not serve it as "converged" next frame.
    warm_ = WarmState{};
  }
  return current;
}

Distribution LoadBalancer::balance_with_probes(
    const PerfCharacterization& perf, const std::vector<int>& sigma_r_prev,
    int force_rstar, const std::vector<bool>* active, BalanceStats* stats) {
  const int n = topo_.num_devices();
  const int rows = cfg_.num_mb_rows();
  count_active(active);
  const std::vector<bool> known = perf.characterized_mask(active);
  int n_known = 0;
  int n_unknown = 0;
  for (int i = 0; i < n; ++i) {
    if (!device_active(active, i)) continue;
    (known[i] ? n_known : n_unknown) += 1;
  }
  if (n_unknown == 0) {
    return balance(perf, sigma_r_prev, force_rstar, active, stats);
  }
  // No measured device to balance from, or R* pinned to an unmeasured one:
  // same answer as the initialization frame.
  if (n_known == 0 || (force_rstar >= 0 && !known[force_rstar])) {
    const int rstar = force_rstar >= 0 ? force_rstar
                                       : select_rstar_device(perf, active);
    return equidistant(rstar, active);
  }

  // LP over the characterized subset; R* stays on a measured device.
  Distribution d = balance(perf, sigma_r_prev, force_rstar, &known, stats);

  // Carve the probe slices from the most-loaded measured devices, row by
  // row so no single donor is drained. Capped at half the frame across all
  // newcomers — a grant churning in many devices at once must not starve
  // the devices whose speed the session actually knows.
  const int probe =
      std::min(opts_.probe_rows, std::max(1, rows / (2 * n_unknown)));
  auto carve = [&](std::vector<int>& mod) {
    for (int i = 0; i < n; ++i) {
      if (!device_active(active, i) || known[i]) continue;
      for (int r = 0; r < probe; ++r) {
        int donor = -1;
        for (int j = 0; j < n; ++j) {
          if (!known[j]) continue;
          if (donor < 0 || mod[j] > mod[donor]) donor = j;
        }
        if (donor < 0 || mod[donor] <= 1) break;
        --mod[donor];
        ++mod[i];
      }
    }
  };
  carve(d.me);
  carve(d.intp);
  carve(d.sme);
  // The carve invalidated the LP's ∆/σ bookkeeping; recompute it from the
  // final integer distributions over the full active set.
  finalize_bounds(&d, perf, active);
  d.check_conservation(rows);
  return d;
}

void LoadBalancer::finalize_bounds(Distribution* dist,
                                   const PerfCharacterization& perf,
                                   const std::vector<bool>* active) const {
  const int n = topo_.num_devices();
  const int rows = cfg_.num_mb_rows();
  dist->delta_m.assign(n, 0);
  dist->delta_l.assign(n, 0);
  dist->sigma.assign(n, 0);
  dist->sigma_r.assign(n, 0);

  const auto me_iv = intervals_of(dist->me);
  const auto l_iv = intervals_of(dist->intp);
  const auto s_iv = intervals_of(dist->sme);

  for (int i = 0; i < n; ++i) {
    if (!device_active(active, i)) continue;
    if (!topo_.devices[i].is_accelerator()) continue;
    // (16) MS_BOUNDS: SME rows whose CF/MVs were produced elsewhere.
    dist->delta_m[i] = interval_difference_rows(s_iv[i], me_iv[i]);
    // (17) LS_BOUNDS: SME rows whose SF slice was interpolated elsewhere,
    // halo-extended for the sub-pel search margin.
    const RowInterval sme_need =
        halo_extend(s_iv[i], sme_sf_halo_rows(cfg_), rows);
    int dl = 0;
    for (const RowInterval& f : interval_difference(sme_need, l_iv[i])) {
      dl += f.length();
    }
    dist->delta_l[i] = dl;

    if (i == dist->rstar_device) continue;  // GPU1 completes SF in-frame
    const int remaining = rows - dist->intp[i] - dist->delta_l[i];
    if (remaining <= 0) continue;
    const double sf_hd =
        kx(perf.params(i), BufferKind::kSf, Direction::kHostToDevice);
    const double slack = std::max(0.0, dist->tau_tot_ms - dist->tau2_ms);
    int fit = remaining;
    if (opts_.enable_sf_deferral && sf_hd > 0) {
      fit = std::min(remaining, static_cast<int>(slack / sf_hd));
    }
    dist->sigma[i] = fit;
    dist->sigma_r[i] = remaining - fit;
  }
}

}  // namespace feves
