// On-the-fly Performance Characterization (Algorithm 1, lines 5-6 and 10).
// After each frame, measured kernel and transfer times are folded into
// per-device parameters expressed in *time per MB row* — exactly the K
// inputs of the paper's Algorithm 2:
//   K^m, K^l, K^s            — ME / INT / SME compute speed
//   K^{cf,rf,sf,mv x hd,dh}  — per-buffer transfer speed per direction
//   T^{R*}                   — whole-frame R* time
// An exponentially weighted moving average tracks drifting platform state
// (the paper stresses non-dedicated systems whose performance fluctuates).
#pragma once

#include "common/check.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace feves {

enum class ComputeModule { kMe = 0, kInt = 1, kSme = 2 };
enum class BufferKind { kCf = 0, kRf = 1, kSf = 2, kMv = 3 };
enum class Direction { kHostToDevice = 0, kDeviceToHost = 1 };

/// Per-device characterization snapshot; units: milliseconds per MB row
/// (t_rstar_ms: milliseconds per frame).
struct DeviceParams {
  double k_me = 0.0;
  double k_int = 0.0;
  double k_sme = 0.0;
  // [BufferKind][Direction]
  double k_xfer[4][2] = {};
  double t_rstar_ms = 0.0;

  bool compute_known() const { return k_me > 0 && k_int > 0 && k_sme > 0; }
};

/// Largest relative change across two parameter snapshots (0 = identical).
/// A parameter appearing or disappearing (0 ↔ nonzero) counts as a full
/// 1.0 drift, so quarantine eviction or first-time characterization always
/// exceeds any sane convergence epsilon. Drives the load balancer's
/// convergence detector and the frame pipeline's consume-time validation.
inline double relative_drift(const DeviceParams& a, const DeviceParams& b) {
  auto rel = [](double x, double y) {
    if (x == y) return 0.0;
    const double den = std::max(std::abs(x), std::abs(y));
    return std::abs(x - y) / den;
  };
  double d = std::max({rel(a.k_me, b.k_me), rel(a.k_int, b.k_int),
                       rel(a.k_sme, b.k_sme),
                       rel(a.t_rstar_ms, b.t_rstar_ms)});
  for (int buf = 0; buf < 4; ++buf) {
    for (int dir = 0; dir < 2; ++dir) {
      d = std::max(d, rel(a.k_xfer[buf][dir], b.k_xfer[buf][dir]));
    }
  }
  return d;
}

class PerfCharacterization {
 public:
  /// `alpha` is the EWMA weight of the newest observation.
  explicit PerfCharacterization(int num_devices, double alpha = 0.5)
      : alpha_(alpha), params_(static_cast<std::size_t>(num_devices)) {
    FEVES_CHECK(num_devices >= 1);
    FEVES_CHECK(alpha > 0.0 && alpha <= 1.0);
  }

  int num_devices() const { return static_cast<int>(params_.size()); }

  void observe_compute(int device, ComputeModule module, int rows, double ms);
  void observe_transfer(int device, BufferKind buffer, Direction dir, int rows,
                        double ms);
  void observe_rstar(int device, double ms);

  const DeviceParams& params(int device) const {
    FEVES_CHECK(device >= 0 && device < num_devices());
    return params_[device];
  }

  /// True once every device has compute parameters (i.e. the equidistant
  /// initialization frame has been processed everywhere). With an active
  /// mask, only schedulable devices are required — quarantined devices
  /// (whose entries were evicted) must not block balancing for survivors.
  bool initialized(const std::vector<bool>* active = nullptr) const {
    FEVES_CHECK(active == nullptr ||
                static_cast<int>(active->size()) == num_devices());
    for (int i = 0; i < num_devices(); ++i) {
      if (active != nullptr && !(*active)[i]) continue;
      if (!params_[i].compute_known()) return false;
    }
    return true;
  }

  /// Subset of `active` whose compute parameters are known — the devices an
  /// LP can balance over right now. Used by the share-aware probe path: when
  /// a session's grant churns in a never-seen device, the known devices keep
  /// carrying an LP-balanced frame while the newcomer gets a probe slice.
  std::vector<bool> characterized_mask(const std::vector<bool>* active) const {
    FEVES_CHECK(active == nullptr ||
                static_cast<int>(active->size()) == num_devices());
    std::vector<bool> known(static_cast<std::size_t>(num_devices()), false);
    for (int i = 0; i < num_devices(); ++i) {
      if (active != nullptr && !(*active)[i]) continue;
      known[i] = params_[i].compute_known();
    }
    return known;
  }

  /// Drops a device's characterization (quarantine eviction): after
  /// re-admission it must be re-characterized from a fresh initialization
  /// frame, not balanced from stale pre-fault measurements.
  void evict(int device) {
    FEVES_CHECK(device >= 0 && device < num_devices());
    params_[device] = DeviceParams{};
  }

  /// Directly seeds parameters (tests / warm restarts).
  void seed(int device, const DeviceParams& p) {
    FEVES_CHECK(device >= 0 && device < num_devices());
    params_[device] = p;
  }

 private:
  void fold(double* slot, double value) {
    *slot = (*slot == 0.0) ? value : alpha_ * value + (1.0 - alpha_) * *slot;
  }

  double alpha_;
  std::vector<DeviceParams> params_;
};

}  // namespace feves
