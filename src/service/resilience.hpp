// Session-level resilience policy for the encode service: the pieces that
// turn "any escaped exception is session death" into a budgeted recovery
// ladder. Per-frame op retries live inside the frameworks
// (FrameworkOptions::max_frame_retries) and whole-grant re-requests in the
// session loop; this layer adds the two rungs above them —
//
//   op retry  →  grant re-request  →  checkpoint-restart  →  fail w/ reason
//
// — plus the service-wide overload machinery: deadline budgets with
// exponential backoff + deterministic jitter, a pool-exhaustion circuit
// breaker shared by every session, and a graceful-degradation ladder
// (shrink the fair-share grant, then — virtual mode only, where there is
// no bitstream to keep bit-exact — reduce the search range).
#pragma once

#include "common/rng.hpp"
#include "core/collaborative_encoder.hpp"
#include "obs/telemetry.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <mutex>

namespace feves {

/// Why a session reached its terminal state. Every SessionResult carries
/// exactly one of these — chaos-harness invariant: no session ends without
/// an attributed reason.
enum class TerminalReason {
  kCompleted,          ///< encoded every requested frame
  kAborted,            ///< abort() landed (or the service shut down)
  kShed,               ///< dropped by priority-aware admission shedding
  kDeadlineExceeded,   ///< per-session deadline_ms budget ran out
  kRestartsExhausted,  ///< ladder reached max_restarts without recovering
  kNoUsableDevice,     ///< no device left and restarting is disabled
  kProbationChurn,     ///< retries burned re-probing probation devices that
                       ///< kept relapsing — distinct from a drained pool
  kNoLiveWorker,       ///< cluster tier: every worker node stayed dead past
                       ///< the reassignment grace window
  kError,              ///< unexpected exception (bug, not policy)
};

const char* to_string(TerminalReason reason);

/// Per-session resilience policy (SessionConfig::resilience).
struct ResilienceOptions {
  /// Frames between checkpoints (1 = every frame boundary; 0 disables
  /// checkpointing, so a restart replays the session from frame 0).
  int checkpoint_interval = 1;
  /// Checkpoint-restarts allowed before the session fails with
  /// kRestartsExhausted. 0 disables the restart rung entirely.
  int max_restarts = 4;
  /// Wall-clock budget for the whole session including every retry and
  /// restart; 0 = unbounded. Exceeding it fails with kDeadlineExceeded.
  double deadline_ms = 0.0;
  // Exponential backoff between restarts, jittered to de-synchronize
  // sessions recovering from the same storm. Deterministic per seed.
  double backoff_initial_ms = 0.5;
  double backoff_factor = 2.0;
  double backoff_max_ms = 50.0;
  double backoff_jitter = 0.5;  ///< ± fraction of the delay randomized
  u64 backoff_seed = 0xB0FFull;
  /// Degradation ladder: after this many restarts the session asks the
  /// arbiter for at most `degraded_max_devices` (shrinking its fair share
  /// to leave the storming pool room to drain); < 0 disables the ladder.
  int degrade_after_restarts = 2;
  int degraded_max_devices = 1;
  /// Second rung, virtual mode only (a real session's bitstream must stay
  /// bit-exact): restarts past the degrade point also halve the search
  /// range, shrinking per-frame device time under sustained storms.
  bool degrade_search_range = true;
};

/// Exponential backoff ladder with deterministic ± jitter.
class Backoff {
 public:
  Backoff(const ResilienceOptions& opts, u64 salt)
      : opts_(opts), rng_(opts.backoff_seed ^ salt) {}

  /// Delay for the next attempt; each call climbs the ladder.
  double next_ms() {
    const double base =
        std::min(opts_.backoff_max_ms,
                 opts_.backoff_initial_ms * std::pow(opts_.backoff_factor,
                                                     static_cast<double>(attempts_)));
    ++attempts_;
    const double jitter = opts_.backoff_jitter * base;
    return std::max(0.0, base + rng_.uniform_real(-jitter, jitter));
  }

  void reset() { attempts_ = 0; }
  int attempts() const { return attempts_; }

 private:
  ResilienceOptions opts_;
  Rng rng_;
  int attempts_ = 0;
};

struct CircuitBreakerOptions {
  /// Consecutive whole-grant failures (service-wide) that trip the breaker.
  int trip_threshold = 6;
  /// Cool-down while open; afterwards half-open lets probes through.
  double open_ms = 5.0;
};

/// Pool-exhaustion circuit breaker, shared by every session of a service.
/// When grant after grant dies across sessions (a quarantine storm has
/// poisoned most of the pool), the breaker opens and sessions wait out the
/// cool-down instead of hammering the arbiter with doomed acquire/fail
/// cycles; a half-open probe closing it re-opens the floodgates.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(CircuitBreakerOptions opts = {}) : opts_(opts) {}

  /// A whole grant died mid-frame.
  void record_failure() {
    std::lock_guard lock(mu_);
    ++consecutive_failures_;
    if (state_ == State::kClosed &&
        consecutive_failures_ >= opts_.trip_threshold) {
      trip_locked();
    } else if (state_ == State::kHalfOpen) {
      trip_locked();  // probe failed: back to open, fresh cool-down
    }
  }

  /// A frame completed cleanly on its grant.
  void record_success() {
    std::lock_guard lock(mu_);
    consecutive_failures_ = 0;
    state_ = State::kClosed;
  }

  /// 0 when requests may proceed (closed, or open long enough to probe);
  /// otherwise the remaining cool-down the caller should sleep before
  /// asking again.
  double wait_ms() {
    std::lock_guard lock(mu_);
    if (state_ == State::kClosed || state_ == State::kHalfOpen) return 0.0;
    const double elapsed =
        std::chrono::duration<double, std::milli>(Clock::now() - opened_at_)
            .count();
    if (elapsed >= opts_.open_ms) {
      state_ = State::kHalfOpen;
      return 0.0;
    }
    return opts_.open_ms - elapsed;
  }

  int trips() const {
    std::lock_guard lock(mu_);
    return trips_;
  }

 private:
  using Clock = std::chrono::steady_clock;
  enum class State { kClosed, kOpen, kHalfOpen };

  void trip_locked() {
    state_ = State::kOpen;
    opened_at_ = Clock::now();
    ++trips_;
  }

  CircuitBreakerOptions opts_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int trips_ = 0;
  Clock::time_point opened_at_{};
};

/// Frame-boundary snapshot of one service session: the encoder-side
/// checkpoint plus the session-side resume coordinates (how much of the
/// result — frames, bitstream bytes — the snapshot covers). Real sessions
/// fill `enc`; virtual sessions fill `fw`.
struct SessionCheckpoint {
  bool valid = false;
  std::size_t frames_recorded = 0;   ///< FrameStats entries at the boundary
  std::size_t bitstream_bytes = 0;   ///< real mode: stream length to keep
  EncoderCheckpoint enc;             ///< real mode
  FrameworkCheckpoint fw;            ///< virtual mode
};

/// Per-session budget/ladder bookkeeping driving the session loop: tracks
/// the deadline, meters restarts through the backoff, reports grant
/// outcomes to the shared breaker, and answers where on the degradation
/// ladder the session currently sits.
class SessionGovernor {
 public:
  SessionGovernor(const ResilienceOptions& opts, CircuitBreaker* breaker,
                  u64 backoff_salt)
      : opts_(opts), breaker_(breaker), backoff_(opts, backoff_salt),
        start_(Clock::now()) {}

  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }
  bool deadline_exceeded() const {
    return opts_.deadline_ms > 0.0 && elapsed_ms() >= opts_.deadline_ms;
  }
  /// Remaining budget; huge when unbounded.
  double remaining_ms() const {
    if (opts_.deadline_ms <= 0.0) return 1e18;
    return std::max(0.0, opts_.deadline_ms - elapsed_ms());
  }

  bool can_restart() const {
    return opts_.max_restarts > 0 && restarts_ < opts_.max_restarts &&
           !deadline_exceeded();
  }
  /// Books one checkpoint-restart and returns the (deadline-clamped)
  /// backoff delay to sleep before it. Call only when can_restart().
  double begin_restart() {
    ++restarts_;
    return std::min(backoff_.next_ms(), remaining_ms());
  }

  void frame_completed() {
    backoff_.reset();
    if (breaker_ != nullptr) breaker_->record_success();
  }
  void grant_lost() {
    if (breaker_ != nullptr) breaker_->record_failure();
  }
  /// Deadline-clamped breaker cool-down to sleep before the next acquire
  /// (0 = proceed).
  double breaker_wait_ms() {
    if (breaker_ == nullptr) return 0.0;
    return std::min(breaker_->wait_ms(), remaining_ms());
  }

  int restarts() const { return restarts_; }
  bool degraded() const {
    return opts_.degrade_after_restarts >= 0 &&
           restarts_ > opts_.degrade_after_restarts;
  }
  /// Grant-size cap for PoolArbiter::acquire (0 = uncapped).
  int max_devices_hint() const {
    return degraded() ? std::max(1, opts_.degraded_max_devices) : 0;
  }
  /// Virtual-mode search range after degradation (identity when intact).
  int degraded_search_range(int search_range) const {
    if (!degraded() || !opts_.degrade_search_range) return search_range;
    return std::max(4, search_range / 2);
  }

 private:
  using Clock = std::chrono::steady_clock;
  ResilienceOptions opts_;
  CircuitBreaker* breaker_;
  Backoff backoff_;
  Clock::time_point start_;
  int restarts_ = 0;
};

}  // namespace feves
