// Pool arbiter: the fair-share policy of the multi-session encode service.
// Sessions are admitted up to a bound, and each frame they request a grant —
// a leased subset of the shared device pool sized by weighted fair share
// (grant ≈ pool × weight / Σ active weights, at least one device, clamped to
// what is currently free, so idle sessions' shares rebalance to active ones
// automatically). Between eligible waiters the next grant goes to the
// session with the least weighted virtual service (Σ device·ms consumed /
// weight) — start-time fair queueing over devices instead of link bandwidth.
//
// Two timelines coexist:
//  * Wall clock: grants are mutually exclusive via the DevicePool, so
//    concurrent sessions really do run on disjoint devices.
//  * Virtual clock: release() advances per-device busy time by the frame's
//    reported duration, giving deterministic-shape throughput/queue-wait
//    accounting that works identically for the DES-driven virtual framework
//    (whose frame times are modelled, not elapsed) and the real encoder.
//
// Overload control: beyond the live bound, admit() can park sessions in a
// bounded admission queue (ArbiterOptions::admission_queue). Queued sessions
// are promoted by weight when a live one retires; when the queue itself is
// full, the lowest-weight queued session is shed in favour of a strictly
// higher-weight newcomer — priority-aware load shedding instead of
// tail-drop.
#pragma once

#include "platform/pool.hpp"

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace feves {

struct ArbiterOptions {
  /// Admission bound: at most this many sessions hold live shares.
  int max_sessions = 16;
  /// Bounded admission queue behind the live bound (0 = refuse instead of
  /// queueing, the legacy behaviour). Queued sessions park in acquire()
  /// without a share until promoted, or are shed under queue pressure.
  int admission_queue = 0;
  /// Prefer re-granting the devices a session held last frame. Keeps device
  /// mirrors warm (real mode) and characterizations valid (fewer probe /
  /// re-init frames) at the cost of slower rebalancing after churn.
  bool prefer_affinity = true;
};

/// How an acquire() call ended when it did not produce a grant — the
/// caller's terminal-state attribution depends on the distinction.
enum class AcquireOutcome {
  kGranted,   ///< grant returned
  kAborted,   ///< abort() landed on the session
  kShed,      ///< session was shed by admission-queue pressure
  kShutdown,  ///< the arbiter is being destroyed
};

/// Arbiter-side accounting for one session (snapshot; all times virtual).
struct SessionStats {
  int frames = 0;                 ///< frames released so far
  double queue_wait_ms = 0.0;     ///< Σ virtual wait for granted devices
  double virtual_end_ms = 0.0;    ///< session's virtual completion time
  double granted_device_ms = 0.0; ///< Σ grant size × frame duration
  double used_device_ms = 0.0;    ///< Σ devices given rows × frame duration
  double weight = 1.0;

  double fps() const {
    return virtual_end_ms > 0 ? 1000.0 * frames / virtual_end_ms : 0.0;
  }
  /// Fraction of granted device-time the scheduler actually assigned rows
  /// to. Low values mean the session is granted more devices than its LP
  /// can use — a sizing (weight) problem, not a scheduling one.
  double grant_utilization() const {
    return granted_device_ms > 0 ? used_device_ms / granted_device_ms : 0.0;
  }
};

class PoolArbiter {
 public:
  /// One grant: the device lease plus the share accounting release() needs.
  /// RAII: a grant that goes out of scope without passing through release()
  /// — an exception unwinding a session loop — hands its devices back to
  /// the pool AND wakes the arbiter's parked waiters. (The lease alone
  /// would free the devices but leave waiters parked on the arbiter's
  /// condition variable until some unrelated event; that silent stall was
  /// the classic leaked-grant failure mode.)
  class Grant {
   public:
    Grant() = default;
    ~Grant() { abandon(); }
    Grant(Grant&& o) noexcept
        : lease(std::move(o.lease)),
          num_devices(o.num_devices),
          arbiter_(o.arbiter_),
          session_(o.session_) {
      o.arbiter_ = nullptr;
      o.num_devices = 0;
    }
    Grant& operator=(Grant&& o) noexcept {
      if (this != &o) {
        abandon();
        lease = std::move(o.lease);
        num_devices = o.num_devices;
        arbiter_ = o.arbiter_;
        session_ = o.session_;
        o.arbiter_ = nullptr;
        o.num_devices = 0;
      }
      return *this;
    }
    Grant(const Grant&) = delete;
    Grant& operator=(const Grant&) = delete;

    DeviceLease lease;
    int num_devices = 0;

   private:
    friend class PoolArbiter;
    void abandon();
    PoolArbiter* arbiter_ = nullptr;
    int session_ = -1;
  };

  PoolArbiter(int num_devices, ArbiterOptions opts = {});
  /// Wakes every parked acquire() with nullopt. Callers must have joined
  /// their session threads before the arbiter is destroyed (leases point
  /// into its pool).
  ~PoolArbiter();

  /// Admits a session with the given fair-share weight; returns its id.
  /// When the live bound is hit the session is queued (admission_queue
  /// permitting); when the queue is also full, the lowest-weight queued
  /// session is shed iff the newcomer's weight is strictly higher —
  /// otherwise the newcomer itself is refused with -1.
  int admit(double weight = 1.0);

  /// Removes a session from the share computation (idempotent) and
  /// promotes the highest-weight queued session, if any, into the freed
  /// live slot. The retired session's accounting remains readable.
  void retire(int session);

  /// Blocks until this session is a live head-of-line waiter and at least
  /// one device in `usable` is free, then grants a fair share of the free
  /// usable devices — at most `max_devices` of them when that is > 0 (the
  /// graceful-degradation rung: a storm-ridden session volunteering to
  /// shrink). `usable` is the session's own view (its health monitor's
  /// active mask): devices it has quarantined are never granted to it, but
  /// stay grantable to everyone else. Returns nullopt when the session was
  /// aborted or shed or the arbiter is shutting down — `outcome`, when
  /// non-null, says which — and fails loudly when `usable` has no devices
  /// at all.
  std::optional<Grant> acquire(int session, const std::vector<bool>& usable,
                               AcquireOutcome* outcome = nullptr,
                               int max_devices = 0);

  /// Returns a grant, advancing the virtual clocks: the frame occupied the
  /// granted devices for `frame_ms`, of which `used_devices` got rows.
  /// `completed` is false when the frame died mid-encode (fault storm) and
  /// the grant is only being handed back — the attempt still advances the
  /// clocks by `frame_ms` but does not count as a served frame.
  void release(int session, Grant grant, double frame_ms, int used_devices,
               bool completed = true);

  /// Wakes a pending acquire() of this session so it returns nullopt.
  void abort(int session);

  int num_devices() const { return pool_.num_devices(); }
  int live_sessions() const;
  /// Sessions parked in the admission queue (no live share yet).
  int queued_sessions() const;
  /// Devices currently unreserved — equals num_devices() iff no grant is
  /// outstanding (the chaos harness's no-leak invariant).
  int free_devices() const { return pool_.num_free(); }
  SessionStats session_stats(int session) const;
  std::vector<double> device_busy_ms() const;
  /// Virtual makespan: the latest session completion time so far.
  double makespan_ms() const;

 private:
  struct Session {
    double weight = 1.0;
    bool live = false;      ///< admitted and not retired
    bool queued = false;    ///< parked in the admission queue
    bool shed = false;      ///< dropped by admission-queue pressure
    bool retired = false;   ///< passed through retire()
    bool waiting = false;   ///< parked in acquire()
    bool aborted = false;
    std::vector<bool> usable;     ///< waiter's usable snapshot
    std::vector<bool> last_mask;  ///< previous grant (affinity)
    double vtime_ms = 0.0;        ///< session-local virtual clock
    double vservice_ms = 0.0;     ///< Σ device·ms consumed
    SessionStats stats;
  };

  double priority_locked(const Session& s) const {
    return s.vservice_ms / s.weight;
  }
  bool eligible_locked(const Session& s,
                       const std::vector<bool>& free) const;
  bool is_head_locked(int session, const std::vector<bool>& free) const;
  int fair_share_locked(const Session& s) const;
  void promote_locked();

  ArbiterOptions opts_;
  DevicePool pool_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  // deque, not vector: acquire() parks holding a reference into this
  // container, and a concurrent admit() must not reallocate it out from
  // under the waiter. deque::push_back keeps element references stable.
  std::deque<Session> sessions_;
  std::vector<double> dev_free_ms_;  ///< per-device virtual busy horizon
  std::vector<double> dev_busy_ms_;  ///< per-device Σ granted frame time
  bool stopping_ = false;
};

}  // namespace feves
