#include "service/resilience.hpp"

namespace feves {

const char* to_string(TerminalReason reason) {
  switch (reason) {
    case TerminalReason::kCompleted: return "completed";
    case TerminalReason::kAborted: return "aborted";
    case TerminalReason::kShed: return "shed";
    case TerminalReason::kDeadlineExceeded: return "deadline-exceeded";
    case TerminalReason::kRestartsExhausted: return "restarts-exhausted";
    case TerminalReason::kNoUsableDevice: return "no-usable-device";
    case TerminalReason::kProbationChurn: return "probation-churn";
    case TerminalReason::kNoLiveWorker: return "no-live-worker";
    case TerminalReason::kError: return "error";
  }
  return "unknown";
}

}  // namespace feves
