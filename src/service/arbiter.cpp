#include "service/arbiter.hpp"

#include <algorithm>
#include <cmath>

namespace feves {

PoolArbiter::PoolArbiter(int num_devices, ArbiterOptions opts)
    : opts_(opts),
      pool_(num_devices),
      dev_free_ms_(static_cast<std::size_t>(num_devices), 0.0),
      dev_busy_ms_(static_cast<std::size_t>(num_devices), 0.0) {
  FEVES_CHECK(opts_.max_sessions >= 1);
  FEVES_CHECK(opts_.admission_queue >= 0);
}

PoolArbiter::~PoolArbiter() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
}

void PoolArbiter::Grant::abandon() {
  if (arbiter_ == nullptr) {
    lease.release();  // defensively; a well-formed grant always has both
    return;
  }
  PoolArbiter* arbiter = arbiter_;
  arbiter_ = nullptr;
  if (!lease.active()) return;  // passed through release(); nothing to do
  {
    std::lock_guard lock(arbiter->mu_);
    lease.release();  // pool mutex nests inside mu_ (consistent order)
  }
  // The freed devices may satisfy a parked waiter right now — without this
  // wake it would stall until the next unrelated release/abort.
  arbiter->cv_.notify_all();
}

int PoolArbiter::admit(double weight) {
  FEVES_CHECK(weight > 0.0);
  int shed_id = -1;
  int new_id = -1;
  {
    std::lock_guard lock(mu_);
    int live = 0;
    int queued = 0;
    for (const Session& s : sessions_) {
      live += s.live ? 1 : 0;
      queued += s.queued ? 1 : 0;
    }
    Session s;
    s.weight = weight;
    s.stats.weight = weight;
    s.last_mask.assign(static_cast<std::size_t>(num_devices()), false);
    if (live < opts_.max_sessions) {
      s.live = true;
    } else if (queued < opts_.admission_queue) {
      s.queued = true;
    } else if (opts_.admission_queue > 0) {
      // Queue full: shed the lowest-weight queued session (newest id as the
      // tie-break victim) iff the newcomer strictly outweighs it.
      int victim = -1;
      for (int j = 0; j < static_cast<int>(sessions_.size()); ++j) {
        const Session& o = sessions_[static_cast<std::size_t>(j)];
        if (!o.queued) continue;
        if (victim < 0 ||
            o.weight <= sessions_[static_cast<std::size_t>(victim)].weight) {
          victim = j;
        }
      }
      FEVES_CHECK(victim >= 0);
      if (weight <= sessions_[static_cast<std::size_t>(victim)].weight) {
        return -1;  // newcomer loses: refuse it instead
      }
      Session& v = sessions_[static_cast<std::size_t>(victim)];
      v.queued = false;
      v.shed = true;
      shed_id = victim;
      s.queued = true;
    } else {
      return -1;
    }
    sessions_.push_back(std::move(s));
    new_id = static_cast<int>(sessions_.size()) - 1;
  }
  if (shed_id >= 0) cv_.notify_all();  // wake the victim's parked acquire()
  return new_id;
}

void PoolArbiter::promote_locked() {
  int live = 0;
  for (const Session& s : sessions_) live += s.live ? 1 : 0;
  while (live < opts_.max_sessions) {
    int best = -1;
    for (int j = 0; j < static_cast<int>(sessions_.size()); ++j) {
      const Session& o = sessions_[static_cast<std::size_t>(j)];
      if (!o.queued) continue;
      if (best < 0 ||
          o.weight > sessions_[static_cast<std::size_t>(best)].weight) {
        best = j;  // highest weight wins; scan order makes ties lowest-id
      }
    }
    if (best < 0) return;
    Session& p = sessions_[static_cast<std::size_t>(best)];
    p.queued = false;
    p.live = true;
    ++live;
  }
}

void PoolArbiter::retire(int session) {
  {
    std::lock_guard lock(mu_);
    FEVES_CHECK(session >= 0 && session < static_cast<int>(sessions_.size()));
    Session& s = sessions_[static_cast<std::size_t>(session)];
    s.live = false;
    s.queued = false;
    s.retired = true;
    promote_locked();
  }
  // Shares just rebalanced (and a queued session may have been promoted);
  // waiters may deserve bigger grants now.
  cv_.notify_all();
}

bool PoolArbiter::eligible_locked(const Session& s,
                                  const std::vector<bool>& free) const {
  // Only live sessions compete for grants: a queued session has priority 0
  // (no service yet) and would otherwise win head-of-line over every live
  // waiter while holding no share.
  if (!s.live || !s.waiting || s.aborted || s.shed) return false;
  for (std::size_t i = 0; i < free.size(); ++i) {
    if (free[i] && s.usable[i]) return true;
  }
  return false;
}

bool PoolArbiter::is_head_locked(int session,
                                 const std::vector<bool>& free) const {
  const Session& self = sessions_[static_cast<std::size_t>(session)];
  if (!eligible_locked(self, free)) return false;
  const double p = priority_locked(self);
  for (int j = 0; j < static_cast<int>(sessions_.size()); ++j) {
    if (j == session) continue;
    const Session& o = sessions_[static_cast<std::size_t>(j)];
    if (!eligible_locked(o, free)) continue;
    const double q = priority_locked(o);
    if (q < p || (q == p && j < session)) return false;
  }
  return true;
}

int PoolArbiter::fair_share_locked(const Session& s) const {
  double weight_sum = 0.0;
  for (const Session& o : sessions_) {
    if (o.live) weight_sum += o.weight;
  }
  if (weight_sum <= 0.0) weight_sum = s.weight;
  const double share = num_devices() * s.weight / weight_sum;
  return std::max(1, static_cast<int>(std::lround(share)));
}

std::optional<PoolArbiter::Grant> PoolArbiter::acquire(
    int session, const std::vector<bool>& usable, AcquireOutcome* outcome,
    int max_devices) {
  FEVES_CHECK(static_cast<int>(usable.size()) == num_devices());
  bool any_usable = false;
  for (bool u : usable) any_usable |= u;
  FEVES_CHECK_MSG(any_usable,
                  "session " << session << " has no usable device left");
  if (outcome != nullptr) *outcome = AcquireOutcome::kGranted;

  std::unique_lock lock(mu_);
  FEVES_CHECK(session >= 0 && session < static_cast<int>(sessions_.size()));
  Session& s = sessions_[static_cast<std::size_t>(session)];
  FEVES_CHECK_MSG(!s.retired, "acquire() on a retired session");
  s.waiting = true;
  s.usable = usable;
  cv_.wait(lock, [&] {
    return stopping_ || s.aborted || s.shed ||
           is_head_locked(session, pool_.free_mask());
  });
  s.waiting = false;
  if (stopping_ || s.aborted || s.shed) {
    if (outcome != nullptr) {
      *outcome = stopping_   ? AcquireOutcome::kShutdown
                 : s.aborted ? AcquireOutcome::kAborted
                             : AcquireOutcome::kShed;
    }
    return std::nullopt;
  }

  // Pool state only changes under mu_ (acquire/release below), so this
  // snapshot is the state try_reserve will see.
  const std::vector<bool> free = pool_.free_mask();
  int share = fair_share_locked(s);
  if (max_devices > 0) share = std::min(share, max_devices);

  // Candidate devices: free ∩ usable, affinity devices first, then by
  // least virtual backlog (a device another session just loaded up is a
  // worse pick than an idle one), index as the deterministic tie-break.
  std::vector<int> candidates;
  for (int i = 0; i < num_devices(); ++i) {
    if (free[static_cast<std::size_t>(i)] && usable[static_cast<std::size_t>(i)]) {
      candidates.push_back(i);
    }
  }
  std::stable_sort(candidates.begin(), candidates.end(), [&](int a, int b) {
    if (opts_.prefer_affinity) {
      const bool aff_a = s.last_mask[static_cast<std::size_t>(a)];
      const bool aff_b = s.last_mask[static_cast<std::size_t>(b)];
      if (aff_a != aff_b) return aff_a;
    }
    const double fa = dev_free_ms_[static_cast<std::size_t>(a)];
    const double fb = dev_free_ms_[static_cast<std::size_t>(b)];
    if (fa != fb) return fa < fb;
    return a < b;
  });

  const int n = std::min(share, static_cast<int>(candidates.size()));
  FEVES_CHECK(n >= 1);
  std::vector<bool> mask(static_cast<std::size_t>(num_devices()), false);
  for (int k = 0; k < n; ++k) mask[static_cast<std::size_t>(candidates[k])] = true;

  auto lease = pool_.try_reserve(mask);
  FEVES_CHECK_MSG(lease.has_value(), "pool reservation raced the arbiter");
  s.last_mask = mask;

  Grant grant;
  grant.lease = std::move(*lease);
  grant.num_devices = n;
  grant.arbiter_ = this;
  grant.session_ = session;
  lock.unlock();
  // The remaining free devices may now satisfy the next eligible waiter.
  cv_.notify_all();
  return grant;
}

void PoolArbiter::release(int session, Grant grant, double frame_ms,
                          int used_devices, bool completed) {
  FEVES_CHECK(frame_ms >= 0.0);
  {
    std::lock_guard lock(mu_);
    FEVES_CHECK(session >= 0 && session < static_cast<int>(sessions_.size()));
    Session& s = sessions_[static_cast<std::size_t>(session)];
    const std::vector<bool>& mask = grant.lease.mask();

    // Virtual timeline: the frame starts once the session's own clock AND
    // every granted device are virtually free; the gap before that start is
    // the session's queue wait.
    double start = s.vtime_ms;
    for (std::size_t i = 0; i < mask.size(); ++i) {
      if (mask[i]) start = std::max(start, dev_free_ms_[i]);
    }
    s.stats.queue_wait_ms += start - s.vtime_ms;
    const double end = start + frame_ms;
    for (std::size_t i = 0; i < mask.size(); ++i) {
      if (!mask[i]) continue;
      dev_free_ms_[i] = end;
      dev_busy_ms_[i] += frame_ms;
    }
    s.vtime_ms = end;
    s.vservice_ms += frame_ms * grant.num_devices;
    if (completed) s.stats.frames += 1;
    s.stats.virtual_end_ms = end;
    s.stats.granted_device_ms += frame_ms * grant.num_devices;
    s.stats.used_device_ms += frame_ms * std::min(used_devices, grant.num_devices);

    grant.lease.release();  // pool mutex nests inside mu_ (consistent order)
    grant.arbiter_ = nullptr;  // fully consumed; dtor must not re-enter mu_
  }
  cv_.notify_all();
}

void PoolArbiter::abort(int session) {
  {
    std::lock_guard lock(mu_);
    FEVES_CHECK(session >= 0 && session < static_cast<int>(sessions_.size()));
    sessions_[static_cast<std::size_t>(session)].aborted = true;
  }
  cv_.notify_all();
}

int PoolArbiter::live_sessions() const {
  std::lock_guard lock(mu_);
  int live = 0;
  for (const Session& s : sessions_) live += s.live ? 1 : 0;
  return live;
}

int PoolArbiter::queued_sessions() const {
  std::lock_guard lock(mu_);
  int queued = 0;
  for (const Session& s : sessions_) queued += s.queued ? 1 : 0;
  return queued;
}

SessionStats PoolArbiter::session_stats(int session) const {
  std::lock_guard lock(mu_);
  FEVES_CHECK(session >= 0 && session < static_cast<int>(sessions_.size()));
  return sessions_[static_cast<std::size_t>(session)].stats;
}

std::vector<double> PoolArbiter::device_busy_ms() const {
  std::lock_guard lock(mu_);
  return dev_busy_ms_;
}

double PoolArbiter::makespan_ms() const {
  std::lock_guard lock(mu_);
  double makespan = 0.0;
  for (const Session& s : sessions_) {
    makespan = std::max(makespan, s.stats.virtual_end_ms);
  }
  return makespan;
}

}  // namespace feves
