// Multi-session encode service: N concurrent encode sessions over one
// shared heterogeneous device pool. Each submitted session runs its own
// Algorithm-1 loop (VirtualFramework without a video source, the real
// CollaborativeEncoder with one) on a worker thread; every frame it asks
// the PoolArbiter for a weighted fair share of the free devices, encodes
// over that grant — the LP balancing only the granted subset, the executors
// enforcing the lease — and releases the share with the frame's duration so
// the arbiter's virtual clocks and fairness accounting advance.
//
// The correctness anchor survives multi-tenancy: a session's bitstream and
// reconstruction are bit-identical to encoding the same sequence alone,
// whatever the arbiter grants frame to frame (tests/service/service_test).
//
// Resilience (src/service/resilience.hpp): each session climbs an
// escalation ladder instead of dying on the first escaped exception —
// per-frame op retries (inside the frameworks), whole-grant re-requests,
// deadline-budgeted checkpoint-restarts with jittered backoff, and finally
// an attributed terminal state (SessionResult::reason). Frame-boundary
// SessionCheckpoints also flow out through SessionResult::checkpoint and
// back in through SessionConfig::resume, so an aborted or crashed session
// can be resubmitted and continue bit-identically from its last good frame.
// Service-wide, a pool-exhaustion circuit breaker paces sessions through
// quarantine storms and the arbiter's bounded admission queue sheds the
// lowest-priority overload instead of stalling everyone.
#pragma once

#include "core/collaborative_encoder.hpp"
#include "core/framework.hpp"
#include "service/arbiter.hpp"
#include "service/resilience.hpp"
#include "video/sequence.hpp"

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace feves {

/// One encode session: a sequence plus the framework options to run it
/// with. `source == nullptr` selects virtual mode (the DES framework over
/// `frames` inter-frames); a source selects real mode (frame 0 is the
/// bootstrap I frame, encoded host-side without a grant).
struct SessionConfig {
  EncoderConfig cfg;
  FrameworkOptions fw;
  int frames = 8;
  double weight = 1.0;  ///< fair-share weight (arbiter + shedding priority)
  /// Retry / checkpoint / degradation policy for this session.
  ResilienceOptions resilience;
  /// Resume from a prior session's checkpoint (same config and source):
  /// encoding continues at the first frame the snapshot does not cover and
  /// `frames` still names the stream total, so the session encodes frames
  /// [checkpoint, frames). The emitted bitstream holds only the
  /// continuation — append it to the crashed session's first
  /// `checkpoint->bitstream_bytes` bytes to reassemble the full stream.
  std::shared_ptr<const SessionCheckpoint> resume;
  // Virtual-mode inputs:
  PerturbationSchedule perturbations;
  FaultSchedule faults;
  // Real-mode inputs:
  std::shared_ptr<VideoSource> source;
  SimdTier tier = SimdTier::kAuto;
};

struct SessionResult {
  enum class State { kCompleted, kAborted, kShed, kFailed };
  int id = -1;
  State state = State::kCompleted;
  TerminalReason reason = TerminalReason::kCompleted;
  std::string error;               ///< kFailed: what the session threw
  std::vector<FrameStats> frames;  ///< per encoded inter-frame
  std::vector<u8> bitstream;       ///< real mode only
  SessionStats share;              ///< arbiter accounting (virtual times)
  /// Last frame-boundary checkpoint taken (valid==false when none was) —
  /// feed it to SessionConfig::resume to restart a dead session elsewhere.
  SessionCheckpoint checkpoint;
  obs::ResilienceTelemetry resilience;  ///< this session's recovery counters
  /// Where the graceful-degradation ladder ended: 0 = intact, 1 = grant
  /// shrunk to degraded_max_devices, 2 = search range also reduced.
  int degrade_level = 0;
};

/// Service-level aggregate over every session submitted so far.
struct ServiceStats {
  int admitted = 0;
  int rejected = 0;   ///< submissions refused by admission control
  int shed = 0;       ///< admitted sessions later shed by queue pressure
  long total_frames = 0;
  double makespan_ms = 0.0;      ///< latest session virtual end
  double aggregate_fps = 0.0;    ///< total_frames / makespan
  double sum_session_fps = 0.0;  ///< Σ per-session fps
  double total_queue_wait_ms = 0.0;
  double mean_grant_utilization = 0.0;
  std::vector<double> device_busy_ms;
  /// Recovery counters summed over finished sessions (breaker_trips is
  /// service-wide: the breaker is shared).
  obs::ResilienceTelemetry resilience;
};

struct ServiceOptions {
  ArbiterOptions arbiter;
  CircuitBreakerOptions breaker;
};

class EncodeService {
 public:
  EncodeService(const PlatformTopology& topo, ServiceOptions opts = {});
  /// Aborts and joins every still-running session.
  ~EncodeService();

  /// Starts a session on its own worker thread. Returns the session id, or
  /// -1 when admission control refused it (live sessions and admission
  /// queue both full, and the session's weight does not beat any queued
  /// one). When `cfg.fw.trace` is set, the TraceSession is stamped with the
  /// session id (it must outlive the service and not be shared between
  /// sessions).
  int submit(SessionConfig cfg);

  /// Requests a session stop before its next frame (and wakes it if it is
  /// parked in the arbiter). The partial result stays collectable.
  void abort(int session);

  /// Joins the session and returns its result. Each id collectable once.
  SessionResult wait(int session);

  /// wait() for every not-yet-collected session, in submission order.
  std::vector<SessionResult> drain();

  /// Aggregate snapshot (meaningful once sessions finished; callable any
  /// time). Does not include sessions' own FrameStats — those are in the
  /// per-session results.
  ServiceStats stats() const;

  const PlatformTopology& topology() const { return topo_; }
  const PoolArbiter& arbiter() const { return arbiter_; }

 private:
  struct Session {
    int id = -1;
    SessionConfig cfg;
    std::thread thread;
    std::atomic<bool> abort{false};
    SessionResult result;
    bool collected = false;
  };

  void run_session(Session* s);
  TerminalReason run_virtual(Session* s);
  TerminalReason run_real(Session* s);
  /// Sleeps ~ms (sliced so an abort cuts it short), booking the wait into
  /// the session's telemetry and trace lane.
  void backoff_sleep(Session* s, double ms, int frame, const char* why);
  /// Devices the distribution actually assigned work to.
  static int used_devices(const Distribution& dist);

  PlatformTopology topo_;
  ServiceOptions opts_;
  PoolArbiter arbiter_;
  CircuitBreaker breaker_;
  mutable std::mutex mu_;  ///< guards sessions_ vector growth / collection
  std::vector<std::unique_ptr<Session>> sessions_;
  std::atomic<int> rejected_{0};
  // Aggregated under mu_ as sessions finish (results move out on wait()).
  obs::ResilienceTelemetry finished_resilience_;
  int shed_sessions_ = 0;
};

}  // namespace feves
