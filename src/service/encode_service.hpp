// Multi-session encode service: N concurrent encode sessions over one
// shared heterogeneous device pool. Each submitted session runs its own
// Algorithm-1 loop (VirtualFramework without a video source, the real
// CollaborativeEncoder with one) on a worker thread; every frame it asks
// the PoolArbiter for a weighted fair share of the free devices, encodes
// over that grant — the LP balancing only the granted subset, the executors
// enforcing the lease — and releases the share with the frame's duration so
// the arbiter's virtual clocks and fairness accounting advance.
//
// The correctness anchor survives multi-tenancy: a session's bitstream and
// reconstruction are bit-identical to encoding the same sequence alone,
// whatever the arbiter grants frame to frame (tests/service/service_test).
#pragma once

#include "core/collaborative_encoder.hpp"
#include "core/framework.hpp"
#include "service/arbiter.hpp"
#include "video/sequence.hpp"

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace feves {

/// One encode session: a sequence plus the framework options to run it
/// with. `source == nullptr` selects virtual mode (the DES framework over
/// `frames` inter-frames); a source selects real mode (frame 0 is the
/// bootstrap I frame, encoded host-side without a grant).
struct SessionConfig {
  EncoderConfig cfg;
  FrameworkOptions fw;
  int frames = 8;
  double weight = 1.0;  ///< fair-share weight (arbiter)
  // Virtual-mode inputs:
  PerturbationSchedule perturbations;
  FaultSchedule faults;
  // Real-mode inputs:
  std::shared_ptr<VideoSource> source;
  SimdTier tier = SimdTier::kAuto;
};

struct SessionResult {
  enum class State { kCompleted, kAborted, kFailed };
  int id = -1;
  State state = State::kCompleted;
  std::string error;               ///< kFailed: what the session threw
  std::vector<FrameStats> frames;  ///< per encoded inter-frame
  std::vector<u8> bitstream;       ///< real mode only
  SessionStats share;              ///< arbiter accounting (virtual times)
};

/// Service-level aggregate over every session submitted so far.
struct ServiceStats {
  int admitted = 0;
  int rejected = 0;   ///< submissions refused by admission control
  long total_frames = 0;
  double makespan_ms = 0.0;      ///< latest session virtual end
  double aggregate_fps = 0.0;    ///< total_frames / makespan
  double sum_session_fps = 0.0;  ///< Σ per-session fps
  double total_queue_wait_ms = 0.0;
  double mean_grant_utilization = 0.0;
  std::vector<double> device_busy_ms;
};

struct ServiceOptions {
  ArbiterOptions arbiter;
};

class EncodeService {
 public:
  EncodeService(const PlatformTopology& topo, ServiceOptions opts = {});
  /// Aborts and joins every still-running session.
  ~EncodeService();

  /// Starts a session on its own worker thread. Returns the session id, or
  /// -1 when admission control refused it (max_sessions live sessions).
  /// When `cfg.fw.trace` is set, the TraceSession is stamped with the
  /// session id (it must outlive the service and not be shared between
  /// sessions).
  int submit(SessionConfig cfg);

  /// Requests a session stop before its next frame (and wakes it if it is
  /// parked in the arbiter). The partial result stays collectable.
  void abort(int session);

  /// Joins the session and returns its result. Each id collectable once.
  SessionResult wait(int session);

  /// wait() for every not-yet-collected session, in submission order.
  std::vector<SessionResult> drain();

  /// Aggregate snapshot (meaningful once sessions finished; callable any
  /// time). Does not include sessions' own FrameStats — those are in the
  /// per-session results.
  ServiceStats stats() const;

  const PlatformTopology& topology() const { return topo_; }
  const PoolArbiter& arbiter() const { return arbiter_; }

 private:
  struct Session {
    int id = -1;
    SessionConfig cfg;
    std::thread thread;
    std::atomic<bool> abort{false};
    SessionResult result;
    bool collected = false;
  };

  void run_session(Session* s);
  void run_virtual(Session* s);
  void run_real(Session* s);
  /// Devices the distribution actually assigned work to.
  static int used_devices(const Distribution& dist);

  PlatformTopology topo_;
  ServiceOptions opts_;
  PoolArbiter arbiter_;
  mutable std::mutex mu_;  ///< guards sessions_ vector growth / collection
  std::vector<std::unique_ptr<Session>> sessions_;
  std::atomic<int> rejected_{0};
};

}  // namespace feves
