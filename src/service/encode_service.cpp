#include "service/encode_service.hpp"

#include <chrono>

namespace feves {

namespace {

using SteadyClock = std::chrono::steady_clock;

double ms_since(SteadyClock::time_point t0) {
  return std::chrono::duration<double, std::milli>(SteadyClock::now() - t0)
      .count();
}

/// True if any device in the session's health mask is still usable.
bool any_usable(const std::vector<bool>& mask) {
  for (bool b : mask) {
    if (b) return true;
  }
  return false;
}

/// True when the usable mask is non-empty but consists ENTIRELY of
/// probation devices: the grant can only draw from half-trusted hardware.
/// A frame failure on such a grant is a probation relapse, not pool
/// exhaustion, and the terminal attribution must say so — an operator
/// reacts to "devices flapping through probation" (cap re-admission, drain
/// the node) very differently from "pool drained" (add capacity).
bool all_probation(const DeviceHealthMonitor& health,
                   const std::vector<bool>& usable) {
  bool any = false;
  for (int d = 0; d < static_cast<int>(usable.size()); ++d) {
    if (!usable[static_cast<std::size_t>(d)]) continue;
    if (health.state(d) != DeviceHealth::kProbation) return false;
    any = true;
  }
  return any;
}

}  // namespace

EncodeService::EncodeService(const PlatformTopology& topo, ServiceOptions opts)
    : topo_(topo),
      opts_(opts),
      arbiter_(topo.num_devices(), opts.arbiter),
      breaker_(opts.breaker) {
  topo_.validate();
}

EncodeService::~EncodeService() {
  {
    std::lock_guard lock(mu_);
    for (auto& s : sessions_) {
      if (!s->collected) {
        s->abort.store(true, std::memory_order_relaxed);
        arbiter_.abort(s->id);
      }
    }
  }
  for (auto& s : sessions_) {
    if (s->thread.joinable()) s->thread.join();
  }
}

int EncodeService::submit(SessionConfig cfg) {
  std::lock_guard lock(mu_);
  const int id = arbiter_.admit(cfg.weight);
  if (id < 0) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return -1;
  }
  if (cfg.fw.trace != nullptr) cfg.fw.trace->set_session(id);
  auto session = std::make_unique<Session>();
  session->id = id;
  session->cfg = std::move(cfg);
  Session* raw = session.get();
  sessions_.push_back(std::move(session));
  raw->thread = std::thread([this, raw] { run_session(raw); });
  return id;
}

void EncodeService::abort(int session) {
  std::lock_guard lock(mu_);
  for (auto& s : sessions_) {
    if (s->id == session) {
      s->abort.store(true, std::memory_order_relaxed);
      arbiter_.abort(session);
      return;
    }
  }
  FEVES_CHECK_MSG(false, "abort of unknown session " << session);
}

SessionResult EncodeService::wait(int session) {
  Session* s = nullptr;
  {
    std::lock_guard lock(mu_);
    for (auto& owned : sessions_) {
      if (owned->id == session) {
        s = owned.get();
        break;
      }
    }
    FEVES_CHECK_MSG(s != nullptr, "wait on unknown session " << session);
    FEVES_CHECK_MSG(!s->collected, "session " << session << " already waited");
    s->collected = true;
  }
  if (s->thread.joinable()) s->thread.join();
  return std::move(s->result);
}

std::vector<SessionResult> EncodeService::drain() {
  std::vector<int> pending;
  {
    std::lock_guard lock(mu_);
    for (auto& s : sessions_) {
      if (!s->collected) pending.push_back(s->id);
    }
  }
  std::vector<SessionResult> out;
  out.reserve(pending.size());
  for (int id : pending) out.push_back(wait(id));
  return out;
}

ServiceStats EncodeService::stats() const {
  ServiceStats out;
  out.rejected = rejected_.load(std::memory_order_relaxed);
  out.makespan_ms = arbiter_.makespan_ms();
  out.device_busy_ms = arbiter_.device_busy_ms();
  std::lock_guard lock(mu_);
  out.admitted = static_cast<int>(sessions_.size());
  out.shed = shed_sessions_;
  out.resilience = finished_resilience_;
  out.resilience.breaker_trips = breaker_.trips();
  int utilized_sessions = 0;
  for (const auto& s : sessions_) {
    const SessionStats share = arbiter_.session_stats(s->id);
    out.total_frames += share.frames;
    out.sum_session_fps += share.fps();
    out.total_queue_wait_ms += share.queue_wait_ms;
    if (share.granted_device_ms > 0) {
      out.mean_grant_utilization += share.grant_utilization();
      ++utilized_sessions;
    }
  }
  if (utilized_sessions > 0) out.mean_grant_utilization /= utilized_sessions;
  if (out.makespan_ms > 0) {
    out.aggregate_fps = 1000.0 * out.total_frames / out.makespan_ms;
  }
  return out;
}

int EncodeService::used_devices(const Distribution& dist) {
  const int n = static_cast<int>(dist.me.size());
  int used = 0;
  for (int i = 0; i < n; ++i) {
    if (dist.me[i] + dist.intp[i] + dist.sme[i] > 0 || i == dist.rstar_device) {
      ++used;
    }
  }
  return used;
}

void EncodeService::backoff_sleep(Session* s, double ms, int frame,
                                  const char* why) {
  if (ms <= 0.0) return;
  obs::ResilienceTelemetry& rt = s->result.resilience;
  rt.backoff_waits += 1;
  const auto t0 = SteadyClock::now();
  const auto deadline =
      t0 + std::chrono::duration_cast<SteadyClock::duration>(
               std::chrono::duration<double, std::milli>(ms));
  // Sliced so a landing abort() cuts the wait short instead of holding the
  // session (and its joiner) hostage for a full backoff rung.
  while (!s->abort.load(std::memory_order_relaxed)) {
    const auto now = SteadyClock::now();
    if (now >= deadline) break;
    const auto slice = std::min<SteadyClock::duration>(
        deadline - now, std::chrono::milliseconds(1));
    std::this_thread::sleep_for(slice);
  }
  const double waited = ms_since(t0);
  rt.backoff_wait_ms += waited;
  if (s->cfg.fw.trace != nullptr) {
    s->cfg.fw.trace->add_host_event(frame, why, obs::EventKind::kMark, waited,
                                    obs::kLaneResilience);
  }
}

void EncodeService::run_session(Session* s) {
  s->result.id = s->id;
  TerminalReason reason = TerminalReason::kError;
  try {
    reason = s->cfg.source != nullptr ? run_real(s) : run_virtual(s);
    // An abort that lands after the last frame still counts: callers that
    // asked for an abort must never observe a "completed" session.
    if (reason == TerminalReason::kCompleted &&
        s->abort.load(std::memory_order_relaxed)) {
      reason = TerminalReason::kAborted;
    }
  } catch (const std::exception& e) {
    reason = TerminalReason::kError;
    s->result.error = e.what();
  } catch (...) {
    reason = TerminalReason::kError;
    s->result.error = "unknown exception";
  }
  s->result.reason = reason;
  switch (reason) {
    case TerminalReason::kCompleted:
      s->result.state = SessionResult::State::kCompleted;
      break;
    case TerminalReason::kAborted:
      s->result.state = SessionResult::State::kAborted;
      break;
    case TerminalReason::kShed:
      s->result.state = SessionResult::State::kShed;
      s->result.resilience.shed_sessions = 1;
      break;
    default:
      s->result.state = SessionResult::State::kFailed;
      if (s->result.error.empty()) s->result.error = to_string(reason);
      break;
  }
  arbiter_.retire(s->id);
  s->result.share = arbiter_.session_stats(s->id);
  {
    std::lock_guard lock(mu_);
    finished_resilience_.merge(s->result.resilience);
    if (reason == TerminalReason::kShed) ++shed_sessions_;
  }
}

TerminalReason EncodeService::run_virtual(Session* s) {
  const ResilienceOptions& ro = s->cfg.resilience;
  obs::ResilienceTelemetry& rt = s->result.resilience;
  SessionGovernor gov(ro, &breaker_,
                      (static_cast<u64>(s->id) + 1) * 0x9E3779B97F4A7C15ull);

  // cp is the last good frame boundary; seeded from cfg.resume so a session
  // restarted from a predecessor's checkpoint escalates against it too.
  SessionCheckpoint cp;
  if (s->cfg.resume != nullptr && s->cfg.resume->valid) cp = *s->cfg.resume;

  // Past the degrade point, restarts rebuild the framework with a reduced
  // search range — legitimate in virtual mode only (no bitstream to keep
  // bit-exact); real mode degrades by shrinking its grant instead.
  auto make_fw = [&] {
    EncoderConfig cfg = s->cfg.cfg;
    cfg.search_range = gov.degraded_search_range(cfg.search_range);
    return std::make_unique<VirtualFramework>(cfg, topo_, s->cfg.fw,
                                              s->cfg.perturbations,
                                              s->cfg.faults);
  };

  auto fw = make_fw();
  const int base = cp.valid ? static_cast<int>(cp.frames_recorded) : 0;
  int f = base;  // stream-global count of inter-frames done
  if (cp.valid) {
    fw->restore(cp.fw);
    rt.checkpoints_restored += 1;
  }

  auto take_checkpoint = [&] {
    const auto t0 = SteadyClock::now();
    cp.valid = true;
    cp.frames_recorded = static_cast<std::size_t>(f);
    cp.bitstream_bytes = 0;
    cp.fw = fw->checkpoint();
    s->result.checkpoint = cp;
    rt.checkpoints_taken += 1;
    const double took = ms_since(t0);
    rt.checkpoint_ms += took;
    if (s->cfg.fw.trace != nullptr) {
      s->cfg.fw.trace->add_host_event(f, "checkpoint", obs::EventKind::kMark,
                                      took, obs::kLaneResilience);
    }
  };

  // Checkpoint-restart rung: back off (jittered), rebuild the framework
  // (picking up any degradation), rewind to the last good frame.
  auto do_restart = [&] {
    backoff_sleep(s, gov.begin_restart(), f + 1, "restart-backoff");
    rt.restarts += 1;
    fw = make_fw();
    int new_f = base;
    if (cp.valid) {
      fw->restore(cp.fw);
      new_f = static_cast<int>(cp.frames_recorded);
      rt.checkpoints_restored += 1;
    }
    rt.frames_replayed += f - new_f;
    s->result.frames.resize(static_cast<std::size_t>(new_f - base));
    f = new_f;
    if (gov.degraded()) {
      rt.degraded_sessions = 1;
      s->result.degrade_level = ro.degrade_search_range ? 2 : 1;
    }
    if (s->cfg.fw.trace != nullptr) {
      s->cfg.fw.trace->add_host_event(f + 1, "restart", obs::EventKind::kMark,
                                      0.0, obs::kLaneResilience);
    }
  };

  while (f < s->cfg.frames) {
    if (s->abort.load(std::memory_order_relaxed)) {
      return TerminalReason::kAborted;
    }
    if (gov.deadline_exceeded()) return TerminalReason::kDeadlineExceeded;

    const std::vector<bool> usable = fw->health().active_mask();
    if (!any_usable(usable)) {
      // Every device quarantined from this session's view — the only rung
      // left is a restart, which restores the pre-storm health state.
      if (!gov.can_restart()) {
        if (gov.deadline_exceeded()) return TerminalReason::kDeadlineExceeded;
        return rt.probation_relapses > 0 ? TerminalReason::kProbationChurn
                                         : TerminalReason::kNoUsableDevice;
      }
      do_restart();
      continue;
    }
    const bool probation_grant = all_probation(fw->health(), usable);

    const double brk = gov.breaker_wait_ms();
    if (brk > 0.0) {
      backoff_sleep(s, brk, f + 1, "breaker-wait");
      continue;
    }

    AcquireOutcome outcome = AcquireOutcome::kGranted;
    auto grant =
        arbiter_.acquire(s->id, usable, &outcome, gov.max_devices_hint());
    if (!grant.has_value()) {
      return outcome == AcquireOutcome::kShed ? TerminalReason::kShed
                                              : TerminalReason::kAborted;
    }
    FrameStats stats;
    try {
      stats = fw->encode_frame(FrameGrant{&grant->lease.mask(), &grant->lease});
    } catch (...) {
      // The grant must flow back even when the frame dies: a leaked lease
      // would starve every other session.
      arbiter_.release(s->id, std::move(*grant), 0.0, 0, /*completed=*/false);
      gov.grant_lost();
      if (probation_grant) rt.probation_relapses += 1;
      // A fault storm can quarantine the whole grant mid-frame. Nothing was
      // committed, so if the health mask shrank and other devices remain
      // usable, take a fresh grant and retry this frame on them.
      const std::vector<bool> now = fw->health().active_mask();
      if (now != usable && any_usable(now)) continue;
      if (gov.deadline_exceeded()) return TerminalReason::kDeadlineExceeded;
      if (!gov.can_restart()) {
        if (ro.max_restarts > 0) {
          // Retry budget burned on relapsing probation devices is its own
          // failure mode: the pool was never exhausted, trust was.
          return rt.probation_relapses > 0
                     ? TerminalReason::kProbationChurn
                     : TerminalReason::kRestartsExhausted;
        }
        throw;  // restart rung disabled: legacy fail-with-error
      }
      do_restart();
      continue;
    }
    arbiter_.release(s->id, std::move(*grant), stats.total_ms,
                     used_devices(stats.dist));
    gov.frame_completed();
    s->result.frames.push_back(std::move(stats));
    ++f;
    if (ro.checkpoint_interval > 0 && f % ro.checkpoint_interval == 0) {
      take_checkpoint();
    }
  }
  return TerminalReason::kCompleted;
}

TerminalReason EncodeService::run_real(Session* s) {
  const ResilienceOptions& ro = s->cfg.resilience;
  obs::ResilienceTelemetry& rt = s->result.resilience;
  SessionGovernor gov(ro, &breaker_,
                      (static_cast<u64>(s->id) + 1) * 0x9E3779B97F4A7C15ull);

  SessionCheckpoint cp;
  if (s->cfg.resume != nullptr && s->cfg.resume->valid) cp = *s->cfg.resume;

  auto make_enc = [&] {
    return std::make_unique<CollaborativeEncoder>(s->cfg.cfg, topo_, s->cfg.fw,
                                                  s->cfg.tier, s->cfg.faults);
  };

  auto enc = make_enc();
  const int base = cp.valid ? static_cast<int>(cp.frames_recorded) : 0;
  // Resumed sessions emit only the continuation bytes; checkpoints record
  // stream-global offsets so a chain of resumes keeps composing.
  const std::size_t base_bytes = cp.valid ? cp.bitstream_bytes : 0;
  int f = base;  // stream-global count of frames done (incl. the I frame)
  if (cp.valid) {
    enc->restore(cp.enc);
    rt.checkpoints_restored += 1;
  }

  auto take_checkpoint = [&] {
    const auto t0 = SteadyClock::now();
    cp.valid = true;
    cp.frames_recorded = static_cast<std::size_t>(f);
    cp.bitstream_bytes = base_bytes + s->result.bitstream.size();
    cp.enc = enc->checkpoint();
    cp.fw = cp.enc.fw;
    s->result.checkpoint = cp;
    rt.checkpoints_taken += 1;
    const double took = ms_since(t0);
    rt.checkpoint_ms += took;
    if (s->cfg.fw.trace != nullptr) {
      s->cfg.fw.trace->add_host_event(f, "checkpoint", obs::EventKind::kMark,
                                      took, obs::kLaneResilience);
    }
  };

  auto do_restart = [&] {
    backoff_sleep(s, gov.begin_restart(), f + 1, "restart-backoff");
    rt.restarts += 1;
    enc = make_enc();
    int new_f = 0;
    std::size_t keep_bytes = 0;
    if (cp.valid) {
      enc->restore(cp.enc);
      new_f = static_cast<int>(cp.frames_recorded);
      keep_bytes = cp.bitstream_bytes - base_bytes;
      rt.checkpoints_restored += 1;
    }
    rt.frames_replayed += f - new_f;
    s->result.frames.resize(static_cast<std::size_t>(new_f - base));
    s->result.bitstream.resize(keep_bytes);
    f = new_f;
    if (gov.degraded()) {
      rt.degraded_sessions = 1;
      s->result.degrade_level = 1;  // grant cap only: bits must not change
    }
    if (s->cfg.fw.trace != nullptr) {
      s->cfg.fw.trace->add_host_event(f + 1, "restart", obs::EventKind::kMark,
                                      0.0, obs::kLaneResilience);
    }
  };

  Frame420 frame(s->cfg.cfg.width, s->cfg.cfg.height);
  while (f < s->cfg.frames) {
    if (s->abort.load(std::memory_order_relaxed)) {
      return TerminalReason::kAborted;
    }
    if (gov.deadline_exceeded()) return TerminalReason::kDeadlineExceeded;
    if (!s->cfg.source->read_frame(f, frame)) break;  // short source
    if (f == 0) {
      // Bootstrap I frame: host-side intra path, touches no pool device.
      s->result.frames.push_back(enc->encode_frame(frame, &s->result.bitstream));
      ++f;
      // Checkpoint right away so no restart ever has to redo the bootstrap.
      if (ro.checkpoint_interval > 0) take_checkpoint();
      continue;
    }

    const std::vector<bool> usable = enc->health().active_mask();
    if (!any_usable(usable)) {
      if (!gov.can_restart()) {
        if (gov.deadline_exceeded()) return TerminalReason::kDeadlineExceeded;
        return rt.probation_relapses > 0 ? TerminalReason::kProbationChurn
                                         : TerminalReason::kNoUsableDevice;
      }
      do_restart();
      continue;
    }
    const bool probation_grant = all_probation(enc->health(), usable);

    const double brk = gov.breaker_wait_ms();
    if (brk > 0.0) {
      backoff_sleep(s, brk, f + 1, "breaker-wait");
      continue;
    }

    AcquireOutcome outcome = AcquireOutcome::kGranted;
    auto grant =
        arbiter_.acquire(s->id, usable, &outcome, gov.max_devices_hint());
    if (!grant.has_value()) {
      return outcome == AcquireOutcome::kShed ? TerminalReason::kShed
                                              : TerminalReason::kAborted;
    }
    FrameStats stats;
    try {
      stats = enc->encode_frame(frame, &s->result.bitstream,
                                FrameGrant{&grant->lease.mask(), &grant->lease});
    } catch (...) {
      arbiter_.release(s->id, std::move(*grant), 0.0, 0, /*completed=*/false);
      gov.grant_lost();
      if (probation_grant) rt.probation_relapses += 1;
      // Same whole-grant-quarantined recovery as run_virtual: the frame
      // never committed any state (bitstream and references update only on
      // success), so retrying it on the surviving devices keeps the stream
      // bit-exact.
      const std::vector<bool> now = enc->health().active_mask();
      if (now != usable && any_usable(now)) continue;
      if (gov.deadline_exceeded()) return TerminalReason::kDeadlineExceeded;
      if (!gov.can_restart()) {
        if (ro.max_restarts > 0) {
          return rt.probation_relapses > 0
                     ? TerminalReason::kProbationChurn
                     : TerminalReason::kRestartsExhausted;
        }
        throw;
      }
      do_restart();
      continue;
    }
    arbiter_.release(s->id, std::move(*grant), stats.total_ms,
                     used_devices(stats.dist));
    gov.frame_completed();
    s->result.frames.push_back(std::move(stats));
    ++f;
    if (ro.checkpoint_interval > 0 && f % ro.checkpoint_interval == 0) {
      take_checkpoint();
    }
  }
  return TerminalReason::kCompleted;
}

}  // namespace feves
