#include "service/encode_service.hpp"

namespace feves {

EncodeService::EncodeService(const PlatformTopology& topo, ServiceOptions opts)
    : topo_(topo), opts_(opts), arbiter_(topo.num_devices(), opts.arbiter) {
  topo_.validate();
}

EncodeService::~EncodeService() {
  {
    std::lock_guard lock(mu_);
    for (auto& s : sessions_) {
      if (!s->collected) {
        s->abort.store(true, std::memory_order_relaxed);
        arbiter_.abort(s->id);
      }
    }
  }
  for (auto& s : sessions_) {
    if (s->thread.joinable()) s->thread.join();
  }
}

int EncodeService::submit(SessionConfig cfg) {
  std::lock_guard lock(mu_);
  const int id = arbiter_.admit(cfg.weight);
  if (id < 0) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return -1;
  }
  if (cfg.fw.trace != nullptr) cfg.fw.trace->set_session(id);
  auto session = std::make_unique<Session>();
  session->id = id;
  session->cfg = std::move(cfg);
  Session* raw = session.get();
  sessions_.push_back(std::move(session));
  raw->thread = std::thread([this, raw] { run_session(raw); });
  return id;
}

void EncodeService::abort(int session) {
  std::lock_guard lock(mu_);
  for (auto& s : sessions_) {
    if (s->id == session) {
      s->abort.store(true, std::memory_order_relaxed);
      arbiter_.abort(session);
      return;
    }
  }
  FEVES_CHECK_MSG(false, "abort of unknown session " << session);
}

SessionResult EncodeService::wait(int session) {
  Session* s = nullptr;
  {
    std::lock_guard lock(mu_);
    for (auto& owned : sessions_) {
      if (owned->id == session) {
        s = owned.get();
        break;
      }
    }
    FEVES_CHECK_MSG(s != nullptr, "wait on unknown session " << session);
    FEVES_CHECK_MSG(!s->collected, "session " << session << " already waited");
    s->collected = true;
  }
  if (s->thread.joinable()) s->thread.join();
  return std::move(s->result);
}

std::vector<SessionResult> EncodeService::drain() {
  std::vector<int> pending;
  {
    std::lock_guard lock(mu_);
    for (auto& s : sessions_) {
      if (!s->collected) pending.push_back(s->id);
    }
  }
  std::vector<SessionResult> out;
  out.reserve(pending.size());
  for (int id : pending) out.push_back(wait(id));
  return out;
}

ServiceStats EncodeService::stats() const {
  ServiceStats out;
  out.rejected = rejected_.load(std::memory_order_relaxed);
  out.makespan_ms = arbiter_.makespan_ms();
  out.device_busy_ms = arbiter_.device_busy_ms();
  std::lock_guard lock(mu_);
  out.admitted = static_cast<int>(sessions_.size());
  int utilized_sessions = 0;
  for (const auto& s : sessions_) {
    const SessionStats share = arbiter_.session_stats(s->id);
    out.total_frames += share.frames;
    out.sum_session_fps += share.fps();
    out.total_queue_wait_ms += share.queue_wait_ms;
    if (share.granted_device_ms > 0) {
      out.mean_grant_utilization += share.grant_utilization();
      ++utilized_sessions;
    }
  }
  if (utilized_sessions > 0) out.mean_grant_utilization /= utilized_sessions;
  if (out.makespan_ms > 0) {
    out.aggregate_fps = 1000.0 * out.total_frames / out.makespan_ms;
  }
  return out;
}

int EncodeService::used_devices(const Distribution& dist) {
  const int n = static_cast<int>(dist.me.size());
  int used = 0;
  for (int i = 0; i < n; ++i) {
    if (dist.me[i] + dist.intp[i] + dist.sme[i] > 0 || i == dist.rstar_device) {
      ++used;
    }
  }
  return used;
}

void EncodeService::run_session(Session* s) {
  s->result.id = s->id;
  try {
    if (s->cfg.source != nullptr) {
      run_real(s);
    } else {
      run_virtual(s);
    }
    s->result.state = s->abort.load(std::memory_order_relaxed)
                          ? SessionResult::State::kAborted
                          : SessionResult::State::kCompleted;
  } catch (const std::exception& e) {
    s->result.state = SessionResult::State::kFailed;
    s->result.error = e.what();
  } catch (...) {
    s->result.state = SessionResult::State::kFailed;
    s->result.error = "unknown exception";
  }
  arbiter_.retire(s->id);
  s->result.share = arbiter_.session_stats(s->id);
}

namespace {

/// True if any device in the session's health mask is still usable.
bool any_usable(const std::vector<bool>& mask) {
  for (bool b : mask) {
    if (b) return true;
  }
  return false;
}

}  // namespace

void EncodeService::run_virtual(Session* s) {
  VirtualFramework fw(s->cfg.cfg, topo_, s->cfg.fw, s->cfg.perturbations,
                      s->cfg.faults);
  for (int f = 0; f < s->cfg.frames; ++f) {
    if (s->abort.load(std::memory_order_relaxed)) break;
    bool encoded = false;
    while (!encoded) {
      const std::vector<bool> usable = fw.health().active_mask();
      auto grant = arbiter_.acquire(s->id, usable);
      if (!grant.has_value()) return;  // aborted / service shutting down
      FrameStats stats;
      try {
        stats =
            fw.encode_frame(FrameGrant{&grant->lease.mask(), &grant->lease});
      } catch (...) {
        // The grant must flow back even when the frame dies: a leaked
        // lease would starve every other session.
        arbiter_.release(s->id, std::move(*grant), 0.0, 0,
                         /*completed=*/false);
        // A fault storm can quarantine the whole grant mid-frame. Nothing
        // was committed, so if the health mask shrank and other devices
        // remain usable, take a fresh grant and retry this frame on them.
        if (fw.health().active_mask() != usable &&
            any_usable(fw.health().active_mask())) {
          continue;
        }
        throw;
      }
      arbiter_.release(s->id, std::move(*grant), stats.total_ms,
                       used_devices(stats.dist));
      s->result.frames.push_back(std::move(stats));
      encoded = true;
    }
  }
}

void EncodeService::run_real(Session* s) {
  CollaborativeEncoder enc(s->cfg.cfg, topo_, s->cfg.fw, s->cfg.tier,
                           s->cfg.faults);
  Frame420 frame(s->cfg.cfg.width, s->cfg.cfg.height);
  for (int f = 0; f < s->cfg.frames; ++f) {
    if (s->abort.load(std::memory_order_relaxed)) break;
    if (!s->cfg.source->read_frame(f, frame)) break;
    if (f == 0) {
      // Bootstrap I frame: host-side intra path, touches no pool device.
      s->result.frames.push_back(enc.encode_frame(frame, &s->result.bitstream));
      continue;
    }
    bool encoded = false;
    while (!encoded) {
      const std::vector<bool> usable = enc.health().active_mask();
      auto grant = arbiter_.acquire(s->id, usable);
      if (!grant.has_value()) return;
      FrameStats stats;
      try {
        stats =
            enc.encode_frame(frame, &s->result.bitstream,
                             FrameGrant{&grant->lease.mask(), &grant->lease});
      } catch (...) {
        arbiter_.release(s->id, std::move(*grant), 0.0, 0,
                         /*completed=*/false);
        // Same whole-grant-quarantined recovery as run_virtual: the frame
        // never committed any state (bitstream and references update only
        // on success), so retrying it on the surviving devices keeps the
        // stream bit-exact.
        if (enc.health().active_mask() != usable &&
            any_usable(enc.health().active_mask())) {
          continue;
        }
        throw;
      }
      arbiter_.release(s->id, std::move(*grant), stats.total_ms,
                       used_devices(stats.dist));
      s->result.frames.push_back(std::move(stats));
      encoded = true;
    }
  }
}

}  // namespace feves
