#include "core/framework.hpp"

#include "common/timer.hpp"
#include "core/virtual_backend.hpp"

#include <algorithm>

namespace feves {

VirtualFramework::VirtualFramework(const EncoderConfig& cfg,
                                   const PlatformTopology& topo,
                                   FrameworkOptions opts,
                                   PerturbationSchedule perturbations,
                                   FaultSchedule faults)
    : cfg_(cfg),
      topo_(topo),
      opts_(opts),
      perturbations_(std::move(perturbations)),
      faults_(std::move(faults)),
      balancer_(cfg, topo, opts.lb),
      dam_(cfg, topo, opts.enable_data_reuse),
      perf_(topo.num_devices(), opts.ewma_alpha),
      health_(topo.num_devices(), opts.health) {
  cfg_.validate();
  topo_.validate();
  // The I frame (frame 0) bootstraps the first RF; in the simulated
  // framework the host produces it, so every accelerator must fetch it.
  rf_holder_ = topo_.cpu_index() >= 0 ? topo_.cpu_index() : 0;
}

FrameworkCheckpoint VirtualFramework::checkpoint() const {
  FrameworkCheckpoint cp;
  cp.next_frame = next_frame_;
  cp.rf_holder = rf_holder_;
  cp.perf = perf_;
  cp.health = health_;
  return cp;
}

void VirtualFramework::restore(const FrameworkCheckpoint& cp) {
  FEVES_CHECK_MSG(cp.perf.num_devices() == topo_.num_devices(),
                  "checkpoint covers " << cp.perf.num_devices()
                                       << " devices, topology has "
                                       << topo_.num_devices());
  FEVES_CHECK(cp.next_frame >= 1);
  next_frame_ = cp.next_frame;
  rf_holder_ = cp.rf_holder;
  perf_ = cp.perf;
  health_ = cp.health;
  // The slot and the deferred-SF ledger describe frames beyond the
  // snapshot; both must be rebuilt from scratch after the jump.
  slot_.valid = false;
  dam_.reset();
}

ScheduleDecision compute_schedule(const FrameworkOptions& opts,
                                  LoadBalancer& balancer,
                                  const PerfCharacterization& perf,
                                  const DeviceHealthMonitor& health,
                                  DataAccessManagement& dam,
                                  const std::vector<bool>& active,
                                  int rf_holder, int active_refs) {
  ScheduleDecision out;
  const std::vector<int> sigma_r_prev = dam.deferred_rows();
  // A pinned R* on a quarantined device falls back to automatic selection.
  const int force_rstar = (opts.force_rstar_device >= 0 &&
                           health.schedulable(opts.force_rstar_device))
                              ? opts.force_rstar_device
                              : -1;
  auto rstar_of = [&] {
    return force_rstar >= 0 ? force_rstar
                            : balancer.select_rstar_device(perf, &active);
  };
  if (!perf.initialized(&active)) {
    // Initialization (Algorithm 1 line 3) — re-entered whenever a
    // probation device returns with its characterization evicted. Under a
    // churning grant the share-aware probe path keeps the measured
    // devices LP-balanced instead of re-initializing the whole frame.
    if (opts.policy == SchedulingPolicy::kAdaptiveLp &&
        opts.lb.probe_rows > 0) {
      out.dist = balancer.balance_with_probes(perf, sigma_r_prev, force_rstar,
                                              &active, &out.lb);
    } else {
      out.dist = balancer.equidistant(rstar_of(), &active);
    }
  } else {
    switch (opts.policy) {
      case SchedulingPolicy::kAdaptiveLp:
        out.dist = balancer.balance(perf, sigma_r_prev, force_rstar, &active,
                                    &out.lb);
        break;
      case SchedulingPolicy::kProportional:
        out.dist = balancer.proportional(perf, sigma_r_prev, force_rstar,
                                         &active);
        break;
      case SchedulingPolicy::kEquidistant:
        out.dist = balancer.equidistant(rstar_of(), &active);
        break;
    }
  }
  out.plans = dam.plan_frame(out.dist, rf_holder, active_refs, &active);
  return out;
}

bool pipeline_slot_matches(const PipelineSlot& slot, int frame,
                           const std::vector<bool>& active, int rf_holder,
                           int active_refs, const PerfCharacterization& perf,
                           double epsilon) {
  if (!slot.valid || slot.frame != frame) return false;
  if (slot.active != active || slot.rf_holder != rf_holder ||
      slot.active_refs != active_refs) {
    return false;
  }
  if (epsilon <= 0.0) return false;
  double drift = 0.0;
  for (std::size_t i = 0; i < active.size(); ++i) {
    if (!active[i]) continue;
    drift = std::max(
        drift, relative_drift(slot.params[i], perf.params(static_cast<int>(i))));
  }
  return drift < epsilon;
}

FrameStats VirtualFramework::encode_frame(const FrameGrant& grant) {
  // Committed only on success (bottom of this function) so a caller can
  // re-submit the frame on a fresh grant after a mid-frame fault storm.
  const int frame = next_frame_;
  const int active_refs = std::min(frame, cfg_.num_ref_frames);

  FrameStats stats;
  stats.frame_number = frame;
  stats.active_refs = active_refs;

  ExecuteOptions exec_opts;
  exec_opts.faults = faults_.plan(frame, topo_.num_devices());
  exec_opts.watchdog_ms = opts_.watchdog_ms;
  exec_opts.hang_sleep_ms = opts_.hang_sleep_ms;
  exec_opts.lease = grant.lease;
  obs::TraceSession* trace = opts_.trace;
  if (trace != nullptr) {
    exec_opts.tracer = &trace->tracer;
    exec_opts.trace_frame = frame;
  }

  // Recovery loop: a failed attempt quarantines the faulty devices' streaks,
  // re-balances over the survivors and re-simulates the SAME frame. Forward
  // progress is guaranteed because every failed attempt advances at least one
  // device toward quarantine (the fault plan is deterministic per frame).
  for (int attempt = 0;; ++attempt) {
    FEVES_CHECK_MSG(attempt <= opts_.max_frame_retries,
                    "frame " << frame << ": no clean attempt within "
                             << opts_.max_frame_retries << " retries");
    FEVES_CHECK_MSG(health_.num_schedulable() > 0,
                    "frame " << frame << ": every device is quarantined");
    const std::vector<bool> active = granted_active_mask(health_, grant, frame);
    // An RF holder that is quarantined or outside this frame's grant is
    // unreachable: every accelerator re-fetches.
    const int rf_holder = active[rf_holder_] ? rf_holder_ : -1;

    // ---- Load balancing (Algorithm 1 lines 3 / 8) -----------------------
    // Consume the pipeline slot when its speculation survived; otherwise
    // (or after a failed attempt) schedule synchronously from fresh state.
    Timer sched_timer;
    ScheduleDecision sd;
    bool from_pipeline = false;
    double overlapped_ms = 0.0;
    if (slot_.valid && slot_.frame == frame) {
      if (attempt == 0 &&
          pipeline_slot_matches(slot_, frame, active, rf_holder, active_refs,
                                perf_, opts_.lb.convergence_epsilon)) {
        sd = std::move(slot_.sched);
        dam_ = std::move(*slot_.dam);
        overlapped_ms = slot_.cost_ms;
        from_pipeline = true;
      } else {
        ++stats.telemetry.pipeline_misses;
      }
    }
    slot_.valid = false;
    if (!from_pipeline) {
      sd = compute_schedule(opts_, balancer_, perf_, health_, dam_, active,
                            rf_holder, active_refs);
    }
    const Distribution& dist = sd.dist;
    const double sched_ms = sched_timer.elapsed_ms();
    stats.scheduling_ms += sched_ms;
    stats.telemetry.sched_critical_ms += sched_ms;
    stats.telemetry.lp_solves += sd.lb.lp_solves;
    stats.telemetry.lp_iterations += sd.lb.lp_iterations;
    stats.telemetry.lp_fallbacks += sd.lb.lp_fallbacks;
    stats.telemetry.lp_warm_solves += sd.lb.lp_warm_solves;
    stats.telemetry.lp_skipped += sd.lb.lp_skipped;
    stats.telemetry.lp_solve_ms += sd.lb.lp_solve_ms;
    stats.telemetry.delta_iterations += sd.lb.delta_iterations;
    if (from_pipeline) {
      ++stats.telemetry.pipeline_hits;
      stats.telemetry.sched_overlapped_ms += overlapped_ms;
    }
    if (trace != nullptr && !from_pipeline) {
      // A consumed slot was already traced on the pipeline lane when it was
      // precomputed; only synchronous scheduling lands on the host lane.
      if (sd.lb.lp_solves > 0) {
        trace->add_host_event(frame, "lp_solve", obs::EventKind::kLpSolve,
                              sd.lb.lp_solve_ms);
      }
      trace->add_host_event(frame, "sched", obs::EventKind::kSched,
                            std::max(0.0, sched_ms - sd.lb.lp_solve_ms));
    }

    // ---- Orchestration + execution (lines 4 / 9) ------------------------
    slowdown_.assign(static_cast<std::size_t>(topo_.num_devices()), 1.0);
    for (int i = 0; i < topo_.num_devices(); ++i) {
      slowdown_[i] = perturbations_.factor(i, frame);
    }
    VirtualBackend backend(cfg_, topo_, active_refs, slowdown_);
    FrameOpIds ids;
    const OpGraph graph =
        build_frame_graph(topo_, dist, sd.plans, backend, &ids);
    const ExecutionResult result = execute_virtual(graph, topo_, exec_opts);
    stats.total_ms += result.makespan_ms;  // failed attempts burn time too
    if (trace != nullptr) trace->fold_execution();

    if (!result.ok()) {
      ++stats.retries;
      for (int d : result.failed_devices()) {
        if (health_.record_failure(d)) {
          perf_.evict(d);
          dam_.evict(d);
          ++stats.devices_quarantined;
        }
      }
      continue;
    }

    // ---- Characterization update (lines 5-6 / 10) -----------------------
    // Telemetry snapshots the K parameters the scheduler consumed, so it
    // must fill before this frame's measurements fold in.
    fill_device_telemetry(topo_, dist, ids, result, perf_, &stats.telemetry);
    stats.telemetry.predicted_tau1_ms = dist.tau1_ms;
    stats.telemetry.predicted_tau2_ms = dist.tau2_ms;
    stats.telemetry.predicted_tau_tot_ms = dist.tau_tot_ms;
    stats.telemetry.measured_tau_tot_ms = result.makespan_ms;
    // The speculative schedule for frame+1 must also see only the pre-fold
    // characterization: in a real overlap it runs concurrently with this
    // frame's execution and cannot know its measurements. Consume-time
    // validation re-checks the drift once they have folded.
    if (opts_.enable_pipeline) precompute_next(frame, active, dist);
    attribute_frame_times(cfg_, topo_, dist, ids, result, &perf_);
    rf_holder_ = dist.rstar_device;
    stats.dist = dist;
    for (int i = 0; i < topo_.num_devices(); ++i) {
      if (active[i]) {
        health_.record_success(i);
        ++stats.active_devices;
      }
      const auto& d = ids.dev[i];
      for (int id : {d.me, d.intp, d.mv_out, d.sf_out}) {
        if (id >= 0)
          stats.tau1_ms = std::max(stats.tau1_ms, result.times[id].end_ms);
      }
      for (int id : {d.sme, d.sme_mv_out}) {
        if (id >= 0)
          stats.tau2_ms = std::max(stats.tau2_ms, result.times[id].end_ms);
      }
    }
    stats.telemetry.measured_tau1_ms = stats.tau1_ms;
    stats.telemetry.measured_tau2_ms = stats.tau2_ms;
    break;
  }
  stats.devices_readmitted = static_cast<int>(health_.end_frame().size());
  ++next_frame_;
  return stats;
}

void VirtualFramework::precompute_next(int frame,
                                       const std::vector<bool>& active,
                                       const Distribution& dist) {
  // Not worth speculating before the characterization exists: the first
  // real schedule after initialization changes too much to survive
  // validation anyway.
  if (!perf_.initialized(&active)) {
    slot_.valid = false;
    return;
  }
  Timer t;
  // Recycle the consumed slot's storage (params vector, the DAM planning
  // copy and its interval vectors) — precompute runs every frame, and
  // rebuilding the slot from scratch put a dozen allocations on each one.
  PipelineSlot next = std::move(slot_);
  next.valid = false;
  next.frame = frame + 1;
  next.active_refs = std::min(frame + 1, cfg_.num_ref_frames);
  // Speculate that next frame runs on the same schedulable set; probation
  // readmissions and grant changes surface as a consume-time mismatch.
  next.active = active;
  next.rf_holder = dist.rstar_device;  // this frame's R* host keeps the RF
  next.params.resize(static_cast<std::size_t>(topo_.num_devices()));
  for (int i = 0; i < topo_.num_devices(); ++i) {
    next.params[i] = perf_.params(i);
  }
  // Plan against a copy; commit only on a hit.
  if (next.dam.has_value()) {
    *next.dam = dam_;
  } else {
    next.dam.emplace(dam_);
  }
  next.sched = compute_schedule(opts_, balancer_, perf_, health_, *next.dam,
                                next.active, next.rf_holder, next.active_refs);
  next.cost_ms = t.elapsed_ms();
  next.valid = true;
  slot_ = std::move(next);
  if (opts_.trace != nullptr) {
    opts_.trace->add_host_event(frame, "sched_ahead", obs::EventKind::kSched,
                                slot_.cost_ms, obs::kLanePipeline);
  }
}

std::vector<bool> granted_active_mask(const DeviceHealthMonitor& health,
                                      const FrameGrant& grant, int frame) {
  std::vector<bool> active = health.active_mask();
  if (grant.devices == nullptr) return active;
  FEVES_CHECK_MSG(grant.devices->size() == active.size(),
                  "grant mask covers " << grant.devices->size()
                                       << " devices, topology has "
                                       << active.size());
  int n_active = 0;
  for (std::size_t i = 0; i < active.size(); ++i) {
    active[i] = active[i] && (*grant.devices)[i];
    n_active += active[i] ? 1 : 0;
  }
  FEVES_CHECK_MSG(n_active > 0,
                  "frame " << frame
                           << ": every device in the session's grant is "
                              "quarantined");
  return active;
}

void attribute_frame_times(const EncoderConfig& cfg,
                           const PlatformTopology& topo,
                           const Distribution& dist, const FrameOpIds& ids,
                           const ExecutionResult& result,
                           PerfCharacterization* perf) {
  auto dur = [&](int id) {
    return result.times[id].end_ms - result.times[id].start_ms;
  };
  // Only cleanly completed ops are measurements. A timed-out op's span is
  // truncated at the watchdog deadline and a cancelled op's is zero; folding
  // either would poison the K parameters every later LP consumes (one hung
  // frame would make a device look infinitely fast / slow for frames after
  // its fault cleared).
  auto ok = [&](int id) { return id >= 0 && result.status[id] == OpStatus::kOk; };
  const auto me_iv = intervals_of(dist.me);
  const auto l_iv = intervals_of(dist.intp);
  const auto s_iv = intervals_of(dist.sme);

  for (int i = 0; i < topo.num_devices(); ++i) {
    const auto& d = ids.dev[i];
    if (ok(d.me)) {
      perf->observe_compute(i, ComputeModule::kMe, me_iv[i].length(),
                            dur(d.me));
    }
    if (ok(d.intp)) {
      perf->observe_compute(i, ComputeModule::kInt, l_iv[i].length(),
                            dur(d.intp));
    }
    if (ok(d.sme)) {
      perf->observe_compute(i, ComputeModule::kSme, s_iv[i].length(),
                            dur(d.sme));
    }
    if (ok(d.rstar)) perf->observe_rstar(i, dur(d.rstar));

    struct XferSlot {
      int id;
      XferPurpose purpose;
      int rows;
    };
    const int rows_total = cfg.num_mb_rows();
    const XferSlot slots[] = {
        {d.rf_in, XferPurpose::kRfIn, rows_total},
        {d.cf_me, XferPurpose::kCfMe, me_iv[i].length()},
        {d.cf_sme, XferPurpose::kCfSme, dist.delta_m[i]},
        {d.mv_sme, XferPurpose::kMvSme, dist.delta_m[i]},
        {d.sf_sme, XferPurpose::kSfSme, dist.delta_l[i]},
        {d.sf_complete, XferPurpose::kSfComplete, dist.sigma[i]},
        {d.mv_out, XferPurpose::kMvOut, me_iv[i].length()},
        {d.sf_out, XferPurpose::kSfOut, l_iv[i].length()},
        {d.sme_mv_out, XferPurpose::kSmeMvOut, s_iv[i].length()},
        {d.rf_out, XferPurpose::kRfOut, rows_total},
        {d.cf_mc, XferPurpose::kCfMc,
         rows_total - me_iv[i].length() - dist.delta_m[i]},
        {d.sf_mc, XferPurpose::kSfMc,
         rows_total - l_iv[i].length() - dist.delta_l[i]},
        {d.mv_mc, XferPurpose::kMvMc, rows_total - s_iv[i].length()},
    };
    for (const XferSlot& s : slots) {
      if (!ok(s.id) || s.rows <= 0) continue;
      perf->observe_transfer(i, buffer_of(s.purpose), direction_of(s.purpose),
                             s.rows, dur(s.id));
    }
  }
}

void fill_device_telemetry(const PlatformTopology& topo,
                           const Distribution& dist, const FrameOpIds& ids,
                           const ExecutionResult& result,
                           const PerfCharacterization& perf,
                           obs::SchedTelemetry* telemetry) {
  auto measured = [&](int id) {
    if (id < 0 || result.status[id] != OpStatus::kOk) return 0.0;
    return result.times[id].end_ms - result.times[id].start_ms;
  };
  const auto me_iv = intervals_of(dist.me);
  const auto l_iv = intervals_of(dist.intp);
  const auto s_iv = intervals_of(dist.sme);
  telemetry->dev.assign(static_cast<std::size_t>(topo.num_devices()),
                        obs::DeviceTelemetry{});
  for (int i = 0; i < topo.num_devices(); ++i) {
    const auto& d = ids.dev[i];
    const DeviceParams& p = perf.params(i);
    obs::DeviceTelemetry& t = telemetry->dev[i];
    t.me = {me_iv[i].length() * p.k_me, measured(d.me)};
    t.interp = {l_iv[i].length() * p.k_int, measured(d.intp)};
    t.sme = {s_iv[i].length() * p.k_sme, measured(d.sme)};
  }
}

std::vector<FrameStats> VirtualFramework::encode(int frames) {
  std::vector<FrameStats> out;
  out.reserve(static_cast<std::size_t>(frames));
  for (int f = 0; f < frames; ++f) out.push_back(encode_frame());
  return out;
}

double VirtualFramework::steady_state_fps(int frames, int warmup) {
  const auto stats = encode(frames);
  const int skip = std::min<int>(std::max(warmup, cfg_.num_ref_frames + 2),
                                 frames - 1);
  double total = 0.0;
  int count = 0;
  for (int f = skip; f < frames; ++f) {
    total += stats[f].total_ms;
    ++count;
  }
  FEVES_CHECK(count > 0);
  return 1000.0 / (total / count);
}

}  // namespace feves
