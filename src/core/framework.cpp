#include "core/framework.hpp"

#include "common/timer.hpp"
#include "core/virtual_backend.hpp"

#include <algorithm>

namespace feves {

VirtualFramework::VirtualFramework(const EncoderConfig& cfg,
                                   const PlatformTopology& topo,
                                   FrameworkOptions opts,
                                   PerturbationSchedule perturbations)
    : cfg_(cfg),
      topo_(topo),
      opts_(opts),
      perturbations_(std::move(perturbations)),
      balancer_(cfg, topo, opts.lb),
      dam_(cfg, topo, opts.enable_data_reuse),
      perf_(topo.num_devices(), opts.ewma_alpha) {
  cfg_.validate();
  topo_.validate();
  // The I frame (frame 0) bootstraps the first RF; in the simulated
  // framework the host produces it, so every accelerator must fetch it.
  rf_holder_ = topo_.cpu_index() >= 0 ? topo_.cpu_index() : 0;
}

FrameStats VirtualFramework::encode_frame() {
  const int frame = next_frame_++;
  const int active_refs = std::min(frame, cfg_.num_ref_frames);

  // ---- Load balancing (Algorithm 1 lines 3 / 8) -------------------------
  Timer sched_timer;
  Distribution dist;
  const std::vector<int> sigma_r_prev = dam_.deferred_rows();
  auto rstar_of = [&] {
    return opts_.force_rstar_device >= 0 ? opts_.force_rstar_device
                                         : balancer_.select_rstar_device(perf_);
  };
  if (!perf_.initialized()) {
    dist = balancer_.equidistant(rstar_of());
  } else {
    switch (opts_.policy) {
      case SchedulingPolicy::kAdaptiveLp:
        dist = balancer_.balance(perf_, sigma_r_prev, opts_.force_rstar_device);
        break;
      case SchedulingPolicy::kProportional:
        dist = balancer_.proportional(perf_, sigma_r_prev,
                                      opts_.force_rstar_device);
        break;
      case SchedulingPolicy::kEquidistant:
        dist = balancer_.equidistant(rstar_of());
        break;
    }
  }
  const std::vector<TransferPlan> plans =
      dam_.plan_frame(dist, rf_holder_, active_refs);
  const double scheduling_ms = sched_timer.elapsed_ms();

  // ---- Orchestration + execution (lines 4 / 9) --------------------------
  std::vector<double> slowdown(static_cast<std::size_t>(topo_.num_devices()));
  for (int i = 0; i < topo_.num_devices(); ++i) {
    slowdown[i] = perturbations_.factor(i, frame);
  }
  VirtualBackend backend(cfg_, topo_, active_refs, slowdown);
  FrameOpIds ids;
  const OpGraph graph = build_frame_graph(topo_, dist, plans, backend, &ids);
  const ExecutionResult result = execute_virtual(graph, topo_);

  // ---- Characterization update (lines 5-6 / 10) -------------------------
  attribute_frame_times(cfg_, topo_, dist, ids, result, &perf_);
  rf_holder_ = dist.rstar_device;

  FrameStats stats;
  stats.frame_number = frame;
  stats.active_refs = active_refs;
  stats.total_ms = result.makespan_ms;
  stats.scheduling_ms = scheduling_ms;
  stats.dist = dist;
  for (int i = 0; i < topo_.num_devices(); ++i) {
    const auto& d = ids.dev[i];
    for (int id : {d.me, d.intp, d.mv_out, d.sf_out}) {
      if (id >= 0) stats.tau1_ms = std::max(stats.tau1_ms, result.times[id].end_ms);
    }
    for (int id : {d.sme, d.sme_mv_out}) {
      if (id >= 0) stats.tau2_ms = std::max(stats.tau2_ms, result.times[id].end_ms);
    }
  }
  return stats;
}

void attribute_frame_times(const EncoderConfig& cfg,
                           const PlatformTopology& topo,
                           const Distribution& dist, const FrameOpIds& ids,
                           const ExecutionResult& result,
                           PerfCharacterization* perf) {
  auto dur = [&](int id) {
    return result.times[id].end_ms - result.times[id].start_ms;
  };
  const auto me_iv = intervals_of(dist.me);
  const auto l_iv = intervals_of(dist.intp);
  const auto s_iv = intervals_of(dist.sme);

  for (int i = 0; i < topo.num_devices(); ++i) {
    const auto& d = ids.dev[i];
    if (d.me >= 0) {
      perf->observe_compute(i, ComputeModule::kMe, me_iv[i].length(),
                            dur(d.me));
    }
    if (d.intp >= 0) {
      perf->observe_compute(i, ComputeModule::kInt, l_iv[i].length(),
                            dur(d.intp));
    }
    if (d.sme >= 0) {
      perf->observe_compute(i, ComputeModule::kSme, s_iv[i].length(),
                            dur(d.sme));
    }
    if (d.rstar >= 0) perf->observe_rstar(i, dur(d.rstar));

    struct XferSlot {
      int id;
      XferPurpose purpose;
      int rows;
    };
    const int rows_total = cfg.num_mb_rows();
    const XferSlot slots[] = {
        {d.rf_in, XferPurpose::kRfIn, rows_total},
        {d.cf_me, XferPurpose::kCfMe, me_iv[i].length()},
        {d.cf_sme, XferPurpose::kCfSme, dist.delta_m[i]},
        {d.mv_sme, XferPurpose::kMvSme, dist.delta_m[i]},
        {d.sf_sme, XferPurpose::kSfSme, dist.delta_l[i]},
        {d.sf_complete, XferPurpose::kSfComplete, dist.sigma[i]},
        {d.mv_out, XferPurpose::kMvOut, me_iv[i].length()},
        {d.sf_out, XferPurpose::kSfOut, l_iv[i].length()},
        {d.sme_mv_out, XferPurpose::kSmeMvOut, s_iv[i].length()},
        {d.rf_out, XferPurpose::kRfOut, rows_total},
        {d.cf_mc, XferPurpose::kCfMc,
         rows_total - me_iv[i].length() - dist.delta_m[i]},
        {d.sf_mc, XferPurpose::kSfMc,
         rows_total - l_iv[i].length() - dist.delta_l[i]},
        {d.mv_mc, XferPurpose::kMvMc, rows_total - s_iv[i].length()},
    };
    for (const XferSlot& s : slots) {
      if (s.id < 0 || s.rows <= 0) continue;
      perf->observe_transfer(i, buffer_of(s.purpose), direction_of(s.purpose),
                             s.rows, dur(s.id));
    }
  }
}

std::vector<FrameStats> VirtualFramework::encode(int frames) {
  std::vector<FrameStats> out;
  out.reserve(static_cast<std::size_t>(frames));
  for (int f = 0; f < frames; ++f) out.push_back(encode_frame());
  return out;
}

double VirtualFramework::steady_state_fps(int frames, int warmup) {
  const auto stats = encode(frames);
  const int skip = std::min<int>(std::max(warmup, cfg_.num_ref_frames + 2),
                                 frames - 1);
  double total = 0.0;
  int count = 0;
  for (int f = skip; f < frames; ++f) {
    total += stats[f].total_ms;
    ++count;
  }
  FEVES_CHECK(count > 0);
  return 1000.0 / (total / count);
}

}  // namespace feves
