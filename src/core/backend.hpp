// Execution backend interface: the Video Coding Manager describes WHAT runs
// (kernels, transfers, dependencies — Fig 4); a backend supplies either the
// modelled duration of each op (virtual mode) or a closure doing the actual
// work (real mode). The orchestration code is byte-identical in both modes,
// which is what makes virtual-mode figure benches faithful to the real
// framework's scheduling behaviour.
#pragma once

#include "core/data_access.hpp"
#include "sched/perf_char.hpp"

#include <functional>

namespace feves {

/// What a transfer is for — lets backends pick the right source/target
/// buffers and the framework attribute times to the right K parameter.
enum class XferPurpose {
  kRfIn,        ///< newest reconstructed reference, h2d
  kCfMe,        ///< CF rows for the ME slice, h2d
  kCfSme,       ///< ∆m CF fragments, h2d
  kMvSme,       ///< ∆m MV fragments, h2d
  kSfSme,       ///< ∆l SF fragments, h2d
  kSfCarry,     ///< σ^{r-1} deferred SF completion (previous frame's SF), h2d
  kSfComplete,  ///< σ SF completion, h2d
  kCfMc,        ///< remaining CF for MC (R* device), h2d
  kSfMc,        ///< remaining SF for MC (R* device), h2d
  kMvMc,        ///< missing SME MVs for MC (R* device), h2d
  kMvOut,       ///< ME MVs, d2h
  kSfOut,       ///< interpolated SF slice, d2h
  kSmeMvOut,    ///< refined SME MVs, d2h
  kRfOut,       ///< reconstructed RF, d2h
};

/// Which K parameter a transfer purpose feeds (buffer kind + direction).
inline BufferKind buffer_of(XferPurpose p) {
  switch (p) {
    case XferPurpose::kRfIn:
    case XferPurpose::kRfOut:
      return BufferKind::kRf;
    case XferPurpose::kCfMe:
    case XferPurpose::kCfSme:
    case XferPurpose::kCfMc:
      return BufferKind::kCf;
    case XferPurpose::kSfSme:
    case XferPurpose::kSfCarry:
    case XferPurpose::kSfComplete:
    case XferPurpose::kSfMc:
    case XferPurpose::kSfOut:
      return BufferKind::kSf;
    case XferPurpose::kMvSme:
    case XferPurpose::kMvMc:
    case XferPurpose::kMvOut:
    case XferPurpose::kSmeMvOut:
      return BufferKind::kMv;
  }
  return BufferKind::kCf;
}

inline Direction direction_of(XferPurpose p) {
  switch (p) {
    case XferPurpose::kMvOut:
    case XferPurpose::kSfOut:
    case XferPurpose::kSmeMvOut:
    case XferPurpose::kRfOut:
      return Direction::kDeviceToHost;
    default:
      return Direction::kHostToDevice;
  }
}

struct OpPayload {
  double virtual_ms = 0.0;
  double bytes = 0.0;          ///< transfer payload size (trace metadata)
  std::function<void()> work;  ///< empty in virtual mode
};

class FrameBackend {
 public:
  virtual ~FrameBackend() = default;

  virtual OpPayload op_me(int device, RowInterval rows) = 0;
  virtual OpPayload op_int(int device, RowInterval rows) = 0;
  virtual OpPayload op_sme(int device, RowInterval rows) = 0;
  virtual OpPayload op_rstar(int device) = 0;
  virtual OpPayload op_xfer(int device, XferPurpose purpose,
                            const std::vector<RowInterval>& fragments) = 0;
};

}  // namespace feves
