// Real-mode FEVES encoder: the full Algorithm 1 loop producing an actual
// bitstream and reconstruction, with kernels executing on host threads and
// transfers performing genuine copies into per-device mirror buffers.
//
// This is the correctness anchor of the repository: for any topology and
// scheduling policy, the reconstruction must match the single-device
// reference encoder bit-for-bit — the distribution may change *when* work
// happens, never *what* is computed.
#pragma once

#include "core/framework.hpp"
#include "core/real_backend.hpp"

namespace feves {

/// Real-mode frame-boundary snapshot: the adaptive scheduling state plus
/// deep copies of the reference window (reconstructions, SF planes and
/// their readiness) — everything a fresh CollaborativeEncoder needs to
/// continue the stream bit-identically from the frame after the snapshot.
/// References are shared_ptr so a checkpoint is cheap to copy and hold;
/// restore() deep-copies them back into the encoder, so one checkpoint can
/// seed any number of restarts.
struct EncoderCheckpoint {
  FrameworkCheckpoint fw;
  std::vector<std::shared_ptr<const RefPicture>> refs;  ///< newest first
};

class CollaborativeEncoder {
 public:
  CollaborativeEncoder(const EncoderConfig& cfg, const PlatformTopology& topo,
                       FrameworkOptions opts = {},
                       SimdTier tier = SimdTier::kAuto,
                       FaultSchedule faults = {});

  /// Snapshots the encoder at the current frame boundary (between
  /// encode_frame calls). The caller records its own bitstream offset — the
  /// encoder only appends, it never owns the stream.
  EncoderCheckpoint checkpoint() const;

  /// Restores a frame-boundary snapshot, typically into a freshly
  /// constructed encoder on the same topology (the resume-elsewhere path).
  /// Device mirrors are marked stale and restaged whole from the restored
  /// canonical references on the next frame, so the continuation is
  /// bit-identical to an uninterrupted encode.
  void restore(const EncoderCheckpoint& cp);

  /// Encodes the next frame (the first call encodes the bootstrap I frame
  /// on the host; subsequent calls run the collaborative inter loop).
  /// Appends the frame's bitstream to `bitstream_out` when non-null.
  /// `grant` restricts the inter loop to a device subset (multi-session
  /// operation; default: the whole topology). The bitstream and
  /// reconstruction are bit-identical regardless of the grant — sharding
  /// only moves *where* work runs.
  FrameStats encode_frame(const Frame420& cur, std::vector<u8>* bitstream_out,
                          const FrameGrant& grant = {});

  /// Reconstruction of the most recently encoded frame.
  const Frame420& last_recon() const {
    FEVES_CHECK(!refs_.empty());
    return refs_.ref(0).recon;
  }

  int frames_encoded() const { return next_frame_; }
  const PerfCharacterization& characterization() const { return perf_; }
  const DeviceHealthMonitor& health() const { return health_; }

 private:
  EncoderConfig cfg_;
  PlatformTopology topo_;
  FrameworkOptions opts_;
  SimdTier tier_;
  FaultSchedule faults_;
  LoadBalancer balancer_;
  DataAccessManagement dam_;
  PerfCharacterization perf_;
  DeviceHealthMonitor health_;
  RefList refs_;
  /// Per-frame working state, persistent so its vectors (motion fields,
  /// choices, coded levels, deblock info) keep their capacity across
  /// frames — prepare() then touches the heap only on geometry changes.
  EncodeJob job_;
  /// Reference picture evicted from refs_ last frame, recycled into the
  /// next frame's recon allocation (RefPicture is tens of MB at 1080p).
  std::unique_ptr<RefPicture> recycled_;
  std::vector<DeviceMirror> mirrors_;
  /// Mirrors whose incremental per-frame contract is broken (device sat out
  /// a frame, or an attempt failed mid-flight) — restaged whole before use.
  std::vector<bool> mirror_stale_;
  int next_frame_ = 0;
  int rf_holder_ = 0;
  /// Next frame's speculative schedule, produced on a concurrent
  /// speculation thread while the current frame executes.
  PipelineSlot slot_;
  /// Per-device prestaged mirror buffers (the pipeline's double buffer).
  std::vector<MirrorStage> staged_;
  /// Kernel-tier marks are emitted into the trace once per session.
  bool tiers_traced_ = false;
};

}  // namespace feves
