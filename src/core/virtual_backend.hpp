// Virtual-mode backend: op durations come from the calibrated analytical
// cost model (perf_model.hpp) scaled by the frame's perturbation factor;
// no pixel work is performed. Used by the figure benches, where the paper's
// 1080p full-search workloads are far beyond this container's compute but
// the scheduling behaviour — the object of study — is fully preserved.
#pragma once

#include "core/backend.hpp"
#include "platform/perf_model.hpp"

#include <vector>

namespace feves {

class VirtualBackend final : public FrameBackend {
 public:
  /// `active_refs` is the current reference-window size (it ramps up over
  /// the first num_ref_frames inter-frames); `slowdown[i]` multiplies
  /// device i's compute durations (PerturbationSchedule::factor).
  VirtualBackend(const EncoderConfig& cfg, const PlatformTopology& topo,
                 int active_refs, std::vector<double> slowdown)
      : cfg_(cfg),
        topo_(topo),
        active_refs_(active_refs),
        slowdown_(std::move(slowdown)) {
    FEVES_CHECK(active_refs >= 1);
    FEVES_CHECK(static_cast<int>(slowdown_.size()) == topo.num_devices());
  }

  OpPayload op_me(int device, RowInterval rows) override {
    return {me_rows_ms(topo_.devices[device], cfg_, rows.length(),
                       active_refs_) *
                slowdown_[device],
            {}};
  }
  OpPayload op_int(int device, RowInterval rows) override {
    return {int_rows_ms(topo_.devices[device], cfg_, rows.length()) *
                slowdown_[device],
            {}};
  }
  OpPayload op_sme(int device, RowInterval rows) override {
    return {sme_rows_ms(topo_.devices[device], cfg_, rows.length(),
                        active_refs_) *
                slowdown_[device],
            {}};
  }
  OpPayload op_rstar(int device) override {
    return {rstar_ms(topo_.devices[device], cfg_) * slowdown_[device], {}};
  }

  OpPayload op_xfer(int device, XferPurpose purpose,
                    const std::vector<RowInterval>& fragments) override {
    const DeviceSpec& dev = topo_.devices[device];
    FEVES_CHECK(dev.is_accelerator());
    int rows = 0;
    for (const RowInterval& f : fragments) rows += f.length();
    double bytes = 0.0;
    switch (buffer_of(purpose)) {
      case BufferKind::kCf:
        bytes = rows * cf_row_bytes(cfg_);
        break;
      case BufferKind::kRf:
        bytes = rows * rf_row_bytes(cfg_);
        break;
      case BufferKind::kSf:
        bytes = rows * sf_row_bytes(cfg_);
        break;
      case BufferKind::kMv:
        bytes = rows * mv_row_bytes(cfg_, active_refs_);
        break;
    }
    const double ms = direction_of(purpose) == Direction::kHostToDevice
                          ? dev.link.h2d_ms(bytes)
                          : dev.link.d2h_ms(bytes);
    return {ms, bytes, {}};
  }

 private:
  EncoderConfig cfg_;
  const PlatformTopology& topo_;
  int active_refs_;
  std::vector<double> slowdown_;
};

}  // namespace feves
