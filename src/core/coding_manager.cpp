#include "core/coding_manager.hpp"

namespace feves {

namespace {

/// Adds a transfer op when it moves at least one row; returns -1 otherwise.
int add_xfer(OpGraph& g, FrameBackend& backend, int device, XferPurpose p,
             const std::vector<RowInterval>& frags, std::vector<int> deps,
             const char* label) {
  int rows = 0;
  for (const RowInterval& f : frags) rows += f.length();
  if (rows == 0) return -1;
  OpPayload payload = backend.op_xfer(device, p, frags);
  Op op;
  op.label = label + std::string("@d") + std::to_string(device);
  op.device = device;
  op.resource = direction_of(p) == Direction::kHostToDevice
                    ? OpResource::kCopyH2D
                    : OpResource::kCopyD2H;
  op.virtual_ms = payload.virtual_ms;
  op.rows = rows;
  op.bytes = payload.bytes;
  op.work = std::move(payload.work);
  op.deps = std::move(deps);
  return g.add(std::move(op));
}

int add_kernel(OpGraph& g, OpPayload&& payload, int device,
               std::vector<int> deps, const char* label, int rows = 0) {
  Op op;
  op.label = label + std::string("@d") + std::to_string(device);
  op.device = device;
  op.resource = OpResource::kCompute;
  op.virtual_ms = payload.virtual_ms;
  op.rows = rows;
  op.work = std::move(payload.work);
  op.deps = std::move(deps);
  return g.add(std::move(op));
}

void push_if(std::vector<int>* deps, int id) {
  if (id >= 0) deps->push_back(id);
}

}  // namespace

OpGraph build_frame_graph(const PlatformTopology& topo,
                          const Distribution& dist,
                          const std::vector<TransferPlan>& plans,
                          FrameBackend& backend, FrameOpIds* ids) {
  const int n = topo.num_devices();
  FEVES_CHECK(dist.num_devices() == n);
  FEVES_CHECK(static_cast<int>(plans.size()) == n);
  const bool collaborative = n > 1;  // solo devices skip the gather traffic
  const int rstar = dist.rstar_device;
  FEVES_CHECK(rstar >= 0 && rstar < n);

  OpGraph g;
  ids->dev.assign(static_cast<std::size_t>(n), FrameOpIds::PerDevice{});
  const auto me_iv = intervals_of(dist.me);
  const auto l_iv = intervals_of(dist.intp);
  const auto s_iv = intervals_of(dist.sme);

  int total_rows = 0;
  for (int r : dist.me) total_rows += r;
  const RowInterval whole{0, total_rows};

  // ---- Phase A: input staging, ME+INT kernels, slice gathers (τ1) -------
  for (int i = 0; i < n; ++i) {
    auto& d = ids->dev[i];
    const TransferPlan& plan = plans[i];
    const bool accel = topo.devices[i].is_accelerator();

    if (accel) {
      if (plan.fetch_rf) {
        d.rf_in =
            add_xfer(g, backend, i, XferPurpose::kRfIn, {whole}, {}, "RF_in");
      }
      d.cf_me = add_xfer(g, backend, i, XferPurpose::kCfMe, {plan.cf_me}, {},
                         "CF_me");
      d.cf_sme = add_xfer(g, backend, i, XferPurpose::kCfSme, plan.cf_sme, {},
                          "CF_sme");
      d.sf_carry = add_xfer(g, backend, i, XferPurpose::kSfCarry,
                            plan.sf_carry, {}, "SF_carry");
    }

    // Kernels: ME then INT on the device's compute lane.
    if (!me_iv[i].empty()) {
      std::vector<int> deps;
      push_if(&deps, d.cf_me);
      push_if(&deps, d.rf_in);
      d.me = add_kernel(g, backend.op_me(i, me_iv[i]), i, std::move(deps),
                        "ME", me_iv[i].length());
    }
    if (!l_iv[i].empty()) {
      std::vector<int> deps;
      push_if(&deps, d.rf_in);
      d.intp = add_kernel(g, backend.op_int(i, l_iv[i]), i, std::move(deps),
                          "INT", l_iv[i].length());
    }

    if (accel && collaborative) {
      if (!plan.mv_out.empty()) {
        std::vector<int> deps;
        push_if(&deps, d.me);
        d.mv_out = add_xfer(g, backend, i, XferPurpose::kMvOut,
                            {plan.mv_out}, std::move(deps), "MV_out");
      }
      if (!plan.sf_out.empty()) {
        std::vector<int> deps;
        push_if(&deps, d.intp);
        d.sf_out = add_xfer(g, backend, i, XferPurpose::kSfOut,
                            {plan.sf_out}, std::move(deps), "SF_out");
      }
    }
  }

  // Host-availability dependency sets: an SF (or MV) row is at the host
  // once every accelerator slice has been gathered and the CPU's own
  // kernels are done — the implicit τ1 synchronization of Fig 4.
  std::vector<int> sf_ready, mv_ready;
  for (int i = 0; i < n; ++i) {
    const bool accel = topo.devices[i].is_accelerator();
    if (accel) {
      push_if(&sf_ready, ids->dev[i].sf_out);
      push_if(&mv_ready, ids->dev[i].mv_out);
    } else {
      push_if(&sf_ready, ids->dev[i].intp);
      push_if(&mv_ready, ids->dev[i].me);
    }
  }

  // ---- Phase B: SME inputs and kernels (τ1 → τ2) -------------------------
  for (int i = 0; i < n; ++i) {
    auto& d = ids->dev[i];
    const TransferPlan& plan = plans[i];
    const bool accel = topo.devices[i].is_accelerator();

    if (accel) {
      d.sf_sme = add_xfer(g, backend, i, XferPurpose::kSfSme, plan.sf_sme,
                          sf_ready, "SF_sme");
      d.mv_sme = add_xfer(g, backend, i, XferPurpose::kMvSme, plan.mv_sme,
                          mv_ready, "MV_sme");
    }

    if (!s_iv[i].empty()) {
      std::vector<int> deps;
      push_if(&deps, d.me);
      push_if(&deps, d.intp);
      if (accel) {
        push_if(&deps, d.sf_sme);
        push_if(&deps, d.mv_sme);
        push_if(&deps, d.cf_sme);
        push_if(&deps, d.sf_carry);
      } else {
        // The host SME reads gathered accelerator outputs directly.
        for (int dep : sf_ready) push_if(&deps, dep);
        for (int dep : mv_ready) push_if(&deps, dep);
      }
      d.sme = add_kernel(g, backend.op_sme(i, s_iv[i]), i, std::move(deps),
                         "SME", s_iv[i].length());
    }

    if (accel && collaborative && i != rstar && !plan.sme_mv_out.empty()) {
      std::vector<int> deps;
      push_if(&deps, d.sme);
      d.sme_mv_out = add_xfer(g, backend, i, XferPurpose::kSmeMvOut,
                              {plan.sme_mv_out}, std::move(deps), "SMEMV_out");
    }
  }

  // Refined MVs available at the host (τ2 from the host's point of view).
  std::vector<int> sme_mv_ready;
  for (int i = 0; i < n; ++i) {
    if (topo.devices[i].is_accelerator()) {
      push_if(&sme_mv_ready, ids->dev[i].sme_mv_out);
    } else {
      push_if(&sme_mv_ready, ids->dev[i].sme);
    }
  }

  // ---- Phase C: R* on the selected device, SF completion (τ2 → τtot) -----
  {
    auto& d = ids->dev[rstar];
    const TransferPlan& plan = plans[rstar];
    const bool accel = topo.devices[rstar].is_accelerator();
    std::vector<int> rstar_deps;
    push_if(&rstar_deps, d.sme);

    if (accel) {
      // MC prefetch overlaps the SME kernel (Fig 4: CF→MC / SF→MC during
      // τ2 on the selected accelerator's copy engine).
      d.cf_mc = add_xfer(g, backend, rstar, XferPurpose::kCfMc, plan.cf_mc,
                         {}, "CF_mc");
      d.sf_mc = add_xfer(g, backend, rstar, XferPurpose::kSfMc, plan.sf_mc,
                         sf_ready, "SF_mc");
      // MV_mc reads the canonical fields, so it must follow every writer:
      // the refined gathers AND the raw MV_out gathers. The latter are not
      // always ordered transitively — a device with ME rows but no SME
      // rows (or a lone device hosting R* itself) has no SME chain linking
      // its MV_out to sme_mv_ready, and an unordered MV_out would race the
      // R* kernel's read of the fields.
      std::vector<int> mv_mc_deps = sme_mv_ready;
      for (int dep : mv_ready) push_if(&mv_mc_deps, dep);
      d.mv_mc = add_xfer(g, backend, rstar, XferPurpose::kMvMc, plan.mv_mc,
                         std::move(mv_mc_deps), "MV_mc");
      push_if(&rstar_deps, d.cf_mc);
      push_if(&rstar_deps, d.sf_mc);
      push_if(&rstar_deps, d.mv_mc);
    }
    // R* consumes the canonical fields and SF (mode decision and MC run on
    // the host's canonical state), so it must follow every gather — even
    // when the MC prefetches above carried zero rows and were elided, as
    // happens when one device owns the whole frame. In a full pool these
    // deps are already satisfied transitively and cost nothing.
    for (int dep : sme_mv_ready) push_if(&rstar_deps, dep);
    for (int dep : mv_ready) push_if(&rstar_deps, dep);
    for (int dep : sf_ready) push_if(&rstar_deps, dep);

    d.rstar = add_kernel(g, backend.op_rstar(rstar), rstar,
                         std::move(rstar_deps), "Rstar", total_rows);

    if (accel && collaborative) {
      std::vector<int> deps{d.rstar};
      d.rf_out = add_xfer(g, backend, rstar, XferPurpose::kRfOut, {whole},
                          std::move(deps), "RF_out");
    }
  }

  // σ SF completion streams into the tail slack on the other accelerators.
  for (int i = 0; i < n; ++i) {
    if (!topo.devices[i].is_accelerator() || i == rstar) continue;
    ids->dev[i].sf_complete =
        add_xfer(g, backend, i, XferPurpose::kSfComplete,
                 plans[i].sf_complete, sf_ready, "SF_complete");
  }

  return g;
}

}  // namespace feves
