#include "core/collaborative_encoder.hpp"

#include "codec/bitstream.hpp"
#include "common/timer.hpp"

#include <algorithm>
#include <cstdio>
#include <future>

namespace feves {

CollaborativeEncoder::CollaborativeEncoder(const EncoderConfig& cfg,
                                           const PlatformTopology& topo,
                                           FrameworkOptions opts,
                                           SimdTier tier, FaultSchedule faults)
    : cfg_(cfg),
      topo_(topo),
      opts_(opts),
      tier_(tier),
      faults_(std::move(faults)),
      balancer_(cfg, topo, opts.lb),
      dam_(cfg, topo, opts.enable_data_reuse),
      perf_(topo.num_devices(), opts.ewma_alpha),
      health_(topo.num_devices(), opts.health),
      refs_(cfg.num_ref_frames),
      mirrors_(static_cast<std::size_t>(topo.num_devices())),
      mirror_stale_(static_cast<std::size_t>(topo.num_devices()), false),
      staged_(static_cast<std::size_t>(topo.num_devices())) {
  cfg_.validate();
  topo_.validate();
  rf_holder_ = topo_.cpu_index() >= 0 ? topo_.cpu_index() : 0;
}

EncoderCheckpoint CollaborativeEncoder::checkpoint() const {
  EncoderCheckpoint cp;
  cp.fw.next_frame = next_frame_;
  cp.fw.rf_holder = rf_holder_;
  cp.fw.perf = perf_;
  cp.fw.health = health_;
  for (int i = 0; i < refs_.size(); ++i) {
    cp.refs.push_back(std::make_shared<const RefPicture>(refs_.ref(i)));
  }
  return cp;
}

void CollaborativeEncoder::restore(const EncoderCheckpoint& cp) {
  FEVES_CHECK_MSG(cp.fw.perf.num_devices() == topo_.num_devices(),
                  "checkpoint covers " << cp.fw.perf.num_devices()
                                       << " devices, topology has "
                                       << topo_.num_devices());
  FEVES_CHECK_MSG(static_cast<int>(cp.refs.size()) <= refs_.capacity(),
                  "checkpoint reference window exceeds num_ref_frames");
  FEVES_CHECK_MSG(cp.fw.next_frame == 0 || !cp.refs.empty(),
                  "mid-stream checkpoint carries no reference window");
  next_frame_ = cp.fw.next_frame;
  rf_holder_ = cp.fw.rf_holder;
  perf_ = cp.fw.perf;
  health_ = cp.fw.health;
  refs_.clear();
  // push_front wants oldest first to end up newest-first like the snapshot.
  for (auto it = cp.refs.rbegin(); it != cp.refs.rend(); ++it) {
    refs_.push_front(std::make_unique<RefPicture>(**it));
  }
  // Mirrors, prestaged buffers, the pipeline slot and the deferred-SF
  // ledger all describe frames the snapshot does not cover: drop them and
  // restage each mirror whole from the restored canonical references.
  for (int i = 0; i < topo_.num_devices(); ++i) {
    if (topo_.devices[i].is_accelerator()) mirror_stale_[i] = true;
    staged_[static_cast<std::size_t>(i)].valid = false;
  }
  slot_.valid = false;
  dam_.reset();
}

FrameStats CollaborativeEncoder::encode_frame(const Frame420& cur,
                                              std::vector<u8>* bitstream_out,
                                              const FrameGrant& grant) {
  // The counter commits only on success (bottom of this function): if the
  // frame throws — whole grant quarantined, retry budget exhausted — the
  // caller may re-submit the same source frame on a fresh device grant,
  // and it must encode under the same frame number for the stream to stay
  // bit-exact.
  const int frame = next_frame_;
  FrameStats stats;
  stats.frame_number = frame;

  // The job is a member purely as an allocation arena: every frame fully
  // re-prepares it, and ping-ponging the borrowed-refs vector through
  // prepare() keeps even that small buffer alive across frames.
  EncodeJob& job = job_;
  std::vector<RefPicture*> borrowed = std::move(job.refs);
  borrowed.clear();
  for (int i = 0; i < refs_.size(); ++i) borrowed.push_back(&refs_.ref(i));
  job.prepare(cfg_, cur, std::move(borrowed), frame, std::move(recycled_));

  if (job.is_intra) {
    // Bootstrap I frame: host-only (paper Fig 1's intra path; the inter
    // loop under study starts at frame 1).
    Timer t;
    intra_frame(job);
    stats.total_ms = t.elapsed_ms();
    stats.active_refs = 0;
  } else {
    const int active_refs = refs_.size();
    stats.active_refs = active_refs;

    ExecuteOptions exec_opts;
    exec_opts.faults = faults_.plan(frame, topo_.num_devices());
    exec_opts.watchdog_ms = opts_.watchdog_ms;
    exec_opts.hang_sleep_ms = opts_.hang_sleep_ms;
    exec_opts.lease = grant.lease;
    obs::TraceSession* trace = opts_.trace;
    if (trace != nullptr) {
      exec_opts.tracer = &trace->tracer;
      exec_opts.trace_frame = frame;
    }

    // Recovery loop: a failed attempt never contributes pixels — the frame
    // is re-prepared, stale mirrors are restaged whole, and the LP
    // re-balances over the surviving devices, so the reconstruction stays
    // bit-exact with the reference encoder no matter which devices fault.
    for (int attempt = 0;; ++attempt) {
      FEVES_CHECK_MSG(attempt <= opts_.max_frame_retries,
                      "frame " << frame << ": no clean attempt within "
                               << opts_.max_frame_retries << " retries");
      FEVES_CHECK_MSG(health_.num_schedulable() > 0,
                      "frame " << frame << ": every device is quarantined");
      const std::vector<bool> active =
          granted_active_mask(health_, grant, frame);

      if (attempt > 0) {
        // The failed attempt may have partially written MVs, SF planes or
        // the reconstruction; rebuild the job from the untouched inputs.
        // Its own recon is recycled — every pixel is rewritten anyway.
        std::vector<RefPicture*> reborrowed = std::move(job.refs);
        reborrowed.clear();
        for (int i = 0; i < refs_.size(); ++i) {
          reborrowed.push_back(&refs_.ref(i));
        }
        job.prepare(cfg_, cur, std::move(reborrowed), frame,
                    std::move(job.recon));
      }

      const int rf_holder = active[rf_holder_] ? rf_holder_ : -1;

      // Consume the pipeline slot when its speculation survived; otherwise
      // (or after a failed attempt) schedule synchronously from fresh state.
      Timer sched_timer;
      ScheduleDecision sd;
      bool from_pipeline = false;
      double overlapped_ms = 0.0;
      if (slot_.valid && slot_.frame == frame) {
        if (attempt == 0 &&
            pipeline_slot_matches(slot_, frame, active, rf_holder,
                                  active_refs, perf_,
                                  opts_.lb.convergence_epsilon)) {
          sd = std::move(slot_.sched);
          dam_ = std::move(*slot_.dam);
          overlapped_ms = slot_.cost_ms;
          from_pipeline = true;
        } else {
          ++stats.telemetry.pipeline_misses;
        }
      }
      slot_.valid = false;
      if (!from_pipeline) {
        sd = compute_schedule(opts_, balancer_, perf_, health_, dam_, active,
                              rf_holder, active_refs);
      }
      const Distribution& dist = sd.dist;
      const double sched_ms = sched_timer.elapsed_ms();
      stats.scheduling_ms += sched_ms;
      stats.telemetry.sched_critical_ms += sched_ms;
      stats.telemetry.lp_solves += sd.lb.lp_solves;
      stats.telemetry.lp_iterations += sd.lb.lp_iterations;
      stats.telemetry.lp_fallbacks += sd.lb.lp_fallbacks;
      stats.telemetry.lp_warm_solves += sd.lb.lp_warm_solves;
      stats.telemetry.lp_skipped += sd.lb.lp_skipped;
      stats.telemetry.lp_solve_ms += sd.lb.lp_solve_ms;
      stats.telemetry.delta_iterations += sd.lb.delta_iterations;
      if (from_pipeline) {
        ++stats.telemetry.pipeline_hits;
        stats.telemetry.sched_overlapped_ms += overlapped_ms;
      }
      if (trace != nullptr && !from_pipeline) {
        // A consumed slot was traced on the pipeline lane at precompute
        // time; only synchronous scheduling lands on the host lane.
        if (sd.lb.lp_solves > 0) {
          trace->add_host_event(frame, "lp_solve", obs::EventKind::kLpSolve,
                                sd.lb.lp_solve_ms);
        }
        trace->add_host_event(frame, "sched", obs::EventKind::kSched,
                              std::max(0.0, sched_ms - sd.lb.lp_solve_ms));
      }

      for (int i = 0; i < topo_.num_devices(); ++i) {
        if (!topo_.devices[i].is_accelerator()) continue;
        if (!active[i]) {
          // Sitting this frame out breaks the one-begin-per-frame contract.
          mirror_stale_[i] = true;
          continue;
        }
        if (mirror_stale_[i]) {
          restage_mirror(mirrors_[i], cfg_, active_refs, refs_);
          mirror_stale_[i] = false;
        } else {
          begin_frame_mirror(mirrors_[i], cfg_, active_refs,
                             refs_.ref(0).recon.y, &staged_[i]);
        }
      }

      RealBackend backend(job, mirrors_, topo_, tier_, dist.sme);
      FrameOpIds ids;
      const OpGraph graph =
          build_frame_graph(topo_, dist, sd.plans, backend, &ids);

      // Speculation thread: while this frame executes, solve frame+1's
      // schedule from the pre-fold characterization, plan its transfers on
      // a copy of the Data Access state, and prestage the frame-agnostic
      // mirror buffers. Disjoint state from the execution (the executor
      // touches job/mirrors/refs; the speculation touches the balancer's
      // warm cache, a DAM clone and staged_), so no synchronization beyond
      // the join. std::async's future joins on destruction, keeping
      // exception unwinds safe.
      // Recycled from the consumed slot: params capacity and the DAM copy
      // survive, so steady-state speculation allocates nothing up front.
      PipelineSlot next = std::move(slot_);
      next.valid = false;
      std::future<void> spec;
      if (opts_.enable_pipeline && perf_.initialized(&active)) {
        next.frame = frame + 1;
        next.active_refs = std::min(active_refs + 1, cfg_.num_ref_frames);
        next.active = active;
        next.rf_holder = dist.rstar_device;
        next.params.resize(static_cast<std::size_t>(topo_.num_devices()));
        for (int i = 0; i < topo_.num_devices(); ++i) {
          next.params[i] = perf_.params(i);
        }
        spec = std::async(std::launch::async, [this, &next, &active] {
          Timer spec_timer;
          if (next.dam.has_value()) {
            *next.dam = dam_;  // plan against a copy; commit only on a hit
          } else {
            next.dam.emplace(dam_);
          }
          next.sched =
              compute_schedule(opts_, balancer_, perf_, health_, *next.dam,
                               next.active, next.rf_holder, next.active_refs);
          for (int i = 0; i < topo_.num_devices(); ++i) {
            if (topo_.devices[i].is_accelerator() && active[i]) {
              prestage_mirror(staged_[i], cfg_, next.active_refs);
            }
          }
          next.cost_ms = spec_timer.elapsed_ms();
          next.valid = true;
        });
      }

      const ExecutionResult result = execute_real(graph, topo_, exec_opts);
      if (spec.valid()) spec.get();
      stats.total_ms += result.makespan_ms;
      if (trace != nullptr) trace->fold_execution();

      if (!result.ok()) {
        ++stats.retries;
        for (int d : result.failed_devices()) {
          if (health_.record_failure(d)) {
            perf_.evict(d);
            dam_.evict(d);
            ++stats.devices_quarantined;
          }
        }
        // Cancelled/unfinished ops leave mirrors and the deferred-SF
        // bookkeeping out of sync; restage everything and re-plan from an
        // all-resident state.
        for (int i = 0; i < topo_.num_devices(); ++i) {
          if (topo_.devices[i].is_accelerator()) mirror_stale_[i] = true;
        }
        dam_.reset();
        continue;
      }

      // Telemetry snapshots the K parameters the scheduler consumed, so it
      // must fill before this frame's measurements fold in.
      fill_device_telemetry(topo_, dist, ids, result, perf_, &stats.telemetry);
      // Surface the per-kernel SIMD tier the frame's pixel kernels ran at
      // (requested vs. registry-resolved) — and mark it in the trace once
      // per session, so a capture is self-describing about the ISA level.
      for (const KernelTierChoice& k : kernel_tier_report(tier_)) {
        stats.telemetry.kernel_tiers.push_back(
            {kernel_name(k.id), tier_name(k.requested), tier_name(k.resolved)});
      }
      if (trace != nullptr && !tiers_traced_) {
        tiers_traced_ = true;
        for (const obs::KernelTierInfo& k : stats.telemetry.kernel_tiers) {
          char label[obs::TraceEvent::kNameCapacity + 1];
          std::snprintf(label, sizeof label, "k:%s=%s", k.kernel, k.resolved);
          trace->add_host_event(frame, label, obs::EventKind::kMark, 0.0);
        }
      }
      stats.telemetry.predicted_tau1_ms = dist.tau1_ms;
      stats.telemetry.predicted_tau2_ms = dist.tau2_ms;
      stats.telemetry.predicted_tau_tot_ms = dist.tau_tot_ms;
      stats.telemetry.measured_tau_tot_ms = result.makespan_ms;
      attribute_frame_times(cfg_, topo_, dist, ids, result, &perf_);
      rf_holder_ = dist.rstar_device;
      stats.dist = dist;
      for (int i = 0; i < topo_.num_devices(); ++i) {
        if (active[i]) {
          health_.record_success(i);
          ++stats.active_devices;
        }
        const auto& d = ids.dev[i];
        for (int id : {d.me, d.intp, d.mv_out, d.sf_out}) {
          if (id >= 0) {
            stats.tau1_ms = std::max(stats.tau1_ms, result.times[id].end_ms);
          }
        }
        for (int id : {d.sme, d.sme_mv_out}) {
          if (id >= 0) {
            stats.tau2_ms = std::max(stats.tau2_ms, result.times[id].end_ms);
          }
        }
      }
      stats.telemetry.measured_tau1_ms = stats.tau1_ms;
      stats.telemetry.measured_tau2_ms = stats.tau2_ms;
      if (next.valid) {
        // Publish the speculation only on a clean attempt; a failed one
        // changes the device set, so its slot would miss anyway.
        slot_ = std::move(next);
        if (trace != nullptr) {
          trace->add_host_event(frame, "sched_ahead", obs::EventKind::kSched,
                                slot_.cost_ms, obs::kLanePipeline);
        }
      }
      break;
    }
    stats.devices_readmitted = static_cast<int>(health_.end_frame().size());
  }

  if (bitstream_out != nullptr) {
    BitWriter bw;
    write_frame_bitstream(job, bw);
    const auto& bytes = bw.bytes();
    bitstream_out->insert(bitstream_out->end(), bytes.begin(), bytes.end());
  }
  recycled_ = refs_.push_front(std::move(job.recon));
  ++next_frame_;
  return stats;
}

}  // namespace feves
