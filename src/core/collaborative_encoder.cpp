#include "core/collaborative_encoder.hpp"

#include "codec/bitstream.hpp"
#include "common/timer.hpp"

namespace feves {

CollaborativeEncoder::CollaborativeEncoder(const EncoderConfig& cfg,
                                           const PlatformTopology& topo,
                                           FrameworkOptions opts,
                                           SimdTier tier)
    : cfg_(cfg),
      topo_(topo),
      opts_(opts),
      tier_(tier),
      balancer_(cfg, topo, opts.lb),
      dam_(cfg, topo, opts.enable_data_reuse),
      perf_(topo.num_devices(), opts.ewma_alpha),
      refs_(cfg.num_ref_frames),
      mirrors_(static_cast<std::size_t>(topo.num_devices())) {
  cfg_.validate();
  topo_.validate();
  rf_holder_ = topo_.cpu_index() >= 0 ? topo_.cpu_index() : 0;
}

FrameStats CollaborativeEncoder::encode_frame(const Frame420& cur,
                                              std::vector<u8>* bitstream_out) {
  const int frame = next_frame_++;
  FrameStats stats;
  stats.frame_number = frame;

  EncodeJob job;
  std::vector<RefPicture*> borrowed;
  for (int i = 0; i < refs_.size(); ++i) borrowed.push_back(&refs_.ref(i));
  job.prepare(cfg_, cur, std::move(borrowed), frame);

  if (job.is_intra) {
    // Bootstrap I frame: host-only (paper Fig 1's intra path; the inter
    // loop under study starts at frame 1).
    Timer t;
    intra_frame(job);
    stats.total_ms = t.elapsed_ms();
    stats.active_refs = 0;
  } else {
    const int active_refs = refs_.size();
    stats.active_refs = active_refs;

    Timer sched_timer;
    Distribution dist;
    const std::vector<int> sigma_r_prev = dam_.deferred_rows();
    auto rstar_of = [&] {
      return opts_.force_rstar_device >= 0
                 ? opts_.force_rstar_device
                 : balancer_.select_rstar_device(perf_);
    };
    if (!perf_.initialized()) {
      dist = balancer_.equidistant(rstar_of());
    } else {
      switch (opts_.policy) {
        case SchedulingPolicy::kAdaptiveLp:
          dist = balancer_.balance(perf_, sigma_r_prev,
                                   opts_.force_rstar_device);
          break;
        case SchedulingPolicy::kProportional:
          dist = balancer_.proportional(perf_, sigma_r_prev,
                                        opts_.force_rstar_device);
          break;
        case SchedulingPolicy::kEquidistant:
          dist = balancer_.equidistant(rstar_of());
          break;
      }
    }
    const std::vector<TransferPlan> plans =
        dam_.plan_frame(dist, rf_holder_, active_refs);
    stats.scheduling_ms = sched_timer.elapsed_ms();
    stats.dist = dist;

    for (int i = 0; i < topo_.num_devices(); ++i) {
      if (topo_.devices[i].is_accelerator()) {
        begin_frame_mirror(mirrors_[i], cfg_, active_refs,
                           refs_.ref(0).recon.y);
      }
    }

    RealBackend backend(job, mirrors_, topo_, tier_, dist.sme);
    FrameOpIds ids;
    const OpGraph graph = build_frame_graph(topo_, dist, plans, backend, &ids);
    const ExecutionResult result = execute_real(graph, topo_);
    attribute_frame_times(cfg_, topo_, dist, ids, result, &perf_);
    rf_holder_ = dist.rstar_device;

    stats.total_ms = result.makespan_ms;
    for (int i = 0; i < topo_.num_devices(); ++i) {
      const auto& d = ids.dev[i];
      for (int id : {d.me, d.intp, d.mv_out, d.sf_out}) {
        if (id >= 0) {
          stats.tau1_ms = std::max(stats.tau1_ms, result.times[id].end_ms);
        }
      }
      for (int id : {d.sme, d.sme_mv_out}) {
        if (id >= 0) {
          stats.tau2_ms = std::max(stats.tau2_ms, result.times[id].end_ms);
        }
      }
    }
  }

  if (bitstream_out != nullptr) {
    BitWriter bw;
    write_frame_bitstream(job, bw);
    const auto& bytes = bw.bytes();
    bitstream_out->insert(bitstream_out->end(), bytes.begin(), bytes.end());
  }
  refs_.push_front(std::move(job.recon));
  return stats;
}

}  // namespace feves
