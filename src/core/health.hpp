// Device health tracking for graceful degradation. The framework reports
// per-device frame outcomes; the monitor decides who stays schedulable:
//
//   kActive --(failure_threshold consecutive failures)--> kQuarantined
//   kQuarantined --(quarantine window elapses)--> kProbation
//   kProbation --(probation_clean_frames clean frames)--> kActive
//   kProbation --(any failure)--> kQuarantined (window grows by backoff)
//
// Quarantined devices are excluded from the LP's active set; probation
// devices are schedulable again, so the next frame both probes the device
// and re-characterizes it (Algorithm 1's initialization semantics). The
// exponential backoff bounds the amortized cost of probing a permanently
// lost device: probe frames become geometrically rarer.
#pragma once

#include "common/check.hpp"

#include <vector>

namespace feves {

struct HealthOptions {
  int failure_threshold = 2;       ///< consecutive failures to quarantine
  int quarantine_frames = 3;       ///< initial frames a device sits out
  int probation_clean_frames = 2;  ///< clean frames until fully re-admitted
  double quarantine_backoff = 2.0; ///< window growth per re-quarantine
  int max_quarantine_frames = 64;  ///< backoff ceiling
};

enum class DeviceHealth { kActive, kProbation, kQuarantined };

const char* to_string(DeviceHealth h);

class DeviceHealthMonitor {
 public:
  explicit DeviceHealthMonitor(int num_devices, HealthOptions opts = {});

  int num_devices() const { return static_cast<int>(dev_.size()); }
  DeviceHealth state(int device) const { return at(device).state; }

  /// Active and probation devices are schedulable.
  bool schedulable(int device) const {
    return at(device).state != DeviceHealth::kQuarantined;
  }
  std::vector<bool> active_mask() const;
  int num_schedulable() const;

  /// Records a failed frame attempt on `device`. Returns true when this
  /// failure pushed the device into quarantine (the caller should evict
  /// its scheduler state and re-plan without it).
  bool record_failure(int device);

  /// Records a clean frame on `device` (clears the failure streak; advances
  /// probation toward full re-admission).
  void record_success(int device);

  /// Advances quarantine timers by one encoded frame. Returns the devices
  /// promoted to probation — schedulable again starting next frame.
  std::vector<int> end_frame();

 private:
  struct DeviceState {
    DeviceHealth state = DeviceHealth::kActive;
    int consecutive_failures = 0;
    int quarantine_left = 0;   ///< frames until probation
    int current_window = 0;    ///< this quarantine's length (for backoff)
    int probation_clean = 0;   ///< clean frames accumulated in probation
  };

  const DeviceState& at(int device) const {
    FEVES_CHECK(device >= 0 && device < num_devices());
    return dev_[device];
  }

  void quarantine(DeviceState* d);

  HealthOptions opts_;
  std::vector<DeviceState> dev_;
};

}  // namespace feves
