#include "core/health.hpp"

#include <algorithm>

namespace feves {

const char* to_string(DeviceHealth h) {
  switch (h) {
    case DeviceHealth::kActive:
      return "active";
    case DeviceHealth::kProbation:
      return "probation";
    case DeviceHealth::kQuarantined:
      return "quarantined";
  }
  return "?";
}

DeviceHealthMonitor::DeviceHealthMonitor(int num_devices, HealthOptions opts)
    : opts_(opts), dev_(static_cast<std::size_t>(num_devices)) {
  FEVES_CHECK(num_devices >= 1);
  FEVES_CHECK(opts_.failure_threshold >= 1);
  FEVES_CHECK(opts_.quarantine_frames >= 1);
  FEVES_CHECK(opts_.probation_clean_frames >= 1);
  FEVES_CHECK(opts_.quarantine_backoff >= 1.0);
  FEVES_CHECK(opts_.max_quarantine_frames >= opts_.quarantine_frames);
}

std::vector<bool> DeviceHealthMonitor::active_mask() const {
  std::vector<bool> mask(dev_.size());
  for (std::size_t i = 0; i < dev_.size(); ++i) {
    mask[i] = dev_[i].state != DeviceHealth::kQuarantined;
  }
  return mask;
}

int DeviceHealthMonitor::num_schedulable() const {
  int n = 0;
  for (const DeviceState& d : dev_) {
    n += d.state != DeviceHealth::kQuarantined ? 1 : 0;
  }
  return n;
}

void DeviceHealthMonitor::quarantine(DeviceState* d) {
  // Backoff: each re-quarantine lengthens the window, so probing a device
  // that never comes back costs geometrically fewer frames over time.
  const int grown =
      d->current_window == 0
          ? opts_.quarantine_frames
          : static_cast<int>(d->current_window * opts_.quarantine_backoff);
  d->current_window = std::min(std::max(grown, opts_.quarantine_frames),
                               opts_.max_quarantine_frames);
  d->state = DeviceHealth::kQuarantined;
  d->quarantine_left = d->current_window;
  d->consecutive_failures = 0;
  d->probation_clean = 0;
}

bool DeviceHealthMonitor::record_failure(int device) {
  FEVES_CHECK(device >= 0 && device < num_devices());
  DeviceState& d = dev_[device];
  if (d.state == DeviceHealth::kQuarantined) return false;
  if (d.state == DeviceHealth::kProbation) {
    // The probe failed: straight back to (longer) quarantine.
    quarantine(&d);
    return true;
  }
  if (++d.consecutive_failures >= opts_.failure_threshold) {
    quarantine(&d);
    return true;
  }
  return false;
}

void DeviceHealthMonitor::record_success(int device) {
  FEVES_CHECK(device >= 0 && device < num_devices());
  DeviceState& d = dev_[device];
  d.consecutive_failures = 0;
  if (d.state == DeviceHealth::kProbation) {
    if (++d.probation_clean >= opts_.probation_clean_frames) {
      d.state = DeviceHealth::kActive;
      d.probation_clean = 0;
      d.current_window = 0;  // full health: backoff resets
    }
  }
}

std::vector<int> DeviceHealthMonitor::end_frame() {
  std::vector<int> readmitted;
  for (std::size_t i = 0; i < dev_.size(); ++i) {
    DeviceState& d = dev_[i];
    if (d.state != DeviceHealth::kQuarantined) continue;
    if (--d.quarantine_left <= 0) {
      d.state = DeviceHealth::kProbation;
      d.probation_clean = 0;
      readmitted.push_back(static_cast<int>(i));
    }
  }
  return readmitted;
}

}  // namespace feves
