// Video Coding Manager (paper Sec. III-B, Fig 4): builds the per-frame op
// graph that orchestrates kernels and transfers across all devices with the
// correct dependencies and copy-engine issue order, for both GPU-centric
// and CPU-centric R* placement and single- or dual-copy-engine devices.
//
// Dependency structure (the τ synchronization points emerge from it):
//   τ1: every device's ME+INT done, MV/SF slices gathered at the host;
//   τ2: every device's SME done (inputs: its ∆l SF and ∆m MV fragments,
//       which depend on all SF/MV outbound transfers — the implicit τ1);
//   τtot: R* done on the selected device and the new RF back at the host,
//       σ SF-completion transfers streamed into the tail slack.
#pragma once

#include "core/backend.hpp"
#include "platform/op_graph.hpp"
#include "sched/distribution.hpp"

#include <vector>

namespace feves {

/// Op ids of interest per device, for time attribution after execution
/// (-1 where an op does not exist for that device).
struct FrameOpIds {
  struct PerDevice {
    int me = -1, intp = -1, sme = -1, rstar = -1;
    int rf_in = -1, cf_me = -1, cf_sme = -1, mv_sme = -1, sf_sme = -1;
    int sf_carry = -1, sf_complete = -1;
    int cf_mc = -1, sf_mc = -1, mv_mc = -1;
    int mv_out = -1, sf_out = -1, sme_mv_out = -1, rf_out = -1;
  };
  std::vector<PerDevice> dev;
};

/// Builds the collaborative inter-frame op graph. `plans` comes from
/// DataAccessManagement::plan_frame for the same distribution.
OpGraph build_frame_graph(const PlatformTopology& topo,
                          const Distribution& dist,
                          const std::vector<TransferPlan>& plans,
                          FrameBackend& backend, FrameOpIds* ids);

}  // namespace feves
