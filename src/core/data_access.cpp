#include "core/data_access.hpp"

#include <algorithm>

namespace feves {

std::vector<RowInterval> subtract_all(RowInterval universe,
                                      std::vector<RowInterval> cover) {
  std::sort(cover.begin(), cover.end(),
            [](const RowInterval& a, const RowInterval& b) {
              return a.begin < b.begin;
            });
  std::vector<RowInterval> out;
  int at = universe.begin;
  for (const RowInterval& c : cover) {
    if (c.empty()) continue;
    if (c.end <= at) continue;
    if (c.begin >= universe.end) break;
    if (c.begin > at) out.push_back({at, std::min(c.begin, universe.end)});
    at = std::max(at, c.end);
    if (at >= universe.end) break;
  }
  if (at < universe.end) out.push_back({at, universe.end});
  // Drop empties produced by clipping.
  out.erase(std::remove_if(out.begin(), out.end(),
                           [](const RowInterval& f) { return f.empty(); }),
            out.end());
  return out;
}

DataAccessManagement::DataAccessManagement(const EncoderConfig& cfg,
                                           const PlatformTopology& topo,
                                           bool enable_reuse)
    : cfg_(cfg), topo_(topo), enable_reuse_(enable_reuse) {
  cfg_.validate();
  topo_.validate();
  deferred_.assign(static_cast<std::size_t>(topo_.num_devices()), {});
}

void DataAccessManagement::reset() {
  for (auto& d : deferred_) d.clear();
}

std::vector<int> DataAccessManagement::deferred_rows() const {
  std::vector<int> out(deferred_.size(), 0);
  for (std::size_t i = 0; i < deferred_.size(); ++i) {
    out[i] = TransferPlan::rows_of(deferred_[i]);
  }
  return out;
}

std::vector<TransferPlan> DataAccessManagement::plan_frame(
    const Distribution& dist, int rf_holder, int num_refs,
    const std::vector<bool>* active) {
  const int n = topo_.num_devices();
  const int rows = cfg_.num_mb_rows();
  FEVES_CHECK(dist.num_devices() == n);
  FEVES_CHECK(active == nullptr || static_cast<int>(active->size()) == n);
  dist.check_conservation(rows);

  const auto me_iv = intervals_of(dist.me);
  const auto l_iv = intervals_of(dist.intp);
  const auto s_iv = intervals_of(dist.sme);
  const int halo = sme_sf_halo_rows(cfg_);
  const RowInterval frame{0, rows};

  std::vector<TransferPlan> plans(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    TransferPlan& p = plans[i];
    if (active != nullptr && !(*active)[i]) {
      FEVES_CHECK_MSG(dist.me[i] == 0 && dist.intp[i] == 0 && dist.sme[i] == 0,
                      "inactive device " << i << " was assigned rows");
      deferred_[i].clear();  // unreachable: nothing can be carried over
      continue;
    }
    if (!topo_.devices[i].is_accelerator()) {
      deferred_[i].clear();  // host always holds everything
      continue;
    }

    p.fetch_rf = (i != rf_holder);
    p.cf_me = me_iv[i];
    p.mv_out = me_iv[i];
    p.sf_out = l_iv[i];
    p.sme_mv_out = s_iv[i];

    // ∆m (MS_BOUNDS): SME rows outside the local ME slice — at most the
    // two fragments of Fig 5(a). Without reuse, the whole SME span is
    // re-fetched even where the device already holds it.
    const RowInterval sme_need = halo_extend(s_iv[i], halo, rows);
    if (enable_reuse_) {
      p.cf_sme = interval_difference(s_iv[i], me_iv[i]);
      p.sf_sme = interval_difference(sme_need, l_iv[i]);
    } else {
      if (!s_iv[i].empty()) p.cf_sme = {s_iv[i]};
      if (!sme_need.empty()) p.sf_sme = {sme_need};
    }
    p.mv_sme = p.cf_sme;

    // σ^{r-1}: the previous frame's deferred SF completion, delivered now
    // (only meaningful once there is an older reference to complete).
    if (num_refs >= 2) p.sf_carry = deferred_[i];
    deferred_[i].clear();

    if (i == dist.rstar_device) {
      // The R* host needs everything: remaining CF, SF and the SME MVs
      // computed on other devices (Fig 5(b)).
      std::vector<RowInterval> cf_have = p.cf_sme;
      cf_have.push_back(p.cf_me);
      p.cf_mc = subtract_all(frame, cf_have);
      std::vector<RowInterval> sf_have = p.sf_sme;
      sf_have.push_back(l_iv[i]);
      p.sf_mc = subtract_all(frame, sf_have);
      p.mv_mc = subtract_all(frame, {s_iv[i]});
      // Fully resident at frame end: nothing deferred.
    } else {
      // SF completion: σ rows sent now, σ^r deferred. Fill fragments
      // top-to-bottom deterministically.
      std::vector<RowInterval> have = p.sf_sme;
      have.push_back(l_iv[i]);
      std::vector<RowInterval> remaining = subtract_all(frame, have);
      int budget = dist.sigma[i];
      for (const RowInterval& frag : remaining) {
        if (budget >= frag.length()) {
          p.sf_complete.push_back(frag);
          budget -= frag.length();
        } else {
          if (budget > 0) {
            p.sf_complete.push_back({frag.begin, frag.begin + budget});
          }
          p.sf_deferred.push_back({frag.begin + budget, frag.end});
          budget = 0;
        }
      }
      deferred_[i] = p.sf_deferred;
    }
  }
  return plans;
}

}  // namespace feves
