// Real-mode backend: kernels run on host threads over actual pixels, and
// every modelled transfer performs a genuine copy between the host's
// canonical buffers and a per-accelerator mirror. Accelerator kernels read
// ONLY their mirrors — if Data Access Management computes a wrong interval,
// the kernel sees poisoned bytes and the bit-exactness tests fail. That
// makes the Fig 5 offset/reuse logic empirically verified, not just
// modelled.
//
// (On this host all "devices" are CPU threads, so real mode demonstrates
// correctness and orchestration, not speedups — see DESIGN.md §1.)
#pragma once

#include "codec/frame_codec.hpp"
#include "core/backend.hpp"

#include <deque>
#include <memory>
#include <mutex>

namespace feves {

/// Device-local copies of the distribution-sensitive buffers.
struct DeviceMirror {
  struct RefMirror {
    RefMirror(int w, int h, int border)
        : recon_y(w, h, border), sf(w, h, border) {}
    PlaneU8 recon_y;  ///< reference luma (ME reads this)
    SubPelFrame sf;   ///< sub-pel planes (SME reads these)
  };

  PlaneU8 cf_y;                       ///< current-frame luma rows
  std::deque<std::unique_ptr<RefMirror>> refs;  ///< parallel to host RefList
  std::vector<MotionField> fields;    ///< raw ME MV fields, per ref
  /// SME's refined MVs land here rather than overwriting `fields` in
  /// place: the MV_out gather (copy lane) streams the raw ME vectors to
  /// the host concurrently with the SME kernel (compute lane), and the
  /// two are deliberately unordered in the op graph — sharing one buffer
  /// would be a data race and make the published rows timing-dependent.
  std::vector<MotionField> refined;

  /// Poison byte written into mirrors before each frame so reads of
  /// untransferred data are loud in tests.
  static constexpr u8 kPoison = 0xAA;
};

/// Real-mode backend for one frame. The canonical state (job, host RefList)
/// is owned by the CollaborativeEncoder; mirrors persist across frames.
class RealBackend final : public FrameBackend {
 public:
  /// `sme_dist` is the frame's SME row-count vector (used to publish the
  /// R*-hosting accelerator's locally refined MVs into the canonical
  /// fields before R* runs).
  RealBackend(EncodeJob& job, std::vector<DeviceMirror>& mirrors,
              const PlatformTopology& topo, SimdTier tier,
              std::vector<int> sme_dist);

  OpPayload op_me(int device, RowInterval rows) override;
  OpPayload op_int(int device, RowInterval rows) override;
  OpPayload op_sme(int device, RowInterval rows) override;
  OpPayload op_rstar(int device) override;
  OpPayload op_xfer(int device, XferPurpose purpose,
                    const std::vector<RowInterval>& fragments) override;

 private:
  bool is_accel(int device) const {
    return topo_.devices[device].is_accelerator();
  }

  /// Extends the canonical SF borders exactly once per frame, after all
  /// SF_out gathers (callers are ordered by the op graph's sf_ready deps).
  void ensure_sf_assembled();

  EncodeJob& job_;
  std::vector<DeviceMirror>& mirrors_;
  const PlatformTopology& topo_;
  SimdTier tier_;
  std::vector<int> sme_dist_;
  std::mutex assemble_mutex_;
  bool sf_assembled_ = false;
};

/// Double-buffered staging state for the frame pipeline: the parts of
/// begin_frame_mirror that do not depend on the executing frame's output —
/// fresh RefMirror allocation, SF poison, MV field reset — prepared in the
/// shadow of the previous execution. Everything in a prepared stage is
/// frame-agnostic by construction (blank poisoned buffers), so a stage is
/// reusable across retries; only an active_refs mismatch invalidates it.
struct MirrorStage {
  bool valid = false;
  int active_refs = 0;
  std::unique_ptr<DeviceMirror::RefMirror> fresh;
  std::vector<MotionField> fields;
  std::vector<MotionField> refined;
  /// RefMirror trimmed off the mirror window by the previous
  /// begin_frame_mirror, held for the next prestage to recycle (at steady
  /// state one slot leaves the window every frame and one enters, so this
  /// makes the per-frame RefMirror allocation a wash).
  std::unique_ptr<DeviceMirror::RefMirror> spare;
};

/// Prepares `stage` for a frame with `active_refs` references: allocates
/// the fresh reference slot with its SF planes poisoned and zeroed MV
/// fields, exactly as begin_frame_mirror's cold path would.
void prestage_mirror(MirrorStage& stage, const EncoderConfig& cfg,
                     int active_refs);

/// Prepares `mirror` for the next frame: allocates the new reference slot
/// and stages `newest_recon_y` (the canonical newest reconstruction,
/// borders included) into it, trims the window, poisons the CF rows and
/// resets the local MV fields. The RF_in op models the transfer time; the
/// bytes are staged here so the R*-producing device (which skips RF_in) is
/// handled uniformly. A non-null `staged` slot matching this frame's shape
/// is consumed instead of allocating (the pipeline's prestaged buffers);
/// the recon copy — which needs the just-finished frame's output — always
/// happens here. Either path yields byte-identical mirror state.
void begin_frame_mirror(DeviceMirror& mirror, const EncoderConfig& cfg,
                        int active_refs, const PlaneU8& newest_recon_y,
                        MirrorStage* staged = nullptr);

/// Rebuilds `mirror` from scratch out of the canonical reference list —
/// the recovery path. Used when the incremental begin_frame_mirror contract
/// (exactly one call per encoded frame) is broken: after a failed execution
/// attempt left the mirror partially written, or when a quarantined device
/// re-enters probation having missed frames. Every reference reconstruction
/// is staged; older references also get their (already assembled, borders
/// included) SF planes, the newest reference's SF — produced this frame —
/// and the CF are poisoned just like in the incremental path.
void restage_mirror(DeviceMirror& mirror, const EncoderConfig& cfg,
                    int active_refs, const RefList& refs);

}  // namespace feves
