// Data Access Management (paper Sec. III-B2, Fig 5): translates the load
// balancer's row-count distributions into exact per-device transfer
// intervals, maximizing reuse of data already resident on each device.
//
//  * ME and SME share the CF and MV buffers: only the SME rows outside the
//    device's own ME slice are re-fetched (the two fragments of Fig 5(a),
//    ∆m from MS_BOUNDS).
//  * INT and SME share the SF: the SME slice — extended by the search-area
//    halo, since sub-pel refinement reads up to R+1 pixel rows past the
//    slice — minus the device's own INT slice is fetched (∆l, LS_BOUNDS).
//  * SF completion is split into σ (sent in the τ2→τtot slack) and σ^r
//    (deferred; this object carries the exact deferred fragments into the
//    next frame, where they surface as the SF(RF-1)→SME transfer of Fig 4).
#pragma once

#include "common/config.hpp"
#include "platform/device.hpp"
#include "sched/distribution.hpp"

#include <vector>

namespace feves {

/// One device's transfer schedule for one frame, as row intervals.
struct TransferPlan {
  bool fetch_rf = false;               ///< newest RF (whole frame, h2d)
  RowInterval cf_me;                   ///< CF rows for the ME slice (h2d)
  std::vector<RowInterval> cf_sme;     ///< ∆m: extra CF rows for SME (h2d)
  std::vector<RowInterval> mv_sme;     ///< ∆m: MVs from other devices (h2d)
  std::vector<RowInterval> sf_sme;     ///< ∆l: SF rows for SME (h2d)
  std::vector<RowInterval> sf_carry;   ///< σ^{r-1}: deferred completion of
                                       ///< the PREVIOUS frame's SF (h2d)
  std::vector<RowInterval> sf_complete;  ///< σ: SF completion now (h2d)
  std::vector<RowInterval> sf_deferred;  ///< σ^r: recorded for next frame
  // Ops present only on the R*-hosting accelerator:
  std::vector<RowInterval> cf_mc;      ///< remaining CF for MC (h2d)
  std::vector<RowInterval> sf_mc;      ///< remaining SF for MC (h2d)
  std::vector<RowInterval> mv_mc;      ///< missing SME MVs for MC (h2d)

  // Outbound (d2h) intervals follow the module slices directly:
  RowInterval mv_out;  ///< ME MVs of the ME slice
  RowInterval sf_out;  ///< interpolated SF of the INT slice
  RowInterval sme_mv_out;  ///< refined MVs of the SME slice

  static int rows_of(const std::vector<RowInterval>& frags) {
    int n = 0;
    for (const RowInterval& f : frags) n += f.length();
    return n;
  }
};

class DataAccessManagement {
 public:
  /// `enable_reuse` = the paper's communication-minimization mechanism
  /// (MS_BOUNDS/LS_BOUNDS fragment reuse). Disabling it re-transfers the
  /// full CF/SF span a module needs, ignoring what the device already
  /// holds — the naive baseline for the reuse ablation bench.
  DataAccessManagement(const EncoderConfig& cfg, const PlatformTopology& topo,
                       bool enable_reuse = true);

  /// Computes every device's transfer plan for one frame and advances the
  /// deferred-SF state. `rf_holder` is the device that produced the newest
  /// RF (it skips the RF fetch; -1 = no device holds it, everyone fetches).
  /// `num_refs` is the current reference count (the carry transfer only
  /// exists once an older SF exists). Devices with `active` false get an
  /// empty plan and their deferred state dropped — a quarantined device is
  /// not addressable, and on re-admission its mirror is restaged whole.
  std::vector<TransferPlan> plan_frame(
      const Distribution& dist, int rf_holder, int num_refs,
      const std::vector<bool>* active = nullptr);

  /// Drops a device's deferred-SF state (quarantine eviction).
  void evict(int device) {
    FEVES_CHECK(device >= 0 && device < static_cast<int>(deferred_.size()));
    deferred_[static_cast<std::size_t>(device)].clear();
  }

  /// Deferred fragments carried into the next frame (σ^{r-1} per device).
  const std::vector<RowInterval>& deferred(int device) const {
    return deferred_[device];
  }

  /// Row counts of the deferred fragments (the σ^r vector fed back into
  /// Algorithm 2).
  std::vector<int> deferred_rows() const;

  void reset();

 private:
  EncoderConfig cfg_;
  PlatformTopology topo_;
  bool enable_reuse_;
  std::vector<std::vector<RowInterval>> deferred_;
};

/// Subtracts a union of disjoint sorted intervals `cover` from `universe`,
/// returning the uncovered fragments. Exposed for property tests.
std::vector<RowInterval> subtract_all(RowInterval universe,
                                      std::vector<RowInterval> cover);

}  // namespace feves
