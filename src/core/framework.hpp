// Framework Control (paper Algorithm 1): the per-frame loop tying together
// Load Balancing, the Video Coding Manager, Data Access Management and
// Performance Characterization.
//
//   initialization (first inter-frame): equidistant split, record times,
//     build the initial characterization;
//   iterative (every further inter-frame): balance from the measured K
//     parameters, orchestrate, record, update.
//
// `VirtualFramework` drives the loop over the discrete-event executor and
// the analytical cost model — the engine behind every figure bench.
// The real-mode counterpart lives in collaborative_encoder.hpp.
#pragma once

#include "core/coding_manager.hpp"
#include "core/data_access.hpp"
#include "core/health.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "platform/fault.hpp"
#include "platform/perturbation.hpp"
#include "sched/load_balancer.hpp"

#include <optional>
#include <vector>

namespace feves {

class DeviceLease;

/// Per-frame device grant for a framework sharing its platform with other
/// encode sessions (src/service). `devices` restricts this frame's
/// scheduling to a subset of the topology — it is intersected with the
/// health monitor's active mask, so a session's own quarantines compose
/// with the arbiter's share. `lease`, when non-null, is forwarded to the
/// executors, which refuse any op targeting a device outside it. A
/// default-constructed grant (the single-tenant case) changes nothing.
struct FrameGrant {
  const std::vector<bool>* devices = nullptr;
  const DeviceLease* lease = nullptr;
};

/// Which scheduler drives the distribution decisions — kAdaptiveLp is the
/// paper's Algorithm 2; the other two are the evaluation baselines.
enum class SchedulingPolicy {
  kAdaptiveLp,    ///< Algorithm 2 (LP + performance characterization)
  kProportional,  ///< per-module speed-proportional split ([9]-style)
  kEquidistant,   ///< static equal split (multi-GPU related work)
};

struct FrameworkOptions {
  SchedulingPolicy policy = SchedulingPolicy::kAdaptiveLp;
  /// Weight of the newest measurement when updating the characterization.
  /// 1.0 = the paper's Algorithm 1 (each frame's recorded times directly
  /// parameterize the next LP — "a single inter-frame to converge");
  /// lower values EWMA-smooth noisy non-dedicated systems.
  double ewma_alpha = 1.0;
  LoadBalancerOptions lb;
  /// Shared-buffer reuse in Data Access Management (ablation knob; the
  /// paper's communication-minimization mechanism, Sec. III-B2).
  bool enable_data_reuse = true;
  /// Pin the R* block to a device (-1 = automatic Dijkstra selection).
  /// Pinning the CPU gives the paper's CPU-centric operation; pinning an
  /// accelerator the GPU-centric one. A pin on a quarantined device is
  /// suspended (automatic selection over survivors) until re-admission.
  int force_rstar_device = -1;
  /// Quarantine / probation policy for device faults.
  HealthOptions health;
  /// Per-op watchdog deadline handed to the executors (0 = disabled).
  /// Required (> 0) when the fault schedule injects hangs.
  double watchdog_ms = 0.0;
  /// Real mode: how long an injected hang sleeps (must exceed watchdog_ms).
  double hang_sleep_ms = 20.0;
  /// Failed execution attempts tolerated per frame before giving up. Each
  /// attempt quarantines at least the faulty device's failure streak, so a
  /// handful suffices even for simultaneous multi-device faults.
  int max_frame_retries = 8;
  /// Observability: when non-null, every op the executors run plus the
  /// host-side scheduling phases are emitted into this session's tracer and
  /// folded into its sink frame by frame (Chrome trace export). The session
  /// must outlive the framework. Null = zero tracing overhead.
  obs::TraceSession* trace = nullptr;
  /// Two-slot frame pipeline: after frame n succeeds, frame n+1's LP solve,
  /// transfer planning and (real mode) mirror prestaging run in the shadow
  /// of frame n's execution — in real mode on a genuinely concurrent
  /// speculation thread — and are consumed next frame only if the device
  /// set, R* placement, reference window and characterization still match
  /// (drift < lb.convergence_epsilon). Any mismatch (fault retry, grant
  /// churn, perturbation spike) discards the slot and re-solves
  /// synchronously from fresh state, so adaptation latency and output are
  /// bit-identical to the unpipelined loop; only the critical-path
  /// scheduling cost changes.
  bool enable_pipeline = true;
};

/// Everything measured about one encoded inter-frame.
struct FrameStats {
  int frame_number = 0;    ///< 1-based inter-frame index
  int active_refs = 1;     ///< reference-window size in effect
  double total_ms = 0.0;   ///< τtot: inter-loop time of this frame
                           ///< (includes any failed attempts' wall time)
  double tau1_ms = 0.0;    ///< measured τ1 (ME/INT + gathers done)
  double tau2_ms = 0.0;    ///< measured τ2 (SME done everywhere)
  double scheduling_ms = 0.0;  ///< LB + data-access planning wall time
  Distribution dist;       ///< the distribution that produced the frame
  // Fault-recovery accounting:
  int retries = 0;               ///< failed execution attempts before success
  int devices_quarantined = 0;   ///< devices newly quarantined this frame
  int devices_readmitted = 0;    ///< devices entering probation after it
  int active_devices = 0;        ///< devices the successful attempt ran on
  /// Scheduler telemetry: LP effort and predicted-vs-measured times.
  obs::SchedTelemetry telemetry;
  double fps() const { return total_ms > 0 ? 1000.0 / total_ms : 0.0; }
};

/// One scheduling decision: the distribution the policy produced, the
/// transfer plans derived from it, and the LP effort it took. Produced by
/// compute_schedule() either synchronously on the critical path or
/// speculatively inside the frame pipeline.
struct ScheduleDecision {
  Distribution dist;
  std::vector<TransferPlan> plans;
  BalanceStats lb;
};

/// Runs one full scheduling step shared by both frameworks: policy dispatch
/// (Algorithm 2 / proportional / equidistant, including the probe path for
/// partially characterized grants and the R*-pin quarantine fallback), then
/// transfer planning. Mutates `dam`'s deferred-SF state and the balancer's
/// warm-start cache.
ScheduleDecision compute_schedule(const FrameworkOptions& opts,
                                  LoadBalancer& balancer,
                                  const PerfCharacterization& perf,
                                  const DeviceHealthMonitor& health,
                                  DataAccessManagement& dam,
                                  const std::vector<bool>& active,
                                  int rf_holder, int active_refs);

/// One precomputed frame of the two-slot pipeline: the speculative schedule
/// for frame `frame`, the advanced copy of the Data Access state it was
/// planned against, and the inputs it speculated on (validated at consume
/// time against the then-current platform state).
struct PipelineSlot {
  bool valid = false;
  int frame = 0;
  int active_refs = 0;
  int rf_holder = -1;
  std::vector<bool> active;
  std::vector<DeviceParams> params;  ///< characterization at solve time
  ScheduleDecision sched;
  std::optional<DataAccessManagement> dam;
  double cost_ms = 0.0;  ///< wall time the precompute took (overlapped)
};

/// Consume-time validation: the slot's speculation still matches this
/// attempt's scheduling inputs — same schedulable set, R* holder and
/// reference window, and every active device's characterization within the
/// convergence epsilon of the snapshot the slot was solved under.
bool pipeline_slot_matches(const PipelineSlot& slot, int frame,
                           const std::vector<bool>& active, int rf_holder,
                           int active_refs, const PerfCharacterization& perf,
                           double epsilon);

/// Frame-boundary snapshot of Algorithm 1's adaptive state — the minimal
/// cross-frame scheduling state either framework needs to resume from the
/// frame after the snapshot. Pixels (the reference window) are real-mode
/// only and live in EncoderCheckpoint (collaborative_encoder.hpp); the
/// service layer wraps both in a SessionCheckpoint. Copyable by value so a
/// checkpoint can outlive the framework it was taken from — restoring into
/// a freshly constructed framework is exactly the resume-elsewhere story.
struct FrameworkCheckpoint {
  int next_frame = 1;  ///< first inter-frame NOT covered by the snapshot
  int rf_holder = 0;   ///< device holding the newest RF at the boundary
  PerfCharacterization perf{1};  ///< K parameters at the last good frame
  DeviceHealthMonitor health{1}; ///< quarantine/probation state
};

class VirtualFramework {
 public:
  VirtualFramework(const EncoderConfig& cfg, const PlatformTopology& topo,
                   FrameworkOptions opts = {},
                   PerturbationSchedule perturbations = {},
                   FaultSchedule faults = {});

  /// Snapshots the adaptive state at the current frame boundary (call only
  /// between encode_frame calls).
  FrameworkCheckpoint checkpoint() const;

  /// Restores a frame-boundary snapshot — typically into a freshly
  /// constructed framework over the same topology. Scheduling resumes from
  /// the checkpointed characterization; the pipeline slot and deferred-SF
  /// state are dropped (they describe frames the snapshot does not cover).
  void restore(const FrameworkCheckpoint& cp);

  /// Simulates the next inter-frame; returns its stats. `grant` restricts
  /// the frame to a device subset (multi-session operation; default: the
  /// whole topology).
  FrameStats encode_frame(const FrameGrant& grant = {});

  /// Simulates `frames` consecutive inter-frames.
  std::vector<FrameStats> encode(int frames);

  /// Steady-state throughput: simulates `frames` and averages over the
  /// frames after the reference window has filled and balancing has
  /// converged (skipping the first max(num_ref_frames, warmup) frames).
  double steady_state_fps(int frames = 30, int warmup = 8);

  const PerfCharacterization& characterization() const { return perf_; }
  const DeviceHealthMonitor& health() const { return health_; }
  int frames_encoded() const { return next_frame_ - 1; }

 private:
  EncoderConfig cfg_;
  PlatformTopology topo_;
  FrameworkOptions opts_;
  PerturbationSchedule perturbations_;
  FaultSchedule faults_;
  LoadBalancer balancer_;
  DataAccessManagement dam_;
  PerfCharacterization perf_;
  DeviceHealthMonitor health_;
  int next_frame_ = 1;   ///< next inter-frame number (frame 0 is the I frame)
  int rf_holder_ = 0;    ///< device that produced the newest RF
  PipelineSlot slot_;    ///< next frame's speculative schedule
  std::vector<double> slowdown_;  ///< per-attempt scratch (capacity reused)

  /// Precomputes `slot_` for frame+1 from the pre-fold characterization
  /// (honestly modelling the overlap: the speculative solve cannot see the
  /// measurements of the execution it overlaps).
  void precompute_next(int frame, const std::vector<bool>& active,
                       const Distribution& dist);
};

/// One attempt's schedulable set: the health monitor's active mask
/// intersected with the grant's device subset (a grant with no mask passes
/// health through). Fails loudly when the intersection is empty — every
/// granted device is quarantined, so the session cannot progress and its
/// arbiter must be asked for a different share. Shared by both frameworks.
std::vector<bool> granted_active_mask(const DeviceHealthMonitor& health,
                                      const FrameGrant& grant, int frame);

/// Folds one frame's measured per-op times into the characterization
/// (Algorithm 1 lines 5-6/10; shared by the virtual and real frameworks).
/// Only ops that completed cleanly are folded: failed, timed-out and
/// cancelled ops carry truncated or zero durations that would poison the
/// K parameters every later LP consumes.
void attribute_frame_times(const EncoderConfig& cfg,
                           const PlatformTopology& topo,
                           const Distribution& dist, const FrameOpIds& ids,
                           const ExecutionResult& result,
                           PerfCharacterization* perf);

/// Fills `telemetry->dev` with predicted-vs-measured per-module times:
/// predicted = assigned rows × the K parameter the scheduler consumed
/// (call BEFORE attribute_frame_times folds this frame's measurements),
/// measured = the op's span in the execution result. Shared by both
/// frameworks.
void fill_device_telemetry(const PlatformTopology& topo,
                           const Distribution& dist, const FrameOpIds& ids,
                           const ExecutionResult& result,
                           const PerfCharacterization& perf,
                           obs::SchedTelemetry* telemetry);

}  // namespace feves
