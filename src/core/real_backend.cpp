#include "core/real_backend.hpp"

#include "codec/interpolate.hpp"
#include "platform/perf_model.hpp"
#include "sched/distribution.hpp"

#include <cstring>
#include <mutex>

namespace feves {

namespace {

/// Copies interior pixel rows [16*b, 16*e) from `src` to `dst`; both planes
/// must share geometry. `with_borders` also copies the horizontal border
/// span of each row (valid only when the source borders are extended).
void copy_pixel_rows(const PlaneU8& src, PlaneU8& dst, RowInterval mb_rows,
                     bool with_borders) {
  FEVES_CHECK(src.width() == dst.width() && src.height() == dst.height());
  FEVES_CHECK(!with_borders || src.border() == dst.border());
  const int y0 = mb_rows.begin * kMbSize;
  const int y1 = mb_rows.end * kMbSize;
  const int b = with_borders ? src.border() : 0;
  const std::size_t bytes = static_cast<std::size_t>(src.width() + 2 * b);
  for (int y = y0; y < y1; ++y) {
    std::memcpy(dst.row(y) - b, src.row(y) - b, bytes);
  }
}

/// Copies a whole plane including every border byte.
void copy_full_plane(const PlaneU8& src, PlaneU8& dst) {
  FEVES_CHECK(src.width() == dst.width() && src.height() == dst.height());
  FEVES_CHECK(src.border() == dst.border());
  const int b = src.border();
  const std::size_t bytes = static_cast<std::size_t>(src.width() + 2 * b);
  for (int y = -b; y < src.height() + b; ++y) {
    std::memcpy(dst.row(y) - b, src.row(y) - b, bytes);
  }
}

/// Copies motion-field rows [b, e) (all refs) between field vectors.
void copy_field_rows(const std::vector<MotionField>& src,
                     std::vector<MotionField>& dst, RowInterval rows,
                     int mb_width) {
  FEVES_CHECK(src.size() == dst.size());
  for (std::size_t r = 0; r < src.size(); ++r) {
    const std::size_t lo = static_cast<std::size_t>(rows.begin) * mb_width;
    const std::size_t hi = static_cast<std::size_t>(rows.end) * mb_width;
    FEVES_CHECK(hi <= src[r].size());
    std::copy(src[r].begin() + lo, src[r].begin() + hi, dst[r].begin() + lo);
  }
}

}  // namespace

void prestage_mirror(MirrorStage& stage, const EncoderConfig& cfg,
                     int active_refs) {
  const int border = ref_border(cfg);
  // Recycle, in preference order: an unconsumed fresh slot from a discarded
  // stage, or the spare that begin_frame_mirror trimmed off the mirror
  // window last frame. Either way the SF poison below re-establishes the
  // exact cold-path state; a geometry change falls through to allocation.
  std::unique_ptr<DeviceMirror::RefMirror> fresh = std::move(stage.fresh);
  if (fresh == nullptr) fresh = std::move(stage.spare);
  if (fresh == nullptr || fresh->recon_y.width() != cfg.width ||
      fresh->recon_y.height() != cfg.height ||
      fresh->recon_y.border() != border) {
    fresh = std::make_unique<DeviceMirror::RefMirror>(cfg.width, cfg.height,
                                                      border);
  }
  for (auto& plane : fresh->sf.phases) plane.fill(DeviceMirror::kPoison);
  stage.fresh = std::move(fresh);
  stage.spare = nullptr;

  const std::size_t mbs = static_cast<std::size_t>(cfg.total_mbs());
  stage.fields.resize(static_cast<std::size_t>(active_refs));
  for (MotionField& f : stage.fields) f.assign(mbs, MbMotion{});
  stage.refined.resize(static_cast<std::size_t>(active_refs));
  for (MotionField& f : stage.refined) f.assign(mbs, MbMotion{});
  stage.active_refs = active_refs;
  stage.valid = true;
}

void begin_frame_mirror(DeviceMirror& mirror, const EncoderConfig& cfg,
                        int active_refs, const PlaneU8& newest_recon_y,
                        MirrorStage* staged) {
  const int border = ref_border(cfg);
  if (mirror.cf_y.width() != cfg.width) {
    mirror.cf_y = PlaneU8(cfg.width, cfg.height, border);
  }
  mirror.cf_y.fill(DeviceMirror::kPoison);

  std::unique_ptr<DeviceMirror::RefMirror> fresh;
  if (staged != nullptr && staged->valid &&
      staged->active_refs == active_refs && staged->fresh != nullptr &&
      staged->fresh->recon_y.width() == cfg.width &&
      staged->fresh->recon_y.height() == cfg.height) {
    fresh = std::move(staged->fresh);
    // Swap rather than move: the mirror's last-frame field vectors return
    // to the stage, where the next prestage recycles their capacity.
    std::swap(mirror.fields, staged->fields);
    std::swap(mirror.refined, staged->refined);
    staged->valid = false;
  } else {
    fresh = std::make_unique<DeviceMirror::RefMirror>(cfg.width, cfg.height,
                                                      border);
    for (auto& plane : fresh->sf.phases) plane.fill(DeviceMirror::kPoison);
    const std::size_t mbs = static_cast<std::size_t>(cfg.total_mbs());
    mirror.fields.resize(static_cast<std::size_t>(active_refs));
    for (MotionField& f : mirror.fields) f.assign(mbs, MbMotion{});
    mirror.refined.resize(static_cast<std::size_t>(active_refs));
    for (MotionField& f : mirror.refined) f.assign(mbs, MbMotion{});
  }
  copy_full_plane(newest_recon_y, fresh->recon_y);
  mirror.refs.push_front(std::move(fresh));
  while (static_cast<int>(mirror.refs.size()) > active_refs) {
    // Hand the trimmed slot to the stage as the spare the next prestage
    // adopts — the window is steady-state, so this closes the alloc loop.
    if (staged != nullptr && staged->spare == nullptr) {
      staged->spare = std::move(mirror.refs.back());
    }
    mirror.refs.pop_back();
  }
}

void restage_mirror(DeviceMirror& mirror, const EncoderConfig& cfg,
                    int active_refs, const RefList& refs) {
  FEVES_CHECK(refs.size() >= active_refs);
  const int border = ref_border(cfg);
  if (mirror.cf_y.width() != cfg.width) {
    mirror.cf_y = PlaneU8(cfg.width, cfg.height, border);
  }
  mirror.cf_y.fill(DeviceMirror::kPoison);

  mirror.refs.clear();
  for (int r = 0; r < active_refs; ++r) {
    auto rm = std::make_unique<DeviceMirror::RefMirror>(cfg.width, cfg.height,
                                                        border);
    copy_full_plane(refs.ref(r).recon.y, rm->recon_y);
    if (r == 0) {
      // The newest reference's SF is interpolated during this frame.
      for (auto& plane : rm->sf.phases) plane.fill(DeviceMirror::kPoison);
    } else {
      for (int ph = 0; ph < kSubPel * kSubPel; ++ph) {
        copy_full_plane(refs.ref(r).sf.phases[ph], rm->sf.phases[ph]);
      }
    }
    mirror.refs.push_back(std::move(rm));
  }

  mirror.fields.assign(static_cast<std::size_t>(active_refs),
                       MotionField(static_cast<std::size_t>(cfg.total_mbs())));
  mirror.refined = mirror.fields;
}

RealBackend::RealBackend(EncodeJob& job, std::vector<DeviceMirror>& mirrors,
                         const PlatformTopology& topo, SimdTier tier,
                         std::vector<int> sme_dist)
    : job_(job),
      mirrors_(mirrors),
      topo_(topo),
      tier_(tier),
      sme_dist_(std::move(sme_dist)) {
  FEVES_CHECK(static_cast<int>(mirrors.size()) == topo.num_devices());
  FEVES_CHECK(static_cast<int>(sme_dist_.size()) == topo.num_devices());
}

void RealBackend::ensure_sf_assembled() {
  std::lock_guard lock(assemble_mutex_);
  if (sf_assembled_) return;
  finish_interpolation(job_);
  sf_assembled_ = true;
}

OpPayload RealBackend::op_me(int device, RowInterval rows) {
  if (!is_accel(device)) {
    return {0.0, 0.0, [this, rows] { me_rows(job_, rows.begin, rows.end, tier_); }};
  }
  return {0.0, 0.0, [this, device, rows] {
            DeviceMirror& m = mirrors_[device];
            MeParams params;
            params.search_range = job_.cfg->search_range;
            params.tier = tier_;
            for (std::size_t r = 0; r < job_.refs.size(); ++r) {
              run_me_rows(m.cf_y, m.refs[r]->recon_y, job_.cfg->mb_width(),
                          rows.begin, rows.end, params, m.fields[r].data());
            }
          }};
}

OpPayload RealBackend::op_int(int device, RowInterval rows) {
  if (!is_accel(device)) {
    return {0.0, 0.0,
            [this, rows] { int_rows(job_, rows.begin, rows.end, tier_); }};
  }
  return {0.0, 0.0, [this, device, rows] {
            DeviceMirror& m = mirrors_[device];
            run_interpolation_rows(m.refs[0]->recon_y, rows.begin, rows.end,
                                   m.refs[0]->sf, tier_);
            // Local slices must carry valid horizontal borders for SME's
            // out-of-frame motion vectors.
            for (auto& plane : m.refs[0]->sf.phases) {
              plane.extend_horizontal_borders(rows.begin * kMbSize,
                                              rows.end * kMbSize);
            }
            if (topo_.num_devices() == 1) {
              // Solo accelerator: there is no SF_out gather, and R* (which
              // reads the canonical SF as a stand-in for device-local MC
              // data) runs on this same device — publish the slice locally.
              for (int ph = 0; ph < kSubPel * kSubPel; ++ph) {
                copy_pixel_rows(m.refs[0]->sf.phases[ph],
                                job_.refs[0]->sf.phases[ph], rows, false);
              }
            }
          }};
}

OpPayload RealBackend::op_sme(int device, RowInterval rows) {
  if (!is_accel(device)) {
    return {0.0, 0.0, [this, rows] {
              ensure_sf_assembled();
              sme_rows(job_, rows.begin, rows.end);
            }};
  }
  return {0.0, 0.0, [this, device, rows] {
            DeviceMirror& m = mirrors_[device];
            SmeParams params;
            params.refine_range = job_.cfg->subpel_refine_range;
            // SF completion (σ) and MC prefetch stream on the copy lane
            // concurrently with this kernel, writing payload rows outside
            // the staged SME halo — so only extend a vertical border this
            // slice can actually reach. When a border is reachable, its
            // source edge row lies inside the halo window staged by the
            // dep-ordered SF_sme transfer and is stable to read.
            const int halo = sme_sf_halo_rows(*job_.cfg);
            const bool top = rows.begin < halo;
            const bool bottom = rows.end > job_.cfg->num_mb_rows() - halo;
            // Seed the refined field with the raw ME vectors, then refine
            // that copy — `fields` stays untouched so the MV_out gather can
            // stream it on the copy lane while this kernel runs.
            copy_field_rows(m.fields, m.refined, rows,
                            job_.cfg->mb_width());
            for (std::size_t r = 0; r < job_.refs.size(); ++r) {
              for (auto& plane : m.refs[r]->sf.phases) {
                plane.extend_vertical_borders(top, bottom);
              }
              run_sme_rows(m.cf_y, m.refs[r]->sf, job_.cfg->mb_width(),
                           rows.begin, rows.end, params, m.refined[r].data());
            }
          }};
}

OpPayload RealBackend::op_rstar(int device) {
  return {0.0, 0.0, [this, device] {
            if (is_accel(device)) {
              // The R* host's own SME rows live in its mirror; publish them
              // into the canonical fields (a device-local no-cost step — in
              // a real system this data never leaves the device).
              const auto s_iv = intervals_of(sme_dist_);
              copy_field_rows(mirrors_[device].refined, job_.fields,
                              s_iv[device], job_.cfg->mb_width());
            }
            ensure_sf_assembled();
            rstar_frame(job_, tier_);
          }};
}

OpPayload RealBackend::op_xfer(int device, XferPurpose purpose,
                               const std::vector<RowInterval>& fragments) {
  FEVES_CHECK(is_accel(device));
  auto frags = fragments;
  int rows = 0;
  for (const RowInterval& f : frags) rows += f.length();
  double row_bytes = 0.0;
  switch (buffer_of(purpose)) {
    case BufferKind::kCf:
      row_bytes = cf_row_bytes(*job_.cfg);
      break;
    case BufferKind::kRf:
      row_bytes = rf_row_bytes(*job_.cfg);
      break;
    case BufferKind::kSf:
      row_bytes = sf_row_bytes(*job_.cfg);
      break;
    case BufferKind::kMv:
      row_bytes =
          mv_row_bytes(*job_.cfg, static_cast<int>(job_.refs.size()));
      break;
  }
  return {0.0, rows * row_bytes, [this, device, purpose, frags] {
            DeviceMirror& m = mirrors_[device];
            switch (purpose) {
              case XferPurpose::kRfIn:
              case XferPurpose::kRfOut:
                // Reference staging happens in begin_frame_mirror (every
                // accelerator receives the canonical newest recon); R*
                // writes the canonical reconstruction directly. These ops
                // exist for their timing semantics.
                break;
              case XferPurpose::kCfMe:
              case XferPurpose::kCfSme:
              case XferPurpose::kCfMc:
                for (const RowInterval& f : frags) {
                  copy_pixel_rows(job_.cur->y, m.cf_y, f, false);
                }
                break;
              case XferPurpose::kSfSme:
              case XferPurpose::kSfComplete:
              case XferPurpose::kSfMc: {
                ensure_sf_assembled();
                SubPelFrame& dst = m.refs[0]->sf;
                const SubPelFrame& src = job_.refs[0]->sf;
                for (const RowInterval& f : frags) {
                  for (int ph = 0; ph < kSubPel * kSubPel; ++ph) {
                    copy_pixel_rows(src.phases[ph], dst.phases[ph], f, true);
                  }
                }
                break;
              }
              case XferPurpose::kSfCarry: {
                // Completes the PREVIOUS frame's SF, now at refs[1].
                FEVES_CHECK(job_.refs.size() >= 2 && m.refs.size() >= 2);
                SubPelFrame& dst = m.refs[1]->sf;
                const SubPelFrame& src = job_.refs[1]->sf;
                for (const RowInterval& f : frags) {
                  for (int ph = 0; ph < kSubPel * kSubPel; ++ph) {
                    copy_pixel_rows(src.phases[ph], dst.phases[ph], f, true);
                  }
                }
                break;
              }
              case XferPurpose::kSfOut: {
                // Gather the locally interpolated slice into the canonical
                // SF (interior only; canonical borders are extended at
                // assembly time).
                SubPelFrame& dst = job_.refs[0]->sf;
                const SubPelFrame& src = m.refs[0]->sf;
                for (const RowInterval& f : frags) {
                  for (int ph = 0; ph < kSubPel * kSubPel; ++ph) {
                    copy_pixel_rows(src.phases[ph], dst.phases[ph], f, false);
                  }
                }
                break;
              }
              case XferPurpose::kMvSme:
                for (const RowInterval& f : frags) {
                  copy_field_rows(job_.fields, m.fields, f,
                                  job_.cfg->mb_width());
                }
                break;
              case XferPurpose::kMvMc:
                // MC prefetch carries refined vectors; it lands in the
                // refined buffer so the H2D lane never collides with the
                // MV_out gather still draining `fields` on the D2H lane.
                for (const RowInterval& f : frags) {
                  copy_field_rows(job_.fields, m.refined, f,
                                  job_.cfg->mb_width());
                }
                break;
              case XferPurpose::kMvOut:
                for (const RowInterval& f : frags) {
                  copy_field_rows(m.fields, job_.fields, f,
                                  job_.cfg->mb_width());
                }
                break;
              case XferPurpose::kSmeMvOut:
                // Refined vectors live in their own buffer (see
                // DeviceMirror::refined).
                for (const RowInterval& f : frags) {
                  copy_field_rows(m.refined, job_.fields, f,
                                  job_.cfg->mb_width());
                }
                break;
            }
          }};
}

}  // namespace feves
