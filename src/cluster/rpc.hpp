// RPC vocabulary of the cluster tier. Every WorkerProxy call is
// deadline-bounded and returns one of these statuses instead of throwing —
// a remote node crashing, hanging or partitioning away must be an ordinary
// return value the manager can attribute and retry, never an exception
// escaping the dispatch loop.
#pragma once

namespace feves::cluster {

enum class RpcStatus {
  kOk,
  kDeadlineExceeded,  ///< request (probably) arrived; reply missed deadline
  kUnreachable,       ///< request never reached the node (partition)
  kWorkerCrashed,     ///< node process is down
  kRejected,          ///< node refused the request (overload / shutdown)
};

inline const char* to_string(RpcStatus s) {
  switch (s) {
    case RpcStatus::kOk: return "ok";
    case RpcStatus::kDeadlineExceeded: return "deadline-exceeded";
    case RpcStatus::kUnreachable: return "unreachable";
    case RpcStatus::kWorkerCrashed: return "worker-crashed";
    case RpcStatus::kRejected: return "rejected";
  }
  return "?";
}

/// Retryable = the node might answer next attempt; kRejected is a policy
/// decision and retrying it immediately would hammer an overloaded node.
inline bool retryable(RpcStatus s) {
  return s == RpcStatus::kDeadlineExceeded || s == RpcStatus::kUnreachable ||
         s == RpcStatus::kWorkerCrashed;
}

}  // namespace feves::cluster
