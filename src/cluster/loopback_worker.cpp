#include "cluster/loopback_worker.hpp"

#include "sched/node_balance.hpp"

#include <chrono>
#include <utility>

namespace feves::cluster {

namespace {
/// How long the executor naps while the node is hung or idle-spinning on a
/// fault edge. Short enough that hang windows a few heartbeats wide still
/// resolve within a test's timeout, long enough not to burn a core.
constexpr auto kExecutorNap = std::chrono::microseconds(200);
}  // namespace

LoopbackWorker::LoopbackWorker(NodeId id, std::string name,
                               PlatformTopology topo,
                               NodeFaultSchedule node_faults)
    : id_(id),
      name_(std::move(name)),
      topo_(std::move(topo)),
      node_faults_(std::move(node_faults)),
      pool_(topo_.num_devices()) {
  topo_.validate();
  executor_ = std::thread([this] { run_executor(); });
}

LoopbackWorker::~LoopbackWorker() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    running_.store(false);
  }
  cv_.notify_all();
  if (executor_.joinable()) executor_.join();
}

void LoopbackWorker::set_completion_sink(CompletionSink sink) {
  std::lock_guard<std::mutex> lk(mu_);
  sink_ = std::move(sink);
}

RpcStatus LoopbackWorker::heartbeat(double deadline_ms) {
  (void)deadline_ms;  // the loopback transport resolves instantly
  // Every heartbeat *attempt* advances the node's fault clock, delivered or
  // not — this is what keeps NodeFaultSchedule windows aligned with manager
  // ticks even while the node is unreachable.
  const int b = beats_.fetch_add(1, std::memory_order_relaxed) + 1;
  last_beat_.store(b, std::memory_order_relaxed);
  const NodeFaultState st = node_faults_.at(id_, b);
  observe_state(st);
  if (st.crashed) return RpcStatus::kWorkerCrashed;
  if (st.partitioned) return RpcStatus::kUnreachable;
  if (st.hang) return RpcStatus::kDeadlineExceeded;
  if (st.heartbeat_loss) return RpcStatus::kUnreachable;
  return RpcStatus::kOk;
}

RpcStatus LoopbackWorker::capabilities(double deadline_ms,
                                       WorkerCapabilities* out) {
  (void)deadline_ms;
  const NodeFaultState st = state_now();
  observe_state(st);
  if (st.crashed) return RpcStatus::kWorkerCrashed;
  if (st.partitioned) return RpcStatus::kUnreachable;
  if (st.hang) return RpcStatus::kDeadlineExceeded;
  if (out != nullptr) {
    out->name = name_;
    out->num_devices = topo_.num_devices();
    out->capability_score = topology_capability(topo_);
  }
  return RpcStatus::kOk;
}

RpcStatus LoopbackWorker::submit(const WorkShard& shard, double deadline_ms) {
  (void)deadline_ms;
  const NodeFaultState st = state_now();
  observe_state(st);
  if (st.crashed) return RpcStatus::kWorkerCrashed;
  if (st.partitioned) return RpcStatus::kUnreachable;  // never arrived
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(shard);
  }
  cv_.notify_all();
  // A hung node RECEIVED the shard but its ack misses the deadline: the
  // classic uncertain submit. The manager must treat this lease as possibly
  // live and bump the epoch before re-dispatching anywhere.
  if (st.hang) return RpcStatus::kDeadlineExceeded;
  return RpcStatus::kOk;
}

RpcStatus LoopbackWorker::cancel(u64 lease_id, double deadline_ms) {
  (void)deadline_ms;
  const NodeFaultState st = state_now();
  observe_state(st);
  if (st.crashed) return RpcStatus::kWorkerCrashed;
  if (st.partitioned) return RpcStatus::kUnreachable;
  {
    std::lock_guard<std::mutex> lk(mu_);
    canceled_.insert(lease_id);
  }
  if (st.hang) return RpcStatus::kDeadlineExceeded;
  return RpcStatus::kOk;
}

void LoopbackWorker::observe_state(const NodeFaultState& st) {
  std::vector<ShardResult> flush;
  CompletionSink sink;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (st.crashed && !in_crash_) {
      // Crash edge: the node's volatile state is gone — queued shards,
      // buffered replies, cancellation marks, warm continuation caches.
      in_crash_ = true;
      queue_.clear();
      pending_out_.clear();
      canceled_.clear();
      drop_cache_.store(true, std::memory_order_relaxed);
    }
    if (!st.crashed && in_crash_) {
      in_crash_ = false;  // operator restart: clean slate, same identity
    }
    if (!st.crashed && !st.partitioned && !pending_out_.empty()) {
      // Partition healed: everything the node finished while unreachable
      // floods back at once. Stale epochs among these are the manager's
      // fencing problem, by design.
      flush.swap(pending_out_);
      sink = sink_;
    }
  }
  if (sink) {
    for (ShardResult& r : flush) sink(std::move(r));
  }
}

void LoopbackWorker::deliver(ShardResult result) {
  CompletionSink sink;
  {
    std::lock_guard<std::mutex> lk(mu_);
    const NodeFaultState st = state_now();
    if (st.crashed) return;  // finished just as the node died: lost
    if (st.partitioned) {
      pending_out_.push_back(std::move(result));
      return;
    }
    sink = sink_;
  }
  if (sink) sink(std::move(result));
}

bool LoopbackWorker::lease_canceled(u64 lease_id) {
  std::lock_guard<std::mutex> lk(mu_);
  return canceled_.count(lease_id) != 0;
}

void LoopbackWorker::run_executor() {
  while (true) {
    WorkShard shard;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] {
        return !running_.load(std::memory_order_relaxed) || !queue_.empty();
      });
      if (!running_.load(std::memory_order_relaxed)) return;
      shard = std::move(queue_.front());
      queue_.pop_front();
      if (canceled_.count(shard.lease_id) != 0) {
        canceled_.erase(shard.lease_id);
        continue;
      }
    }
    execute_shard(shard);
  }
}

void LoopbackWorker::execute_shard(const WorkShard& shard) {
  if (drop_cache_.exchange(false, std::memory_order_relaxed)) cache_.clear();

  ShardResult r;
  r.lease_id = shard.lease_id;
  r.epoch = shard.epoch;
  r.session = shard.session;
  r.node = id_;
  r.frame_begin = shard.frame_begin;

  const auto t0 = std::chrono::steady_clock::now();
  try {
    const bool real = shard.source != nullptr;
    FrameworkOptions fwo = shard.fw;
    fwo.trace = nullptr;  // worker-private loop: the manager traces instead

    Cached& c = cache_[shard.session];
    const bool warm = c.frames_done == shard.frame_begin &&
                      ((real && c.enc) || (!real && c.vfw));
    if (!warm) {
      // Cold start (or affinity moved the session elsewhere and back):
      // rebuild from the checkpoint carried by the shard. Bit-identity
      // never depends on the warm path.
      //
      // A checkpoint minted on a different-shaped node carries per-device
      // state (K parameters, quarantine windows) sized to THAT topology.
      // Only the stream state (frame position, reference window) is
      // portable; the device-local state is rebuilt exactly as a fresh
      // framework would — legal because the characterization and health
      // only steer WHERE work runs, never what bits come out.
      SessionCheckpoint resume = shard.resume;
      auto refit = [&](FrameworkCheckpoint* fw) {
        if (fw->perf.num_devices() == topo_.num_devices()) return;
        fw->perf = PerfCharacterization(topo_.num_devices(),
                                        fwo.ewma_alpha);
        fw->health = DeviceHealthMonitor(topo_.num_devices(), fwo.health);
        fw->rf_holder = std::max(0, topo_.cpu_index());
      };
      c.vfw.reset();
      c.enc.reset();
      if (real) {
        if (resume.valid) refit(&resume.enc.fw);
        c.enc = std::make_unique<CollaborativeEncoder>(
            shard.cfg, topo_, fwo, shard.tier, shard.device_faults);
        if (resume.valid) c.enc->restore(resume.enc);
      } else {
        if (resume.valid) refit(&resume.fw);
        c.vfw = std::make_unique<VirtualFramework>(
            shard.cfg, topo_, fwo, shard.perturbations, shard.device_faults);
        if (resume.valid) c.vfw->restore(resume.fw);
      }
      c.frames_done = shard.frame_begin;
    }

    const std::size_t base_bytes =
        shard.resume.valid ? shard.resume.bitstream_bytes : 0;
    const std::vector<bool> all(
        static_cast<std::size_t>(topo_.num_devices()), true);
    Frame420 frame(shard.cfg.width, shard.cfg.height);

    for (int f = shard.frame_begin; f < shard.frame_end; ++f) {
      // Fault edges are honoured between frames: a hang stalls the
      // executor mid-shard (and it later resumes as a zombie); a crash
      // abandons the shard and wipes the caches; a cancel drops it.
      NodeFaultState st = state_now();
      while (st.hang && !st.crashed &&
             running_.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(kExecutorNap);
        st = state_now();
      }
      if (!running_.load(std::memory_order_relaxed)) return;
      if (st.crashed) {
        cache_.clear();
        return;  // died mid-shard; the lease will expire manager-side
      }
      if (lease_canceled(shard.lease_id)) {
        cache_.erase(shard.session);
        return;
      }

      if (real) {
        if (!shard.source->read_frame(f, frame)) {
          r.source_exhausted = true;
          break;
        }
        // Frame 0 is the host-side bootstrap I frame: no grant.
        if (f == 0) {
          r.frames.push_back(c.enc->encode_frame(frame, &r.bitstream));
        } else {
          DeviceLease lease = pool_.reserve(all);
          r.frames.push_back(c.enc->encode_frame(
              frame, &r.bitstream, FrameGrant{&lease.mask(), &lease}));
        }
      } else {
        DeviceLease lease = pool_.reserve(all);
        r.frames.push_back(
            c.vfw->encode_frame(FrameGrant{&lease.mask(), &lease}));
      }
      ++c.frames_done;
      ++r.frames_done;
    }

    // Snapshot the frame boundary so any other node can continue from the
    // exact state this quantum reached — the resume-elsewhere contract.
    r.checkpoint.valid = true;
    r.checkpoint.frames_recorded =
        static_cast<std::size_t>(c.frames_done);
    r.checkpoint.bitstream_bytes = base_bytes + r.bitstream.size();
    if (real) {
      r.checkpoint.enc = c.enc->checkpoint();
      r.checkpoint.fw = r.checkpoint.enc.fw;
    } else {
      r.checkpoint.fw = c.vfw->checkpoint();
    }
    r.ok = true;
  } catch (const std::exception& e) {
    r.ok = false;
    r.error = e.what();
    cache_.erase(shard.session);  // state is suspect after a throw
  }
  r.encode_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  deliver(std::move(r));
}

}  // namespace feves::cluster
