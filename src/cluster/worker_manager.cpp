#include "cluster/worker_manager.hpp"

#include "sched/node_balance.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

namespace feves::cluster {

WorkerManager::WorkerManager(WorkerManagerOptions opts)
    : opts_(std::move(opts)) {
  FEVES_CHECK(opts_.tick_sleep_ms > 0.0);
  FEVES_CHECK(opts_.lease_ticks >= 1);
  FEVES_CHECK(opts_.all_dead_grace_ticks >= 1);
  driver_ = std::thread([this] { run_driver(); });
}

WorkerManager::~WorkerManager() {
  running_.store(false);
  if (driver_.joinable()) driver_.join();
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& s : sessions_) {
      if (!s->done) {
        finish_locked(s.get(), TerminalReason::kAborted,
                      "manager shut down");
      }
    }
  }
  done_cv_.notify_all();
  // Workers (and their executor threads) are destroyed by member teardown;
  // the inbox is declared before them, so late sink pushes stay safe.
}

NodeId WorkerManager::register_worker(std::unique_ptr<WorkerProxy> worker) {
  FEVES_CHECK(worker != nullptr);
  std::lock_guard<std::mutex> lk(mu_);
  FEVES_CHECK_MSG(sessions_.empty(),
                  "register every worker before the first submit");
  const NodeId id = static_cast<NodeId>(nodes_.size());
  worker->set_completion_sink([this](ShardResult r) {
    std::lock_guard<std::mutex> ilk(inbox_mu_);
    inbox_.push_back(std::move(r));
  });

  Node node;
  node.worker = std::move(worker);
  node.caps.name = "node" + std::to_string(id);
  node.caps.capability_score = 1.0;  // fallback: still rankable
  Backoff bo(opts_.backoff, 0x9E3779B9ull ^ static_cast<u64>(id));
  for (int attempt = 0; attempt <= opts_.rpc_retries; ++attempt) {
    WorkerCapabilities caps;
    const RpcStatus st =
        node.worker->capabilities(opts_.rpc_deadline_ms, &caps);
    if (st == RpcStatus::kOk) {
      node.caps = std::move(caps);
      break;
    }
    if (!retryable(st) || attempt == opts_.rpc_retries) break;
    ++tel_.rpc_retries;
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(bo.next_ms()));
  }
  node.counters.name = node.caps.name;
  nodes_.push_back(std::move(node));
  // Registration happens before any work, so rebuilding the monitor (all
  // nodes reset to alive) loses nothing.
  monitor_ = std::make_unique<HeartbeatMonitor>(
      static_cast<int>(nodes_.size()), opts_.heartbeat);
  return id;
}

int WorkerManager::num_workers() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<int>(nodes_.size());
}

int WorkerManager::submit(ClusterSessionConfig cfg) {
  FEVES_CHECK(cfg.frames > 0);
  FEVES_CHECK(cfg.chunk_frames >= 1);
  std::lock_guard<std::mutex> lk(mu_);
  FEVES_CHECK_MSG(!nodes_.empty(), "submit before any worker registered");
  auto s = std::make_unique<SessionState>();
  s->id = static_cast<int>(sessions_.size());
  s->cfg = std::move(cfg);
  s->result.id = s->id;
  sessions_.push_back(std::move(s));
  return static_cast<int>(sessions_.size()) - 1;
}

ClusterSessionResult WorkerManager::wait(int id) {
  std::unique_lock<std::mutex> lk(mu_);
  FEVES_CHECK(id >= 0 && id < static_cast<int>(sessions_.size()));
  SessionState* s = sessions_[static_cast<std::size_t>(id)].get();
  done_cv_.wait(lk, [s] { return s->done; });
  return s->result;  // sessions stay until the manager dies: copy is safe
}

std::vector<ClusterSessionResult> WorkerManager::drain() {
  int count = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    count = static_cast<int>(sessions_.size());
  }
  std::vector<ClusterSessionResult> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int id = 0; id < count; ++id) out.push_back(wait(id));
  return out;
}

obs::NodeTelemetry WorkerManager::telemetry() const {
  std::lock_guard<std::mutex> lk(mu_);
  return tel_;
}

std::vector<NodeCounters> WorkerManager::node_counters() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<NodeCounters> out;
  out.reserve(nodes_.size());
  for (const Node& n : nodes_) out.push_back(n.counters);
  return out;
}

NodeLiveness WorkerManager::node_state(int node) const {
  std::lock_guard<std::mutex> lk(mu_);
  FEVES_CHECK(monitor_ != nullptr);
  return monitor_->state(node);
}

int WorkerManager::node_incarnation(int node) const {
  std::lock_guard<std::mutex> lk(mu_);
  FEVES_CHECK(monitor_ != nullptr);
  return monitor_->incarnation(node);
}

void WorkerManager::run_driver() {
  while (running_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(opts_.tick_sleep_ms));
    tick();
  }
}

void WorkerManager::tick() {
  std::lock_guard<std::mutex> lk(mu_);
  if (nodes_.empty()) return;
  ++tick_count_;
  beat_nodes();
  drain_inbox();
  expire_leases();
  dispatch_pending();
}

void WorkerManager::beat_nodes() {
  for (int i = 0; i < static_cast<int>(nodes_.size()); ++i) {
    Node& node = nodes_[static_cast<std::size_t>(i)];
    const RpcStatus st =
        node.worker->heartbeat(opts_.heartbeat_deadline_ms);
    ++tel_.heartbeats;
    if (st == RpcStatus::kOk) {
      if (monitor_->record_beat(i)) {
        ++tel_.nodes_rejoined;
        mark(-1, "rejoin");
      }
      continue;
    }
    ++tel_.heartbeat_misses;
    ++node.counters.heartbeat_misses;
    const NodeLiveness before = monitor_->state(i);
    const bool newly_dead = monitor_->record_miss(i);
    if (before != NodeLiveness::kSuspect &&
        monitor_->state(i) == NodeLiveness::kSuspect) {
      ++tel_.nodes_suspected;
    }
    if (newly_dead) {
      ++tel_.nodes_died;
      mark(-1, "node-dead");
      fence_node_locked(i);
    }
  }
}

void WorkerManager::drain_inbox() {
  std::vector<ShardResult> batch;
  {
    std::lock_guard<std::mutex> ilk(inbox_mu_);
    batch.swap(inbox_);
  }
  for (ShardResult& r : batch) {
    SessionState* s = nullptr;
    if (r.session >= 0 && r.session < static_cast<int>(sessions_.size())) {
      s = sessions_[static_cast<std::size_t>(r.session)].get();
    }
    const bool live = s != nullptr && !s->done && s->outstanding &&
                      r.lease_id == s->lease_id && r.epoch == s->epoch;
    if (!live) {
      // The fencing path: a zombie node's late reply, a healed partition's
      // flood, or a lease the manager already reassigned. Dropped — never
      // merged — so no frame range can commit twice.
      ++tel_.fenced_replies;
      if (r.node >= 0 && r.node < static_cast<int>(nodes_.size())) {
        ++nodes_[static_cast<std::size_t>(r.node)].counters.fenced_replies;
      }
      mark(r.session, "fenced-reply");
      continue;
    }

    s->outstanding = false;
    Node& node = nodes_[static_cast<std::size_t>(s->lease_node)];
    node.outstanding = std::max(0, node.outstanding - 1);

    if (!r.ok) {
      ++s->consecutive_failures;
      const int budget = opts_.max_shard_failures > 0
                             ? opts_.max_shard_failures
                             : 3 + static_cast<int>(nodes_.size());
      mark(s->id, "shard-failed");
      if (s->consecutive_failures >= budget) {
        finish_locked(s, TerminalReason::kRestartsExhausted,
                      r.error.empty() ? "shard failure budget exhausted"
                                      : r.error);
      }
      continue;  // else: stays pending, re-dispatched with a fresh epoch
    }

    // The no-double-commit invariant, enforced: an accepted quantum starts
    // exactly at the committed frontier.
    FEVES_CHECK_MSG(r.frame_begin == s->committed,
                    "commit out of sequence: quantum at "
                        << r.frame_begin << " vs frontier " << s->committed);
    s->result.frames.insert(s->result.frames.end(), r.frames.begin(),
                            r.frames.end());
    s->result.bitstream.insert(s->result.bitstream.end(),
                               r.bitstream.begin(), r.bitstream.end());
    s->checkpoint = r.checkpoint;
    s->committed += r.frames_done;
    s->consecutive_failures = 0;
    ++tel_.completions;
    ++node.counters.completions;
    if (r.frames_done > 0 && r.encode_ms > 0.0) {
      const double fpms = static_cast<double>(r.frames_done) / r.encode_ms;
      node.ewma_fpms =
          node.ewma_fpms <= 0.0 ? fpms : 0.7 * node.ewma_fpms + 0.3 * fpms;
    }
    if (s->committed >= s->cfg.frames || r.source_exhausted) {
      finish_locked(s, TerminalReason::kCompleted, "");
    }
  }
}

void WorkerManager::expire_leases() {
  for (auto& sp : sessions_) {
    SessionState* s = sp.get();
    if (s->done || !s->outstanding) continue;
    if (tick_count_ - s->lease_tick <=
        static_cast<u64>(opts_.lease_ticks)) {
      continue;
    }
    const int node = s->lease_node;
    const u64 lease = s->lease_id;
    ++tel_.lease_expiries;
    fence_session_locked(s, "lease-expired");
    // Best-effort cancel; a completion that slips through is fenced anyway.
    nodes_[static_cast<std::size_t>(node)].worker->cancel(
        lease, opts_.rpc_deadline_ms);
  }
}

void WorkerManager::fence_session_locked(SessionState* s, const char* why) {
  if (!s->outstanding) return;
  Node& node = nodes_[static_cast<std::size_t>(s->lease_node)];
  node.outstanding = std::max(0, node.outstanding - 1);
  ++node.counters.reassigned_away;
  s->outstanding = false;
  s->reassigned = true;
  ++tel_.epoch_fences;
  ++tel_.reassigns;
  mark(s->id, why);
}

void WorkerManager::fence_node_locked(int node) {
  for (auto& sp : sessions_) {
    SessionState* s = sp.get();
    if (!s->done && s->outstanding && s->lease_node == node) {
      fence_session_locked(s, "node-fence");
    }
  }
}

void WorkerManager::finish_locked(SessionState* s, TerminalReason reason,
                                  std::string error) {
  if (s->outstanding) {
    Node& node = nodes_[static_cast<std::size_t>(s->lease_node)];
    node.outstanding = std::max(0, node.outstanding - 1);
    s->outstanding = false;
  }
  s->result.reason = reason;
  s->result.error = std::move(error);
  s->result.committed_frames = s->committed;
  s->result.final_epoch = s->epoch;
  s->done = true;
  mark(s->id, reason == TerminalReason::kCompleted ? "completed"
                                                   : "failed");
  done_cv_.notify_all();
}

std::vector<double> WorkerManager::node_capabilities_locked() const {
  // Measured frames/ms where available; nodes not yet measured get their
  // static topology score converted through the fleet's observed
  // fpms-per-score ratio, so mixed units still rank sensibly.
  std::vector<double> caps(nodes_.size(), 0.0);
  double ratio_sum = 0.0;
  int measured = 0;
  for (const Node& n : nodes_) {
    if (n.ewma_fpms > 0.0 && n.caps.capability_score > 0.0) {
      ratio_sum += n.ewma_fpms / n.caps.capability_score;
      ++measured;
    }
  }
  const double ratio = measured > 0 ? ratio_sum / measured : 1.0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    caps[i] = n.ewma_fpms > 0.0 ? n.ewma_fpms
                                : n.caps.capability_score * ratio;
  }
  return caps;
}

void WorkerManager::dispatch_pending() {
  bool any_pending = false;
  for (const auto& sp : sessions_) {
    if (!sp->done && !sp->outstanding) {
      any_pending = true;
      break;
    }
  }
  if (!any_pending) {
    all_dead_ticks_ = 0;
    return;
  }

  if (monitor_->num_dispatchable() == 0) {
    ++all_dead_ticks_;
    if (all_dead_ticks_ >= opts_.all_dead_grace_ticks) {
      for (auto& sp : sessions_) {
        if (!sp->done) {
          fence_session_locked(sp.get(), "no-live-worker");
          finish_locked(sp.get(), TerminalReason::kNoLiveWorker,
                        "every worker stayed dead past the grace window");
        }
      }
    }
    return;
  }
  all_dead_ticks_ = 0;

  const std::vector<double> caps = node_capabilities_locked();
  for (auto& sp : sessions_) {
    SessionState* s = sp.get();
    if (s->done || s->outstanding) continue;

    std::vector<NodeScore> scores(nodes_.size());
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      scores[i].capability = caps[i];
      scores[i].outstanding = nodes_[i].outstanding;
      scores[i].dispatchable = monitor_->dispatchable(static_cast<int>(i));
    }
    const int n = pick_node(scores, s->last_node);
    if (n < 0) continue;
    Node& node = nodes_[static_cast<std::size_t>(n)];

    bool acked = false;
    Backoff bo(opts_.backoff,
               (static_cast<u64>(s->id) << 20) ^ s->epoch ^ 0xC1A5ull);
    for (int attempt = 0; attempt <= opts_.rpc_retries; ++attempt) {
      // EVERY attempt burns a fresh (epoch, lease): an uncertain ack from
      // a hung node leaves at most a stale epoch behind, never a live one.
      WorkShard shard;
      shard.lease_id = ++next_lease_;
      shard.epoch = ++s->epoch;
      shard.session = s->id;
      shard.frame_begin = s->committed;
      shard.frame_end =
          std::min(s->cfg.frames, s->committed + s->cfg.chunk_frames);
      shard.total_frames = s->cfg.frames;
      shard.cfg = s->cfg.cfg;
      shard.fw = s->cfg.fw;
      shard.fw.trace = nullptr;  // worker loops never share the manager's
      shard.perturbations = s->cfg.perturbations;
      shard.device_faults = s->cfg.device_faults;
      shard.source = s->cfg.source;
      shard.tier = s->cfg.tier;
      shard.resume = s->checkpoint;

      const RpcStatus st = node.worker->submit(shard, opts_.rpc_deadline_ms);
      if (st == RpcStatus::kOk) {
        acked = true;
        s->lease_id = shard.lease_id;
        break;
      }
      if (!retryable(st) || attempt == opts_.rpc_retries) break;
      ++tel_.rpc_retries;
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(bo.next_ms()));
    }
    if (!acked) continue;  // stays pending; scores change next tick

    s->outstanding = true;
    s->lease_node = n;
    s->lease_tick = tick_count_;
    if (s->reassigned && n != s->last_node) {
      ++tel_.steals;
      ++node.counters.steals;
    }
    s->reassigned = false;
    s->last_node = n;
    ++node.outstanding;
    ++tel_.dispatches;
    ++node.counters.dispatches;
    mark(s->id, "dispatch");
  }
}

void WorkerManager::mark(int session, const char* label) {
  if (opts_.trace == nullptr) return;
  opts_.trace->add_host_event(std::max(0, session), label,
                              obs::EventKind::kMark, 0.0,
                              obs::kLaneCluster);
}

}  // namespace feves::cluster
