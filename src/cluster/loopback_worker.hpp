// In-process execute node: the first WorkerProxy implementation. The worker
// owns a private device tier — its own PlatformTopology, DevicePool and the
// per-framework PerfCharacterization inside the encode loops — and executes
// shard quanta on a worker-owned thread, exactly as a remote node would:
// the manager's only view of it is the five RPC calls and the completion
// sink.
//
// Node faults are injected at the loopback "transport": a NodeFaultSchedule
// indexed by the node's heartbeat clock (every heartbeat *attempt* advances
// it, delivered or not) decides per call whether the node is crashed
// (state lost, RPCs fail), hung (requests land, replies miss the deadline,
// the executor stalls and later resumes as a zombie), partitioned (nothing
// crosses in either direction; completed work buffers node-side and floods
// back when the partition heals — the classic late-reply fencing scenario)
// or merely losing heartbeats (work and replies still flow, so the manager
// declares a healthy node dead and must fence, not double-commit).
#pragma once

#include "cluster/worker.hpp"
#include "platform/fault.hpp"
#include "platform/pool.hpp"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_set>

namespace feves::cluster {

class LoopbackWorker : public WorkerProxy {
 public:
  LoopbackWorker(NodeId id, std::string name, PlatformTopology topo,
                 NodeFaultSchedule node_faults = {});
  ~LoopbackWorker() override;

  NodeId id() const override { return id_; }
  RpcStatus heartbeat(double deadline_ms) override;
  RpcStatus capabilities(double deadline_ms, WorkerCapabilities* out) override;
  RpcStatus submit(const WorkShard& shard, double deadline_ms) override;
  RpcStatus cancel(u64 lease_id, double deadline_ms) override;
  void set_completion_sink(CompletionSink sink) override;

  const PlatformTopology& topology() const { return topo_; }

 private:
  /// One session's warm continuation state: when the next shard starts at
  /// exactly `frames_done`, the executor continues in place instead of
  /// rebuilding from the checkpoint (the affinity fast path). Any other
  /// start point rebuilds — correctness never depends on the cache.
  struct Cached {
    int frames_done = 0;
    std::unique_ptr<VirtualFramework> vfw;
    std::unique_ptr<CollaborativeEncoder> enc;
  };

  /// Node fault state as of the most recent heartbeat attempt.
  NodeFaultState state_now() const {
    return node_faults_.at(id_, last_beat_.load(std::memory_order_relaxed));
  }
  /// Crash-edge handling shared by every incoming RPC: entering a crash
  /// window wipes the node's volatile state (queue, buffered replies,
  /// continuation caches); leaving one is the operator restart. Also
  /// flushes partition-buffered completions once reachable again.
  void observe_state(const NodeFaultState& st);
  void run_executor();
  void execute_shard(const WorkShard& shard);
  /// Push a finished shard to the sink, or buffer it while partitioned.
  void deliver(ShardResult result);
  bool lease_canceled(u64 lease_id);

  const NodeId id_;
  const std::string name_;
  const PlatformTopology topo_;
  const NodeFaultSchedule node_faults_;
  DevicePool pool_;

  std::atomic<int> beats_{0};      ///< heartbeat attempts so far
  std::atomic<int> last_beat_{0};  ///< index of the most recent attempt
  std::atomic<bool> running_{true};

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<WorkShard> queue_;
  std::unordered_set<u64> canceled_;
  std::vector<ShardResult> pending_out_;  ///< buffered while partitioned
  CompletionSink sink_;
  bool in_crash_ = false;             ///< currently inside a crash window
  std::atomic<bool> drop_cache_{false};  ///< restart wiped volatile state

  std::map<int, Cached> cache_;  ///< executor-thread only
  std::thread executor_;
};

}  // namespace feves::cluster
