// Node liveness: the DeviceHealthMonitor quarantine/probation state machine
// lifted to node granularity. The WorkerManager heartbeats every node every
// tick and reports each outcome; the monitor decides who is dispatchable:
//
//   kAlive --(suspect_misses consecutive misses)--> kSuspect
//   kSuspect --(dead_misses total consecutive misses)--> kDead
//   kSuspect --(one clean beat)--> kProbation
//   kDead --(one clean beat)--> kProbation, ++incarnation (rejoin: the
//       node's old leases stay fenced — its epoch died with it)
//   kProbation --(probation_clean_beats clean beats)--> kAlive
//   kProbation --(any miss)--> kSuspect (required clean window grows by
//       probation_backoff, capped — a flapping node earns trust slowly)
//
// Suspect nodes keep their outstanding leases (the lease deadline, not the
// heartbeat, decides reassignment) but receive no NEW work; dead nodes are
// fenced immediately. The caller learns about edge transitions from the
// record_* return values so it can fence/reassign exactly once per death.
#pragma once

#include "common/check.hpp"

#include <vector>

namespace feves::cluster {

struct HeartbeatOptions {
  int suspect_misses = 2;        ///< consecutive misses to suspect a node
  int dead_misses = 4;           ///< consecutive misses to declare it dead
  int probation_clean_beats = 2; ///< clean beats until fully re-admitted
  double probation_backoff = 2.0;  ///< clean-window growth per relapse
  int max_probation_beats = 32;    ///< backoff ceiling
};

enum class NodeLiveness { kAlive, kSuspect, kDead, kProbation };

const char* to_string(NodeLiveness s);

class HeartbeatMonitor {
 public:
  explicit HeartbeatMonitor(int num_nodes, HeartbeatOptions opts = {});

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  NodeLiveness state(int node) const { return at(node).state; }

  /// Alive and probation nodes may receive new work; suspects only keep
  /// what they already hold.
  bool dispatchable(int node) const {
    const NodeLiveness s = at(node).state;
    return s == NodeLiveness::kAlive || s == NodeLiveness::kProbation;
  }
  bool dead(int node) const { return at(node).state == NodeLiveness::kDead; }
  int num_dispatchable() const;
  int num_dead() const;

  /// Monotone per-node rejoin count: bumped each time a dead node comes
  /// back. Work dispatched before a death carries the pre-death epoch, so
  /// the manager never needs the incarnation for fencing — it exists for
  /// attribution ("node 3, incarnation 2").
  int incarnation(int node) const { return at(node).incarnation; }

  /// Records a missed heartbeat. Returns true exactly when this miss
  /// declared the node dead — the caller's cue to fence its epoch and
  /// reassign its leases.
  bool record_miss(int node);

  /// Records a clean heartbeat. Returns true exactly when this beat
  /// re-admitted a DEAD node (rejoin, new incarnation).
  bool record_beat(int node);

 private:
  struct NodeState {
    NodeLiveness state = NodeLiveness::kAlive;
    int consecutive_misses = 0;
    int probation_clean = 0;    ///< clean beats accumulated in probation
    int probation_window = 0;   ///< clean beats this probation requires
    int incarnation = 0;
  };

  const NodeState& at(int node) const {
    FEVES_CHECK(node >= 0 && node < num_nodes());
    return nodes_[static_cast<std::size_t>(node)];
  }

  HeartbeatOptions opts_;
  std::vector<NodeState> nodes_;
};

}  // namespace feves::cluster
