#include "cluster/heartbeat.hpp"

#include <algorithm>

namespace feves::cluster {

const char* to_string(NodeLiveness s) {
  switch (s) {
    case NodeLiveness::kAlive: return "alive";
    case NodeLiveness::kSuspect: return "suspect";
    case NodeLiveness::kDead: return "dead";
    case NodeLiveness::kProbation: return "probation";
  }
  return "?";
}

HeartbeatMonitor::HeartbeatMonitor(int num_nodes, HeartbeatOptions opts)
    : opts_(opts) {
  FEVES_CHECK(num_nodes >= 1);
  FEVES_CHECK(opts_.suspect_misses >= 1);
  FEVES_CHECK(opts_.dead_misses > opts_.suspect_misses);
  FEVES_CHECK(opts_.probation_clean_beats >= 1);
  nodes_.resize(static_cast<std::size_t>(num_nodes));
  for (NodeState& n : nodes_) {
    n.probation_window = opts_.probation_clean_beats;
  }
}

int HeartbeatMonitor::num_dispatchable() const {
  int n = 0;
  for (int i = 0; i < num_nodes(); ++i) n += dispatchable(i) ? 1 : 0;
  return n;
}

int HeartbeatMonitor::num_dead() const {
  int n = 0;
  for (const NodeState& s : nodes_) {
    n += s.state == NodeLiveness::kDead ? 1 : 0;
  }
  return n;
}

bool HeartbeatMonitor::record_miss(int node) {
  FEVES_CHECK(node >= 0 && node < num_nodes());
  NodeState& n = nodes_[static_cast<std::size_t>(node)];
  if (n.state == NodeLiveness::kDead) return false;  // already dead
  ++n.consecutive_misses;
  if (n.state == NodeLiveness::kProbation) {
    // Relapse: back to suspect with a grown clean-window requirement, so a
    // flapping node pays geometrically more proof before full trust.
    n.probation_window = std::min(
        opts_.max_probation_beats,
        std::max(n.probation_window + 1,
                 static_cast<int>(n.probation_window *
                                  opts_.probation_backoff)));
    n.probation_clean = 0;
    n.state = NodeLiveness::kSuspect;
    // A probation relapse starts the death countdown from the suspect
    // threshold: the node already burned its benefit of the doubt.
    n.consecutive_misses = std::max(n.consecutive_misses,
                                    opts_.suspect_misses);
  }
  if (n.state == NodeLiveness::kAlive &&
      n.consecutive_misses >= opts_.suspect_misses) {
    n.state = NodeLiveness::kSuspect;
  }
  if (n.state == NodeLiveness::kSuspect &&
      n.consecutive_misses >= opts_.dead_misses) {
    n.state = NodeLiveness::kDead;
    return true;  // newly dead: fence and reassign now
  }
  return false;
}

bool HeartbeatMonitor::record_beat(int node) {
  FEVES_CHECK(node >= 0 && node < num_nodes());
  NodeState& n = nodes_[static_cast<std::size_t>(node)];
  n.consecutive_misses = 0;
  switch (n.state) {
    case NodeLiveness::kAlive:
      return false;
    case NodeLiveness::kSuspect:
      n.state = NodeLiveness::kProbation;
      n.probation_clean = 1;
      break;
    case NodeLiveness::kDead:
      n.state = NodeLiveness::kProbation;
      n.probation_clean = 1;
      ++n.incarnation;
      // Check for immediate full re-admission below, then report rejoin.
      if (n.probation_clean >= n.probation_window) {
        n.state = NodeLiveness::kAlive;
        n.probation_clean = 0;
      }
      return true;
    case NodeLiveness::kProbation:
      ++n.probation_clean;
      break;
  }
  if (n.state == NodeLiveness::kProbation &&
      n.probation_clean >= n.probation_window) {
    n.state = NodeLiveness::kAlive;
    n.probation_clean = 0;
  }
  return false;
}

}  // namespace feves::cluster
